//! Integration tests for the OS simulation kernel.

use hwsim::{ActivityProfile, CoreId, DeviceKind, Machine, MachineSpec};
use ossim::{
    ContextId, FnProgram, Kernel, KernelApi, KernelConfig, KernelHooks, Op, Resume,
    ScriptProgram, TaskId, TaskState,
};
use simkern::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

fn kernel(spec: MachineSpec) -> Kernel {
    Kernel::new(Machine::new(spec, 42), KernelConfig::default())
}

fn compute(ms: f64) -> Op {
    // Cycles for `ms` milliseconds on the 3.1 GHz SandyBridge.
    Op::Compute { cycles: ms * 3.1e6, profile: ActivityProfile::cpu_spin() }
}

#[test]
fn single_task_runs_to_completion_on_time() {
    let mut k = kernel(MachineSpec::sandybridge());
    let t = k.spawn(Box::new(ScriptProgram::new(vec![compute(5.0)])), None);
    k.run_until(SimTime::from_millis(4));
    assert!(k.is_alive(t), "still computing at 4ms");
    k.run_until(SimTime::from_millis(6));
    assert!(!k.is_alive(t), "finished by 6ms");
    assert!(k.is_quiescent());
}

#[test]
fn two_tasks_share_one_core_round_robin() {
    // Force both tasks onto one core by using a single-core "machine".
    let mut spec = MachineSpec::sandybridge();
    spec.cores_per_chip = 1;
    let mut k = kernel(spec);
    let done: Rc<RefCell<Vec<(u32, SimTime)>>> = Rc::new(RefCell::new(Vec::new()));
    for i in 0..2u32 {
        let done = Rc::clone(&done);
        let mut issued = false;
        k.spawn(
            Box::new(FnProgram::new(move |ctx| {
                if !issued {
                    issued = true;
                    Op::Compute { cycles: 10.0 * 3.1e6, profile: ActivityProfile::cpu_spin() }
                } else {
                    done.borrow_mut().push((i, ctx.now));
                    Op::Exit
                }
            })),
            None,
        );
    }
    k.run_until(SimTime::from_millis(30));
    let done = done.borrow();
    assert_eq!(done.len(), 2);
    // 20 ms of total work shared fairly: both finish near 19-20 ms, not at
    // 10 and 20 (which FIFO would give).
    for (_, t) in done.iter() {
        assert!(
            t.as_millis_f64() > 17.0 && t.as_millis_f64() < 21.0,
            "unfair completion at {t}"
        );
    }
}

#[test]
fn wakeups_spread_across_chips_before_packing() {
    // On Woodcrest (2 chips × 2 cores), spawning two spinners must use one
    // core on each chip — the Linux performance-spreading behaviour that
    // the paper's Fig. 1 observes.
    let mut k = kernel(MachineSpec::woodcrest());
    for _ in 0..2 {
        k.spawn(
            Box::new(ScriptProgram::new(vec![Op::Compute {
                cycles: 1e9,
                profile: ActivityProfile::cpu_spin(),
            }])),
            None,
        );
    }
    k.run_until(SimTime::from_millis(1));
    let busy: Vec<bool> = (0..4).map(|c| k.machine().is_busy(CoreId(c))).collect();
    let chip0 = busy[0] || busy[1];
    let chip1 = busy[2] || busy[3];
    assert!(chip0 && chip1, "both chips should host one spinner: {busy:?}");
}

#[test]
fn socket_send_recv_propagates_context() {
    let mut k = kernel(MachineSpec::sandybridge());
    let (client_end, server_end) = k.new_socket_pair();
    let ctx = k.alloc_context();
    let observed: Rc<RefCell<Option<Option<ContextId>>>> = Rc::new(RefCell::new(None));

    let obs = Rc::clone(&observed);
    let mut state = 0;
    k.spawn(
        Box::new(FnProgram::new(move |pc| {
            state += 1;
            match state {
                1 => Op::Recv { socket: server_end },
                2 => {
                    assert_eq!(pc.resume, Resume::Received);
                    *obs.borrow_mut() = Some(pc.context);
                    Op::Exit
                }
                _ => Op::Exit,
            }
        })),
        None,
    );
    let mut cstate = 0;
    k.spawn(
        Box::new(FnProgram::new(move |_pc| {
            cstate += 1;
            match cstate {
                1 => Op::BindContext(Some(ctx)),
                2 => Op::Send { socket: client_end, bytes: 128, payload: 7 },
                _ => Op::Exit,
            }
        })),
        None,
    );
    k.run_until(SimTime::from_millis(1));
    assert_eq!(*observed.borrow(), Some(Some(ctx)), "server must inherit sender context");
}

#[test]
fn persistent_connection_segments_keep_their_own_tags() {
    // Two requests' messages are buffered before the receiver reads:
    // the receiver must inherit ctx1 for the first read and ctx2 for the
    // second — the §3.3 per-segment tagging correctness case.
    let mut k = kernel(MachineSpec::sandybridge());
    let (tx, rx) = k.new_socket_pair();
    let c1 = k.alloc_context();
    let c2 = k.alloc_context();
    // Sender: bind c1, send, bind c2, send, then wake the reader much later.
    k.spawn(
        Box::new(ScriptProgram::new(vec![
            Op::BindContext(Some(c1)),
            Op::Send { socket: tx, bytes: 10, payload: 1 },
            Op::BindContext(Some(c2)),
            Op::Send { socket: tx, bytes: 10, payload: 2 },
        ])),
        None,
    );
    type Seen = Rc<RefCell<Vec<(u64, Option<ContextId>)>>>;
    let seen: Seen = Rc::new(RefCell::new(Vec::new()));
    let seen2 = Rc::clone(&seen);
    let mut step = 0;
    k.spawn(
        Box::new(FnProgram::new(move |pc| {
            step += 1;
            match step {
                1 => Op::Sleep { duration: SimDuration::from_millis(5) }, // let both arrive
                2 => Op::Recv { socket: rx },
                3 | 4 => {
                    let m = pc.last_msg.expect("received");
                    seen2.borrow_mut().push((m.payload, pc.context));
                    if step == 3 {
                        Op::Recv { socket: rx }
                    } else {
                        Op::Exit
                    }
                }
                _ => Op::Exit,
            }
        })),
        None,
    );
    k.run_until(SimTime::from_millis(20));
    let seen = seen.borrow();
    assert_eq!(seen.len(), 2);
    assert_eq!(seen[0], (1, Some(c1)), "first read inherits first request's context");
    assert_eq!(seen[1], (2, Some(c2)), "second read inherits second request's context");
}

#[test]
fn fork_inherits_context_and_wait_reaps() {
    let mut k = kernel(MachineSpec::sandybridge());
    let ctx = k.alloc_context();
    let child_ctx: Rc<RefCell<Option<Option<ContextId>>>> = Rc::new(RefCell::new(None));
    let cc = Rc::clone(&child_ctx);
    let reaped: Rc<RefCell<Option<TaskId>>> = Rc::new(RefCell::new(None));
    let rp = Rc::clone(&reaped);

    let mut step = 0;
    k.spawn(
        Box::new(FnProgram::new(move |pc| {
            step += 1;
            match step {
                1 => Op::BindContext(Some(ctx)),
                2 => {
                    let cc = Rc::clone(&cc);
                    let mut cstep = 0;
                    Op::Fork {
                        child: Box::new(FnProgram::new(move |cpc| {
                            cstep += 1;
                            if cstep == 1 {
                                *cc.borrow_mut() = Some(cpc.context);
                                Op::Compute {
                                    cycles: 1e6,
                                    profile: ActivityProfile::high_ipc(),
                                }
                            } else {
                                Op::Exit
                            }
                        })),
                        ctx: None,
                        detached: false,
                    }
                }
                3 => Op::WaitChild,
                4 => {
                    if let Resume::ChildExited(t) = pc.resume {
                        *rp.borrow_mut() = Some(t);
                    }
                    Op::Exit
                }
                _ => Op::Exit,
            }
        })),
        None,
    );
    k.run_until(SimTime::from_millis(10));
    assert_eq!(*child_ctx.borrow(), Some(Some(ctx)), "fork inherits request context");
    assert!(reaped.borrow().is_some(), "WaitChild resumed with exited child");
    assert!(k.is_quiescent());
}

#[test]
fn wait_before_child_exits_blocks_then_resumes() {
    let mut k = kernel(MachineSpec::sandybridge());
    let mut step = 0;
    let parent = k.spawn(
        Box::new(FnProgram::new(move |_pc| {
            step += 1;
            match step {
                1 => Op::Fork {
                    child: Box::new(ScriptProgram::new(vec![compute(3.0)])),
                    ctx: None,
                    detached: false,
                },
                2 => Op::WaitChild,
                _ => Op::Exit,
            }
        })),
        None,
    );
    k.run_until(SimTime::from_millis(1));
    assert_eq!(k.task_state(parent), TaskState::BlockedWait);
    k.run_until(SimTime::from_millis(5));
    assert!(!k.is_alive(parent));
}

#[test]
fn detached_children_do_not_linger_as_zombies() {
    let mut k = kernel(MachineSpec::sandybridge());
    let mut step = 0;
    k.spawn(
        Box::new(FnProgram::new(move |_pc| {
            step += 1;
            if step <= 5 {
                Op::Fork {
                    child: Box::new(ScriptProgram::new(vec![compute(0.1)])),
                    ctx: None,
                    detached: true,
                }
            } else {
                Op::Exit
            }
        })),
        None,
    );
    k.run_until(SimTime::from_millis(10));
    assert_eq!(k.stats().tasks_created, 6);
    assert_eq!(k.stats().tasks_exited, 6);
    assert!(k.is_quiescent());
}

#[test]
fn sleep_blocks_for_requested_duration() {
    let mut k = kernel(MachineSpec::sandybridge());
    let woke: Rc<RefCell<Option<SimTime>>> = Rc::new(RefCell::new(None));
    let w = Rc::clone(&woke);
    let mut step = 0;
    k.spawn(
        Box::new(FnProgram::new(move |pc| {
            step += 1;
            match step {
                1 => Op::Sleep { duration: SimDuration::from_millis(7) },
                _ => {
                    *w.borrow_mut() = Some(pc.now);
                    Op::Exit
                }
            }
        })),
        None,
    );
    k.run_until(SimTime::from_millis(20));
    let woke = woke.borrow().expect("woke");
    assert!((woke.as_millis_f64() - 7.0).abs() < 0.01, "woke at {woke}");
}

#[test]
fn disk_io_blocks_and_marks_device_active() {
    let mut k = kernel(MachineSpec::sandybridge());
    k.spawn(
        Box::new(ScriptProgram::new(vec![Op::DiskIo { bytes: 15_000_000 }])),
        None,
    );
    k.run_until(SimTime::from_millis(1));
    assert!(k.machine().device_active(DeviceKind::Disk));
    // 15 MB at 150 MB/s = 100 ms.
    k.run_until(SimTime::from_millis(150));
    assert!(!k.machine().device_active(DeviceKind::Disk));
    let busy = k.machine().device_busy_seconds(DeviceKind::Disk);
    assert!((busy - 0.1004).abs() < 0.001, "disk busy {busy}");
}

#[test]
fn duty_cycle_throttling_slows_completion() {
    let run = |throttle: bool| -> f64 {
        let mut k = kernel(MachineSpec::sandybridge());
        if throttle {
            k.machine_mut().set_duty_cycle(CoreId(0), hwsim::DutyCycle::new(4).unwrap());
        }
        let done: Rc<RefCell<Option<SimTime>>> = Rc::new(RefCell::new(None));
        let d = Rc::clone(&done);
        let mut step = 0;
        k.spawn(
            Box::new(FnProgram::new(move |pc| {
                step += 1;
                if step == 1 {
                    compute(4.0)
                } else {
                    *d.borrow_mut() = Some(pc.now);
                    Op::Exit
                }
            })),
            None,
        );
        k.run_until(SimTime::from_millis(30));
        let t = done.borrow().expect("completed");
        t.as_millis_f64()
    };
    let full = run(false);
    let half = run(true);
    assert!((full - 4.0).abs() < 0.1, "full-speed completion at {full}ms");
    assert!((half - 8.0).abs() < 0.2, "half-duty completion at {half}ms");
}

#[derive(Default)]
struct CountingHooks {
    switches: u64,
    pmu: u64,
    binds: u64,
    created: u64,
    exited: u64,
    io: u64,
}

#[derive(Clone, Default)]
struct SharedCounts(Rc<RefCell<CountingHooks>>);

impl KernelHooks for SharedCounts {
    fn on_boot(&mut self, api: &mut KernelApi<'_>) {
        // Arm a 1 ms PMU threshold on every core.
        let cycles = api.machine.spec().freq_ghz * 1e6;
        for c in 0..api.core_count() {
            api.machine.set_pmu_threshold(CoreId(c), Some(cycles));
        }
    }
    fn on_context_switch(
        &mut self,
        _api: &mut KernelApi<'_>,
        _core: CoreId,
        _prev: Option<TaskId>,
        _next: Option<TaskId>,
    ) {
        self.0.borrow_mut().switches += 1;
    }
    fn on_pmu_interrupt(&mut self, api: &mut KernelApi<'_>, core: CoreId, _task: TaskId) {
        self.0.borrow_mut().pmu += 1;
        let cycles = api.machine.spec().freq_ghz * 1e6;
        api.machine.set_pmu_threshold(core, Some(cycles));
    }
    fn on_context_bound(
        &mut self,
        _api: &mut KernelApi<'_>,
        _task: TaskId,
        _old: Option<ContextId>,
        _new: Option<ContextId>,
        _core: Option<CoreId>,
    ) {
        self.0.borrow_mut().binds += 1;
    }
    fn on_task_created(
        &mut self,
        _api: &mut KernelApi<'_>,
        _task: TaskId,
        _parent: Option<TaskId>,
        _ctx: Option<ContextId>,
    ) {
        self.0.borrow_mut().created += 1;
    }
    fn on_task_exit(&mut self, _api: &mut KernelApi<'_>, _task: TaskId, _ctx: Option<ContextId>) {
        self.0.borrow_mut().exited += 1;
    }
    fn on_io_complete(
        &mut self,
        _api: &mut KernelApi<'_>,
        _device: DeviceKind,
        _task: TaskId,
        _ctx: Option<ContextId>,
        _bytes: u64,
        _seconds: f64,
    ) {
        self.0.borrow_mut().io += 1;
    }
}

#[test]
fn hooks_observe_all_lifecycle_events() {
    let counts = SharedCounts::default();
    let mut k = kernel(MachineSpec::sandybridge());
    k.install_hooks(Box::new(counts.clone()));
    let ctx = k.alloc_context();
    k.spawn(
        Box::new(ScriptProgram::new(vec![
            Op::BindContext(Some(ctx)),
            compute(5.0),
            Op::DiskIo { bytes: 1000 },
            compute(1.0),
        ])),
        None,
    );
    k.run_until(SimTime::from_millis(20));
    let c = counts.0.borrow();
    assert_eq!(c.created, 1);
    assert_eq!(c.exited, 1);
    assert_eq!(c.binds, 1);
    assert!(c.switches >= 2, "at least dispatch + exit switches, got {}", c.switches);
    assert_eq!(c.io, 1);
    // ~6 ms of busy time with a 1 ms PMU period → about 6 interrupts.
    assert!((4..=8).contains(&c.pmu), "pmu interrupts {}", c.pmu);
}

#[test]
fn pmu_interrupts_pause_while_idle() {
    let counts = SharedCounts::default();
    let mut k = kernel(MachineSpec::sandybridge());
    k.install_hooks(Box::new(counts.clone()));
    // 2 ms of work, then the machine idles for 98 ms.
    k.spawn(Box::new(ScriptProgram::new(vec![compute(2.0)])), None);
    k.run_until(SimTime::from_millis(100));
    let pmu = counts.0.borrow().pmu;
    assert!(pmu <= 3, "idle cores must not take sampling interrupts, got {pmu}");
}

#[test]
fn inject_message_reaches_blocked_reader() {
    let mut k = kernel(MachineSpec::sandybridge());
    let (tx, rx) = k.new_socket_pair();
    let got: Rc<RefCell<Option<u64>>> = Rc::new(RefCell::new(None));
    let g = Rc::clone(&got);
    let mut step = 0;
    k.spawn(
        Box::new(FnProgram::new(move |pc| {
            step += 1;
            match step {
                1 => Op::Recv { socket: rx },
                _ => {
                    *g.borrow_mut() = pc.last_msg.map(|m| m.payload);
                    Op::Exit
                }
            }
        })),
        None,
    );
    k.run_until(SimTime::from_millis(1));
    // Inject on the client end; the blocked reader holds the peer.
    k.inject_message(tx, 64, Some(ContextId(99)), 1234);
    k.run_until(SimTime::from_millis(2));
    assert_eq!(*got.borrow(), Some(1234));
}

#[test]
fn quiescence_and_stats_track_workload() {
    let mut k = kernel(MachineSpec::sandybridge());
    for _ in 0..8 {
        k.spawn(Box::new(ScriptProgram::new(vec![compute(1.0)])), None);
    }
    assert!(!k.is_quiescent());
    k.run_until(SimTime::from_millis(10));
    assert!(k.is_quiescent());
    let s = k.stats();
    assert_eq!(s.tasks_created, 8);
    assert_eq!(s.tasks_exited, 8);
    assert!(s.context_switches >= 8);
}

#[test]
fn busy_machine_consumes_more_energy_than_idle() {
    let mut busy = kernel(MachineSpec::sandybridge());
    for _ in 0..4 {
        busy.spawn(
            Box::new(ScriptProgram::new(vec![Op::Compute {
                cycles: 3.1e7,
                profile: ActivityProfile::stress(),
            }])),
            None,
        );
    }
    busy.run_until(SimTime::from_millis(10));
    let mut idle = kernel(MachineSpec::sandybridge());
    idle.run_until(SimTime::from_millis(10));
    assert!(busy.machine().true_energy_j() > idle.machine().true_energy_j() * 1.5);
    assert_eq!(idle.machine().true_active_energy_j(), 0.0);
}

#[test]
fn socket_tag_becomes_visible_at_delivery_not_send() {
    // Regression test for the naive §3.3 tagging ablation: the endpoint's
    // `last_tag` tracks the most recently *delivered* message. A tag must
    // never become visible at send time, while its segment is still in
    // flight through the socket latency.
    let mut k = kernel(MachineSpec::sandybridge());
    let (client, server) = k.new_socket_pair();
    k.inject_message(client, 64, Some(ContextId(7)), 0);
    assert_eq!(k.socket_last_tag(server), None, "tag leaked at send time");
    k.run_until(SimTime::from_micros(20)); // past the 10 µs socket latency
    assert_eq!(k.socket_last_tag(server), Some(ContextId(7)));
    // A second in-flight message must not retag the endpoint early...
    k.inject_message(client, 64, Some(ContextId(8)), 0);
    assert_eq!(k.socket_last_tag(server), Some(ContextId(7)));
    k.run_until(SimTime::from_micros(40));
    assert_eq!(k.socket_last_tag(server), Some(ContextId(8)));
    // ...and untagged traffic leaves the last delivered tag in place.
    k.inject_message(client, 64, None, 0);
    k.run_until(SimTime::from_micros(60));
    assert_eq!(k.socket_last_tag(server), Some(ContextId(8)));
}

#[test]
fn tag_faults_strike_at_delivery() {
    let mut k = kernel(MachineSpec::sandybridge());
    k.machine_mut().set_fault_config(hwsim::FaultConfig {
        seed: 33,
        tag_loss: 0.25,
        tag_corrupt: 0.25,
        ..hwsim::FaultConfig::none()
    });
    let (client, server) = k.new_socket_pair();
    let n = 400u64;
    for i in 0..n {
        k.inject_message(client, 64, Some(ContextId(1000 + i)), 0);
    }
    k.run_until(SimTime::from_millis(1));
    let stats = k.stats();
    assert!(stats.tags_lost > 40, "lost {}", stats.tags_lost);
    assert!(stats.tags_corrupted > 20, "corrupted {}", stats.tags_corrupted);
    // Every fault lands in the machine's unified fault log.
    let log = k.machine().fault_log();
    assert_eq!(log.count(hwsim::FaultKind::TagLost), stats.tags_lost);
    assert_eq!(log.count(hwsim::FaultKind::TagCorrupted), stats.tags_corrupted);
    // Faults mangle tags, never the payloads: all segments still arrive.
    assert_eq!(k.buffered_segments(server) as u64, n);
}
