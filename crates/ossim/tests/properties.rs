//! Property-based tests for the OS simulation: arbitrary well-formed
//! programs must never hang, panic, or violate accounting invariants.

use hwsim::{ActivityProfile, CoreId, Machine, MachineSpec};
use ossim::{Kernel, KernelConfig, Op, ScriptProgram};
use proptest::prelude::*;
use simkern::{SimDuration, SimTime};

/// A generatable, always-terminating op for script programs.
#[derive(Debug, Clone)]
enum GenOp {
    Compute { kilocycles: u32, intensity: u8 },
    Sleep { micros: u32 },
    DiskIo { bytes: u32 },
    NetIo { bytes: u32 },
    ForkCompute { kilocycles: u32, wait: bool },
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (1u32..5000, 0u8..=4).prop_map(|(kilocycles, intensity)| GenOp::Compute {
            kilocycles,
            intensity
        }),
        (1u32..3000).prop_map(|micros| GenOp::Sleep { micros }),
        (1u32..200_000).prop_map(|bytes| GenOp::DiskIo { bytes }),
        (1u32..200_000).prop_map(|bytes| GenOp::NetIo { bytes }),
        (1u32..2000, any::<bool>()).prop_map(|(kilocycles, wait)| GenOp::ForkCompute {
            kilocycles,
            wait
        }),
    ]
}

fn profile_for(intensity: u8) -> ActivityProfile {
    match intensity {
        0 => ActivityProfile::cpu_spin(),
        1 => ActivityProfile::high_ipc(),
        2 => ActivityProfile::cache_heavy(),
        3 => ActivityProfile::memory_bound(),
        _ => ActivityProfile::stress(),
    }
}

fn realize(ops: &[GenOp]) -> (Vec<Op>, f64) {
    let mut out = Vec::new();
    let mut compute_cycles = 0.0;
    for op in ops {
        match op {
            GenOp::Compute { kilocycles, intensity } => {
                let cycles = *kilocycles as f64 * 1e3;
                compute_cycles += cycles;
                out.push(Op::Compute { cycles, profile: profile_for(*intensity) });
            }
            GenOp::Sleep { micros } => out.push(Op::Sleep {
                duration: SimDuration::from_micros(*micros as u64),
            }),
            GenOp::DiskIo { bytes } => out.push(Op::DiskIo { bytes: *bytes as u64 }),
            GenOp::NetIo { bytes } => out.push(Op::NetIo { bytes: *bytes as u64 }),
            GenOp::ForkCompute { kilocycles, wait } => {
                let cycles = *kilocycles as f64 * 1e3;
                compute_cycles += cycles;
                out.push(Op::Fork {
                    child: Box::new(ScriptProgram::new(vec![Op::Compute {
                        cycles,
                        profile: ActivityProfile::cpu_spin(),
                    }])),
                    ctx: None,
                    detached: !*wait,
                });
                if *wait {
                    out.push(Op::WaitChild);
                }
            }
        }
    }
    (out, compute_cycles)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any batch of random programs terminates, and the machine's total
    /// busy cycles equal the compute work submitted.
    #[test]
    fn random_programs_terminate_and_conserve_cycles(
        programs in prop::collection::vec(prop::collection::vec(gen_op(), 0..8), 1..10)
    ) {
        let mut kernel = Kernel::new(
            Machine::new(MachineSpec::sandybridge(), 1234),
            KernelConfig::default(),
        );
        let mut expected_cycles = 0.0;
        for ops in &programs {
            let (script, cycles) = realize(ops);
            expected_cycles += cycles;
            kernel.spawn(Box::new(ScriptProgram::new(script)), None);
        }
        // Generous bound: total work is < 50M cycles ≈ 16 ms serial.
        kernel.run_until(SimTime::from_secs(2));
        prop_assert!(kernel.is_quiescent(), "programs did not terminate");
        let total_busy: f64 = (0..4)
            .map(|c| kernel.machine().counters(CoreId(c)).nonhalt_cycles)
            .sum();
        // Completion deadlines round up to whole nanoseconds, so each
        // compute op may run up to ~4 extra cycles (3.1 GHz clock).
        let ops: usize = programs.iter().map(Vec::len).sum();
        let tolerance = 1.0 + 8.0 * ops as f64;
        prop_assert!(
            total_busy >= expected_cycles - 1.0 && total_busy <= expected_cycles + tolerance,
            "busy {total_busy} vs submitted {expected_cycles} (tolerance {tolerance})"
        );
        prop_assert_eq!(kernel.stats().tasks_exited, kernel.stats().tasks_created);
    }

    /// Utilization never exceeds 1 per core and energy is monotone.
    #[test]
    fn utilization_and_energy_invariants(
        programs in prop::collection::vec(prop::collection::vec(gen_op(), 1..6), 1..8),
        checkpoints in prop::collection::vec(1u64..50, 1..5),
    ) {
        let mut kernel = Kernel::new(
            Machine::new(MachineSpec::woodcrest(), 99),
            KernelConfig::default(),
        );
        for ops in &programs {
            let (script, _) = realize(ops);
            kernel.spawn(Box::new(ScriptProgram::new(script)), None);
        }
        let mut sorted = checkpoints.clone();
        sorted.sort_unstable();
        let mut last_energy = 0.0;
        for ms in sorted {
            kernel.run_until(SimTime::from_millis(ms));
            let e = kernel.machine().true_energy_j();
            prop_assert!(e >= last_energy, "energy went backwards");
            last_energy = e;
            for c in 0..4 {
                let counters = kernel.machine().counters(CoreId(c));
                prop_assert!(counters.core_utilization() <= 1.0 + 1e-9);
            }
        }
    }

    /// Messages with random tags always deliver exactly once and in order
    /// per connection.
    #[test]
    fn socket_delivery_is_exactly_once_in_order(
        payloads in prop::collection::vec(0u64..1_000_000, 1..50)
    ) {
        use ossim::{FnProgram, Resume};
        use std::cell::RefCell;
        use std::rc::Rc;

        let mut kernel = Kernel::new(
            Machine::new(MachineSpec::sandybridge(), 7),
            KernelConfig::default(),
        );
        let (tx, rx) = kernel.new_socket_pair();
        let got: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
        let g = Rc::clone(&got);
        let expect = payloads.len();
        kernel.spawn(
            Box::new(FnProgram::new(move |pc| {
                if pc.resume == Resume::Received {
                    g.borrow_mut().push(pc.last_msg.expect("msg").payload);
                }
                if g.borrow().len() < expect {
                    Op::Recv { socket: rx }
                } else {
                    Op::Exit
                }
            })),
            None,
        );
        for &p in &payloads {
            kernel.inject_message(tx, 16, None, p);
        }
        kernel.run_until(SimTime::from_millis(100));
        prop_assert_eq!(&*got.borrow(), &payloads);
    }
}
