//! Cross-scheduler differential conformance suite.
//!
//! The same seeded program set (see `conformance_programs`) runs under
//! every [`SchedulerKind`]; schedulers may interleave tasks however they
//! like, but the shared invariants must hold for all of them:
//!
//! * no lost or duplicated tasks (created == exited, all reaped);
//! * total CPU work conservation (the programs demand a fixed number of
//!   cycles, so total non-halted cycles agree across schedulers);
//! * quiescence (every run drains before the time cap);
//! * monotone sim-time (enforced by the event loop; the stop time is
//!   checked to be positive and bounded).
//!
//! On top of the shared invariants, each scheduler's complete decision
//! trace (every context switch and scheduler event) is pinned by a
//! golden, and the extracted round-robin policy is pinned bit-for-bit
//! against a trace recorded from the pre-refactor kernel
//! (`goldens/rr_oracle_trace.golden`). Regenerate per-scheduler goldens
//! with `PC_BLESS=1` — never the oracle, which is a historical artifact.

mod conformance_programs;

use ossim::{
    CfsConfig, ContextId, FnProgram, Kernel, KernelConfig, Op, PriorityConfig, SchedulerKind,
};
use hwsim::{ActivityProfile, Machine, MachineSpec};
use simkern::{SimDuration, SimTime};

const SEED: u64 = 0xC04F;

fn all_kinds() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::RoundRobin,
        SchedulerKind::Priority(PriorityConfig::default()),
        SchedulerKind::Cfs(CfsConfig::default()),
    ]
}

struct RunArtifacts {
    trace: String,
    stats: ossim::KernelStats,
    sched_stats: ossim::SchedStats,
    end: SimTime,
    total_cycles: f64,
    quiescent: bool,
}

fn run_under(kind: SchedulerKind) -> RunArtifacts {
    let tele = telemetry::Telemetry::recording();
    let config = KernelConfig { telemetry: tele.clone(), sched: kind, ..KernelConfig::default() };
    let mut kernel = conformance_programs::build(SEED, config);
    let end = conformance_programs::run(&mut kernel);
    let total_cycles = (0..kernel.machine().spec().total_cores())
        .map(|c| kernel.machine().counters(hwsim::CoreId(c)).nonhalt_cycles)
        .sum();
    RunArtifacts {
        trace: conformance_programs::decision_trace(&tele.to_jsonl()),
        stats: kernel.stats(),
        sched_stats: kernel.sched_stats(),
        end,
        total_cycles,
        quiescent: kernel.is_quiescent(),
    }
}

fn golden_path(name: &str) -> std::path::PathBuf {
    std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens").join(name)
}

fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("PC_BLESS").is_some() {
        std::fs::write(&path, actual).expect("bless golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {} ({e}); run with PC_BLESS=1", path.display()));
    assert_eq!(actual, expected, "{name} drifted; rerun with PC_BLESS=1 if intended");
}

/// The kernel-category subset of a decision trace (no `sched` events) —
/// the view the pre-refactor kernel could produce.
fn kernel_only(trace: &str) -> String {
    trace
        .lines()
        .filter(|l| l.contains("\"cat\":\"kernel\""))
        .map(|l| format!("{l}\n"))
        .collect()
}

/// The extracted round-robin scheduler replays the pre-refactor kernel's
/// recorded decision trace bit-for-bit: same context switches at the
/// same instants on the same cores, and identical kernel counters.
#[test]
fn rr_matches_pre_refactor_oracle() {
    let art = run_under(SchedulerKind::RoundRobin);
    let oracle = std::fs::read_to_string(golden_path("rr_oracle_trace.golden"))
        .expect("committed oracle trace");
    assert_eq!(
        kernel_only(&art.trace),
        oracle,
        "round-robin extraction diverged from the pre-refactor kernel"
    );
    let stats_line = format!("end={} stats={:?}\n", art.end, art.stats);
    let oracle_stats = std::fs::read_to_string(golden_path("rr_oracle_stats.golden"))
        .expect("committed oracle stats");
    assert_eq!(stats_line, oracle_stats);
}

/// Shared invariants hold under every scheduling policy.
#[test]
fn shared_invariants_all_schedulers() {
    let runs: Vec<(SchedulerKind, RunArtifacts)> =
        all_kinds().into_iter().map(|k| (k.clone(), run_under(k))).collect();
    let rr_cycles = runs[0].1.total_cycles;
    let rr_messages = runs[0].1.stats.messages;
    for (kind, art) in &runs {
        let name = kind.name();
        assert!(art.quiescent, "{name}: run did not drain");
        assert!(
            art.end > SimTime::ZERO && art.end < SimTime::from_millis(400),
            "{name}: implausible stop time {}",
            art.end
        );
        assert_eq!(
            art.stats.tasks_created, art.stats.tasks_exited,
            "{name}: lost or duplicated tasks"
        );
        assert_eq!(
            art.stats.messages, rr_messages,
            "{name}: message count depends on scheduler"
        );
        // The program set demands a fixed amount of CPU work; schedulers
        // reorder it but cannot create or destroy cycles (sub-quantum
        // rounding at dispatch boundaries allows a small epsilon).
        let rel = (art.total_cycles - rr_cycles).abs() / rr_cycles;
        assert!(
            rel < 1e-3,
            "{name}: total CPU cycles {:.3e} vs rr {rr_cycles:.3e} (rel {rel:.2e})",
            art.total_cycles
        );
        assert!(art.sched_stats.picks > 0, "{name}: scheduler never picked");
    }
}

/// Each policy's complete decision trace is deterministic and pinned.
#[test]
fn decision_trace_goldens_per_scheduler() {
    for kind in all_kinds() {
        let art = run_under(kind.clone());
        let again = run_under(kind.clone());
        assert_eq!(art.trace, again.trace, "{}: nondeterministic trace", kind.name());
        assert_eq!(art.stats, again.stats, "{}: nondeterministic stats", kind.name());
        assert_eq!(
            art.sched_stats,
            again.sched_stats,
            "{}: nondeterministic sched stats",
            kind.name()
        );
        check_golden(&format!("sched_trace_{}.golden", kind.name()), &art.trace);
    }
}

/// The three policies genuinely schedule differently on this program set
/// (otherwise the conformance suite would be vacuous).
#[test]
fn schedulers_diverge_on_conformance_set() {
    let rr = run_under(SchedulerKind::RoundRobin);
    let prio = run_under(SchedulerKind::Priority(PriorityConfig::default()));
    let cfs = run_under(SchedulerKind::Cfs(CfsConfig::default()));
    assert_ne!(rr.trace, prio.trace, "priority trace identical to round-robin");
    assert_ne!(rr.trace, cfs.trace, "cfs trace identical to round-robin");
    assert_ne!(prio.trace, cfs.trace, "cfs trace identical to priority");
}

/// Starvation regression: under the strict-priority policy, a
/// low-priority context still completes while high-priority load
/// saturates the machine — the aging boost bounds its wait.
#[test]
fn priority_scheduler_does_not_starve_low_priority() {
    let mut spec = MachineSpec::sandybridge();
    spec.chips = 1;
    spec.cores_per_chip = 1; // single core: high-priority load owns the CPU
    let cfg = PriorityConfig {
        levels: 4,
        derive_from_context: false,
        starvation_after: SimDuration::from_millis(5),
    };
    let config = KernelConfig {
        sched: SchedulerKind::Priority(cfg),
        ..KernelConfig::default()
    };
    let mut kernel = Kernel::new(Machine::new(spec, 7), config);
    let hi_ctx = ContextId(1);
    let lo_ctx = ContextId(2);
    kernel.set_context_priority(hi_ctx, 0);
    kernel.set_context_priority(lo_ctx, 3);
    // Sustained high-priority load: four spinners, each far outlasting
    // the low-priority job, constantly runnable.
    for _ in 0..4 {
        kernel.spawn(
            Box::new(FnProgram::new(move |pc| {
                if pc.now >= SimTime::from_millis(60) {
                    return Op::Exit;
                }
                Op::Compute { cycles: 1e6, profile: ActivityProfile::cpu_spin() }
            })),
            Some(hi_ctx),
        );
    }
    // One low-priority job needing ~4 ms of CPU at 3.4 GHz.
    let lo_task = kernel.spawn(
        Box::new(ossim::ScriptProgram::new(vec![Op::Compute {
            cycles: 1.4e7,
            profile: ActivityProfile::high_ipc(),
        }])),
        Some(lo_ctx),
    );
    kernel.run_until(SimTime::from_millis(100));
    assert!(
        !kernel.is_alive(lo_task),
        "low-priority task starved under sustained high-priority load \
         (sched stats: {:?})",
        kernel.sched_stats()
    );
    assert!(
        kernel.sched_stats().boosts > 0,
        "starvation aging never fired; the completion above is vacuous"
    );
    assert_eq!(kernel.stats().tasks_created, kernel.stats().tasks_exited);
}

/// Without aging, the same setup *does* starve — pinning that the boost
/// mechanism (not luck) is what rescues the low-priority task.
#[test]
fn priority_starvation_exists_without_aging() {
    let mut spec = MachineSpec::sandybridge();
    spec.chips = 1;
    spec.cores_per_chip = 1;
    let cfg = PriorityConfig {
        levels: 4,
        derive_from_context: false,
        starvation_after: SimDuration::MAX, // aging disabled
    };
    let config =
        KernelConfig { sched: SchedulerKind::Priority(cfg), ..KernelConfig::default() };
    let mut kernel = Kernel::new(Machine::new(spec, 7), config);
    kernel.set_context_priority(ContextId(1), 0);
    kernel.set_context_priority(ContextId(2), 3);
    for _ in 0..4 {
        kernel.spawn(
            Box::new(FnProgram::new(move |pc| {
                if pc.now >= SimTime::from_millis(60) {
                    return Op::Exit;
                }
                Op::Compute { cycles: 1e6, profile: ActivityProfile::cpu_spin() }
            })),
            Some(ContextId(1)),
        );
    }
    let lo_task = kernel.spawn(
        Box::new(ossim::ScriptProgram::new(vec![Op::Compute {
            cycles: 1.4e7,
            profile: ActivityProfile::high_ipc(),
        }])),
        Some(ContextId(2)),
    );
    kernel.run_until(SimTime::from_millis(30));
    assert!(
        kernel.is_alive(lo_task),
        "low-priority task ran although strictly-higher load saturated the core"
    );
}
