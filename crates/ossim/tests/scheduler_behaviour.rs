//! Additional scheduler and kernel-mechanism tests: preemption fairness,
//! placement, closed-loop patterns, fork trees, cycle conservation.

use hwsim::{ActivityProfile, CoreId, Machine, MachineSpec};
use ossim::{
    ContextId, FnProgram, Kernel, KernelConfig, Op, Resume, ScriptProgram, TaskState,
};
use simkern::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

fn kernel_with_cores(cores: usize) -> Kernel {
    let mut spec = MachineSpec::sandybridge();
    spec.cores_per_chip = cores;
    Kernel::new(Machine::new(spec, 77), KernelConfig::default())
}

#[test]
fn many_tasks_share_one_core_proportionally() {
    let mut k = kernel_with_cores(1);
    let done: Rc<RefCell<Vec<SimTime>>> = Rc::new(RefCell::new(Vec::new()));
    for _ in 0..5 {
        let done = Rc::clone(&done);
        let mut ran = false;
        k.spawn(
            Box::new(FnProgram::new(move |pc| {
                if !ran {
                    ran = true;
                    Op::Compute { cycles: 6.2e6, profile: ActivityProfile::cpu_spin() }
                } else {
                    done.borrow_mut().push(pc.now);
                    Op::Exit
                }
            })),
            None,
        );
    }
    k.run_until(SimTime::from_millis(30));
    let done = done.borrow();
    assert_eq!(done.len(), 5);
    // 10 ms of total work: with fair round-robin everyone lands in the
    // final stretch (8..=10.5ms), not staggered at 2,4,6,8,10.
    for t in done.iter() {
        assert!(
            t.as_millis_f64() > 7.0,
            "completion at {t} suggests FIFO rather than round-robin"
        );
    }
}

#[test]
fn total_nonhalt_cycles_match_work_done() {
    // Cycle conservation: the machine's busy cycles equal the sum of the
    // compute work completed (within observer-free tolerance).
    let mut k = kernel_with_cores(4);
    let per_task = 15.5e6;
    for _ in 0..12 {
        k.spawn(
            Box::new(ScriptProgram::new(vec![Op::Compute {
                cycles: per_task,
                profile: ActivityProfile::high_ipc(),
            }])),
            None,
        );
    }
    k.run_until(SimTime::from_millis(100));
    assert!(k.is_quiescent());
    let total_busy: f64 = (0..4)
        .map(|c| k.machine().counters(CoreId(c)).nonhalt_cycles)
        .sum();
    let expected = per_task * 12.0;
    assert!(
        (total_busy - expected).abs() / expected < 1e-6,
        "busy {total_busy} vs work {expected}"
    );
}

#[test]
fn closed_loop_echo_pattern_sustains() {
    // A ping-pong pair: client sends, server replies, client sends again.
    let mut k = kernel_with_cores(2);
    let (client_tx, server_rx) = k.new_socket_pair();
    let (server_tx, client_rx) = k.new_socket_pair();
    let rounds = Rc::new(RefCell::new(0u32));
    // Server: recv → tiny compute → reply.
    let mut replying = false;
    k.spawn(
        Box::new(FnProgram::new(move |pc| {
            if pc.resume == Resume::Received {
                replying = true;
                return Op::Compute { cycles: 1e5, profile: ActivityProfile::cpu_spin() };
            }
            if replying {
                replying = false;
                return Op::Send { socket: server_tx, bytes: 64, payload: 0 };
            }
            Op::Recv { socket: server_rx }
        })),
        None,
    );
    // Client: send → recv reply → count → repeat.
    let r2 = Rc::clone(&rounds);
    let mut sent = false;
    k.spawn(
        Box::new(FnProgram::new(move |pc| {
            if pc.resume == Resume::Received {
                *r2.borrow_mut() += 1;
                sent = false;
            }
            if !sent {
                sent = true;
                Op::Send { socket: client_tx, bytes: 64, payload: 1 }
            } else {
                Op::Recv { socket: client_rx }
            }
        })),
        None,
    );
    k.run_until(SimTime::from_millis(50));
    let n = *rounds.borrow();
    assert!(n > 100, "only {n} ping-pong rounds in 50 ms");
}

#[test]
fn deep_fork_trees_reap_cleanly() {
    // Each level forks one child and waits: depth 20.
    fn level(depth: u32) -> Box<dyn ossim::Program> {
        Box::new(FnProgram::new(move |pc| {
            let step = pc.rng.next_below(1); // deterministic zero; keeps closure FnMut
            let _ = step;
            // State machine via resume: Start → fork (if depth) → wait → exit
            match pc.resume {
                Resume::Start if depth > 0 => Op::Fork {
                    child: level(depth - 1),
                    ctx: None,
                    detached: false,
                },
                Resume::Start => Op::Compute {
                    cycles: 1e5,
                    profile: ActivityProfile::cpu_spin(),
                },
                Resume::Done if depth > 0 => Op::WaitChild,
                _ => Op::Exit,
            }
        }))
    }
    let mut k = kernel_with_cores(2);
    let ctx = k.alloc_context();
    k.spawn(level(20), Some(ctx));
    k.run_until(SimTime::from_millis(50));
    assert!(k.is_quiescent());
    assert_eq!(k.stats().tasks_created, 21);
    assert_eq!(k.stats().tasks_exited, 21);
}

#[test]
fn blocked_tasks_free_their_cores() {
    let mut k = kernel_with_cores(2);
    // Two sleepers and one spinner: the spinner must get a core at once.
    for _ in 0..2 {
        k.spawn(
            Box::new(ScriptProgram::new(vec![Op::Sleep {
                duration: SimDuration::from_millis(40),
            }])),
            None,
        );
    }
    let spun: Rc<RefCell<Option<SimTime>>> = Rc::new(RefCell::new(None));
    let s2 = Rc::clone(&spun);
    let mut ran = false;
    k.spawn(
        Box::new(FnProgram::new(move |pc| {
            if !ran {
                ran = true;
                Op::Compute { cycles: 3.1e6, profile: ActivityProfile::cpu_spin() }
            } else {
                *s2.borrow_mut() = Some(pc.now);
                Op::Exit
            }
        })),
        None,
    );
    k.run_until(SimTime::from_millis(20));
    let done = spun.borrow().expect("spinner finished");
    assert!(done.as_millis_f64() < 2.0, "spinner blocked by sleepers: {done}");
}

#[test]
fn naive_tagging_misattributes_buffered_segments() {
    // Direct kernel-level check of the §3.3 ablation: with naive tagging
    // the receiver inherits the *latest* tag for both reads.
    let config = KernelConfig { naive_socket_tagging: true, ..KernelConfig::default() };
    let mut spec = MachineSpec::sandybridge();
    spec.cores_per_chip = 4;
    let mut k = Kernel::new(Machine::new(spec, 1), config);
    let (tx, rx) = k.new_socket_pair();
    let c1 = ContextId(101);
    let c2 = ContextId(102);
    k.inject_message(tx, 10, Some(c1), 1);
    k.inject_message(tx, 10, Some(c2), 2);
    let seen: Rc<RefCell<Vec<Option<ContextId>>>> = Rc::new(RefCell::new(Vec::new()));
    let s2 = Rc::clone(&seen);
    let mut step = 0;
    k.spawn(
        Box::new(FnProgram::new(move |pc| {
            if pc.resume == Resume::Received {
                s2.borrow_mut().push(pc.context);
            }
            step += 1;
            match step {
                // Let both messages land in the buffer first.
                1 => Op::Sleep { duration: SimDuration::from_millis(1) },
                2 | 3 => Op::Recv { socket: rx },
                _ => Op::Exit,
            }
        })),
        None,
    );
    k.run_until(SimTime::from_millis(2));
    let seen = seen.borrow();
    assert_eq!(seen.len(), 2);
    assert_eq!(seen[0], Some(c2), "naive tagging inherits the newest tag");
    assert_eq!(seen[1], Some(c2));
}

#[test]
fn task_states_are_observable() {
    let mut k = kernel_with_cores(1);
    let sleeper = k.spawn(
        Box::new(ScriptProgram::new(vec![Op::Sleep {
            duration: SimDuration::from_millis(10),
        }])),
        None,
    );
    let spinner = k.spawn(
        Box::new(ScriptProgram::new(vec![Op::Compute {
            cycles: 31.0e6,
            profile: ActivityProfile::cpu_spin(),
        }])),
        None,
    );
    k.run_until(SimTime::from_millis(1));
    assert_eq!(k.task_state(sleeper), TaskState::BlockedSleep);
    assert_eq!(k.task_state(spinner), TaskState::Running(CoreId(0)));
    k.run_until(SimTime::from_millis(30));
    assert_eq!(k.task_state(sleeper), TaskState::Dead);
    assert_eq!(k.task_state(spinner), TaskState::Dead);
}
