//! The shared seeded program set for the scheduler conformance suite.
//!
//! Both the round-robin oracle capture and the cross-scheduler
//! differential tests instantiate *this exact* workload, so a trace
//! difference can only come from the kernel's scheduling behaviour,
//! never from the programs. The set deliberately mixes every blocking
//! shape the kernel knows: multi-quantum compute bursts (several
//! activity profiles), timer sleeps, disk and network I/O, fork/wait
//! trees, socket ping-pong pairs, and context re-binding.

use hwsim::{ActivityProfile, Machine, MachineSpec};
use ossim::{ContextId, FnProgram, Kernel, KernelConfig, Op, Resume, ScriptProgram};
use simkern::{SimDuration, SimTime};

/// Deterministic xorshift for program-set construction (NOT the
/// kernel's RNG; this only shapes the static op scripts).
pub struct SetRng(u64);

impl SetRng {
    pub fn new(seed: u64) -> SetRng {
        SetRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    pub fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    pub fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn profile_for(i: u64) -> ActivityProfile {
    match i % 5 {
        0 => ActivityProfile::cpu_spin(),
        1 => ActivityProfile::high_ipc(),
        2 => ActivityProfile::cache_heavy(),
        3 => ActivityProfile::memory_bound(),
        _ => ActivityProfile::stress(),
    }
}

/// One mixed batch-style script: compute bursts interleaved with
/// sleeps, I/O, and an optional fork/wait subtree.
fn batch_script(rng: &mut SetRng) -> Vec<Op> {
    let mut ops = Vec::new();
    let steps = 3 + rng.below(5);
    for _ in 0..steps {
        match rng.below(6) {
            0 | 1 => ops.push(Op::Compute {
                cycles: (200 + rng.below(4200)) as f64 * 1e3,
                profile: profile_for(rng.next()),
            }),
            2 => ops.push(Op::Sleep {
                duration: SimDuration::from_micros(50 + rng.below(900)),
            }),
            3 => ops.push(Op::DiskIo { bytes: 2_000 + rng.below(120_000) }),
            4 => ops.push(Op::NetIo { bytes: 1_000 + rng.below(60_000) }),
            _ => {
                let cycles = (100 + rng.below(1500)) as f64 * 1e3;
                let wait = rng.below(2) == 0;
                ops.push(Op::Fork {
                    child: Box::new(ScriptProgram::new(vec![Op::Compute {
                        cycles,
                        profile: profile_for(rng.next()),
                    }])),
                    ctx: None,
                    detached: !wait,
                });
                if wait {
                    ops.push(Op::WaitChild);
                }
            }
        }
    }
    ops
}

/// Spawns a socket ping-pong pair (server echoes after a small compute;
/// client drives `rounds` round trips, re-binding its context each
/// round so the context-bound hook path is exercised too).
fn spawn_pingpong(kernel: &mut Kernel, rounds: u32, ctx_base: u64) {
    let (client_tx, server_rx) = kernel.new_socket_pair();
    let (server_tx, client_rx) = kernel.new_socket_pair();
    // Server: recv -> small compute -> reply, for `rounds` rounds.
    let mut replying = false;
    let mut served = 0u32;
    kernel.spawn(
        Box::new(FnProgram::new(move |pc| {
            if pc.resume == Resume::Received {
                replying = true;
                return Op::Compute { cycles: 8e4, profile: ActivityProfile::high_ipc() };
            }
            if replying {
                replying = false;
                served += 1;
                return Op::Send { socket: server_tx, bytes: 64, payload: 0 };
            }
            if served >= rounds {
                return Op::Exit;
            }
            Op::Recv { socket: server_rx }
        })),
        None,
    );
    // Client: re-bind context, send, await the echo; repeat.
    let mut sent = 0u32;
    let mut phase = 0u8;
    kernel.spawn(
        Box::new(FnProgram::new(move |pc| {
            if pc.resume == Resume::Received {
                phase = 0;
            }
            match phase {
                0 => {
                    if sent >= rounds {
                        return Op::Exit;
                    }
                    sent += 1;
                    phase = 1;
                    Op::BindContext(Some(ContextId(ctx_base + u64::from(sent))))
                }
                1 => {
                    phase = 2;
                    Op::Send { socket: client_tx, bytes: 64, payload: u64::from(sent) }
                }
                _ => Op::Recv { socket: client_rx },
            }
        })),
        None,
    );
}

/// Spawns a simpler tagged request stream: a client fires `n` tagged
/// messages paced by sleeps at a server that computes per message.
fn spawn_tagged_stream(kernel: &mut Kernel, n: u32, ctx_base: u64, rng: &mut SetRng) {
    let (tx, rx) = kernel.new_socket_pair();
    // Server: recv -> compute -> repeat forever (exits via detach
    // starvation at run end; it blocks on recv when idle).
    let mut served = 0u32;
    kernel.spawn(
        Box::new(FnProgram::new(move |pc| {
            if pc.resume == Resume::Received {
                served += 1;
                return Op::Compute { cycles: 3e5, profile: ActivityProfile::cache_heavy() };
            }
            if served >= n {
                return Op::Exit;
            }
            Op::Recv { socket: rx }
        })),
        None,
    );
    // Client: bind ctx, send, sleep, repeat.
    let gap = 120 + rng.below(300);
    let mut step = 0u32;
    kernel.spawn(
        Box::new(FnProgram::new(move |pc| {
            let _ = pc;
            let i = step / 3;
            if i >= n {
                return Op::Exit;
            }
            step += 1;
            match step % 3 {
                1 => Op::BindContext(Some(ContextId(ctx_base + u64::from(i)))),
                2 => Op::Send { socket: tx, bytes: 256, payload: u64::from(i) },
                _ => Op::Sleep { duration: SimDuration::from_micros(gap) },
            }
        })),
        None,
    );
}

/// Builds the conformance kernel: a 4-core machine loaded with the
/// seeded program mix. `config` chooses the scheduler under test (and
/// the telemetry sink); everything else is fixed by `seed`.
pub fn build(seed: u64, config: KernelConfig) -> Kernel {
    let mut spec = MachineSpec::sandybridge();
    spec.cores_per_chip = 2; // 2 chips x 2 cores: placement spreading is visible
    let mut kernel = Kernel::new(Machine::new(spec, seed), config);
    let mut rng = SetRng::new(seed);
    for i in 0..6 {
        let ctx = kernel.alloc_context();
        let script = batch_script(&mut rng);
        let _ = i;
        kernel.spawn(Box::new(ScriptProgram::new(script)), Some(ctx));
    }
    spawn_pingpong(&mut kernel, 20, 1000);
    spawn_tagged_stream(&mut kernel, 25, 2000, &mut rng);
    spawn_tagged_stream(&mut kernel, 15, 3000, &mut rng);
    kernel
}

/// Runs the conformance workload to quiescence (bounded) and returns
/// the stop time.
pub fn run(kernel: &mut Kernel) -> SimTime {
    kernel.run_until_quiescent(SimTime::from_millis(400))
}

/// The decision trace: every context-switch event line from the
/// telemetry JSONL (category `kernel`, name `ctx_switch`), which pins
/// the complete who-ran-where-when history of the run. Scheduler
/// decision events (`sched` category) ride along when present.
pub fn decision_trace(jsonl: &str) -> String {
    jsonl
        .lines()
        .filter(|l| l.contains("\"cat\":\"kernel\"") || l.contains("\"cat\":\"sched\""))
        .map(|l| format!("{l}\n"))
        .collect()
}
