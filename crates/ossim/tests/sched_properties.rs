//! Property-based determinism and conformance tests for the pluggable
//! schedulers: under every policy, a fixed seed must reproduce the run
//! byte-for-byte (identical `KernelStats` and telemetry), and the shared
//! task-accounting invariants must hold for arbitrary program mixes —
//! random spawns, wakes (sleeps/IO), messages, and early exits.

#[allow(dead_code)] // each test binary uses a subset of the shared module
mod conformance_programs;

use hwsim::{ActivityProfile, Machine, MachineSpec};
use ossim::{
    CfsConfig, Kernel, KernelConfig, KernelStats, Op, PriorityConfig, SchedulerKind,
    ScriptProgram,
};
use proptest::prelude::*;
use simkern::{SimDuration, SimTime};

/// A generatable, always-terminating op. `Crash` exits the task early,
/// abandoning the rest of its script (the "random crash" shape).
#[derive(Debug, Clone)]
enum GenOp {
    Compute { kilocycles: u32, intensity: u8 },
    Sleep { micros: u32 },
    DiskIo { bytes: u32 },
    NetIo { bytes: u32 },
    ForkCompute { kilocycles: u32, wait: bool },
    Crash,
}

fn gen_op() -> impl Strategy<Value = GenOp> {
    prop_oneof![
        (1u32..4000, 0u8..=4).prop_map(|(kilocycles, intensity)| GenOp::Compute {
            kilocycles,
            intensity
        }),
        (1u32..4000, 5u8..=9).prop_map(|(kilocycles, intensity)| GenOp::Compute {
            kilocycles,
            intensity: intensity - 5
        }),
        (1u32..2000).prop_map(|micros| GenOp::Sleep { micros }),
        (1u32..150_000).prop_map(|bytes| GenOp::DiskIo { bytes }),
        (1u32..150_000).prop_map(|bytes| GenOp::NetIo { bytes }),
        (1u32..1500, any::<bool>()).prop_map(|(kilocycles, wait)| GenOp::ForkCompute {
            kilocycles,
            wait
        }),
        Just(GenOp::Crash),
    ]
}

fn profile_for(intensity: u8) -> ActivityProfile {
    match intensity {
        0 => ActivityProfile::cpu_spin(),
        1 => ActivityProfile::high_ipc(),
        2 => ActivityProfile::cache_heavy(),
        3 => ActivityProfile::memory_bound(),
        _ => ActivityProfile::stress(),
    }
}

fn realize(ops: &[GenOp]) -> Vec<Op> {
    let mut out = Vec::new();
    for op in ops {
        match op {
            GenOp::Compute { kilocycles, intensity } => out.push(Op::Compute {
                cycles: *kilocycles as f64 * 1e3,
                profile: profile_for(*intensity),
            }),
            GenOp::Sleep { micros } => {
                out.push(Op::Sleep { duration: SimDuration::from_micros(*micros as u64) })
            }
            GenOp::DiskIo { bytes } => out.push(Op::DiskIo { bytes: *bytes as u64 }),
            GenOp::NetIo { bytes } => out.push(Op::NetIo { bytes: *bytes as u64 }),
            GenOp::ForkCompute { kilocycles, wait } => {
                out.push(Op::Fork {
                    child: Box::new(ScriptProgram::new(vec![Op::Compute {
                        cycles: *kilocycles as f64 * 1e3,
                        profile: ActivityProfile::cpu_spin(),
                    }])),
                    ctx: None,
                    detached: !*wait,
                });
                if *wait {
                    out.push(Op::WaitChild);
                }
            }
            GenOp::Crash => {
                out.push(Op::Exit);
                break; // ops after an exit are unreachable by construction
            }
        }
    }
    out
}

fn all_kinds() -> [SchedulerKind; 3] {
    [
        SchedulerKind::RoundRobin,
        SchedulerKind::Priority(PriorityConfig::default()),
        SchedulerKind::Cfs(CfsConfig::default()),
    ]
}

/// Runs `programs` under `kind` with recording telemetry; returns the
/// full telemetry JSONL and the final kernel counters.
fn run_programs(
    programs: &[Vec<GenOp>],
    kind: SchedulerKind,
    seed: u64,
) -> (String, KernelStats) {
    let tele = telemetry::Telemetry::recording();
    let config = KernelConfig { telemetry: tele.clone(), sched: kind, ..KernelConfig::default() };
    let mut kernel = Kernel::new(Machine::new(MachineSpec::sandybridge(), seed), config);
    for (i, ops) in programs.iter().enumerate() {
        let ctx = ossim::ContextId(1 + i as u64);
        kernel.spawn(Box::new(ScriptProgram::new(realize(ops))), Some(ctx));
    }
    kernel.run_until(SimTime::from_secs(2));
    assert!(kernel.is_quiescent(), "{}: programs did not terminate", kernel.sched_kind());
    (tele.to_jsonl(), kernel.stats())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same seed → byte-identical run, for every scheduling policy:
    /// identical KernelStats and identical telemetry (which embeds every
    /// context switch, so this pins the whole decision history).
    #[test]
    fn every_scheduler_is_deterministic(
        programs in prop::collection::vec(prop::collection::vec(gen_op(), 0..7), 1..8),
        seed in 0u64..1_000_000,
    ) {
        for kind in all_kinds() {
            let (trace_a, stats_a) = run_programs(&programs, kind.clone(), seed);
            let (trace_b, stats_b) = run_programs(&programs, kind.clone(), seed);
            prop_assert_eq!(stats_a, stats_b, "{}: stats nondeterministic", kind.name());
            prop_assert_eq!(trace_a, trace_b, "{}: telemetry nondeterministic", kind.name());
        }
    }

    /// Task accounting is scheduler-invariant: every policy creates and
    /// retires exactly the same set of tasks and the run always drains.
    #[test]
    fn task_accounting_is_scheduler_invariant(
        programs in prop::collection::vec(prop::collection::vec(gen_op(), 0..7), 1..8),
        seed in 0u64..1_000_000,
    ) {
        let mut counts: Vec<(u64, u64)> = Vec::new();
        for kind in all_kinds() {
            let (_, stats) = run_programs(&programs, kind, seed);
            prop_assert_eq!(stats.tasks_created, stats.tasks_exited, "lost/duplicated tasks");
            counts.push((stats.tasks_created, stats.tasks_exited));
        }
        prop_assert!(
            counts.windows(2).all(|w| w[0] == w[1]),
            "task counts differ across schedulers: {counts:?}"
        );
    }
}

/// The richer seeded conformance workload (messages, ping-pong, context
/// re-binding) is deterministic per scheduler across a seed sweep — the
/// non-proptest shape keeps this dense workload's runtime bounded.
#[test]
fn conformance_workload_deterministic_across_seeds() {
    for seed in [1u64, 0xBEEF, 0xC04F] {
        for kind in all_kinds() {
            let run = |k: SchedulerKind| {
                let tele = telemetry::Telemetry::recording();
                let config = KernelConfig {
                    telemetry: tele.clone(),
                    sched: k,
                    ..KernelConfig::default()
                };
                let mut kernel = conformance_programs::build(seed, config);
                conformance_programs::run(&mut kernel);
                (tele.to_jsonl(), kernel.stats())
            };
            let (trace_a, stats_a) = run(kind.clone());
            let (trace_b, stats_b) = run(kind.clone());
            assert_eq!(stats_a, stats_b, "{} seed {seed}: stats drift", kind.name());
            assert_eq!(trace_a, trace_b, "{} seed {seed}: trace drift", kind.name());
        }
    }
}
