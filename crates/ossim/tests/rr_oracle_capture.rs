//! TEMPORARY capture harness: records the pre-refactor round-robin
//! kernel's decision trace for the conformance suite's oracle golden.
//! Run once with PC_BLESS=1; the committed golden then pins the
//! extracted RoundRobin scheduler to the original kernel bit-for-bit.

mod conformance_programs;

use ossim::KernelConfig;

#[test]
fn capture_rr_oracle() {
    if std::env::var_os("PC_BLESS").is_none() {
        return;
    }
    let tele = telemetry::Telemetry::recording();
    let config = KernelConfig { telemetry: tele.clone(), ..KernelConfig::default() };
    let mut kernel = conformance_programs::build(0xC04F, config);
    let end = conformance_programs::run(&mut kernel);
    let trace = conformance_programs::decision_trace(&tele.to_jsonl());
    let stats = kernel.stats();
    let summary = format!("end={end} stats={stats:?}\n");
    let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/goldens");
    std::fs::create_dir_all(&dir).expect("goldens dir");
    std::fs::write(dir.join("rr_oracle_trace.golden"), &trace).expect("write trace golden");
    std::fs::write(dir.join("rr_oracle_stats.golden"), &summary).expect("write stats golden");
    assert!(kernel.is_quiescent(), "conformance set must drain");
    assert_eq!(stats.tasks_created, stats.tasks_exited, "no lost tasks");
}
