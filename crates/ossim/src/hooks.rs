//! Kernel instrumentation hooks.
//!
//! The power-container facility of the paper is a set of kernel
//! modifications that observe scheduling events and drive per-core
//! sampling and control. [`KernelHooks`] is the corresponding seam in this
//! simulation: the kernel invokes it at exactly the moments the paper's
//! patched Linux 2.6.30 instruments — context switches, PMU overflow
//! interrupts, request-context (re)binding, task lifecycle, and I/O.
//!
//! Hooks receive a [`KernelApi`] giving access to the hardware (counters,
//! duty-cycle, PMU programming) and a read-only view of scheduler state
//! (who runs where, whether a sibling core is idle). The hardware has
//! always been advanced to the present instant before a hook runs, so
//! counter reads are exact; any duty-cycle or PMU change a hook makes
//! takes effect from the present instant onward.

use crate::ids::{ContextId, TaskId};
use crate::kernel::KernelStats;
use hwsim::{CoreId, DeviceKind, Machine};
use simkern::SimTime;

/// Access granted to hooks at a hook point.
pub struct KernelApi<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// The machine: hooks may read counters, set duty-cycle levels, arm
    /// PMU thresholds, and inject observer-effect events.
    pub machine: &'a mut Machine,
    pub(crate) running: &'a [Option<TaskId>],
    pub(crate) contexts: &'a [Option<ContextId>],
    pub(crate) stats: KernelStats,
}

impl<'a> KernelApi<'a> {
    /// Builds a standalone API view — for facility benchmarks and tests
    /// that exercise hooks without a full kernel. `running` must have one
    /// entry per core; `contexts` is indexed by task id.
    pub fn new(
        now: SimTime,
        machine: &'a mut Machine,
        running: &'a [Option<TaskId>],
        contexts: &'a [Option<ContextId>],
    ) -> KernelApi<'a> {
        assert_eq!(
            running.len(),
            machine.spec().total_cores(),
            "one running slot per core"
        );
        KernelApi { now, machine, running, contexts, stats: KernelStats::default() }
    }

    /// A snapshot of the kernel's activity counters **as of this hook
    /// point** — not only at teardown — so facilities can export live
    /// gauges (context-switch and interrupt rates) while the simulation
    /// runs. Standalone views built with [`KernelApi::new`] report zeros.
    pub fn kernel_stats(&self) -> KernelStats {
        self.stats
    }

    /// The task currently running on `core`, if any.
    pub fn running_task(&self, core: CoreId) -> Option<TaskId> {
        self.running[core.0]
    }

    /// `true` when the scheduler currently runs the idle task on `core` —
    /// the sibling-staleness check of the paper's Eq. 3 implementation.
    pub fn is_idle(&self, core: CoreId) -> bool {
        self.running[core.0].is_none()
    }

    /// The request context `task` is currently bound to.
    pub fn context_of(&self, task: TaskId) -> Option<ContextId> {
        self.contexts.get(task.0 as usize).copied().flatten()
    }

    /// Number of cores on the machine.
    pub fn core_count(&self) -> usize {
        self.running.len()
    }
}

/// Events the kernel reports to an installed facility.
///
/// All methods have empty default implementations so facilities override
/// only what they need.
#[allow(unused_variables)]
pub trait KernelHooks {
    /// The kernel finished construction; arm initial PMU state here.
    fn on_boot(&mut self, api: &mut KernelApi<'_>) {}

    /// A context switch is occurring on `core`: `prev` is being descheduled
    /// and `next` dispatched (either may be `None` for the idle task). The
    /// machine still reflects `prev`'s activity; counters read here include
    /// everything `prev` executed.
    fn on_context_switch(
        &mut self,
        api: &mut KernelApi<'_>,
        core: CoreId,
        prev: Option<TaskId>,
        next: Option<TaskId>,
    ) {
    }

    /// The PMU overflow threshold on `core` expired while `task` was
    /// running. The facility typically samples counters, re-arms the
    /// threshold, and applies control decisions here.
    fn on_pmu_interrupt(&mut self, api: &mut KernelApi<'_>, core: CoreId, task: TaskId) {}

    /// `task`'s request-context binding changed (socket read inheritance,
    /// explicit rebind, or fork inheritance at creation). `core` is where
    /// the task is running, when it is on a CPU at the moment of binding.
    fn on_context_bound(
        &mut self,
        api: &mut KernelApi<'_>,
        task: TaskId,
        old: Option<ContextId>,
        new: Option<ContextId>,
        core: Option<CoreId>,
    ) {
    }

    /// A task was created (`parent` is `None` for tasks spawned by the
    /// harness).
    fn on_task_created(
        &mut self,
        api: &mut KernelApi<'_>,
        task: TaskId,
        parent: Option<TaskId>,
        ctx: Option<ContextId>,
    ) {
    }

    /// A task exited.
    fn on_task_exit(&mut self, api: &mut KernelApi<'_>, task: TaskId, ctx: Option<ContextId>) {}

    /// A blocking I/O operation started on behalf of `task`.
    fn on_io_start(
        &mut self,
        api: &mut KernelApi<'_>,
        device: DeviceKind,
        task: TaskId,
        ctx: Option<ContextId>,
        bytes: u64,
    ) {
    }

    /// A blocking I/O operation completed; `seconds` is how long the
    /// device worked on it.
    fn on_io_complete(
        &mut self,
        api: &mut KernelApi<'_>,
        device: DeviceKind,
        task: TaskId,
        ctx: Option<ContextId>,
        bytes: u64,
        seconds: f64,
    ) {
    }
}

/// A facility that observes nothing — the default when no hooks are
/// installed.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoHooks;

impl KernelHooks for NoHooks {}

#[cfg(test)]
mod tests {
    use super::*;
    use hwsim::MachineSpec;

    #[test]
    fn api_views_scheduler_state() {
        let mut machine = Machine::new(MachineSpec::sandybridge(), 1);
        let running = vec![Some(TaskId(5)), None, None, None];
        let contexts = vec![None, None, None, None, None, Some(ContextId(7))];
        let api = KernelApi {
            now: SimTime::ZERO,
            machine: &mut machine,
            running: &running,
            contexts: &contexts,
            stats: KernelStats::default(),
        };
        assert_eq!(api.running_task(CoreId(0)), Some(TaskId(5)));
        assert_eq!(api.kernel_stats(), KernelStats::default());
        assert!(api.is_idle(CoreId(1)));
        assert!(!api.is_idle(CoreId(0)));
        assert_eq!(api.context_of(TaskId(5)), Some(ContextId(7)));
        assert_eq!(api.context_of(TaskId(0)), None);
        assert_eq!(api.context_of(TaskId(99)), None);
        assert_eq!(api.core_count(), 4);
    }

    #[test]
    fn no_hooks_accepts_all_events() {
        let mut machine = Machine::new(MachineSpec::sandybridge(), 1);
        let running = vec![None; 4];
        let contexts: Vec<Option<ContextId>> = vec![];
        let mut api = KernelApi {
            now: SimTime::ZERO,
            machine: &mut machine,
            running: &running,
            contexts: &contexts,
            stats: KernelStats::default(),
        };
        let mut h = NoHooks;
        h.on_boot(&mut api);
        h.on_context_switch(&mut api, CoreId(0), None, Some(TaskId(0)));
        h.on_pmu_interrupt(&mut api, CoreId(0), TaskId(0));
        h.on_task_exit(&mut api, TaskId(0), None);
    }
}
