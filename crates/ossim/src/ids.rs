//! Identifier newtypes for OS objects.

use std::fmt;

/// Identifies a task (process or thread) in the simulated OS.
///
/// Task ids are never reused within one kernel instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(pub u32);

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Identifies a request execution context — the paper's unit of power
/// accounting. A context flows with a request across tasks, sockets, and
/// forks; the power-container facility keys its containers by this id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ContextId(pub u64);

impl fmt::Display for ContextId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctx{}", self.0)
    }
}

/// Identifies one endpoint of a socket pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SocketId(pub u32);

impl fmt::Display for SocketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sock{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_distinct_and_nonempty() {
        assert_eq!(TaskId(3).to_string(), "task3");
        assert_eq!(ContextId(9).to_string(), "ctx9");
        assert_eq!(SocketId(1).to_string(), "sock1");
    }

    #[test]
    fn ids_are_ordered_by_value() {
        assert!(TaskId(1) < TaskId(2));
        assert!(ContextId(1) < ContextId(2));
    }
}
