//! Operating-system simulation for the Power Containers reproduction.
//!
//! The paper implements power containers as modifications to Linux 2.6.30.
//! This crate provides the corresponding substrate: a deterministic,
//! single-threaded simulation of the kernel mechanisms the facility hooks
//! into —
//!
//! * **Tasks and scheduling** ([`Kernel`]): per-core run queues behind a
//!   pluggable [`Scheduler`] policy (round-robin quanta by default, plus
//!   strict-priority and CFS-style fair policies), and Linux-like wakeup
//!   placement that spreads load across chips for performance (the
//!   behaviour visible in the paper's Fig. 1 Woodcrest measurements).
//! * **Programs** ([`Program`], [`Op`]): task behaviour as deterministic
//!   op-stream state machines — compute bursts with hardware activity
//!   profiles, socket sends/receives, fork/wait, blocking I/O, sleeps.
//! * **Sockets with per-segment context tags** — each message carries its
//!   sender's request-context identifier (the paper's TCP-option tag), and
//!   a reader inherits the context of the data it actually consumes, which
//!   is what makes accounting safe on persistent connections (§3.3).
//! * **Instrumentation hooks** ([`KernelHooks`]): the seam where the
//!   power-container facility attaches, invoked at context switches, PMU
//!   overflow interrupts, context (re)binding, task lifecycle and I/O.
//!
//! # Example
//!
//! ```
//! use hwsim::{ActivityProfile, Machine, MachineSpec};
//! use ossim::{Kernel, Op, ScriptProgram};
//! use simkern::SimTime;
//!
//! let mut kernel = Kernel::new(Machine::new(MachineSpec::sandybridge(), 1), Default::default());
//! kernel.spawn(
//!     Box::new(ScriptProgram::new(vec![Op::Compute {
//!         cycles: 1e6,
//!         profile: ActivityProfile::high_ipc(),
//!     }])),
//!     None,
//! );
//! kernel.run_until(SimTime::from_millis(1));
//! assert!(kernel.is_quiescent());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hooks;
mod ids;
mod kernel;
mod program;
mod sched;
mod socket;

pub use hooks::{KernelApi, KernelHooks, NoHooks};
pub use ids::{ContextId, SocketId, TaskId};
pub use kernel::{Kernel, KernelConfig, KernelStats, TaskState};
pub use program::{FnProgram, Op, ProcCtx, Program, Resume, ScriptProgram};
pub use sched::{CfsConfig, PriorityConfig, SchedStats, Scheduler, SchedulerKind};
pub use socket::Segment;
