//! Programs: the behaviour of simulated tasks.
//!
//! A task's behaviour is an object implementing [`Program`]: each time the
//! previous operation completes, the kernel asks the program for the next
//! [`Op`]. This op-stream representation keeps the simulation
//! single-threaded and deterministic while still allowing dynamic,
//! data-dependent behaviour (server loops, per-request work, forking
//! pipelines).

use crate::ids::{ContextId, SocketId, TaskId};
use crate::socket::{Segment, SocketTable};
use hwsim::{ActivityProfile, DeviceKind};
use simkern::{SimDuration, SimRng, SimTime};

/// One operation a task asks the kernel to perform.
pub enum Op {
    /// Execute `cycles` non-halt cycles of work with the given hardware
    /// activity profile. Duty-cycle throttling stretches the wall-clock
    /// time this takes.
    Compute {
        /// Non-halt cycles of work remaining.
        cycles: f64,
        /// Hardware activity generated while computing.
        profile: ActivityProfile,
    },
    /// Send one message over a socket, tagged with the sender's current
    /// request context (non-blocking).
    Send {
        /// Sending endpoint; the message appears at its peer.
        socket: SocketId,
        /// Message size in bytes.
        bytes: u32,
        /// Application payload word delivered with the message.
        payload: u64,
    },
    /// Send one message with an explicit request-context tag, regardless
    /// of the sender's own binding. This is how a request dispatcher
    /// opens a fresh context: the tag rides the message (the simulated
    /// TCP option) and the receiving stage inherits it on `read()`.
    SendTagged {
        /// Sending endpoint; the message appears at its peer.
        socket: SocketId,
        /// Message size in bytes.
        bytes: u32,
        /// Application payload word delivered with the message.
        payload: u64,
        /// The request context to tag the message with.
        ctx: Option<ContextId>,
    },
    /// Block until a message is available on `socket`, then consume it.
    /// The task inherits the consumed segment's request context.
    Recv {
        /// Receiving endpoint.
        socket: SocketId,
    },
    /// Spawn a child task running `child`.
    Fork {
        /// The child's behaviour.
        child: Box<dyn Program>,
        /// The child's request context; `None` inherits the parent's.
        ctx: Option<ContextId>,
        /// Detached children are reaped on exit without a `WaitChild`;
        /// non-detached children persist as zombies until waited for.
        detached: bool,
    },
    /// Block until one (non-detached) child exits; completes immediately
    /// if a zombie child is already waiting or no children exist.
    WaitChild,
    /// Blocking disk I/O of `bytes` bytes.
    DiskIo {
        /// Transfer size.
        bytes: u64,
    },
    /// Blocking network I/O of `bytes` bytes.
    NetIo {
        /// Transfer size.
        bytes: u64,
    },
    /// Block for a fixed duration (timer sleep; the core is free).
    Sleep {
        /// Sleep length.
        duration: SimDuration,
    },
    /// Rebind this task to a different request context (or unbind with
    /// `None`). Used by request drivers to open a fresh context per
    /// arriving request.
    BindContext(Option<ContextId>),
    /// Terminate this task.
    Exit,
}

impl std::fmt::Debug for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Op::Compute { cycles, .. } => write!(f, "Compute({cycles:.0} cycles)"),
            Op::Send { socket, bytes, .. } => write!(f, "Send({socket}, {bytes}B)"),
            Op::SendTagged { socket, bytes, ctx, .. } => {
                write!(f, "SendTagged({socket}, {bytes}B, {ctx:?})")
            }
            Op::Recv { socket } => write!(f, "Recv({socket})"),
            Op::Fork { detached, .. } => write!(f, "Fork(detached={detached})"),
            Op::WaitChild => write!(f, "WaitChild"),
            Op::DiskIo { bytes } => write!(f, "DiskIo({bytes}B)"),
            Op::NetIo { bytes } => write!(f, "NetIo({bytes}B)"),
            Op::Sleep { duration } => write!(f, "Sleep({duration})"),
            Op::BindContext(ctx) => write!(f, "BindContext({ctx:?})"),
            Op::Exit => write!(f, "Exit"),
        }
    }
}

/// Why the program is being asked for its next op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Resume {
    /// First dispatch of the task.
    Start,
    /// The previous op completed normally.
    Done,
    /// The previous op was a `Recv`; the consumed segment is in
    /// [`ProcCtx::last_msg`].
    Received,
    /// The previous op was a `WaitChild`; a child with the given id exited.
    ChildExited(TaskId),
}

/// Kernel services available to a program while it chooses its next op.
pub struct ProcCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// This task's id.
    pub task: TaskId,
    /// This task's current request context.
    pub context: Option<ContextId>,
    /// Why the program was resumed.
    pub resume: Resume,
    /// The message consumed by a just-completed `Recv`.
    pub last_msg: Option<Segment>,
    /// Deterministic per-task randomness.
    pub rng: &'a mut SimRng,
    pub(crate) sockets: &'a mut SocketTable,
}

impl<'a> ProcCtx<'a> {
    /// Creates a fresh connected socket pair (e.g. for talking to a child
    /// about to be forked).
    pub fn new_socket_pair(&mut self) -> (SocketId, SocketId) {
        self.sockets.new_pair()
    }
}

/// The behaviour of one task: a state machine yielding [`Op`]s.
///
/// Programs run inside the single-threaded kernel loop, so they need no
/// synchronization; shared experiment state is typically an
/// `Rc<RefCell<...>>` captured by the program.
pub trait Program {
    /// Returns the next operation to perform. Called once at first dispatch
    /// and again each time the previous op completes.
    fn next_op(&mut self, ctx: &mut ProcCtx<'_>) -> Op;
}

/// A program built from a closure — convenient for tests and simple
/// drivers.
///
/// # Example
///
/// ```
/// use ossim::{FnProgram, Op};
///
/// let mut steps = vec![Op::Exit];
/// let _p = FnProgram::new(move |_ctx| steps.pop().unwrap_or(Op::Exit));
/// ```
pub struct FnProgram<F>(F);

impl<F: FnMut(&mut ProcCtx<'_>) -> Op> FnProgram<F> {
    /// Wraps a closure as a [`Program`].
    pub fn new(f: F) -> FnProgram<F> {
        FnProgram(f)
    }
}

impl<F: FnMut(&mut ProcCtx<'_>) -> Op> Program for FnProgram<F> {
    fn next_op(&mut self, ctx: &mut ProcCtx<'_>) -> Op {
        (self.0)(ctx)
    }
}

/// A program that executes a fixed list of ops and exits.
///
/// # Example
///
/// ```
/// use ossim::{Op, ScriptProgram};
/// use hwsim::ActivityProfile;
///
/// let _p = ScriptProgram::new(vec![
///     Op::Compute { cycles: 1e6, profile: ActivityProfile::cpu_spin() },
/// ]);
/// ```
pub struct ScriptProgram {
    ops: std::vec::IntoIter<Op>,
}

impl ScriptProgram {
    /// Creates a program that performs `ops` in order, then exits.
    pub fn new(ops: Vec<Op>) -> ScriptProgram {
        ScriptProgram { ops: ops.into_iter() }
    }
}

impl Program for ScriptProgram {
    fn next_op(&mut self, _ctx: &mut ProcCtx<'_>) -> Op {
        self.ops.next().unwrap_or(Op::Exit)
    }
}

/// Relates an I/O op to a device kind (helper shared with the kernel).
#[allow(dead_code)]
pub(crate) fn io_device(op_is_disk: bool) -> DeviceKind {
    if op_is_disk {
        DeviceKind::Disk
    } else {
        DeviceKind::Net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_formats_do_not_panic() {
        let ops = [
            Op::Compute { cycles: 10.0, profile: ActivityProfile::cpu_spin() },
            Op::Send { socket: SocketId(0), bytes: 1, payload: 0 },
            Op::Recv { socket: SocketId(0) },
            Op::Fork { child: Box::new(ScriptProgram::new(vec![])), ctx: None, detached: true },
            Op::WaitChild,
            Op::DiskIo { bytes: 1 },
            Op::NetIo { bytes: 1 },
            Op::Sleep { duration: SimDuration::from_millis(1) },
            Op::BindContext(Some(ContextId(1))),
            Op::Exit,
        ];
        for op in &ops {
            assert!(!format!("{op:?}").is_empty());
        }
    }

    #[test]
    fn script_program_yields_then_exits() {
        let mut table = SocketTable::default();
        let mut rng = SimRng::new(1);
        let mut ctx = ProcCtx {
            now: SimTime::ZERO,
            task: TaskId(0),
            context: None,
            resume: Resume::Start,
            last_msg: None,
            rng: &mut rng,
            sockets: &mut table,
        };
        let mut p = ScriptProgram::new(vec![Op::WaitChild]);
        assert!(matches!(p.next_op(&mut ctx), Op::WaitChild));
        assert!(matches!(p.next_op(&mut ctx), Op::Exit));
        assert!(matches!(p.next_op(&mut ctx), Op::Exit));
    }

    #[test]
    fn proc_ctx_creates_socket_pairs() {
        let mut table = SocketTable::default();
        let mut rng = SimRng::new(1);
        let mut ctx = ProcCtx {
            now: SimTime::ZERO,
            task: TaskId(0),
            context: None,
            resume: Resume::Start,
            last_msg: None,
            rng: &mut rng,
            sockets: &mut table,
        };
        let (a, b) = ctx.new_socket_pair();
        assert_ne!(a, b);
    }

    #[test]
    fn io_device_maps_kinds() {
        assert_eq!(io_device(true), DeviceKind::Disk);
        assert_eq!(io_device(false), DeviceKind::Net);
    }
}
