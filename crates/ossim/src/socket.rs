//! Sockets with per-segment request-context tagging.
//!
//! The paper (§3.3) tags each socket message with the sender's request
//! context identifier, carried in a TCP option. Because high-throughput
//! servers reuse persistent connections across requests, a socket buffer
//! may simultaneously hold segments belonging to *different* requests, so
//! each buffered segment keeps its own tag and a receiver inherits the
//! context of the data it actually reads — the naive
//! socket-inherits-last-tag design is explicitly unsafe.

use crate::ids::{ContextId, SocketId};
use simkern::SimTime;
use std::collections::VecDeque;

/// One message buffered in a socket, carrying its sender's request-context
/// tag (the simulated TCP option) and a small application payload word.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Message size in bytes (affects nothing in the local transport but is
    /// reported to hooks and workloads).
    pub bytes: u32,
    /// The sender's request context at send time, if any.
    pub ctx: Option<ContextId>,
    /// Free-form application data (request type, status code, ...).
    pub payload: u64,
    /// When the message was sent.
    pub sent_at: SimTime,
}

/// One endpoint of a bidirectional socket pair.
#[derive(Debug, Clone)]
pub(crate) struct SocketEndpoint {
    /// The other endpoint of the pair.
    pub peer: SocketId,
    /// Received segments not yet consumed by a `read()`.
    pub buffer: VecDeque<Segment>,
    /// Task blocked in `read()` on this endpoint, if any.
    pub waiting_reader: Option<crate::ids::TaskId>,
    /// The tag of the most recently *delivered* message — only consulted
    /// by the naive-tagging ablation (§3.3's rejected design).
    pub last_tag: Option<ContextId>,
}

impl SocketEndpoint {
    pub fn new(peer: SocketId) -> SocketEndpoint {
        SocketEndpoint {
            peer,
            buffer: VecDeque::new(),
            waiting_reader: None,
            last_tag: None,
        }
    }
}

/// The socket table; owns every endpoint in one kernel.
#[derive(Debug, Default)]
pub(crate) struct SocketTable {
    endpoints: Vec<SocketEndpoint>,
}

impl SocketTable {
    /// Creates a connected pair and returns both endpoint ids.
    pub fn new_pair(&mut self) -> (SocketId, SocketId) {
        let a = SocketId(self.endpoints.len() as u32);
        let b = SocketId(self.endpoints.len() as u32 + 1);
        self.endpoints.push(SocketEndpoint::new(b));
        self.endpoints.push(SocketEndpoint::new(a));
        (a, b)
    }

    pub fn get(&self, id: SocketId) -> &SocketEndpoint {
        &self.endpoints[id.0 as usize]
    }

    pub fn get_mut(&mut self, id: SocketId) -> &mut SocketEndpoint {
        &mut self.endpoints[id.0 as usize]
    }

    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.endpoints.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_endpoints_reference_each_other() {
        let mut t = SocketTable::default();
        let (a, b) = t.new_pair();
        assert_eq!(t.get(a).peer, b);
        assert_eq!(t.get(b).peer, a);
        let (c, _d) = t.new_pair();
        assert_ne!(a, c);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn segments_keep_individual_tags() {
        let mut t = SocketTable::default();
        let (a, _b) = t.new_pair();
        let ep = t.get_mut(a);
        ep.buffer.push_back(Segment {
            bytes: 10,
            ctx: Some(ContextId(1)),
            payload: 0,
            sent_at: SimTime::ZERO,
        });
        ep.buffer.push_back(Segment {
            bytes: 20,
            ctx: Some(ContextId(2)),
            payload: 0,
            sent_at: SimTime::ZERO,
        });
        assert_eq!(ep.buffer[0].ctx, Some(ContextId(1)));
        assert_eq!(ep.buffer[1].ctx, Some(ContextId(2)));
    }
}
