//! Pluggable per-core scheduling policies.
//!
//! The paper's attribution machinery (§3) must survive *any* interleaving
//! the OS scheduler produces: per-request energy is integrated over
//! scheduling segments, so correctness cannot depend on who runs when.
//! This module factors the kernel's dispatch decisions behind the
//! [`Scheduler`] trait so that claim is testable rather than assumed.
//! Three deterministic policies ship:
//!
//! * [`SchedulerKind::RoundRobin`] — the original FIFO run queues with
//!   fixed quanta, extracted byte-identically (the conformance suite
//!   pins it against a pre-refactor oracle trace).
//! * [`SchedulerKind::Priority`] — strict multilevel priorities with
//!   aging-based anti-starvation boosts and starvation accounting.
//! * [`SchedulerKind::Cfs`] — a CFS-style weighted-fair policy that
//!   picks the minimum virtual runtime, charging vruntime at
//!   context-switch boundaries.
//!
//! All three share the kernel's Fig.-1 wake placement (idle core on the
//! least-busy chip, else shortest queue) via the trait's default
//! [`Scheduler::select_core`]; policies may override it. Every decision
//! is a pure function of simulated state, so runs are reproducible
//! bit-for-bit for a fixed seed regardless of host parallelism.

use crate::ids::{ContextId, TaskId};
use hwsim::MachineSpec;
use simkern::{SimDuration, SimTime};
use std::collections::{BTreeMap, HashMap, VecDeque};
use telemetry::{FieldValue, Telemetry};

/// Scheduler decision counters, exposed via `Kernel::sched_stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Successful pick-next decisions (a queued task was dispatched).
    pub picks: u64,
    /// Quantum-expiry preemptions that switched to a waiting task.
    pub preemptions: u64,
    /// Anti-starvation boosts applied (priority scheduler only).
    pub boosts: u64,
    /// Longest observed run-queue wait, in nanoseconds.
    pub max_wait_ns: u64,
}

impl SchedStats {
    fn note_wait(&mut self, enqueued: SimTime, now: SimTime) {
        let ns = now.duration_since(enqueued).as_nanos();
        if ns > self.max_wait_ns {
            self.max_wait_ns = ns;
        }
        self.picks += 1;
    }
}

/// Configuration for the strict-priority scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct PriorityConfig {
    /// Number of priority levels; level 0 is most urgent.
    pub levels: u8,
    /// Derive a context's default level as `ctx.0 % levels` (contexts
    /// without an explicit [`Scheduler::set_context_priority`] call).
    /// Untagged tasks always run at the middle level.
    pub derive_from_context: bool,
    /// A task queued longer than this is boosted to level 0 (aging),
    /// bounding starvation under sustained high-priority load.
    pub starvation_after: SimDuration,
}

impl Default for PriorityConfig {
    fn default() -> PriorityConfig {
        PriorityConfig {
            levels: 4,
            derive_from_context: true,
            starvation_after: SimDuration::from_millis(20),
        }
    }
}

/// Configuration for the CFS-style fair scheduler.
#[derive(Debug, Clone, PartialEq)]
pub struct CfsConfig {
    /// Weight ratio between adjacent priority levels (Linux uses ~1.25).
    pub weight_step: f64,
    /// Number of weight levels; level 0 is heaviest.
    pub levels: u8,
    /// Derive a context's default level as `ctx.0 % levels`.
    pub derive_from_context: bool,
}

impl Default for CfsConfig {
    fn default() -> CfsConfig {
        CfsConfig { weight_step: 1.25, levels: 4, derive_from_context: true }
    }
}

/// Which scheduling policy a kernel runs.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum SchedulerKind {
    /// The original FIFO round-robin (default; byte-identical to the
    /// pre-trait kernel).
    #[default]
    RoundRobin,
    /// Strict multilevel priority with aging.
    Priority(PriorityConfig),
    /// Weighted-fair virtual-runtime scheduling.
    Cfs(CfsConfig),
}

impl SchedulerKind {
    /// Every selectable kind under its canonical flag name, for sweeps.
    pub const ALL_NAMES: [&'static str; 3] = ["rr", "priority", "cfs"];

    /// The canonical short name (`rr`, `priority`, `cfs`).
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::RoundRobin => "rr",
            SchedulerKind::Priority(_) => "priority",
            SchedulerKind::Cfs(_) => "cfs",
        }
    }

    /// Parses a `--sched` flag value (default configs for each policy).
    pub fn parse(s: &str) -> Option<SchedulerKind> {
        match s {
            "rr" | "round-robin" | "roundrobin" => Some(SchedulerKind::RoundRobin),
            "priority" | "prio" => Some(SchedulerKind::Priority(PriorityConfig::default())),
            "cfs" | "fair" => Some(SchedulerKind::Cfs(CfsConfig::default())),
            _ => None,
        }
    }

    /// Builds the policy for a machine with `cores` cores. `telemetry`
    /// receives `sched`-category decision events when recording.
    pub fn build(&self, cores: usize, telemetry: Telemetry) -> Box<dyn Scheduler> {
        match self {
            SchedulerKind::RoundRobin => Box::new(RoundRobin::new(cores, telemetry)),
            SchedulerKind::Priority(cfg) => {
                Box::new(Priority::new(cores, cfg.clone(), telemetry))
            }
            SchedulerKind::Cfs(cfg) => Box::new(Cfs::new(cores, cfg.clone(), telemetry)),
        }
    }
}

/// A deterministic per-core scheduling policy.
///
/// The kernel owns task lifecycle and blocking; the scheduler owns run
/// queues and dispatch order. Contracts:
///
/// * a task is in at most one queue at a time, and never queued while
///   running or blocked;
/// * `pick_next` / `on_quantum_expired` decisions depend only on queue
///   state, configuration and `now` — never on host state;
/// * `on_quantum_expired` re-queues `current` itself when (and only
///   when) it returns a replacement to install.
pub trait Scheduler {
    /// The policy's canonical short name.
    fn kind(&self) -> &'static str;

    /// Adds `task` (bound to `ctx`) to `core`'s run queue.
    fn enqueue(&mut self, core: usize, task: TaskId, ctx: Option<ContextId>, now: SimTime);

    /// Removes and returns the next task to run on `core`, if any.
    fn pick_next(&mut self, core: usize, now: SimTime) -> Option<TaskId>;

    /// `current`'s quantum on `core` expired. Returns the task to switch
    /// to (after internally re-queueing `current`), or `None` to let
    /// `current` keep the core for another quantum.
    fn on_quantum_expired(
        &mut self,
        core: usize,
        current: TaskId,
        ctx: Option<ContextId>,
        now: SimTime,
    ) -> Option<TaskId>;

    /// `task` starts running on `core` (context-switch in).
    fn on_run(&mut self, core: usize, task: TaskId, ctx: Option<ContextId>, now: SimTime) {
        let _ = (core, task, ctx, now);
    }

    /// `task` stops running on `core` (context-switch out).
    fn on_stop(&mut self, core: usize, task: TaskId, now: SimTime) {
        let _ = (core, task, now);
    }

    /// Tasks queued (not running) on `core`.
    fn queue_len(&self, core: usize) -> usize;

    /// Tasks queued across all cores.
    fn total_queued(&self) -> usize;

    /// Pins `ctx` to priority/weight level `priority` (0 = most urgent).
    /// Policies without priorities ignore this.
    fn set_context_priority(&mut self, ctx: ContextId, priority: u8) {
        let _ = (ctx, priority);
    }

    /// Decision counters for this policy.
    fn stats(&self) -> SchedStats;

    /// Chooses the core on which to place a newly-runnable task: the
    /// Fig. 1 policy — an idle core on the chip with the fewest busy
    /// cores (Linux's performance-oriented spreading), else the
    /// shortest run queue. Matches the pre-trait kernel exactly.
    fn select_core(&self, spec: &MachineSpec, running: &[Option<TaskId>]) -> usize {
        let mut best_idle: Option<(usize, usize)> = None; // (busy_on_chip, core)
        for core in 0..spec.total_cores() {
            if running[core].is_none() && self.queue_len(core) == 0 {
                let chip = spec.chip_of(core);
                let busy = spec
                    .cores_of(chip)
                    .filter(|&c| running[c].is_some())
                    .count();
                match best_idle {
                    Some((b, _)) if b <= busy => {}
                    _ => best_idle = Some((busy, core)),
                }
            }
        }
        if let Some((_, core)) = best_idle {
            return core;
        }
        (0..spec.total_cores())
            .min_by_key(|&c| self.queue_len(c) + usize::from(running[c].is_some()))
            .expect("machine has at least one core")
    }
}

fn emit_preempt(tele: &Telemetry, now: SimTime, core: usize, prev: TaskId, next: TaskId) {
    if tele.enabled() {
        tele.instant_on(
            now,
            "sched",
            "sched_preempt",
            1,
            &[
                ("core", FieldValue::U64(core as u64)),
                ("prev", FieldValue::U64(u64::from(prev.0))),
                ("next", FieldValue::U64(u64::from(next.0))),
            ],
        );
        tele.add_count("sched.preempts", 1);
    }
}

// ---- round-robin ------------------------------------------------------

/// The original policy: per-core FIFO queues, fixed quanta.
struct RoundRobin {
    queues: Vec<VecDeque<(TaskId, SimTime)>>,
    stats: SchedStats,
    tele: Telemetry,
}

impl RoundRobin {
    fn new(cores: usize, tele: Telemetry) -> RoundRobin {
        RoundRobin {
            queues: (0..cores).map(|_| VecDeque::new()).collect(),
            stats: SchedStats::default(),
            tele,
        }
    }
}

impl Scheduler for RoundRobin {
    fn kind(&self) -> &'static str {
        "rr"
    }

    fn enqueue(&mut self, core: usize, task: TaskId, _ctx: Option<ContextId>, now: SimTime) {
        self.queues[core].push_back((task, now));
    }

    fn pick_next(&mut self, core: usize, now: SimTime) -> Option<TaskId> {
        let (task, enqueued) = self.queues[core].pop_front()?;
        self.stats.note_wait(enqueued, now);
        Some(task)
    }

    fn on_quantum_expired(
        &mut self,
        core: usize,
        current: TaskId,
        _ctx: Option<ContextId>,
        now: SimTime,
    ) -> Option<TaskId> {
        let (next, enqueued) = self.queues[core].pop_front()?;
        self.queues[core].push_back((current, now));
        self.stats.note_wait(enqueued, now);
        self.stats.preemptions += 1;
        emit_preempt(&self.tele, now, core, current, next);
        Some(next)
    }

    fn queue_len(&self, core: usize) -> usize {
        self.queues[core].len()
    }

    fn total_queued(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    fn stats(&self) -> SchedStats {
        self.stats
    }
}

// ---- strict priority --------------------------------------------------

/// Strict multilevel priority: always dispatch the lowest-numbered
/// non-empty level, FIFO within a level. Aging promotes entries that
/// waited past `starvation_after` to level 0, so low-priority contexts
/// are delayed but never starved.
struct Priority {
    cfg: PriorityConfig,
    /// `queues[core][level]` holds `(task, first_enqueued_at)`.
    queues: Vec<Vec<VecDeque<(TaskId, SimTime)>>>,
    overrides: HashMap<ContextId, u8>,
    stats: SchedStats,
    tele: Telemetry,
}

impl Priority {
    fn new(cores: usize, cfg: PriorityConfig, tele: Telemetry) -> Priority {
        let levels = usize::from(cfg.levels.max(1));
        Priority {
            queues: (0..cores)
                .map(|_| (0..levels).map(|_| VecDeque::new()).collect())
                .collect(),
            cfg,
            overrides: HashMap::new(),
            stats: SchedStats::default(),
            tele,
        }
    }

    fn level_of(&self, ctx: Option<ContextId>) -> usize {
        let levels = u64::from(self.cfg.levels.max(1));
        match ctx {
            Some(c) => match self.overrides.get(&c) {
                Some(&p) => usize::from(p).min(levels as usize - 1),
                None if self.cfg.derive_from_context => (c.0 % levels) as usize,
                None => (levels / 2) as usize,
            },
            None => (levels / 2) as usize,
        }
    }

    /// Promotes every entry that has waited past the starvation bound to
    /// the back of level 0, preserving its original enqueue time.
    fn age(&mut self, core: usize, now: SimTime) {
        for level in 1..self.queues[core].len() {
            while let Some(&(task, t0)) = self.queues[core][level].front() {
                if now.duration_since(t0) < self.cfg.starvation_after {
                    break;
                }
                self.queues[core][level].pop_front();
                self.queues[core][0].push_back((task, t0));
                self.stats.boosts += 1;
                if self.tele.enabled() {
                    self.tele.instant_on(
                        now,
                        "sched",
                        "sched_boost",
                        1,
                        &[
                            ("core", FieldValue::U64(core as u64)),
                            ("task", FieldValue::U64(u64::from(task.0))),
                            ("from_level", FieldValue::U64(level as u64)),
                        ],
                    );
                    self.tele.add_count("sched.boosts", 1);
                }
            }
        }
    }

    fn pop_best(&mut self, core: usize, now: SimTime) -> Option<(TaskId, SimTime)> {
        self.age(core, now);
        for level in 0..self.queues[core].len() {
            if let Some(entry) = self.queues[core][level].pop_front() {
                return Some(entry);
            }
        }
        None
    }
}

impl Scheduler for Priority {
    fn kind(&self) -> &'static str {
        "priority"
    }

    fn enqueue(&mut self, core: usize, task: TaskId, ctx: Option<ContextId>, now: SimTime) {
        let level = self.level_of(ctx);
        self.queues[core][level].push_back((task, now));
    }

    fn pick_next(&mut self, core: usize, now: SimTime) -> Option<TaskId> {
        let (task, enqueued) = self.pop_best(core, now)?;
        self.stats.note_wait(enqueued, now);
        Some(task)
    }

    fn on_quantum_expired(
        &mut self,
        core: usize,
        current: TaskId,
        ctx: Option<ContextId>,
        now: SimTime,
    ) -> Option<TaskId> {
        // Strict priority preempts only for an equal-or-more-urgent
        // waiter; the aging pass inside `pop_best` keeps that bounded.
        let cur_level = self.level_of(ctx);
        self.age(core, now);
        let best = (0..=cur_level.min(self.queues[core].len() - 1))
            .find(|&l| !self.queues[core][l].is_empty())?;
        let (next, enqueued) = self.queues[core][best].pop_front().expect("non-empty level");
        self.queues[core][cur_level].push_back((current, now));
        self.stats.note_wait(enqueued, now);
        self.stats.preemptions += 1;
        emit_preempt(&self.tele, now, core, current, next);
        Some(next)
    }

    fn queue_len(&self, core: usize) -> usize {
        self.queues[core].iter().map(VecDeque::len).sum()
    }

    fn total_queued(&self) -> usize {
        (0..self.queues.len()).map(|c| self.queue_len(c)).sum()
    }

    fn set_context_priority(&mut self, ctx: ContextId, priority: u8) {
        self.overrides.insert(ctx, priority);
    }

    fn stats(&self) -> SchedStats {
        self.stats
    }
}

// ---- CFS-style fair ---------------------------------------------------

/// Weighted-fair scheduling on virtual runtime: each task accrues
/// `wall_ns / weight` vruntime while running; dispatch always picks the
/// queued task with minimum `(vruntime, arrival_seq)`. Weights follow
/// `weight_step^(mid - level)`, so heavier (lower-level) contexts accrue
/// vruntime more slowly and receive proportionally more CPU.
struct Cfs {
    cfg: CfsConfig,
    /// Per-core ready tree keyed by `(vruntime.to_bits(), seq)` —
    /// vruntimes are non-negative finite, so bit order is numeric order.
    trees: Vec<BTreeMap<(u64, u64), (TaskId, SimTime)>>,
    /// Monotone floor: new/woken tasks start at the core's min vruntime
    /// so sleepers neither bank unbounded credit nor get starved.
    floors: Vec<f64>,
    /// `vruntime[task]`, grown on demand (task ids are dense).
    vruntime: Vec<f64>,
    /// Currently-charging task per core: `(task, weight, run_start)`.
    running: Vec<Option<(TaskId, f64, SimTime)>>,
    overrides: HashMap<ContextId, u8>,
    seq: u64,
    stats: SchedStats,
    tele: Telemetry,
}

impl Cfs {
    fn new(cores: usize, cfg: CfsConfig, tele: Telemetry) -> Cfs {
        Cfs {
            cfg,
            trees: (0..cores).map(|_| BTreeMap::new()).collect(),
            floors: vec![0.0; cores],
            vruntime: Vec::new(),
            running: vec![None; cores],
            overrides: HashMap::new(),
            seq: 0,
            stats: SchedStats::default(),
            tele,
        }
    }

    fn weight_of(&self, ctx: Option<ContextId>) -> f64 {
        let levels = u64::from(self.cfg.levels.max(1));
        let level = match ctx {
            Some(c) => match self.overrides.get(&c) {
                Some(&p) => u64::from(p).min(levels - 1),
                None if self.cfg.derive_from_context => c.0 % levels,
                None => levels / 2,
            },
            None => levels / 2,
        };
        self.cfg.weight_step.powi((levels / 2) as i32 - level as i32)
    }

    fn vr_mut(&mut self, task: TaskId) -> &mut f64 {
        let idx = task.0 as usize;
        if self.vruntime.len() <= idx {
            self.vruntime.resize(idx + 1, 0.0);
        }
        &mut self.vruntime[idx]
    }

    fn vr(&self, task: TaskId) -> f64 {
        self.vruntime.get(task.0 as usize).copied().unwrap_or(0.0)
    }

    /// Accrues vruntime for whatever `core` has been charging since the
    /// last switch (no-op when idle or already charged).
    fn charge(&mut self, core: usize, now: SimTime) {
        if let Some((task, weight, start)) = self.running[core].take() {
            let ns = now.duration_since(start).as_nanos() as f64;
            *self.vr_mut(task) += ns / weight;
        }
    }

    fn insert(&mut self, core: usize, task: TaskId, now: SimTime) {
        let vr = self.vr(task).max(self.floors[core]);
        *self.vr_mut(task) = vr;
        self.seq += 1;
        self.trees[core].insert((vr.to_bits(), self.seq), (task, now));
    }

    fn pop_min(&mut self, core: usize) -> Option<((u64, u64), (TaskId, SimTime))> {
        let key = *self.trees[core].keys().next()?;
        let entry = self.trees[core].remove(&key).expect("present");
        self.floors[core] = self.floors[core].max(f64::from_bits(key.0));
        Some((key, entry))
    }
}

impl Scheduler for Cfs {
    fn kind(&self) -> &'static str {
        "cfs"
    }

    fn enqueue(&mut self, core: usize, task: TaskId, _ctx: Option<ContextId>, now: SimTime) {
        self.insert(core, task, now);
    }

    fn pick_next(&mut self, core: usize, now: SimTime) -> Option<TaskId> {
        let (_, (task, enqueued)) = self.pop_min(core)?;
        self.stats.note_wait(enqueued, now);
        Some(task)
    }

    fn on_quantum_expired(
        &mut self,
        core: usize,
        current: TaskId,
        _ctx: Option<ContextId>,
        now: SimTime,
    ) -> Option<TaskId> {
        // Charge the expiring slice first so the fairness comparison is
        // against up-to-date vruntime.
        let weight = self.running[core].map_or(1.0, |(_, w, _)| w);
        self.charge(core, now);
        let cur_vr = self.vr(current);
        match self.trees[core].keys().next() {
            Some(&(bits, _)) if f64::from_bits(bits) < cur_vr => {
                let (_, (next, enqueued)) = self.pop_min(core).expect("non-empty tree");
                self.insert(core, current, now);
                self.stats.note_wait(enqueued, now);
                self.stats.preemptions += 1;
                emit_preempt(&self.tele, now, core, current, next);
                Some(next)
            }
            _ => {
                // Keep the core; re-arm charging from this instant.
                self.running[core] = Some((current, weight, now));
                None
            }
        }
    }

    fn on_run(&mut self, core: usize, task: TaskId, ctx: Option<ContextId>, now: SimTime) {
        self.running[core] = Some((task, self.weight_of(ctx), now));
    }

    fn on_stop(&mut self, core: usize, task: TaskId, now: SimTime) {
        if self.running[core].is_some_and(|(t, _, _)| t == task) {
            self.charge(core, now);
        }
    }

    fn queue_len(&self, core: usize) -> usize {
        self.trees[core].len()
    }

    fn total_queued(&self) -> usize {
        self.trees.iter().map(BTreeMap::len).sum()
    }

    fn set_context_priority(&mut self, ctx: ContextId, priority: u8) {
        self.overrides.insert(ctx, priority);
    }

    fn stats(&self) -> SchedStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrip() {
        for name in SchedulerKind::ALL_NAMES {
            assert_eq!(SchedulerKind::parse(name).unwrap().name(), name);
        }
        assert!(SchedulerKind::parse("fifo").is_none());
        assert_eq!(SchedulerKind::default().name(), "rr");
    }

    #[test]
    fn rr_fifo_order() {
        let mut s = RoundRobin::new(1, Telemetry::disabled());
        let t = SimTime::ZERO;
        for i in 0..3 {
            s.enqueue(0, TaskId(i), None, t);
        }
        assert_eq!(s.pick_next(0, t), Some(TaskId(0)));
        assert_eq!(s.on_quantum_expired(0, TaskId(0), None, t), Some(TaskId(1)));
        // TaskId(0) went to the back.
        assert_eq!(s.pick_next(0, t), Some(TaskId(2)));
        assert_eq!(s.pick_next(0, t), Some(TaskId(0)));
        assert_eq!(s.pick_next(0, t), None);
    }

    #[test]
    fn priority_dispatch_and_aging() {
        let cfg = PriorityConfig {
            levels: 3,
            derive_from_context: false,
            starvation_after: SimDuration::from_millis(1),
        };
        let mut s = Priority::new(1, cfg, Telemetry::disabled());
        s.set_context_priority(ContextId(1), 0);
        s.set_context_priority(ContextId(2), 2);
        let t0 = SimTime::ZERO;
        s.enqueue(0, TaskId(10), Some(ContextId(2)), t0);
        s.enqueue(0, TaskId(11), Some(ContextId(1)), t0);
        // Urgent context dispatches first despite later arrival.
        assert_eq!(s.pick_next(0, t0), Some(TaskId(11)));
        // After the starvation bound, the level-2 task is boosted to the
        // back of level 0: it now beats any *lower* level but queues
        // behind already-urgent work.
        let late = t0 + SimDuration::from_millis(2);
        s.enqueue(0, TaskId(12), Some(ContextId(1)), late);
        assert_eq!(s.pick_next(0, late), Some(TaskId(12)));
        assert_eq!(s.stats().boosts, 1);
        assert_eq!(s.pick_next(0, late), Some(TaskId(10)));
    }

    #[test]
    fn cfs_prefers_min_vruntime() {
        let mut s = Cfs::new(1, CfsConfig::default(), Telemetry::disabled());
        let t0 = SimTime::ZERO;
        s.enqueue(0, TaskId(0), None, t0);
        assert_eq!(s.pick_next(0, t0), Some(TaskId(0)));
        s.on_run(0, TaskId(0), None, t0);
        // Task 0 runs 1 ms, accruing vruntime; a fresh task then wins.
        let t1 = t0 + SimDuration::from_millis(1);
        s.enqueue(0, TaskId(1), None, t1);
        assert_eq!(s.on_quantum_expired(0, TaskId(0), None, t1), Some(TaskId(1)));
        assert!(s.vr(TaskId(0)) > 0.0);
        // Task 0 waits in the tree; task 1 must accrue past it to yield.
        s.on_run(0, TaskId(1), None, t1);
        let t2 = t1 + SimDuration::from_micros(10);
        assert_eq!(s.on_quantum_expired(0, TaskId(1), None, t2), None);
        let t3 = t1 + SimDuration::from_millis(2);
        assert_eq!(s.on_quantum_expired(0, TaskId(1), None, t3), Some(TaskId(0)));
    }
}
