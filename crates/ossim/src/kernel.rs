//! The simulated operating system kernel.
//!
//! [`Kernel`] owns a [`Machine`] and drives it with a discrete-event loop:
//! per-core run queues managed by a pluggable [`Scheduler`] policy
//! (round-robin quanta by default), Linux-like spreading placement of
//! woken tasks (idle cores on the least-busy chip first — the behaviour
//! behind Fig. 1's Woodcrest measurements), sockets with per-segment
//! request-context tags, fork/wait, blocking I/O and sleeps, and
//! PMU-overflow interrupts delivered to the installed
//! [`KernelHooks`](crate::KernelHooks) facility.

use crate::hooks::{KernelApi, KernelHooks};
use crate::ids::{ContextId, SocketId, TaskId};
use crate::program::{Op, ProcCtx, Program, Resume};
use crate::sched::{SchedStats, Scheduler, SchedulerKind};
use crate::socket::{Segment, SocketTable};
use hwsim::{ActivityProfile, CoreId, DeviceKind, Machine, TagFault};
use simkern::{EventQueue, SimDuration, SimRng, SimTime};

/// Work below this many remaining cycles counts as complete (absorbs
/// nanosecond rounding of completion deadlines).
const CYCLE_EPS: f64 = 0.5;

/// Cap on zero-time operations one task may issue back-to-back; exceeding
/// it indicates a program spinning without ever computing or blocking.
const MAX_INSTANT_OPS: usize = 100_000;

/// Tunable kernel parameters.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Round-robin scheduling quantum.
    pub quantum: SimDuration,
    /// One-way local socket delivery latency.
    pub socket_latency: SimDuration,
    /// Disk throughput in bytes/second.
    pub disk_bandwidth: f64,
    /// Fixed per-operation disk latency.
    pub disk_latency: SimDuration,
    /// Network throughput in bytes/second.
    pub net_bandwidth: f64,
    /// Fixed per-operation network latency.
    pub net_latency: SimDuration,
    /// Ablation: emulate the naive context-propagation design the paper
    /// rejects in §3.3 — the receiving *socket* inherits the most recent
    /// message's tag instead of each segment carrying its own, which
    /// misattributes requests on persistent connections.
    pub naive_socket_tagging: bool,
    /// Trace recorder for kernel events (context switches, PMU
    /// interrupts). Disabled by default; every emission site is guarded
    /// so the disabled path costs one branch.
    pub telemetry: telemetry::Telemetry,
    /// Scheduling policy for the per-core run queues. Round-robin (the
    /// pre-trait behaviour, byte-identical) by default.
    pub sched: SchedulerKind,
}

impl Default for KernelConfig {
    fn default() -> KernelConfig {
        KernelConfig {
            quantum: SimDuration::from_millis(2),
            socket_latency: SimDuration::from_micros(10),
            disk_bandwidth: 150e6,
            disk_latency: SimDuration::from_micros(400),
            net_bandwidth: 1e9,
            net_latency: SimDuration::from_micros(50),
            naive_socket_tagging: false,
            telemetry: telemetry::Telemetry::disabled(),
            sched: SchedulerKind::RoundRobin,
        }
    }
}

/// Observable lifecycle state of a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskState {
    /// Waiting in a run queue.
    Runnable,
    /// Executing on the given core.
    Running(CoreId),
    /// Blocked in `read()` on a socket.
    BlockedRecv(SocketId),
    /// Blocked in `wait()` for a child.
    BlockedWait,
    /// Blocked on disk or network I/O.
    BlockedIo,
    /// Blocked in a timer sleep.
    BlockedSleep,
    /// Exited, waiting to be reaped by its parent.
    Zombie,
    /// Exited and reaped.
    Dead,
}

#[derive(Debug)]
enum Pending {
    Compute { remaining: f64, profile: ActivityProfile },
    Recv { socket: SocketId },
    Wait,
    Io { device: DeviceKind, bytes: u64, started: SimTime },
    Sleep,
}

struct Task {
    parent: Option<TaskId>,
    program: Option<Box<dyn Program>>,
    state: TaskState,
    pending: Option<Pending>,
    resume: Resume,
    last_msg: Option<Segment>,
    children_live: u32,
    zombies: Vec<TaskId>,
    detached: bool,
}

/// Aggregate kernel activity counters, used by the overhead experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Context switches performed (including switches to/from idle).
    pub context_switches: u64,
    /// PMU overflow interrupts delivered to hooks.
    pub pmu_interrupts: u64,
    /// Socket messages delivered.
    pub messages: u64,
    /// Tasks created (spawn + fork).
    pub tasks_created: u64,
    /// Tasks exited.
    pub tasks_exited: u64,
    /// Context tags stripped in transit by fault injection.
    pub tags_lost: u64,
    /// Context tags replaced in transit by fault injection.
    pub tags_corrupted: u64,
}

#[derive(Debug, Clone)]
enum KEvent {
    CoreTick { core: usize, gen: u64 },
    Deliver { dst: SocketId, seg: Segment },
    Wake { task: TaskId },
}

/// The simulated OS kernel for one machine.
///
/// # Example
///
/// ```
/// use hwsim::{ActivityProfile, Machine, MachineSpec};
/// use ossim::{Kernel, Op, ScriptProgram};
/// use simkern::SimTime;
///
/// let machine = Machine::new(MachineSpec::sandybridge(), 1);
/// let mut kernel = Kernel::new(machine, Default::default());
/// kernel.spawn(
///     Box::new(ScriptProgram::new(vec![Op::Compute {
///         cycles: 3.1e6,
///         profile: ActivityProfile::cpu_spin(),
///     }])),
///     None,
/// );
/// kernel.run_until(SimTime::from_millis(5));
/// assert_eq!(kernel.stats().tasks_exited, 1);
/// ```
pub struct Kernel {
    machine: Machine,
    config: KernelConfig,
    tasks: Vec<Task>,
    contexts: Vec<Option<ContextId>>,
    running: Vec<Option<TaskId>>,
    sched: Box<dyn Scheduler>,
    quantum_end: Vec<SimTime>,
    core_gen: Vec<u64>,
    progress_base: Vec<f64>,
    sockets: SocketTable,
    events: EventQueue<KEvent>,
    hooks: Option<Box<dyn KernelHooks>>,
    prog_rng: SimRng,
    device_users: [u32; 2],
    next_ctx: u64,
    stats: KernelStats,
}

impl Kernel {
    /// Creates a kernel owning `machine`.
    pub fn new(machine: Machine, config: KernelConfig) -> Kernel {
        let n = machine.spec().total_cores();
        let sched = config.sched.build(n, config.telemetry.clone());
        Kernel {
            config,
            tasks: Vec::new(),
            contexts: Vec::new(),
            running: vec![None; n],
            sched,
            quantum_end: vec![SimTime::MAX; n],
            core_gen: vec![0; n],
            progress_base: vec![0.0; n],
            sockets: SocketTable::default(),
            events: EventQueue::new(),
            hooks: None,
            prog_rng: SimRng::new(0xB5EF_0C7A).split(machine.spec().total_cores() as u64),
            device_users: [0, 0],
            next_ctx: 1,
            stats: KernelStats::default(),
            machine,
        }
    }

    /// Installs the instrumentation facility and delivers its
    /// [`KernelHooks::on_boot`] callback.
    pub fn install_hooks(&mut self, hooks: Box<dyn KernelHooks>) {
        self.hooks = Some(hooks);
        self.with_hooks(|h, api| h.on_boot(api));
    }

    /// Removes and returns the installed facility.
    pub fn take_hooks(&mut self) -> Option<Box<dyn KernelHooks>> {
        self.hooks.take()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.machine.now()
    }

    /// Immutable access to the machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable access to the machine (meter reads, manual overrides).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Kernel activity counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Scheduler decision counters for the installed policy.
    pub fn sched_stats(&self) -> SchedStats {
        self.sched.stats()
    }

    /// Canonical short name of the installed scheduling policy.
    pub fn sched_kind(&self) -> &'static str {
        self.sched.kind()
    }

    /// Pins request context `ctx` to priority/weight level `priority`
    /// (0 = most urgent). Ignored by policies without priorities.
    pub fn set_context_priority(&mut self, ctx: ContextId, priority: u8) {
        self.sched.set_context_priority(ctx, priority);
    }

    /// Allocates a fresh request-context identifier.
    pub fn alloc_context(&mut self) -> ContextId {
        let id = ContextId(self.next_ctx);
        self.next_ctx += 1;
        id
    }

    /// Creates a connected socket pair.
    pub fn new_socket_pair(&mut self) -> (SocketId, SocketId) {
        self.sockets.new_pair()
    }

    /// Number of buffered, unread segments on `socket`.
    pub fn buffered_segments(&self, socket: SocketId) -> usize {
        self.sockets.get(socket).buffer.len()
    }

    /// Drains every buffered, unread segment from `socket`, in delivery
    /// order — the read side of a cross-node connection held by an
    /// external party (a remote dispatcher, a peer machine). Each
    /// returned [`Segment`] carries the context tag it *arrived* with:
    /// tag faults strike at delivery, so a segment observed here may
    /// already have lost or corrupted its tag (§3.3). Draining does not
    /// wake any in-kernel reader; external and in-kernel readers are not
    /// meant to share an endpoint.
    pub fn drain_messages(&mut self, socket: SocketId) -> Vec<Segment> {
        self.sockets.get_mut(socket).buffer.drain(..).collect()
    }

    /// Like [`Kernel::drain_messages`], but appends into a caller-owned
    /// buffer instead of allocating a fresh `Vec` — the hot-loop form
    /// for dispatchers that drain every node's completion channel each
    /// tick. Segments arrive in the same delivery order.
    pub fn drain_messages_into(&mut self, socket: SocketId, out: &mut Vec<Segment>) {
        out.extend(self.sockets.get_mut(socket).buffer.drain(..));
    }

    /// The tag of the most recently *delivered* tagged message on
    /// `socket` — the per-endpoint state the naive §3.3 tagging ablation
    /// reads. A tag becomes visible here only once its segment's
    /// delivery latency has elapsed, never at send time.
    pub fn socket_last_tag(&self, socket: SocketId) -> Option<ContextId> {
        self.sockets.get(socket).last_tag
    }

    /// The request context `task` is bound to.
    pub fn context_of(&self, task: TaskId) -> Option<ContextId> {
        self.contexts.get(task.0 as usize).copied().flatten()
    }

    /// The lifecycle state of `task`.
    ///
    /// # Panics
    ///
    /// Panics if `task` was never created.
    pub fn task_state(&self, task: TaskId) -> TaskState {
        self.tasks[task.0 as usize].state
    }

    /// `true` when `task` has not yet exited.
    pub fn is_alive(&self, task: TaskId) -> bool {
        !matches!(self.task_state(task), TaskState::Zombie | TaskState::Dead)
    }

    /// `true` when no task is running or runnable (all blocked or exited).
    pub fn is_quiescent(&self) -> bool {
        self.running.iter().all(Option::is_none) && self.sched.total_queued() == 0
    }

    /// Spawns a top-level task. The task is placed immediately (on an idle
    /// core if one exists).
    pub fn spawn(&mut self, program: Box<dyn Program>, ctx: Option<ContextId>) -> TaskId {
        self.create_task(program, None, ctx, true)
    }

    /// Sends a message on `socket` from outside the machine (e.g. a
    /// remote dispatcher holding the client end of a connection): the
    /// segment appears at `socket`'s peer after the socket latency, just
    /// as [`Op::Send`] would deliver it.
    pub fn inject_message(
        &mut self,
        socket: SocketId,
        bytes: u32,
        ctx: Option<ContextId>,
        payload: u64,
    ) {
        self.send_segment(socket, bytes, payload, ctx);
    }

    /// Runs the event loop until simulated time `t_end`; hardware state is
    /// integrated exactly up to `t_end` on return.
    ///
    /// # Panics
    ///
    /// Panics if the simulation livelocks (an unbounded number of events
    /// fire without simulated time advancing), which indicates a bug in a
    /// program or facility rather than a recoverable condition.
    pub fn run_until(&mut self, t_end: SimTime) {
        let mut last_t = SimTime::MAX;
        let mut same_t: u64 = 0;
        while let Some((t, ev)) = self.events.pop_if_at_or_before(t_end) {
            if t == last_t {
                same_t += 1;
                assert!(
                    same_t < 5_000_000,
                    "simulation livelock at {t}: {same_t} events without time advancing \
                     (stats: {:?})",
                    self.stats
                );
            } else {
                last_t = t;
                same_t = 0;
            }
            self.machine.advance_to(t);
            self.handle(ev);
        }
        self.machine.advance_to(t_end);
    }

    /// Runs until either no events remain or `t_limit` is reached.
    /// Returns the time at which the loop stopped.
    pub fn run_until_quiescent(&mut self, t_limit: SimTime) -> SimTime {
        while let Some((t, ev)) = self.events.pop_if_at_or_before(t_limit) {
            self.machine.advance_to(t);
            self.handle(ev);
        }
        let end = self.now().min(t_limit);
        self.machine.advance_to(end);
        end
    }

    // ---- internal machinery -------------------------------------------

    fn with_hooks<F: FnOnce(&mut dyn KernelHooks, &mut KernelApi<'_>)>(&mut self, f: F) {
        if let Some(mut h) = self.hooks.take() {
            let mut api = KernelApi {
                now: self.machine.now(),
                machine: &mut self.machine,
                running: &self.running,
                contexts: &self.contexts,
                stats: self.stats,
            };
            f(h.as_mut(), &mut api);
            self.hooks = Some(h);
        }
    }

    fn handle(&mut self, ev: KEvent) {
        match ev {
            KEvent::CoreTick { core, gen } => {
                if self.core_gen[core] == gen {
                    self.core_tick(CoreId(core));
                }
            }
            KEvent::Deliver { dst, seg } => self.deliver(dst, seg),
            KEvent::Wake { task } => self.wake(task),
        }
    }

    fn deliver(&mut self, dst: SocketId, seg: Segment) {
        self.stats.messages += 1;
        let mut seg = seg;
        // Tag faults strike the transport: the segment that *arrives* may
        // have lost or corrupted its context tag, whatever was sent.
        if let Some(ctx) = seg.ctx {
            let now = self.machine.now();
            match self.machine.faults_mut().tag_fault(dst.0 as u64, now) {
                TagFault::Keep => {}
                TagFault::Lose => {
                    seg.ctx = None;
                    self.stats.tags_lost += 1;
                }
                TagFault::Corrupt(salt) => {
                    seg.ctx = Some(ContextId(ctx.0 ^ (1 + salt % 0xFFFF)));
                    self.stats.tags_corrupted += 1;
                }
            }
        }
        let ep = self.sockets.get_mut(dst);
        ep.buffer.push_back(seg);
        if seg.ctx.is_some() {
            // Naive-tagging state tracks *delivery*, not send: the
            // endpoint remembers the most recently delivered tag.
            ep.last_tag = seg.ctx;
        }
        if let Some(reader) = ep.waiting_reader.take() {
            self.tasks[reader.0 as usize].state = TaskState::Runnable;
            self.place_runnable(reader);
        }
    }

    fn wake(&mut self, task: TaskId) {
        let t = &mut self.tasks[task.0 as usize];
        match t.pending.take() {
            Some(Pending::Sleep) => {
                t.resume = Resume::Done;
            }
            Some(Pending::Io { device, bytes, started }) => {
                t.resume = Resume::Done;
                self.device_users[device.index()] -= 1;
                if self.device_users[device.index()] == 0 {
                    self.machine.set_device_active(device, false);
                }
                let seconds = self.now().duration_since(started).as_secs_f64();
                let ctx = self.context_of(task);
                self.with_hooks(|h, api| h.on_io_complete(api, device, task, ctx, bytes, seconds));
            }
            other => {
                // Spurious wake (task already handled); restore and ignore.
                self.tasks[task.0 as usize].pending = other;
                return;
            }
        }
        self.tasks[task.0 as usize].state = TaskState::Runnable;
        self.place_runnable(task);
    }

    fn place_runnable(&mut self, task: TaskId) {
        // Wake placement is delegated to the scheduler; the default is
        // the Fig. 1 spreading policy (idle core on the least-busy chip,
        // else shortest queue).
        let core = CoreId(self.sched.select_core(self.machine.spec(), &self.running));
        if self.running[core.0].is_none() && self.sched.queue_len(core.0) == 0 {
            self.install(core, Some(task));
            self.step_task(core);
        } else {
            let ctx = self.context_of(task);
            self.sched.enqueue(core.0, task, ctx, self.now());
        }
    }

    /// Accounts the running task's compute progress up to the machine's
    /// present instant.
    fn account(&mut self, core: CoreId) {
        let Some(tid) = self.running[core.0] else { return };
        let nonhalt = self.machine.counters(core).nonhalt_cycles;
        let used = nonhalt - self.progress_base[core.0];
        self.progress_base[core.0] = nonhalt;
        if let Some(Pending::Compute { remaining, .. }) =
            &mut self.tasks[tid.0 as usize].pending
        {
            *remaining = (*remaining - used).max(0.0);
        }
    }

    /// Switches `core` to `next` (possibly idle), firing the context-switch
    /// hook. The caller must already have moved the previous task out of
    /// the `Running` state (blocked/queued/exited).
    fn install(&mut self, core: CoreId, next: Option<TaskId>) {
        let prev = self.running[core.0];
        self.account(core);
        if let Some(p) = prev {
            self.sched.on_stop(core.0, p, self.machine.now());
        }
        self.stats.context_switches += 1;
        if self.config.telemetry.enabled() {
            let as_id = |t: Option<TaskId>| t.map_or(-1, |t| i64::from(t.0));
            self.config.telemetry.instant_on(
                self.machine.now(),
                "kernel",
                "ctx_switch",
                1,
                &[
                    ("core", telemetry::FieldValue::U64(core.0 as u64)),
                    ("prev", telemetry::FieldValue::I64(as_id(prev))),
                    ("next", telemetry::FieldValue::I64(as_id(next))),
                ],
            );
            self.config.telemetry.add_count("kernel.ctx_switches", 1);
        }
        self.with_hooks(|h, api| h.on_context_switch(api, core, prev, next));
        self.running[core.0] = next;
        match next {
            Some(tid) => {
                self.tasks[tid.0 as usize].state = TaskState::Running(core);
                self.quantum_end[core.0] = self.now() + self.config.quantum;
                self.progress_base[core.0] = self.machine.counters(core).nonhalt_cycles;
                let ctx = self.contexts[tid.0 as usize];
                self.sched.on_run(core.0, tid, ctx, self.machine.now());
            }
            None => {
                self.machine.set_running(core, None);
                self.quantum_end[core.0] = SimTime::MAX;
                self.schedule_tick(core);
            }
        }
    }

    /// Advances the task on `core` through zero-time operations until it
    /// settles into computing, blocks, or exits (possibly dispatching a
    /// successor, which is then stepped too).
    fn step_task(&mut self, core: CoreId) {
        let mut budget = MAX_INSTANT_OPS;
        loop {
            let Some(tid) = self.running[core.0] else {
                self.schedule_tick(core);
                return;
            };
            budget -= 1;
            assert!(budget > 0, "task {tid} issued too many zero-time ops; missing Compute/block");
            let idx = tid.0 as usize;
            match self.tasks[idx].pending.take() {
                Some(Pending::Compute { remaining, profile }) if remaining > CYCLE_EPS => {
                    self.tasks[idx].pending = Some(Pending::Compute { remaining, profile });
                    self.machine.set_running(core, Some(profile));
                    self.schedule_tick(core);
                    return;
                }
                Some(Pending::Compute { .. }) => {
                    self.tasks[idx].resume = Resume::Done;
                }
                Some(Pending::Recv { socket }) => {
                    let ep = self.sockets.get_mut(socket);
                    if let Some(seg) = ep.buffer.pop_front() {
                        // Per-segment tagging is the paper's safe design;
                        // the naive ablation inherits the socket's most
                        // recent tag instead, which misattributes when a
                        // new request's message arrives before an old one
                        // is read (persistent connections, §3.3).
                        let inherited = if self.config.naive_socket_tagging {
                            ep.last_tag
                        } else {
                            seg.ctx
                        };
                        self.tasks[idx].last_msg = Some(seg);
                        self.tasks[idx].resume = Resume::Received;
                        if let Some(ctx) = inherited {
                            self.bind_context(tid, Some(ctx), Some(core));
                        }
                    } else {
                        // Block in read().
                        let prev_reader =
                            self.sockets.get_mut(socket).waiting_reader.replace(tid);
                        assert!(
                            prev_reader.is_none(),
                            "two tasks blocked reading {socket}"
                        );
                        self.tasks[idx].pending = Some(Pending::Recv { socket });
                        self.tasks[idx].state = TaskState::BlockedRecv(socket);
                        let next = self.sched.pick_next(core.0, self.machine.now());
                        self.install(core, next);
                        continue;
                    }
                }
                Some(Pending::Wait) => {
                    if let Some(z) = self.tasks[idx].zombies.pop() {
                        self.tasks[z.0 as usize].state = TaskState::Dead;
                        self.tasks[idx].resume = Resume::ChildExited(z);
                    } else if self.tasks[idx].children_live > 0 {
                        self.tasks[idx].pending = Some(Pending::Wait);
                        self.tasks[idx].state = TaskState::BlockedWait;
                        let next = self.sched.pick_next(core.0, self.machine.now());
                        self.install(core, next);
                        continue;
                    } else {
                        self.tasks[idx].resume = Resume::Done;
                    }
                }
                Some(other @ (Pending::Io { .. } | Pending::Sleep)) => {
                    unreachable!("blocking op {other:?} pending at dispatch")
                }
                None => {
                    let op = self.fetch_op(core, tid);
                    if self.execute_op(core, tid, op) {
                        continue;
                    }
                }
            }
        }
    }

    fn fetch_op(&mut self, _core: CoreId, tid: TaskId) -> Op {
        let idx = tid.0 as usize;
        let mut program = self.tasks[idx].program.take().expect("running task has a program");
        let mut ctx = ProcCtx {
            now: self.machine.now(),
            task: tid,
            context: self.contexts[idx],
            resume: self.tasks[idx].resume,
            last_msg: self.tasks[idx].last_msg,
            rng: &mut self.prog_rng,
            sockets: &mut self.sockets,
        };
        let op = program.next_op(&mut ctx);
        self.tasks[idx].program = Some(program);
        self.tasks[idx].resume = Resume::Done;
        op
    }

    /// Executes one op for the running task on `core`. Returns `true` when
    /// the step loop should continue (op was instantaneous or changed the
    /// dispatched task), which is the case for every op.
    fn execute_op(&mut self, core: CoreId, tid: TaskId, op: Op) -> bool {
        let idx = tid.0 as usize;
        match op {
            Op::Compute { cycles, profile } => {
                self.tasks[idx].pending = Some(Pending::Compute { remaining: cycles, profile });
            }
            Op::Send { socket, bytes, payload } => {
                let ctx = self.contexts[idx];
                self.send_segment(socket, bytes, payload, ctx);
            }
            Op::SendTagged { socket, bytes, payload, ctx } => {
                self.send_segment(socket, bytes, payload, ctx);
            }
            Op::Recv { socket } => {
                self.tasks[idx].pending = Some(Pending::Recv { socket });
            }
            Op::Fork { child, ctx, detached } => {
                let child_ctx = ctx.or(self.contexts[idx]);
                let child_id = self.create_task(child, Some(tid), child_ctx, detached);
                if !detached {
                    self.tasks[idx].children_live += 1;
                }
                let _ = child_id;
            }
            Op::WaitChild => {
                self.tasks[idx].pending = Some(Pending::Wait);
            }
            Op::DiskIo { bytes } => self.start_io(core, tid, DeviceKind::Disk, bytes),
            Op::NetIo { bytes } => self.start_io(core, tid, DeviceKind::Net, bytes),
            Op::Sleep { duration } => {
                self.tasks[idx].pending = Some(Pending::Sleep);
                self.tasks[idx].state = TaskState::BlockedSleep;
                self.events.push(self.now() + duration, KEvent::Wake { task: tid });
                let next = self.sched.pick_next(core.0, self.machine.now());
                self.install(core, next);
            }
            Op::BindContext(ctx) => {
                self.bind_context(tid, ctx, Some(core));
            }
            Op::Exit => self.exit_task(core, tid),
        }
        true
    }

    fn send_segment(&mut self, socket: SocketId, bytes: u32, payload: u64, ctx: Option<ContextId>) {
        let dst = self.sockets.get(socket).peer;
        let seg = Segment { bytes, ctx, payload, sent_at: self.now() };
        self.events
            .push(self.now() + self.config.socket_latency, KEvent::Deliver { dst, seg });
    }

    fn start_io(&mut self, core: CoreId, tid: TaskId, device: DeviceKind, bytes: u64) {
        let (bw, lat) = match device {
            DeviceKind::Disk => (self.config.disk_bandwidth, self.config.disk_latency),
            DeviceKind::Net => (self.config.net_bandwidth, self.config.net_latency),
        };
        let ctx = self.contexts[tid.0 as usize];
        self.with_hooks(|h, api| h.on_io_start(api, device, tid, ctx, bytes));
        self.device_users[device.index()] += 1;
        if self.device_users[device.index()] == 1 {
            self.machine.set_device_active(device, true);
        }
        let dur = lat + SimDuration::from_secs_f64(bytes as f64 / bw);
        self.tasks[tid.0 as usize].pending =
            Some(Pending::Io { device, bytes, started: self.now() });
        self.tasks[tid.0 as usize].state = TaskState::BlockedIo;
        self.events.push(self.now() + dur, KEvent::Wake { task: tid });
        let next = self.sched.pick_next(core.0, self.machine.now());
        self.install(core, next);
    }

    fn exit_task(&mut self, core: CoreId, tid: TaskId) {
        let ctx = self.contexts[tid.0 as usize];
        self.with_hooks(|h, api| h.on_task_exit(api, tid, ctx));
        self.stats.tasks_exited += 1;
        let idx = tid.0 as usize;
        self.tasks[idx].program = None;
        // Notify or park under the parent.
        let parent = self.tasks[idx].parent;
        let detached = self.tasks[idx].detached;
        let mut new_state = TaskState::Dead;
        if let Some(p) = parent {
            let pidx = p.0 as usize;
            if !matches!(self.tasks[pidx].state, TaskState::Zombie | TaskState::Dead)
                && !detached
            {
                self.tasks[pidx].children_live -= 1;
                if matches!(self.tasks[pidx].pending, Some(Pending::Wait))
                    && matches!(self.tasks[pidx].state, TaskState::BlockedWait)
                {
                    self.tasks[pidx].pending = None;
                    self.tasks[pidx].resume = Resume::ChildExited(tid);
                    self.tasks[pidx].state = TaskState::Runnable;
                    self.place_runnable(p);
                } else {
                    new_state = TaskState::Zombie;
                    self.tasks[pidx].zombies.push(tid);
                }
            }
        }
        self.tasks[idx].state = new_state;
        let next = self.sched.pick_next(core.0, self.machine.now());
        // The final context switch still sees the exiting task's context so
        // its last CPU slice is attributed correctly; unbind afterwards.
        self.install(core, next);
        self.contexts[idx] = None;
    }

    fn bind_context(&mut self, tid: TaskId, new: Option<ContextId>, core: Option<CoreId>) {
        let idx = tid.0 as usize;
        let old = self.contexts[idx];
        if old == new {
            return;
        }
        self.contexts[idx] = new;
        self.with_hooks(|h, api| h.on_context_bound(api, tid, old, new, core));
    }

    fn create_task(
        &mut self,
        program: Box<dyn Program>,
        parent: Option<TaskId>,
        ctx: Option<ContextId>,
        detached: bool,
    ) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(Task {
            parent,
            program: Some(program),
            state: TaskState::Runnable,
            pending: None,
            resume: Resume::Start,
            last_msg: None,
            children_live: 0,
            zombies: Vec::new(),
            detached,
        });
        self.contexts.push(ctx);
        self.stats.tasks_created += 1;
        self.with_hooks(|h, api| h.on_task_created(api, id, parent, ctx));
        self.place_runnable(id);
        id
    }

    fn core_tick(&mut self, core: CoreId) {
        self.account(core);
        let Some(tid) = self.running[core.0] else {
            return;
        };
        // 1. PMU overflow?
        if self.machine.pmu_expired(core) {
            self.machine.set_pmu_threshold(core, None);
            self.stats.pmu_interrupts += 1;
            if self.config.telemetry.enabled() {
                self.config.telemetry.instant_on(
                    self.machine.now(),
                    "kernel",
                    "pmu_irq",
                    1,
                    &[
                        ("core", telemetry::FieldValue::U64(core.0 as u64)),
                        ("task", telemetry::FieldValue::U64(u64::from(tid.0))),
                    ],
                );
                self.config.telemetry.add_count("kernel.pmu_irqs", 1);
            }
            self.with_hooks(|h, api| h.on_pmu_interrupt(api, core, tid));
            // The hook may have injected observer-effect cycles.
            self.account(core);
        }
        // 2. Quantum expiry → ask the policy whether to preempt. The
        //    policy re-queues `tid` itself when it yields a replacement.
        let still_computing = matches!(
            self.tasks[tid.0 as usize].pending,
            Some(Pending::Compute { remaining, .. }) if remaining > CYCLE_EPS
        );
        if self.now() >= self.quantum_end[core.0] {
            let ctx = self.contexts[tid.0 as usize];
            let now = self.machine.now();
            if let Some(next) = self.sched.on_quantum_expired(core.0, tid, ctx, now) {
                self.tasks[tid.0 as usize].state = TaskState::Runnable;
                self.install(core, Some(next));
                self.step_task(core);
                return;
            }
            self.quantum_end[core.0] = self.now() + self.config.quantum;
        }
        if still_computing {
            self.schedule_tick(core);
        } else {
            // Compute op finished (or task had an instantaneous op queued).
            self.step_task(core);
        }
    }

    fn schedule_tick(&mut self, core: CoreId) {
        self.core_gen[core.0] += 1;
        let gen = self.core_gen[core.0];
        let Some(tid) = self.running[core.0] else {
            return; // idle cores need no tick
        };
        let mut t = self.quantum_end[core.0];
        if let Some(Pending::Compute { remaining, .. }) = &self.tasks[tid.0 as usize].pending {
            let rate = self.machine.effective_rate_ghz(core); // cycles per ns
            let ns = (remaining / rate).ceil().max(1.0) as u64;
            let done = self.now() + SimDuration::from_nanos(ns);
            if done < t {
                t = done;
            }
        }
        if let Some(d) = self.machine.time_until_pmu(core) {
            let pmu = self.now() + d;
            if pmu < t {
                t = pmu;
            }
        }
        if t != SimTime::MAX {
            self.events.push(t, KEvent::CoreTick { core: core.0, gen });
        }
    }
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("now", &self.now())
            .field("tasks", &self.tasks.len())
            .field("stats", &self.stats)
            .finish()
    }
}

