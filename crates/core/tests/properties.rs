//! Property-based tests for the power-containers core.

use hwsim::{CoreId, MachineSpec};
use ossim::ContextId;
use power_containers::{
    BankConfig, CalibrationSample, CalibrationSet, ConditioningPolicy, ContainerManager,
    MetricVector, ModelBank, ModelKind, PowerModel, SampleBoard, TraceRing,
};
use proptest::prelude::*;
use simkern::{SimDuration, SimTime};

/// A small offline calibration set under a fixed linear power law, for
/// the model-bank properties.
fn bank_offline_set() -> CalibrationSet {
    let mut set = CalibrationSet::new(26.1);
    for level in [0.25, 0.5, 0.75, 1.0f64] {
        for f in 0..6 {
            let mut a = [0.0; 8];
            a[0] = level;
            a[f] = level;
            a[5] = 1.0;
            let truth = [8.0, 3.0, 1.5, 3.5, 2.0, 5.6, 0.0, 0.0];
            let watts: f64 = a.iter().zip(truth).map(|(x, c)| x * c).sum();
            set.push(CalibrationSample {
                metrics: MetricVector::from_slice(&a),
                active_watts: watts,
            });
        }
    }
    set
}

/// The reference window the bank properties observe and predict on.
fn bank_busy() -> MetricVector {
    MetricVector { core: 1.0, ins: 2.0, chipshare: 1.0, ..Default::default() }
}

/// True active power of [`bank_busy`] under the calibration-time law.
const BANK_BUSY_W: f64 = 8.0 + 2.0 * 3.0 + 5.6;

proptest! {
    /// Eq. 3 chip shares are in [0, 1] and sum to at most ~1 per chip for
    /// any utilization pattern.
    #[test]
    fn chipshare_bounded_and_conserving(
        utils in prop::collection::vec(0.0f64..=1.0, 4),
        idle in prop::collection::vec(any::<bool>(), 4),
    ) {
        let spec = MachineSpec::sandybridge();
        let mut board = SampleBoard::new(4);
        for (c, &u) in utils.iter().enumerate() {
            board.publish(CoreId(c), u, SimTime::ZERO);
        }
        let mut total = 0.0;
        for (c, &u) in utils.iter().enumerate() {
            let share = board.chipshare(&spec, CoreId(c), u, |s| idle[s.0]);
            prop_assert!((0.0..=1.0).contains(&share));
            total += share;
        }
        // With the idle-sibling correction the shares can over-count only
        // when records are stale; with fresh records they stay ≤ ~1 plus
        // the idle-masking effect.
        let awake: f64 = utils
            .iter()
            .zip(&idle)
            .filter(|(_, &i)| !i)
            .map(|(u, _)| *u)
            .sum();
        if awake > 0.0 {
            prop_assert!(total <= 4.0, "share total {total}");
        }
    }

    /// Model predictions are non-negative and linear in the metrics.
    #[test]
    fn model_nonnegative_and_linear(
        coeffs in prop::collection::vec(0.0f64..20.0, 8),
        metrics in prop::collection::vec(0.0f64..2.0, 8),
        scale in 0.0f64..4.0,
    ) {
        let mut c = [0.0; 8];
        c.copy_from_slice(&coeffs);
        let model = PowerModel::new(ModelKind::WithChipShare, 26.1, c);
        let m = MetricVector::from_slice(&metrics);
        let p1 = model.active_power(&m);
        let p2 = model.active_power(&(m * scale));
        prop_assert!(p1 >= 0.0);
        prop_assert!((p2 - p1 * scale).abs() < 1e-9 * (1.0 + p2));
    }

    /// Container energy bookkeeping conserves attributed energy across
    /// arbitrary bind/attribute/unbind interleavings.
    #[test]
    fn container_energy_conserved(
        ops in prop::collection::vec((0u64..8, 0.0f64..50.0, 0.001f64..0.01), 1..100)
    ) {
        let mut mgr = ContainerManager::new(true);
        let mut expected = 0.0;
        for (ctx, watts, dt) in &ops {
            let ctx = ContextId(*ctx);
            mgr.bind(ctx, SimTime::ZERO);
            mgr.attribute(
                Some(ctx),
                *watts,
                1.0,
                *dt,
                &hwsim::CounterBlock::default(),
                SimTime::ZERO,
            );
            expected += watts * dt;
        }
        // Release everything.
        for (ctx, _, _) in &ops {
            mgr.unbind(ContextId(*ctx), SimTime::from_millis(1));
        }
        let live: f64 = mgr.iter_live().map(|(_, c)| c.energy_j()).sum();
        let recorded: f64 = mgr.records().iter().map(|r| r.energy_j).sum();
        prop_assert!(
            (live + recorded - expected).abs() < 1e-9 * (1.0 + expected),
            "live {live} + recorded {recorded} != attributed {expected}"
        );
        prop_assert!((mgr.total_request_energy_j() - expected).abs() < 1e-9 * (1.0 + expected));
    }

    /// TraceRing integrals are additive over adjacent intervals.
    #[test]
    fn trace_integral_additive(
        samples in prop::collection::vec((0u64..20_000_000, 0.0f64..100.0), 1..100),
        cut in 1u64..20,
    ) {
        let mut ring: TraceRing<f64> = TraceRing::new(SimDuration::from_millis(1), 64);
        for (ns, w) in &samples {
            ring.add(SimTime::from_nanos(*ns), *w, SimDuration::from_micros(100));
        }
        let t0 = SimTime::ZERO;
        let tm = SimTime::from_millis(cut);
        let t1 = SimTime::from_millis(40);
        let (full, secs_full) = ring.integral_between(t0, t1);
        let (a, sa) = ring.integral_between(t0, tm);
        let (b, sb) = ring.integral_between(tm, t1);
        prop_assert!((full - (a + b)).abs() < 1e-9 * (1.0 + full.abs()));
        prop_assert!((secs_full - (sa + sb)).abs() < 1e-12 + 1e-9 * secs_full);
    }

    /// The conditioning policy never throttles within-budget requests and
    /// never produces a duty level whose projected power exceeds budget
    /// (modulo the 1/8 hardware floor).
    #[test]
    fn conditioning_respects_budget(
        target in 1.0f64..200.0,
        unthrottled in 0.0f64..100.0,
        busy in 1usize..16,
    ) {
        let policy = ConditioningPolicy::new(target);
        let duty = policy.duty_for(unthrottled, busy, None);
        let budget = policy.per_request_budget_w(busy);
        if unthrottled <= budget {
            prop_assert_eq!(duty, hwsim::DutyCycle::FULL);
        } else {
            let projected = unthrottled * duty.fraction();
            prop_assert!(
                projected <= budget + 1e-9 || duty == hwsim::DutyCycle::MIN,
                "projected {projected} over budget {budget} at duty {duty}"
            );
        }
    }
}

proptest! {
    /// Checkpointing a manager and restoring it into a fresh (post-crash)
    /// incarnation conserves refcounted container state exactly: every
    /// journaled live container is force-released into a record exactly
    /// once (none leaked, none double-freed), already-released records
    /// carry over verbatim, and the cumulative energy totals survive.
    #[test]
    fn checkpoint_restore_conserves_refcounts(
        ops in prop::collection::vec(
            (0u64..6, 1u32..3, 0.0f64..20.0, 0.001f64..0.01, any::<bool>()),
            1..60,
        )
    ) {
        let mut mgr = ContainerManager::new(true);
        for (ctx, binds, watts, dt, unbind_one) in &ops {
            let ctx = ContextId(*ctx);
            for _ in 0..*binds {
                mgr.bind(ctx, SimTime::ZERO);
            }
            mgr.attribute(
                Some(ctx),
                *watts,
                1.0,
                *dt,
                &hwsim::CounterBlock::default(),
                SimTime::ZERO,
            );
            if *unbind_one {
                mgr.unbind(ctx, SimTime::from_millis(1));
            }
        }
        let t = SimTime::from_millis(2);
        let cp = mgr.checkpoint(t);
        // The journal is deterministic: same state, same digest.
        prop_assert_eq!(cp.digest(), mgr.checkpoint(t).digest());
        let live_before = mgr.live_count();
        let released_before = mgr.released_count();
        let records_before = mgr.records().len();
        let total_before = mgr.total_request_energy_j();

        let mut fresh = ContainerManager::new(true);
        let restored = fresh.restore(&cp, t);
        // Every journaled live container was force-released exactly once.
        prop_assert_eq!(restored as usize, live_before);
        prop_assert_eq!(fresh.live_count(), 0);
        prop_assert_eq!(fresh.released_count(), released_before + live_before as u64);
        prop_assert_eq!(fresh.records().len(), records_before + live_before);
        // Cumulative attribution survives the restart bit-for-bit.
        prop_assert!(
            (fresh.total_request_energy_j() - total_before).abs()
                < 1e-9 * (1.0 + total_before),
            "restored totals {} != checkpointed totals {}",
            fresh.total_request_energy_j(),
            total_before
        );
    }

    /// Refcounts never leak across repeated crash/restart cycles: after
    /// each restore the record ledger and the release counter agree
    /// (every container created was dropped or restored, none
    /// double-freed), and the cumulative energy attributed across the
    /// whole history survives every cycle (the checkpoint is taken at
    /// the crash instant, so the loss window is empty).
    #[test]
    fn crash_cycles_never_leak_containers(
        cycles in prop::collection::vec(
            prop::collection::vec(
                (0u64..8, 0.0f64..10.0, 0.001f64..0.01, any::<bool>()),
                1..20,
            ),
            1..5,
        )
    ) {
        let mut mgr = ContainerManager::new(true);
        let mut expected = 0.0;
        let mut now_ms = 1u64;
        for ops in &cycles {
            for (ctx, watts, dt, unbind) in ops {
                let ctx = ContextId(*ctx);
                mgr.bind(ctx, SimTime::from_millis(now_ms));
                mgr.attribute(
                    Some(ctx),
                    *watts,
                    1.0,
                    *dt,
                    &hwsim::CounterBlock::default(),
                    SimTime::from_millis(now_ms),
                );
                expected += watts * dt;
                if *unbind {
                    mgr.unbind(ctx, SimTime::from_millis(now_ms));
                }
                now_ms += 1;
            }
            let cp = mgr.checkpoint(SimTime::from_millis(now_ms));
            let mut fresh = ContainerManager::new(true);
            let restored = fresh.restore(&cp, SimTime::from_millis(now_ms));
            prop_assert_eq!(restored as usize, cp.live.len());
            prop_assert_eq!(fresh.live_count(), 0, "all journaled containers resolved");
            prop_assert_eq!(
                fresh.records().len() as u64,
                fresh.released_count(),
                "record ledger and release counter must agree after restore"
            );
            mgr = fresh;
        }
        prop_assert!(
            (mgr.total_request_energy_j() - expected).abs() < 1e-9 * (1.0 + expected),
            "cumulative energy {} must survive every crash/restart cycle (want {})",
            mgr.total_request_energy_j(),
            expected
        );
    }
}

proptest! {
    /// A quarantined slot's fit is never served, no matter what its
    /// window accumulates afterwards: once persistent rejection
    /// quarantines the slot, arbitrary further samples leave the served
    /// model pinned to the bank-wide fallback, and only an accepted
    /// retrain (impossible here — the acceptance screen rejects every
    /// fit) could lift the quarantine.
    #[test]
    fn quarantined_slot_never_serves(
        garbage in prop::collection::vec(0.0f64..500.0, 20..120),
    ) {
        let set = bank_offline_set();
        let initial = set.fit(ModelKind::WithChipShare).unwrap();
        let mut cfg = BankConfig::default();
        cfg.refit_policy.max_condition = 1.0; // every refit rejects
        cfg.drift.quarantine_after = 1;
        let mut bank = ModelBank::new(&set, ModelKind::WithChipShare, initial, cfg);
        let key = bank.classify(0, 1.0, &bank_busy());
        // Wild residual oscillation trips the CUSUM until the rejected
        // drift retrain quarantines the slot.
        let mut quarantined = false;
        for i in 0..400u64 {
            let w = if i % 2 == 0 { 0.0 } else { 300.0 };
            if bank.observe(key, bank_busy(), w, SimTime::from_millis(1 + i)).quarantined {
                quarantined = true;
                break;
            }
        }
        prop_assert!(quarantined, "persistent rejection must quarantine");
        let masked = PowerModel::mask_metrics(ModelKind::WithChipShare, bank_busy());
        let fallback = bank.current_model().active_power(&masked);
        for (i, w) in garbage.iter().enumerate() {
            bank.observe(key, bank_busy(), *w, SimTime::from_millis(1000 + i as u64));
            prop_assert!(bank.is_quarantined(key), "nothing may lift the quarantine");
            let served = bank.current_model().active_power(&masked);
            prop_assert!(
                (served - fallback).abs() < 1e-9,
                "quarantined window leaked into serving: {served} vs {fallback}"
            );
        }
    }

    /// The bank reconverges after a fault burst clears: an arbitrary
    /// stretch of corrupt meter readings (any length, any values) may
    /// trip drift retrains, rejections, staleness resets, even
    /// quarantine — but once clean readings resume, the served model
    /// returns to within 5% of the true law.
    #[test]
    fn bank_reconverges_after_fault_burst(
        burst in prop::collection::vec(0.0f64..200.0, 10..100),
    ) {
        let set = bank_offline_set();
        let initial = set.fit(ModelKind::WithChipShare).unwrap();
        let mut bank =
            ModelBank::new(&set, ModelKind::WithChipShare, initial, BankConfig::default());
        let key = bank.classify(0, 1.0, &bank_busy());
        let mut t = 1u64;
        let mut feed = |bank: &mut ModelBank, w: f64| {
            let now = SimTime::from_millis(t);
            t += 1;
            bank.observe(key, bank_busy(), w, now);
        };
        for _ in 0..50 {
            feed(&mut bank, BANK_BUSY_W);
        }
        for w in &burst {
            feed(&mut bank, *w);
        }
        // Clean readings resume for two window lengths.
        for _ in 0..600 {
            feed(&mut bank, BANK_BUSY_W);
        }
        prop_assert!(!bank.is_quarantined(key), "accepted retrain must restore");
        let masked = PowerModel::mask_metrics(ModelKind::WithChipShare, bank_busy());
        let served = bank.current_model().active_power(&masked);
        prop_assert!(
            (served - BANK_BUSY_W).abs() / BANK_BUSY_W < 0.05,
            "served {served} must reconverge to {BANK_BUSY_W}"
        );
    }
}

proptest! {
    /// Graceful drain vs crash: the elastic autoscaler's scale-in path
    /// journals its final [`ManagerCheckpoint`] at the freeze instant,
    /// so the drain's loss window — `attributed − checkpointed` — is
    /// *exactly* zero for any attribution history; a crash restoring a
    /// stale periodic checkpoint loses exactly the energy attributed
    /// after it, and nothing else.
    #[test]
    fn drain_checkpoint_loses_exactly_zero_energy(
        // (cpu_j, io_j, to_background) attribution steps, one per ms.
        steps in prop::collection::vec(
            (0.0f64..5.0, 0.0f64..1.0, any::<bool>()),
            2..60,
        ),
        // The stale periodic checkpoint sits this many steps before the
        // end — the crash's loss window.
        stale_by in 1usize..40,
    ) {
        use power_containers::ManagerCheckpoint;

        let mut mgr = ContainerManager::new(true);
        let events = hwsim::CounterBlock::default();
        let mut stale = ManagerCheckpoint::empty();
        let stale_at = steps.len().saturating_sub(stale_by);
        let mut lost_after_stale = 0.0;
        for (i, &(cpu_j, io_j, bg)) in steps.iter().enumerate() {
            if i == stale_at {
                stale = mgr.checkpoint(SimTime::from_millis(i as u64));
            }
            let now = SimTime::from_millis(1 + i as u64);
            let ctx = if bg { None } else { Some(ContextId(1 + i as u64)) };
            if let Some(c) = ctx {
                mgr.bind(c, now);
            }
            // One 1 ms sample at `cpu_j * 1e3` watts attributes cpu_j.
            mgr.attribute(ctx, cpu_j * 1e3, 1.0, 1e-3, &events, now);
            mgr.attribute_io(ctx, io_j, now);
            if i >= stale_at {
                lost_after_stale += cpu_j * 1e-3 * 1e3 + io_j;
            }
        }
        let live_total = mgr.total_energy_with_background_j()
            + mgr.total_request_io_energy_j()
            + mgr.background().io_energy_j();

        // Graceful drain: checkpoint taken at the freeze instant. Every
        // journaled total is a copy of the live cumulative counter, so
        // each component of the loss window is exactly 0.0 — not merely
        // small. (The aggregate `attributed_energy_j()` sums the same
        // components in a different association order than a live read,
        // so the engine's drain path clamps that sub-nanojoule residue;
        // component-wise the checkpoint is bit-exact.)
        let drain = mgr.checkpoint(SimTime::from_millis(steps.len() as u64));
        prop_assert_eq!(
            drain.total_request_energy_j.to_bits(),
            mgr.total_request_energy_j().to_bits(),
            "clean drain must journal the exact request-energy total"
        );
        prop_assert_eq!(
            drain.total_request_io_energy_j.to_bits(),
            mgr.total_request_io_energy_j().to_bits(),
            "clean drain must journal the exact request-I/O total"
        );
        prop_assert_eq!(
            drain.background_energy_j.to_bits(),
            mgr.background().energy_j().to_bits(),
            "clean drain must journal the exact background energy"
        );
        prop_assert_eq!(
            drain.background_io_energy_j.to_bits(),
            mgr.background().io_energy_j().to_bits(),
            "clean drain must journal the exact background I/O energy"
        );

        // Crash: the stale checkpoint misses exactly the attribution
        // performed after it was taken — a positive loss window
        // whenever any energy landed after the checkpoint.
        let crash_loss = live_total - stale.attributed_energy_j();
        prop_assert!(
            (crash_loss - lost_after_stale).abs() < 1e-9 * (1.0 + lost_after_stale),
            "crash loss window {} must equal post-checkpoint attribution {}",
            crash_loss,
            lost_after_stale
        );
        if lost_after_stale > 0.0 {
            prop_assert!(crash_loss > 0.0, "a crash with post-checkpoint work loses energy");
        }

        // Restoring the drain checkpoint hands the totals to the next
        // incarnation exactly.
        let mut fresh = ContainerManager::new(true);
        fresh.restore(&drain, SimTime::from_millis(1 + steps.len() as u64));
        let restored = fresh.total_energy_with_background_j()
            + fresh.total_request_io_energy_j()
            + fresh.background().io_energy_j();
        prop_assert_eq!(
            restored, live_total,
            "restored incarnation must carry the drained node's exact totals"
        );
    }
}
