//! Property-based tests for the power-containers core.

use hwsim::{CoreId, MachineSpec};
use ossim::ContextId;
use power_containers::{
    ConditioningPolicy, ContainerManager, MetricVector, ModelKind, PowerModel, SampleBoard,
    TraceRing,
};
use proptest::prelude::*;
use simkern::{SimDuration, SimTime};

proptest! {
    /// Eq. 3 chip shares are in [0, 1] and sum to at most ~1 per chip for
    /// any utilization pattern.
    #[test]
    fn chipshare_bounded_and_conserving(
        utils in prop::collection::vec(0.0f64..=1.0, 4),
        idle in prop::collection::vec(any::<bool>(), 4),
    ) {
        let spec = MachineSpec::sandybridge();
        let mut board = SampleBoard::new(4);
        for (c, &u) in utils.iter().enumerate() {
            board.publish(CoreId(c), u, SimTime::ZERO);
        }
        let mut total = 0.0;
        for (c, &u) in utils.iter().enumerate() {
            let share = board.chipshare(&spec, CoreId(c), u, |s| idle[s.0]);
            prop_assert!((0.0..=1.0).contains(&share));
            total += share;
        }
        // With the idle-sibling correction the shares can over-count only
        // when records are stale; with fresh records they stay ≤ ~1 plus
        // the idle-masking effect.
        let awake: f64 = utils
            .iter()
            .zip(&idle)
            .filter(|(_, &i)| !i)
            .map(|(u, _)| *u)
            .sum();
        if awake > 0.0 {
            prop_assert!(total <= 4.0, "share total {total}");
        }
    }

    /// Model predictions are non-negative and linear in the metrics.
    #[test]
    fn model_nonnegative_and_linear(
        coeffs in prop::collection::vec(0.0f64..20.0, 8),
        metrics in prop::collection::vec(0.0f64..2.0, 8),
        scale in 0.0f64..4.0,
    ) {
        let mut c = [0.0; 8];
        c.copy_from_slice(&coeffs);
        let model = PowerModel::new(ModelKind::WithChipShare, 26.1, c);
        let m = MetricVector::from_slice(&metrics);
        let p1 = model.active_power(&m);
        let p2 = model.active_power(&(m * scale));
        prop_assert!(p1 >= 0.0);
        prop_assert!((p2 - p1 * scale).abs() < 1e-9 * (1.0 + p2));
    }

    /// Container energy bookkeeping conserves attributed energy across
    /// arbitrary bind/attribute/unbind interleavings.
    #[test]
    fn container_energy_conserved(
        ops in prop::collection::vec((0u64..8, 0.0f64..50.0, 0.001f64..0.01), 1..100)
    ) {
        let mut mgr = ContainerManager::new(true);
        let mut expected = 0.0;
        for (ctx, watts, dt) in &ops {
            let ctx = ContextId(*ctx);
            mgr.bind(ctx, SimTime::ZERO);
            mgr.attribute(
                Some(ctx),
                *watts,
                1.0,
                *dt,
                &hwsim::CounterBlock::default(),
                SimTime::ZERO,
            );
            expected += watts * dt;
        }
        // Release everything.
        for (ctx, _, _) in &ops {
            mgr.unbind(ContextId(*ctx), SimTime::from_millis(1));
        }
        let live: f64 = mgr.iter_live().map(|(_, c)| c.energy_j()).sum();
        let recorded: f64 = mgr.records().iter().map(|r| r.energy_j).sum();
        prop_assert!(
            (live + recorded - expected).abs() < 1e-9 * (1.0 + expected),
            "live {live} + recorded {recorded} != attributed {expected}"
        );
        prop_assert!((mgr.total_request_energy_j() - expected).abs() < 1e-9 * (1.0 + expected));
    }

    /// TraceRing integrals are additive over adjacent intervals.
    #[test]
    fn trace_integral_additive(
        samples in prop::collection::vec((0u64..20_000_000, 0.0f64..100.0), 1..100),
        cut in 1u64..20,
    ) {
        let mut ring: TraceRing<f64> = TraceRing::new(SimDuration::from_millis(1), 64);
        for (ns, w) in &samples {
            ring.add(SimTime::from_nanos(*ns), *w, SimDuration::from_micros(100));
        }
        let t0 = SimTime::ZERO;
        let tm = SimTime::from_millis(cut);
        let t1 = SimTime::from_millis(40);
        let (full, secs_full) = ring.integral_between(t0, t1);
        let (a, sa) = ring.integral_between(t0, tm);
        let (b, sb) = ring.integral_between(tm, t1);
        prop_assert!((full - (a + b)).abs() < 1e-9 * (1.0 + full.abs()));
        prop_assert!((secs_full - (sa + sb)).abs() < 1e-12 + 1e-9 * secs_full);
    }

    /// The conditioning policy never throttles within-budget requests and
    /// never produces a duty level whose projected power exceeds budget
    /// (modulo the 1/8 hardware floor).
    #[test]
    fn conditioning_respects_budget(
        target in 1.0f64..200.0,
        unthrottled in 0.0f64..100.0,
        busy in 1usize..16,
    ) {
        let policy = ConditioningPolicy::new(target);
        let duty = policy.duty_for(unthrottled, busy, None);
        let budget = policy.per_request_budget_w(busy);
        if unthrottled <= budget {
            prop_assert_eq!(duty, hwsim::DutyCycle::FULL);
        } else {
            let projected = unthrottled * duty.fraction();
            prop_assert!(
                projected <= budget + 1e-9 || duty == hwsim::DutyCycle::MIN,
                "projected {projected} over budget {budget} at duty {duty}"
            );
        }
    }
}
