//! Facility-level integration tests: alignment, recalibration and
//! conditioning running inside a live kernel.

use hwsim::{ActivityProfile, Machine, MachineSpec};
use ossim::{FnProgram, Kernel, KernelConfig, Op, ScriptProgram};
use power_containers::{
    Approach, CalibrationSample, CalibrationSet, ConditioningPolicy, FacilityConfig,
    MetricVector, ModelKind, PowerContainerFacility, PowerModel,
};
use simkern::{SimDuration, SimTime};

/// A deliberately *miscalibrated* set (underestimates everything by 30%)
/// so recalibration has something to fix.
fn skewed_calibration() -> CalibrationSet {
    let mut set = CalibrationSet::new(26.1);
    let truth = [8.3, 3.1, 1.5, 3.5, 2.1, 5.6, 1.7, 5.8];
    for i in 0..64 {
        let u = (i % 4 + 1) as f64 / 4.0;
        let f = i / 4 % 8;
        let mut a = [0.0; 8];
        a[0] = u;
        a[f] = u.max(a[f]);
        a[5] = 1.0;
        let watts: f64 = a.iter().zip(truth).map(|(x, c)| x * c).sum();
        set.push(CalibrationSample {
            metrics: MetricVector::from_slice(&a),
            active_watts: watts * 0.7, // systematic 30% underestimate
        });
    }
    set
}

fn spawn_spinners(kernel: &mut Kernel, n: usize, profile: ActivityProfile) {
    for _ in 0..n {
        kernel.spawn(
            Box::new(FnProgram::new(move |_pc| Op::Compute { cycles: 3.1e6, profile })),
            None,
        );
    }
}

#[test]
fn alignment_finds_the_onchip_meter_delay_in_vivo() {
    let spec = MachineSpec::sandybridge();
    let set = skewed_calibration();
    let model = set.fit(ModelKind::WithChipShare).expect("fit");
    let facility = PowerContainerFacility::new(
        model,
        Some(&set),
        &spec,
        FacilityConfig {
            approach: Approach::Recalibrated,
            meter: Some("on-chip"),
            meter_idle_w: 1.5,
            max_meter_delay: SimDuration::from_millis(20),
            ..FacilityConfig::default()
        },
    );
    let state = facility.state();
    let mut kernel = Kernel::new(Machine::new(spec, 3), KernelConfig::default());
    kernel.install_hooks(Box::new(facility));
    // A fluctuating load so the correlation has structure: two phases
    // alternating between 1 and 3 busy spinners.
    let mut phase = 0u32;
    kernel.spawn(
        Box::new(FnProgram::new(move |_pc| {
            phase += 1;
            if phase.is_multiple_of(2) {
                Op::Compute { cycles: 3.1e6 * 40.0, profile: ActivityProfile::stress() }
            } else {
                Op::Sleep { duration: SimDuration::from_millis(35) }
            }
        })),
        None,
    );
    spawn_spinners(&mut kernel, 1, ActivityProfile::cpu_spin());
    kernel.run_until(SimTime::from_secs(2));
    let s = state.borrow();
    let delay = s.aligned_delay().expect("alignment converged");
    assert_eq!(
        delay,
        SimDuration::from_millis(1),
        "on-chip meter delay is 1 ms, estimated {delay}"
    );
    assert!(s.refits() > 0, "recalibration should have run");
}

#[test]
fn recalibration_corrects_a_skewed_model_in_vivo() {
    let spec = MachineSpec::sandybridge();
    let set = skewed_calibration();
    let model = set.fit(ModelKind::WithChipShare).expect("fit");
    let run = |approach: Approach| -> f64 {
        let facility = PowerContainerFacility::new(
            model.clone(),
            Some(&set),
            &spec,
            FacilityConfig {
                approach,
                meter: (approach == Approach::Recalibrated).then_some("on-chip"),
                meter_idle_w: 1.5,
                max_meter_delay: SimDuration::from_millis(10),
                ..FacilityConfig::default()
            },
        );
        let state = facility.state();
        let mut kernel = Kernel::new(Machine::new(spec.clone(), 5), KernelConfig::default());
        kernel.install_hooks(Box::new(facility));
        spawn_spinners(&mut kernel, 3, ActivityProfile::cache_heavy());
        kernel.run_until(SimTime::from_secs(3));
        let measured = kernel.machine().true_active_energy_j();
        let attributed = state.borrow().containers().total_energy_with_background_j();
        (attributed - measured).abs() / measured
    };
    let skewed_err = run(Approach::ChipShare);
    let recal_err = run(Approach::Recalibrated);
    assert!(skewed_err > 0.2, "skewed model should err ~30%, got {skewed_err:.3}");
    assert!(
        recal_err < skewed_err / 2.0,
        "recalibration should halve the error: {recal_err:.3} vs {skewed_err:.3}"
    );
}

#[test]
fn conditioning_throttles_only_the_hungry_request() {
    let spec = MachineSpec::sandybridge();
    let set = skewed_calibration();
    // Use an accurate model for conditioning decisions.
    let mut accurate = CalibrationSet::new(26.1);
    for s in set.samples() {
        accurate.push(CalibrationSample {
            metrics: s.metrics,
            active_watts: s.active_watts / 0.7,
        });
    }
    let model = accurate.fit(ModelKind::WithChipShare).expect("fit");
    let facility = PowerContainerFacility::new(
        model,
        None,
        &spec,
        FacilityConfig {
            // Budget of 12 W per busy core: above the ~10 W spinners,
            // well below the ~21 W stress hog.
            conditioning: Some(ConditioningPolicy::new(48.0)),
            ..FacilityConfig::default()
        },
    );
    let state = facility.state();
    let mut kernel = Kernel::new(Machine::new(spec, 7), KernelConfig::default());
    kernel.install_hooks(Box::new(facility));
    // Four long-running requests: three modest spinners, one hog.
    let mut ctxs = Vec::new();
    for i in 0..4 {
        let ctx = kernel.alloc_context();
        ctxs.push(ctx);
        let profile = if i == 3 {
            ActivityProfile::stress()
        } else {
            ActivityProfile::cpu_spin()
        };
        kernel.spawn(
            Box::new(ScriptProgram::new(vec![Op::Compute { cycles: 3.1e9, profile }])),
            Some(ctx),
        );
    }
    kernel.run_until(SimTime::from_secs(1));
    let s = state.borrow();
    let duty_of = |ctx| {
        s.containers()
            .get(ctx)
            .map(|c| c.mean_duty())
            .or_else(|| {
                s.containers()
                    .records()
                    .iter()
                    .find(|r| r.ctx == ctx)
                    .map(|r| r.mean_duty)
            })
            .expect("container live or recorded")
    };
    for &ctx in &ctxs[..3] {
        assert!(duty_of(ctx) > 0.95, "modest request throttled: duty {}", duty_of(ctx));
    }
    assert!(
        duty_of(ctxs[3]) < 0.8,
        "hog should be throttled: duty {}",
        duty_of(ctxs[3])
    );
}

#[test]
fn per_request_power_cap_overrides_fair_share() {
    let spec = MachineSpec::sandybridge();
    let set = skewed_calibration();
    let mut accurate = CalibrationSet::new(26.1);
    for s in set.samples() {
        accurate.push(CalibrationSample {
            metrics: s.metrics,
            active_watts: s.active_watts / 0.7,
        });
    }
    let model = accurate.fit(ModelKind::WithChipShare).expect("fit");
    let facility = PowerContainerFacility::new(
        model,
        None,
        &spec,
        FacilityConfig {
            conditioning: Some(ConditioningPolicy::new(400.0)), // generous system target
            ..FacilityConfig::default()
        },
    );
    let state = facility.state();
    let mut kernel = Kernel::new(Machine::new(spec, 9), KernelConfig::default());
    kernel.install_hooks(Box::new(facility));
    let capped = kernel.alloc_context();
    let free = kernel.alloc_context();
    state
        .borrow_mut()
        .containers_mut()
        .set_power_cap(capped, Some(5.0), SimTime::ZERO);
    for &ctx in &[capped, free] {
        kernel.spawn(
            Box::new(ScriptProgram::new(vec![Op::Compute {
                cycles: 3.1e9,
                profile: ActivityProfile::high_ipc(),
            }])),
            Some(ctx),
        );
    }
    kernel.run_until(SimTime::from_secs(1));
    let s = state.borrow();
    let duty = |ctx| {
        s.containers()
            .get(ctx)
            .map(|c| c.mean_duty())
            .or_else(|| {
                s.containers()
                    .records()
                    .iter()
                    .find(|r| r.ctx == ctx)
                    .map(|r| r.mean_duty)
            })
            .expect("container live or recorded")
    };
    assert!(duty(free) > 0.95, "uncapped request at full speed, duty {}", duty(free));
    assert!(duty(capped) < 0.6, "explicit 5 W cap should bite, duty {}", duty(capped));
}

#[test]
fn sampling_scales_with_busy_time_not_task_count() {
    // §3.5: sampling cost is per CPU core, not per live request.
    let spec = MachineSpec::sandybridge();
    let set = skewed_calibration();
    let model = set.fit(ModelKind::WithChipShare).expect("fit");
    let run = |tasks: usize| -> u64 {
        let facility =
            PowerContainerFacility::new(model.clone(), None, &spec, FacilityConfig::default());
        let state = facility.state();
        let mut kernel = Kernel::new(Machine::new(spec.clone(), 11), KernelConfig::default());
        kernel.install_hooks(Box::new(facility));
        spawn_spinners(&mut kernel, tasks, ActivityProfile::cpu_spin());
        kernel.run_until(SimTime::from_secs(1));
        let ops = state.borrow().maintenance_ops();
        ops
    };
    let few = run(4);
    let many = run(64);
    // 16x the tasks must not cost anywhere near 16x the maintenance work;
    // context switches add some, but the PMU-driven floor dominates.
    assert!(
        (many as f64) < (few as f64) * 4.0,
        "maintenance ops grew too fast: {few} -> {many}"
    );
}

#[test]
fn energy_budget_forces_floor_throttling() {
    let spec = MachineSpec::sandybridge();
    let set = skewed_calibration();
    let mut accurate = CalibrationSet::new(26.1);
    for s in set.samples() {
        accurate.push(CalibrationSample {
            metrics: s.metrics,
            active_watts: s.active_watts / 0.7,
        });
    }
    let model = accurate.fit(ModelKind::WithChipShare).expect("fit");
    let facility = PowerContainerFacility::new(
        model,
        None,
        &spec,
        FacilityConfig {
            conditioning: Some(ConditioningPolicy::new(500.0)), // never binds
            ..FacilityConfig::default()
        },
    );
    let state = facility.state();
    let mut kernel = Kernel::new(Machine::new(spec, 13), KernelConfig::default());
    kernel.install_hooks(Box::new(facility));
    let budgeted = kernel.alloc_context();
    let free = kernel.alloc_context();
    // ~10 W × 50 ms = 0.5 J budget: exhausted a quarter of the way in.
    state
        .borrow_mut()
        .containers_mut()
        .set_energy_budget(budgeted, Some(0.2), SimTime::ZERO);
    for &ctx in &[budgeted, free] {
        kernel.spawn(
            Box::new(ScriptProgram::new(vec![Op::Compute {
                cycles: 3.1e9,
                profile: ActivityProfile::high_ipc(),
            }])),
            Some(ctx),
        );
    }
    kernel.run_until(SimTime::from_secs(2));
    let s = state.borrow();
    // The unbudgeted request finished at full speed and was recorded.
    let free_record = s
        .containers()
        .records()
        .iter()
        .find(|r| r.ctx == free)
        .expect("free request completed");
    assert!(
        free_record.mean_duty > 0.95,
        "unbudgeted request unaffected, duty {}",
        free_record.mean_duty
    );
    // The budgeted one is still crawling at the floor.
    let b = s.containers().get(budgeted).expect("budgeted request still live");
    assert!(
        b.mean_duty() < 0.5,
        "budget exhaustion should floor the duty cycle, duty {}",
        b.mean_duty()
    );
    assert!(b.over_energy_budget());
    assert!(
        b.energy_j() < free_record.energy_j * 0.6,
        "budgeted {} J vs free {} J",
        b.energy_j(),
        free_record.energy_j
    );
}

#[test]
fn facility_degrades_gracefully_under_injected_faults() {
    use hwsim::FaultConfig;
    let spec = MachineSpec::sandybridge();
    let set = skewed_calibration();
    let model = set.fit(ModelKind::WithChipShare).expect("fit");
    let run = |faults: Option<FaultConfig>| -> (f64, power_containers::DegradeStats) {
        let facility = PowerContainerFacility::try_new(
            model.clone(),
            Some(&set),
            &spec,
            FacilityConfig {
                approach: Approach::Recalibrated,
                meter: Some("on-chip"),
                meter_idle_w: 1.5,
                max_meter_delay: SimDuration::from_millis(10),
                ..FacilityConfig::default()
            },
        )
        .expect("valid configuration");
        let state = facility.state();
        let mut machine = Machine::new(spec.clone(), 5);
        if let Some(f) = faults {
            machine.set_fault_config(f);
        }
        let mut kernel = Kernel::new(machine, KernelConfig::default());
        kernel.install_hooks(Box::new(facility));
        spawn_spinners(&mut kernel, 3, ActivityProfile::cache_heavy());
        kernel.run_until(SimTime::from_secs(3));
        let measured = kernel.machine().true_active_energy_j();
        let attributed = state.borrow().containers().total_energy_with_background_j();
        let err = (attributed - measured).abs() / measured;
        let stats = state.borrow().degrade_stats();
        (err, stats)
    };
    let (clean_err, clean_stats) = run(None);
    assert!(clean_stats.samples_rejected == 0, "clean run rejects nothing");
    let (faulty_err, faulty_stats) = run(Some(FaultConfig {
        meter_dropout: 0.05,
        counter_glitch_hz: 2.0,
        counter_wrap_hz: 1.0,
        ..FaultConfig::none()
    }));
    // Every corrupted counter window must be caught, not attributed.
    assert!(
        faulty_stats.samples_rejected > 0,
        "glitches at 3 Hz over 3 s should reject samples: {faulty_stats:?}"
    );
    assert!(
        faulty_stats.meter_gaps > 0,
        "5% dropout over ~3000 windows should leave gaps: {faulty_stats:?}"
    );
    // Degraded, not destroyed: attribution error stays within 2x of the
    // clean run (the ISSUE acceptance bound) plus a small absolute floor
    // for runs where the clean error is itself tiny.
    assert!(
        faulty_err < (clean_err * 2.0).max(0.05) + 0.02,
        "faulty {faulty_err:.3} vs clean {clean_err:.3}"
    );
}

#[test]
fn telemetry_traces_the_whole_pipeline_deterministically() {
    let run = || {
        let tele = telemetry::Telemetry::recording();
        let spec = MachineSpec::sandybridge();
        let set = skewed_calibration();
        let model = set.fit(ModelKind::WithChipShare).expect("fit");
        let facility = PowerContainerFacility::new(
            model,
            Some(&set),
            &spec,
            FacilityConfig {
                approach: Approach::Recalibrated,
                meter: Some("on-chip"),
                meter_idle_w: 1.5,
                max_meter_delay: SimDuration::from_millis(20),
                conditioning: Some(ConditioningPolicy { system_target_w: 8.0 }),
                telemetry: tele.clone(),
                ..FacilityConfig::default()
            },
        );
        let mut kernel = Kernel::new(
            Machine::new(spec, 3),
            KernelConfig { telemetry: tele.clone(), ..KernelConfig::default() },
        );
        kernel.install_hooks(Box::new(facility));
        let mut phase = 0u32;
        kernel.spawn(
            Box::new(FnProgram::new(move |_pc| {
                phase += 1;
                if phase.is_multiple_of(2) {
                    Op::Compute { cycles: 3.1e6 * 40.0, profile: ActivityProfile::stress() }
                } else {
                    Op::Sleep { duration: SimDuration::from_millis(35) }
                }
            })),
            None,
        );
        // Tagged spinners so conditioning has containers to throttle.
        for _ in 0..2 {
            let ctx = kernel.alloc_context();
            kernel.spawn(
                Box::new(FnProgram::new(move |_pc| Op::Compute {
                    cycles: 3.1e6,
                    profile: ActivityProfile::cpu_spin(),
                })),
                Some(ctx),
            );
        }
        kernel.run_until(SimTime::from_secs(2));
        tele.to_jsonl()
    };
    let jsonl = run();
    // Every instrumented layer shows up in one trace.
    for needle in [
        "\"cat\":\"kernel\",\"name\":\"ctx_switch\"",
        "\"cat\":\"kernel\",\"name\":\"pmu_irq\"",
        "\"cat\":\"attr\",\"name\":\"sample\"",
        "\"cat\":\"align\",\"name\":\"scan\"",
        "\"cat\":\"cond\",\"name\":\"throttle\"",
        "{\"metric\":\"gauge\",\"name\":\"kernel.context_switches\"",
        "{\"metric\":\"gauge\",\"name\":\"facility.maintenance_ops\"",
        "{\"metric\":\"histogram\",\"name\":\"attr.watts\"",
    ] {
        assert!(jsonl.contains(needle), "trace missing {needle}");
    }
    // Sim-clock determinism: an identical run renders byte-identical.
    assert_eq!(jsonl, run(), "telemetry must be deterministic across runs");
    // And the summarizer agrees with the instrumentation.
    let summary = telemetry::summary::summarize(&jsonl);
    assert_eq!(summary.unparsed_lines, 0);
    assert!(!summary.containers.is_empty(), "attr samples fold into containers");
}

#[test]
fn disabled_telemetry_changes_no_simulation_output() {
    let run = |tele: telemetry::Telemetry| {
        let spec = MachineSpec::sandybridge();
        let model = PowerModel::new(ModelKind::WithChipShare, 26.1, [8.0; 8]);
        let facility = PowerContainerFacility::new(
            model,
            None,
            &spec,
            FacilityConfig { telemetry: tele.clone(), ..FacilityConfig::default() },
        );
        let state = facility.state();
        let mut kernel = Kernel::new(
            Machine::new(spec, 7),
            KernelConfig { telemetry: tele, ..KernelConfig::default() },
        );
        kernel.install_hooks(Box::new(facility));
        spawn_spinners(&mut kernel, 3, ActivityProfile::cache_heavy());
        kernel.run_until(SimTime::from_secs(1));
        let energy = state.borrow().containers().total_energy_with_background_j();
        (energy, kernel.stats())
    };
    let (e_off, stats_off) = run(telemetry::Telemetry::disabled());
    let (e_on, stats_on) = run(telemetry::Telemetry::recording());
    assert_eq!(e_off, e_on, "tracing must be a pure observer");
    assert_eq!(stats_off, stats_on);
}
