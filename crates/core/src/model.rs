//! The linear power model (paper Eq. 1 and Eq. 2).

use crate::metrics::{MetricVector, FEATURES};
use std::fmt;

/// Which terms of the model are active.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Approach #1 (Eq. 1): core-level events only; the shared chip
    /// maintenance power is not modeled.
    CoreEventsOnly,
    /// Approach #2 (Eq. 2): adds the `M_chipshare` attribution of shared
    /// chip maintenance power.
    WithChipShare,
}

impl ModelKind {
    /// `true` when this kind uses the chip-share feature.
    pub fn uses_chipshare(self) -> bool {
        matches!(self, ModelKind::WithChipShare)
    }
}

/// A calibrated linear power model: `P_active = Σ C_i · M_i`, with a known
/// constant idle power `C_idle` outside the active sum.
///
/// # Example
///
/// ```
/// use power_containers::{MetricVector, ModelKind, PowerModel};
///
/// let mut coeffs = [0.0; power_containers::FEATURES];
/// coeffs[0] = 10.0; // 10 W per unit of core utilization
/// let model = PowerModel::new(ModelKind::CoreEventsOnly, 26.1, coeffs);
/// let m = MetricVector { core: 0.5, ..Default::default() };
/// assert_eq!(model.active_power(&m), 5.0);
/// assert_eq!(model.full_power(&m), 31.1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    kind: ModelKind,
    idle_w: f64,
    coeffs: [f64; FEATURES],
}

impl PowerModel {
    /// Creates a model from explicit coefficients (regression layout, see
    /// [`MetricVector::as_array`]).
    ///
    /// For a [`ModelKind::CoreEventsOnly`] model the chip-share
    /// coefficient is forced to zero.
    pub fn new(kind: ModelKind, idle_w: f64, mut coeffs: [f64; FEATURES]) -> PowerModel {
        if !kind.uses_chipshare() {
            coeffs[5] = 0.0;
        }
        PowerModel { kind, idle_w, coeffs }
    }

    /// The model variant.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// The constant idle power `C_idle` in Watts.
    pub fn idle_w(&self) -> f64 {
        self.idle_w
    }

    /// The coefficient vector.
    pub fn coefficients(&self) -> &[f64; FEATURES] {
        &self.coeffs
    }

    /// Modeled *active* power for the given metrics, clamped at zero.
    pub fn active_power(&self, m: &MetricVector) -> f64 {
        let a = m.as_array();
        let mut p = 0.0;
        for (c, x) in self.coeffs.iter().zip(a.iter()) {
            p += c * x;
        }
        p.max(0.0)
    }

    /// Modeled full power (idle + active).
    pub fn full_power(&self, m: &MetricVector) -> f64 {
        self.idle_w + self.active_power(m)
    }

    /// Strips metrics the model kind must not see (the chip-share feature
    /// for Approach #1) — used when assembling calibration samples so that
    /// each approach is fit on exactly the features it models.
    pub fn mask_metrics(kind: ModelKind, mut m: MetricVector) -> MetricVector {
        if !kind.uses_chipshare() {
            m.chipshare = 0.0;
        }
        m
    }
}

impl fmt::Display for PowerModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PowerModel({:?}, idle={:.1}W", self.kind, self.idle_w)?;
        for (name, c) in MetricVector::NAMES.iter().zip(self.coeffs) {
            write!(f, ", {name}={c:.3}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coeffs() -> [f64; FEATURES] {
        [8.0, 3.0, 1.5, 3.5, 2.0, 5.6, 1.7, 5.8]
    }

    #[test]
    fn active_power_is_dot_product() {
        let model = PowerModel::new(ModelKind::WithChipShare, 26.1, coeffs());
        let m = MetricVector {
            core: 1.0,
            ins: 2.0,
            float: 0.0,
            cache: 0.1,
            mem: 0.05,
            chipshare: 0.25,
            disk: 0.0,
            net: 0.0,
        };
        let expected = 8.0 + 6.0 + 0.35 + 0.1 + 1.4;
        assert!((model.active_power(&m) - expected).abs() < 1e-12);
    }

    #[test]
    fn core_only_model_ignores_chipshare() {
        let model = PowerModel::new(ModelKind::CoreEventsOnly, 0.0, coeffs());
        let m = MetricVector { chipshare: 1.0, ..MetricVector::default() };
        assert_eq!(model.active_power(&m), 0.0);
        assert_eq!(model.coefficients()[5], 0.0);
    }

    #[test]
    fn negative_predictions_clamp_to_zero() {
        let mut c = [0.0; FEATURES];
        c[0] = -100.0;
        let model = PowerModel::new(ModelKind::WithChipShare, 10.0, c);
        let m = MetricVector { core: 1.0, ..MetricVector::default() };
        assert_eq!(model.active_power(&m), 0.0);
        assert_eq!(model.full_power(&m), 10.0);
    }

    #[test]
    fn mask_metrics_respects_kind() {
        let m = MetricVector { chipshare: 0.5, ..MetricVector::default() };
        assert_eq!(PowerModel::mask_metrics(ModelKind::CoreEventsOnly, m).chipshare, 0.0);
        assert_eq!(PowerModel::mask_metrics(ModelKind::WithChipShare, m).chipshare, 0.5);
    }

    #[test]
    fn display_lists_all_coefficients() {
        let model = PowerModel::new(ModelKind::WithChipShare, 26.1, coeffs());
        let s = model.to_string();
        for name in MetricVector::NAMES {
            assert!(s.contains(name), "missing {name} in {s}");
        }
    }
}
