//! Live power reports and anomaly flagging.
//!
//! The paper's introduction motivates power containers with operators'
//! need to "pinpoint the sources of power spikes and anomalies". This
//! module turns the facility's live container state into an operator
//! report: who is consuming power right now, how much of it is
//! background, and which requests look like power viruses relative to
//! the population.

use crate::container::ContainerManager;
use ossim::ContextId;

/// One live consumer in a report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConsumerLine {
    /// The request context.
    pub ctx: ContextId,
    /// Workload-assigned label, if any.
    pub label: Option<u32>,
    /// Recent sampled power (EWMA), Watts.
    pub recent_power_w: f64,
    /// Unthrottled power estimate, Watts.
    pub unthrottled_power_w: f64,
    /// Energy accumulated so far, Joules.
    pub energy_j: f64,
}

/// A point-in-time view of where power is going.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    /// Live request consumers, highest recent power first.
    pub consumers: Vec<ConsumerLine>,
    /// Background container's recent power, Watts.
    pub background_w: f64,
    /// Sum of live consumers' recent power, Watts.
    pub total_request_w: f64,
}

impl PowerReport {
    /// Builds a report from the container manager's live state.
    pub fn capture(containers: &ContainerManager) -> PowerReport {
        let mut consumers: Vec<ConsumerLine> = containers
            .iter_live()
            .map(|(ctx, c)| ConsumerLine {
                ctx,
                label: c.label(),
                recent_power_w: c.recent_power_w(),
                unthrottled_power_w: c.unthrottled_power_w(),
                energy_j: c.total_energy_j(),
            })
            .collect();
        consumers.sort_by(|a, b| b.recent_power_w.total_cmp(&a.recent_power_w));
        let total_request_w = consumers.iter().map(|c| c.recent_power_w).sum();
        PowerReport {
            consumers,
            background_w: containers.background().recent_power_w(),
            total_request_w,
        }
    }

    /// The top `n` consumers.
    pub fn top(&self, n: usize) -> &[ConsumerLine] {
        &self.consumers[..n.min(self.consumers.len())]
    }

    /// Flags consumers whose recent power exceeds the population median
    /// by `factor` — the report's power-anomaly ("virus") candidates.
    /// Returns an empty list when fewer than four consumers are live
    /// (no meaningful population to compare against).
    pub fn anomalies(&self, factor: f64) -> Vec<ConsumerLine> {
        if self.consumers.len() < 4 {
            return Vec::new();
        }
        let powers: Vec<f64> = self.consumers.iter().map(|c| c.recent_power_w).collect();
        let median = analysis::stats::quantile(&powers, 0.5).unwrap_or(0.0);
        if median <= 0.0 {
            return Vec::new();
        }
        self.consumers
            .iter()
            .filter(|c| c.recent_power_w > median * factor)
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwsim::CounterBlock;
    use simkern::SimTime;

    fn manager_with(powers: &[(u64, f64)]) -> ContainerManager {
        let mut m = ContainerManager::new(false);
        for &(id, watts) in powers {
            let ctx = ContextId(id);
            m.bind(ctx, SimTime::ZERO);
            m.set_label(ctx, id as u32, SimTime::ZERO);
            // Repeat so the EWMA converges to `watts`.
            for _ in 0..20 {
                m.attribute(
                    Some(ctx),
                    watts,
                    1.0,
                    0.001,
                    &CounterBlock::default(),
                    SimTime::ZERO,
                );
            }
        }
        m
    }

    #[test]
    fn report_sorts_by_recent_power() {
        let m = manager_with(&[(1, 10.0), (2, 30.0), (3, 20.0)]);
        let r = PowerReport::capture(&m);
        let order: Vec<u64> = r.consumers.iter().map(|c| c.ctx.0).collect();
        assert_eq!(order, vec![2, 3, 1]);
        assert!((r.total_request_w - 60.0).abs() < 0.1);
        assert_eq!(r.top(2).len(), 2);
        assert_eq!(r.top(99).len(), 3);
    }

    #[test]
    fn anomalies_flag_only_outliers() {
        let m = manager_with(&[
            (1, 10.0),
            (2, 10.5),
            (3, 9.5),
            (4, 10.2),
            (5, 21.0), // the virus
        ]);
        let r = PowerReport::capture(&m);
        let flagged = r.anomalies(1.5);
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].ctx, ContextId(5));
    }

    #[test]
    fn tiny_populations_are_not_flagged() {
        let m = manager_with(&[(1, 5.0), (2, 50.0)]);
        let r = PowerReport::capture(&m);
        assert!(r.anomalies(1.5).is_empty());
    }

    #[test]
    fn background_power_is_reported() {
        let mut m = manager_with(&[(1, 10.0), (2, 10.0), (3, 10.0), (4, 10.0)]);
        for _ in 0..20 {
            m.attribute(None, 7.0, 1.0, 0.001, &CounterBlock::default(), SimTime::ZERO);
        }
        let r = PowerReport::capture(&m);
        assert!((r.background_w - 7.0).abs() < 0.1);
    }
}
