//! The power-container facility: the paper's kernel modification, as an
//! [`ossim::KernelHooks`] implementation.
//!
//! The facility composes everything in this crate:
//!
//! * per-core counter sampling at context switches, PMU overflow
//!   interrupts, and request-context binding changes (§3.3);
//! * the Eq. 2 power model with Eq. 3 chip-share estimation (§3.1);
//! * measurement alignment and online least-squares recalibration (§3.2);
//! * per-request energy accounting in reference-counted containers, with
//!   a special background container for untagged activity;
//! * fair power conditioning through per-core duty-cycle modulation
//!   (§3.4) and per-request I/O energy attribution.
//!
//! Experiments keep an `Rc<RefCell<FacilityState>>` handle to read
//! containers and model state after (or during) a run.

use crate::align::{AlignmentResult, DelayEstimator, Reading};
use crate::calibrate::CalibrationSet;
use crate::chipshare::SampleBoard;
use crate::conditioning::ConditioningPolicy;
use crate::container::ContainerManager;
use crate::error::FacilityError;
use crate::metrics::{DegradeStats, MetricVector};
use crate::model::{ModelKind, PowerModel};
use crate::modelbank::{BankConfig, ModelBank};
use crate::recalibrate::Recalibrator;
use crate::trace::TraceRing;
use hwsim::{CoreId, CounterBlock, DeviceKind, MachineSpec, MeterId};
use ossim::{ContextId, KernelApi, KernelHooks, TaskId};
use simkern::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;
use telemetry::FieldValue;

/// The event cost of one container-maintenance operation (§3.5): counter
/// reads, model evaluation, and statistics updates perturb the very
/// counters being sampled. The paper measures 2948 cycles, 1656
/// instructions, 16 floating-point operations, 3 LLC references and no
/// measurable memory transactions per operation.
pub const MAINTENANCE_BUNDLE: CounterBlock = CounterBlock {
    elapsed_cycles: 0.0,
    nonhalt_cycles: 2948.0,
    instructions: 1656.0,
    flops: 16.0,
    cache_refs: 3.0,
    mem_txns: 0.0,
};

/// The three accounting approaches compared in the paper's Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approach {
    /// #1: linear model on core-level events only (Eq. 1).
    CoreEventsOnly,
    /// #2: adds shared chip maintenance power attribution (Eq. 2/3).
    ChipShare,
    /// #3: #2 plus measurement-aligned online recalibration (§3.2).
    Recalibrated,
}

impl Approach {
    /// The model structure this approach uses.
    pub fn model_kind(self) -> ModelKind {
        match self {
            Approach::CoreEventsOnly => ModelKind::CoreEventsOnly,
            Approach::ChipShare | Approach::Recalibrated => ModelKind::WithChipShare,
        }
    }

    /// All approaches, in the paper's order.
    pub const ALL: [Approach; 3] =
        [Approach::CoreEventsOnly, Approach::ChipShare, Approach::Recalibrated];
}

/// Facility configuration.
#[derive(Debug, Clone)]
pub struct FacilityConfig {
    /// Which accounting approach to run.
    pub approach: Approach,
    /// Periodic sampling interval, expressed as non-halt CPU time (the
    /// PMU threshold is this many cycles at full speed). Default 1 ms.
    pub sample_period: SimDuration,
    /// Model the observer effect: inject [`MAINTENANCE_BUNDLE`] per
    /// maintenance operation into the hardware counters.
    pub observer_effect: bool,
    /// Compensate for the observer effect by subtracting injected events
    /// from sampled deltas (§3.5).
    pub compensate_observer: bool,
    /// Apply the paper's stale-record correction in Eq. 3: treat a
    /// sibling core as inactive when the scheduler currently runs its
    /// idle task. Disabling this is the staleness ablation — idle
    /// siblings' last (possibly old) samples then dilute the share.
    pub sibling_idle_check: bool,
    /// Fair power conditioning policy, if enabled.
    pub conditioning: Option<ConditioningPolicy>,
    /// Name of the meter used for alignment/recalibration (e.g.
    /// `"on-chip"` or `"wattsup"`); `None` disables both.
    pub meter: Option<&'static str>,
    /// The meter's reading on an idle machine, measured at calibration
    /// time; subtracted to obtain active power.
    pub meter_idle_w: f64,
    /// Meter reports between alignment scans.
    pub align_every: usize,
    /// Largest measurement delay scanned.
    pub max_meter_delay: SimDuration,
    /// Delay scan resolution.
    pub align_step: SimDuration,
    /// Online samples between model refits.
    pub recalibrate_every: usize,
    /// Self-calibrating model bank: when set (and the approach is
    /// [`Approach::Recalibrated`]), online samples train one model per
    /// operating regime with drift detection instead of the single
    /// rolling recalibrator. See [`crate::ModelBank`].
    pub model_bank: Option<BankConfig>,
    /// Minimum correlation an alignment scan must reach; weaker scans
    /// keep the previous delay estimate (see
    /// [`crate::FacilityError::AlignmentLowScore`]).
    pub min_align_score: f64,
    /// Required correlation margin between the best delay and any
    /// well-separated competitor; closer ties are ambiguous and keep the
    /// previous delay estimate.
    pub align_ambiguity_margin: f64,
    /// Retain per-request records after container release.
    pub retain_records: bool,
    /// Additionally track modeled energy per task — used by the Fig. 4
    /// stage-breakdown analysis of a multi-stage request.
    pub track_per_task: bool,
    /// Grid resolution of the model/metrics history traces.
    pub trace_slot: SimDuration,
    /// History trace capacity in slots.
    pub trace_capacity: usize,
    /// Trace recorder for attribution, alignment, recalibration,
    /// conditioning and degradation events. Disabled by default; every
    /// emission site is guarded so the disabled path costs one branch.
    pub telemetry: telemetry::Telemetry,
}

impl Default for FacilityConfig {
    fn default() -> FacilityConfig {
        FacilityConfig {
            approach: Approach::ChipShare,
            sample_period: SimDuration::from_millis(1),
            observer_effect: true,
            compensate_observer: true,
            sibling_idle_check: true,
            conditioning: None,
            meter: None,
            meter_idle_w: 0.0,
            align_every: 8,
            max_meter_delay: SimDuration::from_millis(2000),
            align_step: SimDuration::from_millis(1),
            recalibrate_every: 8,
            model_bank: None,
            min_align_score: 0.4,
            align_ambiguity_margin: 0.02,
            retain_records: true,
            track_per_task: false,
            trace_slot: SimDuration::from_millis(1),
            trace_capacity: 8192,
            telemetry: telemetry::Telemetry::disabled(),
        }
    }
}

#[derive(Debug, Clone, Default)]
struct CoreSampler {
    last: CounterBlock,
    pending_maint: u32,
}

/// The online-recalibration engine behind [`Approach::Recalibrated`]:
/// either the paper's single rolling recalibrator, or the
/// regime-keyed model bank with drift detection.
#[derive(Debug, Clone)]
enum RecalEngine {
    Single(Recalibrator),
    Bank(ModelBank),
}

/// `true` when a counter delta is physically impossible: negative event
/// counts (an overflow wrap ran backwards), busy time exceeding wall
/// time, or per-cycle event rates beyond what any core can retire (a
/// glitch injected phantom events). The additive slack absorbs injected
/// maintenance bundles on short intervals; real faults overshoot these
/// bounds by orders of magnitude.
fn counter_anomaly(delta: &CounterBlock) -> bool {
    const SLACK: f64 = 1e5;
    let e = delta.elapsed_cycles;
    delta.nonhalt_cycles < 0.0
        || delta.instructions < 0.0
        || delta.flops < 0.0
        || delta.cache_refs < 0.0
        || delta.mem_txns < 0.0
        || delta.nonhalt_cycles > e + SLACK
        || delta.instructions > 16.0 * e + SLACK
        || delta.flops > 16.0 * e + SLACK
        || delta.cache_refs > 4.0 * e + SLACK
        || delta.mem_txns > 4.0 * e + SLACK
}

/// Shared facility state; experiments hold a handle via
/// [`PowerContainerFacility::state`].
pub struct FacilityState {
    config: FacilityConfig,
    spec: MachineSpec,
    model: PowerModel,
    containers: ContainerManager,
    board: SampleBoard,
    cores: Vec<CoreSampler>,
    model_trace: TraceRing<f64>,
    metrics_trace: TraceRing<MetricVector>,
    estimator: Option<DelayEstimator>,
    recalibrator: Option<RecalEngine>,
    meter_id: Option<MeterId>,
    meter_period: SimDuration,
    aligned_delay: Option<SimDuration>,
    last_alignment: Option<AlignmentResult>,
    pending_readings: Vec<Reading>,
    reports_since_align: usize,
    last_window_end: Option<SimTime>,
    maintenance_ops: u64,
    refits: u64,
    degrade: DegradeStats,
    last_degradation: Option<FacilityError>,
    per_task_energy: std::collections::HashMap<TaskId, (f64, f64)>,
}

impl FacilityState {
    /// The current power model (offline or recalibrated).
    pub fn model(&self) -> &PowerModel {
        &self.model
    }

    /// The container manager (live containers, records, totals).
    pub fn containers(&self) -> &ContainerManager {
        &self.containers
    }

    /// Mutable container access (labels, per-request caps).
    pub fn containers_mut(&mut self) -> &mut ContainerManager {
        &mut self.containers
    }

    /// The most recent alignment scan result (Fig. 2's curve).
    pub fn last_alignment(&self) -> Option<&AlignmentResult> {
        self.last_alignment.as_ref()
    }

    /// The currently estimated measurement delay.
    pub fn aligned_delay(&self) -> Option<SimDuration> {
        self.aligned_delay
    }

    /// The recent meter readings retained for alignment (oldest first).
    pub fn recent_readings(&self) -> Vec<crate::align::Reading> {
        self.estimator
            .as_ref()
            .map(|e| e.readings().copied().collect())
            .unwrap_or_default()
    }

    /// The recalibration meter's window length, when a meter is attached.
    pub fn meter_period(&self) -> SimDuration {
        self.meter_period
    }

    /// A live operator report of where power is going right now.
    pub fn power_report(&self) -> crate::report::PowerReport {
        crate::report::PowerReport::capture(&self.containers)
    }

    /// Total container-maintenance operations performed.
    pub fn maintenance_ops(&self) -> u64 {
        self.maintenance_ops
    }

    /// Number of online model refits performed.
    pub fn refits(&self) -> u64 {
        self.refits
    }

    /// Counters of every graceful-degradation decision taken so far.
    pub fn degrade_stats(&self) -> DegradeStats {
        self.degrade
    }

    /// The self-calibrating model bank, when
    /// [`FacilityConfig::model_bank`] selected the bank engine.
    pub fn model_bank(&self) -> Option<&ModelBank> {
        match &self.recalibrator {
            Some(RecalEngine::Bank(b)) => Some(b),
            _ => None,
        }
    }

    /// The most recent recoverable failure the facility degraded around.
    pub fn last_degradation(&self) -> Option<&FacilityError> {
        self.last_degradation.as_ref()
    }

    /// Modeled machine active power averaged over `[t0, t1)` (Fig. 3's
    /// model series).
    pub fn modeled_power_between(&self, t0: SimTime, t1: SimTime) -> Option<f64> {
        self.model_trace.mean_over_wall(t0, t1)
    }

    /// Modeled `(energy_j, busy_seconds)` attributed to one task; only
    /// populated when [`FacilityConfig::track_per_task`] is on.
    pub fn task_energy(&self, task: TaskId) -> Option<(f64, f64)> {
        self.per_task_energy.get(&task).copied()
    }

    /// Machine-level metric vector averaged over `[t0, t1)` — used by the
    /// offline calibration procedure to pair counter metrics with
    /// measured power windows.
    pub fn metrics_between(&self, t0: SimTime, t1: SimTime) -> Option<MetricVector> {
        self.metrics_trace.mean_over_wall(t0, t1)
    }

    /// One container-maintenance operation for `core` (§3.3): read
    /// counters, compute the interval metrics and chip share, evaluate the
    /// model, and attribute energy to `principal`'s container.
    ///
    /// `principal` is `None` when the interval was idle (snapshot reset
    /// only); `Some(None)` attributes to the background container.
    fn sample_core(
        &mut self,
        api: &mut KernelApi<'_>,
        core: CoreId,
        principal: Option<Option<ContextId>>,
        task: Option<TaskId>,
    ) {
        let now = api.now;
        let cum = api.machine.counters(core);
        let mut delta = cum - self.cores[core.0].last;
        self.cores[core.0].last = cum;
        let pending = std::mem::take(&mut self.cores[core.0].pending_maint);
        if delta.elapsed_cycles <= 0.0 {
            return;
        }
        let Some(ctx) = principal else {
            // Idle interval: publish zero activity for Eq. 3 readers.
            self.board.publish(core, 0.0, now);
            return;
        };
        if counter_anomaly(&delta) {
            // A glitched or wrapped counter corrupted this interval: the
            // snapshot above already resynchronized to the new cumulative
            // values, so drop the window instead of attributing garbage
            // energy (and keep it out of the alignment traces).
            self.degrade.samples_rejected += 1;
            self.last_degradation = Some(FacilityError::CounterAnomaly { core: core.0 });
            if self.config.telemetry.enabled() {
                self.config.telemetry.instant(
                    now,
                    "degrade",
                    "counter_anomaly",
                    &[("core", FieldValue::U64(core.0 as u64))],
                );
                self.config.telemetry.add_count("degrade.samples_rejected", 1);
            }
            return;
        }
        if self.config.compensate_observer && pending > 0 {
            let mut bundle = MAINTENANCE_BUNDLE;
            let n = pending as f64;
            bundle.nonhalt_cycles *= n;
            bundle.instructions *= n;
            bundle.flops *= n;
            bundle.cache_refs *= n;
            bundle.mem_txns *= n;
            delta = delta.saturating_sub_events(&bundle);
        }
        let dt_secs = delta.elapsed_cycles / (self.spec.freq_ghz * 1e9);
        let mut metrics = MetricVector::from_counters(&delta);
        self.board.publish(core, metrics.core, now);
        let idle_check = self.config.sibling_idle_check;
        metrics.chipshare = self
            .board
            .chipshare(&self.spec, core, metrics.core, |c| idle_check && api.is_idle(c));
        let watts = self.model.active_power(&metrics);
        let duty = api.machine.duty_cycle(core).fraction();
        self.containers.attribute(ctx, watts, duty, dt_secs, &delta, now);
        if self.config.telemetry.enabled() {
            let energy_j = match ctx {
                Some(c) => self.containers.get(c).map_or(0.0, |p| p.energy_j()),
                None => self.containers.background().energy_j(),
            };
            self.config.telemetry.instant(
                now,
                "attr",
                "sample",
                &[
                    ("core", FieldValue::U64(core.0 as u64)),
                    ("ctx", FieldValue::I64(ctx.map_or(-1, |c| c.0 as i64))),
                    ("watts", FieldValue::F64(watts)),
                    ("dt_ms", FieldValue::F64(dt_secs * 1e3)),
                    ("energy_j", FieldValue::F64(energy_j)),
                ],
            );
            self.config.telemetry.observe("attr.watts", watts);
            self.config.telemetry.add_count("attr.samples", 1);
        }
        if self.config.track_per_task {
            if let Some(t) = task {
                let e = self.per_task_energy.entry(t).or_insert((0.0, 0.0));
                e.0 += watts * dt_secs;
                e.1 += dt_secs;
            }
        }
        // Machine-level traces for alignment/recalibration. Peripheral
        // device activity is folded in separately at I/O completion.
        self.model_trace.add(now, watts, SimDuration::from_secs_f64(dt_secs));
        self.metrics_trace
            .add(now, metrics, SimDuration::from_secs_f64(dt_secs));
        // The maintenance operation itself perturbs the counters (§3.5).
        if self.config.observer_effect {
            api.machine.inject_events(core, &MAINTENANCE_BUNDLE);
            self.cores[core.0].pending_maint += 1;
        }
        self.maintenance_ops += 1;
    }

    /// Applies the conditioning policy to `core` for the request `ctx`
    /// about to run (or running) there. `extra_busy` accounts for a task
    /// being dispatched in the same instant that the scheduler view does
    /// not yet reflect.
    fn condition(
        &mut self,
        api: &mut KernelApi<'_>,
        core: CoreId,
        ctx: Option<ContextId>,
        extra_busy: usize,
    ) {
        let Some(policy) = self.config.conditioning else { return };
        let busy = (0..api.core_count())
            .filter(|&c| api.running_task(CoreId(c)).is_some())
            .count()
            + extra_busy;
        let (unthrottled, cap, exhausted) = match ctx.and_then(|c| self.containers.get(c)) {
            Some(cont) => (
                cont.unthrottled_power_w(),
                cont.power_cap_w(),
                cont.over_energy_budget(),
            ),
            None => (0.0, None, false),
        };
        let duty = if exhausted {
            // Out of energy budget: run at the hardware floor until done.
            hwsim::DutyCycle::MIN
        } else {
            policy.duty_for(unthrottled, busy, cap)
        };
        if duty != hwsim::DutyCycle::FULL && self.config.telemetry.enabled() {
            self.config.telemetry.instant_on(
                api.now,
                "cond",
                "throttle",
                2,
                &[
                    ("core", FieldValue::U64(core.0 as u64)),
                    ("ctx", FieldValue::I64(ctx.map_or(-1, |c| c.0 as i64))),
                    ("eighths", FieldValue::U64(u64::from(duty.eighths()))),
                    ("budget_exhausted", FieldValue::Str(if exhausted { "yes" } else { "no" })),
                ],
            );
            self.config.telemetry.add_count("cond.throttles", 1);
        }
        api.machine.set_duty_cycle(core, duty);
    }

    fn arm_pmu(&self, api: &mut KernelApi<'_>, core: CoreId) {
        let cycles = self.spec.cycles_in(self.config.sample_period);
        api.machine.set_pmu_threshold(core, Some(cycles));
    }

    /// Drains newly visible meter reports, re-estimates the measurement
    /// delay periodically, and feeds aligned windows to the recalibrator.
    ///
    /// Every step degrades gracefully: dropped meter windows are counted
    /// as gaps, a low-scoring or ambiguous alignment scan keeps the
    /// previous delay estimate, and a rejected refit keeps serving the
    /// last good model (resetting the online accumulator once the
    /// rejection streak exceeds the staleness bound).
    fn poll_meter(&mut self, api: &mut KernelApi<'_>) {
        let Some(id) = self.meter_id else { return };
        let reports = api.machine.pop_meter_reports(id);
        if reports.is_empty() {
            return;
        }
        for r in &reports {
            // A hole between consecutive report windows means the meter
            // dropped at least one window.
            if let Some(end) = self.last_window_end {
                if r.window_start > end {
                    self.degrade.meter_gaps += 1;
                    if self.config.telemetry.enabled() {
                        let gap = r.window_start.duration_since(end);
                        self.config.telemetry.instant(
                            r.visible_at,
                            "degrade",
                            "meter_gap",
                            &[("gap_ms", FieldValue::F64(gap.as_millis_f64()))],
                        );
                        self.config.telemetry.add_count("degrade.meter_gaps", 1);
                    }
                }
            }
            self.last_window_end = Some(r.window_end);
            let reading = Reading { arrived_at: r.visible_at, watts: r.avg_watts };
            if let Some(e) = &mut self.estimator {
                e.push(reading);
            }
            self.pending_readings.push(reading);
            self.reports_since_align += 1;
        }
        if self.reports_since_align >= self.config.align_every {
            self.reports_since_align = 0;
            if let Some(e) = &self.estimator {
                match e.estimate_checked(
                    &self.model_trace,
                    self.config.min_align_score,
                    self.config.align_ambiguity_margin,
                ) {
                    Ok(result) => {
                        if self.config.telemetry.enabled() {
                            self.config.telemetry.instant(
                                api.now,
                                "align",
                                "scan",
                                &[
                                    ("delay_ms", FieldValue::F64(result.delay.as_millis_f64())),
                                    ("score", FieldValue::F64(result.score)),
                                ],
                            );
                            self.config.telemetry.observe("align.score", result.score);
                            self.config.telemetry.add_count("align.scans", 1);
                        }
                        self.aligned_delay = Some(result.delay);
                        self.last_alignment = Some(result);
                    }
                    Err(e) => {
                        // Keep the previous delay estimate (if any).
                        self.degrade.align_fallbacks += 1;
                        if self.config.telemetry.enabled() {
                            self.config.telemetry.instant(
                                api.now,
                                "degrade",
                                "align_fallback",
                                &[("kind", FieldValue::Str(e.kind()))],
                            );
                            self.config.telemetry.add_count("degrade.align_fallbacks", 1);
                        }
                        self.last_degradation = Some(e);
                    }
                }
            }
        }
        let (Some(delay), Some(engine)) = (self.aligned_delay, self.recalibrator.as_mut())
        else {
            self.pending_readings.clear();
            return;
        };
        match engine {
            RecalEngine::Single(recal) => {
                let mut refit_due = false;
                for r in self.pending_readings.drain(..) {
                    let end = r.arrived_at - delay;
                    let start = end - self.meter_period;
                    if let Some(metrics) = self.metrics_trace.mean_over_wall(start, end) {
                        recal.add_online_sample(metrics, r.watts - self.config.meter_idle_w);
                        if recal.samples_since_fit() >= self.config.recalibrate_every {
                            refit_due = true;
                        }
                    }
                }
                if !refit_due {
                    return;
                }
                match recal.refit() {
                    Ok(model) => {
                        self.model = model;
                        self.refits += 1;
                        if self.config.telemetry.enabled() {
                            self.config.telemetry.instant(
                                api.now,
                                "recal",
                                "refit",
                                &[("n", FieldValue::U64(self.refits))],
                            );
                            self.config.telemetry.add_count("recal.refits", 1);
                        }
                    }
                    Err(e) => {
                        // The served model is whatever was accepted last, so
                        // rejecting the candidate *is* the fallback.
                        self.degrade.refits_rejected += 1;
                        if self.config.telemetry.enabled() {
                            self.config.telemetry.instant(
                                api.now,
                                "degrade",
                                "refit_rejected",
                                &[("kind", FieldValue::Str(e.kind()))],
                            );
                            self.config.telemetry.add_count("degrade.refits_rejected", 1);
                        }
                        if recal.last_good().is_some() {
                            self.degrade.refit_fallbacks += 1;
                            if self.config.telemetry.enabled() {
                                self.config.telemetry.instant(
                                    api.now,
                                    "degrade",
                                    "refit_fallback",
                                    &[],
                                );
                            }
                        }
                        if recal.is_stale() {
                            // Bounded staleness: the online accumulator is
                            // poisoned beyond recovery — rebuild it from a
                            // clean window.
                            let discarded = recal.reset_online();
                            self.degrade.stale_model_resets += 1;
                            if self.config.telemetry.enabled() {
                                self.config.telemetry.instant(
                                    api.now,
                                    "degrade",
                                    "stale_reset",
                                    &[("discarded", FieldValue::U64(discarded as u64))],
                                );
                                self.config.telemetry.add_count("degrade.stale_resets", 1);
                            }
                        }
                        self.last_degradation = Some(e);
                    }
                }
            }
            RecalEngine::Bank(bank) => {
                // Regime signals: generation and DVFS come from the
                // machine at poll time, the workload-mix bucket from each
                // window's own metrics inside `classify`.
                let generation = api.machine.generation();
                let freq = api.machine.mean_freq_fraction();
                let tele_on = self.config.telemetry.enabled();
                for r in self.pending_readings.drain(..) {
                    let end = r.arrived_at - delay;
                    let start = end - self.meter_period;
                    let Some(metrics) = self.metrics_trace.mean_over_wall(start, end)
                    else {
                        continue;
                    };
                    let key = bank.classify(generation, freq, &metrics);
                    let out = bank.observe(
                        key,
                        metrics,
                        r.watts - self.config.meter_idle_w,
                        api.now,
                    );
                    if let Some(sw) = out.switched {
                        self.degrade.model_switches += 1;
                        if tele_on {
                            self.config.telemetry.instant(
                                api.now,
                                "bank",
                                "switch",
                                &[
                                    ("from_gen", FieldValue::U64(u64::from(sw.from.generation))),
                                    ("from_dvfs", FieldValue::U64(u64::from(sw.from.dvfs))),
                                    ("from_mix", FieldValue::U64(u64::from(sw.from.mix))),
                                    ("to_gen", FieldValue::U64(u64::from(sw.to.generation))),
                                    ("to_dvfs", FieldValue::U64(u64::from(sw.to.dvfs))),
                                    ("to_mix", FieldValue::U64(u64::from(sw.to.mix))),
                                    ("fresh", FieldValue::Str(if sw.to_fresh { "yes" } else { "no" })),
                                ],
                            );
                            self.config.telemetry.add_count("bank.switches", 1);
                        }
                    }
                    if let Some(ev) = out.drift {
                        self.degrade.drift_events += 1;
                        if tele_on {
                            self.config.telemetry.instant(
                                api.now,
                                "drift",
                                "detect",
                                &[
                                    ("gen", FieldValue::U64(u64::from(ev.slot.generation))),
                                    ("dvfs", FieldValue::U64(u64::from(ev.slot.dvfs))),
                                    ("mix", FieldValue::U64(u64::from(ev.slot.mix))),
                                    ("cusum_w", FieldValue::F64(ev.cusum_w)),
                                    ("retrained", FieldValue::Str(if ev.retrained { "yes" } else { "no" })),
                                ],
                            );
                            self.config.telemetry.add_count("drift.detects", 1);
                        }
                        if ev.retrained {
                            if ev.accepted {
                                self.degrade.drift_retrains += 1;
                            }
                            if tele_on {
                                self.config.telemetry.instant(
                                    api.now,
                                    "drift",
                                    "retrain",
                                    &[
                                        ("gen", FieldValue::U64(u64::from(ev.slot.generation))),
                                        ("dvfs", FieldValue::U64(u64::from(ev.slot.dvfs))),
                                        ("mix", FieldValue::U64(u64::from(ev.slot.mix))),
                                        ("accepted", FieldValue::Str(if ev.accepted { "yes" } else { "no" })),
                                    ],
                                );
                                self.config.telemetry.add_count("drift.retrains", 1);
                            }
                        }
                    }
                    if out.refit_accepted {
                        self.refits += 1;
                        if tele_on {
                            self.config.telemetry.instant(
                                api.now,
                                "recal",
                                "refit",
                                &[("n", FieldValue::U64(self.refits))],
                            );
                            self.config.telemetry.add_count("recal.refits", 1);
                        }
                    }
                    if let Some(e) = out.refit_error {
                        self.degrade.refits_rejected += 1;
                        if tele_on {
                            self.config.telemetry.instant(
                                api.now,
                                "degrade",
                                "refit_rejected",
                                &[("kind", FieldValue::Str(e.kind()))],
                            );
                            self.config.telemetry.add_count("degrade.refits_rejected", 1);
                        }
                        if out.refit_fallback {
                            self.degrade.refit_fallbacks += 1;
                            if tele_on {
                                self.config.telemetry.instant(
                                    api.now,
                                    "degrade",
                                    "refit_fallback",
                                    &[],
                                );
                            }
                        }
                        self.last_degradation = Some(e);
                    }
                    if out.quarantined {
                        self.degrade.models_quarantined += 1;
                        if tele_on {
                            self.config.telemetry.instant(
                                api.now,
                                "bank",
                                "quarantine",
                                &[
                                    ("gen", FieldValue::U64(u64::from(key.generation))),
                                    ("dvfs", FieldValue::U64(u64::from(key.dvfs))),
                                    ("mix", FieldValue::U64(u64::from(key.mix))),
                                ],
                            );
                            self.config.telemetry.add_count("bank.quarantines", 1);
                        }
                    }
                    if out.restored && tele_on {
                        self.config.telemetry.instant(
                            api.now,
                            "bank",
                            "restore",
                            &[
                                ("gen", FieldValue::U64(u64::from(key.generation))),
                                ("dvfs", FieldValue::U64(u64::from(key.dvfs))),
                                ("mix", FieldValue::U64(u64::from(key.mix))),
                            ],
                        );
                        self.config.telemetry.add_count("bank.restores", 1);
                    }
                    if let Some(discarded) = out.stale_reset_discarded {
                        self.degrade.stale_model_resets += 1;
                        if tele_on {
                            self.config.telemetry.instant(
                                api.now,
                                "degrade",
                                "stale_reset",
                                &[("discarded", FieldValue::U64(discarded as u64))],
                            );
                            self.config.telemetry.add_count("degrade.stale_resets", 1);
                        }
                    }
                }
                // Serve whatever the bank now holds for the active regime
                // (slot fit, last-good fallback, or the offline model).
                self.model = bank.current_model().clone();
            }
        }
    }
}

impl std::fmt::Debug for FacilityState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FacilityState")
            .field("approach", &self.config.approach)
            .field("maintenance_ops", &self.maintenance_ops)
            .field("refits", &self.refits)
            .field("live_containers", &self.containers.live_count())
            .finish()
    }
}

/// The installable facility. Construct with
/// [`PowerContainerFacility::new`], keep the [`state`] handle, and pass
/// the facility to [`ossim::Kernel::install_hooks`].
///
/// [`state`]: PowerContainerFacility::state
///
/// # Example
///
/// ```
/// use hwsim::{Machine, MachineSpec};
/// use ossim::{Kernel, KernelConfig};
/// use power_containers::{
///     CalibrationSet, FacilityConfig, ModelKind, PowerContainerFacility, PowerModel,
/// };
///
/// let spec = MachineSpec::sandybridge();
/// let model = PowerModel::new(ModelKind::WithChipShare, 26.1, [8.0; 8]);
/// let facility = PowerContainerFacility::new(model, None, &spec, FacilityConfig::default());
/// let state = facility.state();
/// let mut kernel = Kernel::new(Machine::new(spec, 1), KernelConfig::default());
/// kernel.install_hooks(Box::new(facility));
/// assert_eq!(state.borrow().maintenance_ops(), 0);
/// ```
pub struct PowerContainerFacility {
    state: Rc<RefCell<FacilityState>>,
}

impl PowerContainerFacility {
    /// Creates a facility for a machine with `spec`, starting from
    /// `model`. `calibration` supplies the offline sample set needed when
    /// the approach is [`Approach::Recalibrated`].
    ///
    /// # Panics
    ///
    /// Panics if the approach is `Recalibrated` but no calibration set or
    /// meter was provided; [`PowerContainerFacility::try_new`] returns
    /// the misconfiguration as an error instead.
    pub fn new(
        model: PowerModel,
        calibration: Option<&CalibrationSet>,
        spec: &MachineSpec,
        config: FacilityConfig,
    ) -> PowerContainerFacility {
        match Self::try_new(model, calibration, spec, config) {
            Ok(f) => f,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// [`FacilityError::CalibrationMissing`] /
    /// [`FacilityError::MeterMissing`] when the approach is
    /// [`Approach::Recalibrated`] but the offline calibration set or the
    /// meter name was not provided.
    pub fn try_new(
        model: PowerModel,
        calibration: Option<&CalibrationSet>,
        spec: &MachineSpec,
        config: FacilityConfig,
    ) -> Result<PowerContainerFacility, FacilityError> {
        let recalibrator = if config.approach == Approach::Recalibrated {
            let cal = calibration.ok_or(FacilityError::CalibrationMissing)?;
            if config.meter.is_none() {
                return Err(FacilityError::MeterMissing);
            }
            let kind = config.approach.model_kind();
            Some(match &config.model_bank {
                Some(bank_cfg) => RecalEngine::Bank(ModelBank::new(
                    cal,
                    kind,
                    model.clone(),
                    bank_cfg.clone(),
                )),
                None => RecalEngine::Single(Recalibrator::new(cal, kind)),
            })
        } else {
            None
        };
        let cores = spec.total_cores();
        let state = FacilityState {
            spec: spec.clone(),
            model,
            containers: ContainerManager::new(config.retain_records),
            board: SampleBoard::new(cores),
            cores: vec![CoreSampler::default(); cores],
            model_trace: TraceRing::new(config.trace_slot, config.trace_capacity),
            metrics_trace: TraceRing::new(config.trace_slot, config.trace_capacity),
            estimator: None, // needs the meter period, resolved at boot
            recalibrator,
            meter_id: None,
            meter_period: SimDuration::from_millis(1),
            aligned_delay: None,
            last_alignment: None,
            pending_readings: Vec::new(),
            reports_since_align: 0,
            last_window_end: None,
            maintenance_ops: 0,
            refits: 0,
            degrade: DegradeStats::default(),
            last_degradation: None,
            per_task_energy: std::collections::HashMap::new(),
            config,
        };
        Ok(PowerContainerFacility { state: Rc::new(RefCell::new(state)) })
    }

    /// A shared handle onto the facility's state.
    pub fn state(&self) -> Rc<RefCell<FacilityState>> {
        Rc::clone(&self.state)
    }
}

impl KernelHooks for PowerContainerFacility {
    fn on_boot(&mut self, api: &mut KernelApi<'_>) {
        let mut s = self.state.borrow_mut();
        if s.config.telemetry.enabled() {
            s.config
                .telemetry
                .register_histogram("attr.watts", &[1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0]);
            s.config
                .telemetry
                .register_histogram("align.score", &[0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 0.99]);
        }
        for c in 0..api.core_count() {
            s.cores[c].last = api.machine.counters(CoreId(c));
            s.arm_pmu(api, CoreId(c));
        }
        if let Some(name) = s.config.meter {
            s.meter_id = api.machine.find_meter(name);
            if let Some(id) = s.meter_id {
                let spec = api.machine.meter_spec(id).clone();
                s.meter_period = spec.period;
                s.estimator = Some(DelayEstimator::new(
                    spec.period,
                    s.config.max_meter_delay,
                    s.config.align_step,
                    128,
                ));
            }
        }
    }

    fn on_context_switch(
        &mut self,
        api: &mut KernelApi<'_>,
        core: CoreId,
        prev: Option<TaskId>,
        next: Option<TaskId>,
    ) {
        let mut s = self.state.borrow_mut();
        let principal = prev.map(|t| api.context_of(t));
        s.sample_core(api, core, principal, prev);
        if next.is_some() {
            let next_ctx = next.and_then(|t| api.context_of(t));
            s.condition(api, core, next_ctx, 1);
        } else if s.config.conditioning.is_some() {
            // Idle cores return to full speed for the next dispatch.
            api.machine.set_duty_cycle(core, hwsim::DutyCycle::FULL);
        }
    }

    fn on_pmu_interrupt(&mut self, api: &mut KernelApi<'_>, core: CoreId, task: TaskId) {
        let mut s = self.state.borrow_mut();
        let ctx = api.context_of(task);
        s.sample_core(api, core, Some(ctx), Some(task));
        s.arm_pmu(api, core);
        s.condition(api, core, ctx, 0);
        s.poll_meter(api);
        if s.config.telemetry.enabled() {
            // Satellite of §10 telemetry: kernel and facility activity
            // counters are queryable mid-run (not only at teardown), so
            // each PMU interrupt refreshes the live gauges.
            let ks = api.kernel_stats();
            let tele = &s.config.telemetry;
            tele.set_gauge("kernel.context_switches", ks.context_switches as f64);
            tele.set_gauge("kernel.pmu_interrupts", ks.pmu_interrupts as f64);
            tele.set_gauge("kernel.messages", ks.messages as f64);
            tele.set_gauge("facility.maintenance_ops", s.maintenance_ops as f64);
            tele.set_gauge("facility.live_containers", s.containers.live_count() as f64);
            tele.set_gauge("facility.refits", s.refits as f64);
            tele.set_gauge("facility.degrade_total", s.degrade.total() as f64);
        }
    }

    fn on_context_bound(
        &mut self,
        api: &mut KernelApi<'_>,
        task: TaskId,
        old: Option<ContextId>,
        new: Option<ContextId>,
        core: Option<CoreId>,
    ) {
        let mut s = self.state.borrow_mut();
        // The pre-binding slice belongs to the old context.
        if let Some(core) = core {
            s.sample_core(api, core, Some(old), Some(task));
        }
        let now = api.now;
        if let Some(o) = old {
            s.containers.unbind(o, now);
        }
        if let Some(n) = new {
            s.containers.bind(n, now);
        }
    }

    fn on_task_created(
        &mut self,
        api: &mut KernelApi<'_>,
        _task: TaskId,
        _parent: Option<TaskId>,
        ctx: Option<ContextId>,
    ) {
        if let Some(c) = ctx {
            self.state.borrow_mut().containers.bind(c, api.now);
        }
    }

    fn on_task_exit(&mut self, api: &mut KernelApi<'_>, task: TaskId, ctx: Option<ContextId>) {
        let mut s = self.state.borrow_mut();
        // Attribute the exiting task's final CPU slice *before* releasing
        // its container; the context-switch hook that follows would
        // otherwise attribute it to a fresh, orphaned container.
        let core = (0..api.core_count())
            .map(CoreId)
            .find(|&c| api.running_task(c) == Some(task));
        if let Some(core) = core {
            s.sample_core(api, core, Some(ctx), Some(task));
        }
        if let Some(c) = ctx {
            s.containers.unbind(c, api.now);
        }
    }

    fn on_io_complete(
        &mut self,
        api: &mut KernelApi<'_>,
        device: DeviceKind,
        _task: TaskId,
        ctx: Option<ContextId>,
        _bytes: u64,
        seconds: f64,
    ) {
        let mut s = self.state.borrow_mut();
        let coeff = match device {
            DeviceKind::Disk => s.model.coefficients()[6],
            DeviceKind::Net => s.model.coefficients()[7],
        };
        s.containers.attribute_io(ctx, coeff * seconds, api.now);
        // Backfill the device's active span into the machine-level
        // traces, slot by slot, so alignment/recalibration sees it.
        let now = api.now;
        let slot = s.config.trace_slot;
        let mut t = now - SimDuration::from_secs_f64(seconds);
        let mut unit = MetricVector::default();
        match device {
            DeviceKind::Disk => unit.disk = 1.0,
            DeviceKind::Net => unit.net = 1.0,
        }
        while t < now {
            let slot_end = SimTime::from_nanos(
                (t.as_nanos() / slot.as_nanos() + 1) * slot.as_nanos(),
            );
            let chunk_end = slot_end.min(now);
            let dt = chunk_end.duration_since(t);
            s.metrics_trace.add(chunk_end, unit, dt);
            s.model_trace.add(chunk_end, coeff, dt);
            t = chunk_end;
        }
    }
}

impl std::fmt::Debug for PowerContainerFacility {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.state.borrow().fmt(f)
    }
}
