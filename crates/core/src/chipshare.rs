//! Estimating each task's share of chip maintenance power (paper Eq. 3).
//!
//! `M_chipshare` has no hardware counter. Each core estimates it locally:
//! the task running on core *c* gets
//!
//! ```text
//! M_chipshare(c) = M_core(c) · 1 / (1 + Σ_{siblings i} M_core(i))
//! ```
//!
//! where sibling utilizations are read from each sibling's most recent
//! sample record *without any synchronization*. A sibling that has gone
//! idle stops sampling (non-halt-triggered interrupts cease), so its
//! record may be stale; the paper's fix — checking whether the OS is
//! currently scheduling the idle task on that sibling and treating its
//! activity as zero if so — is reproduced here.

use hwsim::{CoreId, MachineSpec};
use simkern::SimTime;

/// One core's most recent published sample, as its siblings see it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleRecord {
    /// The core utilization (`M_core`) observed over the core's last
    /// sampling period.
    pub core_util: f64,
    /// When the record was written.
    pub written_at: SimTime,
}

impl Default for SampleRecord {
    fn default() -> SampleRecord {
        SampleRecord { core_util: 0.0, written_at: SimTime::ZERO }
    }
}

/// The per-machine board of per-core sample records. Writes and reads are
/// unsynchronized by design (each core owns its slot; readers tolerate
/// staleness).
#[derive(Debug, Clone)]
pub struct SampleBoard {
    records: Vec<SampleRecord>,
}

impl SampleBoard {
    /// Creates a board for `cores` cores.
    pub fn new(cores: usize) -> SampleBoard {
        SampleBoard { records: vec![SampleRecord::default(); cores] }
    }

    /// Publishes `core`'s latest sample.
    pub fn publish(&mut self, core: CoreId, core_util: f64, now: SimTime) {
        self.records[core.0] = SampleRecord { core_util: core_util.clamp(0.0, 1.0), written_at: now };
    }

    /// The last published record for `core`.
    pub fn record(&self, core: CoreId) -> SampleRecord {
        self.records[core.0]
    }

    /// Estimates Eq. 3's `M_chipshare` for the task on `core`, whose own
    /// utilization over the period was `my_util`. `is_idle(c)` must report
    /// whether the scheduler currently runs the idle task on core `c` (the
    /// stale-record correction).
    pub fn chipshare(
        &self,
        spec: &MachineSpec,
        core: CoreId,
        my_util: f64,
        mut is_idle: impl FnMut(CoreId) -> bool,
    ) -> f64 {
        let chip = spec.chip_of(core.0);
        let mut sibling_sum = 0.0;
        for sib in spec.cores_of(chip) {
            if sib == core.0 {
                continue;
            }
            let sib = CoreId(sib);
            if is_idle(sib) {
                continue; // stale record: treat current activity as zero
            }
            sibling_sum += self.records[sib.0].core_util;
        }
        (my_util / (1.0 + sibling_sum)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwsim::MachineSpec;

    fn board4() -> (SampleBoard, MachineSpec) {
        (SampleBoard::new(4), MachineSpec::sandybridge())
    }

    #[test]
    fn lone_busy_core_owns_full_chip_share() {
        let (board, spec) = board4();
        let s = board.chipshare(&spec, CoreId(0), 1.0, |_| true);
        assert_eq!(s, 1.0);
    }

    #[test]
    fn k_busy_cores_split_evenly() {
        let (mut board, spec) = board4();
        let now = SimTime::from_millis(1);
        for c in 0..4 {
            board.publish(CoreId(c), 1.0, now);
        }
        let s = board.chipshare(&spec, CoreId(0), 1.0, |_| false);
        assert!((s - 0.25).abs() < 1e-12, "four busy cores → 1/4 each, got {s}");
    }

    #[test]
    fn idle_sibling_records_are_ignored() {
        let (mut board, spec) = board4();
        // Sibling 1 published full utilization long ago but is idle now.
        board.publish(CoreId(1), 1.0, SimTime::ZERO);
        let s = board.chipshare(&spec, CoreId(0), 1.0, |c| c != CoreId(0));
        assert_eq!(s, 1.0, "stale idle sibling must not dilute the share");
    }

    #[test]
    fn partial_utilizations_follow_equation_3() {
        let (mut board, spec) = board4();
        board.publish(CoreId(1), 0.5, SimTime::ZERO);
        board.publish(CoreId(2), 0.25, SimTime::ZERO);
        let s = board.chipshare(&spec, CoreId(0), 0.8, |c| c == CoreId(3));
        let expected = 0.8 / (1.0 + 0.5 + 0.25);
        assert!((s - expected).abs() < 1e-12);
    }

    #[test]
    fn only_same_chip_siblings_count() {
        // Woodcrest: cores 0,1 on chip 0; cores 2,3 on chip 1.
        let spec = MachineSpec::woodcrest();
        let mut board = SampleBoard::new(4);
        board.publish(CoreId(2), 1.0, SimTime::ZERO);
        board.publish(CoreId(3), 1.0, SimTime::ZERO);
        let s = board.chipshare(&spec, CoreId(0), 1.0, |_| false);
        assert_eq!(s, 1.0, "other-chip cores must not affect this chip's share");
    }

    #[test]
    fn publish_clamps_utilization() {
        let (mut board, _spec) = board4();
        board.publish(CoreId(0), 7.5, SimTime::ZERO);
        assert_eq!(board.record(CoreId(0)).core_util, 1.0);
    }

    #[test]
    fn shares_sum_to_at_most_one_per_chip() {
        let (mut board, spec) = board4();
        let utils = [0.9, 0.6, 0.3, 0.0];
        for (c, u) in utils.iter().enumerate() {
            board.publish(CoreId(c), *u, SimTime::ZERO);
        }
        let total: f64 = (0..4)
            .map(|c| board.chipshare(&spec, CoreId(c), utils[c], |s| utils[s.0] == 0.0))
            .sum();
        assert!(total <= 1.0 + 1e-9, "shares must not over-attribute: {total}");
    }
}
