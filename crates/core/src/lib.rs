//! # Power Containers
//!
//! A reproduction of *Power Containers: An OS Facility for Fine-Grained
//! Power and Energy Management on Multicore Servers* (Shen, Shriraman,
//! Dwarkadas, Zhang, Chen — ASPLOS 2013), built on the simulated hardware
//! ([`hwsim`]) and operating system ([`ossim`]) substrates of this
//! workspace.
//!
//! A *power container* accounts for — and controls — the power and energy
//! usage of one fine-grained request as it flows through a multi-stage
//! multicore server. Three techniques make this possible:
//!
//! 1. **Multicore power attribution** ([`PowerModel`], [`SampleBoard`]):
//!    a linear model over per-core hardware event counters (Eq. 1),
//!    extended with each task's share of the chip's shared *maintenance
//!    power* (Eq. 2/3), estimated per core without cross-core
//!    synchronization.
//! 2. **Measurement alignment and online recalibration**
//!    ([`DelayEstimator`], [`Recalibrator`]): delayed meter readings are
//!    aligned to model estimates by cross-correlation (Eq. 4), then folded
//!    into a least-squares refit that corrects the offline model for
//!    production workloads — most importantly unusually high-power ones.
//! 3. **Application-transparent request tracking** ([`ContainerManager`],
//!    [`PowerContainerFacility`]): request contexts propagate through
//!    socket messages (tagged per segment), forks and IPC; each context's
//!    container accumulates events, power and energy, and per-request
//!    control (duty-cycle throttling, [`ConditioningPolicy`]) hangs off
//!    the container.
//!
//! # Quick start
//!
//! ```
//! use hwsim::{ActivityProfile, Machine, MachineSpec};
//! use ossim::{Kernel, KernelConfig, Op, ScriptProgram};
//! use power_containers::{
//!     FacilityConfig, ModelKind, PowerContainerFacility, PowerModel,
//! };
//! use simkern::SimTime;
//!
//! // A calibrated model would come from `CalibrationSet::fit`; use a
//! // hand-rolled one here.
//! let spec = MachineSpec::sandybridge();
//! let model = PowerModel::new(
//!     ModelKind::WithChipShare,
//!     26.1,
//!     [8.3, 0.78, 0.75, 35.0, 41.0, 5.6, 1.7, 5.8],
//! );
//! let facility = PowerContainerFacility::new(model, None, &spec, FacilityConfig::default());
//! let state = facility.state();
//!
//! let mut kernel = Kernel::new(Machine::new(spec, 1), KernelConfig::default());
//! kernel.install_hooks(Box::new(facility));
//!
//! // Run one tagged request.
//! let ctx = kernel.alloc_context();
//! kernel.spawn(
//!     Box::new(ScriptProgram::new(vec![Op::Compute {
//!         cycles: 3.1e6,
//!         profile: ActivityProfile::high_ipc(),
//!     }])),
//!     Some(ctx),
//! );
//! kernel.run_until(SimTime::from_millis(5));
//!
//! let state = state.borrow();
//! assert_eq!(state.containers().records().len(), 1);
//! assert!(state.containers().records()[0].energy_j > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The facility must degrade gracefully, never panic, when its inputs
// misbehave: recoverable failures go through `FacilityError` instead of
// `unwrap`/`expect`. Tests may still unwrap freely.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

mod align;
mod calibrate;
mod chipshare;
mod conditioning;
mod container;
mod dvfs;
mod error;
mod facility;
mod metrics;
mod model;
mod modelbank;
mod recalibrate;
mod report;
mod trace;

pub use align::{AlignmentResult, DelayEstimator, Reading};
pub use calibrate::{CalibrationSample, CalibrationSet};
pub use chipshare::{SampleBoard, SampleRecord};
pub use conditioning::ConditioningPolicy;
pub use dvfs::DvfsGovernor;
pub use container::{
    lifetime_metrics, ContainerManager, ContainerRecord, ContainerSnapshot, ContainerView,
    LabelEnergy, ManagerCheckpoint,
};
pub use error::FacilityError;
pub use facility::{
    Approach, FacilityConfig, FacilityState, PowerContainerFacility, MAINTENANCE_BUNDLE,
};
pub use metrics::{DegradeStats, MetricVector, FEATURES};
pub use model::{ModelKind, PowerModel};
pub use modelbank::{
    BankConfig, BankOutcome, BankStats, DriftEvent, DriftPolicy, ModelBank, ModelSwitch,
    RegimeKey,
};
pub use recalibrate::{Recalibrator, RefitPolicy};
pub use report::{ConsumerLine, PowerReport};
pub use trace::TraceRing;
