//! Fair request power conditioning (paper §3.4).
//!
//! Instead of throttling the whole machine when power surges, the
//! facility maintains a per-request power budget and applies CPU
//! duty-cycle modulation *only* to requests exceeding it: power viruses
//! slow down, normal requests keep running at (almost) full speed. The
//! policy exploits the approximately linear relation between duty-cycle
//! level and active power.

use hwsim::DutyCycle;

/// The fair-conditioning policy configuration.
///
/// # Example
///
/// ```
/// use power_containers::ConditioningPolicy;
///
/// let policy = ConditioningPolicy::new(40.0);
/// // Four busy cores → 10 W per-request budget; a 16 W request is cut to
/// // the duty level that brings it to ~10 W.
/// let duty = policy.duty_for(16.0, 4, None);
/// assert_eq!(duty.eighths(), 5); // floor(10/16 * 8) = 5
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConditioningPolicy {
    /// Target for the whole machine's active power, Watts.
    pub system_target_w: f64,
}

impl ConditioningPolicy {
    /// Creates a policy capping system active power at `system_target_w`.
    ///
    /// # Panics
    ///
    /// Panics if the target is not positive.
    pub fn new(system_target_w: f64) -> ConditioningPolicy {
        assert!(system_target_w > 0.0, "power target must be positive");
        ConditioningPolicy { system_target_w }
    }

    /// A node's slice of a *cluster-wide* active-power cap: the cap is
    /// divided across the fleet proportionally to core count, and each
    /// node conditions its own requests against its share using the
    /// ordinary per-request duty-cycle mechanism. No cross-node
    /// coordination is needed at enforcement time — the global cap holds
    /// whenever every node holds its share.
    ///
    /// # Panics
    ///
    /// Panics if the cap is not positive, `node_cores` is zero, or
    /// `node_cores > total_cores`.
    pub fn node_share(
        cluster_cap_w: f64,
        node_cores: usize,
        total_cores: usize,
    ) -> ConditioningPolicy {
        assert!(cluster_cap_w > 0.0, "cluster power cap must be positive");
        assert!(
            node_cores > 0 && node_cores <= total_cores,
            "node cores {node_cores} must be within the fleet total {total_cores}"
        );
        ConditioningPolicy::new(cluster_cap_w * node_cores as f64 / total_cores as f64)
    }

    /// The per-request power budget when `busy_cores` cores are in use:
    /// the system target divided evenly among running requests. With idle
    /// cores present each running request inherits a larger budget — the
    /// effect visible in the paper's Fig. 12 (viruses arriving during
    /// partially idle periods escape throttling).
    pub fn per_request_budget_w(&self, busy_cores: usize) -> f64 {
        self.system_target_w / busy_cores.max(1) as f64
    }

    /// The duty-cycle level for a request whose *unthrottled* power
    /// estimate is `unthrottled_w`, given `busy_cores` currently busy
    /// cores and an optional per-request cap overriding the fair share.
    ///
    /// Requests within budget run at full speed; others are scaled by the
    /// linear duty→power relationship, flooring at the hardware minimum.
    pub fn duty_for(
        &self,
        unthrottled_w: f64,
        busy_cores: usize,
        explicit_cap_w: Option<f64>,
    ) -> DutyCycle {
        let budget = explicit_cap_w.unwrap_or_else(|| self.per_request_budget_w(busy_cores));
        if unthrottled_w <= budget || unthrottled_w <= 0.0 {
            DutyCycle::FULL
        } else {
            DutyCycle::at_most(budget / unthrottled_w)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_budget_runs_full_speed() {
        let p = ConditioningPolicy::new(40.0);
        assert_eq!(p.duty_for(9.0, 4, None), DutyCycle::FULL);
        assert_eq!(p.duty_for(0.0, 4, None), DutyCycle::FULL);
    }

    #[test]
    fn over_budget_scales_linearly() {
        let p = ConditioningPolicy::new(40.0);
        // 20 W request on a 10 W budget → duty ≤ 1/2 → 4/8.
        assert_eq!(p.duty_for(20.0, 4, None).eighths(), 4);
        // 80 W request → 1/8 floor.
        assert_eq!(p.duty_for(80.0, 4, None), DutyCycle::MIN);
    }

    #[test]
    fn idle_cores_raise_the_budget() {
        let p = ConditioningPolicy::new(40.0);
        // Only 2 busy cores → 20 W budget: a 16 W virus is not throttled.
        assert_eq!(p.duty_for(16.0, 2, None), DutyCycle::FULL);
        // At 4 busy cores the same virus is throttled.
        assert!(p.duty_for(16.0, 4, None) < DutyCycle::FULL);
    }

    #[test]
    fn explicit_cap_overrides_fair_share() {
        let p = ConditioningPolicy::new(40.0);
        let duty = p.duty_for(16.0, 4, Some(4.0));
        assert_eq!(duty.eighths(), 2); // floor(4/16 * 8)
    }

    #[test]
    fn zero_busy_cores_does_not_divide_by_zero() {
        let p = ConditioningPolicy::new(40.0);
        assert_eq!(p.per_request_budget_w(0), 40.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_non_positive_target() {
        let _ = ConditioningPolicy::new(0.0);
    }

    #[test]
    fn node_share_splits_a_cluster_cap_by_cores() {
        // 12-core fleet under a 120 W cap: a 4-core node gets 40 W.
        let p = ConditioningPolicy::node_share(120.0, 4, 12);
        assert!((p.system_target_w - 40.0).abs() < 1e-12);
        // Shares over the fleet sum exactly to the cap.
        let total: f64 = [4, 4, 4]
            .iter()
            .map(|&c| ConditioningPolicy::node_share(120.0, c, 12).system_target_w)
            .sum();
        assert!((total - 120.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "within the fleet total")]
    fn node_share_rejects_oversized_nodes() {
        let _ = ConditioningPolicy::node_share(100.0, 8, 4);
    }
}
