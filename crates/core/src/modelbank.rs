//! Self-calibrating multi-model metering: a bank of per-regime
//! recalibrators with drift detection, error-driven retraining, and
//! hysteresis slot selection.
//!
//! The paper's online recalibration (§3.2) keeps a single rolling model
//! per node. That model chases every operating-regime change — a DVFS
//! step, a hardware generation swap, a workload phase flip — through the
//! same rolling window, paying the full re-adaptation cost on each shift
//! and contaminating the window with cross-regime samples while it
//! relearns. A [`ModelBank`] instead keys one [`Recalibrator`] per
//! *operating regime* (machine generation × DVFS level × workload-mix
//! bucket): a revisited regime is served instantly by the model it
//! trained last time, and samples from different regimes never share a
//! window.
//!
//! Three mechanisms keep the bank honest:
//!
//! * **Drift detection** — a per-slot CUSUM over the absolute
//!   estimate-vs-meter residual trips once sustained divergence
//!   accumulates past a threshold, triggering a targeted refit of that
//!   slot alone ([`DriftPolicy`]).
//! * **Quarantine** — a slot whose drift-triggered retrains keep being
//!   rejected is quarantined: it keeps accumulating samples but its fit
//!   is bypassed in favour of the bank-wide last-good fallback until a
//!   retrain is accepted again.
//! * **Hysteresis selection** — the served slot only switches after the
//!   observed regime key has persisted for a configured number of
//!   consecutive observations, so regime flapping (a key oscillating at
//!   the edge of a bucket) never thrashes the served model.

use crate::calibrate::CalibrationSet;
use crate::error::FacilityError;
use crate::metrics::MetricVector;
use crate::model::{ModelKind, PowerModel};
use crate::recalibrate::{Recalibrator, RefitPolicy};
use simkern::SimTime;
use std::collections::BTreeMap;
use std::fmt;

/// Bounded length of the drift-event and model-switch logs.
const EVENT_CAP: usize = 1024;

/// EWMA weight of the newest window in the bank's smoothed workload-mix
/// signal. Per-window mix is bursty (one write request can spike a 1 ms
/// window across a bucket boundary); the regime is the *sustained* mix,
/// so classification smooths over ~2/α windows before bucketing.
const MIX_EWMA_ALPHA: f64 = 0.1;

/// An operating regime: the discrete bucket a measurement window falls
/// into. One [`ModelBank`] slot exists per distinct key observed.
///
/// Keys order lexicographically (generation, then DVFS, then mix), which
/// fixes the bank's iteration order and keeps runs deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegimeKey {
    /// Hardware generation rank (see `hwsim::Machine::generation`).
    pub generation: u32,
    /// DVFS bucket: the mean frequency fraction in 5% steps
    /// (`round(fraction · 20)`, so nominal = 20, the 0.5 floor = 10).
    pub dvfs: u8,
    /// Workload-mix bucket: 0 = compute-heavy, 1 = mixed, 2 =
    /// memory-heavy, classified by memory transactions per busy cycle.
    pub mix: u8,
}

impl RegimeKey {
    /// Buckets raw regime signals into a key. `freq_fraction` is the
    /// machine's mean DVFS fraction; the workload mix is classified from
    /// `metrics` by memory transactions per *busy* cycle against
    /// `mix_thresholds` (two ascending cut points).
    pub fn classify(
        generation: u32,
        freq_fraction: f64,
        metrics: &MetricVector,
        mix_thresholds: [f64; 2],
    ) -> RegimeKey {
        RegimeKey {
            generation,
            dvfs: Self::dvfs_bucket(freq_fraction),
            mix: Self::mix_bucket(Self::mix_signal(metrics), mix_thresholds),
        }
    }

    /// The DVFS bucket for a mean frequency fraction (5% steps).
    pub fn dvfs_bucket(freq_fraction: f64) -> u8 {
        (freq_fraction.clamp(0.0, 1.0) * 20.0).round() as u8
    }

    /// The raw workload-mix signal of one window: memory transactions
    /// per busy cycle. `None` for an idle window (no busy cycles).
    pub fn mix_signal(metrics: &MetricVector) -> Option<f64> {
        (metrics.core > 1e-6).then(|| metrics.mem / metrics.core)
    }

    /// Buckets a mix signal against two ascending cut points.
    pub fn mix_bucket(signal: Option<f64>, mix_thresholds: [f64; 2]) -> u8 {
        let mem_per_busy = signal.unwrap_or(0.0);
        if mem_per_busy < mix_thresholds[0] {
            0
        } else if mem_per_busy < mix_thresholds[1] {
            1
        } else {
            2
        }
    }
}

impl fmt::Display for RegimeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}/f{}/m{}", self.generation, self.dvfs, self.mix)
    }
}

/// Drift-detection and slot-management policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftPolicy {
    /// CUSUM slack in Watts: residual magnitude below this is treated as
    /// measurement noise and decays the statistic.
    pub slack_w: f64,
    /// CUSUM trip threshold in Watt-windows: sustained divergence must
    /// accumulate this much excess residual before drift is declared.
    pub threshold_w: f64,
    /// Minimum samples in the slot's window before a drift trip may
    /// trigger a targeted retrain (a near-empty window cannot produce a
    /// meaningful fit).
    pub min_retrain_samples: usize,
    /// Consecutive rejected drift retrains after which the slot is
    /// quarantined behind the last-good fallback.
    pub quarantine_after: u32,
    /// Consecutive observations of a different regime key required
    /// before the bank switches its served slot.
    pub switch_hysteresis: u32,
}

impl Default for DriftPolicy {
    fn default() -> DriftPolicy {
        DriftPolicy {
            slack_w: 10.0,
            threshold_w: 60.0,
            min_retrain_samples: 8,
            quarantine_after: 3,
            switch_hysteresis: 3,
        }
    }
}

/// Model-bank configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct BankConfig {
    /// Refit acceptance policy installed into every slot's recalibrator.
    pub refit_policy: RefitPolicy,
    /// Online samples between periodic (non-drift) refits of a slot.
    pub recalibrate_every: usize,
    /// Drift detection and selection policy.
    pub drift: DriftPolicy,
    /// Ascending cut points for the workload-mix bucket, in memory
    /// transactions per busy cycle (hardware caps at 0.05).
    pub mix_thresholds: [f64; 2],
    /// Largest number of live slots; creating one beyond this evicts the
    /// least-recently-used non-active slot.
    pub max_slots: usize,
}

impl Default for BankConfig {
    fn default() -> BankConfig {
        BankConfig {
            refit_policy: RefitPolicy::default(),
            recalibrate_every: 8,
            drift: DriftPolicy::default(),
            mix_thresholds: [0.01, 0.04],
            max_slots: 16,
        }
    }
}

/// A drift detection: the CUSUM tripped on one slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftEvent {
    /// When the trip was observed.
    pub at: SimTime,
    /// The diverging slot.
    pub slot: RegimeKey,
    /// The CUSUM statistic at the trip, in Watt-windows.
    pub cusum_w: f64,
    /// Whether a targeted retrain was attempted (it is skipped when the
    /// slot's window is still below `min_retrain_samples`).
    pub retrained: bool,
    /// Whether the targeted retrain produced an accepted fit.
    pub accepted: bool,
}

/// A served-slot switch after hysteresis confirmed a regime change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelSwitch {
    /// When the switch took effect.
    pub at: SimTime,
    /// The previously served regime.
    pub from: RegimeKey,
    /// The newly served regime.
    pub to: RegimeKey,
    /// `true` when the target slot had no accepted fit yet (the bank
    /// serves the fallback until the fresh slot trains).
    pub to_fresh: bool,
}

/// Lifetime counters of the bank's adaptation actions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BankStats {
    /// CUSUM drift trips.
    pub drift_events: u64,
    /// Drift-triggered retrains that produced an accepted fit.
    pub drift_retrains: u64,
    /// Served-slot switches.
    pub model_switches: u64,
    /// Slots quarantined.
    pub models_quarantined: u64,
    /// Quarantined slots restored by an accepted retrain.
    pub models_restored: u64,
    /// Slots evicted by the LRU cap.
    pub slots_evicted: u64,
}

/// What one [`ModelBank::observe`] call did, for the caller to mirror
/// into degradation counters and telemetry.
#[derive(Debug, Default)]
pub struct BankOutcome {
    /// The served slot switched.
    pub switched: Option<ModelSwitch>,
    /// Drift was detected on the observed slot.
    pub drift: Option<DriftEvent>,
    /// A refit (periodic or drift-triggered) was accepted.
    pub refit_accepted: bool,
    /// A refit was attempted and rejected.
    pub refit_error: Option<FacilityError>,
    /// The rejected refit left a last-good model serving (the fallback
    /// path, mirroring the single-model `refit_fallbacks` counter).
    pub refit_fallback: bool,
    /// The observed slot was quarantined by this observation.
    pub quarantined: bool,
    /// The observed slot was restored from quarantine by an accepted
    /// retrain.
    pub restored: bool,
    /// The slot's online window was reset for staleness; carries the
    /// number of discarded samples.
    pub stale_reset_discarded: Option<usize>,
}

#[derive(Debug, Clone)]
struct BankSlot {
    recal: Recalibrator,
    quarantined: bool,
    cusum_w: f64,
    failed_retrains: u32,
    last_used: u64,
}

/// A bank of per-regime [`Recalibrator`]s with drift detection and
/// hysteresis selection. See the module docs for the design.
///
/// # Example
///
/// ```
/// use power_containers::{
///     BankConfig, CalibrationSample, CalibrationSet, MetricVector, ModelBank, ModelKind,
/// };
/// use simkern::SimTime;
///
/// let mut set = CalibrationSet::new(26.1);
/// for i in 1..=10 {
///     let u = i as f64 / 10.0;
///     set.push(CalibrationSample {
///         metrics: MetricVector { core: u, chipshare: 1.0, ..Default::default() },
///         active_watts: 8.0 * u + 5.6,
///     });
/// }
/// let initial = set.fit(ModelKind::WithChipShare).unwrap();
/// let mut bank = ModelBank::new(&set, ModelKind::WithChipShare, initial, BankConfig::default());
/// let m = MetricVector { core: 1.0, chipshare: 1.0, ..Default::default() };
/// let key = bank.classify(0, 1.0, &m);
/// bank.observe(key, m, 13.6, SimTime::from_millis(1));
/// assert_eq!(bank.active(), Some(key));
/// assert_eq!(bank.slot_count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ModelBank {
    calibration: CalibrationSet,
    kind: ModelKind,
    initial: PowerModel,
    config: BankConfig,
    slots: BTreeMap<RegimeKey, BankSlot>,
    active: Option<RegimeKey>,
    candidate: Option<(RegimeKey, u32)>,
    global_last_good: Option<PowerModel>,
    mix_ewma: Option<f64>,
    events: Vec<DriftEvent>,
    switches: Vec<ModelSwitch>,
    stats: BankStats,
    tick: u64,
}

impl ModelBank {
    /// Creates an empty bank. `initial` (typically the offline fit) is
    /// served until any slot produces an accepted refit, and remains the
    /// fallback of last resort.
    pub fn new(
        calibration: &CalibrationSet,
        kind: ModelKind,
        initial: PowerModel,
        config: BankConfig,
    ) -> ModelBank {
        ModelBank {
            calibration: calibration.clone(),
            kind,
            initial,
            config,
            slots: BTreeMap::new(),
            active: None,
            candidate: None,
            global_last_good: None,
            mix_ewma: None,
            events: Vec::new(),
            switches: Vec::new(),
            stats: BankStats::default(),
            tick: 0,
        }
    }

    /// The bank's configuration.
    pub fn config(&self) -> &BankConfig {
        &self.config
    }

    /// Buckets raw regime signals with this bank's mix thresholds. The
    /// workload-mix signal is smoothed with an EWMA across calls before
    /// bucketing ([`MIX_EWMA_ALPHA`]'s docs explain why); idle windows
    /// hold the previous smoothed value instead of dragging it to zero.
    pub fn classify(
        &mut self,
        generation: u32,
        freq_fraction: f64,
        metrics: &MetricVector,
    ) -> RegimeKey {
        let smoothed = match RegimeKey::mix_signal(metrics) {
            Some(raw) => {
                let s = match self.mix_ewma {
                    Some(prev) => prev + MIX_EWMA_ALPHA * (raw - prev),
                    None => raw,
                };
                self.mix_ewma = Some(s);
                Some(s)
            }
            None => self.mix_ewma,
        };
        RegimeKey {
            generation,
            dvfs: RegimeKey::dvfs_bucket(freq_fraction),
            mix: RegimeKey::mix_bucket(smoothed, self.config.mix_thresholds),
        }
    }

    /// The currently served regime, if any observation has arrived.
    pub fn active(&self) -> Option<RegimeKey> {
        self.active
    }

    /// Number of live slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// `true` when `key` has a slot that is currently quarantined.
    pub fn is_quarantined(&self, key: RegimeKey) -> bool {
        self.slots.get(&key).is_some_and(|s| s.quarantined)
    }

    /// The live regime keys, in deterministic (sorted) order.
    pub fn keys(&self) -> Vec<RegimeKey> {
        self.slots.keys().copied().collect()
    }

    /// Lifetime adaptation counters.
    pub fn stats(&self) -> BankStats {
        self.stats
    }

    /// The bounded drift-event log, oldest first.
    pub fn drift_events(&self) -> &[DriftEvent] {
        &self.events
    }

    /// The bounded model-switch log, oldest first.
    pub fn switches(&self) -> &[ModelSwitch] {
        &self.switches
    }

    /// The model the bank currently serves: the active slot's last
    /// accepted fit, unless that slot is quarantined or untrained, in
    /// which case the bank-wide last-good model (else the initial model)
    /// serves instead. A quarantined slot's own fit is never returned.
    pub fn current_model(&self) -> &PowerModel {
        match self.active {
            Some(key) => self.serving_model_for(key),
            None => &self.initial,
        }
    }

    fn serving_model_for(&self, key: RegimeKey) -> &PowerModel {
        if let Some(slot) = self.slots.get(&key) {
            if !slot.quarantined {
                if let Some(m) = slot.recal.last_good() {
                    return m;
                }
            }
        }
        self.global_last_good.as_ref().unwrap_or(&self.initial)
    }

    /// Feeds one aligned measurement window to the bank: updates the
    /// hysteresis selector with the observed `key`, routes the sample to
    /// `key`'s slot (creating it on first sight), advances that slot's
    /// drift CUSUM, and runs any due retrain. Samples always train the
    /// slot of the *observed* regime, even while hysteresis still serves
    /// the previous one — cross-regime windows never share an
    /// accumulator.
    pub fn observe(
        &mut self,
        key: RegimeKey,
        metrics: MetricVector,
        active_watts: f64,
        now: SimTime,
    ) -> BankOutcome {
        let mut out = BankOutcome::default();
        self.tick += 1;
        self.update_selection(key, now, &mut out);

        // Residual against the model this regime would be served by,
        // measured before the sample can influence any fit.
        let masked = PowerModel::mask_metrics(self.kind, metrics);
        let predicted = self.serving_model_for(key).active_power(&masked);
        let residual = (active_watts.max(0.0) - predicted).abs();

        self.ensure_slot(key);
        let policy = self.config.drift;
        let recalibrate_every = self.config.recalibrate_every;
        let Some(slot) = self.slots.get_mut(&key) else {
            return out; // unreachable: ensure_slot just inserted it
        };
        slot.last_used = self.tick;
        slot.recal.add_online_sample(metrics, active_watts);
        slot.cusum_w = (slot.cusum_w + residual - policy.slack_w).max(0.0);

        let drift_tripped = slot.cusum_w >= policy.threshold_w;
        let can_retrain = slot.recal.window_len() >= policy.min_retrain_samples;
        let periodic_due = slot.recal.samples_since_fit() >= recalibrate_every;
        if drift_tripped {
            let mut event = DriftEvent {
                at: now,
                slot: key,
                cusum_w: slot.cusum_w,
                retrained: can_retrain,
                accepted: false,
            };
            self.stats.drift_events += 1;
            if can_retrain {
                event.accepted = Self::retrain_slot(
                    &mut self.stats,
                    &mut self.global_last_good,
                    slot,
                    &policy,
                    true,
                    &mut out,
                );
                slot.cusum_w = 0.0;
            }
            out.drift = Some(event);
            push_bounded(&mut self.events, event);
        } else if periodic_due && can_retrain {
            Self::retrain_slot(
                &mut self.stats,
                &mut self.global_last_good,
                slot,
                &policy,
                false,
                &mut out,
            );
        }
        out
    }

    /// Runs one refit on `slot`, folding the result into `out`. Returns
    /// `true` when the fit was accepted.
    fn retrain_slot(
        stats: &mut BankStats,
        global_last_good: &mut Option<PowerModel>,
        slot: &mut BankSlot,
        policy: &DriftPolicy,
        drift_triggered: bool,
        out: &mut BankOutcome,
    ) -> bool {
        match slot.recal.refit() {
            Ok(model) => {
                slot.failed_retrains = 0;
                if slot.quarantined {
                    slot.quarantined = false;
                    out.restored = true;
                    stats.models_restored += 1;
                }
                if drift_triggered {
                    stats.drift_retrains += 1;
                }
                *global_last_good = Some(model);
                out.refit_accepted = true;
                true
            }
            Err(e) => {
                slot.failed_retrains += 1;
                out.refit_fallback =
                    slot.recal.last_good().is_some() || global_last_good.is_some();
                if drift_triggered
                    && !slot.quarantined
                    && slot.failed_retrains >= policy.quarantine_after
                {
                    slot.quarantined = true;
                    slot.cusum_w = 0.0;
                    out.quarantined = true;
                    stats.models_quarantined += 1;
                }
                if slot.recal.is_stale() {
                    out.stale_reset_discarded = Some(slot.recal.reset_online());
                }
                out.refit_error = Some(e);
                false
            }
        }
    }

    /// Hysteresis slot selection: the served slot only changes once the
    /// observed key has persisted for `switch_hysteresis` consecutive
    /// observations. The first observation ever adopts its key directly
    /// (there is nothing to protect yet).
    fn update_selection(&mut self, key: RegimeKey, now: SimTime, out: &mut BankOutcome) {
        let Some(active) = self.active else {
            self.active = Some(key);
            self.candidate = None;
            return;
        };
        if active == key {
            self.candidate = None;
            return;
        }
        let streak = match self.candidate {
            Some((cand, n)) if cand == key => n + 1,
            _ => 1,
        };
        if streak >= self.config.drift.switch_hysteresis {
            let to_fresh = self
                .slots
                .get(&key)
                .is_none_or(|s| s.quarantined || s.recal.last_good().is_none());
            let switch = ModelSwitch { at: now, from: active, to: key, to_fresh };
            self.active = Some(key);
            self.candidate = None;
            self.stats.model_switches += 1;
            out.switched = Some(switch);
            push_bounded(&mut self.switches, switch);
        } else {
            self.candidate = Some((key, streak));
        }
    }

    /// Creates `key`'s slot if absent, evicting the least-recently-used
    /// non-active slot when the bank is at capacity.
    fn ensure_slot(&mut self, key: RegimeKey) {
        if self.slots.contains_key(&key) {
            return;
        }
        if self.slots.len() >= self.config.max_slots.max(1) {
            let victim = self
                .slots
                .iter()
                .filter(|(k, _)| Some(**k) != self.active)
                .min_by_key(|(_, s)| s.last_used)
                .map(|(k, _)| *k);
            if let Some(v) = victim {
                self.slots.remove(&v);
                self.stats.slots_evicted += 1;
            }
        }
        let mut recal = Recalibrator::new(&self.calibration, self.kind);
        recal.set_policy(self.config.refit_policy);
        self.slots.insert(
            key,
            BankSlot {
                recal,
                quarantined: false,
                cusum_w: 0.0,
                failed_retrains: 0,
                last_used: self.tick,
            },
        );
    }
}

fn push_bounded<T>(log: &mut Vec<T>, item: T) {
    if log.len() >= EVENT_CAP {
        log.remove(0);
    }
    log.push(item);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::CalibrationSample;
    use crate::metrics::FEATURES;

    fn offline_set() -> CalibrationSet {
        let mut set = CalibrationSet::new(26.1);
        for level in [0.25, 0.5, 0.75, 1.0f64] {
            for f in 0..6 {
                let mut a = [0.0; FEATURES];
                a[0] = level;
                a[f] = level;
                a[5] = 1.0;
                let truth = [8.0, 3.0, 1.5, 3.5, 2.0, 5.6, 0.0, 0.0];
                let watts: f64 = a.iter().zip(truth).map(|(x, c)| x * c).sum();
                set.push(CalibrationSample {
                    metrics: MetricVector::from_slice(&a),
                    active_watts: watts,
                });
            }
        }
        set
    }

    fn bank(config: BankConfig) -> ModelBank {
        let set = offline_set();
        let initial = set.fit(ModelKind::WithChipShare).unwrap();
        ModelBank::new(&set, ModelKind::WithChipShare, initial, config)
    }

    fn busy_metrics() -> MetricVector {
        MetricVector { core: 1.0, ins: 2.0, chipshare: 1.0, ..Default::default() }
    }

    /// True power for `busy_metrics` under the calibration-time law.
    fn busy_watts() -> f64 {
        8.0 + 2.0 * 3.0 + 5.6
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn classify_buckets_regimes() {
        let m = busy_metrics();
        let k = RegimeKey::classify(0, 1.0, &m, [0.01, 0.03]);
        assert_eq!(k, RegimeKey { generation: 0, dvfs: 20, mix: 0 });
        let k = RegimeKey::classify(1, 0.75, &m, [0.01, 0.03]);
        assert_eq!((k.generation, k.dvfs), (1, 15));
        // Memory-heavy: 0.04 mem txns per busy cycle exceeds both cuts.
        let mem = MetricVector { core: 0.5, mem: 0.02, ..Default::default() };
        assert_eq!(RegimeKey::classify(0, 1.0, &mem, [0.01, 0.03]).mix, 2);
        // Mixed band.
        let mixed = MetricVector { core: 1.0, mem: 0.02, ..Default::default() };
        assert_eq!(RegimeKey::classify(0, 1.0, &mixed, [0.01, 0.03]).mix, 1);
        // Idle window defaults to compute bucket.
        let idle = MetricVector::default();
        assert_eq!(RegimeKey::classify(0, 1.0, &idle, [0.01, 0.03]).mix, 0);
        assert_eq!(k.to_string(), "g1/f15/m0");
    }

    #[test]
    fn first_observation_adopts_without_switch_event() {
        let mut b = bank(BankConfig::default());
        let key = b.classify(0, 1.0, &busy_metrics());
        let out = b.observe(key, busy_metrics(), busy_watts(), t(1));
        assert!(out.switched.is_none());
        assert_eq!(b.active(), Some(key));
        assert_eq!(b.stats().model_switches, 0);
    }

    #[test]
    fn hysteresis_suppresses_flapping_but_confirms_real_shifts() {
        let mut b = bank(BankConfig::default());
        let a = RegimeKey { generation: 0, dvfs: 20, mix: 0 };
        let z = RegimeKey { generation: 0, dvfs: 15, mix: 0 };
        b.observe(a, busy_metrics(), busy_watts(), t(1));
        // Alternating keys never persist: no switch however long it runs.
        for i in 0..40 {
            let k = if i % 2 == 0 { z } else { a };
            let out = b.observe(k, busy_metrics(), busy_watts(), t(2 + i));
            assert!(out.switched.is_none(), "flapping must not switch");
        }
        assert_eq!(b.active(), Some(a));
        // A persistent shift switches after exactly `switch_hysteresis`
        // consecutive observations.
        let h = b.config().drift.switch_hysteresis;
        let mut switched_at = None;
        for i in 0..h {
            let out = b.observe(z, busy_metrics(), busy_watts(), t(100 + u64::from(i)));
            if out.switched.is_some() {
                switched_at = Some(i + 1);
            }
        }
        assert_eq!(switched_at, Some(h));
        assert_eq!(b.active(), Some(z));
        assert_eq!(b.stats().model_switches, 1);
        assert_eq!(b.switches().len(), 1);
        assert_eq!(b.switches()[0].from, a);
        assert_eq!(b.switches()[0].to, z);
    }

    #[test]
    fn periodic_refit_trains_the_active_slot() {
        let mut b = bank(BankConfig::default());
        let key = b.classify(0, 1.0, &busy_metrics());
        // Production power runs 6 W above the calibration law.
        let truth = busy_watts() + 6.0;
        let mut accepted = 0;
        for i in 0..40 {
            let out = b.observe(key, busy_metrics(), truth, t(1 + i));
            if out.refit_accepted {
                accepted += 1;
            }
        }
        assert!(accepted > 0, "periodic refits must fire");
        let masked = PowerModel::mask_metrics(ModelKind::WithChipShare, busy_metrics());
        let served = b.current_model().active_power(&masked);
        assert!(
            (served - truth).abs() / truth < 0.05,
            "served {served:.1} vs truth {truth:.1}"
        );
    }

    #[test]
    fn drift_trips_and_retrains_targeted_slot() {
        let mut b = bank(BankConfig::default());
        let key = b.classify(0, 1.0, &busy_metrics());
        // Train the slot at calibration-law power first.
        for i in 0..20 {
            b.observe(key, busy_metrics(), busy_watts(), t(1 + i));
        }
        assert_eq!(b.stats().drift_events, 0, "steady state must not trip");
        // The regime's physics change in place: +20 W sustained.
        let mut tripped = false;
        for i in 0..30 {
            let out = b.observe(key, busy_metrics(), busy_watts() + 20.0, t(100 + i));
            if let Some(ev) = out.drift {
                assert_eq!(ev.slot, key);
                assert!(ev.cusum_w >= b.config().drift.threshold_w);
                tripped = true;
                break;
            }
        }
        assert!(tripped, "sustained 20 W divergence must trip the CUSUM");
        assert!(b.stats().drift_events >= 1);
        assert_eq!(b.drift_events().len(), b.stats().drift_events as usize);
    }

    #[test]
    fn quarantine_engages_on_persistent_rejection_and_restores() {
        let mut cfg = BankConfig::default();
        // Make every refit rejectable: a condition limit of 1 fails all.
        cfg.refit_policy.max_condition = 1.0;
        cfg.drift.quarantine_after = 2;
        let mut b = bank(cfg);
        let key = b.classify(0, 1.0, &busy_metrics());
        let mut quarantined = false;
        for i in 0..200 {
            // Wild oscillation keeps the CUSUM tripping.
            let w = if i % 2 == 0 { 0.0 } else { 120.0 };
            let out = b.observe(key, busy_metrics(), w, t(1 + i));
            if out.quarantined {
                quarantined = true;
                break;
            }
        }
        assert!(quarantined, "persistent rejection must quarantine");
        assert!(b.is_quarantined(key));
        assert_eq!(b.stats().models_quarantined, 1);
        // Quarantined slot serves the fallback (initial model here: no
        // fit was ever accepted).
        let masked = PowerModel::mask_metrics(ModelKind::WithChipShare, busy_metrics());
        let served = b.current_model().active_power(&masked);
        assert!((served - busy_watts()).abs() < 1.0, "fallback must serve");
        // The fault clears and refits are acceptable again: the slot
        // restores on the next accepted retrain.
        let mut relaxed = b.config().clone();
        relaxed.refit_policy.max_condition = 1e10;
        let policy = relaxed.refit_policy;
        b.config = relaxed;
        if let Some(slot) = b.slots.get_mut(&key) {
            slot.recal.set_policy(policy);
            slot.recal.reset_online();
        }
        let mut restored = false;
        for i in 0..60 {
            let out = b.observe(key, busy_metrics(), busy_watts(), t(1000 + i));
            if out.restored {
                restored = true;
                break;
            }
        }
        assert!(restored, "accepted retrain must lift quarantine");
        assert!(!b.is_quarantined(key));
        assert_eq!(b.stats().models_restored, 1);
    }

    #[test]
    fn lru_cap_evicts_oldest_non_active_slot() {
        let cfg = BankConfig { max_slots: 2, ..BankConfig::default() };
        let mut b = bank(cfg);
        let k = |d: u8| RegimeKey { generation: 0, dvfs: d, mix: 0 };
        b.observe(k(20), busy_metrics(), busy_watts(), t(1));
        b.observe(k(19), busy_metrics(), busy_watts(), t(2));
        assert_eq!(b.slot_count(), 2);
        // Third regime evicts k(20)? No: k(20) is still active (hysteresis
        // hasn't switched), so the LRU *non-active* victim is k(19).
        b.observe(k(18), busy_metrics(), busy_watts(), t(3));
        assert_eq!(b.slot_count(), 2);
        assert_eq!(b.keys(), vec![k(18), k(20)]);
        assert_eq!(b.stats().slots_evicted, 1);
    }

    #[test]
    fn revisited_regime_is_served_instantly() {
        let mut b = bank(BankConfig::default());
        let fast = RegimeKey { generation: 0, dvfs: 20, mix: 0 };
        let slow = RegimeKey { generation: 0, dvfs: 15, mix: 0 };
        // Train both regimes with different laws.
        for i in 0..40 {
            b.observe(fast, busy_metrics(), busy_watts() + 6.0, t(1 + i));
        }
        for i in 0..40 {
            b.observe(slow, busy_metrics(), busy_watts() - 6.0, t(100 + i));
        }
        assert_eq!(b.active(), Some(slow));
        // Coming back to `fast`: after the hysteresis window the slot's
        // trained model serves immediately, no retraining needed.
        let before = b.stats();
        for i in 0..4 {
            b.observe(fast, busy_metrics(), busy_watts() + 6.0, t(200 + i));
        }
        assert_eq!(b.active(), Some(fast));
        let masked = PowerModel::mask_metrics(ModelKind::WithChipShare, busy_metrics());
        let served = b.current_model().active_power(&masked);
        let truth = busy_watts() + 6.0;
        assert!(
            (served - truth).abs() / truth < 0.05,
            "revisit must serve the trained model: {served:.1} vs {truth:.1}"
        );
        assert_eq!(b.stats().drift_events, before.drift_events, "no drift on revisit");
    }

    #[test]
    fn event_logs_stay_bounded() {
        let mut log = Vec::new();
        for i in 0..(EVENT_CAP + 10) {
            push_bounded(&mut log, i);
        }
        assert_eq!(log.len(), EVENT_CAP);
        assert_eq!(log[0], 10);
    }
}
