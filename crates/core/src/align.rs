//! Aligning delayed power measurements with model estimates (paper §3.2).
//!
//! Meter readings arrive with an unknown lag (reporting delay plus data
//! I/O latency). The facility knows only each reading's *arrival time*;
//! to use readings for recalibration it must discover which model interval
//! each one describes. Following the paper, we scan hypothetical delays,
//! correlate the measurement series against the model-estimate series at
//! each, and pick the delay with the highest cross-correlation (Eq. 4) —
//! a poorly calibrated model still tracks power *transitions* well, which
//! is all alignment needs.

use crate::error::FacilityError;
use crate::trace::TraceRing;
use analysis::stats::Summary;
use simkern::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Fewest retained readings an alignment scan will run on.
const MIN_READINGS: usize = 3;

/// One meter reading as the facility sees it: arrival instant and value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reading {
    /// When the reading became visible to software.
    pub arrived_at: SimTime,
    /// The reported average power in Watts.
    pub watts: f64,
}

/// The outcome of a delay scan.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignmentResult {
    /// The best-correlating measurement delay.
    pub delay: SimDuration,
    /// Correlation score at the best delay (Pearson-normalized, ≤ 1).
    pub score: f64,
    /// The full `(hypothetical delay, correlation)` curve, for Fig. 2.
    pub curve: Vec<(SimDuration, f64)>,
}

/// Estimates the measurement delay of one meter by cross-correlating its
/// recent readings against the model-estimate trace.
///
/// # Example
///
/// ```
/// use power_containers::{DelayEstimator, TraceRing, Reading};
/// use simkern::{SimDuration, SimTime};
///
/// let estimator = DelayEstimator::new(
///     SimDuration::from_millis(1),   // meter window length
///     SimDuration::from_millis(10),  // max delay scanned
///     SimDuration::from_millis(1),   // scan step
///     64,
/// );
/// assert_eq!(estimator.max_delay(), SimDuration::from_millis(10));
/// let _ring: TraceRing<f64> = TraceRing::new(SimDuration::from_millis(1), 128);
/// let _r = Reading { arrived_at: SimTime::from_millis(2), watts: 30.0 };
/// ```
#[derive(Debug, Clone)]
pub struct DelayEstimator {
    meter_period: SimDuration,
    max_delay: SimDuration,
    step: SimDuration,
    history: VecDeque<Reading>,
    history_cap: usize,
}

impl DelayEstimator {
    /// Creates an estimator for a meter with `meter_period`-long windows,
    /// scanning delays `0..=max_delay` in increments of `step`, keeping at
    /// most `history_cap` recent readings.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero or `history_cap` is zero.
    pub fn new(
        meter_period: SimDuration,
        max_delay: SimDuration,
        step: SimDuration,
        history_cap: usize,
    ) -> DelayEstimator {
        assert!(!step.is_zero(), "scan step must be positive");
        assert!(history_cap > 0, "history capacity must be positive");
        DelayEstimator {
            meter_period,
            max_delay,
            step,
            history: VecDeque::new(),
            history_cap,
        }
    }

    /// The largest delay this estimator scans.
    pub fn max_delay(&self) -> SimDuration {
        self.max_delay
    }

    /// Records an arrived reading.
    pub fn push(&mut self, reading: Reading) {
        self.history.push_back(reading);
        if self.history.len() > self.history_cap {
            self.history.pop_front();
        }
    }

    /// Number of readings currently retained.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// `true` when no readings are retained.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// The retained readings, oldest first.
    pub fn readings(&self) -> impl Iterator<Item = &Reading> {
        self.history.iter()
    }

    /// Scans hypothetical delays against `model` (a trace of modeled
    /// machine power) and returns the best alignment. `None` when fewer
    /// than three readings are available or no delay yields enough
    /// overlapping model history.
    ///
    /// When readings arrive on a uniform grid spaced exactly one scan
    /// step apart — the overwhelmingly common case for a periodic meter —
    /// the scan runs on a shared model-mean series with prefix sums and
    /// sliding cross products: `O(N + L)` trace queries and
    /// quasi-linear arithmetic instead of the reference scan's `O(N·L)`
    /// trace queries. Non-uniform arrivals, non-finite values, and
    /// unusual trace-coverage patterns fall back to
    /// [`DelayEstimator::estimate_reference`], which both paths must
    /// agree with (first delay wins score ties in either).
    pub fn estimate(&self, model: &TraceRing<f64>) -> Option<AlignmentResult> {
        if self.history.len() < MIN_READINGS {
            return None;
        }
        if let Some(result) = self.estimate_gridded(model) {
            return result;
        }
        self.estimate_reference(model)
    }

    /// Reference implementation of [`DelayEstimator::estimate`]: one
    /// independent Pearson correlation per scanned delay. Kept as the
    /// correctness oracle for the gridded fast path (and used by it as
    /// the fallback whenever the grid assumptions fail).
    pub fn estimate_reference(&self, model: &TraceRing<f64>) -> Option<AlignmentResult> {
        if self.history.len() < MIN_READINGS {
            return None;
        }
        let mut curve = Vec::new();
        let mut best: Option<(SimDuration, f64)> = None;
        let mut delay = SimDuration::ZERO;
        while delay <= self.max_delay {
            if let Some(score) = self.correlation_at(model, delay) {
                curve.push((delay, score));
                match best {
                    Some((_, b)) if b >= score => {}
                    _ => best = Some((delay, score)),
                }
            } else {
                curve.push((delay, 0.0));
            }
            delay += self.step;
        }
        best.map(|(delay, score)| AlignmentResult { delay, score, curve })
    }

    /// `true` when retained readings are finite and arrive on a uniform
    /// grid spaced exactly one scan step apart, so delay `k·step` pairs
    /// reading `i` (newest-first) with the model window `i + k` steps back.
    fn on_uniform_grid(&self) -> bool {
        if self.history.len() < MIN_READINGS {
            return false;
        }
        let mut prev: Option<SimTime> = None;
        for r in &self.history {
            if !r.watts.is_finite() {
                return false;
            }
            if let Some(p) = prev {
                if r.arrived_at <= p || r.arrived_at - p != self.step {
                    return false;
                }
            }
            prev = Some(r.arrived_at);
        }
        true
    }

    /// The gridded fast path. Returns `None` when its assumptions do not
    /// hold (non-uniform arrivals, non-finite samples, model coverage
    /// that is not one contiguous run) and the reference scan must be
    /// used; otherwise `Some(result)` with the same answer the reference
    /// scan would produce (scores agree to rounding, same tie-breaking).
    fn estimate_gridded(&self, model: &TraceRing<f64>) -> Option<Option<AlignmentResult>> {
        if !self.on_uniform_grid() {
            return None;
        }
        let n = self.history.len();
        // The delay grid, constructed exactly like the reference scan's.
        let mut delays = Vec::new();
        let mut d = SimDuration::ZERO;
        while d <= self.max_delay {
            delays.push(d);
            d += self.step;
        }
        let k_count = delays.len();
        // Shared model-mean series: m[j] is the model average over the
        // meter window ending j steps before the newest arrival. Reading
        // i (newest-first) at delay k·step pairs with m[i + k]; arrival
        // times are exact multiples of `step` apart, and SimTime
        // subtraction saturates identically walking the series or
        // per-reading, so each m[j] equals the reference scan's query.
        let newest = self.history.back().expect("nonempty history").arrived_at;
        let total = n + k_count - 1;
        let mut series: Vec<Option<f64>> = Vec::with_capacity(total);
        let mut end = newest;
        for _ in 0..total {
            series.push(model.mean_over_wall(end - self.meter_period, end));
            end = end - self.step;
        }
        // Coverage must be one contiguous run: windows slide monotonically
        // back in time, losing coverage only off the new end (not yet
        // written) or the old end (evicted). Holes mean something unusual;
        // let the reference scan handle them.
        let j_lo = series.iter().position(|v| v.is_some());
        let Some(j_lo) = j_lo else {
            // No delay has any model overlap: the reference scan would
            // find no eligible delay at all.
            return Some(None);
        };
        let j_hi = total - 1 - series.iter().rev().position(|v| v.is_some()).expect("some exists");
        let run = &series[j_lo..=j_hi];
        if run.iter().any(|v| v.is_none()) {
            return None;
        }
        let b_raw: Vec<f64> = run.iter().map(|v| v.expect("checked")).collect();
        if b_raw.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let mm = b_raw.len();
        let a_raw: Vec<f64> = self.history.iter().rev().map(|r| r.watts).collect();
        // Center by global means: per-window Pearson terms are invariant
        // under a constant shift, and centered prefix sums stay well
        // conditioned.
        let ga = a_raw.iter().sum::<f64>() / n as f64;
        let gb = b_raw.iter().sum::<f64>() / mm as f64;
        let a: Vec<f64> = a_raw.iter().map(|v| v - ga).collect();
        let b: Vec<f64> = b_raw.iter().map(|v| v - gb).collect();
        let mut pa = vec![0.0; n + 1];
        let mut paa = vec![0.0; n + 1];
        for i in 0..n {
            pa[i + 1] = pa[i] + a[i];
            paa[i + 1] = paa[i] + a[i] * a[i];
        }
        let mut pb = vec![0.0; mm + 1];
        let mut pbb = vec![0.0; mm + 1];
        for j in 0..mm {
            pb[j + 1] = pb[j] + b[j];
            pbb[j + 1] = pbb[j] + b[j] * b[j];
        }
        // Cross products in run-local coordinates: lag k pairs a[i] with
        // b[i + s] where s = k − j_lo may be negative (the newest readings
        // hypothesize windows ahead of the covered run).
        let fwd = if k_count > j_lo {
            analysis::xcorr::sliding_cross_products(&a, &b, k_count - 1 - j_lo)
        } else {
            Vec::new()
        };
        let bwd = if j_lo > 0 {
            analysis::xcorr::sliding_cross_products(&b, &a, j_lo)
        } else {
            Vec::new()
        };
        let mut curve = Vec::with_capacity(k_count);
        let mut best: Option<(SimDuration, f64)> = None;
        for (k, &delay) in delays.iter().enumerate() {
            let score = (|| {
                if k > j_hi {
                    return None;
                }
                let s = k as isize - j_lo as isize;
                let i0 = if s >= 0 { 0 } else { (-s) as usize };
                let i1 = (n - 1).min(j_hi - k);
                if i1 < i0 {
                    return None;
                }
                let nk = i1 - i0 + 1;
                if nk < MIN_READINGS {
                    return None;
                }
                let nf = nk as f64;
                let sum_a = pa[i1 + 1] - pa[i0];
                let ssq_a = paa[i1 + 1] - paa[i0];
                let j0 = (i0 as isize + s) as usize;
                let j1 = (i1 as isize + s) as usize;
                let sum_b = pb[j1 + 1] - pb[j0];
                let ssq_b = pbb[j1 + 1] - pbb[j0];
                let t = if s >= 0 { fwd[s as usize] } else { bwd[(-s) as usize] };
                let var_a = (ssq_a - sum_a * sum_a / nf).max(0.0);
                let var_b = (ssq_b - sum_b * sum_b / nf).max(0.0);
                let cov = t - sum_a * sum_b / nf;
                let denom = (var_a * var_b).sqrt();
                // Same eligibility as the reference scan, which compares
                // the product of *population* std-devs to 1e-12:
                // √(va/n)·√(vb/n) > 1e-12  ⇔  √(va·vb) > 1e-12·n.
                (denom > 1e-12 * nf).then(|| cov / denom)
            })();
            match score {
                Some(sc) => {
                    curve.push((delay, sc));
                    match best {
                        Some((_, b)) if b >= sc => {}
                        _ => best = Some((delay, sc)),
                    }
                }
                None => curve.push((delay, 0.0)),
            }
        }
        Some(best.map(|(delay, score)| AlignmentResult { delay, score, curve }))
    }

    /// Like [`DelayEstimator::estimate`], but validates the scan before
    /// the caller may act on it: the best correlation must reach
    /// `min_score`, and no *well-separated* delay may correlate within
    /// `ambiguity_margin` of the best — a near-tie between distant delays
    /// means the scan cannot tell them apart, which happens when meter
    /// dropouts punch holes in the reading stream or the workload is too
    /// periodic over the window.
    ///
    /// "Well-separated" is relative to the correlation curve's intrinsic
    /// width, not the scan step: each score correlates against model
    /// means over a full meter window, so the curve is smoothed over
    /// `meter_period` and delays within half a window of the best are
    /// the *same* peak, never competing hypotheses. (A 1 ms scan step
    /// against a 1 s wall-meter window would otherwise flag every scan
    /// as ambiguous against its immediate neighbours.) Competing peaks —
    /// workload-periodicity aliases, dropout artifacts — survive the
    /// window smoothing only when at least that far apart.
    ///
    /// # Errors
    ///
    /// [`FacilityError::InsufficientReadings`] when fewer than three
    /// readings are retained (or none overlap the model trace),
    /// [`FacilityError::AlignmentLowScore`] and
    /// [`FacilityError::AlignmentAmbiguous`] per the checks above. On
    /// any error the caller should keep its previous delay estimate.
    pub fn estimate_checked(
        &self,
        model: &TraceRing<f64>,
        min_score: f64,
        ambiguity_margin: f64,
    ) -> Result<AlignmentResult, FacilityError> {
        if self.history.len() < MIN_READINGS {
            return Err(FacilityError::InsufficientReadings {
                have: self.history.len(),
                need: MIN_READINGS,
            });
        }
        // `estimate` returning `None` past the length gate means no
        // scanned delay had three readings overlapping the model trace.
        let result = self.estimate(model).ok_or(FacilityError::InsufficientReadings {
            have: 0,
            need: MIN_READINGS,
        })?;
        if result.score < min_score {
            return Err(FacilityError::AlignmentLowScore {
                score: result.score,
                min: min_score,
            });
        }
        let separation = (self.step + self.step).max(self.meter_period / 2);
        let runner_up = result
            .curve
            .iter()
            .filter(|(d, _)| {
                let gap =
                    if *d > result.delay { *d - result.delay } else { result.delay - *d };
                gap >= separation
            })
            .max_by(|a, b| a.1.total_cmp(&b.1));
        if let Some(&(delay, score)) = runner_up {
            let margin = result.score - score;
            if margin < ambiguity_margin {
                return Err(FacilityError::AlignmentAmbiguous {
                    best: result.delay,
                    runner_up: delay,
                    margin,
                });
            }
        }
        Ok(result)
    }

    /// Pearson correlation between readings and the model averaged over
    /// each reading's hypothesized window `[arrival − delay − period,
    /// arrival − delay)`. `None` when fewer than three readings have model
    /// coverage or either side is constant.
    fn correlation_at(&self, model: &TraceRing<f64>, delay: SimDuration) -> Option<f64> {
        let mut pairs = Vec::with_capacity(self.history.len());
        for r in &self.history {
            let end = r.arrived_at - delay;
            let start = end - self.meter_period;
            if let Some(avg) = model.mean_over_wall(start, end) {
                pairs.push((r.watts, avg));
            }
        }
        if pairs.len() < 3 {
            return None;
        }
        let sa: Summary = pairs.iter().map(|p| p.0).collect();
        let sb: Summary = pairs.iter().map(|p| p.1).collect();
        let (ma, mb) = (sa.mean(), sb.mean());
        let mut cov = 0.0;
        for (a, b) in &pairs {
            cov += (a - ma) * (b - mb);
        }
        cov /= pairs.len() as f64;
        let denom = sa.std_dev() * sb.std_dev();
        (denom > 1e-12).then(|| cov / denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a model trace with a square-wave power signal and a reading
    /// stream observing it `true_delay` later.
    fn scenario(true_delay_ms: u64) -> (TraceRing<f64>, DelayEstimator) {
        let slot = SimDuration::from_millis(1);
        let mut model = TraceRing::new(slot, 4096);
        let mut est = DelayEstimator::new(
            SimDuration::from_millis(1),
            SimDuration::from_millis(20),
            SimDuration::from_millis(1),
            256,
        );
        for ms in 0..400u64 {
            // Square wave with a 25 ms period plus a slow ramp.
            let w = if (ms / 25) % 2 == 0 { 40.0 } else { 15.0 } + ms as f64 * 0.01;
            let t = SimTime::from_millis(ms) + SimDuration::from_micros(500);
            model.add(t, w, SimDuration::from_millis(1));
            // The meter reports the same window, arriving true_delay later.
            if ms >= 100 {
                est.push(Reading {
                    arrived_at: SimTime::from_millis(ms + 1 + true_delay_ms),
                    watts: w * 1.02, // calibration error does not hurt alignment
                });
            }
        }
        (model, est)
    }

    #[test]
    fn finds_short_delay() {
        let (model, est) = scenario(1);
        let r = est.estimate(&model).expect("alignment");
        assert_eq!(r.delay, SimDuration::from_millis(1), "score {}", r.score);
        assert!(r.score > 0.95);
    }

    #[test]
    fn finds_long_delay() {
        let (model, est) = scenario(12);
        let r = est.estimate(&model).expect("alignment");
        assert_eq!(r.delay, SimDuration::from_millis(12));
    }

    #[test]
    fn curve_has_one_point_per_step() {
        let (model, est) = scenario(3);
        let r = est.estimate(&model).expect("alignment");
        assert_eq!(r.curve.len(), 21);
        // Curve peak is at the returned delay.
        let peak = r
            .curve
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(peak.0, r.delay);
    }

    #[test]
    fn too_few_readings_yield_none() {
        let slot = SimDuration::from_millis(1);
        let model = TraceRing::new(slot, 64);
        let mut est = DelayEstimator::new(slot, slot, slot, 8);
        est.push(Reading { arrived_at: SimTime::from_millis(1), watts: 1.0 });
        est.push(Reading { arrived_at: SimTime::from_millis(2), watts: 2.0 });
        assert!(est.estimate(&model).is_none());
    }

    #[test]
    fn checked_estimate_accepts_a_clean_scan() {
        let (model, est) = scenario(5);
        let r = est.estimate_checked(&model, 0.4, 0.02).expect("clean scan");
        assert_eq!(r.delay, SimDuration::from_millis(5));
        assert_eq!(Some(r), est.estimate(&model));
    }

    #[test]
    fn checked_estimate_flags_too_few_readings() {
        let slot = SimDuration::from_millis(1);
        let model = TraceRing::new(slot, 64);
        let mut est = DelayEstimator::new(slot, slot, slot, 8);
        est.push(Reading { arrived_at: SimTime::from_millis(1), watts: 1.0 });
        let err = est.estimate_checked(&model, 0.4, 0.02).expect_err("one reading");
        assert!(
            matches!(err, FacilityError::InsufficientReadings { have: 1, need: 3 }),
            "got {err}"
        );
    }

    #[test]
    fn checked_estimate_flags_uncorrelated_readings() {
        let (model, mut est) = scenario(1);
        // Replace the meter stream with power values unrelated to the
        // model trace (as if every reading were corrupted).
        let arrivals: Vec<SimTime> = est.readings().map(|r| r.arrived_at).collect();
        est.history.clear();
        for (i, at) in arrivals.into_iter().enumerate() {
            let w = 20.0 + ((i * 7919) % 23) as f64; // pseudo-random, aperiodic
            est.push(Reading { arrived_at: at, watts: w });
        }
        let err = est.estimate_checked(&model, 0.4, 0.02).expect_err("garbage stream");
        assert!(matches!(err, FacilityError::AlignmentLowScore { .. }), "got {err}");
    }

    #[test]
    fn checked_estimate_flags_periodic_ambiguity() {
        // A pure 10 ms square wave with a 20 ms scan range: delays d and
        // d+10ms correlate identically, so the scan cannot pick one.
        let slot = SimDuration::from_millis(1);
        let mut model = TraceRing::new(slot, 4096);
        let mut est = DelayEstimator::new(
            SimDuration::from_millis(1),
            SimDuration::from_millis(20),
            SimDuration::from_millis(1),
            256,
        );
        for ms in 0..400u64 {
            let w = if (ms / 5) % 2 == 0 { 40.0 } else { 15.0 };
            let t = SimTime::from_millis(ms) + SimDuration::from_micros(500);
            model.add(t, w, SimDuration::from_millis(1));
            if ms >= 100 {
                est.push(Reading { arrived_at: SimTime::from_millis(ms + 3), watts: w });
            }
        }
        let err = est.estimate_checked(&model, 0.4, 0.02).expect_err("periodic tie");
        match err {
            FacilityError::AlignmentAmbiguous { best, runner_up, margin } => {
                let gap = if best > runner_up { best - runner_up } else { runner_up - best };
                assert_eq!(gap, SimDuration::from_millis(10), "aliased by one period");
                assert!(margin < 0.02, "near-tie, margin {margin}");
            }
            other => panic!("expected ambiguity, got {other}"),
        }
    }

    #[test]
    fn checked_estimate_accepts_fine_step_against_wall_meter() {
        // Wattsup geometry: a 1 s meter window scanned at 1 ms steps.
        // The correlation curve is smoothed over the window, so delays a
        // few steps from the best are near-ties by construction; they
        // must not be mistaken for competing peaks (only delays at least
        // half a window away can be). A 1.2 s true delay must survive
        // the ambiguity check.
        let slot = SimDuration::from_millis(100);
        let mut model = TraceRing::new(slot, 512);
        let mut est = DelayEstimator::new(
            SimDuration::from_secs(1),
            SimDuration::from_secs(2),
            SimDuration::from_millis(1),
            128,
        );
        for sec in 0..20u64 {
            // Aperiodic per-second power level.
            let w = 20.0 + ((sec * 7919) % 13) as f64;
            for tenth in 0..10u64 {
                let t = SimTime::from_millis(sec * 1000 + tenth * 100 + 50);
                model.add(t, w, slot);
            }
            // The meter reports each 1 s window 1.2 s after it closes.
            est.push(Reading {
                arrived_at: SimTime::from_millis((sec + 1) * 1000 + 1200),
                watts: w,
            });
        }
        let r = est.estimate_checked(&model, 0.4, 0.02).expect("unambiguous scan");
        assert_eq!(r.delay, SimDuration::from_millis(1200), "score {}", r.score);
        assert!(r.score > 0.95);
    }

    /// Asserts the gridded fast path and the per-delay reference scan
    /// agree: same best delay, same curve shape to rounding.
    fn assert_paths_agree(model: &TraceRing<f64>, est: &DelayEstimator) {
        let fast = est.estimate(model);
        let slow = est.estimate_reference(model);
        match (fast, slow) {
            (None, None) => {}
            (Some(f), Some(s)) => {
                assert_eq!(f.delay, s.delay, "best delay diverged");
                assert!((f.score - s.score).abs() < 1e-9, "{} vs {}", f.score, s.score);
                assert_eq!(f.curve.len(), s.curve.len());
                for ((fd, fs), (sd, ss)) in f.curve.iter().zip(&s.curve) {
                    assert_eq!(fd, sd);
                    assert!((fs - ss).abs() < 1e-9, "curve point {fd:?}: {fs} vs {ss}");
                }
            }
            (f, s) => panic!("paths disagree on availability: {f:?} vs {s:?}"),
        }
    }

    #[test]
    fn gridded_path_matches_reference_scan() {
        for d in [0u64, 1, 7, 19] {
            let (model, est) = scenario(d);
            assert_paths_agree(&model, &est);
        }
    }

    #[test]
    fn gridded_path_matches_reference_with_evicted_history() {
        // A small model ring: the oldest hypothesized windows have been
        // evicted, so the shared series is truncated at the old end.
        let slot = SimDuration::from_millis(1);
        let mut model = TraceRing::new(slot, 64);
        let mut est = DelayEstimator::new(
            SimDuration::from_millis(1),
            SimDuration::from_millis(20),
            SimDuration::from_millis(1),
            256,
        );
        for ms in 0..400u64 {
            let w = if (ms / 25) % 2 == 0 { 40.0 } else { 15.0 } + ms as f64 * 0.01;
            let t = SimTime::from_millis(ms) + SimDuration::from_micros(500);
            model.add(t, w, SimDuration::from_millis(1));
            if ms >= 100 {
                est.push(Reading {
                    arrived_at: SimTime::from_millis(ms + 1 + 6),
                    watts: w * 1.02,
                });
            }
        }
        let r = est.estimate(&model).expect("alignment despite eviction");
        assert_eq!(r.delay, SimDuration::from_millis(6));
        assert_paths_agree(&model, &est);
    }

    #[test]
    fn jittered_arrivals_fall_back_to_reference() {
        let (model, mut est) = scenario(4);
        // Perturb one arrival so spacing is no longer exactly one step:
        // the fast path must decline and the scan still answer.
        let mut readings: Vec<Reading> = est.readings().copied().collect();
        readings[10].arrived_at += SimDuration::from_micros(3);
        est.history.clear();
        for r in readings {
            est.push(r);
        }
        assert!(!est.on_uniform_grid());
        let fast = est.estimate(&model).expect("fallback result");
        let slow = est.estimate_reference(&model).expect("reference result");
        assert_eq!(fast, slow, "fallback must be the reference scan verbatim");
    }

    #[test]
    fn non_finite_reading_falls_back_to_reference() {
        let (model, mut est) = scenario(2);
        let mut readings: Vec<Reading> = est.readings().copied().collect();
        readings[5].watts = f64::NAN;
        est.history.clear();
        for r in readings {
            est.push(r);
        }
        assert!(!est.on_uniform_grid());
        // Behavior (whatever it is, NaN-for-NaN) must match the
        // reference scan bit-for-bit.
        let fast = est.estimate(&model).expect("fallback result");
        let slow = est.estimate_reference(&model).expect("reference result");
        assert_eq!(fast.delay, slow.delay);
        assert_eq!(fast.score.to_bits(), slow.score.to_bits());
        assert_eq!(fast.curve.len(), slow.curve.len());
        for ((fd, fs), (sd, ss)) in fast.curve.iter().zip(&slow.curve) {
            assert_eq!(fd, sd);
            assert_eq!(fs.to_bits(), ss.to_bits());
        }
    }

    #[test]
    fn history_is_bounded() {
        let slot = SimDuration::from_millis(1);
        let mut est = DelayEstimator::new(slot, slot, slot, 4);
        for i in 0..10 {
            est.push(Reading { arrived_at: SimTime::from_millis(i), watts: i as f64 });
        }
        assert_eq!(est.len(), 4);
        assert!(!est.is_empty());
    }
}
