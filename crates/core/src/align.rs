//! Aligning delayed power measurements with model estimates (paper §3.2).
//!
//! Meter readings arrive with an unknown lag (reporting delay plus data
//! I/O latency). The facility knows only each reading's *arrival time*;
//! to use readings for recalibration it must discover which model interval
//! each one describes. Following the paper, we scan hypothetical delays,
//! correlate the measurement series against the model-estimate series at
//! each, and pick the delay with the highest cross-correlation (Eq. 4) —
//! a poorly calibrated model still tracks power *transitions* well, which
//! is all alignment needs.

use crate::error::FacilityError;
use crate::trace::TraceRing;
use analysis::stats::Summary;
use simkern::{SimDuration, SimTime};
use std::collections::VecDeque;

/// Fewest retained readings an alignment scan will run on.
const MIN_READINGS: usize = 3;

/// One meter reading as the facility sees it: arrival instant and value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reading {
    /// When the reading became visible to software.
    pub arrived_at: SimTime,
    /// The reported average power in Watts.
    pub watts: f64,
}

/// The outcome of a delay scan.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignmentResult {
    /// The best-correlating measurement delay.
    pub delay: SimDuration,
    /// Correlation score at the best delay (Pearson-normalized, ≤ 1).
    pub score: f64,
    /// The full `(hypothetical delay, correlation)` curve, for Fig. 2.
    pub curve: Vec<(SimDuration, f64)>,
}

/// Estimates the measurement delay of one meter by cross-correlating its
/// recent readings against the model-estimate trace.
///
/// # Example
///
/// ```
/// use power_containers::{DelayEstimator, TraceRing, Reading};
/// use simkern::{SimDuration, SimTime};
///
/// let estimator = DelayEstimator::new(
///     SimDuration::from_millis(1),   // meter window length
///     SimDuration::from_millis(10),  // max delay scanned
///     SimDuration::from_millis(1),   // scan step
///     64,
/// );
/// assert_eq!(estimator.max_delay(), SimDuration::from_millis(10));
/// let _ring: TraceRing<f64> = TraceRing::new(SimDuration::from_millis(1), 128);
/// let _r = Reading { arrived_at: SimTime::from_millis(2), watts: 30.0 };
/// ```
#[derive(Debug, Clone)]
pub struct DelayEstimator {
    meter_period: SimDuration,
    max_delay: SimDuration,
    step: SimDuration,
    history: VecDeque<Reading>,
    history_cap: usize,
}

impl DelayEstimator {
    /// Creates an estimator for a meter with `meter_period`-long windows,
    /// scanning delays `0..=max_delay` in increments of `step`, keeping at
    /// most `history_cap` recent readings.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero or `history_cap` is zero.
    pub fn new(
        meter_period: SimDuration,
        max_delay: SimDuration,
        step: SimDuration,
        history_cap: usize,
    ) -> DelayEstimator {
        assert!(!step.is_zero(), "scan step must be positive");
        assert!(history_cap > 0, "history capacity must be positive");
        DelayEstimator {
            meter_period,
            max_delay,
            step,
            history: VecDeque::new(),
            history_cap,
        }
    }

    /// The largest delay this estimator scans.
    pub fn max_delay(&self) -> SimDuration {
        self.max_delay
    }

    /// Records an arrived reading.
    pub fn push(&mut self, reading: Reading) {
        self.history.push_back(reading);
        if self.history.len() > self.history_cap {
            self.history.pop_front();
        }
    }

    /// Number of readings currently retained.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// `true` when no readings are retained.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// The retained readings, oldest first.
    pub fn readings(&self) -> impl Iterator<Item = &Reading> {
        self.history.iter()
    }

    /// Scans hypothetical delays against `model` (a trace of modeled
    /// machine power) and returns the best alignment. `None` when fewer
    /// than three readings are available or no delay yields enough
    /// overlapping model history.
    pub fn estimate(&self, model: &TraceRing<f64>) -> Option<AlignmentResult> {
        if self.history.len() < 3 {
            return None;
        }
        let mut curve = Vec::new();
        let mut best: Option<(SimDuration, f64)> = None;
        let mut delay = SimDuration::ZERO;
        while delay <= self.max_delay {
            if let Some(score) = self.correlation_at(model, delay) {
                curve.push((delay, score));
                match best {
                    Some((_, b)) if b >= score => {}
                    _ => best = Some((delay, score)),
                }
            } else {
                curve.push((delay, 0.0));
            }
            delay += self.step;
        }
        best.map(|(delay, score)| AlignmentResult { delay, score, curve })
    }

    /// Like [`DelayEstimator::estimate`], but validates the scan before
    /// the caller may act on it: the best correlation must reach
    /// `min_score`, and no *well-separated* delay (more than one scan
    /// step away) may correlate within `ambiguity_margin` of the best —
    /// a near-tie between distant delays means the scan cannot tell them
    /// apart, which happens when meter dropouts punch holes in the
    /// reading stream or the workload is too periodic over the window.
    ///
    /// # Errors
    ///
    /// [`FacilityError::InsufficientReadings`] when fewer than three
    /// readings are retained (or none overlap the model trace),
    /// [`FacilityError::AlignmentLowScore`] and
    /// [`FacilityError::AlignmentAmbiguous`] per the checks above. On
    /// any error the caller should keep its previous delay estimate.
    pub fn estimate_checked(
        &self,
        model: &TraceRing<f64>,
        min_score: f64,
        ambiguity_margin: f64,
    ) -> Result<AlignmentResult, FacilityError> {
        if self.history.len() < MIN_READINGS {
            return Err(FacilityError::InsufficientReadings {
                have: self.history.len(),
                need: MIN_READINGS,
            });
        }
        // `estimate` returning `None` past the length gate means no
        // scanned delay had three readings overlapping the model trace.
        let result = self.estimate(model).ok_or(FacilityError::InsufficientReadings {
            have: 0,
            need: MIN_READINGS,
        })?;
        if result.score < min_score {
            return Err(FacilityError::AlignmentLowScore {
                score: result.score,
                min: min_score,
            });
        }
        let separation = self.step + self.step;
        let runner_up = result
            .curve
            .iter()
            .filter(|(d, _)| {
                let gap =
                    if *d > result.delay { *d - result.delay } else { result.delay - *d };
                gap >= separation
            })
            .max_by(|a, b| a.1.total_cmp(&b.1));
        if let Some(&(delay, score)) = runner_up {
            let margin = result.score - score;
            if margin < ambiguity_margin {
                return Err(FacilityError::AlignmentAmbiguous {
                    best: result.delay,
                    runner_up: delay,
                    margin,
                });
            }
        }
        Ok(result)
    }

    /// Pearson correlation between readings and the model averaged over
    /// each reading's hypothesized window `[arrival − delay − period,
    /// arrival − delay)`. `None` when fewer than three readings have model
    /// coverage or either side is constant.
    fn correlation_at(&self, model: &TraceRing<f64>, delay: SimDuration) -> Option<f64> {
        let mut pairs = Vec::with_capacity(self.history.len());
        for r in &self.history {
            let end = r.arrived_at - delay;
            let start = end - self.meter_period;
            if let Some(avg) = model.mean_over_wall(start, end) {
                pairs.push((r.watts, avg));
            }
        }
        if pairs.len() < 3 {
            return None;
        }
        let sa: Summary = pairs.iter().map(|p| p.0).collect();
        let sb: Summary = pairs.iter().map(|p| p.1).collect();
        let (ma, mb) = (sa.mean(), sb.mean());
        let mut cov = 0.0;
        for (a, b) in &pairs {
            cov += (a - ma) * (b - mb);
        }
        cov /= pairs.len() as f64;
        let denom = sa.std_dev() * sb.std_dev();
        (denom > 1e-12).then(|| cov / denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a model trace with a square-wave power signal and a reading
    /// stream observing it `true_delay` later.
    fn scenario(true_delay_ms: u64) -> (TraceRing<f64>, DelayEstimator) {
        let slot = SimDuration::from_millis(1);
        let mut model = TraceRing::new(slot, 4096);
        let mut est = DelayEstimator::new(
            SimDuration::from_millis(1),
            SimDuration::from_millis(20),
            SimDuration::from_millis(1),
            256,
        );
        for ms in 0..400u64 {
            // Square wave with a 25 ms period plus a slow ramp.
            let w = if (ms / 25) % 2 == 0 { 40.0 } else { 15.0 } + ms as f64 * 0.01;
            let t = SimTime::from_millis(ms) + SimDuration::from_micros(500);
            model.add(t, w, SimDuration::from_millis(1));
            // The meter reports the same window, arriving true_delay later.
            if ms >= 100 {
                est.push(Reading {
                    arrived_at: SimTime::from_millis(ms + 1 + true_delay_ms),
                    watts: w * 1.02, // calibration error does not hurt alignment
                });
            }
        }
        (model, est)
    }

    #[test]
    fn finds_short_delay() {
        let (model, est) = scenario(1);
        let r = est.estimate(&model).expect("alignment");
        assert_eq!(r.delay, SimDuration::from_millis(1), "score {}", r.score);
        assert!(r.score > 0.95);
    }

    #[test]
    fn finds_long_delay() {
        let (model, est) = scenario(12);
        let r = est.estimate(&model).expect("alignment");
        assert_eq!(r.delay, SimDuration::from_millis(12));
    }

    #[test]
    fn curve_has_one_point_per_step() {
        let (model, est) = scenario(3);
        let r = est.estimate(&model).expect("alignment");
        assert_eq!(r.curve.len(), 21);
        // Curve peak is at the returned delay.
        let peak = r
            .curve
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(peak.0, r.delay);
    }

    #[test]
    fn too_few_readings_yield_none() {
        let slot = SimDuration::from_millis(1);
        let model = TraceRing::new(slot, 64);
        let mut est = DelayEstimator::new(slot, slot, slot, 8);
        est.push(Reading { arrived_at: SimTime::from_millis(1), watts: 1.0 });
        est.push(Reading { arrived_at: SimTime::from_millis(2), watts: 2.0 });
        assert!(est.estimate(&model).is_none());
    }

    #[test]
    fn checked_estimate_accepts_a_clean_scan() {
        let (model, est) = scenario(5);
        let r = est.estimate_checked(&model, 0.4, 0.02).expect("clean scan");
        assert_eq!(r.delay, SimDuration::from_millis(5));
        assert_eq!(Some(r), est.estimate(&model));
    }

    #[test]
    fn checked_estimate_flags_too_few_readings() {
        let slot = SimDuration::from_millis(1);
        let model = TraceRing::new(slot, 64);
        let mut est = DelayEstimator::new(slot, slot, slot, 8);
        est.push(Reading { arrived_at: SimTime::from_millis(1), watts: 1.0 });
        let err = est.estimate_checked(&model, 0.4, 0.02).expect_err("one reading");
        assert!(
            matches!(err, FacilityError::InsufficientReadings { have: 1, need: 3 }),
            "got {err}"
        );
    }

    #[test]
    fn checked_estimate_flags_uncorrelated_readings() {
        let (model, mut est) = scenario(1);
        // Replace the meter stream with power values unrelated to the
        // model trace (as if every reading were corrupted).
        let arrivals: Vec<SimTime> = est.readings().map(|r| r.arrived_at).collect();
        est.history.clear();
        for (i, at) in arrivals.into_iter().enumerate() {
            let w = 20.0 + ((i * 7919) % 23) as f64; // pseudo-random, aperiodic
            est.push(Reading { arrived_at: at, watts: w });
        }
        let err = est.estimate_checked(&model, 0.4, 0.02).expect_err("garbage stream");
        assert!(matches!(err, FacilityError::AlignmentLowScore { .. }), "got {err}");
    }

    #[test]
    fn checked_estimate_flags_periodic_ambiguity() {
        // A pure 10 ms square wave with a 20 ms scan range: delays d and
        // d+10ms correlate identically, so the scan cannot pick one.
        let slot = SimDuration::from_millis(1);
        let mut model = TraceRing::new(slot, 4096);
        let mut est = DelayEstimator::new(
            SimDuration::from_millis(1),
            SimDuration::from_millis(20),
            SimDuration::from_millis(1),
            256,
        );
        for ms in 0..400u64 {
            let w = if (ms / 5) % 2 == 0 { 40.0 } else { 15.0 };
            let t = SimTime::from_millis(ms) + SimDuration::from_micros(500);
            model.add(t, w, SimDuration::from_millis(1));
            if ms >= 100 {
                est.push(Reading { arrived_at: SimTime::from_millis(ms + 3), watts: w });
            }
        }
        let err = est.estimate_checked(&model, 0.4, 0.02).expect_err("periodic tie");
        match err {
            FacilityError::AlignmentAmbiguous { best, runner_up, margin } => {
                let gap = if best > runner_up { best - runner_up } else { runner_up - best };
                assert_eq!(gap, SimDuration::from_millis(10), "aliased by one period");
                assert!(margin < 0.02, "near-tie, margin {margin}");
            }
            other => panic!("expected ambiguity, got {other}"),
        }
    }

    #[test]
    fn history_is_bounded() {
        let slot = SimDuration::from_millis(1);
        let mut est = DelayEstimator::new(slot, slot, slot, 4);
        for i in 0..10 {
            est.push(Reading { arrived_at: SimTime::from_millis(i), watts: i as f64 });
        }
        assert_eq!(est.len(), 4);
        assert!(!est.is_empty());
    }
}
