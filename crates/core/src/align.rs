//! Aligning delayed power measurements with model estimates (paper §3.2).
//!
//! Meter readings arrive with an unknown lag (reporting delay plus data
//! I/O latency). The facility knows only each reading's *arrival time*;
//! to use readings for recalibration it must discover which model interval
//! each one describes. Following the paper, we scan hypothetical delays,
//! correlate the measurement series against the model-estimate series at
//! each, and pick the delay with the highest cross-correlation (Eq. 4) —
//! a poorly calibrated model still tracks power *transitions* well, which
//! is all alignment needs.

use crate::trace::TraceRing;
use analysis::stats::Summary;
use simkern::{SimDuration, SimTime};
use std::collections::VecDeque;

/// One meter reading as the facility sees it: arrival instant and value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reading {
    /// When the reading became visible to software.
    pub arrived_at: SimTime,
    /// The reported average power in Watts.
    pub watts: f64,
}

/// The outcome of a delay scan.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignmentResult {
    /// The best-correlating measurement delay.
    pub delay: SimDuration,
    /// Correlation score at the best delay (Pearson-normalized, ≤ 1).
    pub score: f64,
    /// The full `(hypothetical delay, correlation)` curve, for Fig. 2.
    pub curve: Vec<(SimDuration, f64)>,
}

/// Estimates the measurement delay of one meter by cross-correlating its
/// recent readings against the model-estimate trace.
///
/// # Example
///
/// ```
/// use power_containers::{DelayEstimator, TraceRing, Reading};
/// use simkern::{SimDuration, SimTime};
///
/// let estimator = DelayEstimator::new(
///     SimDuration::from_millis(1),   // meter window length
///     SimDuration::from_millis(10),  // max delay scanned
///     SimDuration::from_millis(1),   // scan step
///     64,
/// );
/// assert_eq!(estimator.max_delay(), SimDuration::from_millis(10));
/// let _ring: TraceRing<f64> = TraceRing::new(SimDuration::from_millis(1), 128);
/// let _r = Reading { arrived_at: SimTime::from_millis(2), watts: 30.0 };
/// ```
#[derive(Debug, Clone)]
pub struct DelayEstimator {
    meter_period: SimDuration,
    max_delay: SimDuration,
    step: SimDuration,
    history: VecDeque<Reading>,
    history_cap: usize,
}

impl DelayEstimator {
    /// Creates an estimator for a meter with `meter_period`-long windows,
    /// scanning delays `0..=max_delay` in increments of `step`, keeping at
    /// most `history_cap` recent readings.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero or `history_cap` is zero.
    pub fn new(
        meter_period: SimDuration,
        max_delay: SimDuration,
        step: SimDuration,
        history_cap: usize,
    ) -> DelayEstimator {
        assert!(!step.is_zero(), "scan step must be positive");
        assert!(history_cap > 0, "history capacity must be positive");
        DelayEstimator {
            meter_period,
            max_delay,
            step,
            history: VecDeque::new(),
            history_cap,
        }
    }

    /// The largest delay this estimator scans.
    pub fn max_delay(&self) -> SimDuration {
        self.max_delay
    }

    /// Records an arrived reading.
    pub fn push(&mut self, reading: Reading) {
        self.history.push_back(reading);
        if self.history.len() > self.history_cap {
            self.history.pop_front();
        }
    }

    /// Number of readings currently retained.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// `true` when no readings are retained.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// The retained readings, oldest first.
    pub fn readings(&self) -> impl Iterator<Item = &Reading> {
        self.history.iter()
    }

    /// Scans hypothetical delays against `model` (a trace of modeled
    /// machine power) and returns the best alignment. `None` when fewer
    /// than three readings are available or no delay yields enough
    /// overlapping model history.
    pub fn estimate(&self, model: &TraceRing<f64>) -> Option<AlignmentResult> {
        if self.history.len() < 3 {
            return None;
        }
        let mut curve = Vec::new();
        let mut best: Option<(SimDuration, f64)> = None;
        let mut delay = SimDuration::ZERO;
        while delay <= self.max_delay {
            if let Some(score) = self.correlation_at(model, delay) {
                curve.push((delay, score));
                match best {
                    Some((_, b)) if b >= score => {}
                    _ => best = Some((delay, score)),
                }
            } else {
                curve.push((delay, 0.0));
            }
            delay += self.step;
        }
        best.map(|(delay, score)| AlignmentResult { delay, score, curve })
    }

    /// Pearson correlation between readings and the model averaged over
    /// each reading's hypothesized window `[arrival − delay − period,
    /// arrival − delay)`. `None` when fewer than three readings have model
    /// coverage or either side is constant.
    fn correlation_at(&self, model: &TraceRing<f64>, delay: SimDuration) -> Option<f64> {
        let mut pairs = Vec::with_capacity(self.history.len());
        for r in &self.history {
            let end = r.arrived_at - delay;
            let start = end - self.meter_period;
            if let Some(avg) = model.mean_over_wall(start, end) {
                pairs.push((r.watts, avg));
            }
        }
        if pairs.len() < 3 {
            return None;
        }
        let sa: Summary = pairs.iter().map(|p| p.0).collect();
        let sb: Summary = pairs.iter().map(|p| p.1).collect();
        let (ma, mb) = (sa.mean(), sb.mean());
        let mut cov = 0.0;
        for (a, b) in &pairs {
            cov += (a - ma) * (b - mb);
        }
        cov /= pairs.len() as f64;
        let denom = sa.std_dev() * sb.std_dev();
        (denom > 1e-12).then(|| cov / denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a model trace with a square-wave power signal and a reading
    /// stream observing it `true_delay` later.
    fn scenario(true_delay_ms: u64) -> (TraceRing<f64>, DelayEstimator) {
        let slot = SimDuration::from_millis(1);
        let mut model = TraceRing::new(slot, 4096);
        let mut est = DelayEstimator::new(
            SimDuration::from_millis(1),
            SimDuration::from_millis(20),
            SimDuration::from_millis(1),
            256,
        );
        for ms in 0..400u64 {
            // Square wave with a 25 ms period plus a slow ramp.
            let w = if (ms / 25) % 2 == 0 { 40.0 } else { 15.0 } + ms as f64 * 0.01;
            let t = SimTime::from_millis(ms) + SimDuration::from_micros(500);
            model.add(t, w, SimDuration::from_millis(1));
            // The meter reports the same window, arriving true_delay later.
            if ms >= 100 {
                est.push(Reading {
                    arrived_at: SimTime::from_millis(ms + 1 + true_delay_ms),
                    watts: w * 1.02, // calibration error does not hurt alignment
                });
            }
        }
        (model, est)
    }

    #[test]
    fn finds_short_delay() {
        let (model, est) = scenario(1);
        let r = est.estimate(&model).expect("alignment");
        assert_eq!(r.delay, SimDuration::from_millis(1), "score {}", r.score);
        assert!(r.score > 0.95);
    }

    #[test]
    fn finds_long_delay() {
        let (model, est) = scenario(12);
        let r = est.estimate(&model).expect("alignment");
        assert_eq!(r.delay, SimDuration::from_millis(12));
    }

    #[test]
    fn curve_has_one_point_per_step() {
        let (model, est) = scenario(3);
        let r = est.estimate(&model).expect("alignment");
        assert_eq!(r.curve.len(), 21);
        // Curve peak is at the returned delay.
        let peak = r
            .curve
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert_eq!(peak.0, r.delay);
    }

    #[test]
    fn too_few_readings_yield_none() {
        let slot = SimDuration::from_millis(1);
        let model = TraceRing::new(slot, 64);
        let mut est = DelayEstimator::new(slot, slot, slot, 8);
        est.push(Reading { arrived_at: SimTime::from_millis(1), watts: 1.0 });
        est.push(Reading { arrived_at: SimTime::from_millis(2), watts: 2.0 });
        assert!(est.estimate(&model).is_none());
    }

    #[test]
    fn history_is_bounded() {
        let slot = SimDuration::from_millis(1);
        let mut est = DelayEstimator::new(slot, slot, slot, 4);
        for i in 0..10 {
            est.push(Reading { arrived_at: SimTime::from_millis(i), watts: i as f64 });
        }
        assert_eq!(est.len(), 4);
        assert!(!est.is_empty());
    }
}
