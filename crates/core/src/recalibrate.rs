//! Online model recalibration (paper §3.2).
//!
//! Aligned measurement windows yield `(machine metrics, measured active
//! power)` pairs for the *production* workload. The recalibrator folds
//! these into the offline calibration's normal equations — "weighed
//! equally in the square error minimization target" — and refits the
//! coefficients by least-squares, correcting for the mismatch between
//! calibration microbenchmarks and unusually high-power production
//! behaviour (the Stress / power-virus case).

use crate::calibrate::CalibrationSet;
use crate::metrics::{MetricVector, FEATURES};
use crate::model::{ModelKind, PowerModel};
use analysis::linreg::{LeastSquares, SolveError};

/// Streams aligned online samples into a refit of the power model.
///
/// # Example
///
/// ```
/// use power_containers::{
///     CalibrationSample, CalibrationSet, MetricVector, ModelKind, Recalibrator,
/// };
///
/// let mut set = CalibrationSet::new(26.1);
/// for i in 1..=10 {
///     let u = i as f64 / 10.0;
///     set.push(CalibrationSample {
///         metrics: MetricVector { core: u, chipshare: 1.0, ..Default::default() },
///         active_watts: 8.0 * u + 5.6,
///     });
/// }
/// let mut r = Recalibrator::new(&set, ModelKind::WithChipShare);
/// // Production workload draws more power than calibration predicted:
/// for _ in 0..50 {
///     let m = MetricVector { core: 1.0, mem: 0.04, chipshare: 1.0, ..Default::default() };
///     r.add_online_sample(m, 22.0);
/// }
/// let model = r.refit().unwrap();
/// assert!(model.active_power(&MetricVector {
///     core: 1.0, mem: 0.04, chipshare: 1.0, ..Default::default()
/// }) > 18.0);
/// ```
#[derive(Debug, Clone)]
pub struct Recalibrator {
    offline: LeastSquares,
    online: LeastSquares,
    kind: ModelKind,
    idle_w: f64,
    online_samples: usize,
    samples_since_fit: usize,
}

impl Recalibrator {
    /// Creates a recalibrator seeded with the offline calibration set.
    pub fn new(offline: &CalibrationSet, kind: ModelKind) -> Recalibrator {
        Recalibrator {
            offline: offline.accumulator(kind),
            online: LeastSquares::new(FEATURES),
            kind,
            idle_w: offline.idle_w(),
            online_samples: 0,
            samples_since_fit: 0,
        }
    }

    /// Adds one aligned online observation: machine-level metrics over a
    /// measurement window and the measured *active* power for that window.
    pub fn add_online_sample(&mut self, metrics: MetricVector, active_watts: f64) {
        let m = PowerModel::mask_metrics(self.kind, metrics);
        self.online.add_sample(&m.as_array(), active_watts.max(0.0), 1.0);
        self.online_samples += 1;
        self.samples_since_fit += 1;
    }

    /// Number of online samples accumulated.
    pub fn online_samples(&self) -> usize {
        self.online_samples
    }

    /// Number of samples added since the last [`Recalibrator::refit`].
    pub fn samples_since_fit(&self) -> usize {
        self.samples_since_fit
    }

    /// Refits coefficients over offline + online samples, equally weighted.
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError`] if the combined system is unsolvable.
    pub fn refit(&mut self) -> Result<PowerModel, SolveError> {
        let mut combined = self.offline.clone();
        combined.merge(&self.online);
        let beta = combined.solve()?;
        let mut coeffs = [0.0; FEATURES];
        coeffs.copy_from_slice(&beta);
        self.samples_since_fit = 0;
        Ok(PowerModel::new(self.kind, self.idle_w, coeffs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::CalibrationSample;

    /// Calibration set from a linear law missing an interaction the
    /// production workload exhibits.
    fn offline_set() -> CalibrationSet {
        let mut set = CalibrationSet::new(26.1);
        for level in [0.25, 0.5, 0.75, 1.0f64] {
            for f in 0..6 {
                let mut a = [0.0; FEATURES];
                a[0] = level;
                a[f] = level;
                a[5] = 1.0;
                let truth = [8.0, 3.0, 1.5, 3.5, 2.0, 5.6, 0.0, 0.0];
                let watts: f64 = a.iter().zip(truth).map(|(x, c)| x * c).sum();
                set.push(CalibrationSample {
                    metrics: MetricVector::from_slice(&a),
                    active_watts: watts,
                });
            }
        }
        set
    }

    /// A "Stress"-like workload point whose true power exceeds the linear
    /// law the offline model was fit to (hidden co-activity term).
    fn stress_point() -> (MetricVector, f64) {
        let m = MetricVector {
            core: 1.0,
            ins: 3.4,
            float: 1.5,
            cache: 0.08,
            mem: 0.0425,
            chipshare: 1.0,
            disk: 0.0,
            net: 0.0,
        };
        // Linear part ≈ 8 + 10.2 + 2.25 + 0.28 + 0.085 + 5.6 = 26.4 W;
        // true power has +6 W of unmodeled interaction.
        (m, 32.4)
    }

    #[test]
    fn offline_model_underestimates_stress() {
        let set = offline_set();
        let model = set.fit(ModelKind::WithChipShare).unwrap();
        let (m, truth) = stress_point();
        let err = (model.active_power(&m) - truth).abs() / truth;
        assert!(err > 0.1, "offline model should be >10% off, got {err:.3}");
    }

    #[test]
    fn recalibration_fixes_stress_estimate() {
        let set = offline_set();
        let mut r = Recalibrator::new(&set, ModelKind::WithChipShare);
        let (m, truth) = stress_point();
        for _ in 0..200 {
            r.add_online_sample(m, truth);
        }
        let model = r.refit().unwrap();
        let err = (model.active_power(&m) - truth).abs() / truth;
        assert!(err < 0.03, "recalibrated error should be small, got {err:.3}");
    }

    #[test]
    fn refit_without_online_samples_matches_offline_fit() {
        let set = offline_set();
        let offline_model = set.fit(ModelKind::WithChipShare).unwrap();
        let mut r = Recalibrator::new(&set, ModelKind::WithChipShare);
        let refit = r.refit().unwrap();
        for (a, b) in offline_model.coefficients().iter().zip(refit.coefficients()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn sample_counters_track_fits() {
        let set = offline_set();
        let mut r = Recalibrator::new(&set, ModelKind::WithChipShare);
        let (m, w) = stress_point();
        r.add_online_sample(m, w);
        r.add_online_sample(m, w);
        assert_eq!(r.online_samples(), 2);
        assert_eq!(r.samples_since_fit(), 2);
        let _ = r.refit().unwrap();
        assert_eq!(r.samples_since_fit(), 0);
        assert_eq!(r.online_samples(), 2);
    }

    #[test]
    fn negative_measured_power_is_clamped() {
        let set = offline_set();
        let mut r = Recalibrator::new(&set, ModelKind::WithChipShare);
        let (m, _) = stress_point();
        r.add_online_sample(m, -5.0); // noisy meter minus idle can dip below 0
        let model = r.refit().unwrap();
        assert!(model.active_power(&m) >= 0.0);
    }
}
