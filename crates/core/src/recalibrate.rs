//! Online model recalibration (paper §3.2).
//!
//! Aligned measurement windows yield `(machine metrics, measured active
//! power)` pairs for the *production* workload. The recalibrator folds
//! these into the offline calibration's normal equations — "weighed
//! equally in the square error minimization target" — and refits the
//! coefficients by least-squares, correcting for the mismatch between
//! calibration microbenchmarks and unusually high-power production
//! behaviour (the Stress / power-virus case).

use crate::calibrate::CalibrationSet;
use crate::error::FacilityError;
use crate::metrics::{MetricVector, FEATURES};
use crate::model::{ModelKind, PowerModel};
use analysis::linreg::{LeastSquares, RollingLeastSquares};

/// Acceptance policy for online refits: a fit must be well-conditioned
/// and consistent with the recent sample window before the facility will
/// serve it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefitPolicy {
    /// Largest acceptable condition estimate (max/min pivot ratio) of
    /// the combined normal equations.
    pub max_condition: f64,
    /// A recent sample is an outlier when its residual deviates from the
    /// window's median residual by more than this many robust standard
    /// deviations.
    pub outlier_sigma: f64,
    /// Floor on the robust residual scale, in Watts, so a near-constant
    /// window doesn't flag measurement noise as outliers.
    pub outlier_scale_floor_w: f64,
    /// Largest tolerable outlier fraction in the screened window; above
    /// it the whole fit is rejected as contaminated.
    pub max_outlier_frac: f64,
    /// Consecutive rejected refits after which the last-good model is
    /// considered stale and the online accumulator should be rebuilt
    /// from scratch (the bounded-staleness guard).
    pub max_rejected_streak: u32,
}

impl Default for RefitPolicy {
    fn default() -> RefitPolicy {
        RefitPolicy {
            max_condition: 1e10,
            outlier_sigma: 4.0,
            outlier_scale_floor_w: 0.75,
            max_outlier_frac: 0.25,
            max_rejected_streak: 4,
        }
    }
}

/// Online sample window: refits and outlier screening both run over the
/// most recent `RECENT_CAP` samples. The window's normal equations are
/// maintained incrementally (rank-1 update per add, rank-1 downdate per
/// eviction), so a refit is an O(k³) solve regardless of uptime — the
/// paper's ~16 µs recalibration cost (§3.5) presumes exactly this kind of
/// running-accumulator structure, not a batch re-accumulation.
const RECENT_CAP: usize = 256;

/// Minimum screened-window size; smaller windows skip the outlier test.
const MIN_SCREEN: usize = 8;

/// Streams aligned online samples into a refit of the power model.
///
/// # Example
///
/// ```
/// use power_containers::{
///     CalibrationSample, CalibrationSet, MetricVector, ModelKind, Recalibrator,
/// };
///
/// let mut set = CalibrationSet::new(26.1);
/// for i in 1..=10 {
///     let u = i as f64 / 10.0;
///     set.push(CalibrationSample {
///         metrics: MetricVector { core: u, chipshare: 1.0, ..Default::default() },
///         active_watts: 8.0 * u + 5.6,
///     });
/// }
/// let mut r = Recalibrator::new(&set, ModelKind::WithChipShare);
/// // Production workload draws more power than calibration predicted:
/// for _ in 0..50 {
///     let m = MetricVector { core: 1.0, mem: 0.04, chipshare: 1.0, ..Default::default() };
///     r.add_online_sample(m, 22.0);
/// }
/// let model = r.refit().unwrap();
/// assert!(model.active_power(&MetricVector {
///     core: 1.0, mem: 0.04, chipshare: 1.0, ..Default::default()
/// }) > 18.0);
/// ```
#[derive(Debug, Clone)]
pub struct Recalibrator {
    offline: LeastSquares,
    /// Sliding window of recent online samples with incrementally
    /// maintained normal equations; serves both the refit accumulator
    /// and the outlier-screening sample set.
    window: RollingLeastSquares,
    kind: ModelKind,
    idle_w: f64,
    online_samples: usize,
    samples_since_fit: usize,
    last_good: Option<PowerModel>,
    rejected_streak: u32,
    policy: RefitPolicy,
}

impl Recalibrator {
    /// Creates a recalibrator seeded with the offline calibration set.
    pub fn new(offline: &CalibrationSet, kind: ModelKind) -> Recalibrator {
        Recalibrator {
            offline: offline.accumulator(kind),
            window: RollingLeastSquares::new(FEATURES, RECENT_CAP),
            kind,
            idle_w: offline.idle_w(),
            online_samples: 0,
            samples_since_fit: 0,
            last_good: None,
            rejected_streak: 0,
            policy: RefitPolicy::default(),
        }
    }

    /// Replaces the refit acceptance policy.
    pub fn set_policy(&mut self, policy: RefitPolicy) {
        self.policy = policy;
    }

    /// The active refit acceptance policy.
    pub fn policy(&self) -> &RefitPolicy {
        &self.policy
    }

    /// Adds one aligned online observation: machine-level metrics over a
    /// measurement window and the measured *active* power for that window.
    ///
    /// O(k²) for k model features: a rank-1 update of the window's normal
    /// equations, plus a rank-1 downdate of the evicted sample once the
    /// window is full. Samples older than the window no longer influence
    /// refits, which also bounds how long a transient glitch can poison
    /// the accumulator.
    pub fn add_online_sample(&mut self, metrics: MetricVector, active_watts: f64) {
        let m = PowerModel::mask_metrics(self.kind, metrics);
        let watts = active_watts.max(0.0);
        self.window.push(&m.as_array(), watts, 1.0);
        self.online_samples += 1;
        self.samples_since_fit += 1;
    }

    /// Number of online samples accumulated.
    pub fn online_samples(&self) -> usize {
        self.online_samples
    }

    /// Number of samples added since the last [`Recalibrator::refit`].
    pub fn samples_since_fit(&self) -> usize {
        self.samples_since_fit
    }

    /// The model produced by the most recent accepted refit, if any.
    pub fn last_good(&self) -> Option<&PowerModel> {
        self.last_good.as_ref()
    }

    /// Consecutive refit rejections since the last accepted fit.
    pub fn rejected_streak(&self) -> u32 {
        self.rejected_streak
    }

    /// `true` once the rejection streak exceeds the policy's staleness
    /// bound: whatever model the facility is serving is too old to keep
    /// trusting, and the online accumulator is likely poisoned.
    pub fn is_stale(&self) -> bool {
        self.rejected_streak > self.policy.max_rejected_streak
    }

    /// Drops all accumulated online state (accumulator, screen window,
    /// rejection streak), keeping the offline equations and the last
    /// good model. The staleness recovery path: contaminated samples
    /// live in the accumulator forever, so once refits keep failing the
    /// only way back is a clean window.
    ///
    /// Returns the number of window samples discarded, so the caller can
    /// surface the reset in traces instead of losing the window silently.
    pub fn reset_online(&mut self) -> usize {
        let discarded = self.window.len();
        self.window.clear();
        self.samples_since_fit = 0;
        self.rejected_streak = 0;
        discarded
    }

    /// Number of samples currently in the rolling online window.
    pub fn window_len(&self) -> usize {
        self.window.len()
    }

    /// Refits coefficients over the offline set plus the recent online
    /// window, equally weighted, then screens the candidate: ill-conditioned systems and
    /// fits that disagree with too much of the recent sample window are
    /// rejected, leaving the caller on its previous (last-good) model.
    ///
    /// # Errors
    ///
    /// [`FacilityError::Solve`] when the combined system is unsolvable,
    /// [`FacilityError::IllConditioned`] /
    /// [`FacilityError::OutlierContaminated`] when the candidate fails
    /// screening. Any error resets the between-refits sample counter and
    /// extends the rejection streak.
    pub fn refit(&mut self) -> Result<PowerModel, FacilityError> {
        self.samples_since_fit = 0;
        let mut combined = self.offline.clone();
        combined.merge(self.window.accumulator());
        let (beta, condition) = match combined.solve_conditioned() {
            Ok(ok) => ok,
            Err(e) => {
                self.rejected_streak += 1;
                return Err(e.into());
            }
        };
        if condition > self.policy.max_condition {
            self.rejected_streak += 1;
            return Err(FacilityError::IllConditioned {
                condition,
                limit: self.policy.max_condition,
            });
        }
        let mut coeffs = [0.0; FEATURES];
        coeffs.copy_from_slice(&beta);
        let model = PowerModel::new(self.kind, self.idle_w, coeffs);
        if let Err(e) = self.screen_outliers(&model) {
            self.rejected_streak += 1;
            return Err(e);
        }
        self.rejected_streak = 0;
        self.last_good = Some(model.clone());
        Ok(model)
    }

    /// Rejects `model` when too many recent samples sit far from it
    /// *and* those far samples are mutually inconsistent. Deviation is
    /// measured against the window's median residual, and a flagged set
    /// whose residuals are themselves tightly clustered is treated as a
    /// coherent workload mode the linear family cannot express (the
    /// legitimate recalibration case — least squares already balances
    /// it), while scattered deviations (glitched windows, corrupted
    /// readings) reject the fit.
    fn screen_outliers(&self, model: &PowerModel) -> Result<(), FacilityError> {
        if self.window.len() < MIN_SCREEN {
            return Ok(());
        }
        let residuals: Vec<f64> = self
            .window
            .iter()
            .map(|(feat, watts, _)| {
                watts - model.active_power(&MetricVector::from_slice(feat))
            })
            .collect();
        let median = median_of(&mut residuals.clone());
        let mut deviations: Vec<f64> =
            residuals.iter().map(|r| (r - median).abs()).collect();
        let mad = median_of(&mut deviations);
        // 1.4826 · MAD estimates σ for Gaussian residuals.
        let scale = (1.4826 * mad).max(self.policy.outlier_scale_floor_w);
        let threshold = self.policy.outlier_sigma * scale;
        let flagged: Vec<f64> = residuals
            .iter()
            .copied()
            .filter(|r| (r - median).abs() > threshold)
            .collect();
        let (outliers, screened) = (flagged.len(), residuals.len());
        if outliers as f64 <= self.policy.max_outlier_frac * screened as f64 {
            return Ok(());
        }
        // Coherence test on the flagged set: corruption scatters, a real
        // secondary operating point clusters.
        let flagged_median = median_of(&mut flagged.clone());
        let mut flagged_dev: Vec<f64> =
            flagged.iter().map(|r| (r - flagged_median).abs()).collect();
        let flagged_spread = 1.4826 * median_of(&mut flagged_dev);
        if flagged_spread <= threshold {
            return Ok(());
        }
        Err(FacilityError::OutlierContaminated { outliers, screened })
    }
}


/// Median by sorting in place (ties broken toward the lower middle).
fn median_of(values: &mut [f64]) -> f64 {
    values.sort_by(f64::total_cmp);
    values[values.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibrate::CalibrationSample;

    /// Calibration set from a linear law missing an interaction the
    /// production workload exhibits.
    fn offline_set() -> CalibrationSet {
        let mut set = CalibrationSet::new(26.1);
        for level in [0.25, 0.5, 0.75, 1.0f64] {
            for f in 0..6 {
                let mut a = [0.0; FEATURES];
                a[0] = level;
                a[f] = level;
                a[5] = 1.0;
                let truth = [8.0, 3.0, 1.5, 3.5, 2.0, 5.6, 0.0, 0.0];
                let watts: f64 = a.iter().zip(truth).map(|(x, c)| x * c).sum();
                set.push(CalibrationSample {
                    metrics: MetricVector::from_slice(&a),
                    active_watts: watts,
                });
            }
        }
        set
    }

    /// A "Stress"-like workload point whose true power exceeds the linear
    /// law the offline model was fit to (hidden co-activity term).
    fn stress_point() -> (MetricVector, f64) {
        let m = MetricVector {
            core: 1.0,
            ins: 3.4,
            float: 1.5,
            cache: 0.08,
            mem: 0.0425,
            chipshare: 1.0,
            disk: 0.0,
            net: 0.0,
        };
        // Linear part ≈ 8 + 10.2 + 2.25 + 0.28 + 0.085 + 5.6 = 26.4 W;
        // true power has +6 W of unmodeled interaction.
        (m, 32.4)
    }

    #[test]
    fn offline_model_underestimates_stress() {
        let set = offline_set();
        let model = set.fit(ModelKind::WithChipShare).unwrap();
        let (m, truth) = stress_point();
        let err = (model.active_power(&m) - truth).abs() / truth;
        assert!(err > 0.1, "offline model should be >10% off, got {err:.3}");
    }

    #[test]
    fn recalibration_fixes_stress_estimate() {
        let set = offline_set();
        let mut r = Recalibrator::new(&set, ModelKind::WithChipShare);
        let (m, truth) = stress_point();
        for _ in 0..200 {
            r.add_online_sample(m, truth);
        }
        let model = r.refit().unwrap();
        let err = (model.active_power(&m) - truth).abs() / truth;
        assert!(err < 0.03, "recalibrated error should be small, got {err:.3}");
    }

    #[test]
    fn refit_without_online_samples_matches_offline_fit() {
        let set = offline_set();
        let offline_model = set.fit(ModelKind::WithChipShare).unwrap();
        let mut r = Recalibrator::new(&set, ModelKind::WithChipShare);
        let refit = r.refit().unwrap();
        for (a, b) in offline_model.coefficients().iter().zip(refit.coefficients()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn sample_counters_track_fits() {
        let set = offline_set();
        let mut r = Recalibrator::new(&set, ModelKind::WithChipShare);
        let (m, w) = stress_point();
        r.add_online_sample(m, w);
        r.add_online_sample(m, w);
        assert_eq!(r.online_samples(), 2);
        assert_eq!(r.samples_since_fit(), 2);
        let _ = r.refit().unwrap();
        assert_eq!(r.samples_since_fit(), 0);
        assert_eq!(r.online_samples(), 2);
    }

    #[test]
    fn negative_measured_power_is_clamped() {
        let set = offline_set();
        let mut r = Recalibrator::new(&set, ModelKind::WithChipShare);
        let (m, _) = stress_point();
        r.add_online_sample(m, -5.0); // noisy meter minus idle can dip below 0
        let model = r.refit().unwrap();
        assert!(model.active_power(&m) >= 0.0);
    }

    #[test]
    fn contaminated_window_rejects_refit_but_keeps_last_good() {
        let set = offline_set();
        let mut r = Recalibrator::new(&set, ModelKind::WithChipShare);
        let (m, truth) = stress_point();
        for _ in 0..100 {
            r.add_online_sample(m, truth);
        }
        let good = r.refit().expect("clean refit accepted");
        assert!(r.last_good().is_some());
        assert_eq!(r.rejected_streak(), 0);
        // A burst of corrupted readings (glitched windows) lands: wild
        // power values scattered around the same operating point.
        for i in 0..60 {
            let watts = if i % 2 == 0 { 0.0 } else { 200.0 };
            r.add_online_sample(m, watts);
        }
        let err = r.refit().expect_err("contaminated refit must be rejected");
        assert!(
            matches!(err, FacilityError::OutlierContaminated { .. }),
            "unexpected error {err}"
        );
        assert_eq!(r.rejected_streak(), 1);
        assert_eq!(r.samples_since_fit(), 0, "rejection still resets the batch");
        // The last good model is untouched by the rejected candidate.
        let kept = r.last_good().expect("kept");
        assert_eq!(kept.coefficients(), good.coefficients());
    }

    #[test]
    fn coherent_secondary_mode_is_not_contamination() {
        // A workload alternating between two operating points, one of
        // which carries unmodeled power the linear family can't fit.
        // Least squares balances the two; the screen must accept the fit
        // even though the minority mode's residuals exceed the threshold.
        let set = offline_set();
        let mut r = Recalibrator::new(&set, ModelKind::WithChipShare);
        let (m, truth) = stress_point();
        let quiet = MetricVector { core: 0.3, ins: 0.5, chipshare: 1.0, ..Default::default() };
        let quiet_watts = 0.3 * 8.0 + 0.5 * 3.0 + 5.6;
        for _ in 0..100 {
            r.add_online_sample(quiet, quiet_watts);
        }
        for _ in 0..40 {
            r.add_online_sample(m, truth + 30.0); // +30 W hidden interaction
        }
        r.refit().expect("a tight secondary mode is legitimate workload");
        assert_eq!(r.rejected_streak(), 0);
    }

    #[test]
    fn condition_limit_rejects_fit() {
        let set = offline_set();
        let mut r = Recalibrator::new(&set, ModelKind::WithChipShare);
        r.set_policy(RefitPolicy { max_condition: 1.0, ..RefitPolicy::default() });
        let (m, truth) = stress_point();
        for _ in 0..20 {
            r.add_online_sample(m, truth);
        }
        let err = r.refit().expect_err("must exceed a condition limit of 1");
        assert!(matches!(err, FacilityError::IllConditioned { .. }), "got {err}");
        assert!(r.last_good().is_none());
    }

    #[test]
    fn rejection_streak_drives_staleness_and_reset_recovers() {
        let set = offline_set();
        let mut r = Recalibrator::new(&set, ModelKind::WithChipShare);
        r.set_policy(RefitPolicy { max_rejected_streak: 2, ..RefitPolicy::default() });
        let (m, truth) = stress_point();
        // Poison a third of the window so every refit is rejected as
        // contaminated (the MAD screen needs a clean majority).
        for _ in 0..100 {
            r.add_online_sample(m, truth);
        }
        for i in 0..50 {
            r.add_online_sample(m, if i % 2 == 0 { 0.0 } else { 200.0 });
        }
        for _ in 0..3 {
            let _ = r.refit().expect_err("poisoned accumulator");
        }
        assert!(r.is_stale(), "streak of 3 > bound of 2");
        // Bounded-staleness recovery: rebuild from a clean window. The
        // discard count reports the whole poisoned window.
        let discarded = r.reset_online();
        assert_eq!(discarded, 150.min(super::RECENT_CAP));
        assert_eq!(r.window_len(), 0);
        assert!(!r.is_stale());
        assert_eq!(r.samples_since_fit(), 0);
        for _ in 0..50 {
            r.add_online_sample(m, truth);
        }
        let model = r.refit().expect("clean window fits again");
        let err = (model.active_power(&m) - truth).abs() / truth;
        assert!(err < 0.05, "recovered fit error {err:.3}");
        assert_eq!(r.rejected_streak(), 0);
    }
}
