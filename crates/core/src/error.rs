//! Typed errors for the facility's degradable paths.
//!
//! The measurement/attribution pipeline runs against faulty hardware:
//! meters drop windows, counters glitch, alignment goes ambiguous, and
//! refits turn ill-conditioned. Every recoverable failure is a
//! [`FacilityError`]; the facility catches them, counts them in
//! [`crate::DegradeStats`], and falls back to the last known-good state
//! instead of panicking.

use analysis::linreg::SolveError;
use simkern::SimDuration;
use std::fmt;

/// A recoverable failure inside the power-container facility.
#[derive(Debug, Clone, PartialEq)]
pub enum FacilityError {
    /// The `Recalibrated` approach was requested without an offline
    /// calibration set.
    CalibrationMissing,
    /// The `Recalibrated` approach was requested without naming a meter.
    MeterMissing,
    /// The combined offline+online system cannot be solved.
    Solve(SolveError),
    /// The refit's normal equations were solvable but numerically
    /// near-degenerate.
    IllConditioned {
        /// Estimated condition (max/min pivot ratio).
        condition: f64,
        /// The policy limit that was exceeded.
        limit: f64,
    },
    /// Too many recent online samples disagree with the refit — the
    /// window is contaminated (e.g. by counter glitches or corrupted
    /// meter readings) and the fit cannot be trusted.
    OutlierContaminated {
        /// Samples flagged as outliers.
        outliers: usize,
        /// Samples screened.
        screened: usize,
    },
    /// Too few meter readings to attempt an alignment scan.
    InsufficientReadings {
        /// Readings available.
        have: usize,
        /// Readings required.
        need: usize,
    },
    /// The alignment scan's best correlation is too weak to act on.
    AlignmentLowScore {
        /// Best correlation found.
        score: f64,
        /// Minimum acceptable correlation.
        min: f64,
    },
    /// Two well-separated delays correlate almost equally well — the
    /// scan cannot distinguish them (typically because meter dropouts
    /// punched holes in the reading stream).
    AlignmentAmbiguous {
        /// The best-correlating delay.
        best: SimDuration,
        /// The competing delay.
        runner_up: SimDuration,
        /// Correlation margin between them.
        margin: f64,
    },
    /// A sampled counter delta was physically impossible (negative, or
    /// event rates beyond what the core can retire) — a glitch or wrap
    /// corrupted the interval.
    CounterAnomaly {
        /// The affected core index.
        core: usize,
    },
}

impl FacilityError {
    /// A stable machine-readable tag for this error variant, used as the
    /// `kind` field of degradation telemetry events (the trace schema
    /// golden file pins these strings).
    pub fn kind(&self) -> &'static str {
        match self {
            FacilityError::CalibrationMissing => "calibration_missing",
            FacilityError::MeterMissing => "meter_missing",
            FacilityError::Solve(_) => "solve",
            FacilityError::IllConditioned { .. } => "ill_conditioned",
            FacilityError::OutlierContaminated { .. } => "outlier_contaminated",
            FacilityError::InsufficientReadings { .. } => "insufficient_readings",
            FacilityError::AlignmentLowScore { .. } => "alignment_low_score",
            FacilityError::AlignmentAmbiguous { .. } => "alignment_ambiguous",
            FacilityError::CounterAnomaly { .. } => "counter_anomaly",
        }
    }
}

impl fmt::Display for FacilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FacilityError::CalibrationMissing => {
                write!(f, "Recalibrated approach requires the offline calibration set")
            }
            FacilityError::MeterMissing => {
                write!(f, "Recalibrated approach requires a recalibration meter")
            }
            FacilityError::Solve(e) => write!(f, "refit failed: {e}"),
            FacilityError::IllConditioned { condition, limit } => write!(
                f,
                "refit rejected: condition estimate {condition:.3e} exceeds {limit:.3e}"
            ),
            FacilityError::OutlierContaminated { outliers, screened } => write!(
                f,
                "refit rejected: {outliers}/{screened} recent samples are outliers"
            ),
            FacilityError::InsufficientReadings { have, need } => {
                write!(f, "alignment needs {need} readings, have {have}")
            }
            FacilityError::AlignmentLowScore { score, min } => {
                write!(f, "alignment rejected: best correlation {score:.3} below {min:.3}")
            }
            FacilityError::AlignmentAmbiguous { best, runner_up, margin } => write!(
                f,
                "alignment ambiguous: {best} vs {runner_up} within {margin:.3} correlation"
            ),
            FacilityError::CounterAnomaly { core } => {
                write!(f, "impossible counter delta on core {core}")
            }
        }
    }
}

impl std::error::Error for FacilityError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FacilityError::Solve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SolveError> for FacilityError {
    fn from(e: SolveError) -> FacilityError {
        FacilityError::Solve(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let cases: Vec<(FacilityError, &str)> = vec![
            (FacilityError::CalibrationMissing, "calibration"),
            (FacilityError::MeterMissing, "meter"),
            (FacilityError::Solve(SolveError::Singular), "singular"),
            (FacilityError::IllConditioned { condition: 1e12, limit: 1e10 }, "condition"),
            (
                FacilityError::OutlierContaminated { outliers: 5, screened: 10 },
                "5/10",
            ),
            (FacilityError::InsufficientReadings { have: 1, need: 3 }, "readings"),
            (FacilityError::AlignmentLowScore { score: 0.1, min: 0.4 }, "correlation"),
            (
                FacilityError::AlignmentAmbiguous {
                    best: SimDuration::from_millis(1),
                    runner_up: SimDuration::from_millis(9),
                    margin: 0.01,
                },
                "ambiguous",
            ),
            (FacilityError::CounterAnomaly { core: 2 }, "core 2"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e} missing {needle}");
            assert!(!e.kind().is_empty());
            assert!(e.kind().chars().all(|c| c.is_ascii_lowercase() || c == '_'));
        }
    }

    #[test]
    fn solve_error_converts_and_chains() {
        let e: FacilityError = SolveError::Singular.into();
        assert_eq!(e, FacilityError::Solve(SolveError::Singular));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&FacilityError::MeterMissing).is_none());
    }
}
