//! Time-sliced history rings for model estimates and metrics.
//!
//! Measurement alignment (§3.2) compares a *series* of model estimates
//! against delayed meter readings, and recalibration needs the metric
//! vector that was live during each (re-aligned) measurement window. Both
//! need a bounded history of time-integrated values on a fixed grid;
//! [`TraceRing`] provides it.
//!
//! Interval queries are the alignment scan's inner loop, so the ring keeps
//! a lazily-maintained prefix-sum cursor over its slots: an interval
//! integral is two partial edge slots plus one prefix-sum difference,
//! `O(1)` amortized, instead of a walk over every covered slot.

use simkern::{SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::ops::{AddAssign, Mul};

/// A bounded ring of per-slot time integrals on a fixed time grid.
///
/// `add(t, value, dt)` accumulates `value · dt` into the slot containing
/// `t`; queries return integrals (and covered seconds) over arbitrary
/// intervals, approximating partial slots by linear fraction.
///
/// # Example
///
/// ```
/// use power_containers::TraceRing;
/// use simkern::{SimDuration, SimTime};
///
/// let mut ring: TraceRing<f64> = TraceRing::new(SimDuration::from_millis(1), 100);
/// ring.add(SimTime::from_micros(500), 40.0, SimDuration::from_millis(1));
/// let (integral, secs) = ring.integral_between(SimTime::ZERO, SimTime::from_millis(1));
/// assert!((integral / secs - 40.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct TraceRing<T> {
    slot: SimDuration,
    capacity: usize,
    /// Index of the first retained slot.
    base: u64,
    values: VecDeque<(T, f64)>,
    /// Prefix-sum cursor, rebuilt lazily after out-of-order writes.
    cursor: RefCell<Cursor<T>>,
}

/// Cached cumulative sums over the retained slots.
///
/// `cum[i]` is `anchor + Σ values[0..=i]`; only entries `0..cum.len()` are
/// valid (writes truncate the suffix they dirty). `anchor` carries the
/// total of evicted slots so entries never need rewriting on eviction:
/// window sums are differences of `cum` entries, which cancel it.
#[derive(Debug, Clone)]
struct Cursor<T> {
    cum: VecDeque<(T, f64)>,
    anchor: (T, f64),
}

impl<T: Default + Copy + AddAssign + Mul<f64, Output = T>> TraceRing<T> {
    /// Creates a ring of `capacity` slots of length `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is zero or `capacity` is zero.
    pub fn new(slot: SimDuration, capacity: usize) -> TraceRing<T> {
        assert!(!slot.is_zero(), "slot length must be positive");
        assert!(capacity > 0, "capacity must be positive");
        TraceRing {
            slot,
            capacity,
            base: 0,
            values: VecDeque::new(),
            cursor: RefCell::new(Cursor { cum: VecDeque::new(), anchor: (T::default(), 0.0) }),
        }
    }

    /// The slot length.
    pub fn slot(&self) -> SimDuration {
        self.slot
    }

    fn slot_of(&self, t: SimTime) -> u64 {
        t.as_nanos() / self.slot.as_nanos()
    }

    /// Accumulates `value · dt` into the slot containing `t` (typically
    /// the *end* of the sampled interval; sampling periods are much
    /// shorter than slots, so the approximation is tight).
    pub fn add(&mut self, t: SimTime, value: T, dt: SimDuration) {
        let idx = self.slot_of(t.saturating_sub_for_slot(self.slot));
        let cursor = self.cursor.get_mut();
        // Grow forward to include idx.
        if self.values.is_empty() {
            self.base = idx;
            self.values.push_back((T::default(), 0.0));
        }
        while self.base + (self.values.len() as u64) <= idx {
            self.values.push_back((T::default(), 0.0));
            if self.values.len() > self.capacity {
                self.values.pop_front();
                self.base += 1;
                // Roll the evicted slot's total into the anchor so the
                // remaining prefix sums stay valid untouched.
                if let Some(front) = cursor.cum.pop_front() {
                    cursor.anchor = front;
                }
            }
        }
        if idx < self.base {
            return; // too old; history already evicted
        }
        let off = (idx - self.base) as usize;
        let secs = dt.as_secs_f64();
        let entry = &mut self.values[off];
        entry.0 += value * secs;
        entry.1 += secs;
        // The common case is a write to the newest slot; folding it into
        // the cursor keeps queries O(1) without ever rebuilding.
        if off + 1 == cursor.cum.len() {
            let back = cursor.cum.back_mut().expect("non-empty cum");
            back.0 += value * secs;
            back.1 += secs;
        } else {
            cursor.cum.truncate(off.min(cursor.cum.len()));
        }
    }

    /// Extends the cursor so slots `0..upto` have valid prefix sums.
    fn ensure_cum(&self, upto: usize) {
        let mut cursor = self.cursor.borrow_mut();
        if cursor.cum.len() >= upto {
            return;
        }
        if cursor.cum.is_empty() {
            cursor.anchor = (T::default(), 0.0);
        }
        let mut total = *cursor.cum.back().unwrap_or(&cursor.anchor);
        for i in cursor.cum.len()..upto {
            let (v, s) = self.values[i];
            total.0 += v;
            total.1 += s;
            cursor.cum.push_back(total);
        }
    }

    /// `cum[hi] − cum[lo]`: the exact sum of slots `lo+1..=hi`.
    fn cum_diff(&self, lo: usize, hi: usize) -> (T, f64) {
        let cursor = self.cursor.borrow();
        let (hv, hs) = cursor.cum[hi];
        let (lv, ls) = cursor.cum[lo];
        let mut v = hv;
        v += lv * -1.0;
        (v, hs - ls)
    }

    /// The integral and covered seconds over `[t0, t1)`, weighting partial
    /// slots by overlap fraction. Returns zeros when the interval predates
    /// retained history.
    pub fn integral_between(&self, t0: SimTime, t1: SimTime) -> (T, f64) {
        let mut total = T::default();
        let mut secs = 0.0;
        if t1 <= t0 || self.values.is_empty() {
            return (total, secs);
        }
        let slot_ns = self.slot.as_nanos();
        // Clamp to retained slots up front: queries anchored at old times
        // must not walk (or build sums for) evicted history.
        let first = self.slot_of(t0).max(self.base);
        let last = self
            .slot_of(t1 - SimDuration::from_nanos(1))
            .min(self.base + self.values.len() as u64 - 1);
        if first > last {
            return (total, secs);
        }
        let frac_of = |idx: u64| {
            let slot_start = idx * slot_ns;
            let slot_end = slot_start + slot_ns;
            let lo = slot_start.max(t0.as_nanos());
            let hi = slot_end.min(t1.as_nanos());
            (hi.saturating_sub(lo)) as f64 / slot_ns as f64
        };
        let off_first = (first - self.base) as usize;
        let off_last = (last - self.base) as usize;
        if off_first == off_last {
            let (v, s) = self.values[off_first];
            let frac = frac_of(first);
            total += v * frac;
            secs += s * frac;
            return (total, secs);
        }
        // First and last slots may be partial; everything between them is
        // covered in full and comes from the prefix-sum cursor.
        let (v, s) = self.values[off_first];
        let frac = frac_of(first);
        total += v * frac;
        secs += s * frac;
        if off_last - off_first >= 2 {
            self.ensure_cum(off_last);
            let (mv, ms) = self.cum_diff(off_first, off_last - 1);
            total += mv;
            secs += ms;
        }
        let (v, s) = self.values[off_last];
        let frac = frac_of(last);
        total += v * frac;
        secs += s * frac;
        (total, secs)
    }

    /// Average value over `[t0, t1)`, or `None` when (almost) no time was
    /// recorded there.
    pub fn average_between(&self, t0: SimTime, t1: SimTime) -> Option<T> {
        let (integral, secs) = self.integral_between(t0, t1);
        (secs > 1e-9).then(|| integral * (1.0 / secs))
    }

    /// The integral over `[t0, t1)` divided by the *wall-clock* length of
    /// the interval, treating unrecorded slots as zero. This is the right
    /// normalization for machine-level quantities built from per-core
    /// contributions (each core adds its own `value·dt`; idle cores add
    /// nothing). Returns `None` when the interval lies entirely outside
    /// retained history.
    pub fn mean_over_wall(&self, t0: SimTime, t1: SimTime) -> Option<T> {
        if t1 <= t0 || self.values.is_empty() {
            return None;
        }
        let last_retained = self.base + self.values.len() as u64;
        let first = self.slot_of(t0);
        if first + 1 < self.base + 1 || first >= last_retained {
            // Either evicted history or entirely in the future.
            if self.slot_of(t1 - SimDuration::from_nanos(1)) < self.base {
                return None;
            }
        }
        let (integral, _) = self.integral_between(t0, t1);
        let wall = t1.duration_since(t0).as_secs_f64();
        Some(integral * (1.0 / wall))
    }

    /// The most recent `n` completed slot averages ending at the slot
    /// containing `now` (exclusive), most recent first. Slots with no
    /// recorded time yield `T::default()`.
    pub fn recent_series(&self, now: SimTime, n: usize) -> Vec<T> {
        let current = self.slot_of(now);
        let mut out = Vec::with_capacity(n);
        for k in 1..=n as u64 {
            if current < k {
                break;
            }
            let idx = current - k;
            let v = if idx >= self.base {
                self.values
                    .get((idx - self.base) as usize)
                    .map(|&(v, s)| if s > 1e-12 { v * (1.0 / s) } else { T::default() })
                    .unwrap_or_default()
            } else {
                T::default()
            };
            out.push(v);
        }
        out
    }
}

/// Helper so `add(t, ...)` attributes to the slot the interval *ended* in
/// rather than spilling into the next slot when `t` lands exactly on a
/// boundary.
trait SlotAnchor {
    fn saturating_sub_for_slot(self, slot: SimDuration) -> Self;
}

impl SlotAnchor for SimTime {
    fn saturating_sub_for_slot(self, slot: SimDuration) -> SimTime {
        let _ = slot;
        if self.as_nanos() == 0 {
            self
        } else {
            self - SimDuration::from_nanos(1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> TraceRing<f64> {
        TraceRing::new(SimDuration::from_millis(1), 16)
    }

    #[test]
    fn single_slot_average() {
        let mut r = ring();
        r.add(SimTime::from_micros(300), 10.0, SimDuration::from_micros(300));
        r.add(SimTime::from_micros(900), 30.0, SimDuration::from_micros(600));
        let avg = r.average_between(SimTime::ZERO, SimTime::from_millis(1)).unwrap();
        // (10*0.3 + 30*0.6) / 0.9
        assert!((avg - 23.333333).abs() < 1e-3, "avg {avg}");
    }

    #[test]
    fn boundary_sample_lands_in_ending_slot() {
        let mut r = ring();
        r.add(SimTime::from_millis(1), 42.0, SimDuration::from_millis(1));
        let avg = r.average_between(SimTime::ZERO, SimTime::from_millis(1)).unwrap();
        assert!((avg - 42.0).abs() < 1e-9);
        assert!(r.average_between(SimTime::from_millis(1), SimTime::from_millis(2)).is_none());
    }

    #[test]
    fn multi_slot_query_sums_partials() {
        let mut r = ring();
        r.add(SimTime::from_micros(500), 10.0, SimDuration::from_millis(1));
        r.add(SimTime::from_micros(1500), 20.0, SimDuration::from_millis(1));
        // Query covering second half of slot 0 and first half of slot 1.
        let (integral, secs) =
            r.integral_between(SimTime::from_micros(500), SimTime::from_micros(1500));
        assert!((secs - 1e-3).abs() < 1e-9);
        assert!((integral - (10.0e-3 * 0.5 + 20.0e-3 * 0.5)).abs() < 1e-9);
    }

    #[test]
    fn eviction_forgets_old_slots() {
        let mut r = ring();
        r.add(SimTime::from_micros(100), 5.0, SimDuration::from_micros(100));
        for ms in 1..40u64 {
            r.add(
                SimTime::from_millis(ms) + SimDuration::from_micros(100),
                1.0,
                SimDuration::from_micros(100),
            );
        }
        let (_, secs) = r.integral_between(SimTime::ZERO, SimTime::from_millis(1));
        assert_eq!(secs, 0.0, "slot 0 must be evicted");
    }

    #[test]
    fn recent_series_is_most_recent_first() {
        let mut r = ring();
        for ms in 0..5u64 {
            r.add(
                SimTime::from_millis(ms) + SimDuration::from_micros(500),
                ms as f64,
                SimDuration::from_millis(1),
            );
        }
        let series = r.recent_series(SimTime::from_millis(5), 3);
        assert_eq!(series, vec![4.0, 3.0, 2.0]);
    }

    #[test]
    fn empty_interval_yields_none() {
        let r = ring();
        assert!(r.average_between(SimTime::ZERO, SimTime::from_millis(1)).is_none());
        let mut r2 = ring();
        r2.add(SimTime::from_micros(1), 1.0, SimDuration::from_micros(1));
        assert!(r2
            .average_between(SimTime::from_millis(5), SimTime::from_millis(6))
            .is_none());
    }

    #[test]
    fn works_with_metric_vectors() {
        use crate::metrics::MetricVector;
        let mut r: TraceRing<MetricVector> = TraceRing::new(SimDuration::from_millis(1), 8);
        let m = MetricVector { core: 1.0, ins: 2.0, ..MetricVector::default() };
        r.add(SimTime::from_micros(400), m, SimDuration::from_micros(400));
        let avg = r.average_between(SimTime::ZERO, SimTime::from_millis(1)).unwrap();
        assert!((avg.core - 1.0).abs() < 1e-9);
        assert!((avg.ins - 2.0).abs() < 1e-9);
    }

    /// Walk-based reference for [`TraceRing::integral_between`], the
    /// pre-cursor implementation.
    fn integral_walk(r: &TraceRing<f64>, t0: SimTime, t1: SimTime) -> (f64, f64) {
        let mut total = 0.0;
        let mut secs = 0.0;
        if t1 <= t0 || r.values.is_empty() {
            return (total, secs);
        }
        let slot_ns = r.slot.as_nanos();
        let first = r.slot_of(t0);
        let last = r.slot_of(t1 - SimDuration::from_nanos(1));
        for idx in first..=last {
            if idx < r.base {
                continue;
            }
            let off = (idx - r.base) as usize;
            let Some(&(v, s)) = r.values.get(off) else { continue };
            let slot_start = idx * slot_ns;
            let slot_end = slot_start + slot_ns;
            let lo = slot_start.max(t0.as_nanos());
            let hi = slot_end.min(t1.as_nanos());
            let frac = (hi.saturating_sub(lo)) as f64 / slot_ns as f64;
            total += v * frac;
            secs += s * frac;
        }
        (total, secs)
    }

    #[test]
    fn cursor_matches_walk_under_mixed_traffic() {
        // Deterministic mix of in-order writes, occasional out-of-order
        // writes (dirtying the cursor), evictions, and interleaved
        // queries of every shape.
        let mut r: TraceRing<f64> = TraceRing::new(SimDuration::from_millis(1), 16);
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..400u64 {
            let t = SimTime::from_micros(step * 400 + rng() % 300);
            r.add(t, (rng() % 100) as f64, SimDuration::from_micros(100 + rng() % 400));
            if step % 7 == 0 && step > 20 {
                // Out-of-order write a few slots back.
                let back = SimTime::from_micros((step - 10) * 400);
                r.add(back, 3.0, SimDuration::from_micros(50));
            }
            if step % 3 == 0 {
                let a = rng() % (step * 400 + 1);
                let b = a + rng() % 5_000;
                let (t0, t1) = (SimTime::from_micros(a), SimTime::from_micros(b));
                let (fast_v, fast_s) = r.integral_between(t0, t1);
                let (ref_v, ref_s) = integral_walk(&r, t0, t1);
                assert!(
                    (fast_v - ref_v).abs() < 1e-9 && (fast_s - ref_s).abs() < 1e-12,
                    "step {step}: cursor ({fast_v}, {fast_s}) vs walk ({ref_v}, {ref_s})"
                );
            }
        }
    }

    #[test]
    fn query_before_history_is_cheap_and_zero() {
        // A ring whose base has advanced far: a query anchored at t=0 must
        // clamp to retained history rather than walking every slot since
        // the origin (and must still report nothing).
        let mut r = ring();
        let far = 1_000_000u64;
        r.add(SimTime::from_millis(far), 7.0, SimDuration::from_millis(1));
        let (v, s) = r.integral_between(SimTime::ZERO, SimTime::from_millis(1));
        assert_eq!(v, 0.0);
        assert_eq!(s, 0.0);
        let (v, s) = r.integral_between(SimTime::ZERO, SimTime::from_millis(far + 1));
        assert!((v - 7.0e-3).abs() < 1e-12);
        assert!((s - 1e-3).abs() < 1e-12);
    }
}
