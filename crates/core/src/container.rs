//! Power container state and lifecycle (paper §3.3, §3.5).
//!
//! A power container accumulates the power-relevant activity of one
//! request context: event counters, modeled energy, I/O energy, recent
//! power, and control state. Containers are reference-counted by the
//! tasks bound to them and their live state is released when the last
//! task unbinds (the paper's 784-byte structure with a reference
//! counter); a compact [`ContainerRecord`] can be retained for analysis.
//!
//! # Layout
//!
//! Live state is a slab of parallel arrays (struct-of-arrays) rather
//! than a map of one big struct per container:
//!
//! * [`ContainerMeta`] — identity and control fields touched on
//!   bind/unbind and policy changes,
//! * [`ContainerAccounting`] — the floats the per-sample attribution
//!   hot path reads and writes,
//! * one [`CounterBlock`] row of cumulative event counts.
//!
//! Rows live at a stable slot until the container is released; freed
//! slots are recycled LIFO. A context-id → slot index keyed through the
//! deterministic [`FxHashMap`] (plus a one-entry cache for the common
//! consecutive-samples-same-context case) resolves lookups. Attribution
//! therefore walks three dense arrays instead of chasing one ~800-byte
//! heap node per container, and [`ContainerManager::iter_live`] yields
//! containers in slot order — a deterministic order, unlike the
//! randomized `std` map order, so callers may fold floating-point sums
//! over it without breaking run-to-run identity.

use crate::metrics::MetricVector;
use hwsim::CounterBlock;
use ossim::ContextId;
use simkern::{FxHashMap, SimTime};

/// Smoothing factor for the container's recent-power estimate.
const POWER_EWMA_ALPHA: f64 = 0.5;

/// Identity and control state of one container (cold on the attribution
/// path: touched on bind/unbind, labeling and policy changes).
#[derive(Debug, Clone)]
struct ContainerMeta {
    /// Raw context id owning this slot (meaningful only while `in_use`).
    ctx: u64,
    created_at: SimTime,
    refcount: u32,
    in_use: bool,
    label: Option<u32>,
    /// Explicit per-request power cap, overriding the system policy.
    power_cap_w: Option<f64>,
    /// Cumulative-energy budget; exceeding it forces maximum throttling
    /// (the Cinder-style "energy as a first-class resource" control the
    /// paper's related work discusses).
    energy_budget_j: Option<f64>,
}

impl ContainerMeta {
    fn new(ctx: u64, now: SimTime) -> ContainerMeta {
        ContainerMeta {
            ctx,
            created_at: now,
            refcount: 0,
            in_use: true,
            label: None,
            power_cap_w: None,
            energy_budget_j: None,
        }
    }
}

/// The accounting row the per-sample attribution hot path updates.
#[derive(Debug, Clone)]
struct ContainerAccounting {
    last_active: SimTime,
    /// Cumulative modeled CPU/memory energy in Joules.
    energy_j: f64,
    /// Cumulative attributed peripheral I/O energy in Joules.
    io_energy_j: f64,
    /// Portion of `energy_j` accrued during intervals executed at a duty
    /// fraction below 1.0 — the "throttled" provenance segment (energy
    /// spent while the container was under DVFS/duty-cycle control).
    throttled_j: f64,
    /// Seconds of CPU time attributed (wall time of sampled intervals).
    busy_seconds: f64,
    /// Time-weighted duty-cycle fraction actually applied.
    duty_weighted: f64,
    /// Most recent sampled power (EWMA), Watts.
    recent_power_w: f64,
    /// Most recent *unthrottled* power estimate (power ÷ duty fraction).
    unthrottled_power_w: f64,
}

impl ContainerAccounting {
    fn new(now: SimTime) -> ContainerAccounting {
        ContainerAccounting {
            last_active: now,
            energy_j: 0.0,
            io_energy_j: 0.0,
            throttled_j: 0.0,
            busy_seconds: 0.0,
            duty_weighted: 0.0,
            recent_power_w: 0.0,
            unthrottled_power_w: 0.0,
        }
    }

    /// Folds one sampled interval into the row.
    fn apply_sample(&mut self, watts: f64, duty: f64, dt_secs: f64, now: SimTime) {
        self.energy_j += watts * dt_secs;
        if duty < 1.0 {
            self.throttled_j += watts * dt_secs;
        }
        self.busy_seconds += dt_secs;
        self.duty_weighted += duty * dt_secs;
        self.last_active = now;
        self.recent_power_w =
            POWER_EWMA_ALPHA * watts + (1.0 - POWER_EWMA_ALPHA) * self.recent_power_w;
        let unthrottled = if duty > 0.0 { watts / duty } else { watts };
        self.unthrottled_power_w = POWER_EWMA_ALPHA * unthrottled
            + (1.0 - POWER_EWMA_ALPHA) * self.unthrottled_power_w;
    }
}

/// A read-only view of one live container's state (the public face of
/// the struct-of-arrays rows).
#[derive(Debug, Clone, Copy)]
pub struct ContainerView<'a> {
    meta: &'a ContainerMeta,
    acct: &'a ContainerAccounting,
    events: &'a CounterBlock,
}

impl ContainerView<'_> {
    /// Cumulative modeled CPU/memory energy in Joules.
    pub fn energy_j(&self) -> f64 {
        self.acct.energy_j
    }

    /// Cumulative attributed I/O energy in Joules.
    pub fn io_energy_j(&self) -> f64 {
        self.acct.io_energy_j
    }

    /// Portion of [`Self::energy_j`] accrued while executing at a duty
    /// fraction below 1.0 (the throttled provenance segment).
    pub fn throttled_j(&self) -> f64 {
        self.acct.throttled_j
    }

    /// Total attributed energy (CPU + I/O).
    pub fn total_energy_j(&self) -> f64 {
        self.acct.energy_j + self.acct.io_energy_j
    }

    /// Seconds of attributed CPU execution.
    pub fn busy_seconds(&self) -> f64 {
        self.acct.busy_seconds
    }

    /// Most recent sampled power (EWMA-smoothed), Watts.
    pub fn recent_power_w(&self) -> f64 {
        self.acct.recent_power_w
    }

    /// Most recent unthrottled-power estimate, Watts.
    pub fn unthrottled_power_w(&self) -> f64 {
        self.acct.unthrottled_power_w
    }

    /// Mean power while executing: energy over attributed CPU seconds.
    pub fn mean_power_w(&self) -> f64 {
        if self.acct.busy_seconds > 0.0 {
            self.acct.energy_j / self.acct.busy_seconds
        } else {
            0.0
        }
    }

    /// Time-weighted average duty-cycle fraction applied while executing.
    pub fn mean_duty(&self) -> f64 {
        if self.acct.busy_seconds > 0.0 {
            self.acct.duty_weighted / self.acct.busy_seconds
        } else {
            1.0
        }
    }

    /// Number of tasks currently bound.
    pub fn refcount(&self) -> u32 {
        self.meta.refcount
    }

    /// The workload-assigned label (request type), if any.
    pub fn label(&self) -> Option<u32> {
        self.meta.label
    }

    /// The per-request power cap, if set.
    pub fn power_cap_w(&self) -> Option<f64> {
        self.meta.power_cap_w
    }

    /// The per-request cumulative-energy budget, if set.
    pub fn energy_budget_j(&self) -> Option<f64> {
        self.meta.energy_budget_j
    }

    /// `true` once the request has consumed its entire energy budget.
    pub fn over_energy_budget(&self) -> bool {
        self.meta
            .energy_budget_j
            .is_some_and(|b| self.acct.energy_j + self.acct.io_energy_j >= b)
    }

    /// Cumulative attributed events.
    pub fn events(&self) -> &CounterBlock {
        self.events
    }
}

/// Compact retained record of a completed container.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerRecord {
    /// The request context this container tracked.
    pub ctx: ContextId,
    /// Workload-assigned request-type label.
    pub label: Option<u32>,
    /// Container creation time.
    pub created_at: SimTime,
    /// When the last bound task unbound.
    pub finished_at: SimTime,
    /// Modeled CPU/memory energy, Joules.
    pub energy_j: f64,
    /// Attributed I/O energy, Joules.
    pub io_energy_j: f64,
    /// Portion of `energy_j` accrued while throttled (duty < 1.0).
    pub throttled_j: f64,
    /// Attributed CPU seconds.
    pub busy_seconds: f64,
    /// Mean power while executing, Watts.
    pub mean_power_w: f64,
    /// Mean unthrottled power estimate, Watts.
    pub unthrottled_power_w: f64,
    /// Time-weighted mean duty fraction applied.
    pub mean_duty: f64,
}

/// Owns every live container plus the special background container for
/// activity with no traceable request context (§4.2's GAE background
/// processing).
#[derive(Debug, Clone)]
pub struct ContainerManager {
    /// Slot-parallel identity/control rows.
    meta: Vec<ContainerMeta>,
    /// Slot-parallel accounting rows (the attribution hot path).
    acct: Vec<ContainerAccounting>,
    /// Slot-parallel cumulative event counts.
    events: Vec<CounterBlock>,
    /// Freed slots, recycled LIFO.
    free: Vec<u32>,
    /// Context id → slot index for live containers.
    index: FxHashMap<u64, u32>,
    /// One-entry lookup cache (ctx, slot); hit on consecutive samples
    /// for the same context, the common case during a scheduling
    /// quantum. Valid only if `index` still maps `.0` to `.1`.
    cache: Option<(u64, u32)>,
    bg_meta: ContainerMeta,
    bg_acct: ContainerAccounting,
    bg_events: CounterBlock,
    records: Vec<ContainerRecord>,
    retain_records: bool,
    total_request_energy_j: f64,
    total_request_io_energy_j: f64,
    released: u64,
}

impl ContainerManager {
    /// Creates an empty manager. When `retain_records` is set, completed
    /// containers leave a [`ContainerRecord`] behind for analysis.
    pub fn new(retain_records: bool) -> ContainerManager {
        let mut bg_meta = ContainerMeta::new(0, SimTime::ZERO);
        bg_meta.in_use = false;
        ContainerManager {
            meta: Vec::new(),
            acct: Vec::new(),
            events: Vec::new(),
            free: Vec::new(),
            index: FxHashMap::default(),
            cache: None,
            bg_meta,
            bg_acct: ContainerAccounting::new(SimTime::ZERO),
            bg_events: CounterBlock::default(),
            records: Vec::new(),
            retain_records,
            total_request_energy_j: 0.0,
            total_request_io_energy_j: 0.0,
            released: 0,
        }
    }

    /// Resolves `ctx` to its live slot, if any.
    #[inline]
    fn lookup(&self, ctx: u64) -> Option<u32> {
        if let Some((c, s)) = self.cache {
            if c == ctx {
                return Some(s);
            }
        }
        self.index.get(&ctx).copied()
    }

    /// Resolves `ctx` to its live slot, creating one (recycling a freed
    /// slot if available) on first sight.
    fn slot_for(&mut self, ctx: u64, now: SimTime) -> u32 {
        if let Some((c, s)) = self.cache {
            if c == ctx {
                return s;
            }
        }
        if let Some(&s) = self.index.get(&ctx) {
            self.cache = Some((ctx, s));
            return s;
        }
        let s = match self.free.pop() {
            Some(s) => {
                self.meta[s as usize] = ContainerMeta::new(ctx, now);
                self.acct[s as usize] = ContainerAccounting::new(now);
                self.events[s as usize] = CounterBlock::default();
                s
            }
            None => {
                let s = self.meta.len() as u32;
                self.meta.push(ContainerMeta::new(ctx, now));
                self.acct.push(ContainerAccounting::new(now));
                self.events.push(CounterBlock::default());
                s
            }
        };
        self.index.insert(ctx, s);
        self.cache = Some((ctx, s));
        s
    }

    /// Releases the container at `slot` into the record log.
    fn release(&mut self, slot: u32, now: SimTime) {
        let s = slot as usize;
        let ctx = self.meta[s].ctx;
        self.index.remove(&ctx);
        if self.cache.is_some_and(|(c, _)| c == ctx) {
            self.cache = None;
        }
        self.meta[s].in_use = false;
        self.free.push(slot);
        self.released += 1;
        if self.retain_records {
            let (m, a) = (&self.meta[s], &self.acct[s]);
            self.records.push(ContainerRecord {
                ctx: ContextId(ctx),
                label: m.label,
                created_at: m.created_at,
                finished_at: now,
                energy_j: a.energy_j,
                io_energy_j: a.io_energy_j,
                throttled_j: a.throttled_j,
                busy_seconds: a.busy_seconds,
                mean_power_w: if a.busy_seconds > 0.0 {
                    a.energy_j / a.busy_seconds
                } else {
                    0.0
                },
                unthrottled_power_w: a.unthrottled_power_w,
                mean_duty: if a.busy_seconds > 0.0 {
                    a.duty_weighted / a.busy_seconds
                } else {
                    1.0
                },
            });
        }
    }

    /// Binds a task to `ctx`, creating the container on first binding.
    pub fn bind(&mut self, ctx: ContextId, now: SimTime) {
        let s = self.slot_for(ctx.0, now);
        self.meta[s as usize].refcount += 1;
    }

    /// Unbinds one task from `ctx`; the container is released (and
    /// optionally recorded) when the last task unbinds. A no-op for
    /// unknown contexts.
    pub fn unbind(&mut self, ctx: ContextId, now: SimTime) {
        let Some(s) = self.lookup(ctx.0) else { return };
        let m = &mut self.meta[s as usize];
        m.refcount = m.refcount.saturating_sub(1);
        if m.refcount == 0 {
            self.release(s, now);
        }
    }

    /// Attributes one sampled interval to `ctx` (or to the background
    /// container for `None`): modeled `watts` over `dt_secs` of wall time
    /// executed at duty fraction `duty`, with the interval's event delta.
    pub fn attribute(
        &mut self,
        ctx: Option<ContextId>,
        watts: f64,
        duty: f64,
        dt_secs: f64,
        events: &CounterBlock,
        now: SimTime,
    ) {
        match ctx {
            Some(id) => {
                self.total_request_energy_j += watts * dt_secs;
                let s = self.slot_for(id.0, now) as usize;
                self.events[s].accumulate(events);
                self.acct[s].apply_sample(watts, duty, dt_secs, now);
            }
            None => {
                self.bg_events.accumulate(events);
                self.bg_acct.apply_sample(watts, duty, dt_secs, now);
            }
        }
    }

    /// Attributes peripheral I/O energy to `ctx` (or the background
    /// container).
    pub fn attribute_io(&mut self, ctx: Option<ContextId>, joules: f64, now: SimTime) {
        match ctx {
            Some(id) => {
                self.total_request_io_energy_j += joules;
                let s = self.slot_for(id.0, now) as usize;
                self.acct[s].io_energy_j += joules;
                self.acct[s].last_active = now;
            }
            None => {
                self.bg_acct.io_energy_j += joules;
                self.bg_acct.last_active = now;
            }
        }
    }

    /// Labels `ctx`'s container with a request type (used by workload
    /// drivers so experiments can group per-type energy profiles).
    pub fn set_label(&mut self, ctx: ContextId, label: u32, now: SimTime) {
        let s = self.slot_for(ctx.0, now);
        self.meta[s as usize].label = Some(label);
    }

    /// Sets (or clears) a per-request power cap for `ctx`.
    pub fn set_power_cap(&mut self, ctx: ContextId, cap_w: Option<f64>, now: SimTime) {
        let s = self.slot_for(ctx.0, now);
        self.meta[s as usize].power_cap_w = cap_w;
    }

    /// Sets (or clears) a per-request cumulative-energy budget for `ctx`.
    pub fn set_energy_budget(&mut self, ctx: ContextId, budget_j: Option<f64>, now: SimTime) {
        let s = self.slot_for(ctx.0, now);
        self.meta[s as usize].energy_budget_j = budget_j;
    }

    #[inline]
    fn view(&self, s: usize) -> ContainerView<'_> {
        ContainerView {
            meta: &self.meta[s],
            acct: &self.acct[s],
            events: &self.events[s],
        }
    }

    /// The live container for `ctx`, if any.
    pub fn get(&self, ctx: ContextId) -> Option<ContainerView<'_>> {
        self.lookup(ctx.0).map(|s| self.view(s as usize))
    }

    /// The background container (activity with no request context).
    pub fn background(&self) -> ContainerView<'_> {
        ContainerView {
            meta: &self.bg_meta,
            acct: &self.bg_acct,
            events: &self.bg_events,
        }
    }

    /// Records of completed containers (empty unless retention is on).
    pub fn records(&self) -> &[ContainerRecord] {
        &self.records
    }

    /// Number of live containers.
    pub fn live_count(&self) -> usize {
        self.index.len()
    }

    /// Number of containers released so far.
    pub fn released_count(&self) -> u64 {
        self.released
    }

    /// Total modeled energy attributed to *requests* (live + completed,
    /// excluding background), Joules.
    pub fn total_request_energy_j(&self) -> f64 {
        self.total_request_energy_j
    }

    /// Total I/O energy attributed to requests, Joules.
    pub fn total_request_io_energy_j(&self) -> f64 {
        self.total_request_io_energy_j
    }

    /// Total modeled energy including the background container, Joules —
    /// the quantity the Fig. 8 validation compares against measured
    /// system energy.
    pub fn total_energy_with_background_j(&self) -> f64 {
        self.total_request_energy_j + self.bg_acct.energy_j
    }

    /// In-memory size of one live container's state in bytes: the sum of
    /// its three slot-parallel rows (the paper reports 784 bytes for its
    /// kernel structure).
    pub fn container_state_bytes() -> usize {
        std::mem::size_of::<ContainerMeta>()
            + std::mem::size_of::<ContainerAccounting>()
            + std::mem::size_of::<CounterBlock>()
    }

    /// Iterates over live containers in slot order. Slot order is a
    /// deterministic function of the bind/release history (freed slots
    /// recycle LIFO), so — unlike a randomized map order — results folded
    /// over this iterator are identical across runs.
    pub fn iter_live(&self) -> impl Iterator<Item = (ContextId, ContainerView<'_>)> {
        (0..self.meta.len()).filter_map(move |s| {
            if self.meta[s].in_use {
                Some((ContextId(self.meta[s].ctx), self.view(s)))
            } else {
                None
            }
        })
    }

    /// Rolls completed records up by label — the paper's client-level
    /// accounting ("fine-grained attribution of energy usage to clients
    /// and their individual requests"): each label plays the role of one
    /// client or request class.
    pub fn energy_by_label(&self) -> Vec<LabelEnergy> {
        let mut map: FxHashMap<u32, LabelEnergy> = FxHashMap::default();
        for r in &self.records {
            let Some(label) = r.label else { continue };
            let e = map.entry(label).or_insert(LabelEnergy {
                label,
                requests: 0,
                energy_j: 0.0,
                io_energy_j: 0.0,
                busy_seconds: 0.0,
            });
            e.requests += 1;
            e.energy_j += r.energy_j;
            e.io_energy_j += r.io_energy_j;
            e.busy_seconds += r.busy_seconds;
        }
        let mut out: Vec<LabelEnergy> = map.into_values().collect();
        out.sort_by_key(|e| e.label);
        out
    }
}

/// A point-in-time snapshot of one live container, as journaled into a
/// [`ManagerCheckpoint`] before a node crash.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerSnapshot {
    /// The request context the container tracks.
    pub ctx: ContextId,
    /// Workload-assigned label, if any.
    pub label: Option<u32>,
    /// Tasks bound at checkpoint time.
    pub refcount: u32,
    /// Container creation time.
    pub created_at: SimTime,
    /// Cumulative modeled CPU/memory energy at checkpoint time, Joules.
    pub energy_j: f64,
    /// Cumulative attributed I/O energy at checkpoint time, Joules.
    pub io_energy_j: f64,
    /// Portion of `energy_j` accrued while throttled, at checkpoint time.
    pub throttled_j: f64,
    /// Cumulative attributed CPU seconds at checkpoint time.
    pub busy_seconds: f64,
}

/// A deterministic checkpoint of a [`ContainerManager`]: everything a
/// crashing node journals so per-request attribution survives a restart
/// (§3.3's per-request state, made crash-durable). Restoring a
/// checkpoint recreates the cumulative totals, the retained records and
/// the live containers' accumulated energy; only attribution performed
/// *after* the checkpoint is lost in a crash, and that loss window is
/// exactly `attributed-at-crash − checkpoint.attributed_energy_j()`.
#[derive(Debug, Clone, PartialEq)]
pub struct ManagerCheckpoint {
    /// When the checkpoint was taken.
    pub taken_at: SimTime,
    /// Live containers at checkpoint time, sorted by context id so the
    /// journal is byte-stable.
    pub live: Vec<ContainerSnapshot>,
    /// Background container's modeled energy, Joules.
    pub background_energy_j: f64,
    /// Background container's I/O energy, Joules.
    pub background_io_energy_j: f64,
    /// Cumulative request CPU/memory energy total, Joules.
    pub total_request_energy_j: f64,
    /// Cumulative request I/O energy total, Joules.
    pub total_request_io_energy_j: f64,
    /// Containers released before the checkpoint.
    pub released: u64,
    /// Retained records at checkpoint time.
    pub records: Vec<ContainerRecord>,
}

impl ManagerCheckpoint {
    /// An empty checkpoint (a freshly booted node's journal entry).
    pub fn empty() -> ManagerCheckpoint {
        ManagerCheckpoint {
            taken_at: SimTime::ZERO,
            live: Vec::new(),
            background_energy_j: 0.0,
            background_io_energy_j: 0.0,
            total_request_energy_j: 0.0,
            total_request_io_energy_j: 0.0,
            released: 0,
            records: Vec::new(),
        }
    }

    /// Total attributed energy captured by the checkpoint (requests +
    /// background, CPU + I/O) — the same quantity the cluster's per-node
    /// conservation invariant compares against measured active energy.
    pub fn attributed_energy_j(&self) -> f64 {
        self.total_request_energy_j
            + self.total_request_io_energy_j
            + self.background_energy_j
            + self.background_io_energy_j
    }

    /// A canonical, byte-stable rendering of the checkpoint (one header
    /// line plus one line per live container). Two checkpoints of equal
    /// state render identically, so crash journals can be compared across
    /// runs.
    pub fn digest(&self) -> String {
        let mut out = format!(
            "ckpt at={} live={} released={} records={} req={:.9} io={:.9} bg={:.9} bgio={:.9}\n",
            self.taken_at.as_nanos(),
            self.live.len(),
            self.released,
            self.records.len(),
            self.total_request_energy_j,
            self.total_request_io_energy_j,
            self.background_energy_j,
            self.background_io_energy_j,
        );
        for s in &self.live {
            out.push_str(&format!(
                "live ctx={} refs={} label={} e={:.9} io={:.9} busy={:.9}\n",
                s.ctx.0,
                s.refcount,
                s.label.map(i64::from).unwrap_or(-1),
                s.energy_j,
                s.io_energy_j,
                s.busy_seconds,
            ));
        }
        out
    }
}

impl ContainerManager {
    /// Journals the manager's full state into a [`ManagerCheckpoint`]
    /// (the crash-durable log entry a node writes periodically).
    pub fn checkpoint(&self, now: SimTime) -> ManagerCheckpoint {
        let mut live: Vec<ContainerSnapshot> = (0..self.meta.len())
            .filter(|&s| self.meta[s].in_use)
            .map(|s| ContainerSnapshot {
                ctx: ContextId(self.meta[s].ctx),
                label: self.meta[s].label,
                refcount: self.meta[s].refcount,
                created_at: self.meta[s].created_at,
                energy_j: self.acct[s].energy_j,
                io_energy_j: self.acct[s].io_energy_j,
                throttled_j: self.acct[s].throttled_j,
                busy_seconds: self.acct[s].busy_seconds,
            })
            .collect();
        live.sort_by_key(|s| s.ctx.0);
        ManagerCheckpoint {
            taken_at: now,
            live,
            background_energy_j: self.bg_acct.energy_j,
            background_io_energy_j: self.bg_acct.io_energy_j,
            total_request_energy_j: self.total_request_energy_j,
            total_request_io_energy_j: self.total_request_io_energy_j,
            released: self.released,
            records: self.records.clone(),
        }
    }

    /// Restores checkpointed state into this (freshly created) manager
    /// after a crash/restart at `now`.
    ///
    /// Cumulative totals, the background container's energy and the
    /// retained records come back exactly as journaled. Containers that
    /// were *live* at checkpoint time are force-released into records:
    /// the tasks bound to them died with the crashed kernel, so their
    /// accumulated energy is preserved but their refcounts drop to zero —
    /// every journaled container is either restored (as a record) or
    /// dropped, none is double-freed. Returns the number of live
    /// containers force-released.
    ///
    /// # Panics
    ///
    /// Panics if the manager has already attributed or bound anything —
    /// restore targets only a fresh post-restart manager.
    pub fn restore(&mut self, cp: &ManagerCheckpoint, now: SimTime) -> u64 {
        assert!(
            self.index.is_empty() && self.released == 0 && self.total_request_energy_j == 0.0,
            "restore targets a freshly created manager"
        );
        self.total_request_energy_j = cp.total_request_energy_j;
        self.total_request_io_energy_j = cp.total_request_io_energy_j;
        self.bg_acct.energy_j = cp.background_energy_j;
        self.bg_acct.io_energy_j = cp.background_io_energy_j;
        if self.retain_records {
            self.records = cp.records.clone();
        }
        for s in &cp.live {
            self.released += 1;
            if self.retain_records {
                self.records.push(ContainerRecord {
                    ctx: s.ctx,
                    label: s.label,
                    created_at: s.created_at,
                    finished_at: now,
                    energy_j: s.energy_j,
                    io_energy_j: s.io_energy_j,
                    throttled_j: s.throttled_j,
                    busy_seconds: s.busy_seconds,
                    mean_power_w: if s.busy_seconds > 0.0 {
                        s.energy_j / s.busy_seconds
                    } else {
                        0.0
                    },
                    unthrottled_power_w: 0.0,
                    mean_duty: 1.0,
                });
            }
        }
        self.released += cp.released;
        cp.live.len() as u64
    }
}

/// Aggregated energy accounting for one request class / client (label).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelEnergy {
    /// The label rolled up.
    pub label: u32,
    /// Completed requests carrying this label.
    pub requests: usize,
    /// Total modeled CPU/memory energy, Joules.
    pub energy_j: f64,
    /// Total attributed I/O energy, Joules.
    pub io_energy_j: f64,
    /// Total attributed CPU seconds.
    pub busy_seconds: f64,
}

impl LabelEnergy {
    /// Mean total energy per request, Joules.
    pub fn mean_energy_j(&self) -> f64 {
        (self.energy_j + self.io_energy_j) / self.requests.max(1) as f64
    }
}

/// Convenience: builds the metric vector of a container's lifetime-average
/// activity (used in tests and diagnostics).
pub fn lifetime_metrics(c: ContainerView<'_>) -> MetricVector {
    MetricVector::from_counters(c.events())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(dt_cycles: f64) -> CounterBlock {
        CounterBlock {
            elapsed_cycles: dt_cycles,
            nonhalt_cycles: dt_cycles,
            instructions: dt_cycles * 2.0,
            ..CounterBlock::default()
        }
    }

    #[test]
    fn bind_unbind_releases_at_zero() {
        let mut m = ContainerManager::new(true);
        let ctx = ContextId(1);
        m.bind(ctx, SimTime::ZERO);
        m.bind(ctx, SimTime::ZERO);
        m.unbind(ctx, SimTime::from_millis(1));
        assert_eq!(m.live_count(), 1, "still one binding");
        m.unbind(ctx, SimTime::from_millis(2));
        assert_eq!(m.live_count(), 0);
        assert_eq!(m.released_count(), 1);
        assert_eq!(m.records().len(), 1);
        assert_eq!(m.records()[0].finished_at, SimTime::from_millis(2));
    }

    #[test]
    fn attribution_accumulates_energy_and_time() {
        let mut m = ContainerManager::new(false);
        let ctx = ContextId(7);
        m.bind(ctx, SimTime::ZERO);
        m.attribute(Some(ctx), 10.0, 1.0, 0.001, &events(1000.0), SimTime::from_millis(1));
        m.attribute(Some(ctx), 20.0, 1.0, 0.001, &events(1000.0), SimTime::from_millis(2));
        let c = m.get(ctx).unwrap();
        assert!((c.energy_j() - 0.030).abs() < 1e-12);
        assert!((c.busy_seconds() - 0.002).abs() < 1e-15);
        assert!((c.mean_power_w() - 15.0).abs() < 1e-9);
        assert_eq!(c.events().instructions, 4000.0);
    }

    #[test]
    fn background_catches_untagged_activity() {
        let mut m = ContainerManager::new(false);
        m.attribute(None, 5.0, 1.0, 0.002, &events(100.0), SimTime::from_millis(1));
        assert!((m.background().energy_j() - 0.010).abs() < 1e-12);
        assert_eq!(m.total_request_energy_j(), 0.0);
        assert!((m.total_energy_with_background_j() - 0.010).abs() < 1e-12);
    }

    #[test]
    fn unthrottled_power_divides_by_duty() {
        let mut m = ContainerManager::new(false);
        let ctx = ContextId(3);
        m.bind(ctx, SimTime::ZERO);
        for _ in 0..20 {
            m.attribute(Some(ctx), 5.0, 0.5, 0.001, &events(500.0), SimTime::from_millis(1));
        }
        let c = m.get(ctx).unwrap();
        assert!((c.unthrottled_power_w() - 10.0).abs() < 0.1);
        assert!((c.mean_duty() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn throttled_segment_tracks_duty_limited_energy() {
        let mut m = ContainerManager::new(true);
        let ctx = ContextId(6);
        m.bind(ctx, SimTime::ZERO);
        // 1 J at full duty, then 0.5 J while duty-limited.
        m.attribute(Some(ctx), 10.0, 1.0, 0.1, &events(1.0), SimTime::ZERO);
        m.attribute(Some(ctx), 5.0, 0.5, 0.1, &events(1.0), SimTime::ZERO);
        let c = m.get(ctx).unwrap();
        assert!((c.energy_j() - 1.5).abs() < 1e-12);
        assert!((c.throttled_j() - 0.5).abs() < 1e-12);
        // The segment survives checkpoint/restore and release-to-record.
        let cp = m.checkpoint(SimTime::from_millis(1));
        assert!((cp.live[0].throttled_j - 0.5).abs() < 1e-12);
        let mut fresh = ContainerManager::new(true);
        fresh.restore(&cp, SimTime::from_millis(2));
        assert!((fresh.records()[0].throttled_j - 0.5).abs() < 1e-12);
        m.unbind(ctx, SimTime::from_millis(1));
        assert!((m.records()[0].throttled_j - 0.5).abs() < 1e-12);
    }

    #[test]
    fn record_retention_is_optional() {
        let mut m = ContainerManager::new(false);
        let ctx = ContextId(9);
        m.bind(ctx, SimTime::ZERO);
        m.unbind(ctx, SimTime::from_millis(1));
        assert!(m.records().is_empty());
        assert_eq!(m.released_count(), 1);
    }

    #[test]
    fn energy_budget_trips_when_consumed() {
        let mut m = ContainerManager::new(false);
        let ctx = ContextId(5);
        m.bind(ctx, SimTime::ZERO);
        m.set_energy_budget(ctx, Some(1.0), SimTime::ZERO);
        assert!(!m.get(ctx).unwrap().over_energy_budget());
        m.attribute(Some(ctx), 10.0, 1.0, 0.05, &CounterBlock::default(), SimTime::ZERO);
        assert!(!m.get(ctx).unwrap().over_energy_budget(), "0.5 J of 1 J used");
        m.attribute_io(Some(ctx), 0.6, SimTime::ZERO);
        assert!(m.get(ctx).unwrap().over_energy_budget(), "1.1 J of 1 J used");
    }

    #[test]
    fn labels_and_caps_survive_into_records() {
        let mut m = ContainerManager::new(true);
        let ctx = ContextId(4);
        m.bind(ctx, SimTime::ZERO);
        m.set_label(ctx, 42, SimTime::ZERO);
        m.set_power_cap(ctx, Some(10.0), SimTime::ZERO);
        assert_eq!(m.get(ctx).unwrap().power_cap_w(), Some(10.0));
        m.unbind(ctx, SimTime::from_millis(1));
        assert_eq!(m.records()[0].label, Some(42));
    }

    #[test]
    fn unbind_unknown_context_is_noop() {
        let mut m = ContainerManager::new(true);
        m.unbind(ContextId(999), SimTime::ZERO);
        assert_eq!(m.released_count(), 0);
    }

    #[test]
    fn energy_totals_track_requests_separately() {
        let mut m = ContainerManager::new(false);
        let ctx = ContextId(1);
        m.bind(ctx, SimTime::ZERO);
        m.attribute(Some(ctx), 10.0, 1.0, 0.1, &events(1.0), SimTime::ZERO);
        m.attribute(None, 10.0, 1.0, 0.1, &events(1.0), SimTime::ZERO);
        m.attribute_io(Some(ctx), 0.5, SimTime::ZERO);
        assert!((m.total_request_energy_j() - 1.0).abs() < 1e-12);
        assert!((m.total_request_io_energy_j() - 0.5).abs() < 1e-12);
        assert!((m.total_energy_with_background_j() - 2.0).abs() < 1e-12);
        // Totals survive container release.
        m.unbind(ctx, SimTime::ZERO);
        assert!((m.total_request_energy_j() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn container_state_is_compact() {
        // The paper's structure is 784 bytes; ours should be of the same
        // order (well under 1 KiB across the three slot-parallel rows).
        assert!(ContainerManager::container_state_bytes() < 1024);
    }

    #[test]
    fn slots_are_recycled_lifo_and_iteration_is_slot_ordered() {
        let mut m = ContainerManager::new(false);
        for id in [10u64, 20, 30] {
            m.bind(ContextId(id), SimTime::ZERO);
        }
        // Release the middle container; its slot (1) must be reused by
        // the next container created, so iteration yields 10, 40, 30.
        m.unbind(ContextId(20), SimTime::from_millis(1));
        m.bind(ContextId(40), SimTime::from_millis(2));
        let order: Vec<u64> = m.iter_live().map(|(ctx, _)| ctx.0).collect();
        assert_eq!(order, vec![10, 40, 30]);
        assert_eq!(m.live_count(), 3);
        // A recycled slot starts from zeroed accounting.
        let c = m.get(ContextId(40)).unwrap();
        assert_eq!(c.energy_j(), 0.0);
        assert_eq!(c.refcount(), 1);
        assert_eq!(c.label(), None);
    }

    #[test]
    fn lookup_cache_survives_release_of_other_context() {
        let mut m = ContainerManager::new(false);
        let (a, b) = (ContextId(1), ContextId(2));
        m.bind(a, SimTime::ZERO);
        m.bind(b, SimTime::ZERO);
        m.attribute(Some(a), 10.0, 1.0, 0.1, &events(1.0), SimTime::ZERO);
        // Releasing `b` must not corrupt a cached lookup of `a`, and
        // releasing `a` itself must invalidate the cache.
        m.unbind(b, SimTime::ZERO);
        assert!((m.get(a).unwrap().energy_j() - 1.0).abs() < 1e-12);
        m.unbind(a, SimTime::ZERO);
        assert!(m.get(a).is_none());
        // Re-binding the same ctx lands in a fresh (recycled) slot.
        m.bind(a, SimTime::from_millis(5));
        assert_eq!(m.get(a).unwrap().energy_j(), 0.0);
    }

    #[test]
    fn energy_by_label_rolls_up_records() {
        let mut m = ContainerManager::new(true);
        for (id, label, watts) in [(1u64, 7u32, 10.0), (2, 7, 20.0), (3, 9, 5.0)] {
            let ctx = ContextId(id);
            m.bind(ctx, SimTime::ZERO);
            m.set_label(ctx, label, SimTime::ZERO);
            m.attribute(Some(ctx), watts, 1.0, 0.1, &CounterBlock::default(), SimTime::ZERO);
            m.unbind(ctx, SimTime::from_millis(1));
        }
        let rollup = m.energy_by_label();
        assert_eq!(rollup.len(), 2);
        let seven = rollup.iter().find(|e| e.label == 7).unwrap();
        assert_eq!(seven.requests, 2);
        assert!((seven.energy_j - 3.0).abs() < 1e-12);
        assert!((seven.mean_energy_j() - 1.5).abs() < 1e-12);
        let nine = rollup.iter().find(|e| e.label == 9).unwrap();
        assert_eq!(nine.requests, 1);
        assert!((nine.busy_seconds - 0.1).abs() < 1e-12);
    }

    #[test]
    fn checkpoint_restore_round_trips_totals_and_records() {
        let mut m = ContainerManager::new(true);
        let done = ContextId(1);
        m.bind(done, SimTime::ZERO);
        m.attribute(Some(done), 10.0, 1.0, 0.1, &events(10.0), SimTime::from_millis(1));
        m.unbind(done, SimTime::from_millis(2));
        let live = ContextId(2);
        m.bind(live, SimTime::from_millis(3));
        m.set_label(live, 7, SimTime::from_millis(3));
        m.attribute(Some(live), 20.0, 1.0, 0.1, &events(10.0), SimTime::from_millis(4));
        m.attribute(None, 5.0, 1.0, 0.1, &events(1.0), SimTime::from_millis(4));
        m.attribute_io(Some(live), 0.25, SimTime::from_millis(4));

        let cp = m.checkpoint(SimTime::from_millis(5));
        assert_eq!(cp.live.len(), 1);
        assert_eq!(cp.released, 1);
        assert_eq!(cp.records.len(), 1);
        let attributed = m.total_energy_with_background_j()
            + m.total_request_io_energy_j()
            + m.background().io_energy_j();
        assert!((cp.attributed_energy_j() - attributed).abs() < 1e-12);

        let mut fresh = ContainerManager::new(true);
        let force_released = fresh.restore(&cp, SimTime::from_millis(9));
        assert_eq!(force_released, 1);
        // Totals are exactly the journaled ones; the live container came
        // back as a record (its bound task died with the crash), so
        // nothing is live and nothing was double-freed.
        assert_eq!(fresh.live_count(), 0);
        assert_eq!(fresh.released_count(), 2);
        assert_eq!(fresh.records().len(), 2);
        assert!((fresh.total_request_energy_j() - m.total_request_energy_j()).abs() < 1e-12);
        assert!((fresh.total_request_io_energy_j() - 0.25).abs() < 1e-12);
        assert!((fresh.background().energy_j() - 0.5).abs() < 1e-12);
        let restored = fresh.records().iter().find(|r| r.ctx == live).unwrap();
        assert_eq!(restored.label, Some(7));
        assert!((restored.energy_j - 2.0).abs() < 1e-12);
        assert_eq!(restored.finished_at, SimTime::from_millis(9));
    }

    #[test]
    fn checkpoint_digest_is_stable_and_ordered() {
        let mut m = ContainerManager::new(false);
        // Insert in reverse id order; the digest must sort by ctx.
        for id in [9u64, 3, 5] {
            m.bind(ContextId(id), SimTime::ZERO);
            m.attribute(
                Some(ContextId(id)),
                id as f64,
                1.0,
                0.01,
                &events(1.0),
                SimTime::ZERO,
            );
        }
        let a = m.checkpoint(SimTime::from_millis(1));
        let b = m.checkpoint(SimTime::from_millis(1));
        assert_eq!(a.digest(), b.digest());
        let digest = a.digest();
        let lines: Vec<&str> = digest.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].contains("ctx=3") && lines[3].contains("ctx=9"));
    }

    #[test]
    fn empty_checkpoint_restores_to_nothing() {
        let mut fresh = ContainerManager::new(true);
        assert_eq!(fresh.restore(&ManagerCheckpoint::empty(), SimTime::ZERO), 0);
        assert_eq!(fresh.live_count(), 0);
        assert_eq!(fresh.released_count(), 0);
        assert_eq!(fresh.total_energy_with_background_j(), 0.0);
    }

    #[test]
    fn lifetime_metrics_reflect_events() {
        let mut m = ContainerManager::new(false);
        let ctx = ContextId(2);
        m.bind(ctx, SimTime::ZERO);
        m.attribute(Some(ctx), 1.0, 1.0, 0.001, &events(1000.0), SimTime::ZERO);
        let metrics = lifetime_metrics(m.get(ctx).unwrap());
        assert!((metrics.ins - 2.0).abs() < 1e-12);
    }
}
