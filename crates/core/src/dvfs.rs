//! A whole-machine DVFS power-capping governor.
//!
//! The paper's §3.4 argues that indiscriminate full-machine throttling
//! "would lead to slowdowns of all running requests regardless of their
//! power use" and builds per-request duty-cycle conditioning instead.
//! This module implements that strawman properly — a feedback governor
//! stepping every chip's DVFS operating point to hold measured power at
//! a target — so the comparison can be quantified (the `dvfs_capping`
//! experiment).

use hwsim::{ChipId, FreqScale, Machine};

/// Feedback governor: steps all chips slower while measured active power
/// exceeds the target, faster when comfortably below it.
///
/// # Example
///
/// ```
/// use power_containers::DvfsGovernor;
///
/// let g = DvfsGovernor::new(40.0);
/// assert_eq!(g.target_w(), 40.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsGovernor {
    target_w: f64,
    /// Hysteresis band: step up only below `target · (1 − band)`.
    band: f64,
}

impl DvfsGovernor {
    /// Creates a governor holding machine active power at `target_w`.
    ///
    /// # Panics
    ///
    /// Panics if the target is not positive.
    pub fn new(target_w: f64) -> DvfsGovernor {
        assert!(target_w > 0.0, "power target must be positive");
        DvfsGovernor { target_w, band: 0.06 }
    }

    /// The configured target.
    pub fn target_w(&self) -> f64 {
        self.target_w
    }

    /// One control step: adjusts every chip's operating point based on
    /// the latest measured active power. Returns the new operating point
    /// of chip 0 (all chips move together).
    pub fn adjust(&self, machine: &mut Machine, measured_active_w: f64) -> FreqScale {
        let chips = machine.spec().chips;
        for chip in 0..chips {
            let current = machine.chip_freq(ChipId(chip));
            let next = if measured_active_w > self.target_w {
                current.slower()
            } else if measured_active_w < self.target_w * (1.0 - self.band) {
                current.faster()
            } else {
                current
            };
            machine.set_chip_freq(ChipId(chip), next);
        }
        machine.chip_freq(ChipId(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwsim::MachineSpec;

    fn machine() -> Machine {
        Machine::new(MachineSpec::sandybridge(), 1)
    }

    #[test]
    fn steps_down_when_over_target() {
        let g = DvfsGovernor::new(40.0);
        let mut m = machine();
        let f = g.adjust(&mut m, 50.0);
        assert!(f.fraction() < 1.0);
    }

    #[test]
    fn steps_up_when_well_under_target() {
        let g = DvfsGovernor::new(40.0);
        let mut m = machine();
        m.set_chip_freq(ChipId(0), FreqScale::new(0.7).unwrap());
        let f = g.adjust(&mut m, 20.0);
        assert!(f.fraction() > 0.7);
    }

    #[test]
    fn holds_within_hysteresis_band() {
        let g = DvfsGovernor::new(40.0);
        let mut m = machine();
        m.set_chip_freq(ChipId(0), FreqScale::new(0.8).unwrap());
        let f = g.adjust(&mut m, 39.0); // inside (37.6, 40]
        assert!((f.fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn saturates_at_dvfs_floor() {
        let g = DvfsGovernor::new(1.0);
        let mut m = machine();
        for _ in 0..30 {
            g.adjust(&mut m, 100.0);
        }
        assert!((m.chip_freq(ChipId(0)).fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_target() {
        let _ = DvfsGovernor::new(-1.0);
    }
}
