//! The power model's feature vector.

use hwsim::CounterBlock;
use std::ops::{Add, AddAssign, Mul};

/// Number of features in the full model (Eq. 2 plus device utilizations).
pub const FEATURES: usize = 8;

/// The per-interval event metrics the paper's model consumes (§3.1):
/// core utilization, instructions/cycle, FLOPs/cycle, LLC refs/cycle,
/// memory transactions/cycle, the Eq. 3 chip power share, and disk/network
/// utilization for the full-system model.
///
/// A `MetricVector` always describes an *interval* (two counter snapshots),
/// never a cumulative state.
///
/// # Example
///
/// ```
/// use power_containers::MetricVector;
///
/// let mut m = MetricVector::default();
/// m.core = 1.0;
/// m.ins = 2.0;
/// let doubled = m * 2.0;
/// assert_eq!(doubled.ins, 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MetricVector {
    /// Non-halt cycles per elapsed cycle (`M_core`).
    pub core: f64,
    /// Retired instructions per elapsed cycle (`M_ins`).
    pub ins: f64,
    /// Floating-point operations per elapsed cycle (`M_float`).
    pub float: f64,
    /// Last-level-cache references per elapsed cycle (`M_cache`).
    pub cache: f64,
    /// Memory transactions per elapsed cycle (`M_mem`).
    pub mem: f64,
    /// Share of on-chip maintenance power (`M_chipshare`, Eq. 3).
    pub chipshare: f64,
    /// Disk active fraction (`M_disk`).
    pub disk: f64,
    /// Network active fraction (`M_net`).
    pub net: f64,
}

impl MetricVector {
    /// Builds the CPU metrics from a counter delta; `chipshare`, `disk`
    /// and `net` are left at zero for the caller to fill.
    pub fn from_counters(delta: &CounterBlock) -> MetricVector {
        MetricVector {
            core: delta.core_utilization(),
            ins: delta.ins_rate(),
            float: delta.flop_rate(),
            cache: delta.cache_rate(),
            mem: delta.mem_rate(),
            chipshare: 0.0,
            disk: 0.0,
            net: 0.0,
        }
    }

    /// The features as a fixed-order array (the regression layout).
    pub fn as_array(&self) -> [f64; FEATURES] {
        [
            self.core,
            self.ins,
            self.float,
            self.cache,
            self.mem,
            self.chipshare,
            self.disk,
            self.net,
        ]
    }

    /// Reconstructs a vector from the regression layout.
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != FEATURES`.
    pub fn from_slice(a: &[f64]) -> MetricVector {
        assert_eq!(a.len(), FEATURES, "feature count mismatch");
        MetricVector {
            core: a[0],
            ins: a[1],
            float: a[2],
            cache: a[3],
            mem: a[4],
            chipshare: a[5],
            disk: a[6],
            net: a[7],
        }
    }

    /// Human-readable feature names, aligned with [`MetricVector::as_array`].
    pub const NAMES: [&'static str; FEATURES] =
        ["core", "ins", "float", "cache", "mem", "chipshare", "disk", "net"];
}

impl Add for MetricVector {
    type Output = MetricVector;
    fn add(self, o: MetricVector) -> MetricVector {
        MetricVector {
            core: self.core + o.core,
            ins: self.ins + o.ins,
            float: self.float + o.float,
            cache: self.cache + o.cache,
            mem: self.mem + o.mem,
            chipshare: self.chipshare + o.chipshare,
            disk: self.disk + o.disk,
            net: self.net + o.net,
        }
    }
}

impl AddAssign for MetricVector {
    fn add_assign(&mut self, o: MetricVector) {
        *self = *self + o;
    }
}

impl Mul<f64> for MetricVector {
    type Output = MetricVector;
    fn mul(self, s: f64) -> MetricVector {
        MetricVector {
            core: self.core * s,
            ins: self.ins * s,
            float: self.float * s,
            cache: self.cache * s,
            mem: self.mem * s,
            chipshare: self.chipshare * s,
            disk: self.disk * s,
            net: self.net * s,
        }
    }
}

/// Counters of every graceful-degradation decision the facility takes
/// when its inputs misbehave (see [`crate::FacilityError`]). All zeros on
/// a clean run; each counter names the fallback that fired, so a
/// robustness sweep can attribute accuracy loss to specific fault
/// classes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradeStats {
    /// Counter samples rejected as physically impossible (negative or
    /// implausibly high event deltas) and resynchronized instead of
    /// attributed.
    pub samples_rejected: u64,
    /// Meter-window gaps observed in the report stream (dropped
    /// windows).
    pub meter_gaps: u64,
    /// Alignment scans rejected (low score, ambiguity, or too few
    /// readings) where the facility kept its previous delay estimate.
    pub align_fallbacks: u64,
    /// Model refits rejected (singular, ill-conditioned, or
    /// outlier-contaminated).
    pub refits_rejected: u64,
    /// Rejected refits where the facility kept serving the last good
    /// model.
    pub refit_fallbacks: u64,
    /// Times the last-good model exceeded its staleness bound and the
    /// recalibrator was reset to a clean accumulation window.
    pub stale_model_resets: u64,
    /// Cluster requests re-dispatched after a per-hop timeout or a node
    /// crash (recovery actions, not attribution degradations — excluded
    /// from [`DegradeStats::total`]).
    pub requests_retried: u64,
    /// Cluster requests shed by admission control or given up after
    /// exhausting their retry budget (also excluded from
    /// [`DegradeStats::total`]).
    pub requests_shed: u64,
    /// Model-drift detections: the estimate-vs-meter CUSUM tripped its
    /// threshold (adaptation triggers, not degradations — excluded from
    /// [`DegradeStats::total`]).
    pub drift_events: u64,
    /// Drift-triggered targeted retrains that produced an accepted fit
    /// (also excluded from [`DegradeStats::total`]).
    pub drift_retrains: u64,
    /// Model-bank slot switches after hysteresis confirmed a regime
    /// change (also excluded from [`DegradeStats::total`]).
    pub model_switches: u64,
    /// Bank slots quarantined after persistently diverging; quarantined
    /// slots serve the last-good fallback until a retrain is accepted
    /// (also excluded from [`DegradeStats::total`]).
    pub models_quarantined: u64,
}

impl DegradeStats {
    /// Total *attribution* degradation decisions of any kind. Cluster
    /// recovery actions ([`DegradeStats::requests_retried`],
    /// [`DegradeStats::requests_shed`]) are deliberate request-plane
    /// behavior and are reported separately.
    pub fn total(&self) -> u64 {
        self.samples_rejected
            + self.meter_gaps
            + self.align_fallbacks
            + self.refits_rejected
            + self.refit_fallbacks
            + self.stale_model_resets
    }

    /// `true` when the run never degraded.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }

    /// Total model-drift activity: refit rejections and fallbacks,
    /// staleness resets, and the bank's drift/switch/quarantine actions.
    /// Non-zero means the metering model was adapting (or failing to)
    /// during the run.
    pub fn drift_total(&self) -> u64 {
        self.refits_rejected
            + self.refit_fallbacks
            + self.stale_model_resets
            + self.drift_events
            + self.drift_retrains
            + self.model_switches
            + self.models_quarantined
    }

    /// Compact one-line rendering of the drift counters for status
    /// tables: `"-"` when nothing drifted, otherwise only the non-zero
    /// counters, e.g. `"rej:2 rst:1 det:4 sw:3"`.
    pub fn drift_column(&self) -> String {
        let parts = [
            ("rej", self.refits_rejected),
            ("fb", self.refit_fallbacks),
            ("rst", self.stale_model_resets),
            ("det", self.drift_events),
            ("ret", self.drift_retrains),
            ("sw", self.model_switches),
            ("q", self.models_quarantined),
        ];
        let s: Vec<String> = parts
            .iter()
            .filter(|(_, v)| *v > 0)
            .map(|(k, v)| format!("{k}:{v}"))
            .collect();
        if s.is_empty() {
            "-".to_string()
        } else {
            s.join(" ")
        }
    }
}

impl Add for DegradeStats {
    type Output = DegradeStats;
    fn add(self, o: DegradeStats) -> DegradeStats {
        DegradeStats {
            samples_rejected: self.samples_rejected + o.samples_rejected,
            meter_gaps: self.meter_gaps + o.meter_gaps,
            align_fallbacks: self.align_fallbacks + o.align_fallbacks,
            refits_rejected: self.refits_rejected + o.refits_rejected,
            refit_fallbacks: self.refit_fallbacks + o.refit_fallbacks,
            stale_model_resets: self.stale_model_resets + o.stale_model_resets,
            requests_retried: self.requests_retried + o.requests_retried,
            requests_shed: self.requests_shed + o.requests_shed,
            drift_events: self.drift_events + o.drift_events,
            drift_retrains: self.drift_retrains + o.drift_retrains,
            model_switches: self.model_switches + o.model_switches,
            models_quarantined: self.models_quarantined + o.models_quarantined,
        }
    }
}

impl AddAssign for DegradeStats {
    fn add_assign(&mut self, o: DegradeStats) {
        *self = *self + o;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrade_stats_total_and_clean() {
        let mut d = DegradeStats::default();
        assert!(d.is_clean());
        d.samples_rejected = 2;
        d.align_fallbacks = 1;
        assert_eq!(d.total(), 3);
        assert!(!d.is_clean());
    }

    #[test]
    fn degrade_stats_sum_fieldwise() {
        let a = DegradeStats { samples_rejected: 1, meter_gaps: 2, ..DegradeStats::default() };
        let b = DegradeStats { meter_gaps: 3, stale_model_resets: 4, ..DegradeStats::default() };
        let mut sum = a;
        sum += b;
        assert_eq!(sum.samples_rejected, 1);
        assert_eq!(sum.meter_gaps, 5);
        assert_eq!(sum.stale_model_resets, 4);
        assert_eq!(sum.total(), a.total() + b.total());
    }

    #[test]
    fn recovery_counters_sum_but_stay_out_of_total() {
        let a = DegradeStats { requests_retried: 3, meter_gaps: 1, ..DegradeStats::default() };
        let b = DegradeStats { requests_shed: 5, requests_retried: 2, ..DegradeStats::default() };
        let sum = a + b;
        assert_eq!(sum.requests_retried, 5);
        assert_eq!(sum.requests_shed, 5);
        // Recovery actions are request-plane behavior, not attribution
        // degradations: a run that only retried/shed still reads clean.
        assert_eq!(sum.total(), 1);
        assert!(DegradeStats { requests_shed: 9, ..DegradeStats::default() }.is_clean());
    }

    #[test]
    fn drift_counters_sum_and_stay_out_of_total() {
        let a = DegradeStats {
            drift_events: 2,
            model_switches: 1,
            refits_rejected: 1,
            ..DegradeStats::default()
        };
        let b = DegradeStats {
            drift_retrains: 3,
            models_quarantined: 1,
            ..DegradeStats::default()
        };
        let sum = a + b;
        assert_eq!(sum.drift_events, 2);
        assert_eq!(sum.drift_retrains, 3);
        assert_eq!(sum.model_switches, 1);
        assert_eq!(sum.models_quarantined, 1);
        // Only the refit rejection is an attribution degradation.
        assert_eq!(sum.total(), 1);
        assert_eq!(sum.drift_total(), 8);
    }

    #[test]
    fn drift_column_renders_non_zero_counters() {
        assert_eq!(DegradeStats::default().drift_column(), "-");
        let d = DegradeStats {
            refits_rejected: 2,
            stale_model_resets: 1,
            drift_events: 4,
            model_switches: 3,
            ..DegradeStats::default()
        };
        assert_eq!(d.drift_column(), "rej:2 rst:1 det:4 sw:3");
        // Plain degradations (meter gaps) don't leak into the column.
        let gaps = DegradeStats { meter_gaps: 7, ..DegradeStats::default() };
        assert_eq!(gaps.drift_column(), "-");
    }

    #[test]
    fn from_counters_computes_rates() {
        let delta = CounterBlock {
            elapsed_cycles: 1000.0,
            nonhalt_cycles: 500.0,
            instructions: 1500.0,
            flops: 100.0,
            cache_refs: 50.0,
            mem_txns: 25.0,
        };
        let m = MetricVector::from_counters(&delta);
        assert_eq!(m.core, 0.5);
        assert_eq!(m.ins, 1.5);
        assert_eq!(m.float, 0.1);
        assert_eq!(m.cache, 0.05);
        assert_eq!(m.mem, 0.025);
        assert_eq!(m.chipshare, 0.0);
    }

    #[test]
    fn array_round_trip() {
        let m = MetricVector {
            core: 1.0,
            ins: 2.0,
            float: 3.0,
            cache: 4.0,
            mem: 5.0,
            chipshare: 6.0,
            disk: 7.0,
            net: 8.0,
        };
        assert_eq!(MetricVector::from_slice(&m.as_array()), m);
    }

    #[test]
    fn arithmetic_is_elementwise() {
        let a = MetricVector { core: 1.0, ins: 2.0, ..MetricVector::default() };
        let b = MetricVector { core: 0.5, mem: 1.0, ..MetricVector::default() };
        let sum = a + b;
        assert_eq!(sum.core, 1.5);
        assert_eq!(sum.ins, 2.0);
        assert_eq!(sum.mem, 1.0);
        let scaled = sum * 2.0;
        assert_eq!(scaled.core, 3.0);
    }

    #[test]
    fn names_align_with_layout() {
        assert_eq!(MetricVector::NAMES.len(), FEATURES);
        assert_eq!(MetricVector::NAMES[5], "chipshare");
    }
}
