//! Offline model calibration (paper §4.1).
//!
//! Calibration runs a set of microbenchmarks that stress different parts
//! of the system at several load levels, records machine-level metric
//! vectors paired with measured power, and fits the model coefficients by
//! least-squares. Performed once per machine configuration; the result is
//! the starting point the §3.2 online recalibration later adjusts.

use crate::metrics::{MetricVector, FEATURES};
use crate::model::{ModelKind, PowerModel};
use analysis::linreg::{LeastSquares, SolveError};

/// One calibration observation: machine-aggregate metrics over an
/// interval, with the measured active power over the same interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationSample {
    /// Machine-level metric vector (per-core metrics summed over cores).
    pub metrics: MetricVector,
    /// Measured active (full minus idle) power in Watts.
    pub active_watts: f64,
}

/// A collection of calibration samples plus the measured idle power.
///
/// # Example
///
/// ```
/// use power_containers::{CalibrationSample, CalibrationSet, MetricVector, ModelKind};
///
/// let mut set = CalibrationSet::new(26.1);
/// for i in 1..=10 {
///     let util = i as f64 / 10.0;
///     set.push(CalibrationSample {
///         metrics: MetricVector { core: util, chipshare: 1.0, ..Default::default() },
///         active_watts: 8.0 * util + 5.6,
///     });
/// }
/// let model = set.fit(ModelKind::WithChipShare).unwrap();
/// assert!((model.coefficients()[0] - 8.0).abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct CalibrationSet {
    idle_w: f64,
    samples: Vec<CalibrationSample>,
}

impl CalibrationSet {
    /// Creates an empty set with the measured idle power (the model's
    /// `C_idle`).
    pub fn new(idle_w: f64) -> CalibrationSet {
        CalibrationSet { idle_w, samples: Vec::new() }
    }

    /// Measured idle power.
    pub fn idle_w(&self) -> f64 {
        self.idle_w
    }

    /// Adds one sample.
    pub fn push(&mut self, sample: CalibrationSample) {
        self.samples.push(sample);
    }

    /// The samples collected so far.
    pub fn samples(&self) -> &[CalibrationSample] {
        &self.samples
    }

    /// Builds the least-squares accumulator for `kind` over these samples
    /// — shared with the online recalibrator, which folds its own samples
    /// into a clone of this accumulator ("weighed equally", §3.2).
    pub fn accumulator(&self, kind: ModelKind) -> LeastSquares {
        let mut ls = LeastSquares::with_ridge(FEATURES, 1e-6);
        for s in &self.samples {
            let m = PowerModel::mask_metrics(kind, s.metrics);
            ls.add_sample(&m.as_array(), s.active_watts, 1.0);
        }
        ls
    }

    /// Fits the model coefficients by least-squares.
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError`] when the sample set cannot determine the
    /// coefficients.
    pub fn fit(&self, kind: ModelKind) -> Result<PowerModel, SolveError> {
        let beta = self.accumulator(kind).solve()?;
        let mut coeffs = [0.0; FEATURES];
        coeffs.copy_from_slice(&beta);
        Ok(PowerModel::new(kind, self.idle_w, coeffs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Generates samples from a known linear law and checks recovery.
    fn synthetic_set() -> CalibrationSet {
        let mut set = CalibrationSet::new(20.0);
        let truth = [8.0, 3.0, 1.5, 3.5, 2.0, 5.6, 1.7, 5.8];
        // Vary each feature independently plus mixtures.
        let mut idx = 0usize;
        for level in [0.25, 0.5, 0.75, 1.0] {
            for f in 0..FEATURES {
                let mut a = [0.0; FEATURES];
                a[0] = level; // core utilization accompanies everything
                a[f] = level;
                a[5] = 1.0; // chip maintenance present whenever busy
                let m = MetricVector::from_slice(&a);
                let watts: f64 = a.iter().zip(truth).map(|(x, c)| x * c).sum();
                set.push(CalibrationSample { metrics: m, active_watts: watts });
                idx += 1;
            }
        }
        assert!(idx >= FEATURES);
        set
    }

    #[test]
    fn recovers_known_coefficients() {
        let set = synthetic_set();
        let model = set.fit(ModelKind::WithChipShare).unwrap();
        let truth = [8.0, 3.0, 1.5, 3.5, 2.0, 5.6, 1.7, 5.8];
        for (i, (got, want)) in model.coefficients().iter().zip(truth).enumerate() {
            assert!((got - want).abs() < 1e-3, "coefficient {i}: {got} vs {want}");
        }
        assert_eq!(model.idle_w(), 20.0);
    }

    #[test]
    fn core_only_fit_absorbs_maintenance_into_other_terms() {
        let set = synthetic_set();
        let model = set.fit(ModelKind::CoreEventsOnly).unwrap();
        // The chip-share coefficient is unavailable to Approach #1 ...
        assert_eq!(model.coefficients()[5], 0.0);
        // ... so its power ends up smeared into the remaining terms: the
        // core coefficient is biased upward relative to the truth.
        assert!(model.coefficients()[0] > 8.0 + 1.0);
    }

    #[test]
    fn underdetermined_set_errors() {
        let mut set = CalibrationSet::new(0.0);
        set.push(CalibrationSample {
            metrics: MetricVector::default(),
            active_watts: 0.0,
        });
        // All-zero features: even ridge keeps coefficients at zero, but a
        // singular/ill-posed fit must not panic.
        let model = set.fit(ModelKind::WithChipShare).unwrap();
        assert!(model.coefficients().iter().all(|c| c.abs() < 1e-9));
    }

    #[test]
    fn accumulator_masks_chipshare_for_core_only() {
        let set = synthetic_set();
        let ls = set.accumulator(ModelKind::CoreEventsOnly);
        // Fitting with the masked accumulator gives a zero chip-share
        // coefficient (feature never varies → ridge pins it to zero).
        let beta = ls.solve().unwrap();
        assert!(beta[5].abs() < 1e-9);
    }
}
