//! CPU duty-cycle modulation.

use std::fmt;

/// A per-core duty-cycle level in eighths, mirroring the Intel
/// clock-modulation facility the paper uses for throttling (§3.4): during
/// each modulation window the core executes for `level/8` of the time and
/// is effectively halted for the rest, issuing no memory operations.
///
/// The paper relies on the approximately linear relationship between the
/// duty-cycle level and active power, and on the level being independently
/// settable per core; both properties hold here by construction.
///
/// # Example
///
/// ```
/// use hwsim::DutyCycle;
///
/// let full = DutyCycle::FULL;
/// assert_eq!(full.fraction(), 1.0);
/// let half = DutyCycle::new(4).unwrap();
/// assert_eq!(half.fraction(), 0.5);
/// assert_eq!(half.to_string(), "4/8");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DutyCycle(u8);

impl DutyCycle {
    /// Full speed (8/8).
    pub const FULL: DutyCycle = DutyCycle(8);
    /// The lowest level the hardware supports (1/8).
    pub const MIN: DutyCycle = DutyCycle(1);

    /// Creates a duty-cycle level of `eighths/8`.
    ///
    /// Returns `None` unless `1 <= eighths <= 8` (level 0 would halt the
    /// core entirely, which the hardware does not offer).
    pub fn new(eighths: u8) -> Option<DutyCycle> {
        (1..=8).contains(&eighths).then_some(DutyCycle(eighths))
    }

    /// The level in eighths (1..=8).
    pub const fn eighths(self) -> u8 {
        self.0
    }

    /// The executed fraction of cycles, in `(0, 1]`.
    pub fn fraction(self) -> f64 {
        f64::from(self.0) / 8.0
    }

    /// The largest duty-cycle level whose fraction does not exceed
    /// `fraction`, flooring at 1/8. Used by the conditioning policy to turn
    /// a computed speed budget into a hardware setting.
    pub fn at_most(fraction: f64) -> DutyCycle {
        let eighths = (fraction * 8.0).floor() as i64;
        DutyCycle(eighths.clamp(1, 8) as u8)
    }

    /// One level slower, saturating at [`DutyCycle::MIN`].
    pub fn slower(self) -> DutyCycle {
        DutyCycle(self.0.saturating_sub(1).max(1))
    }

    /// One level faster, saturating at [`DutyCycle::FULL`].
    pub fn faster(self) -> DutyCycle {
        DutyCycle((self.0 + 1).min(8))
    }
}

impl Default for DutyCycle {
    fn default() -> DutyCycle {
        DutyCycle::FULL
    }
}

impl fmt::Display for DutyCycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/8", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_validates_range() {
        assert!(DutyCycle::new(0).is_none());
        assert!(DutyCycle::new(9).is_none());
        assert_eq!(DutyCycle::new(8), Some(DutyCycle::FULL));
        assert_eq!(DutyCycle::new(1), Some(DutyCycle::MIN));
    }

    #[test]
    fn fraction_is_linear_in_level() {
        for e in 1..=8u8 {
            let d = DutyCycle::new(e).unwrap();
            assert!((d.fraction() - f64::from(e) / 8.0).abs() < 1e-12);
        }
    }

    #[test]
    fn at_most_floors() {
        assert_eq!(DutyCycle::at_most(1.0), DutyCycle::FULL);
        assert_eq!(DutyCycle::at_most(0.99), DutyCycle::new(7).unwrap());
        assert_eq!(DutyCycle::at_most(0.5), DutyCycle::new(4).unwrap());
        assert_eq!(DutyCycle::at_most(0.0), DutyCycle::MIN);
        assert_eq!(DutyCycle::at_most(-3.0), DutyCycle::MIN);
        assert_eq!(DutyCycle::at_most(42.0), DutyCycle::FULL);
    }

    #[test]
    fn slower_faster_saturate() {
        assert_eq!(DutyCycle::MIN.slower(), DutyCycle::MIN);
        assert_eq!(DutyCycle::FULL.faster(), DutyCycle::FULL);
        assert_eq!(DutyCycle::FULL.slower().eighths(), 7);
        assert_eq!(DutyCycle::MIN.faster().eighths(), 2);
    }

    #[test]
    fn ordering_follows_level() {
        assert!(DutyCycle::MIN < DutyCycle::FULL);
    }
}
