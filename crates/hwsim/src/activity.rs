//! Activity profiles: what a running task does to the hardware.

/// Peak per-cycle event rates used to convert normalized intensities into
/// raw counter increments. These mirror rough microarchitectural limits
/// (4-wide issue, 2 FLOPs/cycle, and so on); their absolute values are
/// irrelevant to the linear power model, which learns coefficients in
/// whatever unit the counters use.
pub(crate) mod caps {
    /// Max retired instructions per non-halt cycle.
    pub const INS_PER_CYCLE: f64 = 4.0;
    /// Max floating-point operations per non-halt cycle.
    pub const FLOPS_PER_CYCLE: f64 = 2.0;
    /// Max last-level-cache references per non-halt cycle.
    pub const CACHE_PER_CYCLE: f64 = 0.10;
    /// Max memory transactions per non-halt cycle.
    pub const MEM_PER_CYCLE: f64 = 0.05;
}

/// Normalized description of the hardware activity a task generates while
/// running on a core.
///
/// Each field is an intensity in `[0, 1]`: the fraction of the
/// corresponding unit's peak per-cycle event rate that the task sustains.
/// A profile says nothing about *how long* the task runs — the OS layer
/// decides that; the machine multiplies intensities by elapsed non-halt
/// cycles to produce counter increments.
///
/// # Example
///
/// ```
/// use hwsim::ActivityProfile;
///
/// let spin = ActivityProfile::cpu_spin();
/// let mem = ActivityProfile::memory_bound();
/// assert!(mem.mem > spin.mem);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ActivityProfile {
    /// Instruction-retirement intensity.
    pub ins: f64,
    /// Floating-point intensity.
    pub flops: f64,
    /// Last-level-cache reference intensity.
    pub cache: f64,
    /// Memory-transaction intensity.
    pub mem: f64,
}

impl ActivityProfile {
    /// Creates a profile from the four intensities, clamping each into
    /// `[0, 1]`.
    pub fn new(ins: f64, flops: f64, cache: f64, mem: f64) -> ActivityProfile {
        ActivityProfile {
            ins: ins.clamp(0.0, 1.0),
            flops: flops.clamp(0.0, 1.0),
            cache: cache.clamp(0.0, 1.0),
            mem: mem.clamp(0.0, 1.0),
        }
    }

    /// A raw CPU spin: the core is busy but retires few instructions and
    /// touches no memory (the paper's baseline calibration microbenchmark).
    pub fn cpu_spin() -> ActivityProfile {
        ActivityProfile::new(0.15, 0.0, 0.005, 0.0)
    }

    /// A high-instruction-rate integer loop.
    pub fn high_ipc() -> ActivityProfile {
        ActivityProfile::new(0.95, 0.02, 0.01, 0.0)
    }

    /// A floating-point-saturating loop.
    pub fn float_heavy() -> ActivityProfile {
        ActivityProfile::new(0.60, 0.95, 0.01, 0.0)
    }

    /// A last-level-cache-thrashing loop.
    pub fn cache_heavy() -> ActivityProfile {
        ActivityProfile::new(0.40, 0.02, 0.90, 0.10)
    }

    /// A memory-bandwidth-bound loop.
    pub fn memory_bound() -> ActivityProfile {
        ActivityProfile::new(0.30, 0.02, 0.70, 0.95)
    }

    /// The "Stress" workload shape: core, floating-point, cache and memory
    /// units all simultaneously busy (Adler-32 over a large buffer with
    /// added FP ops). This is the kind of unusually-high-power behaviour
    /// offline calibration underestimates.
    pub fn stress() -> ActivityProfile {
        ActivityProfile::new(0.85, 0.75, 0.80, 0.85)
    }

    /// An idle placeholder (all zeros); a core running this still counts as
    /// busy for chip-maintenance purposes, unlike a core with no profile.
    pub fn quiescent() -> ActivityProfile {
        ActivityProfile::new(0.0, 0.0, 0.0, 0.0)
    }

    /// Linear blend of two profiles: `self * (1-t) + other * t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is outside `[0, 1]`.
    pub fn blend(&self, other: &ActivityProfile, t: f64) -> ActivityProfile {
        assert!((0.0..=1.0).contains(&t), "blend factor out of range: {t}");
        ActivityProfile::new(
            self.ins * (1.0 - t) + other.ins * t,
            self.flops * (1.0 - t) + other.flops * t,
            self.cache * (1.0 - t) + other.cache * t,
            self.mem * (1.0 - t) + other.mem * t,
        )
    }

    /// Scales all intensities by `factor` (clamped into range).
    pub fn scaled(&self, factor: f64) -> ActivityProfile {
        ActivityProfile::new(
            self.ins * factor,
            self.flops * factor,
            self.cache * factor,
            self.mem * factor,
        )
    }
}

/// Peripheral device classes whose power the full-system accounting covers
/// (paper §3.3: "power-consuming peripheral devices for disk and network
/// I/O").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Disk subsystem.
    Disk,
    /// Network interface.
    Net,
}

impl DeviceKind {
    /// Both device kinds, for iteration.
    pub const ALL: [DeviceKind; 2] = [DeviceKind::Disk, DeviceKind::Net];

    /// Stable index for array storage.
    pub const fn index(self) -> usize {
        match self {
            DeviceKind::Disk => 0,
            DeviceKind::Net => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_clamps_out_of_range() {
        let p = ActivityProfile::new(2.0, -1.0, 0.5, 1.5);
        assert_eq!(p.ins, 1.0);
        assert_eq!(p.flops, 0.0);
        assert_eq!(p.cache, 0.5);
        assert_eq!(p.mem, 1.0);
    }

    #[test]
    fn presets_are_in_range() {
        for p in [
            ActivityProfile::cpu_spin(),
            ActivityProfile::high_ipc(),
            ActivityProfile::float_heavy(),
            ActivityProfile::cache_heavy(),
            ActivityProfile::memory_bound(),
            ActivityProfile::stress(),
            ActivityProfile::quiescent(),
        ] {
            for v in [p.ins, p.flops, p.cache, p.mem] {
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn blend_endpoints() {
        let a = ActivityProfile::cpu_spin();
        let b = ActivityProfile::stress();
        assert_eq!(a.blend(&b, 0.0), a);
        assert_eq!(a.blend(&b, 1.0), b);
        let mid = a.blend(&b, 0.5);
        assert!((mid.mem - (a.mem + b.mem) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn scaled_halves_intensity() {
        let p = ActivityProfile::high_ipc().scaled(0.5);
        assert!((p.ins - 0.475).abs() < 1e-12);
    }

    #[test]
    fn device_indices_are_distinct() {
        assert_ne!(DeviceKind::Disk.index(), DeviceKind::Net.index());
        assert_eq!(DeviceKind::ALL.len(), 2);
    }
}
