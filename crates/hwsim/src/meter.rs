//! Power meters with windowed integration and delivery delay.
//!
//! The paper uses two measurement instruments: the SandyBridge on-chip
//! energy meter (1 ms energy accumulation, read with ≈1 ms effective lag)
//! and a Wattsup wall-power meter (1 s reports delivered ≈1.2 s late over
//! USB). Both are *integrating* meters: each report is the average power
//! over a window, and the report only becomes visible to software some
//! delay after the window closes. The alignment machinery of §3.2 exists
//! precisely because of that delay.

use simkern::{SimDuration, SimTime};
use std::collections::VecDeque;

/// What a meter measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeterScope {
    /// Processor package(s) only: package idle + core/uncore active power.
    Package,
    /// The whole machine: platform idle + packages + peripheral devices.
    Machine,
}

/// Identifies one meter on a machine (index into the machine's meter list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MeterId(pub usize);

/// Static description of a power meter.
#[derive(Debug, Clone, PartialEq)]
pub struct MeterSpec {
    /// Human-readable name.
    pub name: &'static str,
    /// What the meter measures.
    pub scope: MeterScope,
    /// Length of each integration window.
    pub period: SimDuration,
    /// Delay between a window closing and its report becoming visible.
    pub delay: SimDuration,
    /// Multiplicative Gaussian measurement noise (standard deviation as a
    /// fraction of the reading).
    pub noise_frac: f64,
}

impl MeterSpec {
    /// The SandyBridge-style on-chip package meter: 1 ms windows, 1 ms
    /// delivery delay, very low noise.
    pub fn on_chip() -> MeterSpec {
        MeterSpec {
            name: "on-chip",
            scope: MeterScope::Package,
            period: SimDuration::from_millis(1),
            delay: SimDuration::from_millis(1),
            noise_frac: 0.004,
        }
    }

    /// The Wattsup-style external meter: whole-machine power, 1 s windows,
    /// 1.2 s delivery delay through the USB interface.
    pub fn wattsup() -> MeterSpec {
        MeterSpec {
            name: "wattsup",
            scope: MeterScope::Machine,
            period: SimDuration::from_secs(1),
            delay: SimDuration::from_millis(1200),
            noise_frac: 0.01,
        }
    }
}

/// One completed measurement window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeterReport {
    /// When the window opened.
    pub window_start: SimTime,
    /// When the window closed.
    pub window_end: SimTime,
    /// Average power over the window, in Watts (noise included).
    pub avg_watts: f64,
    /// When the report becomes visible to software.
    pub visible_at: SimTime,
}

/// Runtime state of one meter: the open integration window plus reports
/// whose delivery delay has not yet elapsed.
#[derive(Debug, Clone)]
pub(crate) struct MeterState {
    pub spec: MeterSpec,
    window_start: SimTime,
    energy_j: f64,
    pending: VecDeque<MeterReport>,
}

impl MeterState {
    pub fn new(spec: MeterSpec) -> MeterState {
        MeterState {
            spec,
            window_start: SimTime::ZERO,
            energy_j: 0.0,
            pending: VecDeque::new(),
        }
    }

    /// The instant the current window closes.
    pub fn window_end(&self) -> SimTime {
        self.window_start + self.spec.period
    }

    /// Integrates `watts` over `dt` into the open window.
    pub fn integrate(&mut self, watts: f64, dt: SimDuration) {
        self.energy_j += watts * dt.as_secs_f64();
    }

    /// Closes the current window at `now` (which must equal
    /// [`MeterState::window_end`]), emitting a report with the given
    /// multiplicative noise factor applied.
    pub fn close_window(&mut self, now: SimTime, noise_factor: f64) {
        debug_assert_eq!(now, self.window_end(), "window closed at wrong instant");
        let secs = self.spec.period.as_secs_f64();
        let avg = if secs > 0.0 { self.energy_j / secs } else { 0.0 };
        self.pending.push_back(MeterReport {
            window_start: self.window_start,
            window_end: now,
            avg_watts: (avg * noise_factor).max(0.0),
            visible_at: now + self.spec.delay,
        });
        self.window_start = now;
        self.energy_j = 0.0;
    }

    /// Discards the most recently closed, still-undelivered report —
    /// fault injection's meter dropout. Returns `false` when nothing was
    /// pending.
    pub fn drop_last_pending(&mut self) -> bool {
        self.pending.pop_back().is_some()
    }

    /// Postpones the most recently closed, still-undelivered report by
    /// `extra` — fault injection's extra delivery lag. Reports are
    /// delivered in window order, so a delayed report also holds back
    /// any windows closed after it (in-order transport, as on a USB
    /// meter link).
    pub fn delay_last_pending(&mut self, extra: SimDuration) {
        if let Some(r) = self.pending.back_mut() {
            r.visible_at += extra;
        }
    }

    /// Removes and returns every report visible at or before `now`, in
    /// window order.
    pub fn pop_visible(&mut self, now: SimTime) -> Vec<MeterReport> {
        let mut out = Vec::new();
        while let Some(front) = self.pending.front() {
            if front.visible_at <= now {
                out.push(self.pending.pop_front().expect("front checked"));
            } else {
                break;
            }
        }
        out
    }

    /// Number of reports still awaiting delivery.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_power_integrates_to_average() {
        let mut m = MeterState::new(MeterSpec::on_chip());
        m.integrate(30.0, SimDuration::from_millis(1));
        m.close_window(SimTime::from_millis(1), 1.0);
        let reports = m.pop_visible(SimTime::from_millis(2));
        assert_eq!(reports.len(), 1);
        assert!((reports[0].avg_watts - 30.0).abs() < 1e-9);
    }

    #[test]
    fn reports_stay_hidden_until_delay_elapses() {
        let mut m = MeterState::new(MeterSpec::wattsup());
        m.integrate(100.0, SimDuration::from_secs(1));
        m.close_window(SimTime::from_secs(1), 1.0);
        assert!(m.pop_visible(SimTime::from_millis(2100)).is_empty());
        let reports = m.pop_visible(SimTime::from_millis(2200));
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].visible_at, SimTime::from_millis(2200));
    }

    #[test]
    fn partial_window_integration_accumulates() {
        let mut m = MeterState::new(MeterSpec::on_chip());
        m.integrate(10.0, SimDuration::from_micros(500));
        m.integrate(50.0, SimDuration::from_micros(500));
        m.close_window(SimTime::from_millis(1), 1.0);
        let r = m.pop_visible(SimTime::from_millis(5)).remove(0);
        assert!((r.avg_watts - 30.0).abs() < 1e-9);
    }

    #[test]
    fn windows_advance_back_to_back() {
        let mut m = MeterState::new(MeterSpec::on_chip());
        m.close_window(SimTime::from_millis(1), 1.0);
        assert_eq!(m.window_end(), SimTime::from_millis(2));
        m.close_window(SimTime::from_millis(2), 1.0);
        assert_eq!(m.pending_len(), 2);
    }

    #[test]
    fn noise_factor_scales_reading() {
        let mut m = MeterState::new(MeterSpec::on_chip());
        m.integrate(40.0, SimDuration::from_millis(1));
        m.close_window(SimTime::from_millis(1), 1.05);
        let r = m.pop_visible(SimTime::MAX).remove(0);
        assert!((r.avg_watts - 42.0).abs() < 1e-9);
    }

    #[test]
    fn negative_noise_floors_at_zero() {
        let mut m = MeterState::new(MeterSpec::on_chip());
        m.integrate(40.0, SimDuration::from_millis(1));
        m.close_window(SimTime::from_millis(1), -1.0);
        let r = m.pop_visible(SimTime::MAX).remove(0);
        assert_eq!(r.avg_watts, 0.0);
    }
}
