//! Machine specifications for the paper's three evaluation platforms.

use crate::meter::MeterSpec;
use crate::power::GroundTruthPower;
use simkern::SimDuration;

/// Identifies one multicore chip (processor package / socket) on a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChipId(pub usize);

/// Static description of a simulated machine: topology, clock frequency,
/// the hidden ground-truth power law, and the power meters attached to it.
///
/// The three presets mirror the paper's evaluation platforms (§4):
///
/// | Preset | Processor | Topology | Released |
/// |---|---|---|---|
/// | [`MachineSpec::woodcrest`] | 2 × Xeon 5160, 3.0 GHz | 2 chips × 2 cores | 2006 |
/// | [`MachineSpec::westmere`] | 2 × Xeon L5640, 2.26 GHz | 2 chips × 6 cores | 2010 |
/// | [`MachineSpec::sandybridge`] | Xeon E31220, 3.1 GHz | 1 chip × 4 cores | 2011 |
#[derive(Debug, Clone)]
pub struct MachineSpec {
    /// Human-readable name ("sandybridge", ...).
    pub name: &'static str,
    /// Number of processor packages (sockets).
    pub chips: usize,
    /// Cores per package.
    pub cores_per_chip: usize,
    /// Core clock frequency in GHz; also the rate at which elapsed-cycle
    /// counters advance.
    pub freq_ghz: f64,
    /// The hidden physical power behaviour (never exposed to the model).
    pub truth: GroundTruthPower,
    /// Power meters attached to this machine.
    pub meters: Vec<MeterSpec>,
    /// Cycle-count multiplier for compute-dominated work relative to the
    /// newest machine: older microarchitectures need more cycles for the
    /// same request (no wide issue, no crypto extensions, ...).
    pub compute_scale: f64,
    /// Cycle-count multiplier for memory-dominated work; DRAM latency
    /// improved far less across the paper's machine generations, which is
    /// what creates the workload-specific cross-machine energy affinity of
    /// Fig. 13.
    pub mem_scale: f64,
}

impl MachineSpec {
    /// Total core count.
    pub fn total_cores(&self) -> usize {
        self.chips * self.cores_per_chip
    }

    /// The chip that `core` (flat index) belongs to.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn chip_of(&self, core: usize) -> ChipId {
        assert!(core < self.total_cores(), "core {core} out of range");
        ChipId(core / self.cores_per_chip)
    }

    /// Flat indices of all cores on `chip`.
    pub fn cores_of(&self, chip: ChipId) -> std::ops::Range<usize> {
        let start = chip.0 * self.cores_per_chip;
        start..start + self.cores_per_chip
    }

    /// Cycles elapsed in a wall-clock duration at this machine's frequency.
    pub fn cycles_in(&self, d: SimDuration) -> f64 {
        self.freq_ghz * d.as_nanos() as f64
    }

    /// Wall-clock duration needed for `cycles` cycles at full speed.
    pub fn duration_of_cycles(&self, cycles: f64) -> SimDuration {
        SimDuration::from_secs_f64(cycles / (self.freq_ghz * 1e9))
    }

    /// The cycle-count multiplier this machine applies to work with the
    /// given activity mix: a blend of [`MachineSpec::compute_scale`] and
    /// [`MachineSpec::mem_scale`] weighted by the profile's memory
    /// intensity. DRAM-bound work sees little generational speedup (its
    /// runtime is stall-dominated), while compute-bound work sees the
    /// full microarchitectural gap — the source of Fig. 13's spread.
    pub fn work_scale(&self, profile: &crate::ActivityProfile) -> f64 {
        let w = profile.mem.clamp(0.0, 1.0);
        self.compute_scale * (1.0 - w) + self.mem_scale * w
    }

    /// Machine-generation rank: lower is newer (more energy-efficient per
    /// unit of work). Unknown machines rank oldest. This is the default
    /// value of the [`crate::Machine::generation`] regime signal.
    pub fn generation_rank(&self) -> u32 {
        match self.name {
            "sandybridge" => 0,
            "westmere" => 1,
            _ => 2,
        }
    }

    /// The quad-core SandyBridge machine (Xeon E31220, 3.1 GHz), with both
    /// an on-chip package meter (1 ms windows, 1 ms delay) and an external
    /// whole-machine meter (1 s windows, 1.2 s delay).
    pub fn sandybridge() -> MachineSpec {
        MachineSpec {
            name: "sandybridge",
            chips: 1,
            cores_per_chip: 4,
            freq_ghz: 3.1,
            truth: GroundTruthPower::sandybridge(),
            meters: vec![MeterSpec::on_chip(), MeterSpec::wattsup()],
            compute_scale: 1.0,
            mem_scale: 1.0,
        }
    }

    /// The dual-socket dual-core Woodcrest machine (2 × Xeon 5160, 3.0
    /// GHz), with only an external Wattsup-style meter.
    pub fn woodcrest() -> MachineSpec {
        MachineSpec {
            name: "woodcrest",
            chips: 2,
            cores_per_chip: 2,
            freq_ghz: 3.0,
            truth: GroundTruthPower::woodcrest(),
            meters: vec![MeterSpec::wattsup()],
            compute_scale: 2.8,
            mem_scale: 1.05,
        }
    }

    /// The dual-socket six-core Westmere machine (2 × Xeon L5640, 2.26
    /// GHz), with only an external Wattsup-style meter.
    pub fn westmere() -> MachineSpec {
        MachineSpec {
            name: "westmere",
            chips: 2,
            cores_per_chip: 6,
            freq_ghz: 2.26,
            truth: GroundTruthPower::westmere(),
            meters: vec![MeterSpec::wattsup()],
            compute_scale: 1.15,
            mem_scale: 0.95,
        }
    }

    /// All three evaluation machines, in the paper's order.
    pub fn all_machines() -> Vec<MachineSpec> {
        vec![
            MachineSpec::woodcrest(),
            MachineSpec::westmere(),
            MachineSpec::sandybridge(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_matches_paper() {
        let wc = MachineSpec::woodcrest();
        assert_eq!(wc.total_cores(), 4);
        assert_eq!(wc.chips, 2);
        let wm = MachineSpec::westmere();
        assert_eq!(wm.total_cores(), 12);
        let sb = MachineSpec::sandybridge();
        assert_eq!(sb.total_cores(), 4);
        assert_eq!(sb.chips, 1);
    }

    #[test]
    fn chip_of_partitions_cores() {
        let wc = MachineSpec::woodcrest();
        assert_eq!(wc.chip_of(0), ChipId(0));
        assert_eq!(wc.chip_of(1), ChipId(0));
        assert_eq!(wc.chip_of(2), ChipId(1));
        assert_eq!(wc.chip_of(3), ChipId(1));
        assert_eq!(wc.cores_of(ChipId(1)), 2..4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn chip_of_rejects_bad_core() {
        MachineSpec::sandybridge().chip_of(4);
    }

    #[test]
    fn cycles_round_trip() {
        let sb = MachineSpec::sandybridge();
        let d = SimDuration::from_millis(2);
        let cycles = sb.cycles_in(d);
        assert!((cycles - 6.2e6).abs() < 1.0);
        let back = sb.duration_of_cycles(cycles);
        assert!((back.as_millis_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn sandybridge_has_on_chip_meter() {
        let sb = MachineSpec::sandybridge();
        assert_eq!(sb.meters.len(), 2);
        let wc = MachineSpec::woodcrest();
        assert_eq!(wc.meters.len(), 1);
    }
}
