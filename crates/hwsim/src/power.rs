//! The hidden ground-truth power law.
//!
//! Real silicon does not obey the linear counter model of the paper's Eq. 2
//! exactly — that is the entire point of §3.2's online recalibration. This
//! module defines what power the simulated machines *actually* draw. The
//! OS-level power-container model never reads these parameters; it only
//! sees hardware counters and delayed meter reports.
//!
//! The law contains three effects the paper discusses:
//!
//! 1. **Per-core activity power** that is linear in the activity
//!    intensities and in the duty-cycle fraction (matching the paper's
//!    observation that duty-cycle level relates approximately linearly to
//!    active power).
//! 2. **Shared chip-maintenance power** drawn by each package while at
//!    least one of its cores is unhalted (clock distribution, voltage
//!    regulators, uncore — Fig. 1's "first core costs more" step).
//! 3. **A co-activity interaction term** — extra power drawn when the
//!    memory subsystem and the instruction pipeline are *simultaneously*
//!    saturated, as in the Stress workload and the GAE power virus. Linear
//!    models calibrated on one-dimensional microbenchmarks systematically
//!    miss this, reproducing the paper's finding that recalibration is
//!    "particularly effective … for high-power workloads like Stress".

use crate::activity::ActivityProfile;
use crate::DutyCycle;

/// Ground-truth power parameters for one machine. All values are Watts
/// except where noted.
#[derive(Debug, Clone, PartialEq)]
pub struct GroundTruthPower {
    /// Constant platform power outside the processor packages (fans, PSU
    /// loss, chipset, idle disks). Visible only to whole-machine meters.
    pub platform_idle_w: f64,
    /// Idle power of all processor packages combined (visible to the
    /// on-chip meter; small on SandyBridge — the paper reports ~5% of
    /// package power).
    pub pkg_idle_w: f64,
    /// Shared maintenance power per chip while any of its cores is busy.
    pub chip_maintenance_w: f64,
    /// Power of one busy core at full duty, independent of activity.
    pub core_w: f64,
    /// Additional per-core power at instruction intensity 1.0.
    pub ins_w: f64,
    /// Additional per-core power at floating-point intensity 1.0.
    pub flop_w: f64,
    /// Additional per-core power at cache intensity 1.0.
    pub cache_w: f64,
    /// Additional per-core power at memory intensity 1.0.
    pub mem_w: f64,
    /// Co-activity interaction power at full memory *and* pipeline
    /// saturation (per core).
    pub coact_w: f64,
    /// Disk subsystem active power.
    pub disk_w: f64,
    /// Network interface active power.
    pub net_w: f64,
}

impl GroundTruthPower {
    /// Active power of one core running `profile` at duty-cycle `duty`.
    ///
    /// Returns 0.0 for a halted core (no profile).
    pub fn core_active_power(&self, profile: Option<&ActivityProfile>, duty: DutyCycle) -> f64 {
        let Some(p) = profile else { return 0.0 };
        let coact = p.mem * p.ins.max(p.flops);
        duty.fraction()
            * (self.core_w
                + self.ins_w * p.ins
                + self.flop_w * p.flops
                + self.cache_w * p.cache
                + self.mem_w * p.mem
                + self.coact_w * coact)
    }

    /// Whole-machine idle power (platform + packages).
    pub fn machine_idle_w(&self) -> f64 {
        self.platform_idle_w + self.pkg_idle_w
    }

    /// SandyBridge parameters, tuned so that the §4.1 calibration on this
    /// machine recovers approximately the paper's reported coefficient
    /// maxima (machine idle 26.1 W, `C_core·M_max` ≈ 33 W over four cores,
    /// chip share ≈ 5.6 W, ...).
    pub fn sandybridge() -> GroundTruthPower {
        GroundTruthPower {
            platform_idle_w: 24.6,
            pkg_idle_w: 1.5,
            chip_maintenance_w: 5.6,
            core_w: 8.3,
            ins_w: 3.1,
            flop_w: 1.5,
            cache_w: 3.5,
            mem_w: 2.1,
            coact_w: 6.0,
            disk_w: 1.7,
            net_w: 5.8,
        }
    }

    /// Woodcrest (2006, 65 nm): poor energy proportionality — high idle,
    /// expensive cores, comparatively cheap memory-side power.
    pub fn woodcrest() -> GroundTruthPower {
        GroundTruthPower {
            platform_idle_w: 148.0,
            pkg_idle_w: 24.0,
            chip_maintenance_w: 8.0,
            core_w: 9.5,
            ins_w: 6.5,
            flop_w: 4.0,
            cache_w: 1.5,
            mem_w: 1.5,
            coact_w: 0.5,
            disk_w: 2.5,
            net_w: 5.0,
        }
    }

    /// Westmere (2010, 32 nm low-power parts): frugal cores, but a strong
    /// co-activity term — the paper observed that Stress generates
    /// "higher-than-normal power consumption, particularly on our Westmere
    /// processor-based machine".
    pub fn westmere() -> GroundTruthPower {
        GroundTruthPower {
            platform_idle_w: 92.0,
            pkg_idle_w: 8.0,
            chip_maintenance_w: 7.0,
            core_w: 4.2,
            ins_w: 1.3,
            flop_w: 0.9,
            cache_w: 1.7,
            mem_w: 1.3,
            coact_w: 5.5,
            disk_w: 2.0,
            net_w: 5.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halted_core_draws_nothing() {
        let t = GroundTruthPower::sandybridge();
        assert_eq!(t.core_active_power(None, DutyCycle::FULL), 0.0);
    }

    #[test]
    fn power_scales_linearly_with_duty() {
        let t = GroundTruthPower::sandybridge();
        let p = ActivityProfile::stress();
        let full = t.core_active_power(Some(&p), DutyCycle::FULL);
        let half = t.core_active_power(Some(&p), DutyCycle::new(4).unwrap());
        assert!((half - full / 2.0).abs() < 1e-12);
    }

    #[test]
    fn memory_app_beats_spin_power_by_about_half() {
        // Paper §1: at full utilization a cache/memory-intensive app drew
        // 49% more (package) power than a CPU spin on SandyBridge.
        let t = GroundTruthPower::sandybridge();
        let spin = 4.0 * t.core_active_power(Some(&ActivityProfile::cpu_spin()), DutyCycle::FULL)
            + t.chip_maintenance_w;
        let mem = 4.0 * t.core_active_power(Some(&ActivityProfile::memory_bound()), DutyCycle::FULL)
            + t.chip_maintenance_w;
        let ratio = mem / spin;
        assert!(
            (1.3..1.8).contains(&ratio),
            "memory/spin power ratio {ratio:.2} outside plausible band"
        );
    }

    #[test]
    fn coactivity_only_fires_when_both_sides_busy() {
        let t = GroundTruthPower::westmere();
        let mem_only = ActivityProfile::new(0.0, 0.0, 0.0, 1.0);
        let cpu_only = ActivityProfile::new(1.0, 0.0, 0.0, 0.0);
        let both = ActivityProfile::new(1.0, 0.0, 0.0, 1.0);
        let p_mem = t.core_active_power(Some(&mem_only), DutyCycle::FULL);
        let p_cpu = t.core_active_power(Some(&cpu_only), DutyCycle::FULL);
        let p_both = t.core_active_power(Some(&both), DutyCycle::FULL);
        let superposition = p_mem + p_cpu - t.core_w; // core_w counted twice
        assert!(
            p_both > superposition + t.coact_w * 0.9,
            "interaction term missing: {p_both} vs {superposition}"
        );
    }

    #[test]
    fn sandybridge_idle_matches_paper() {
        let t = GroundTruthPower::sandybridge();
        assert!((t.machine_idle_w() - 26.1).abs() < 1e-9);
        // Package idle is a small fraction of package power, per §1.
        assert!(t.pkg_idle_w < 3.0);
    }

    #[test]
    fn woodcrest_is_least_proportional() {
        let wc = GroundTruthPower::woodcrest();
        let sb = GroundTruthPower::sandybridge();
        assert!(wc.machine_idle_w() > 4.0 * sb.machine_idle_w());
    }
}
