//! Per-core hardware event counters.

use std::ops::Sub;

/// Cumulative per-core hardware event counters, the inputs to the paper's
/// power model (§3.1): elapsed cycles, non-halt cycles, retired
/// instructions, floating-point operations, last-level-cache references,
/// and memory transactions.
///
/// Values are `f64` accumulators rather than integers: the simulation
/// advances in arbitrary-length intervals and fractional event counts keep
/// the accounting exact; the linear model only ever consumes *ratios* of
/// counter deltas.
///
/// # Example
///
/// ```
/// use hwsim::CounterBlock;
///
/// let earlier = CounterBlock::default();
/// let mut later = CounterBlock::default();
/// later.elapsed_cycles = 1000.0;
/// later.nonhalt_cycles = 500.0;
/// let delta = later - earlier;
/// assert_eq!(delta.core_utilization(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CounterBlock {
    /// Total cycles elapsed on this core's fixed-frequency clock, halted or
    /// not.
    pub elapsed_cycles: f64,
    /// Unhalted (busy) cycles.
    pub nonhalt_cycles: f64,
    /// Retired instructions.
    pub instructions: f64,
    /// Floating-point operations.
    pub flops: f64,
    /// Last-level-cache references.
    pub cache_refs: f64,
    /// Memory transactions.
    pub mem_txns: f64,
}

impl CounterBlock {
    /// Core utilization over this (delta) block: non-halt cycles per
    /// elapsed cycle (the paper's `M_core`). Zero when no cycles elapsed.
    pub fn core_utilization(&self) -> f64 {
        if self.elapsed_cycles <= 0.0 {
            0.0
        } else {
            self.nonhalt_cycles / self.elapsed_cycles
        }
    }

    /// Instructions per elapsed cycle (`M_ins`).
    pub fn ins_rate(&self) -> f64 {
        self.per_cycle(self.instructions)
    }

    /// Floating-point operations per elapsed cycle (`M_float`).
    pub fn flop_rate(&self) -> f64 {
        self.per_cycle(self.flops)
    }

    /// Last-level-cache references per elapsed cycle (`M_cache`).
    pub fn cache_rate(&self) -> f64 {
        self.per_cycle(self.cache_refs)
    }

    /// Memory transactions per elapsed cycle (`M_mem`).
    pub fn mem_rate(&self) -> f64 {
        self.per_cycle(self.mem_txns)
    }

    fn per_cycle(&self, events: f64) -> f64 {
        if self.elapsed_cycles <= 0.0 {
            0.0
        } else {
            events / self.elapsed_cycles
        }
    }

    /// Adds `other` into `self` element-wise.
    pub fn accumulate(&mut self, other: &CounterBlock) {
        self.elapsed_cycles += other.elapsed_cycles;
        self.nonhalt_cycles += other.nonhalt_cycles;
        self.instructions += other.instructions;
        self.flops += other.flops;
        self.cache_refs += other.cache_refs;
        self.mem_txns += other.mem_txns;
    }

    /// Subtracts an event bundle, flooring at zero — used for the §3.5
    /// observer-effect compensation (maintenance-induced events must not
    /// drive a delta negative).
    pub fn saturating_sub_events(&self, other: &CounterBlock) -> CounterBlock {
        CounterBlock {
            elapsed_cycles: (self.elapsed_cycles - other.elapsed_cycles).max(0.0),
            nonhalt_cycles: (self.nonhalt_cycles - other.nonhalt_cycles).max(0.0),
            instructions: (self.instructions - other.instructions).max(0.0),
            flops: (self.flops - other.flops).max(0.0),
            cache_refs: (self.cache_refs - other.cache_refs).max(0.0),
            mem_txns: (self.mem_txns - other.mem_txns).max(0.0),
        }
    }
}

impl Sub for CounterBlock {
    type Output = CounterBlock;

    /// Delta between two cumulative snapshots (`later - earlier`).
    fn sub(self, earlier: CounterBlock) -> CounterBlock {
        CounterBlock {
            elapsed_cycles: self.elapsed_cycles - earlier.elapsed_cycles,
            nonhalt_cycles: self.nonhalt_cycles - earlier.nonhalt_cycles,
            instructions: self.instructions - earlier.instructions,
            flops: self.flops - earlier.flops,
            cache_refs: self.cache_refs - earlier.cache_refs,
            mem_txns: self.mem_txns - earlier.mem_txns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CounterBlock {
        CounterBlock {
            elapsed_cycles: 1000.0,
            nonhalt_cycles: 800.0,
            instructions: 1600.0,
            flops: 100.0,
            cache_refs: 40.0,
            mem_txns: 20.0,
        }
    }

    #[test]
    fn rates_divide_by_elapsed() {
        let c = sample();
        assert_eq!(c.core_utilization(), 0.8);
        assert_eq!(c.ins_rate(), 1.6);
        assert_eq!(c.flop_rate(), 0.1);
        assert_eq!(c.cache_rate(), 0.04);
        assert_eq!(c.mem_rate(), 0.02);
    }

    #[test]
    fn zero_elapsed_gives_zero_rates() {
        let c = CounterBlock::default();
        assert_eq!(c.core_utilization(), 0.0);
        assert_eq!(c.ins_rate(), 0.0);
    }

    #[test]
    fn subtraction_gives_delta() {
        let a = sample();
        let mut b = sample();
        b.accumulate(&sample());
        let d = b - a;
        assert_eq!(d.elapsed_cycles, 1000.0);
        assert_eq!(d.instructions, 1600.0);
    }

    #[test]
    fn saturating_sub_floors_at_zero() {
        let small = CounterBlock { instructions: 5.0, ..CounterBlock::default() };
        let big = CounterBlock { instructions: 10.0, ..CounterBlock::default() };
        let r = small.saturating_sub_events(&big);
        assert_eq!(r.instructions, 0.0);
    }

    #[test]
    fn accumulate_is_additive() {
        let mut acc = CounterBlock::default();
        acc.accumulate(&sample());
        acc.accumulate(&sample());
        assert_eq!(acc.nonhalt_cycles, 1600.0);
    }
}
