//! Seeded, deterministic fault injection for the simulated hardware.
//!
//! Real measurement pipelines degrade in the field: meter reports get
//! lost on the USB path or arrive late, PMU event counters glitch and
//! wrap, message tags are dropped or corrupted in transit, and whole
//! cluster nodes slow down or black out. This module is the single
//! source of those faults for the whole simulation stack:
//!
//! * **Meter faults** — per-window dropout (the report never becomes
//!   visible) and extra delivery lag, applied by [`crate::Machine`] as
//!   windows close.
//! * **Counter faults** — glitches (a burst of phantom events lands in
//!   one counter read) and overflow wraps (an event counter jumps
//!   backwards, so the next delta is hugely negative), drawn as Poisson
//!   arrivals per core.
//! * **Tag faults** — per-delivered-segment loss (the context tag is
//!   stripped) or corruption (the tag is replaced with a different,
//!   plausible-looking id), consulted by the OS layer at delivery time.
//! * **Node faults** — per-node slowdown, blackout and crash/restart
//!   windows for the cluster dispatcher, precomputed by
//!   [`plan_node_faults`].
//!
//! All randomness derives from [`FaultConfig::seed`] through dedicated
//! [`SimRng`] streams, *separate* from the machine's measurement-noise
//! stream: enabling or disabling fault injection never perturbs the
//! fault-free simulation, and the same seed and config always produce
//! the byte-identical fault schedule recorded in [`FaultLog`].

use simkern::{SimDuration, SimRng, SimTime};

/// Configuration of every injectable fault. All rates default to zero
/// ([`FaultConfig::none`]); a zero-rate config injects nothing and draws
/// nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Root seed for every fault stream.
    pub seed: u64,
    /// Probability that a closed meter window's report is silently lost.
    pub meter_dropout: f64,
    /// Probability that a closed meter window's report is delayed by an
    /// extra uniform `(0, meter_extra_lag_max]` on top of its normal
    /// delivery delay.
    pub meter_extra_lag: f64,
    /// Largest extra delivery lag.
    pub meter_extra_lag_max: SimDuration,
    /// Poisson rate (events per simulated second, per core) of counter
    /// glitches: a burst of phantom events lands in the event counters.
    pub counter_glitch_hz: f64,
    /// Mean phantom-event magnitude of one glitch.
    pub counter_glitch_events: f64,
    /// Poisson rate (per second, per core) of event-counter overflow
    /// wraps: one cumulative event counter jumps backwards by
    /// [`COUNTER_WRAP_SPAN`], so the consumer's next delta is negative.
    pub counter_wrap_hz: f64,
    /// Probability that a delivered tagged message loses its context tag.
    pub tag_loss: f64,
    /// Probability that a delivered tagged message's context tag is
    /// replaced by a different id.
    pub tag_corrupt: f64,
    /// Poisson rate (per second, per node) of cluster-node slowdowns.
    pub node_slowdown_hz: f64,
    /// DVFS fraction a slowed node runs at (clamped to `0.5..=1.0`).
    pub node_slowdown_factor: f64,
    /// Length of one slowdown window.
    pub node_slowdown_len: SimDuration,
    /// Poisson rate (per second, per node) of cluster-node blackouts
    /// (the node stops accepting newly dispatched requests).
    pub node_blackout_hz: f64,
    /// Length of one blackout window.
    pub node_blackout_len: SimDuration,
    /// Poisson rate (per second, per node) of cluster-node crashes: the
    /// node loses all volatile state (kernel, in-flight requests, live
    /// container state past its last checkpoint) and restarts after
    /// [`FaultConfig::node_crash_len`].
    pub node_crash_hz: f64,
    /// Down time of one crash (from crash to restart).
    pub node_crash_len: SimDuration,
    /// Warm-up period after a restart, during which the dispatcher's
    /// circuit breaker treats the node as half-open (probe traffic only
    /// counts toward closing it).
    pub node_warmup_len: SimDuration,
    /// Quiet period before any node fault can start: the slowdown /
    /// blackout / crash clocks only begin ticking here. Lets scenarios
    /// model late-onset regressions (a clean baseline followed by a
    /// degraded phase). Zero — the default — keeps the legacy schedule
    /// byte-identical.
    pub node_fault_start: SimDuration,
}

/// How far a wrapped event counter jumps backwards (a 2⁴⁰-count wrap,
/// matching a 40-bit PMU event counter).
pub const COUNTER_WRAP_SPAN: f64 = (1u64 << 40) as f64;

impl FaultConfig {
    /// A fault-free configuration (every rate zero).
    pub fn none() -> FaultConfig {
        FaultConfig {
            seed: 0,
            meter_dropout: 0.0,
            meter_extra_lag: 0.0,
            meter_extra_lag_max: SimDuration::from_millis(50),
            counter_glitch_hz: 0.0,
            counter_glitch_events: 2.0e9,
            counter_wrap_hz: 0.0,
            tag_loss: 0.0,
            tag_corrupt: 0.0,
            node_slowdown_hz: 0.0,
            node_slowdown_factor: 0.6,
            node_slowdown_len: SimDuration::from_millis(500),
            node_blackout_hz: 0.0,
            node_blackout_len: SimDuration::from_millis(500),
            node_crash_hz: 0.0,
            node_crash_len: SimDuration::from_millis(400),
            node_warmup_len: SimDuration::from_millis(300),
            node_fault_start: SimDuration::ZERO,
        }
    }

    /// A configuration exercising every fault class at moderate rates —
    /// the robustness-sweep baseline.
    pub fn stress(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            meter_dropout: 0.05,
            meter_extra_lag: 0.05,
            counter_glitch_hz: 2.0,
            counter_wrap_hz: 0.5,
            tag_loss: 0.02,
            tag_corrupt: 0.01,
            node_slowdown_hz: 0.2,
            node_blackout_hz: 0.1,
            ..FaultConfig::none()
        }
    }

    /// `true` when any meter fault can fire.
    pub fn meter_faults_active(&self) -> bool {
        self.meter_dropout > 0.0 || self.meter_extra_lag > 0.0
    }

    /// `true` when any counter fault can fire.
    pub fn counter_faults_active(&self) -> bool {
        self.counter_glitch_hz > 0.0 || self.counter_wrap_hz > 0.0
    }

    /// `true` when any tag fault can fire.
    pub fn tag_faults_active(&self) -> bool {
        self.tag_loss > 0.0 || self.tag_corrupt > 0.0
    }

    /// `true` when any node fault can fire.
    pub fn node_faults_active(&self) -> bool {
        self.node_slowdown_hz > 0.0 || self.node_blackout_hz > 0.0 || self.node_crash_hz > 0.0
    }

    /// `true` when any fault at all can fire.
    pub fn is_active(&self) -> bool {
        self.meter_faults_active()
            || self.counter_faults_active()
            || self.tag_faults_active()
            || self.node_faults_active()
    }
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig::none()
    }
}

/// The kind of one injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A meter report was silently dropped.
    MeterDropout,
    /// A meter report's delivery was delayed further.
    MeterExtraLag,
    /// Phantom events landed in a core's counters.
    CounterGlitch,
    /// An event counter wrapped backwards.
    CounterWrap,
    /// A delivered message lost its context tag.
    TagLost,
    /// A delivered message's context tag was replaced.
    TagCorrupted,
    /// A cluster node entered a slowdown window.
    NodeSlowdown,
    /// A cluster node entered a blackout window.
    NodeBlackout,
    /// A cluster node crashed, losing volatile state, and later
    /// restarted.
    NodeCrash,
}

impl FaultKind {
    /// Every fault kind, in a fixed order (also the [`FaultLog`] counter
    /// order).
    pub const ALL: [FaultKind; 9] = [
        FaultKind::MeterDropout,
        FaultKind::MeterExtraLag,
        FaultKind::CounterGlitch,
        FaultKind::CounterWrap,
        FaultKind::TagLost,
        FaultKind::TagCorrupted,
        FaultKind::NodeSlowdown,
        FaultKind::NodeBlackout,
        FaultKind::NodeCrash,
    ];

    /// A stable display/digest name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::MeterDropout => "meter-dropout",
            FaultKind::MeterExtraLag => "meter-extra-lag",
            FaultKind::CounterGlitch => "counter-glitch",
            FaultKind::CounterWrap => "counter-wrap",
            FaultKind::TagLost => "tag-lost",
            FaultKind::TagCorrupted => "tag-corrupted",
            FaultKind::NodeSlowdown => "node-slowdown",
            FaultKind::NodeBlackout => "node-blackout",
            FaultKind::NodeCrash => "node-crash",
        }
    }

    fn index(self) -> usize {
        FaultKind::ALL.iter().position(|k| *k == self).unwrap_or(0)
    }
}

/// One injected fault, as recorded in the deterministic schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault fired.
    pub at: SimTime,
    /// What fired.
    pub kind: FaultKind,
    /// The faulted site: meter index, core index, socket id, or node
    /// index depending on `kind`.
    pub site: u64,
    /// Kind-specific magnitude: phantom events for a glitch, extra lag in
    /// nanoseconds for extra-lag, replacement-tag salt for corruption;
    /// zero otherwise.
    pub magnitude: u64,
}

/// Counters and the deterministic schedule of every injected fault.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultLog {
    counts: [u64; FaultKind::ALL.len()],
    schedule: Vec<FaultEvent>,
}

/// Retained schedule entries; counting is unbounded but the recorded
/// schedule is capped so long runs stay bounded in memory.
const SCHEDULE_CAP: usize = 1 << 16;

impl FaultLog {
    /// Records one fault.
    pub fn record(&mut self, event: FaultEvent) {
        self.counts[event.kind.index()] += 1;
        if self.schedule.len() < SCHEDULE_CAP {
            self.schedule.push(event);
        }
    }

    /// How many faults of `kind` fired.
    pub fn count(&self, kind: FaultKind) -> u64 {
        self.counts[kind.index()]
    }

    /// All per-kind counters, indexed like [`FaultKind::ALL`].
    pub fn counts(&self) -> [u64; FaultKind::ALL.len()] {
        self.counts
    }

    /// Total faults injected, all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The recorded fault schedule, in firing order (capped at 2¹⁶
    /// entries).
    pub fn schedule(&self) -> &[FaultEvent] {
        &self.schedule
    }

    /// A canonical, byte-stable rendering of the schedule: one
    /// `ns kind site magnitude` line per fault. Two runs with the same
    /// seed and config must produce byte-identical digests.
    pub fn schedule_digest(&self) -> String {
        let mut out = String::new();
        for e in &self.schedule {
            out.push_str(&format!(
                "{} {} {} {}\n",
                e.at.as_nanos(),
                e.kind.name(),
                e.site,
                e.magnitude
            ));
        }
        out
    }

    /// Folds another log's counters into this one (schedules are not
    /// merged; use per-source logs for schedule comparison).
    pub fn absorb_counts(&mut self, other: &FaultLog) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

/// What happened to one closed meter window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MeterFault {
    /// Deliver normally.
    Deliver,
    /// Drop the report.
    Drop,
    /// Delay the report by this much extra.
    ExtraLag(SimDuration),
}

/// What happened to one core's counters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CounterFault {
    /// Add this many phantom events.
    Glitch(f64),
    /// Wrap an event counter backwards by [`COUNTER_WRAP_SPAN`].
    Wrap,
}

/// What happened to one delivered tagged message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagFault {
    /// Deliver the tag unchanged.
    Keep,
    /// Strip the tag.
    Lose,
    /// Replace the tag; the payload is a nonzero salt to derive the
    /// replacement id from.
    Corrupt(u64),
}

/// Draws fault decisions from dedicated seeded streams and records them.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    meter_rng: SimRng,
    counter_rng: SimRng,
    tag_rng: SimRng,
    /// Next scheduled glitch arrival per core.
    next_glitch: Vec<SimTime>,
    /// Next scheduled wrap arrival per core.
    next_wrap: Vec<SimTime>,
    log: FaultLog,
}

impl FaultInjector {
    /// Creates an injector for a machine with `cores` cores.
    pub fn new(config: FaultConfig, cores: usize) -> FaultInjector {
        let root = SimRng::new(config.seed);
        let mut counter_rng = root.split(0x434E_5452); // "CNTR"
        let next_glitch = Self::draw_arrivals(&mut counter_rng, config.counter_glitch_hz, cores);
        let next_wrap = Self::draw_arrivals(&mut counter_rng, config.counter_wrap_hz, cores);
        FaultInjector {
            meter_rng: root.split(0x4D54_5246), // "MTRF"
            tag_rng: root.split(0x5441_4746),   // "TAGF"
            counter_rng,
            next_glitch,
            next_wrap,
            log: FaultLog::default(),
            config,
        }
    }

    /// An injector that never fires.
    pub fn disabled() -> FaultInjector {
        FaultInjector::new(FaultConfig::none(), 0)
    }

    fn draw_arrivals(rng: &mut SimRng, hz: f64, cores: usize) -> Vec<SimTime> {
        (0..cores)
            .map(|_| {
                if hz > 0.0 {
                    SimTime::ZERO + SimDuration::from_secs_f64(rng.exponential(1.0 / hz))
                } else {
                    SimTime::MAX
                }
            })
            .collect()
    }

    /// The active configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The accumulated fault log.
    pub fn log(&self) -> &FaultLog {
        &self.log
    }

    /// Decides the fate of the meter window that just closed on
    /// `meter` at `at`.
    pub fn meter_window(&mut self, meter: usize, at: SimTime) -> MeterFault {
        if !self.config.meter_faults_active() {
            return MeterFault::Deliver;
        }
        if self.config.meter_dropout > 0.0 && self.meter_rng.chance(self.config.meter_dropout) {
            self.log.record(FaultEvent {
                at,
                kind: FaultKind::MeterDropout,
                site: meter as u64,
                magnitude: 0,
            });
            return MeterFault::Drop;
        }
        if self.config.meter_extra_lag > 0.0 && self.meter_rng.chance(self.config.meter_extra_lag)
        {
            let max_ns = self.config.meter_extra_lag_max.as_nanos().max(1);
            let extra_ns = 1 + self.meter_rng.next_below(max_ns);
            self.log.record(FaultEvent {
                at,
                kind: FaultKind::MeterExtraLag,
                site: meter as u64,
                magnitude: extra_ns,
            });
            return MeterFault::ExtraLag(SimDuration::from_nanos(extra_ns));
        }
        MeterFault::Deliver
    }

    /// Pops the next counter fault due at or before `now`, if any.
    /// Call repeatedly until `None`; each popped fault reschedules its
    /// stream's next arrival.
    pub fn next_counter_fault(&mut self, now: SimTime) -> Option<(usize, CounterFault)> {
        if !self.config.counter_faults_active() {
            return None;
        }
        // Earliest due arrival across both streams and all cores, so
        // firing order (and therefore the schedule) is deterministic.
        let mut best: Option<(SimTime, usize, bool)> = None;
        for (core, &t) in self.next_glitch.iter().enumerate() {
            if t <= now && best.is_none_or(|(bt, _, _)| t < bt) {
                best = Some((t, core, true));
            }
        }
        for (core, &t) in self.next_wrap.iter().enumerate() {
            if t <= now && best.is_none_or(|(bt, _, _)| t < bt) {
                best = Some((t, core, false));
            }
        }
        let (at, core, is_glitch) = best?;
        if is_glitch {
            let hz = self.config.counter_glitch_hz;
            self.next_glitch[core] =
                at + SimDuration::from_secs_f64(self.counter_rng.exponential(1.0 / hz));
            let events =
                self.config.counter_glitch_events * (0.5 + self.counter_rng.next_f64());
            self.log.record(FaultEvent {
                at,
                kind: FaultKind::CounterGlitch,
                site: core as u64,
                magnitude: events as u64,
            });
            Some((core, CounterFault::Glitch(events)))
        } else {
            let hz = self.config.counter_wrap_hz;
            self.next_wrap[core] =
                at + SimDuration::from_secs_f64(self.counter_rng.exponential(1.0 / hz));
            self.log.record(FaultEvent {
                at,
                kind: FaultKind::CounterWrap,
                site: core as u64,
                magnitude: 0,
            });
            Some((core, CounterFault::Wrap))
        }
    }

    /// Decides the fate of one tagged message delivered on socket
    /// `site` at `at`.
    pub fn tag_fault(&mut self, site: u64, at: SimTime) -> TagFault {
        if !self.config.tag_faults_active() {
            return TagFault::Keep;
        }
        if self.config.tag_loss > 0.0 && self.tag_rng.chance(self.config.tag_loss) {
            self.log
                .record(FaultEvent { at, kind: FaultKind::TagLost, site, magnitude: 0 });
            return TagFault::Lose;
        }
        if self.config.tag_corrupt > 0.0 && self.tag_rng.chance(self.config.tag_corrupt) {
            let salt = 1 + self.tag_rng.next_below(u64::MAX - 1);
            self.log.record(FaultEvent {
                at,
                kind: FaultKind::TagCorrupted,
                site,
                magnitude: salt,
            });
            return TagFault::Corrupt(salt);
        }
        TagFault::Keep
    }
}

/// One planned cluster-node fault window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFaultWindow {
    /// The affected node index.
    pub node: usize,
    /// Window start.
    pub start: SimTime,
    /// Window end.
    pub end: SimTime,
    /// [`FaultKind::NodeSlowdown`], [`FaultKind::NodeBlackout`] or
    /// [`FaultKind::NodeCrash`].
    pub kind: FaultKind,
    /// DVFS fraction during a slowdown (1.0 for blackouts).
    pub factor: f64,
}

/// Precomputes every node slowdown/blackout window for a cluster run of
/// `duration` over `nodes` nodes. Windows are non-overlapping per node
/// and sorted by start time; the plan is a pure function of the config,
/// so dispatcher and injector agree without sharing state.
pub fn plan_node_faults(
    config: &FaultConfig,
    nodes: usize,
    duration: SimDuration,
) -> Vec<NodeFaultWindow> {
    let mut plan = Vec::new();
    if !config.node_faults_active() {
        return plan;
    }
    let mut rng = SimRng::new(config.seed).split(0x4E4F_4445); // "NODE"
    let factor = config.node_slowdown_factor.clamp(0.5, 1.0);
    let end_of_run = SimTime::ZERO + duration;
    for node in 0..nodes {
        let mut cursor = SimTime::ZERO + config.node_fault_start;
        loop {
            // Competing exponential clocks: whichever fault arrives first
            // claims the next window.
            let t_slow = if config.node_slowdown_hz > 0.0 {
                SimDuration::from_secs_f64(rng.exponential(1.0 / config.node_slowdown_hz))
            } else {
                SimDuration::MAX
            };
            let t_black = if config.node_blackout_hz > 0.0 {
                SimDuration::from_secs_f64(rng.exponential(1.0 / config.node_blackout_hz))
            } else {
                SimDuration::MAX
            };
            // The crash clock is drawn only when crashes are enabled, so
            // crash-free configs keep the byte-identical schedule they
            // had before crashes existed.
            let t_crash = if config.node_crash_hz > 0.0 {
                SimDuration::from_secs_f64(rng.exponential(1.0 / config.node_crash_hz))
            } else {
                SimDuration::MAX
            };
            let (gap, kind, len, f) = if t_slow <= t_black && t_slow <= t_crash {
                (t_slow, FaultKind::NodeSlowdown, config.node_slowdown_len, factor)
            } else if t_black <= t_crash {
                (t_black, FaultKind::NodeBlackout, config.node_blackout_len, 1.0)
            } else {
                (t_crash, FaultKind::NodeCrash, config.node_crash_len, 1.0)
            };
            let start = cursor + gap;
            if start >= end_of_run {
                break;
            }
            let end = (start + len).min(end_of_run);
            plan.push(NodeFaultWindow { node, start, end, kind, factor: f });
            cursor = end;
        }
    }
    plan.sort_by_key(|w| (w.start, w.node));
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active_config(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            meter_dropout: 0.2,
            meter_extra_lag: 0.2,
            counter_glitch_hz: 5.0,
            counter_wrap_hz: 2.0,
            tag_loss: 0.1,
            tag_corrupt: 0.1,
            ..FaultConfig::none()
        }
    }

    #[test]
    fn zero_config_is_inert() {
        let mut inj = FaultInjector::disabled();
        for i in 0..100 {
            assert_eq!(inj.meter_window(0, SimTime::from_millis(i)), MeterFault::Deliver);
            assert_eq!(inj.tag_fault(0, SimTime::from_millis(i)), TagFault::Keep);
        }
        assert!(inj.next_counter_fault(SimTime::MAX).is_none());
        assert_eq!(inj.log().total(), 0);
        assert!(inj.log().schedule_digest().is_empty());
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = |seed| {
            let mut inj = FaultInjector::new(active_config(seed), 4);
            for ms in 0..2000u64 {
                let t = SimTime::from_millis(ms);
                let _ = inj.meter_window(0, t);
                let _ = inj.tag_fault(ms % 7, t);
                while inj.next_counter_fault(t).is_some() {}
            }
            inj.log().schedule_digest()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed must give byte-identical schedules");
        assert_ne!(a, run(8), "different seeds should diverge");
        assert!(!a.is_empty());
    }

    #[test]
    fn meter_dropout_rate_is_roughly_honored() {
        let cfg = FaultConfig { meter_dropout: 0.05, ..FaultConfig::none() };
        let mut inj = FaultInjector::new(FaultConfig { seed: 3, ..cfg }, 1);
        let n = 20_000;
        let mut drops = 0;
        for i in 0..n {
            if inj.meter_window(0, SimTime::from_millis(i)) == MeterFault::Drop {
                drops += 1;
            }
        }
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.01, "observed dropout rate {rate}");
        assert_eq!(inj.log().count(FaultKind::MeterDropout), drops);
    }

    #[test]
    fn counter_faults_arrive_at_poisson_rate() {
        let cfg = FaultConfig { seed: 11, counter_glitch_hz: 10.0, ..FaultConfig::none() };
        let mut inj = FaultInjector::new(cfg, 2);
        let mut fired = 0;
        for ms in 0..10_000u64 {
            while inj.next_counter_fault(SimTime::from_millis(ms)).is_some() {
                fired += 1;
            }
        }
        // 10 Hz × 10 s × 2 cores = 200 expected.
        assert!((120..280).contains(&fired), "fired {fired}");
        assert_eq!(inj.log().count(FaultKind::CounterGlitch), fired);
    }

    #[test]
    fn counter_faults_fire_in_time_order() {
        let cfg = FaultConfig {
            seed: 5,
            counter_glitch_hz: 50.0,
            counter_wrap_hz: 20.0,
            ..FaultConfig::none()
        };
        let mut inj = FaultInjector::new(cfg, 4);
        while inj.next_counter_fault(SimTime::from_secs(2)).is_some() {}
        let times: Vec<u64> =
            inj.log().schedule().iter().map(|e| e.at.as_nanos()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "schedule must be time-ordered");
        assert!(times.len() > 50);
    }

    #[test]
    fn tag_faults_split_between_loss_and_corruption() {
        let cfg =
            FaultConfig { seed: 9, tag_loss: 0.3, tag_corrupt: 0.3, ..FaultConfig::none() };
        let mut inj = FaultInjector::new(cfg, 0);
        let (mut lost, mut corrupted) = (0u64, 0u64);
        for i in 0..5000 {
            match inj.tag_fault(1, SimTime::from_millis(i)) {
                TagFault::Lose => lost += 1,
                TagFault::Corrupt(salt) => {
                    assert_ne!(salt, 0);
                    corrupted += 1;
                }
                TagFault::Keep => {}
            }
        }
        assert!(lost > 1000, "lost {lost}");
        assert!(corrupted > 500, "corrupted {corrupted}");
        assert_eq!(inj.log().count(FaultKind::TagLost), lost);
        assert_eq!(inj.log().count(FaultKind::TagCorrupted), corrupted);
    }

    #[test]
    fn node_plan_is_deterministic_and_disjoint_per_node() {
        let cfg = FaultConfig {
            seed: 21,
            node_slowdown_hz: 1.0,
            node_blackout_hz: 0.5,
            node_slowdown_len: SimDuration::from_millis(300),
            node_blackout_len: SimDuration::from_millis(200),
            ..FaultConfig::none()
        };
        let a = plan_node_faults(&cfg, 3, SimDuration::from_secs(20));
        let b = plan_node_faults(&cfg, 3, SimDuration::from_secs(20));
        assert_eq!(a, b);
        assert!(!a.is_empty());
        for node in 0..3 {
            let mut last_end = SimTime::ZERO;
            for w in a.iter().filter(|w| w.node == node) {
                assert!(w.start >= last_end, "overlapping windows on node {node}");
                assert!(w.end > w.start);
                last_end = w.end;
            }
        }
        assert!(plan_node_faults(&FaultConfig::none(), 3, SimDuration::from_secs(20))
            .is_empty());
    }

    #[test]
    fn crash_clock_does_not_perturb_existing_plans() {
        // Enabling crashes must not change the slowdown/blackout windows
        // an existing config draws (the crash clock is a separate draw),
        // and a crash-free config must plan zero crash windows.
        let base = FaultConfig {
            seed: 33,
            node_slowdown_hz: 0.8,
            node_blackout_hz: 0.4,
            ..FaultConfig::none()
        };
        let before = plan_node_faults(&base, 4, SimDuration::from_secs(10));
        assert!(before.iter().all(|w| w.kind != FaultKind::NodeCrash));
        let with_crash = FaultConfig { node_crash_hz: 0.5, ..base.clone() };
        let after = plan_node_faults(&with_crash, 4, SimDuration::from_secs(10));
        assert!(
            after.iter().any(|w| w.kind == FaultKind::NodeCrash),
            "crash windows must be planned at a 0.5 Hz rate over 40 node-seconds"
        );
        // Replanning is deterministic.
        assert_eq!(after, plan_node_faults(&with_crash, 4, SimDuration::from_secs(10)));
        for node in 0..4 {
            let mut last_end = SimTime::ZERO;
            for w in after.iter().filter(|w| w.node == node) {
                assert!(w.start >= last_end, "overlapping windows on node {node}");
                last_end = w.end;
            }
        }
    }

    #[test]
    fn node_fault_start_delays_every_window() {
        let base = FaultConfig {
            seed: 7,
            node_slowdown_hz: 1.5,
            node_crash_hz: 0.5,
            ..FaultConfig::none()
        };
        let immediate = plan_node_faults(&base, 3, SimDuration::from_secs(12));
        let delayed_cfg = FaultConfig {
            node_fault_start: SimDuration::from_secs(5),
            ..base.clone()
        };
        let delayed = plan_node_faults(&delayed_cfg, 3, SimDuration::from_secs(12));
        assert!(!delayed.is_empty());
        assert!(
            delayed.iter().all(|w| w.start >= SimTime::ZERO + SimDuration::from_secs(5)),
            "no window may start inside the quiet period"
        );
        assert!(
            immediate.iter().any(|w| w.start < SimTime::ZERO + SimDuration::from_secs(5)),
            "the undelayed plan must actually use the early interval"
        );
        // A zero offset is byte-identical to the legacy plan.
        let zero = FaultConfig { node_fault_start: SimDuration::ZERO, ..base.clone() };
        assert_eq!(immediate, plan_node_faults(&zero, 3, SimDuration::from_secs(12)));
    }

    #[test]
    fn log_absorbs_counts() {
        let mut a = FaultLog::default();
        let mut b = FaultLog::default();
        a.record(FaultEvent {
            at: SimTime::ZERO,
            kind: FaultKind::TagLost,
            site: 0,
            magnitude: 0,
        });
        b.record(FaultEvent {
            at: SimTime::ZERO,
            kind: FaultKind::TagLost,
            site: 1,
            magnitude: 0,
        });
        a.absorb_counts(&b);
        assert_eq!(a.count(FaultKind::TagLost), 2);
        assert_eq!(a.total(), 2);
    }
}
