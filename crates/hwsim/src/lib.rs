//! Multicore server hardware simulation.
//!
//! This crate stands in for the three Intel machines of the Power Containers
//! paper (dual-socket dual-core Woodcrest, dual-socket six-core Westmere,
//! quad-core SandyBridge). It simulates, per machine:
//!
//! * **Cores and hardware event counters** — non-halt cycles, retired
//!   instructions, floating-point operations, last-level-cache references,
//!   and memory transactions accumulate while a core runs a task's
//!   [`ActivityProfile`].
//! * **A hidden ground-truth power law** ([`power::GroundTruthPower`]) that
//!   includes the shared per-chip *maintenance power* the paper's Eq. 2
//!   models, plus a co-activity interaction term the linear model cannot
//!   express — this is what makes online recalibration (§3.2) matter.
//! * **Power meters** ([`meter`]) — an on-chip package meter (1 ms windows,
//!   ≈1 ms delivery delay, like the SandyBridge RAPL meter) and an external
//!   whole-machine meter (1 s windows, ≈1.2 s delay, like a Wattsup).
//! * **Per-core duty-cycle modulation** ([`DutyCycle`], multiples of 1/8,
//!   like the Intel clock-modulation MSR the paper uses for throttling).
//! * **PMU overflow programming** — a per-core non-halt-cycle threshold
//!   whose expiry the OS layer turns into sampling interrupts.
//!
//! The operating-system simulation (`ossim`) owns a [`Machine`] and advances
//! it between scheduling events; the power-container facility only ever sees
//! counter values and (delayed) meter reports — exactly the information the
//! paper's kernel had.
//!
//! # Example
//!
//! ```
//! use hwsim::{ActivityProfile, Machine, MachineSpec};
//! use simkern::SimTime;
//!
//! let mut m = Machine::new(MachineSpec::sandybridge(), 42);
//! m.set_running(hwsim::CoreId(0), Some(ActivityProfile::cpu_spin()));
//! m.advance_to(SimTime::from_millis(10));
//! let c = m.counters(hwsim::CoreId(0));
//! assert!(c.nonhalt_cycles > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activity;
mod counters;
mod duty;
pub mod faults;
mod machine;
pub mod meter;
pub mod power;
mod spec;

pub use activity::{ActivityProfile, DeviceKind};
pub use counters::CounterBlock;
pub use duty::DutyCycle;
pub use faults::{
    plan_node_faults, FaultConfig, FaultEvent, FaultInjector, FaultKind, FaultLog, MeterFault,
    NodeFaultWindow, TagFault,
};
pub use machine::{CoreId, FreqScale, Machine};
pub use power::GroundTruthPower;
pub use meter::{MeterId, MeterReport, MeterScope, MeterSpec};
pub use spec::{ChipId, MachineSpec};
