//! The simulated machine: cores, counters, meters, devices.

use crate::activity::{caps, ActivityProfile, DeviceKind};
use crate::counters::CounterBlock;
use crate::faults::{CounterFault, FaultConfig, FaultInjector, FaultLog, MeterFault};
use crate::meter::{MeterId, MeterReport, MeterScope, MeterState};
use crate::spec::MachineSpec;
use crate::DutyCycle;
use simkern::{SimDuration, SimRng, SimTime};

/// Identifies one CPU core on a machine (flat index across chips).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub usize);

#[derive(Debug, Clone)]
struct CoreState {
    running: Option<ActivityProfile>,
    duty: DutyCycle,
    counters: CounterBlock,
    /// PMU overflow threshold in non-halt cycles, if armed.
    pmu_threshold: Option<f64>,
    /// Non-halt cycles accumulated since the PMU was last reset.
    pmu_count: f64,
}

impl CoreState {
    fn new() -> CoreState {
        CoreState {
            running: None,
            duty: DutyCycle::FULL,
            counters: CounterBlock::default(),
            pmu_threshold: None,
            pmu_count: 0.0,
        }
    }
}

#[derive(Debug, Clone)]
struct DeviceState {
    active: bool,
    busy_seconds: f64,
}

/// A chip-wide DVFS operating point: the fraction of nominal frequency a
/// package runs at. Unlike duty-cycle modulation (per-core, linear in
/// power), DVFS applies to the whole chip and scales active power
/// super-linearly (`P ∝ f·V²` with voltage tracking frequency) — the
/// paper picks duty-cycling for per-request control precisely because
/// DVFS on its machines was not per-core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreqScale(f64);

impl FreqScale {
    /// Nominal frequency.
    pub const NOMINAL: FreqScale = FreqScale(1.0);

    /// Creates an operating point; `None` unless `0.5 <= scale <= 1.0`
    /// (the typical DVFS range).
    pub fn new(scale: f64) -> Option<FreqScale> {
        (0.5..=1.0).contains(&scale).then_some(FreqScale(scale))
    }

    /// The frequency fraction.
    pub fn fraction(self) -> f64 {
        self.0
    }

    /// The active-power multiplier at this point: `f · V(f)²` with a
    /// linear voltage/frequency relation `V = 0.6 + 0.4·f` (normalized).
    pub fn power_factor(self) -> f64 {
        let v = 0.6 + 0.4 * self.0;
        self.0 * v * v
    }

    /// One step (5%) slower, saturating at the 0.5 floor.
    pub fn slower(self) -> FreqScale {
        FreqScale((self.0 - 0.05).max(0.5))
    }

    /// One step (5%) faster, saturating at nominal.
    pub fn faster(self) -> FreqScale {
        FreqScale((self.0 + 0.05).min(1.0))
    }
}

impl Default for FreqScale {
    fn default() -> FreqScale {
        FreqScale::NOMINAL
    }
}

/// A simulated multicore machine.
///
/// The machine is passive: the OS layer calls [`Machine::set_running`] /
/// [`Machine::set_duty_cycle`] at scheduling points and
/// [`Machine::advance_to`] to integrate hardware state forward in time.
/// Within one advance interval, per-core state is constant, so integration
/// is exact.
///
/// # Example
///
/// ```
/// use hwsim::{ActivityProfile, CoreId, Machine, MachineSpec};
/// use simkern::SimTime;
///
/// let mut m = Machine::new(MachineSpec::sandybridge(), 7);
/// m.set_running(CoreId(0), Some(ActivityProfile::high_ipc()));
/// m.advance_to(SimTime::from_millis(5));
/// assert!(m.counters(CoreId(0)).instructions > 0.0);
/// // An idle sibling accumulated elapsed cycles but no busy cycles.
/// assert_eq!(m.counters(CoreId(1)).nonhalt_cycles, 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    spec: MachineSpec,
    cores: Vec<CoreState>,
    meters: Vec<MeterState>,
    devices: [DeviceState; 2],
    chip_freq: Vec<FreqScale>,
    /// Hardware generation rank, exposed to the OS as a regime signal
    /// (think DMI product identification). Starts at the spec's rank and
    /// is bumped by [`Machine::swap_truth`] on an in-place upgrade.
    generation: u32,
    now: SimTime,
    rng: SimRng,
    /// Fault injection (inert by default); draws from its own seeded
    /// streams so the fault-free simulation is bit-identical with or
    /// without it.
    faults: FaultInjector,
    /// Lifetime true energy drawn by the whole machine, in Joules
    /// (noise-free; used by experiments as the "perfect" reference).
    true_energy_j: f64,
    /// Lifetime true energy excluding idle power, in Joules.
    true_active_energy_j: f64,
}

impl Machine {
    /// Creates a machine at time zero.
    pub fn new(spec: MachineSpec, seed: u64) -> Machine {
        let cores = (0..spec.total_cores()).map(|_| CoreState::new()).collect();
        let meters = spec.meters.iter().cloned().map(MeterState::new).collect();
        Machine {
            cores,
            meters,
            devices: [
                DeviceState { active: false, busy_seconds: 0.0 },
                DeviceState { active: false, busy_seconds: 0.0 },
            ],
            chip_freq: vec![FreqScale::NOMINAL; spec.chips],
            generation: spec.generation_rank(),
            now: SimTime::ZERO,
            rng: SimRng::new(seed).split(0x4D45_5452), // "METR"
            faults: FaultInjector::disabled(),
            true_energy_j: 0.0,
            true_active_energy_j: 0.0,
            spec,
        }
    }

    /// The machine's static specification.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Sets what `core` is running (`None` = halted/idle). Takes effect for
    /// all subsequently integrated time.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn set_running(&mut self, core: CoreId, profile: Option<ActivityProfile>) {
        self.cores[core.0].running = profile;
    }

    /// The profile `core` is currently running, if any.
    pub fn running(&self, core: CoreId) -> Option<ActivityProfile> {
        self.cores[core.0].running
    }

    /// `true` when `core` currently has work.
    pub fn is_busy(&self, core: CoreId) -> bool {
        self.cores[core.0].running.is_some()
    }

    /// Sets `core`'s duty-cycle modulation level.
    pub fn set_duty_cycle(&mut self, core: CoreId, duty: DutyCycle) {
        self.cores[core.0].duty = duty;
    }

    /// `core`'s current duty-cycle level.
    pub fn duty_cycle(&self, core: CoreId) -> DutyCycle {
        self.cores[core.0].duty
    }

    /// Sets a chip's DVFS operating point; affects every core on it.
    pub fn set_chip_freq(&mut self, chip: crate::ChipId, scale: FreqScale) {
        self.chip_freq[chip.0] = scale;
    }

    /// A chip's current DVFS operating point.
    pub fn chip_freq(&self, chip: crate::ChipId) -> FreqScale {
        self.chip_freq[chip.0]
    }

    /// Mean frequency fraction across all chips — the machine-level DVFS
    /// regime signal the metering layer keys models on.
    pub fn mean_freq_fraction(&self) -> f64 {
        let sum: f64 = self.chip_freq.iter().map(|f| f.fraction()).sum();
        sum / self.chip_freq.len() as f64
    }

    /// The machine's hardware generation rank (0 = newest preset). The
    /// OS reads this as a regime signal; it carries no physical behaviour
    /// by itself.
    pub fn generation(&self) -> u32 {
        self.generation
    }

    /// Overrides the generation rank without touching physical behaviour
    /// (e.g. a cluster topology assigning fleet-wide ranks).
    pub fn set_generation(&mut self, generation: u32) {
        self.generation = generation;
    }

    /// Replaces the hidden ground-truth power law and generation rank in
    /// place — a rolling hardware upgrade under an unchanged workload.
    /// Counters, meters, and accumulated energy are preserved; only
    /// power drawn after the swap follows the new law. Call between
    /// [`Machine::advance_to`] segments so the old law is integrated
    /// exactly up to the swap instant.
    pub fn swap_truth(&mut self, truth: crate::GroundTruthPower, generation: u32) {
        self.spec.truth = truth;
        self.generation = generation;
    }

    /// The rate at which `core` executes non-halt cycles, in GHz,
    /// combining nominal frequency, chip DVFS, and duty-cycle modulation.
    pub fn effective_rate_ghz(&self, core: CoreId) -> f64 {
        let chip = self.spec.chip_of(core.0);
        self.spec.freq_ghz
            * self.chip_freq[chip.0].fraction()
            * self.cores[core.0].duty.fraction()
    }

    /// Cumulative hardware counters for `core`.
    pub fn counters(&self, core: CoreId) -> CounterBlock {
        self.cores[core.0].counters
    }

    /// Arms (or with `None`, disarms) the PMU overflow interrupt on `core`
    /// and resets its overflow counter: the interrupt fires after
    /// `threshold` further non-halt cycles.
    ///
    /// # Panics
    ///
    /// Panics if a provided threshold is not strictly positive.
    pub fn set_pmu_threshold(&mut self, core: CoreId, threshold: Option<f64>) {
        if let Some(t) = threshold {
            assert!(t > 0.0, "PMU threshold must be positive");
        }
        let c = &mut self.cores[core.0];
        c.pmu_threshold = threshold;
        c.pmu_count = 0.0;
    }

    /// Wall-clock time until `core`'s PMU threshold is reached, given its
    /// current profile and duty cycle. `None` when the PMU is disarmed or
    /// the core is halted (non-halt cycles stop accumulating, matching the
    /// paper's interrupt-suppression-when-idle behaviour).
    pub fn time_until_pmu(&self, core: CoreId) -> Option<SimDuration> {
        let c = &self.cores[core.0];
        let threshold = c.pmu_threshold?;
        c.running?;
        let remaining = (threshold - c.pmu_count).max(0.0);
        let cycles_per_ns = self.effective_rate_ghz(core);
        if cycles_per_ns <= 0.0 {
            return None;
        }
        // Round up to whole nanoseconds (and at least one) so a scheduled
        // deadline always advances simulated time past the threshold; a
        // zero-length deadline would fire without the counter moving.
        let ns = (remaining / cycles_per_ns).ceil().max(1.0);
        Some(SimDuration::from_nanos(ns as u64))
    }

    /// `true` if `core`'s PMU has reached its threshold.
    pub fn pmu_expired(&self, core: CoreId) -> bool {
        let c = &self.cores[core.0];
        matches!(c.pmu_threshold, Some(t) if c.pmu_count + 1e-6 >= t)
    }

    /// Marks a peripheral device active or idle.
    pub fn set_device_active(&mut self, kind: DeviceKind, active: bool) {
        self.devices[kind.index()].active = active;
    }

    /// `true` if the given device is currently active.
    pub fn device_active(&self, kind: DeviceKind) -> bool {
        self.devices[kind.index()].active
    }

    /// Cumulative seconds the device has spent active.
    pub fn device_busy_seconds(&self, kind: DeviceKind) -> f64 {
        self.devices[kind.index()].busy_seconds
    }

    /// Instantaneous true power of the whole machine in Watts, including
    /// idle power. Useful for tests; the model must instead use meters.
    pub fn true_power_watts(&self) -> f64 {
        self.true_active_power_watts() + self.spec.truth.machine_idle_w()
    }

    /// Instantaneous true *active* power (whole machine minus idle).
    pub fn true_active_power_watts(&self) -> f64 {
        let truth = &self.spec.truth;
        let mut active = 0.0;
        for chip in 0..self.spec.chips {
            let cores = self.spec.cores_of(crate::ChipId(chip));
            let dvfs = self.chip_freq[chip].power_factor();
            let mut chip_busy = false;
            for core in cores {
                let c = &self.cores[core];
                active += dvfs * truth.core_active_power(c.running.as_ref(), c.duty);
                chip_busy |= c.running.is_some();
            }
            if chip_busy {
                active += dvfs * truth.chip_maintenance_w;
            }
        }
        if self.devices[DeviceKind::Disk.index()].active {
            active += truth.disk_w;
        }
        if self.devices[DeviceKind::Net.index()].active {
            active += truth.net_w;
        }
        active
    }

    /// Instantaneous true package power (packages only, including package
    /// idle but not platform or devices) — what an on-chip meter sees.
    pub fn true_package_power_watts(&self) -> f64 {
        let truth = &self.spec.truth;
        let mut pkg = truth.pkg_idle_w;
        for chip in 0..self.spec.chips {
            let cores = self.spec.cores_of(crate::ChipId(chip));
            let dvfs = self.chip_freq[chip].power_factor();
            let mut chip_busy = false;
            for core in cores {
                let c = &self.cores[core];
                pkg += dvfs * truth.core_active_power(c.running.as_ref(), c.duty);
                chip_busy |= c.running.is_some();
            }
            if chip_busy {
                pkg += dvfs * truth.chip_maintenance_w;
            }
        }
        pkg
    }

    /// Lifetime true machine energy in Joules (idle included, noise-free).
    pub fn true_energy_j(&self) -> f64 {
        self.true_energy_j
    }

    /// Lifetime true *active* machine energy in Joules.
    pub fn true_active_energy_j(&self) -> f64 {
        self.true_active_energy_j
    }

    /// Number of meters attached.
    pub fn meter_count(&self) -> usize {
        self.meters.len()
    }

    /// The spec of meter `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn meter_spec(&self, id: MeterId) -> &crate::MeterSpec {
        &self.meters[id.0].spec
    }

    /// The meter with the given name, if present.
    pub fn find_meter(&self, name: &str) -> Option<MeterId> {
        self.meters.iter().position(|m| m.spec.name == name).map(MeterId)
    }

    /// Removes and returns meter reports that have become visible by the
    /// machine's current time.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn pop_meter_reports(&mut self, id: MeterId) -> Vec<MeterReport> {
        let now = self.now;
        self.meters[id.0].pop_visible(now)
    }

    /// Installs a fault-injection configuration, replacing any previous
    /// one (and resetting its fault log). A [`FaultConfig::none`] config
    /// restores fault-free operation.
    pub fn set_fault_config(&mut self, config: FaultConfig) {
        self.faults = FaultInjector::new(config, self.cores.len());
    }

    /// The log of every fault injected so far.
    pub fn fault_log(&self) -> &FaultLog {
        self.faults.log()
    }

    /// The active fault-injection configuration.
    pub fn fault_config(&self) -> &FaultConfig {
        self.faults.config()
    }

    /// Mutable access to the fault injector, for fault sites that live
    /// outside the machine proper (e.g. the OS socket layer's tag
    /// faults) so every fault lands in one log.
    pub fn faults_mut(&mut self) -> &mut FaultInjector {
        &mut self.faults
    }

    /// Advances hardware state to `t`, integrating counters, true energy,
    /// and meter windows. Per-core/device state is held constant over the
    /// interval, so the OS must call this *before* changing any state at
    /// `t`. A no-op when `t <= now`.
    pub fn advance_to(&mut self, t: SimTime) {
        while self.now < t {
            // Segment ends at the earliest meter-window boundary or `t`.
            let mut seg_end = t;
            for m in &self.meters {
                let we = m.window_end();
                if we > self.now && we < seg_end {
                    seg_end = we;
                }
            }
            self.integrate_segment(seg_end);
            self.apply_counter_faults(seg_end);
            // Close any meter windows that end exactly at seg_end.
            for i in 0..self.meters.len() {
                if self.meters[i].window_end() == seg_end {
                    let noise = 1.0 + self.meters[i].spec.noise_frac * self.rng.normal();
                    self.meters[i].close_window(seg_end, noise);
                    match self.faults.meter_window(i, seg_end) {
                        MeterFault::Deliver => {}
                        MeterFault::Drop => {
                            self.meters[i].drop_last_pending();
                        }
                        MeterFault::ExtraLag(extra) => {
                            self.meters[i].delay_last_pending(extra);
                        }
                    }
                }
            }
            self.now = seg_end;
        }
    }

    /// Applies every counter fault due by `now`. Glitches land a burst
    /// of phantom events in the event counters (the next sampled delta
    /// shows an impossibly high event rate); wraps pull one cumulative
    /// event counter backwards (the next sampled delta goes negative).
    /// Neither touches non-halt or elapsed cycles — the TSC-style fixed
    /// counters the OS relies on for time accounting don't wrap in
    /// practice.
    fn apply_counter_faults(&mut self, now: SimTime) {
        while let Some((core, fault)) = self.faults.next_counter_fault(now) {
            let counters = &mut self.cores[core].counters;
            match fault {
                CounterFault::Glitch(events) => {
                    counters.instructions += events;
                    counters.cache_refs += events * 0.25;
                }
                CounterFault::Wrap => {
                    counters.instructions -= crate::faults::COUNTER_WRAP_SPAN;
                }
            }
        }
    }

    /// Injects extra event counts into `core`'s counters, modelling
    /// software overhead (e.g. the §3.5 observer effect of container
    /// maintenance itself). Counts are added instantaneously.
    pub fn inject_events(&mut self, core: CoreId, events: &CounterBlock) {
        let c = &mut self.cores[core.0];
        c.counters.accumulate(events);
        c.pmu_count += events.nonhalt_cycles;
    }

    fn integrate_segment(&mut self, seg_end: SimTime) {
        let dt = seg_end.duration_since(self.now);
        if dt.is_zero() {
            return;
        }
        let secs = dt.as_secs_f64();
        let elapsed = self.spec.cycles_in(dt);
        for (i, c) in self.cores.iter_mut().enumerate() {
            // Elapsed cycles tick at the nominal (TSC-style) clock; busy
            // cycles scale with both duty-cycle gating and chip DVFS.
            let freq = self.chip_freq[i / self.spec.cores_per_chip].fraction();
            c.counters.elapsed_cycles += elapsed;
            if let Some(p) = c.running {
                let busy = elapsed * c.duty.fraction() * freq;
                c.counters.nonhalt_cycles += busy;
                c.counters.instructions += busy * p.ins * caps::INS_PER_CYCLE;
                c.counters.flops += busy * p.flops * caps::FLOPS_PER_CYCLE;
                c.counters.cache_refs += busy * p.cache * caps::CACHE_PER_CYCLE;
                c.counters.mem_txns += busy * p.mem * caps::MEM_PER_CYCLE;
                c.pmu_count += busy;
            }
        }
        for d in &mut self.devices {
            if d.active {
                d.busy_seconds += secs;
            }
        }
        let active = self.true_active_power_watts();
        let machine = active + self.spec.truth.machine_idle_w();
        let package = self.true_package_power_watts();
        self.true_energy_j += machine * secs;
        self.true_active_energy_j += active * secs;
        for m in &mut self.meters {
            let watts = match m.spec.scope {
                MeterScope::Package => package,
                MeterScope::Machine => machine,
            };
            m.integrate(watts, dt);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MeterSpec;

    fn machine() -> Machine {
        Machine::new(MachineSpec::sandybridge(), 1)
    }

    #[test]
    fn counters_accumulate_while_running() {
        let mut m = machine();
        m.set_running(CoreId(0), Some(ActivityProfile::high_ipc()));
        m.advance_to(SimTime::from_millis(1));
        let c = m.counters(CoreId(0));
        // 3.1 GHz for 1 ms = 3.1e6 cycles.
        assert!((c.elapsed_cycles - 3.1e6).abs() < 1.0);
        assert!((c.nonhalt_cycles - 3.1e6).abs() < 1.0);
        assert!((c.instructions - 3.1e6 * 0.95 * 4.0).abs() < 10.0);
    }

    #[test]
    fn idle_core_accumulates_only_elapsed() {
        let mut m = machine();
        m.advance_to(SimTime::from_millis(2));
        let c = m.counters(CoreId(3));
        assert!(c.elapsed_cycles > 0.0);
        assert_eq!(c.nonhalt_cycles, 0.0);
        assert_eq!(c.instructions, 0.0);
    }

    #[test]
    fn duty_cycle_halves_busy_cycles_and_events() {
        let mut m = machine();
        m.set_running(CoreId(0), Some(ActivityProfile::high_ipc()));
        m.set_duty_cycle(CoreId(0), DutyCycle::new(4).unwrap());
        m.advance_to(SimTime::from_millis(1));
        let c = m.counters(CoreId(0));
        assert!((c.core_utilization() - 0.5).abs() < 1e-9);
        assert!((c.instructions / c.nonhalt_cycles - 0.95 * 4.0).abs() < 1e-9);
    }

    #[test]
    fn idle_machine_draws_idle_power() {
        let mut m = machine();
        m.advance_to(SimTime::from_secs(1));
        assert!((m.true_energy_j() - 26.1).abs() < 1e-6);
        assert_eq!(m.true_active_energy_j(), 0.0);
    }

    #[test]
    fn first_core_costs_more_than_second() {
        // The Fig. 1 chip-maintenance step.
        let mut m = machine();
        let p0 = m.true_power_watts();
        m.set_running(CoreId(0), Some(ActivityProfile::cpu_spin()));
        let p1 = m.true_power_watts();
        m.set_running(CoreId(1), Some(ActivityProfile::cpu_spin()));
        let p2 = m.true_power_watts();
        let first_step = p1 - p0;
        let second_step = p2 - p1;
        assert!(
            first_step > second_step + 4.0,
            "maintenance step missing: {first_step:.1} vs {second_step:.1}"
        );
    }

    #[test]
    fn meter_report_matches_true_power() {
        let mut m = machine();
        m.set_running(CoreId(0), Some(ActivityProfile::stress()));
        let expected = m.true_package_power_watts();
        m.advance_to(SimTime::from_millis(3));
        let id = m.find_meter("on-chip").unwrap();
        let reports = m.pop_meter_reports(id);
        assert!(!reports.is_empty());
        for r in &reports {
            assert!(
                (r.avg_watts - expected).abs() / expected < 0.05,
                "report {} vs true {}",
                r.avg_watts,
                expected
            );
        }
    }

    #[test]
    fn wattsup_reports_arrive_late() {
        let mut m = machine();
        m.advance_to(SimTime::from_millis(2100));
        let id = m.find_meter("wattsup").unwrap();
        assert!(m.pop_meter_reports(id).is_empty(), "report visible too early");
        m.advance_to(SimTime::from_millis(2300));
        let reports = m.pop_meter_reports(id);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].window_end, SimTime::from_secs(1));
        assert_eq!(reports[0].visible_at, SimTime::from_millis(2200));
    }

    #[test]
    fn pmu_fires_after_threshold_cycles() {
        let mut m = machine();
        m.set_running(CoreId(0), Some(ActivityProfile::cpu_spin()));
        m.set_pmu_threshold(CoreId(0), Some(3.1e6)); // 1 ms at full duty
        let dt = m.time_until_pmu(CoreId(0)).unwrap();
        assert!((dt.as_millis_f64() - 1.0).abs() < 1e-6);
        m.advance_to(SimTime::ZERO + dt);
        assert!(m.pmu_expired(CoreId(0)));
        m.set_pmu_threshold(CoreId(0), Some(3.1e6));
        assert!(!m.pmu_expired(CoreId(0)));
    }

    #[test]
    fn pmu_halted_core_never_fires() {
        let mut m = machine();
        m.set_pmu_threshold(CoreId(0), Some(1000.0));
        assert_eq!(m.time_until_pmu(CoreId(0)), None);
        m.advance_to(SimTime::from_millis(10));
        assert!(!m.pmu_expired(CoreId(0)));
    }

    #[test]
    fn duty_cycle_stretches_pmu_deadline() {
        let mut m = machine();
        m.set_running(CoreId(0), Some(ActivityProfile::cpu_spin()));
        m.set_pmu_threshold(CoreId(0), Some(3.1e6));
        m.set_duty_cycle(CoreId(0), DutyCycle::new(2).unwrap());
        let dt = m.time_until_pmu(CoreId(0)).unwrap();
        assert!((dt.as_millis_f64() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn devices_add_power_and_busy_time() {
        let mut m = machine();
        let idle = m.true_power_watts();
        m.set_device_active(DeviceKind::Disk, true);
        assert!((m.true_power_watts() - idle - 1.7).abs() < 1e-9);
        m.advance_to(SimTime::from_millis(500));
        m.set_device_active(DeviceKind::Disk, false);
        assert!((m.device_busy_seconds(DeviceKind::Disk) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn inject_events_feeds_counters_and_pmu() {
        let mut m = machine();
        m.set_pmu_threshold(CoreId(0), Some(1000.0));
        let bundle = CounterBlock {
            nonhalt_cycles: 2948.0,
            instructions: 1656.0,
            flops: 16.0,
            cache_refs: 3.0,
            ..CounterBlock::default()
        };
        m.inject_events(CoreId(0), &bundle);
        assert!(m.pmu_expired(CoreId(0)));
        assert_eq!(m.counters(CoreId(0)).instructions, 1656.0);
    }

    #[test]
    fn advance_is_idempotent_for_past_times() {
        let mut m = machine();
        m.advance_to(SimTime::from_millis(5));
        let e = m.true_energy_j();
        m.advance_to(SimTime::from_millis(3));
        assert_eq!(m.true_energy_j(), e);
        assert_eq!(m.now(), SimTime::from_millis(5));
    }

    #[test]
    fn multi_chip_maintenance_counts_per_chip() {
        let mut m = Machine::new(MachineSpec::woodcrest(), 3);
        m.set_running(CoreId(0), Some(ActivityProfile::cpu_spin()));
        let one_chip = m.true_active_power_watts();
        m.set_running(CoreId(2), Some(ActivityProfile::cpu_spin()));
        let two_chips = m.true_active_power_watts();
        let step = two_chips - one_chip;
        // Second chip's first core pays maintenance again.
        let truth = &m.spec().truth;
        let core_power = truth
            .core_active_power(Some(&ActivityProfile::cpu_spin()), DutyCycle::FULL);
        assert!((step - core_power - truth.chip_maintenance_w).abs() < 1e-9);
    }

    #[test]
    fn meter_dropout_loses_reports() {
        let mut faulty = machine();
        faulty.set_fault_config(FaultConfig {
            seed: 13,
            meter_dropout: 0.5,
            ..FaultConfig::none()
        });
        let mut clean = machine();
        for m in [&mut faulty, &mut clean] {
            m.set_running(CoreId(0), Some(ActivityProfile::cpu_spin()));
            m.advance_to(SimTime::from_millis(200));
        }
        let id = clean.find_meter("on-chip").unwrap();
        let n_clean = clean.pop_meter_reports(id).len();
        let n_faulty = faulty.pop_meter_reports(id).len();
        let dropped = faulty.fault_log().count(crate::FaultKind::MeterDropout) as usize;
        assert!(dropped > 50, "dropped {dropped}");
        assert_eq!(n_clean - n_faulty, dropped);
        // Surviving reports are untouched: the fault streams are
        // independent of the measurement-noise stream.
        assert_eq!(clean.true_energy_j(), faulty.true_energy_j());
    }

    #[test]
    fn extra_lag_postpones_visibility() {
        let mut m = machine();
        m.set_fault_config(FaultConfig {
            seed: 2,
            meter_extra_lag: 1.0, // every window
            meter_extra_lag_max: SimDuration::from_millis(500),
            ..FaultConfig::none()
        });
        m.advance_to(SimTime::from_millis(10));
        let id = m.find_meter("on-chip").unwrap();
        // Normally a window closed at 1 ms is visible at 2 ms; with
        // guaranteed extra lag nothing shows this early.
        assert!(m.pop_meter_reports(id).is_empty());
        assert!(m.fault_log().count(crate::FaultKind::MeterExtraLag) > 0);
        m.advance_to(SimTime::from_millis(600));
        assert!(!m.pop_meter_reports(id).is_empty(), "reports arrive eventually");
    }

    #[test]
    fn counter_wrap_goes_backwards_and_glitch_spikes() {
        let mut m = machine();
        m.set_fault_config(FaultConfig {
            seed: 4,
            counter_glitch_hz: 50.0,
            counter_wrap_hz: 50.0,
            ..FaultConfig::none()
        });
        m.set_running(CoreId(0), Some(ActivityProfile::cpu_spin()));
        let mut last = m.counters(CoreId(0));
        let (mut saw_negative, mut saw_spike) = (false, false);
        for ms in 1..=2000u64 {
            m.advance_to(SimTime::from_millis(ms));
            let cum = m.counters(CoreId(0));
            let d_ins = cum.instructions - last.instructions;
            if d_ins < 0.0 {
                saw_negative = true;
            }
            // cpu_spin runs ≲4 instructions/cycle; a glitch burst dwarfs
            // anything one millisecond can legitimately retire.
            if d_ins > 1.0e8 {
                saw_spike = true;
            }
            last = cum;
        }
        assert!(saw_negative, "no wrap observed");
        assert!(saw_spike, "no glitch observed");
        assert!(m.fault_log().count(crate::FaultKind::CounterWrap) > 0);
        assert!(m.fault_log().count(crate::FaultKind::CounterGlitch) > 0);
    }

    #[test]
    fn fault_free_machine_is_untouched_by_inert_config() {
        let mut a = machine();
        let mut b = machine();
        b.set_fault_config(FaultConfig::none());
        for m in [&mut a, &mut b] {
            m.set_running(CoreId(0), Some(ActivityProfile::stress()));
            m.advance_to(SimTime::from_millis(50));
        }
        assert_eq!(a.counters(CoreId(0)), b.counters(CoreId(0)));
        assert_eq!(a.true_energy_j(), b.true_energy_j());
        let id = a.find_meter("on-chip").unwrap();
        assert_eq!(a.pop_meter_reports(id), b.pop_meter_reports(id));
        assert_eq!(b.fault_log().total(), 0);
    }

    #[test]
    fn meter_lookup_by_name() {
        let m = machine();
        assert!(m.find_meter("on-chip").is_some());
        assert!(m.find_meter("wattsup").is_some());
        assert!(m.find_meter("nope").is_none());
        assert_eq!(m.meter_count(), 2);
        assert_eq!(m.meter_spec(MeterId(0)).name, MeterSpec::on_chip().name);
    }
}
