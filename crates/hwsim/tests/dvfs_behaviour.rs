//! DVFS (chip frequency scaling) behaviour tests.

use hwsim::{ActivityProfile, ChipId, CoreId, DutyCycle, FreqScale, Machine, MachineSpec};
use simkern::SimTime;

fn busy_machine(freq: Option<FreqScale>) -> Machine {
    let mut m = Machine::new(MachineSpec::sandybridge(), 21);
    if let Some(f) = freq {
        m.set_chip_freq(ChipId(0), f);
    }
    for c in 0..4 {
        m.set_running(CoreId(c), Some(ActivityProfile::stress()));
    }
    m
}

#[test]
fn freq_scale_validates_range() {
    assert!(FreqScale::new(0.49).is_none());
    assert!(FreqScale::new(1.01).is_none());
    assert_eq!(FreqScale::new(1.0), Some(FreqScale::NOMINAL));
    assert!(FreqScale::new(0.5).is_some());
}

#[test]
fn power_factor_is_superlinear_in_frequency() {
    let half = FreqScale::new(0.5).unwrap();
    // P ∝ f·V²: at half frequency the factor is well below half.
    assert!(half.power_factor() < 0.45, "factor {}", half.power_factor());
    assert!((FreqScale::NOMINAL.power_factor() - 1.0).abs() < 1e-12);
    // Monotone in f.
    let mut prev = 0.0;
    let mut f = FreqScale::new(0.5).unwrap();
    loop {
        assert!(f.power_factor() > prev);
        prev = f.power_factor();
        if f == FreqScale::NOMINAL {
            break;
        }
        f = f.faster();
    }
}

#[test]
fn lower_frequency_reduces_power_and_progress() {
    let mut full = busy_machine(None);
    let mut slow = busy_machine(FreqScale::new(0.6));
    let p_full = full.true_active_power_watts();
    let p_slow = slow.true_active_power_watts();
    assert!(
        p_slow < p_full * 0.55,
        "superlinear saving: {p_slow:.1} vs {p_full:.1}"
    );
    full.advance_to(SimTime::from_millis(10));
    slow.advance_to(SimTime::from_millis(10));
    let busy_full = full.counters(CoreId(0)).nonhalt_cycles;
    let busy_slow = slow.counters(CoreId(0)).nonhalt_cycles;
    assert!(
        (busy_slow / busy_full - 0.6).abs() < 1e-6,
        "progress scales with frequency: {}",
        busy_slow / busy_full
    );
}

#[test]
fn dvfs_composes_with_duty_cycle() {
    let mut m = busy_machine(FreqScale::new(0.8));
    m.set_duty_cycle(CoreId(0), DutyCycle::new(4).unwrap());
    assert!((m.effective_rate_ghz(CoreId(0)) - 3.1 * 0.8 * 0.5).abs() < 1e-9);
    m.advance_to(SimTime::from_millis(1));
    let c = m.counters(CoreId(0));
    assert!((c.core_utilization() - 0.4).abs() < 1e-9, "util {}", c.core_utilization());
}

#[test]
fn dvfs_is_per_chip_on_multisocket_machines() {
    let mut m = Machine::new(MachineSpec::woodcrest(), 5);
    for c in 0..4 {
        m.set_running(CoreId(c), Some(ActivityProfile::cpu_spin()));
    }
    m.set_chip_freq(ChipId(1), FreqScale::new(0.5).unwrap());
    m.advance_to(SimTime::from_millis(5));
    let fast = m.counters(CoreId(0)).nonhalt_cycles;
    let slow = m.counters(CoreId(2)).nonhalt_cycles;
    assert!((slow / fast - 0.5).abs() < 1e-6, "ratio {}", slow / fast);
    assert_eq!(m.chip_freq(ChipId(0)), FreqScale::NOMINAL);
}

#[test]
fn pmu_deadline_respects_dvfs() {
    let mut m = busy_machine(FreqScale::new(0.5));
    m.set_pmu_threshold(CoreId(0), Some(3.1e6));
    let d = m.time_until_pmu(CoreId(0)).unwrap();
    // Half frequency → twice the wall time for the same cycle budget.
    assert!((d.as_millis_f64() - 2.0).abs() < 1e-6, "deadline {d}");
    m.advance_to(SimTime::ZERO + d);
    assert!(m.pmu_expired(CoreId(0)));
}

#[test]
fn stepping_saturates_at_bounds() {
    let mut f = FreqScale::NOMINAL;
    for _ in 0..20 {
        f = f.slower();
    }
    assert!((f.fraction() - 0.5).abs() < 1e-12);
    for _ in 0..20 {
        f = f.faster();
    }
    assert_eq!(f, FreqScale::NOMINAL);
}
