//! Property-based tests for the hardware simulation.

use hwsim::{ActivityProfile, CoreId, DutyCycle, Machine, MachineSpec};
use proptest::prelude::*;
use simkern::{SimDuration, SimTime};

fn arb_profile() -> impl Strategy<Value = ActivityProfile> {
    (0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0, 0.0f64..=1.0)
        .prop_map(|(i, f, c, m)| ActivityProfile::new(i, f, c, m))
}

proptest! {
    /// Counters are monotone non-decreasing under arbitrary run/duty
    /// sequences, and utilization never exceeds 1.
    #[test]
    fn counters_monotone(
        steps in prop::collection::vec(
            (arb_profile(), 1u8..=8, 1u64..5_000_000, any::<bool>()),
            1..40
        )
    ) {
        let mut m = Machine::new(MachineSpec::sandybridge(), 1);
        let mut t = SimTime::ZERO;
        let mut prev = m.counters(CoreId(0));
        for (profile, duty, ns, busy) in steps {
            m.set_running(CoreId(0), busy.then_some(profile));
            m.set_duty_cycle(CoreId(0), DutyCycle::new(duty).expect("valid"));
            t += SimDuration::from_nanos(ns);
            m.advance_to(t);
            let cur = m.counters(CoreId(0));
            prop_assert!(cur.elapsed_cycles >= prev.elapsed_cycles);
            prop_assert!(cur.nonhalt_cycles >= prev.nonhalt_cycles);
            prop_assert!(cur.instructions >= prev.instructions);
            prop_assert!(cur.nonhalt_cycles <= cur.elapsed_cycles + 1e-6);
            prev = cur;
        }
    }

    /// Energy accounting is additive: advancing in many small steps gives
    /// the same energy as one big step.
    #[test]
    fn energy_additive_over_splits(
        profile in arb_profile(),
        parts in prop::collection::vec(1u64..2_000_000, 1..20),
    ) {
        let total_ns: u64 = parts.iter().sum();
        let mut split = Machine::new(MachineSpec::sandybridge(), 9);
        split.set_running(CoreId(0), Some(profile));
        let mut t = SimTime::ZERO;
        for ns in &parts {
            t += SimDuration::from_nanos(*ns);
            split.advance_to(t);
        }
        let mut whole = Machine::new(MachineSpec::sandybridge(), 9);
        whole.set_running(CoreId(0), Some(profile));
        whole.advance_to(SimTime::from_nanos(total_ns));
        let (a, b) = (split.true_energy_j(), whole.true_energy_j());
        prop_assert!((a - b).abs() < 1e-9 * (1.0 + b), "split {a} vs whole {b}");
    }

    /// True power is linear in the duty fraction for any profile.
    #[test]
    fn power_linear_in_duty(profile in arb_profile(), duty in 1u8..=8) {
        let truth = MachineSpec::sandybridge().truth;
        let d = DutyCycle::new(duty).expect("valid");
        let full = truth.core_active_power(Some(&profile), DutyCycle::FULL);
        let scaled = truth.core_active_power(Some(&profile), d);
        prop_assert!((scaled - full * d.fraction()).abs() < 1e-9);
    }

    /// Active power is zero iff no core runs and no device is active.
    #[test]
    fn idle_machine_draws_no_active_power(ns in 1u64..10_000_000) {
        let mut m = Machine::new(MachineSpec::westmere(), 4);
        m.advance_to(SimTime::from_nanos(ns));
        prop_assert_eq!(m.true_active_energy_j(), 0.0);
        prop_assert!(m.true_energy_j() > 0.0);
    }

    /// Meter reports bracket the true average power (within noise).
    #[test]
    fn meter_reports_track_truth(profile in arb_profile(), cores in 1usize..=4) {
        let mut m = Machine::new(MachineSpec::sandybridge(), 11);
        for c in 0..cores {
            m.set_running(CoreId(c), Some(profile));
        }
        let expected = m.true_package_power_watts();
        m.advance_to(SimTime::from_millis(20));
        let id = m.find_meter("on-chip").expect("meter");
        let reports = m.pop_meter_reports(id);
        prop_assert!(!reports.is_empty());
        for r in reports {
            prop_assert!(
                (r.avg_watts - expected).abs() <= expected * 0.05 + 0.5,
                "report {} vs expected {}",
                r.avg_watts,
                expected
            );
        }
    }

    /// PMU deadlines always make progress: the scheduled delay is at
    /// least one nanosecond and the threshold is reached by then.
    #[test]
    fn pmu_deadline_progresses(
        profile in arb_profile(),
        duty in 1u8..=8,
        threshold in 1.0f64..10_000_000.0,
    ) {
        let mut m = Machine::new(MachineSpec::sandybridge(), 2);
        m.set_running(CoreId(0), Some(profile));
        m.set_duty_cycle(CoreId(0), DutyCycle::new(duty).expect("valid"));
        m.set_pmu_threshold(CoreId(0), Some(threshold));
        let d = m.time_until_pmu(CoreId(0)).expect("armed and busy");
        prop_assert!(d.as_nanos() >= 1);
        m.advance_to(SimTime::ZERO + d);
        prop_assert!(m.pmu_expired(CoreId(0)), "threshold not reached after deadline");
    }
}
