//! End-to-end validation of the accounting pipeline: the Fig. 8
//! mechanics (aggregate attributed energy vs measured active energy,
//! improving across the three approaches).

use hwsim::MachineSpec;
use power_containers::Approach;
use simkern::SimDuration;
use workloads::{calibrate_machine, run_app, LoadLevel, RunConfig, WorkloadKind};

fn error_for(
    kind: WorkloadKind,
    approach: Approach,
    spec: &MachineSpec,
    cal: &workloads::MachineCalibration,
    load: LoadLevel,
) -> f64 {
    let mut cfg = RunConfig::new(spec.clone());
    cfg.approach = approach;
    cfg.load = load;
    cfg.duration = SimDuration::from_secs(10);
    cfg.seed = 1234;
    let outcome = run_app(kind, &cfg, cal);
    let err = outcome.validation_error();
    println!(
        "{} {:?} {}: err={:.1}% util={:.2} measured={:.1}W attributed={:.1}W reqs={}",
        kind,
        approach,
        load.name(),
        err * 100.0,
        outcome.mean_utilization(),
        outcome.measured_active_power_w(),
        outcome.attributed_energy_j() / outcome.end.as_secs_f64(),
        outcome.stats.borrow().completions().len(),
    );
    err
}

#[test]
fn chipshare_approach_validates_normal_workloads_well() {
    let spec = MachineSpec::sandybridge();
    let cal = calibrate_machine(&spec, 42);
    for kind in [WorkloadKind::RsaCrypto, WorkloadKind::Solr] {
        for load in [LoadLevel::Peak, LoadLevel::Half] {
            let err = error_for(kind, Approach::ChipShare, &spec, &cal, load);
            assert!(err < 0.20, "{kind} {load:?} error {err:.3}");
        }
    }
}

#[test]
fn approaches_improve_on_stress() {
    // Stress exercises the hidden co-activity term: Approach #2 should be
    // noticeably wrong and Approach #3 should fix most of it.
    let spec = MachineSpec::sandybridge();
    let cal = calibrate_machine(&spec, 42);
    let e1 = error_for(WorkloadKind::Stress, Approach::CoreEventsOnly, &spec, &cal, LoadLevel::Half);
    let e2 = error_for(WorkloadKind::Stress, Approach::ChipShare, &spec, &cal, LoadLevel::Half);
    let e3 = error_for(WorkloadKind::Stress, Approach::Recalibrated, &spec, &cal, LoadLevel::Half);
    assert!(e2 > 0.05, "stress should stress the offline model, err {e2:.3}");
    assert!(e3 < e2, "recalibration should reduce error: {e3:.3} vs {e2:.3}");
    assert!(e3 < 0.10, "recalibrated error should be small, got {e3:.3}");
    let _ = e1;
}

#[test]
fn multi_stage_webwork_accounts_most_energy() {
    let spec = MachineSpec::sandybridge();
    let cal = calibrate_machine(&spec, 42);
    let err = error_for(WorkloadKind::WeBWorK, Approach::ChipShare, &spec, &cal, LoadLevel::Peak);
    assert!(err < 0.25, "WeBWorK error {err:.3}");
}
