//! Per-application behaviour tests: each §4.2 workload model must show
//! the characteristics the paper describes.

use hwsim::MachineSpec;
use simkern::SimDuration;
use workloads::{
    calibrate_machine, run_app, LoadLevel, MachineCalibration, RunConfig, WorkloadKind,
    POWER_VIRUS_LABEL,
};

fn sb_cal() -> (MachineSpec, MachineCalibration) {
    let spec = MachineSpec::sandybridge();
    let cal = calibrate_machine(&spec, 42);
    (spec, cal)
}

fn quick_run(kind: WorkloadKind, load: LoadLevel) -> workloads::RunOutcome {
    let (spec, cal) = sb_cal();
    let mut cfg = RunConfig::new(spec);
    cfg.load = load;
    cfg.duration = SimDuration::from_secs(4);
    run_app(kind, &cfg, &cal)
}

#[test]
fn rsa_request_energies_are_trimodal() {
    let outcome = quick_run(WorkloadKind::RsaCrypto, LoadLevel::Half);
    let f = outcome.facility.borrow();
    let mut by_label = [(0.0, 0usize); 3];
    for r in f.containers().records() {
        if let Some(l) = r.label {
            let e = &mut by_label[l as usize];
            e.0 += r.energy_j;
            e.1 += 1;
        }
    }
    let means: Vec<f64> = by_label.iter().map(|(e, n)| e / (*n).max(1) as f64).collect();
    assert!(by_label.iter().all(|(_, n)| *n > 20), "all three keys seen: {by_label:?}");
    // Larger keys cost strictly more energy, roughly tracking cycles.
    assert!(means[0] < means[1] && means[1] < means[2], "means {means:?}");
    assert!(means[2] / means[0] > 3.0, "largest/smallest ratio {:.1}", means[2] / means[0]);
}

#[test]
fn solr_has_long_tailed_energy() {
    let outcome = quick_run(WorkloadKind::Solr, LoadLevel::Half);
    let f = outcome.facility.borrow();
    let energies: Vec<f64> = f
        .containers()
        .records()
        .iter()
        .filter(|r| r.busy_seconds > 0.0)
        .map(|r| r.energy_j)
        .collect();
    assert!(energies.len() > 200);
    let p95 = analysis::stats::quantile(&energies, 0.95).unwrap();
    let p50 = analysis::stats::quantile(&energies, 0.50).unwrap();
    assert!(p95 / p50 > 2.0, "Solr tail p95/p50 = {:.2}", p95 / p50);
}

#[test]
fn webwork_spawns_per_request_pipeline_tasks() {
    let outcome = quick_run(WorkloadKind::WeBWorK, LoadLevel::Half);
    let requests = outcome.stats.borrow().completions().len() as u64;
    let created = outcome.kernel.stats().tasks_created;
    // Each request forks shell + latex + dvipng (3 children).
    assert!(requests > 100);
    assert!(
        created as f64 > requests as f64 * 2.5,
        "expected ≥3 forks per request: {created} tasks for {requests} requests"
    );
    // The MySQL round trip means at least two socket messages per request.
    assert!(outcome.kernel.stats().messages as f64 > requests as f64 * 2.5);
}

#[test]
fn gae_background_is_substantial_and_untagged() {
    let outcome = quick_run(WorkloadKind::GaeVosao, LoadLevel::Peak);
    let f = outcome.facility.borrow();
    let c = f.containers();
    let bg = c.background().energy_j();
    let req = c.total_request_energy_j();
    let share = bg / (bg + req);
    assert!(
        (0.15..0.45).contains(&share),
        "background share {share:.2} outside the paper's ~1/3 neighbourhood"
    );
}

#[test]
fn hybrid_viruses_draw_more_power_than_vosao() {
    let outcome = quick_run(WorkloadKind::GaeHybrid, LoadLevel::Half);
    let f = outcome.facility.borrow();
    let mut virus = analysis::stats::Summary::new();
    let mut normal = analysis::stats::Summary::new();
    for r in f.containers().records() {
        if r.busy_seconds <= 0.0 {
            continue;
        }
        match r.label {
            Some(POWER_VIRUS_LABEL) => virus.record(r.mean_power_w),
            Some(_) => normal.record(r.mean_power_w),
            None => {}
        }
    }
    assert!(virus.count() >= 5, "viruses seen: {}", virus.count());
    assert!(
        virus.mean() > normal.mean() + 2.0,
        "virus {:.1} W vs normal {:.1} W",
        virus.mean(),
        normal.mean()
    );
}

#[test]
fn stress_draws_the_most_power_of_all_workloads() {
    let stress = quick_run(WorkloadKind::Stress, LoadLevel::Peak).measured_active_power_w();
    let rsa = quick_run(WorkloadKind::RsaCrypto, LoadLevel::Peak).measured_active_power_w();
    let solr = quick_run(WorkloadKind::Solr, LoadLevel::Peak).measured_active_power_w();
    assert!(
        stress > rsa * 1.3 && stress > solr * 1.2,
        "stress {stress:.1} W vs rsa {rsa:.1} W, solr {solr:.1} W"
    );
}

#[test]
fn peak_load_roughly_doubles_half_load_power() {
    let peak = quick_run(WorkloadKind::Solr, LoadLevel::Peak);
    let half = quick_run(WorkloadKind::Solr, LoadLevel::Half);
    let ratio = peak.measured_active_power_w() / half.measured_active_power_w();
    assert!(
        (1.3..2.3).contains(&ratio),
        "peak/half active power ratio {ratio:.2}"
    );
    assert!(peak.mean_utilization() > half.mean_utilization() * 1.4);
}

#[test]
fn throughput_tracks_offered_rate_below_saturation() {
    let outcome = quick_run(WorkloadKind::RsaCrypto, LoadLevel::Half);
    let secs = outcome.end.as_secs_f64();
    let completed = outcome.stats.borrow().completions().len() as f64 / secs;
    let offered = outcome.offered_rate;
    assert!(
        (completed / offered - 1.0).abs() < 0.15,
        "completed {completed:.0}/s vs offered {offered:.0}/s"
    );
}
