//! Property-based tests for the workload layer.

use hwsim::MachineSpec;
use proptest::prelude::*;
use simkern::{SimDuration, SimRng, SimTime};
use workloads::{apps::WeBWorK, offered_rate, LoadLevel, RequestTrace, WorkloadKind};

proptest! {
    /// Offered rates are positive and scale linearly with the load
    /// fraction on every machine and workload.
    #[test]
    fn offered_rate_scales_linearly(fraction in 0.05f64..1.5) {
        for spec in MachineSpec::all_machines() {
            for kind in WorkloadKind::ALL {
                let app = kind.app();
                let base = offered_rate(app.as_ref(), &spec, LoadLevel::Peak);
                let scaled = offered_rate(app.as_ref(), &spec, LoadLevel::Fraction(fraction));
                prop_assert!(base > 0.0);
                prop_assert!((scaled / base - fraction).abs() < 1e-9);
            }
        }
    }

    /// Every label an app's mix produces maps to positive difficulty /
    /// bounded ranges.
    #[test]
    fn label_mixes_are_well_formed(seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        for kind in WorkloadKind::ALL {
            let app = kind.app();
            for _ in 0..64 {
                let label = app.pick_label(&mut rng);
                match kind {
                    WorkloadKind::RsaCrypto => prop_assert!(label < 3),
                    WorkloadKind::WeBWorK => prop_assert!(label < 3000),
                    WorkloadKind::Solr | WorkloadKind::Stress => prop_assert_eq!(label, 0),
                    WorkloadKind::GaeVosao => prop_assert!(label <= 1),
                    WorkloadKind::GaeHybrid => {
                        prop_assert!(label <= 1 || label == workloads::POWER_VIRUS_LABEL)
                    }
                }
            }
        }
    }

    /// WeBWorK difficulties are deterministic and bounded for all labels.
    #[test]
    fn webwork_difficulty_bounded(label in 0u32..3000) {
        let d = WeBWorK::difficulty(label);
        prop_assert!((0.5..2.5).contains(&d));
        prop_assert_eq!(d, WeBWorK::difficulty(label));
    }

    /// Trace JSON round-trips for arbitrary traces.
    #[test]
    fn trace_jsonl_round_trips(
        entries in prop::collection::vec((0u64..10_000_000_000, 0u32..4000), 0..200)
    ) {
        let trace = RequestTrace::new(
            entries
                .iter()
                .map(|&(ns, label)| workloads::TraceEntry {
                    at: SimTime::from_nanos(ns),
                    label,
                })
                .collect(),
        );
        let back = RequestTrace::from_jsonl(&trace.to_jsonl()).expect("round trip");
        prop_assert_eq!(trace, back);
    }

    /// Synthesized traces respect rate and duration for any seed.
    #[test]
    fn trace_synthesis_bounded(seed in any::<u64>(), rate in 10.0f64..5000.0) {
        let mut rng = SimRng::new(seed);
        let duration = SimDuration::from_millis(500);
        let t = RequestTrace::synthesize(rate, duration, &mut rng, |_| 0);
        prop_assert!(t.entries().iter().all(|e| e.at < SimTime::ZERO + duration));
        // Within 5 sigma of the Poisson expectation.
        let expect = rate * 0.5;
        let sigma = expect.sqrt();
        prop_assert!(
            (t.len() as f64 - expect).abs() < 5.0 * sigma + 5.0,
            "{} arrivals for expectation {expect}",
            t.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A seeded traffic trace is byte-identically reproducible: two
    /// generators built from the same seed and shape emit the same
    /// arrival sequence — times, app indices, labels and optional flags
    /// — for any diurnal amplitude, spike rate, session tail and
    /// optional fraction.
    #[test]
    fn traffic_traces_are_byte_identical_per_seed(
        seed in any::<u64>(),
        amplitude in 0.0f64..0.9,
        spikes_per_sec in 0.05f64..0.8,
        peak_excess in 0.2f64..3.0,
        alpha in 1.1f64..2.5,
        optional_fraction in 0.0f64..1.0,
    ) {
        use workloads::{Diurnal, FlashCrowds, Sessions, TrafficGen, TrafficShape};

        let shape = TrafficShape {
            diurnal: Some(Diurnal {
                period: SimDuration::from_secs(3),
                amplitude,
                phase: 0.0,
            }),
            flash: Some(FlashCrowds {
                spikes_per_sec,
                ramp: SimDuration::from_millis(120),
                hold: SimDuration::from_millis(250),
                decay: SimDuration::from_millis(180),
                peak_excess,
            }),
            sessions: Sessions {
                alpha,
                min_len: 1,
                max_len: 32,
                think: SimDuration::from_millis(25),
            },
            optional_fraction,
        };
        let apps = vec![WorkloadKind::RsaCrypto.app(), WorkloadKind::GaeVosao.app()];
        let end = SimTime::from_secs(3);
        let rates = [25.0, 25.0];
        let mut a = TrafficGen::new(seed, &rates, end, &shape);
        let mut b = TrafficGen::new(seed, &rates, end, &shape);
        prop_assert_eq!(a.spike_count(), b.spike_count());
        loop {
            let (x, y) = (a.next(&apps), b.next(&apps));
            match (x, y) {
                (None, None) => break,
                (Some(x), Some(y)) => {
                    prop_assert_eq!(x.at, y.at, "arrival times must match exactly");
                    prop_assert_eq!(x.app, y.app);
                    prop_assert_eq!(x.label, y.label);
                    prop_assert_eq!(x.optional, y.optional);
                }
                (x, y) => prop_assert!(false, "trace lengths diverged: {:?} vs {:?}", x, y),
            }
        }
        prop_assert_eq!(a.issued(), b.issued());
        prop_assert!(a.issued() > 0, "a 3 s / 50 req/s trace must offer requests");
    }
}
