//! The offline calibration procedure (paper §4.1).
//!
//! "We design a set of microbenchmarks that stress different parts of the
//! system … For each microbenchmark, we use several different load levels
//! (100%, 75%, 50%, and 25% of the peak load) to produce calibration
//! samples. We use the least-square-fit linear regression to calibrate
//! the coefficients."
//!
//! Calibration is an *offline, experimenter-controlled* procedure: unlike
//! production recalibration, it may use the meters' true window
//! timestamps and measure idle power directly.

use crate::driver::scaled_compute;
use hwsim::{ActivityProfile, Machine, MachineSpec};
use ossim::{FnProgram, Kernel, KernelConfig, Op};
use power_containers::{
    Approach, CalibrationSample, CalibrationSet, FacilityConfig, ModelKind,
    PowerContainerFacility, PowerModel,
};
use simkern::{SimDuration, SimTime};
use std::collections::HashMap;

/// Duration of each calibration run.
const RUN_SECS: u64 = 3;
/// Warmup skipped at the start of each run.
const WARMUP: SimDuration = SimDuration::from_millis(500);

/// The calibration microbenchmarks (§4.1's suite).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Microbench {
    /// Raw CPU spin.
    Spin,
    /// Spin with a high instruction rate.
    HighIns,
    /// Spin with heavy floating-point work.
    Float,
    /// Last-level-cache pressure.
    Cache,
    /// Memory-bandwidth pressure.
    Mem,
    /// Heavy disk I/O.
    Disk,
    /// Heavy network I/O.
    Net,
    /// A mixture of the above patterns.
    Mixed,
}

impl Microbench {
    /// All microbenchmarks.
    pub const ALL: [Microbench; 8] = [
        Microbench::Spin,
        Microbench::HighIns,
        Microbench::Float,
        Microbench::Cache,
        Microbench::Mem,
        Microbench::Disk,
        Microbench::Net,
        Microbench::Mixed,
    ];

    fn profile(self) -> ActivityProfile {
        match self {
            Microbench::Spin => ActivityProfile::cpu_spin(),
            Microbench::HighIns => ActivityProfile::high_ipc(),
            Microbench::Float => ActivityProfile::float_heavy(),
            Microbench::Cache => ActivityProfile::cache_heavy(),
            Microbench::Mem => ActivityProfile::memory_bound(),
            Microbench::Disk | Microbench::Net => ActivityProfile::cpu_spin(),
            Microbench::Mixed => ActivityProfile::cpu_spin(), // per-op, see below
        }
    }
}

/// Everything calibration learned about one machine.
#[derive(Debug, Clone)]
pub struct MachineCalibration {
    /// The raw calibration samples and measured idle power.
    pub set: CalibrationSet,
    /// Idle reading of each meter, by meter name.
    pub idle_by_meter: HashMap<&'static str, f64>,
    /// The Approach-#1 model (core events only).
    pub model_core_only: PowerModel,
    /// The Approach-#2/#3 starting model (with chip share).
    pub model_chipshare: PowerModel,
}

impl MachineCalibration {
    /// The offline model for a given approach (Approach #3 starts from
    /// the chip-share model and recalibrates online).
    pub fn model_for(&self, approach: Approach) -> PowerModel {
        match approach.model_kind() {
            ModelKind::CoreEventsOnly => self.model_core_only.clone(),
            ModelKind::WithChipShare => self.model_chipshare.clone(),
        }
    }

    /// Idle reading of the named meter (0.0 if the machine lacks it).
    pub fn meter_idle(&self, name: &str) -> f64 {
        self.idle_by_meter.get(name).copied().unwrap_or(0.0)
    }
}

/// Measures each meter's idle reading on an otherwise untouched machine.
///
/// The idle constant is subtracted from *every* subsequent measurement,
/// so its own noise becomes a systematic bias of the whole calibration;
/// average enough reports to push it well below the per-window noise
/// (one noisy Wattsup second would bias all low-load active power).
fn measure_idle(spec: &MachineSpec, seed: u64) -> HashMap<&'static str, f64> {
    let mut machine = Machine::new(spec.clone(), seed);
    machine.advance_to(SimTime::from_secs(40));
    let mut out = HashMap::new();
    for (i, mspec) in spec.meters.iter().enumerate() {
        let reports = machine.pop_meter_reports(hwsim::MeterId(i));
        let mut sum = 0.0;
        let mut n = 0;
        for r in reports {
            // Skip the first window (partially idle-state setup).
            if r.window_start >= SimTime::from_millis(100) {
                sum += r.avg_watts;
                n += 1;
            }
        }
        out.insert(mspec.name, if n > 0 { sum / n as f64 } else { 0.0 });
    }
    out
}

/// Spawns `k` endless load tasks for a microbenchmark.
fn spawn_bench_tasks(kernel: &mut Kernel, bench: Microbench, k: usize, spec: &MachineSpec) {
    for i in 0..k {
        let spec = spec.clone();
        let program: Box<dyn ossim::Program> = match bench {
            Microbench::Disk => Box::new(FnProgram::new(move |_pc| {
                if i % 2 == 0 {
                    // Keep the disk mostly busy with a little compute.
                    Op::DiskIo { bytes: 400_000 }
                } else {
                    Op::DiskIo { bytes: 300_000 }
                }
            })),
            Microbench::Net => Box::new(FnProgram::new(move |_pc| Op::NetIo { bytes: 900_000 })),
            Microbench::Mixed => {
                let profiles = [
                    ActivityProfile::high_ipc(),
                    ActivityProfile::cache_heavy(),
                    ActivityProfile::float_heavy(),
                    ActivityProfile::memory_bound(),
                ];
                let mut idx = i;
                Box::new(FnProgram::new(move |_pc| {
                    idx += 1;
                    scaled_compute(&spec, 4.0e6, profiles[idx % profiles.len()])
                }))
            }
            other => {
                let profile = other.profile();
                Box::new(FnProgram::new(move |_pc| scaled_compute(&spec, 8.0e6, profile)))
            }
        };
        kernel.spawn(program, None);
    }
}

/// A zero-coefficient facility used purely as a metrics collector during
/// calibration (the metric traces do not depend on the model).
fn metrics_collector(spec: &MachineSpec) -> PowerContainerFacility {
    let model = PowerModel::new(ModelKind::WithChipShare, 0.0, [0.0; 8]);
    let config = FacilityConfig {
        approach: Approach::ChipShare,
        retain_records: false,
        ..FacilityConfig::default()
    };
    PowerContainerFacility::new(model, None, spec, config)
}

/// Runs the full §4.1 calibration procedure on a machine model.
///
/// # Example
///
/// ```no_run
/// use hwsim::MachineSpec;
/// use workloads::calibration::calibrate_machine;
///
/// let cal = calibrate_machine(&MachineSpec::sandybridge(), 42);
/// assert!(cal.model_chipshare.coefficients()[0] > 0.0);
/// ```
pub fn calibrate_machine(spec: &MachineSpec, seed: u64) -> MachineCalibration {
    let idle_by_meter = measure_idle(spec, seed);
    let wattsup_idle = idle_by_meter.get("wattsup").copied().unwrap_or(0.0);
    let mut set = CalibrationSet::new(wattsup_idle);

    let cores = spec.total_cores();
    let mut levels: Vec<usize> = [0.25, 0.5, 0.75, 1.0]
        .iter()
        .map(|f| ((f * cores as f64).ceil() as usize).clamp(1, cores))
        .collect();
    levels.dedup();

    for (b, bench) in Microbench::ALL.iter().enumerate() {
        // I/O benches only need low task counts (the device saturates).
        let bench_levels: Vec<usize> = match bench {
            Microbench::Disk | Microbench::Net => vec![1, 2],
            _ => levels.clone(),
        };
        for (l, &k) in bench_levels.iter().enumerate() {
            let run_seed = seed
                .wrapping_mul(31)
                .wrapping_add((b * 16 + l) as u64 + 1);
            let machine = Machine::new(spec.clone(), run_seed);
            let mut kernel = Kernel::new(machine, KernelConfig::default());
            let facility = metrics_collector(spec);
            let state = facility.state();
            kernel.install_hooks(Box::new(facility));
            spawn_bench_tasks(&mut kernel, *bench, k, spec);
            // Run long enough that wattsup windows inside the measurement
            // period become visible (1.2 s delivery delay).
            kernel.run_until(SimTime::from_secs(RUN_SECS) + SimDuration::from_millis(1400));
            let meter = kernel
                .machine()
                .find_meter("wattsup")
                .expect("calibration machine needs a wattsup meter");
            let reports = kernel.machine_mut().pop_meter_reports(meter);
            let state = state.borrow();
            for r in reports {
                if r.window_start < SimTime::ZERO + WARMUP
                    || r.window_end > SimTime::from_secs(RUN_SECS)
                {
                    continue;
                }
                // Offline privilege: the experimenter knows the window.
                if let Some(metrics) = state.metrics_between(r.window_start, r.window_end) {
                    set.push(CalibrationSample {
                        metrics,
                        active_watts: (r.avg_watts - wattsup_idle).max(0.0),
                    });
                }
            }
        }
    }

    let model_core_only = set
        .fit(ModelKind::CoreEventsOnly)
        .expect("core-only calibration fit");
    let model_chipshare = set
        .fit(ModelKind::WithChipShare)
        .expect("chip-share calibration fit");
    MachineCalibration { set, idle_by_meter, model_core_only, model_chipshare }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_measurement_matches_ground_truth() {
        let spec = MachineSpec::sandybridge();
        let idle = measure_idle(&spec, 7);
        let wattsup = idle["wattsup"];
        assert!(
            (wattsup - 26.1).abs() < 1.0,
            "measured idle {wattsup} vs true 26.1"
        );
        let onchip = idle["on-chip"];
        assert!((onchip - 1.5).abs() < 0.5, "package idle {onchip}");
    }

    #[test]
    fn calibration_recovers_plausible_sandybridge_model() {
        let spec = MachineSpec::sandybridge();
        let cal = calibrate_machine(&spec, 11);
        let c = cal.model_chipshare.coefficients();
        // Per-core busy power ≈ 8.3 W and chip maintenance ≈ 5.6 W in the
        // ground truth; the fit should land in the neighbourhood.
        assert!((6.0..11.0).contains(&c[0]), "core coefficient {}", c[0]);
        assert!((3.0..9.0).contains(&c[5]), "chipshare coefficient {}", c[5]);
        assert!(cal.set.samples().len() > 30, "samples {}", cal.set.samples().len());
        // Idle power is the machine's 26.1 W.
        assert!((cal.model_chipshare.idle_w() - 26.1).abs() < 1.0);
    }

    #[test]
    fn core_only_model_differs_from_chipshare_model() {
        let spec = MachineSpec::woodcrest();
        let cal = calibrate_machine(&spec, 13);
        assert_eq!(cal.model_core_only.coefficients()[5], 0.0);
        assert!(cal.model_chipshare.coefficients()[5] > 1.0);
        // Without the chip-share term, maintenance power is absorbed
        // elsewhere (inflated core term).
        assert!(
            cal.model_core_only.coefficients()[0] > cal.model_chipshare.coefficients()[0]
        );
    }
}
