//! Open-loop load generation and the pooled-worker server pattern.
//!
//! Each application is served by a pool of persistent worker tasks (the
//! paper's Apache worker processes / Tomcat servlet threads). A driver
//! task issues requests as a Poisson process: it picks a worker
//! round-robin, allocates a fresh request context, and sends a tagged
//! message — the worker inherits the request context when it reads the
//! message, exactly the §3.3 propagation mechanism.

use crate::stats::RunStats;
use hwsim::ActivityProfile;
use hwsim::MachineSpec;
use ossim::{ContextId, FnProgram, Kernel, Op, ProcCtx, Program, Resume, SocketId};
use power_containers::FacilityState;
use simkern::{SimDuration, SimRng};
use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::rc::Rc;

/// Allocates request-context identifiers shared between drivers and the
/// harness (distinct ranges per machine keep cluster runs unambiguous).
#[derive(Debug, Clone)]
pub struct CtxAlloc {
    next: Rc<Cell<u64>>,
}

impl CtxAlloc {
    /// Creates an allocator starting at `start`.
    pub fn new(start: u64) -> CtxAlloc {
        CtxAlloc { next: Rc::new(Cell::new(start)) }
    }

    /// Returns a fresh context id.
    pub fn alloc(&self) -> ContextId {
        let id = self.next.get();
        self.next.set(id + 1);
        ContextId(id)
    }
}

/// Everything a request driver needs.
pub struct DriverEnv {
    /// Driver-side endpoints of the worker inbox sockets.
    pub inboxes: Vec<SocketId>,
    /// Mean request inter-arrival gap.
    pub mean_gap: SimDuration,
    /// Picks a request-type label for each arrival.
    pub pick_label: Box<dyn FnMut(&mut SimRng) -> u32>,
    /// Shared run statistics.
    pub stats: Rc<RefCell<RunStats>>,
    /// The facility, for labeling containers at dispatch.
    pub facility: Option<Rc<RefCell<FacilityState>>>,
    /// Context allocator.
    pub ctxs: CtxAlloc,
    /// Stop issuing requests after this many (None = unbounded).
    pub max_requests: Option<u64>,
    /// Hold the first request until this long into the run (e.g. the
    /// Fig. 11 power viruses arriving mid-experiment).
    pub start_after: SimDuration,
}

/// Spawns the Poisson request driver into `kernel`.
pub fn spawn_driver(kernel: &mut Kernel, mut env: DriverEnv) {
    assert!(!env.inboxes.is_empty(), "driver needs at least one worker inbox");
    let mut rr = 0usize;
    let mut issued: u64 = 0;
    let mut sleeping = false;
    let mut started = env.start_after.is_zero();
    kernel.spawn(
        Box::new(FnProgram::new(move |pc: &mut ProcCtx<'_>| {
            if !started {
                started = true;
                return Op::Sleep { duration: env.start_after };
            }
            if env.max_requests.is_some_and(|m| issued >= m) {
                return Op::Exit;
            }
            if !sleeping {
                sleeping = true;
                let gap = pc.rng.exponential(env.mean_gap.as_secs_f64());
                return Op::Sleep { duration: SimDuration::from_secs_f64(gap) };
            }
            sleeping = false;
            issued += 1;
            let label = (env.pick_label)(pc.rng);
            let ctx = env.ctxs.alloc();
            env.stats.borrow_mut().record_arrival(ctx, label, pc.now);
            if let Some(f) = &env.facility {
                f.borrow_mut().containers_mut().set_label(ctx, label, pc.now);
            }
            let inbox = env.inboxes[rr % env.inboxes.len()];
            rr += 1;
            Op::SendTagged { socket: inbox, bytes: 512, payload: label as u64, ctx: Some(ctx) }
        })),
        None,
    );
}

/// The per-request behaviour of a pool worker: given the request label
/// and a [`ProcCtx`], produce the op sequence that serves the request.
pub type RequestOps = Box<dyn FnMut(u32, &mut ProcCtx<'_>) -> Vec<Op>>;

enum WorkerPhase {
    AwaitRequest,
    Working,
}

/// A persistent server worker: blocks on its inbox, inherits each
/// message's request context, executes the app-specific op sequence, then
/// records completion (optionally notifying a closed-loop client) and
/// unbinds.
pub struct PoolWorker {
    rx: SocketId,
    make_ops: RequestOps,
    queue: VecDeque<Op>,
    phase: WorkerPhase,
    stats: Rc<RefCell<RunStats>>,
    notify: Option<SocketId>,
    /// Payload of the request being served, echoed verbatim in the
    /// completion message. The low 32 bits are the app-local label; a
    /// cluster dispatcher packs a request serial into the high 32 bits
    /// so responses stay identifiable even when the context tag is lost
    /// or corrupted in transit.
    req_payload: u64,
}

impl PoolWorker {
    /// Creates a worker reading requests from `rx`. When `notify` is set,
    /// a completion message (the HTTP response, in effect) is sent on it
    /// after each request — closed-loop clients block on the peer end.
    pub fn new(
        rx: SocketId,
        stats: Rc<RefCell<RunStats>>,
        notify: Option<SocketId>,
        make_ops: RequestOps,
    ) -> PoolWorker {
        PoolWorker {
            rx,
            make_ops,
            queue: VecDeque::new(),
            phase: WorkerPhase::AwaitRequest,
            stats,
            notify,
            req_payload: 0,
        }
    }
}

impl Program for PoolWorker {
    fn next_op(&mut self, pc: &mut ProcCtx<'_>) -> Op {
        if let Some(op) = self.queue.pop_front() {
            return op;
        }
        match self.phase {
            WorkerPhase::AwaitRequest => {
                if pc.resume == Resume::Received {
                    // A request arrived; build and start its op sequence.
                    self.req_payload = pc.last_msg.map(|m| m.payload).unwrap_or(0);
                    let label = self.req_payload as u32;
                    self.queue = (self.make_ops)(label, pc).into();
                    self.phase = WorkerPhase::Working;
                    self.queue.pop_front().unwrap_or(Op::Exit)
                } else {
                    Op::Recv { socket: self.rx }
                }
            }
            WorkerPhase::Working => {
                // Op sequence exhausted: the request is complete.
                if let Some(ctx) = pc.context {
                    self.stats.borrow_mut().record_completion(ctx, pc.now);
                }
                self.phase = WorkerPhase::AwaitRequest;
                if let Some(notify) = self.notify {
                    // Respond *while still bound* so the message carries
                    // the request context back to the client (§3.4's
                    // response tagging); the payload is the request's own
                    // payload echoed back, which keeps the response
                    // routable (via the serial in its high bits) even if
                    // the tag was lost in transit. Unbind only afterwards.
                    self.queue.push_back(Op::BindContext(None));
                    self.queue.push_back(Op::Recv { socket: self.rx });
                    Op::Send { socket: notify, bytes: 256, payload: self.req_payload }
                } else {
                    self.queue.push_back(Op::Recv { socket: self.rx });
                    Op::BindContext(None)
                }
            }
        }
    }
}

/// Creates a pool of `workers` [`PoolWorker`] tasks; returns the
/// driver-side inbox endpoints. `notify` is the worker-side endpoint of
/// the completion channel for closed-loop clients, if any.
pub fn spawn_pool(
    kernel: &mut Kernel,
    workers: usize,
    stats: &Rc<RefCell<RunStats>>,
    notify: Option<SocketId>,
    mut make_ops: impl FnMut(usize) -> RequestOps,
) -> Vec<SocketId> {
    let mut inboxes = Vec::with_capacity(workers);
    for w in 0..workers {
        let (tx, rx) = kernel.new_socket_pair();
        inboxes.push(tx);
        kernel.spawn(
            Box::new(PoolWorker::new(rx, Rc::clone(stats), notify, make_ops(w))),
            None,
        );
    }
    inboxes
}

/// A closed-loop client: keeps exactly `concurrency` requests in flight,
/// issuing the next one the moment a completion message arrives — the
/// paper's "test client that can send concurrent requests to the server
/// at a desired load level".
pub struct ClosedLoopDriver {
    /// Worker inbox endpoints (round-robin).
    pub inboxes: Vec<SocketId>,
    /// The driver-side end of the completion channel.
    pub completions_rx: SocketId,
    /// In-flight request count to maintain.
    pub concurrency: usize,
    /// Label picker.
    pub pick_label: Box<dyn FnMut(&mut SimRng) -> u32>,
    /// Shared statistics.
    pub stats: Rc<RefCell<RunStats>>,
    /// Facility for container labeling.
    pub facility: Option<Rc<RefCell<FacilityState>>>,
    /// Context allocator.
    pub ctxs: CtxAlloc,
    /// Slots issued so far during priming (start at 0).
    pub primed: usize,
    /// Round-robin cursor over the inboxes (start at 0).
    pub rr: usize,
}

impl ClosedLoopDriver {
    /// Spawns a closed-loop client into `kernel`; returns the worker-side
    /// completion endpoint that must be passed to [`spawn_pool`].
    #[allow(clippy::too_many_arguments)]
    pub fn spawn(
        kernel: &mut Kernel,
        inboxes: Vec<SocketId>,
        concurrency: usize,
        pick_label: Box<dyn FnMut(&mut SimRng) -> u32>,
        stats: Rc<RefCell<RunStats>>,
        facility: Option<Rc<RefCell<FacilityState>>>,
        ctxs: CtxAlloc,
    ) -> SocketId {
        assert!(concurrency > 0, "closed loop needs at least one slot");
        let (notify_tx, completions_rx) = kernel.new_socket_pair();
        kernel.spawn(
            Box::new(ClosedLoopDriver {
                inboxes,
                completions_rx,
                concurrency,
                pick_label,
                stats,
                facility,
                ctxs,
                primed: 0,
                rr: 0,
            }),
            None,
        );
        notify_tx
    }

    fn issue(&mut self, pc: &mut ProcCtx<'_>) -> Op {
        let label = (self.pick_label)(pc.rng);
        let ctx = self.ctxs.alloc();
        self.stats.borrow_mut().record_arrival(ctx, label, pc.now);
        if let Some(f) = &self.facility {
            f.borrow_mut().containers_mut().set_label(ctx, label, pc.now);
        }
        let inbox = self.inboxes[self.rr % self.inboxes.len()];
        self.rr += 1;
        Op::SendTagged { socket: inbox, bytes: 512, payload: label as u64, ctx: Some(ctx) }
    }
}

impl Program for ClosedLoopDriver {
    fn next_op(&mut self, pc: &mut ProcCtx<'_>) -> Op {
        if self.primed < self.concurrency {
            self.primed += 1;
            return self.issue(pc);
        }
        if pc.resume == Resume::Received {
            // One slot freed; refill it, then go back to waiting.
            return self.issue(pc);
        }
        // The driver itself must never hold a request context.
        if pc.context.is_some() {
            return Op::BindContext(None);
        }
        Op::Recv { socket: self.completions_rx }
    }
}

/// A compute op with the machine's workload-dependent speed scaling
/// applied (older machines need more cycles for the same request).
pub fn scaled_compute(spec: &MachineSpec, cycles: f64, profile: ActivityProfile) -> Op {
    Op::Compute { cycles: cycles * spec.work_scale(&profile), profile }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hwsim::{Machine, MachineSpec};
    use ossim::KernelConfig;
    use simkern::SimTime;

    fn kernel() -> Kernel {
        Kernel::new(Machine::new(MachineSpec::sandybridge(), 5), KernelConfig::default())
    }

    #[test]
    fn ctx_alloc_is_monotonic() {
        let a = CtxAlloc::new(100);
        assert_eq!(a.alloc(), ContextId(100));
        assert_eq!(a.alloc(), ContextId(101));
        let b = a.clone();
        assert_eq!(b.alloc(), ContextId(102));
        assert_eq!(a.alloc(), ContextId(103), "clones share the counter");
    }

    #[test]
    fn pool_serves_requests_and_records_completions() {
        let mut k = kernel();
        let stats = Rc::new(RefCell::new(RunStats::new()));
        let spec = k.machine().spec().clone();
        let inboxes = spawn_pool(&mut k, 2, &stats, None, |_w| {
            let spec = spec.clone();
            Box::new(move |_label, _pc: &mut ProcCtx<'_>| {
                vec![scaled_compute(&spec, 3.1e6, ActivityProfile::high_ipc())]
            })
        });
        spawn_driver(
            &mut k,
            DriverEnv {
                inboxes,
                mean_gap: SimDuration::from_millis(5),
                pick_label: Box::new(|_| 3),
                stats: Rc::clone(&stats),
                facility: None,
                ctxs: CtxAlloc::new(1),
                max_requests: Some(20),
                start_after: SimDuration::ZERO,
            },
        );
        k.run_until(SimTime::from_millis(400));
        let s = stats.borrow();
        assert_eq!(s.issued(), 20);
        assert_eq!(s.completions().len(), 20);
        assert!(s.completions().iter().all(|c| c.label == 3));
        // ~1 ms service at light load.
        let mean = s.response_summary(None).mean();
        assert!(mean > 0.0005 && mean < 0.01, "mean response {mean}s");
    }

    #[test]
    fn worker_inherits_request_context() {
        let mut k = kernel();
        let stats = Rc::new(RefCell::new(RunStats::new()));
        let inboxes = spawn_pool(&mut k, 1, &stats, None, |_w| {
            Box::new(move |_label, _pc: &mut ProcCtx<'_>| {
                vec![Op::Compute { cycles: 1e6, profile: ActivityProfile::cpu_spin() }]
            })
        });
        spawn_driver(
            &mut k,
            DriverEnv {
                inboxes,
                mean_gap: SimDuration::from_millis(2),
                pick_label: Box::new(|_| 0),
                stats: Rc::clone(&stats),
                facility: None,
                ctxs: CtxAlloc::new(500),
                max_requests: Some(5),
                start_after: SimDuration::ZERO,
            },
        );
        k.run_until(SimTime::from_millis(100));
        let s = stats.borrow();
        assert_eq!(s.completions().len(), 5);
        // Completions carry the driver-allocated contexts.
        for c in s.completions() {
            assert!(c.ctx.0 >= 500 && c.ctx.0 < 505);
        }
    }

    #[test]
    fn scaled_compute_applies_machine_factor() {
        let wc = MachineSpec::woodcrest();
        let op = scaled_compute(&wc, 1e6, ActivityProfile::high_ipc());
        match op {
            Op::Compute { cycles, .. } => {
                assert!(cycles > 2e6, "Woodcrest compute-heavy scale ≈2.3×, got {cycles}");
            }
            other => panic!("unexpected op {other:?}"),
        }
    }
}
