//! Workloads for the Power Containers reproduction.
//!
//! This crate provides the paper's §4 evaluation inputs:
//!
//! * the **offline calibration procedure** ([`calibration`]) — the §4.1
//!   microbenchmark suite and least-squares model fitting per machine;
//! * the six **application models** ([`apps`]) — RSA-crypto, Solr,
//!   WeBWorK, Stress, GAE-Vosao and GAE-Hybrid — built from the paper's
//!   descriptions of their stage structure and activity mix;
//! * the **load generator** ([`driver`]) — pooled persistent workers fed
//!   by an open-loop Poisson request driver that propagates request
//!   contexts through tagged socket messages;
//! * a one-call **harness** ([`harness`]) that assembles machine, kernel,
//!   facility, application and driver, and returns a [`RunOutcome`] the
//!   experiment binaries consume.
//!
//! # Example
//!
//! ```no_run
//! use hwsim::MachineSpec;
//! use workloads::{calibrate_machine, run_app, LoadLevel, RunConfig, WorkloadKind};
//!
//! let spec = MachineSpec::sandybridge();
//! let cal = calibrate_machine(&spec, 42);
//! let mut cfg = RunConfig::new(spec);
//! cfg.load = LoadLevel::Half;
//! let outcome = run_app(WorkloadKind::Solr, &cfg, &cal);
//! println!("validation error: {:.1}%", outcome.validation_error() * 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod calibration;
pub mod degrade;
pub mod driver;
pub mod harness;
pub mod loadgen;
pub mod stats;
pub mod trace;
pub mod traffic;

pub use apps::{AppEnv, ServerApp, WorkloadKind, POWER_VIRUS_LABEL};
pub use calibration::{calibrate_machine, MachineCalibration, Microbench};
pub use degrade::{
    autoscale_ledger, current_degrade_scope, degrade_ledger, note_autoscale, note_degrade,
    note_obs, note_requests, obs_ledger, request_ledger, reset_degrade_ledger, AutoscaleDigest,
    DegradeScope, ObsDigest,
};
pub use driver::{
    scaled_compute, spawn_driver, spawn_pool, ClosedLoopDriver, CtxAlloc, DriverEnv, PoolWorker,
};
pub use harness::{
    offered_rate, prepare_app, run_app, run_server_app, LoadLevel, PreparedRun, RunConfig,
    RunOutcome,
};
pub use loadgen::{Arrival, OpenLoopGen};
pub use stats::{Completion, RunStats};
pub use trace::{spawn_trace_driver, RequestTrace, TraceEntry};
pub use traffic::{Diurnal, FlashCrowds, Sessions, TrafficGen, TrafficShape};
