//! A process-wide ledger of graceful-degradation decisions, keyed by
//! experiment scope.
//!
//! Every harness run ends by folding its facility's
//! [`DegradeStats`](power_containers::DegradeStats) into the ledger under
//! the scope the calling thread entered with [`DegradeScope::enter`].
//! The experiment driver enters one scope per experiment inside its
//! worker closure, then reads the whole ledger back with
//! [`degrade_ledger`] to render a status column — without threading a
//! side channel through every experiment's return type.
//!
//! Runs on threads that never entered a scope (unit tests, ad-hoc
//! callers) are deliberately not recorded.

use power_containers::DegradeStats;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::Mutex;

static LEDGER: Mutex<BTreeMap<String, DegradeStats>> = Mutex::new(BTreeMap::new());

/// Requests served per scope, for the driver's throughput column.
static REQUESTS: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());

/// Observability digests per scope, for the driver's p99-energy and
/// alert columns.
static OBS: Mutex<BTreeMap<String, ObsDigest>> = Mutex::new(BTreeMap::new());

/// Elasticity digests per scope, for the driver's resize and brownout
/// columns.
static AUTOSCALE: Mutex<BTreeMap<String, AutoscaleDigest>> = Mutex::new(BTreeMap::new());

/// What one cluster run reports about its elasticity controller: resize
/// transitions completed, brownout-ladder movements, and optional
/// arrivals shed by the ladder. All counters accumulate across a
/// scope's cells; a fixed-fleet run reports zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AutoscaleDigest {
    /// Completed scale-outs (including upgrade provision halves).
    pub scale_outs: u64,
    /// Completed scale-ins (including upgrade drain halves).
    pub scale_ins: u64,
    /// Rolling-upgrade pairs started.
    pub upgrades: u64,
    /// Brownout-ladder climbs.
    pub brownout_engagements: u64,
    /// Arrivals shed because their session was optional while the
    /// ladder held at shed-optional or above.
    pub shed_optional: u64,
}

impl AutoscaleDigest {
    /// `true` when every counter is zero (nothing worth a ledger row).
    pub fn is_empty(&self) -> bool {
        *self == AutoscaleDigest::default()
    }
}

/// What one observability-enabled run reports into the ledger: the
/// typed-alert count and the p99 of its per-request attributed-energy
/// sketch. Folding keeps the alert sum and the worst (highest) p99
/// across a scope's cells.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ObsDigest {
    /// Energy-SLO alerts fired over the run.
    pub alerts: u64,
    /// p99 attributed energy per request, Joules.
    pub p99_j_per_req: f64,
}

thread_local! {
    static CURRENT: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// RAII guard naming the degrade-ledger scope for the current thread;
/// dropping it restores the previous scope (scopes nest).
#[derive(Debug)]
pub struct DegradeScope {
    prev: Option<String>,
}

impl DegradeScope {
    /// Makes `name` the current thread's ledger scope until the guard
    /// drops.
    pub fn enter(name: &str) -> DegradeScope {
        let prev = CURRENT.with(|c| c.replace(Some(name.to_string())));
        DegradeScope { prev }
    }
}

impl Drop for DegradeScope {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// The current thread's ledger scope, if any — lets a thread pool
/// re-enter the scope of the thread that spawned its tasks.
pub fn current_degrade_scope() -> Option<String> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Folds `stats` into the ledger under the current thread's scope; a
/// no-op when no [`DegradeScope`] is active.
pub fn note_degrade(stats: DegradeStats) {
    let Some(scope) = CURRENT.with(|c| c.borrow().clone()) else {
        return;
    };
    let mut ledger = LEDGER.lock().unwrap_or_else(|e| e.into_inner());
    *ledger.entry(scope).or_default() += stats;
}

/// A snapshot of the ledger, sorted by scope name.
pub fn degrade_ledger() -> Vec<(String, DegradeStats)> {
    let ledger = LEDGER.lock().unwrap_or_else(|e| e.into_inner());
    ledger.iter().map(|(k, v)| (k.clone(), *v)).collect()
}

/// Adds `count` served requests to the current scope's throughput
/// ledger; a no-op when no [`DegradeScope`] is active. Simulation
/// engines call this once per run with the number of requests the
/// load generator offered, so the experiment driver can render a
/// requests-per-wall-second column without a side channel through
/// every experiment's return type.
pub fn note_requests(count: u64) {
    if count == 0 {
        return;
    }
    let Some(scope) = CURRENT.with(|c| c.borrow().clone()) else {
        return;
    };
    let mut ledger = REQUESTS.lock().unwrap_or_else(|e| e.into_inner());
    *ledger.entry(scope).or_default() += count;
}

/// A snapshot of the per-scope request counts, sorted by scope name.
pub fn request_ledger() -> Vec<(String, u64)> {
    let ledger = REQUESTS.lock().unwrap_or_else(|e| e.into_inner());
    ledger.iter().map(|(k, v)| (k.clone(), *v)).collect()
}

/// Folds one run's observability digest into the ledger under the
/// current thread's scope; a no-op when no [`DegradeScope`] is active.
/// Alerts accumulate; the p99 keeps the scope's worst cell.
pub fn note_obs(digest: ObsDigest) {
    let Some(scope) = CURRENT.with(|c| c.borrow().clone()) else {
        return;
    };
    let mut ledger = OBS.lock().unwrap_or_else(|e| e.into_inner());
    let entry = ledger.entry(scope).or_default();
    entry.alerts += digest.alerts;
    entry.p99_j_per_req = entry.p99_j_per_req.max(digest.p99_j_per_req);
}

/// A snapshot of the per-scope observability digests, sorted by scope
/// name.
pub fn obs_ledger() -> Vec<(String, ObsDigest)> {
    let ledger = OBS.lock().unwrap_or_else(|e| e.into_inner());
    ledger.iter().map(|(k, v)| (k.clone(), *v)).collect()
}

/// Folds one cluster run's elasticity digest into the ledger under the
/// current thread's scope. Empty digests (fixed-fleet runs) never
/// create entries, and runs without a [`DegradeScope`] are dropped.
pub fn note_autoscale(digest: AutoscaleDigest) {
    if digest.is_empty() {
        return;
    }
    let Some(scope) = CURRENT.with(|c| c.borrow().clone()) else {
        return;
    };
    let mut ledger = AUTOSCALE.lock().unwrap_or_else(|e| e.into_inner());
    let entry = ledger.entry(scope).or_default();
    entry.scale_outs += digest.scale_outs;
    entry.scale_ins += digest.scale_ins;
    entry.upgrades += digest.upgrades;
    entry.brownout_engagements += digest.brownout_engagements;
    entry.shed_optional += digest.shed_optional;
}

/// A snapshot of the per-scope elasticity digests, sorted by scope
/// name.
pub fn autoscale_ledger() -> Vec<(String, AutoscaleDigest)> {
    let ledger = AUTOSCALE.lock().unwrap_or_else(|e| e.into_inner());
    ledger.iter().map(|(k, v)| (k.clone(), *v)).collect()
}

/// Clears all ledgers (start of a fresh experiment batch).
pub fn reset_degrade_ledger() {
    LEDGER.lock().unwrap_or_else(|e| e.into_inner()).clear();
    REQUESTS.lock().unwrap_or_else(|e| e.into_inner()).clear();
    OBS.lock().unwrap_or_else(|e| e.into_inner()).clear();
    AUTOSCALE.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test exercises the whole module: the ledger is process-global,
    // so independent #[test]s would race each other's resets.
    #[test]
    fn scopes_accumulate_nest_and_reset() {
        reset_degrade_ledger();
        let hit = DegradeStats { meter_gaps: 1, ..DegradeStats::default() };

        // No scope: dropped.
        note_degrade(hit);
        assert!(degrade_ledger().is_empty());

        {
            let _outer = DegradeScope::enter("outer");
            note_degrade(hit);
            note_degrade(hit);
            {
                let _inner = DegradeScope::enter("inner");
                note_degrade(hit);
            }
            // Back to the outer scope after the inner guard drops.
            note_degrade(hit);
        }
        let ledger = degrade_ledger();
        assert_eq!(
            ledger.iter().map(|(k, v)| (k.as_str(), v.meter_gaps)).collect::<Vec<_>>(),
            vec![("inner", 1), ("outer", 3)]
        );

        // The request ledger shares the scope machinery.
        note_requests(5); // no scope: dropped
        {
            let _outer = DegradeScope::enter("outer");
            note_requests(100);
            note_requests(0); // zero counts never create entries
            note_requests(20);
        }
        assert_eq!(
            request_ledger()
                .iter()
                .map(|(k, v)| (k.as_str(), *v))
                .collect::<Vec<_>>(),
            vec![("outer", 120)]
        );

        // The autoscale ledger accumulates and drops empty digests.
        note_autoscale(AutoscaleDigest { scale_outs: 1, ..AutoscaleDigest::default() }); // no scope
        {
            let _outer = DegradeScope::enter("outer");
            note_autoscale(AutoscaleDigest::default()); // empty: no entry
            note_autoscale(AutoscaleDigest {
                scale_outs: 3,
                scale_ins: 2,
                upgrades: 1,
                brownout_engagements: 4,
                shed_optional: 7,
            });
            note_autoscale(AutoscaleDigest { scale_outs: 1, ..AutoscaleDigest::default() });
        }
        assert_eq!(
            autoscale_ledger(),
            vec![(
                "outer".to_string(),
                AutoscaleDigest {
                    scale_outs: 4,
                    scale_ins: 2,
                    upgrades: 1,
                    brownout_engagements: 4,
                    shed_optional: 7,
                }
            )]
        );

        // The obs ledger sums alerts and keeps the worst p99.
        note_obs(ObsDigest { alerts: 1, p99_j_per_req: 0.5 }); // no scope: dropped
        {
            let _outer = DegradeScope::enter("outer");
            note_obs(ObsDigest { alerts: 2, p99_j_per_req: 0.8 });
            note_obs(ObsDigest { alerts: 1, p99_j_per_req: 0.3 });
        }
        assert_eq!(
            obs_ledger(),
            vec![("outer".to_string(), ObsDigest { alerts: 3, p99_j_per_req: 0.8 })]
        );

        reset_degrade_ledger();
        assert!(degrade_ledger().is_empty());
        assert!(request_ledger().is_empty());
        assert!(obs_ledger().is_empty());
        assert!(autoscale_ledger().is_empty());
    }
}
