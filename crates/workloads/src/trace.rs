//! Trace-driven request replay.
//!
//! The paper drives WeBWorK with "user requests logged at the real site".
//! This module provides the equivalent facility: a [`RequestTrace`] is a
//! time-stamped sequence of labeled arrivals that can be captured from a
//! live run, synthesized from a mix model, saved/loaded as JSON lines,
//! and replayed through a trace driver — so an experiment can be repeated
//! against the *identical* request sequence while varying machine,
//! approach, or policy.

use crate::driver::CtxAlloc;
use crate::stats::RunStats;
use ossim::{FnProgram, Kernel, Op, SocketId};
use power_containers::FacilityState;
use simkern::{SimDuration, SimRng, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// One traced arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// Arrival time relative to the trace start.
    pub at: SimTime,
    /// Request-type label.
    pub label: u32,
}

/// A replayable request trace (arrivals sorted by time).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RequestTrace {
    entries: Vec<TraceEntry>,
}

impl RequestTrace {
    /// Creates a trace from entries, sorting them by arrival time.
    pub fn new(mut entries: Vec<TraceEntry>) -> RequestTrace {
        entries.sort_by_key(|e| e.at);
        RequestTrace { entries }
    }

    /// The arrivals, in time order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of arrivals.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the trace holds no arrivals.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total span from the first to the last arrival.
    pub fn span(&self) -> SimDuration {
        match (self.entries.first(), self.entries.last()) {
            (Some(a), Some(b)) => b.at.duration_since(a.at),
            _ => SimDuration::ZERO,
        }
    }

    /// Synthesizes a Poisson trace: `rate` arrivals/second over
    /// `duration`, labels drawn from `pick_label`.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn synthesize(
        rate: f64,
        duration: SimDuration,
        rng: &mut SimRng,
        mut pick_label: impl FnMut(&mut SimRng) -> u32,
    ) -> RequestTrace {
        assert!(rate > 0.0, "rate must be positive");
        let mut entries = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            t += SimDuration::from_secs_f64(rng.exponential(1.0 / rate));
            if t >= SimTime::ZERO + duration {
                break;
            }
            entries.push(TraceEntry { at: t, label: pick_label(rng) });
        }
        RequestTrace { entries }
    }

    /// Captures a trace from a finished run's arrival log (completions
    /// carry the original arrival instants).
    pub fn from_run(stats: &RunStats) -> RequestTrace {
        RequestTrace::new(
            stats
                .completions()
                .iter()
                .map(|c| TraceEntry { at: c.arrived, label: c.label })
                .collect(),
        )
    }

    /// Serializes as JSON lines (`{"at_ns":…,"label":…}` per arrival).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!(
                "{{\"at_ns\":{},\"label\":{}}}\n",
                e.at.as_nanos(),
                e.label
            ));
        }
        out
    }

    /// Parses the JSON-lines form produced by [`RequestTrace::to_jsonl`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_jsonl(text: &str) -> Result<RequestTrace, String> {
        let mut entries = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let parsed: serde_json::Value = serde_json::from_str(line)
                .map_err(|e| format!("line {}: {e}", i + 1))?;
            let at = parsed["at_ns"]
                .as_u64()
                .ok_or_else(|| format!("line {}: missing at_ns", i + 1))?;
            let label = parsed["label"]
                .as_u64()
                .ok_or_else(|| format!("line {}: missing label", i + 1))?;
            entries.push(TraceEntry { at: SimTime::from_nanos(at), label: label as u32 });
        }
        Ok(RequestTrace::new(entries))
    }

    /// Keeps only arrivals inside `[from, to)`, re-based to start at zero.
    pub fn window(&self, from: SimTime, to: SimTime) -> RequestTrace {
        RequestTrace {
            entries: self
                .entries
                .iter()
                .filter(|e| e.at >= from && e.at < to)
                .map(|e| TraceEntry { at: SimTime::ZERO + e.at.duration_since(from), label: e.label })
                .collect(),
        }
    }
}

/// Spawns a driver that replays `trace` into the worker `inboxes`
/// (round-robin), recording arrivals exactly like the Poisson driver.
pub fn spawn_trace_driver(
    kernel: &mut Kernel,
    trace: RequestTrace,
    inboxes: Vec<SocketId>,
    stats: Rc<RefCell<RunStats>>,
    facility: Option<Rc<RefCell<FacilityState>>>,
    ctxs: CtxAlloc,
) {
    assert!(!inboxes.is_empty(), "trace driver needs at least one inbox");
    let mut idx = 0usize;
    let mut rr = 0usize;
    let mut pending_send: Option<u32> = None;
    kernel.spawn(
        Box::new(FnProgram::new(move |pc| {
            if let Some(label) = pending_send.take() {
                let ctx = ctxs.alloc();
                stats.borrow_mut().record_arrival(ctx, label, pc.now);
                if let Some(f) = &facility {
                    f.borrow_mut().containers_mut().set_label(ctx, label, pc.now);
                }
                let inbox = inboxes[rr % inboxes.len()];
                rr += 1;
                return Op::SendTagged {
                    socket: inbox,
                    bytes: 512,
                    payload: label as u64,
                    ctx: Some(ctx),
                };
            }
            let Some(entry) = trace.entries().get(idx) else {
                return Op::Exit;
            };
            idx += 1;
            pending_send = Some(entry.label);
            let gap = entry.at.duration_since(pc.now);
            if gap.is_zero() {
                // Issue immediately on the next call.
                Op::BindContext(None)
            } else {
                Op::Sleep { duration: gap }
            }
        })),
        None,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> RequestTrace {
        RequestTrace::new(vec![
            TraceEntry { at: SimTime::from_millis(5), label: 2 },
            TraceEntry { at: SimTime::from_millis(1), label: 0 },
            TraceEntry { at: SimTime::from_millis(3), label: 1 },
        ])
    }

    #[test]
    fn new_sorts_by_time() {
        let t = sample_trace();
        let labels: Vec<u32> = t.entries().iter().map(|e| e.label).collect();
        assert_eq!(labels, vec![0, 1, 2]);
        assert_eq!(t.span(), SimDuration::from_millis(4));
    }

    #[test]
    fn jsonl_round_trips() {
        let t = sample_trace();
        let text = t.to_jsonl();
        let back = RequestTrace::from_jsonl(&text).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn from_jsonl_reports_bad_lines() {
        assert!(RequestTrace::from_jsonl("not json").is_err());
        assert!(RequestTrace::from_jsonl("{\"at_ns\":1}").is_err());
        // Blank lines are fine.
        let ok = RequestTrace::from_jsonl("\n{\"at_ns\":5,\"label\":1}\n\n").unwrap();
        assert_eq!(ok.len(), 1);
    }

    #[test]
    fn synthesize_respects_rate_and_duration() {
        let mut rng = SimRng::new(3);
        let t = RequestTrace::synthesize(
            1000.0,
            SimDuration::from_secs(2),
            &mut rng,
            |rng| rng.next_below(3) as u32,
        );
        assert!((1700..2300).contains(&t.len()), "arrivals {}", t.len());
        assert!(t.entries().iter().all(|e| e.at < SimTime::from_secs(2)));
        assert!(t.entries().windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn window_rebases_to_zero() {
        let t = sample_trace();
        let w = t.window(SimTime::from_millis(2), SimTime::from_millis(4));
        assert_eq!(w.len(), 1);
        assert_eq!(w.entries()[0].at, SimTime::from_millis(1));
        assert_eq!(w.entries()[0].label, 1);
    }

    #[test]
    fn replay_delivers_every_request() {
        use crate::driver::spawn_pool;
        use hwsim::{ActivityProfile, Machine, MachineSpec};
        use ossim::KernelConfig;

        let mut rng = SimRng::new(9);
        let trace = RequestTrace::synthesize(
            200.0,
            SimDuration::from_secs(1),
            &mut rng,
            |_| 0,
        );
        let expected = trace.len();
        let mut kernel =
            Kernel::new(Machine::new(MachineSpec::sandybridge(), 4), KernelConfig::default());
        let stats = Rc::new(RefCell::new(RunStats::new()));
        let inboxes = spawn_pool(&mut kernel, 8, &stats, None, |_w| {
            Box::new(|_label, _pc| {
                vec![Op::Compute { cycles: 1e6, profile: ActivityProfile::cpu_spin() }]
            })
        });
        spawn_trace_driver(
            &mut kernel,
            trace,
            inboxes,
            Rc::clone(&stats),
            None,
            CtxAlloc::new(1),
        );
        kernel.run_until(SimTime::from_millis(1500));
        assert_eq!(stats.borrow().completions().len(), expected);
        // Replay is deterministic: arrival times in stats equal the trace.
        let replayed = RequestTrace::from_run(&stats.borrow());
        assert_eq!(replayed.len(), expected);
    }
}
