//! Deterministic open-loop load generation for cluster-scale runs.
//!
//! A dispatcher driving many nodes cannot reuse the in-kernel Poisson
//! driver ([`crate::driver::spawn_driver`]) — arrivals must exist
//! *outside* any one machine so they can be routed. [`OpenLoopGen`]
//! produces the same merged arrival process deterministically: one
//! independent Poisson stream per application, each owning its own
//! seeded RNG (inter-arrival gaps and label picks draw from separate
//! streams), merged in time order. Two generators built from equal
//! seeds and rates yield byte-identical arrival sequences regardless of
//! how the caller interleaves other randomness.

use crate::apps::ServerApp;
use simkern::{SimDuration, SimRng, SimTime};

/// One generated request arrival.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Arrival {
    /// Arrival time.
    pub at: SimTime,
    /// Index into the app mix the generator was built with.
    pub app: usize,
    /// App-local request-type label.
    pub label: u32,
    /// Whether the request belongs to an *optional* session — work a
    /// browned-out cluster sheds before violating its power cap. Open
    /// loop streams never mark arrivals optional; only
    /// [`TrafficGen`](crate::TrafficGen) sessions do.
    pub optional: bool,
}

/// One app's Poisson stream.
#[derive(Debug)]
struct Stream {
    next_at: SimTime,
    mean_gap: f64,
    gap_rng: SimRng,
    label_rng: SimRng,
}

/// A deterministic merged open-loop arrival generator.
#[derive(Debug)]
pub struct OpenLoopGen {
    streams: Vec<Stream>,
    end: SimTime,
    issued: u64,
}

impl OpenLoopGen {
    /// Creates a generator producing one Poisson stream per entry of
    /// `rates` (arrivals per simulated second), stopping at `end`.
    ///
    /// # Panics
    ///
    /// Panics if `rates` is empty or any rate is not positive.
    pub fn new(seed: u64, rates: &[f64], end: SimTime) -> OpenLoopGen {
        assert!(!rates.is_empty(), "load generator needs at least one stream");
        let streams = rates
            .iter()
            .enumerate()
            .map(|(i, &rate)| {
                assert!(rate > 0.0, "stream {i} rate must be positive");
                let mut gap_rng = SimRng::new(seed).split(0xC1A5 ^ i as u64);
                let label_rng = SimRng::new(seed).split(0x1ABE1 ^ i as u64);
                let first = gap_rng.exponential(1.0 / rate);
                Stream {
                    next_at: SimTime::ZERO + SimDuration::from_secs_f64(first),
                    mean_gap: 1.0 / rate,
                    gap_rng,
                    label_rng,
                }
            })
            .collect();
        OpenLoopGen { streams, end, issued: 0 }
    }

    /// The next arrival in merged time order (labels drawn from the
    /// owning app's distribution), or `None` once every stream has
    /// passed the end of the run.
    pub fn next(&mut self, apps: &[Box<dyn ServerApp>]) -> Option<Arrival> {
        assert_eq!(apps.len(), self.streams.len(), "one app per stream");
        let (i, _) = self
            .streams
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.next_at)
            .expect("streams nonempty");
        let s = &mut self.streams[i];
        let at = s.next_at;
        if at >= self.end {
            return None;
        }
        let gap = s.gap_rng.exponential(s.mean_gap);
        s.next_at = at + SimDuration::from_secs_f64(gap);
        let label = apps[i].pick_label(&mut s.label_rng);
        self.issued += 1;
        Some(Arrival { at, app: i, label, optional: false })
    }

    /// Arrivals produced so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadKind;

    fn apps() -> Vec<Box<dyn ServerApp>> {
        vec![WorkloadKind::RsaCrypto.app(), WorkloadKind::GaeVosao.app()]
    }

    fn drain(gen: &mut OpenLoopGen, apps: &[Box<dyn ServerApp>]) -> Vec<Arrival> {
        std::iter::from_fn(|| gen.next(apps)).collect()
    }

    #[test]
    fn equal_seeds_produce_identical_sequences() {
        let apps = apps();
        let end = SimTime::from_millis(2000);
        let a = drain(&mut OpenLoopGen::new(7, &[100.0, 100.0], end), &apps);
        let b = drain(&mut OpenLoopGen::new(7, &[100.0, 100.0], end), &apps);
        assert!(!a.is_empty());
        assert_eq!(a, b);
        let c = drain(&mut OpenLoopGen::new(8, &[100.0, 100.0], end), &apps);
        assert_ne!(a, c, "different seeds must decorrelate");
    }

    #[test]
    fn arrivals_are_time_ordered_and_bounded() {
        let apps = apps();
        let end = SimTime::from_millis(1500);
        let arrivals = drain(&mut OpenLoopGen::new(3, &[200.0, 50.0], end), &apps);
        for w in arrivals.windows(2) {
            assert!(w[0].at <= w[1].at, "merged stream out of order");
        }
        assert!(arrivals.iter().all(|a| a.at < end));
    }

    #[test]
    fn per_stream_rates_are_respected() {
        let apps = apps();
        let end = SimTime::from_millis(20_000);
        let mut gen = OpenLoopGen::new(42, &[300.0, 100.0], end);
        let arrivals = drain(&mut gen, &apps);
        let n0 = arrivals.iter().filter(|a| a.app == 0).count() as f64;
        let n1 = arrivals.iter().filter(|a| a.app == 1).count() as f64;
        assert!((n0 / 20.0 - 300.0).abs() < 30.0, "stream 0 rate {}", n0 / 20.0);
        assert!((n1 / 20.0 - 100.0).abs() < 15.0, "stream 1 rate {}", n1 / 20.0);
        assert_eq!(gen.issued(), arrivals.len() as u64);
    }
}
