//! Stress: the Stressful Application Test model (paper §4.2).
//!
//! Adler-32 checksums over a large memory segment with added floating-
//! point work keep the core pipeline, FP unit, and cache/memory system
//! simultaneously busy — exactly the co-activity pattern the offline
//! linear model was never calibrated on, which is why Stress dominates
//! the Fig. 8 validation error until online recalibration kicks in. The
//! paper adapted it to a server-style workload of ~100 ms requests.

use crate::apps::{AppEnv, ServerApp, WorkloadKind};
use crate::driver::{scaled_compute, spawn_pool};
use hwsim::ActivityProfile;
use ossim::{Kernel, SocketId};
use simkern::SimRng;

/// One request's busy cycles (~100 ms at 3.1 GHz).
const REQUEST_CYCLES: f64 = 310.0e6;

/// The Stress application.
#[derive(Debug, Clone, Default)]
pub struct Stress;

impl Stress {
    /// Creates the app.
    pub fn new() -> Stress {
        Stress
    }
}

impl ServerApp for Stress {
    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Stress
    }

    fn setup(&self, kernel: &mut Kernel, env: &AppEnv) -> Vec<SocketId> {
        let spec = env.spec.clone();
        spawn_pool(kernel, env.workers, &env.stats, env.notify, move |_w| {
            let spec = spec.clone();
            Box::new(move |_label, _pc| {
                vec![scaled_compute(&spec, REQUEST_CYCLES, ActivityProfile::stress())]
            })
        })
    }

    fn mean_request_cycles(&self) -> f64 {
        REQUEST_CYCLES
    }

    fn representative_profile(&self) -> ActivityProfile {
        ActivityProfile::stress()
    }

    fn pick_label(&self, _rng: &mut SimRng) -> u32 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_are_long_and_all_units_busy() {
        let app = Stress::new();
        assert!(app.mean_request_cycles() >= 3.0e8);
        let p = app.representative_profile();
        assert!(p.ins > 0.5 && p.flops > 0.5 && p.cache > 0.5 && p.mem > 0.5);
    }
}
