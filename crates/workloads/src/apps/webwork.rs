//! WeBWorK: the multi-stage web-application model (paper §4.2, Fig. 4).
//!
//! A request flows through the stages the paper's Fig. 4 captures:
//!
//! ```text
//! client → httpd (PHP) → MySQL thread → httpd → shell → latex
//!                                              ↘ (wait)  dvipng
//!        → httpd (render) → disk/net I/O → response
//! ```
//!
//! The httpd worker is a pooled process serving many requests over its
//! lifetime; the MySQL thread is a single persistent task reached over a
//! shared socket (the request context rides each message); the external
//! `latex`/`dvipng` programs are forked children inheriting the context.
//! Requests are drawn from ~3,000 teacher-created problem sets with a
//! popularity skew and per-set difficulty.

use crate::apps::{AppEnv, ServerApp, WorkloadKind};
use crate::driver::{scaled_compute, spawn_pool};
use hwsim::ActivityProfile;
use ossim::{Kernel, Op, ProcCtx, Program, Resume, ScriptProgram, SocketId};
use simkern::SimRng;

/// Number of distinct problem sets.
pub const PROBLEM_SETS: u32 = 3000;

/// The WeBWorK application.
#[derive(Debug, Clone, Default)]
pub struct WeBWorK;

impl WeBWorK {
    /// Creates the app.
    pub fn new() -> WeBWorK {
        WeBWorK
    }

    /// PHP request-processing profile (instruction heavy).
    pub fn php_profile() -> ActivityProfile {
        ActivityProfile::new(0.75, 0.05, 0.25, 0.05)
    }

    /// MySQL query profile (cache/memory).
    pub fn mysql_profile() -> ActivityProfile {
        ActivityProfile::new(0.45, 0.01, 0.65, 0.35)
    }

    /// latex typesetting profile (integer + floating point).
    pub fn latex_profile() -> ActivityProfile {
        ActivityProfile::new(0.80, 0.45, 0.15, 0.02)
    }

    /// dvipng rasterization profile.
    pub fn dvipng_profile() -> ActivityProfile {
        ActivityProfile::new(0.60, 0.20, 0.55, 0.20)
    }

    /// Per-problem-set difficulty multiplier in `[0.5, 2.5)`,
    /// deterministic in the set id.
    pub fn difficulty(label: u32) -> f64 {
        let h = (label as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33;
        0.5 + (h % 1000) as f64 / 500.0
    }

    /// Mean busy cycles per request for a given difficulty (all stages).
    fn cycles_at(d: f64) -> f64 {
        // php1 + php2 + render scale with difficulty; mysql, shell,
        // latex, dvipng partially.
        d * (7.0e6 + 5.0e6 + 4.0e6) + 2.5e6 + 0.8e6 + d * (5.0e6 + 3.0e6)
    }
}

/// The persistent MySQL service thread: receives queries on a shared
/// socket (inheriting each query's request context), executes them, and
/// replies to the per-worker reply socket named in the payload.
struct MysqlThread {
    rx: SocketId,
    spec: hwsim::MachineSpec,
    reply_to: Option<SocketId>,
    phase: MysqlPhase,
}

enum MysqlPhase {
    Await,
    Computing,
    Replied,
}

impl Program for MysqlThread {
    fn next_op(&mut self, pc: &mut ProcCtx<'_>) -> Op {
        if pc.resume == Resume::Received {
            let payload = pc.last_msg.map(|m| m.payload).unwrap_or(0);
            self.reply_to = Some(SocketId(payload as u32));
            self.phase = MysqlPhase::Computing;
            return scaled_compute(&self.spec, 2.5e6, WeBWorK::mysql_profile());
        }
        match self.phase {
            MysqlPhase::Computing => {
                self.phase = MysqlPhase::Replied;
                let dst = self.reply_to.take().expect("reply destination recorded");
                Op::Send { socket: dst, bytes: 4_096, payload: 0 }
            }
            MysqlPhase::Replied => {
                // Release the request context before idling so the
                // container's reference count can reach zero (§3.5).
                self.phase = MysqlPhase::Await;
                Op::BindContext(None)
            }
            MysqlPhase::Await => Op::Recv { socket: self.rx },
        }
    }
}

impl ServerApp for WeBWorK {
    fn kind(&self) -> WorkloadKind {
        WorkloadKind::WeBWorK
    }

    fn setup(&self, kernel: &mut Kernel, env: &AppEnv) -> Vec<SocketId> {
        let spec = env.spec.clone();
        // One shared MySQL inbox; every httpd worker sends into it.
        let (mysql_tx, mysql_rx) = kernel.new_socket_pair();
        kernel.spawn(
            Box::new(MysqlThread {
                rx: mysql_rx,
                spec: spec.clone(),
                reply_to: None,
                phase: MysqlPhase::Await,
            }),
            None,
        );
        spawn_pool(kernel, env.workers, &env.stats, env.notify, move |_w| {
            let spec = spec.clone();
            let mut reply_pair: Option<(SocketId, SocketId)> = None;
            Box::new(move |label, pc| {
                // Each worker keeps one persistent reply connection from
                // MySQL (created lazily on first request).
                let (reply_tx, reply_rx) =
                    *reply_pair.get_or_insert_with(|| pc.new_socket_pair());
                let d = WeBWorK::difficulty(label);
                let shell: Box<ScriptProgram> = Box::new(ScriptProgram::new(vec![
                    scaled_compute(&spec, 0.8e6, ActivityProfile::cpu_spin()),
                    Op::Fork {
                        child: Box::new(ScriptProgram::new(vec![scaled_compute(
                            &spec,
                            d * 5.0e6,
                            WeBWorK::latex_profile(),
                        )])),
                        ctx: None,
                        detached: false,
                    },
                    Op::WaitChild,
                    Op::Fork {
                        child: Box::new(ScriptProgram::new(vec![scaled_compute(
                            &spec,
                            d * 3.0e6,
                            WeBWorK::dvipng_profile(),
                        )])),
                        ctx: None,
                        detached: false,
                    },
                    Op::WaitChild,
                ]));
                vec![
                    // PHP parses and prepares the problem.
                    scaled_compute(&spec, d * 7.0e6, WeBWorK::php_profile()),
                    // Query the database; the context tag rides the message.
                    Op::Send { socket: mysql_tx, bytes: 1_024, payload: reply_tx.0 as u64 },
                    Op::Recv { socket: reply_rx },
                    scaled_compute(&spec, d * 5.0e6, WeBWorK::php_profile()),
                    // External content rendering: shell → latex → dvipng.
                    Op::Fork { child: shell, ctx: None, detached: false },
                    Op::WaitChild,
                    // Problem assets from disk, final render, response.
                    Op::DiskIo { bytes: 40_000 },
                    scaled_compute(&spec, d * 4.0e6, WeBWorK::php_profile()),
                    Op::NetIo { bytes: 30_000 },
                ]
            })
        })
    }

    fn mean_request_cycles(&self) -> f64 {
        WeBWorK::cycles_at(1.5)
    }

    fn representative_profile(&self) -> ActivityProfile {
        WeBWorK::php_profile()
    }

    fn pick_label(&self, rng: &mut SimRng) -> u32 {
        // Popularity skew: low-numbered problem sets dominate.
        let u = rng.next_f64();
        ((u * u * u * PROBLEM_SETS as f64) as u32).min(PROBLEM_SETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn difficulty_is_deterministic_and_bounded() {
        for label in [0u32, 1, 17, 2999] {
            let d1 = WeBWorK::difficulty(label);
            let d2 = WeBWorK::difficulty(label);
            assert_eq!(d1, d2);
            assert!((0.5..2.5).contains(&d1), "difficulty {d1}");
        }
    }

    #[test]
    fn popularity_skew_prefers_low_labels() {
        let app = WeBWorK::new();
        let mut rng = SimRng::new(3);
        let labels: Vec<u32> = (0..2000).map(|_| app.pick_label(&mut rng)).collect();
        let low = labels.iter().filter(|&&l| l < 300).count();
        assert!(low > 800, "expected >40% of picks in the top-10% sets, got {low}");
        assert!(labels.iter().all(|&l| l < PROBLEM_SETS));
    }

    #[test]
    fn mean_cycles_cover_all_stages() {
        let app = WeBWorK::new();
        assert!(app.mean_request_cycles() > 20.0e6);
    }
}
