//! Google App Engine workloads: Vosao CMS and the hybrid with power
//! viruses (paper §4.2).
//!
//! * **GAE-Vosao** models collaborative web-content editing on the Vosao
//!   CMS over the GAE Java runtime: servlet-pool requests with a 9:1
//!   read/write mix, plus substantial *background processing* by the GAE
//!   runtime itself (suspected security management in the paper) that has
//!   no traceable request context — it lands in the facility's special
//!   background container and accounts for roughly a third of active
//!   power (Fig. 9).
//! * **GAE-Hybrid** adds the paper's simple power virus: ~200 lines of
//!   Java repeatedly writing one of every four bytes over a 16 MB block,
//!   keeping cache/memory and the instruction pipeline simultaneously
//!   busy. Viruses contribute about half the *load* (not half the
//!   request count).

use crate::apps::{AppEnv, ServerApp, WorkloadKind};
use crate::driver::{scaled_compute, spawn_pool};
use hwsim::ActivityProfile;
use ossim::{FnProgram, Kernel, Op, SocketId};
use simkern::{SimDuration, SimRng};

/// Request label of the synthetic power virus in [`GaeHybrid`].
pub const POWER_VIRUS_LABEL: u32 = 100;

/// Read-request cycles (label 0).
const READ_CYCLES: f64 = 14.0e6;
/// Write-request compute cycles before/after the datastore write.
const WRITE_CYCLES: (f64, f64) = (20.0e6, 8.0e6);
/// Power-virus burst cycles (~100 ms).
const VIRUS_CYCLES: f64 = 310.0e6;

/// JVM servlet read profile: datastore reads churn the managed heap, so
/// memory traffic is substantial.
fn read_profile() -> ActivityProfile {
    ActivityProfile::new(0.50, 0.05, 0.62, 0.50)
}

/// JVM servlet write profile.
fn write_profile() -> ActivityProfile {
    ActivityProfile::new(0.55, 0.05, 0.68, 0.60)
}

/// GAE runtime background-processing profile.
fn background_profile() -> ActivityProfile {
    ActivityProfile::new(0.50, 0.10, 0.50, 0.35)
}

/// The 16 MB-block byte-writer: cache/memory and pipeline both saturated.
pub(crate) fn virus_profile() -> ActivityProfile {
    ActivityProfile::new(0.90, 0.10, 0.95, 1.00)
}

fn request_ops(
    spec: &hwsim::MachineSpec,
    label: u32,
) -> Vec<Op> {
    match label {
        POWER_VIRUS_LABEL => vec![scaled_compute(spec, VIRUS_CYCLES, virus_profile())],
        1 => vec![
            scaled_compute(spec, WRITE_CYCLES.0, write_profile()),
            Op::DiskIo { bytes: 120_000 },
            scaled_compute(spec, WRITE_CYCLES.1, write_profile()),
            Op::NetIo { bytes: 4_000 },
        ],
        _ => vec![
            scaled_compute(spec, READ_CYCLES, read_profile()),
            Op::NetIo { bytes: 8_000 },
        ],
    }
}

fn spawn_gae_background(kernel: &mut Kernel, env: &AppEnv) {
    // The GAE runtime's untagged housekeeping: bursts of JVM work with no
    // request context, sized to roughly a third of active power at peak.
    let tasks = (env.spec.total_cores() * 3 / 4).max(2);
    for i in 0..tasks {
        let spec = env.spec.clone();
        let mut computing = false;
        let phase_ms = 3 + 2 * (i as u64 % 4);
        kernel.spawn(
            Box::new(FnProgram::new(move |_pc| {
                computing = !computing;
                if computing {
                    scaled_compute(&spec, 11.0e6, background_profile())
                } else {
                    Op::Sleep { duration: SimDuration::from_millis(phase_ms + 3) }
                }
            })),
            None,
        );
    }
}

fn setup_gae(kernel: &mut Kernel, env: &AppEnv) -> Vec<SocketId> {
    spawn_gae_background(kernel, env);
    let spec = env.spec.clone();
    spawn_pool(kernel, env.workers, &env.stats, env.notify, move |_w| {
        let spec = spec.clone();
        Box::new(move |label, _pc| request_ops(&spec, label))
    })
}

/// The GAE-Vosao content-management workload.
#[derive(Debug, Clone, Default)]
pub struct GaeVosao;

impl GaeVosao {
    /// Creates the app.
    pub fn new() -> GaeVosao {
        GaeVosao
    }
}

impl ServerApp for GaeVosao {
    fn kind(&self) -> WorkloadKind {
        WorkloadKind::GaeVosao
    }

    fn setup(&self, kernel: &mut Kernel, env: &AppEnv) -> Vec<SocketId> {
        setup_gae(kernel, env)
    }

    fn mean_request_cycles(&self) -> f64 {
        0.9 * READ_CYCLES + 0.1 * (WRITE_CYCLES.0 + WRITE_CYCLES.1)
    }

    fn representative_profile(&self) -> ActivityProfile {
        read_profile()
    }

    fn pick_label(&self, rng: &mut SimRng) -> u32 {
        // The paper's 9:1 read/write mix.
        u32::from(rng.chance(0.1))
    }

    fn peak_utilization(&self) -> f64 {
        0.62 // leave room for the background processing
    }
}

/// GAE-Vosao mixed with sporadic power viruses (≈half the load each).
#[derive(Debug, Clone, Default)]
pub struct GaeHybrid;

impl GaeHybrid {
    /// Creates the app.
    pub fn new() -> GaeHybrid {
        GaeHybrid
    }

    /// Probability that an arrival is a power virus, chosen so viruses
    /// carry about half the *cycles* despite being long and rare.
    pub fn virus_probability() -> f64 {
        let vosao = GaeVosao::new().mean_request_cycles();
        vosao / (vosao + VIRUS_CYCLES)
    }
}

impl ServerApp for GaeHybrid {
    fn kind(&self) -> WorkloadKind {
        WorkloadKind::GaeHybrid
    }

    fn setup(&self, kernel: &mut Kernel, env: &AppEnv) -> Vec<SocketId> {
        setup_gae(kernel, env)
    }

    fn mean_request_cycles(&self) -> f64 {
        let p = GaeHybrid::virus_probability();
        (1.0 - p) * GaeVosao::new().mean_request_cycles() + p * VIRUS_CYCLES
    }

    fn representative_profile(&self) -> ActivityProfile {
        // Half the cycles come from each side.
        read_profile().blend(&virus_profile(), 0.5)
    }

    fn pick_label(&self, rng: &mut SimRng) -> u32 {
        if rng.chance(GaeHybrid::virus_probability()) {
            POWER_VIRUS_LABEL
        } else {
            u32::from(rng.chance(0.1))
        }
    }

    fn peak_utilization(&self) -> f64 {
        0.62
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_mix_is_nine_to_one() {
        let app = GaeVosao::new();
        let mut rng = SimRng::new(1);
        let writes = (0..10_000).filter(|_| app.pick_label(&mut rng) == 1).count();
        assert!((800..1200).contains(&writes), "writes {writes}/10000");
    }

    #[test]
    fn virus_probability_balances_load() {
        let p = GaeHybrid::virus_probability();
        let vosao = GaeVosao::new().mean_request_cycles();
        // Expected virus cycles ≈ expected Vosao cycles per arrival.
        let virus_share = p * VIRUS_CYCLES;
        let vosao_share = (1.0 - p) * vosao;
        assert!((virus_share / vosao_share - 1.0).abs() < 0.1);
    }

    #[test]
    fn virus_is_higher_power_shape_than_vosao() {
        let v = virus_profile();
        let r = read_profile();
        assert!(v.mem > r.mem && v.cache > r.cache);
        // The co-activity product that drives ground-truth power.
        assert!(v.mem * v.ins.max(v.flops) > 2.0 * (r.mem * r.ins.max(r.flops)));
    }
}
