//! RSA-crypto: the paper's synthetic security-processing workload.
//!
//! Each request runs RSA encryption/decryption with one of three keys
//! (OpenSSL's example keys); request cost grows steeply with key size,
//! giving a trimodal request-length distribution. The work is almost
//! purely integer compute — the workload with the strongest affinity for
//! the newest machine in Fig. 13.

use crate::apps::{AppEnv, ServerApp, WorkloadKind};
use crate::driver::{scaled_compute, spawn_pool};
use hwsim::ActivityProfile;
use ossim::{Kernel, Op, SocketId};
use simkern::SimRng;

/// Cycle cost per key label on the reference machine.
const KEY_CYCLES: [f64; 3] = [4.5e6, 10.0e6, 27.0e6];

/// The RSA-crypto application.
#[derive(Debug, Clone, Default)]
pub struct RsaCrypto;

impl RsaCrypto {
    /// Creates the app.
    pub fn new() -> RsaCrypto {
        RsaCrypto
    }

    /// The integer-crypto activity profile.
    pub fn profile() -> ActivityProfile {
        ActivityProfile::new(0.92, 0.04, 0.02, 0.0)
    }

    /// Cycles for a given key label (labels beyond 2 use the largest key).
    pub fn cycles_for(label: u32) -> f64 {
        KEY_CYCLES[(label as usize).min(KEY_CYCLES.len() - 1)]
    }
}

impl ServerApp for RsaCrypto {
    fn kind(&self) -> WorkloadKind {
        WorkloadKind::RsaCrypto
    }

    fn setup(&self, kernel: &mut Kernel, env: &AppEnv) -> Vec<SocketId> {
        let spec = env.spec.clone();
        spawn_pool(kernel, env.workers, &env.stats, env.notify, move |_w| {
            let spec = spec.clone();
            Box::new(move |label, _pc| {
                vec![
                    scaled_compute(&spec, RsaCrypto::cycles_for(label), RsaCrypto::profile()),
                    Op::NetIo { bytes: 2_000 },
                ]
            })
        })
    }

    fn mean_request_cycles(&self) -> f64 {
        KEY_CYCLES.iter().sum::<f64>() / KEY_CYCLES.len() as f64
    }

    fn representative_profile(&self) -> ActivityProfile {
        RsaCrypto::profile()
    }

    fn pick_label(&self, rng: &mut SimRng) -> u32 {
        rng.next_below(3) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn larger_keys_cost_more() {
        assert!(RsaCrypto::cycles_for(0) < RsaCrypto::cycles_for(1));
        assert!(RsaCrypto::cycles_for(1) < RsaCrypto::cycles_for(2));
        assert_eq!(RsaCrypto::cycles_for(99), RsaCrypto::cycles_for(2));
    }

    #[test]
    fn profile_is_compute_dominated() {
        let p = RsaCrypto::profile();
        assert!(p.ins > 0.8);
        assert!(p.mem < 0.05);
    }
}
