//! Solr: full-text search over a Wikipedia index (paper §4.2).
//!
//! The index fits in memory, so a query is last-level-cache-heavy with
//! moderate memory traffic, and query cost is long-tailed (article titles
//! of wildly differing selectivity) — the paper's Fig. 7 shows Solr's
//! request-energy spread comes mostly from execution-time variance.

use crate::apps::{AppEnv, ServerApp, WorkloadKind};
use crate::driver::{scaled_compute, spawn_pool};
use hwsim::ActivityProfile;
use ossim::{Kernel, Op, SocketId};
use simkern::SimRng;

/// Median query cost on the reference machine.
const MEDIAN_CYCLES: f64 = 16.0e6;
/// Log-normal sigma of query cost.
const SIGMA: f64 = 0.65;

/// The Solr search application.
#[derive(Debug, Clone, Default)]
pub struct Solr;

impl Solr {
    /// Creates the app.
    pub fn new() -> Solr {
        Solr
    }

    /// The Lucene search activity profile.
    pub fn profile() -> ActivityProfile {
        ActivityProfile::new(0.55, 0.02, 0.75, 0.25)
    }
}

impl ServerApp for Solr {
    fn kind(&self) -> WorkloadKind {
        WorkloadKind::Solr
    }

    fn setup(&self, kernel: &mut Kernel, env: &AppEnv) -> Vec<SocketId> {
        let spec = env.spec.clone();
        spawn_pool(kernel, env.workers, &env.stats, env.notify, move |_w| {
            let spec = spec.clone();
            Box::new(move |_label, pc| {
                let cycles = (MEDIAN_CYCLES
                    * pc.rng.log_normal(0.0, SIGMA))
                .clamp(1.5e6, 250.0e6);
                vec![
                    scaled_compute(&spec, cycles, Solr::profile()),
                    Op::NetIo { bytes: 20_000 },
                ]
            })
        })
    }

    fn mean_request_cycles(&self) -> f64 {
        // Log-normal mean: median · exp(σ²/2).
        MEDIAN_CYCLES * (SIGMA * SIGMA / 2.0).exp()
    }

    fn representative_profile(&self) -> ActivityProfile {
        Solr::profile()
    }

    fn pick_label(&self, _rng: &mut SimRng) -> u32 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_exceeds_median_for_long_tail() {
        let app = Solr::new();
        assert!(app.mean_request_cycles() > MEDIAN_CYCLES);
    }

    #[test]
    fn profile_is_cache_heavy() {
        let p = Solr::profile();
        assert!(p.cache > 0.5);
        assert!(p.flops < 0.1);
    }
}
