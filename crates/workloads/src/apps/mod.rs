//! The paper's server and cloud-computing application models (§4.2).
//!
//! Each application reproduces the *activity shape* of its original —
//! stage structure, hardware profile mix, request-length distribution —
//! rather than its code:
//!
//! | Model | Paper workload | Character |
//! |---|---|---|
//! | [`RsaCrypto`] | OpenSSL RSA service, 3 key sizes | compute-bound, trimodal lengths |
//! | [`Solr`] | Solr/Lucene search on Wikipedia | cache-heavy, long-tailed lengths |
//! | [`WeBWorK`] | Apache+PHP+MySQL+latex/dvipng | multi-stage, forks, sockets |
//! | [`Stress`] | stressapptest | all units busy at once; unusually high power |
//! | [`GaeVosao`] | Google App Engine + Vosao CMS | JVM servlets, 9:1 read/write, background processing |
//! | [`GaeHybrid`] | GAE-Vosao + synthetic power viruses | ~half the load from 16 MB-writing viruses |

mod gae;
mod rsa;
mod solr;
mod stress;
mod webwork;

pub use gae::{GaeHybrid, GaeVosao, POWER_VIRUS_LABEL};
pub use rsa::RsaCrypto;
pub use solr::Solr;
pub use stress::Stress;
pub use webwork::WeBWorK;

use crate::stats::RunStats;
use hwsim::{ActivityProfile, MachineSpec};
use ossim::{Kernel, SocketId};
use simkern::SimRng;
use std::cell::RefCell;
use std::rc::Rc;

/// Environment handed to an application's [`ServerApp::setup`].
pub struct AppEnv {
    /// Shared run statistics.
    pub stats: Rc<RefCell<RunStats>>,
    /// Worker-pool size.
    pub workers: usize,
    /// The machine this instance runs on (for speed scaling).
    pub spec: MachineSpec,
    /// Seed for any app-internal randomness.
    pub seed: u64,
    /// Completion channel for closed-loop clients (worker-side endpoint).
    pub notify: Option<ossim::SocketId>,
}

/// A server application: sets up its worker pool (and any auxiliary
/// service tasks), and describes its request mix for load sizing.
pub trait ServerApp {
    /// The workload this app implements.
    fn kind(&self) -> WorkloadKind;

    /// Installs server infrastructure into the kernel; returns the
    /// driver-side inbox endpoints of the worker pool.
    fn setup(&self, kernel: &mut Kernel, env: &AppEnv) -> Vec<SocketId>;

    /// Mean busy cycles one request consumes across all stages, on the
    /// reference (SandyBridge) machine — used for load sizing.
    fn mean_request_cycles(&self) -> f64;

    /// A profile representative of the app's activity mix, used to apply
    /// machine speed scaling when sizing load.
    fn representative_profile(&self) -> ActivityProfile;

    /// Draws a request-type label from the app's mix.
    fn pick_label(&self, rng: &mut SimRng) -> u32;

    /// The utilization the load generator targets at peak load (leaving
    /// headroom for background processing where the app has any).
    fn peak_utilization(&self) -> f64 {
        0.9
    }
}

/// The six evaluation workloads, in the paper's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Synthetic OpenSSL security processing.
    RsaCrypto,
    /// The Solr/Lucene search platform.
    Solr,
    /// The WeBWorK online homework system.
    WeBWorK,
    /// The Stressful Application Test.
    Stress,
    /// Google App Engine running the Vosao CMS.
    GaeVosao,
    /// GAE-Vosao plus synthetic power viruses.
    GaeHybrid,
}

impl WorkloadKind {
    /// All workloads, in the paper's order.
    pub const ALL: [WorkloadKind; 6] = [
        WorkloadKind::RsaCrypto,
        WorkloadKind::Solr,
        WorkloadKind::WeBWorK,
        WorkloadKind::Stress,
        WorkloadKind::GaeVosao,
        WorkloadKind::GaeHybrid,
    ];

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::RsaCrypto => "RSA-crypto",
            WorkloadKind::Solr => "Solr",
            WorkloadKind::WeBWorK => "WeBWorK",
            WorkloadKind::Stress => "Stress",
            WorkloadKind::GaeVosao => "GAE-Vosao",
            WorkloadKind::GaeHybrid => "GAE-Hybrid",
        }
    }

    /// Instantiates the application model.
    pub fn app(self) -> Box<dyn ServerApp> {
        match self {
            WorkloadKind::RsaCrypto => Box::new(RsaCrypto::new()),
            WorkloadKind::Solr => Box::new(Solr::new()),
            WorkloadKind::WeBWorK => Box::new(WeBWorK::new()),
            WorkloadKind::Stress => Box::new(Stress::new()),
            WorkloadKind::GaeVosao => Box::new(GaeVosao::new()),
            WorkloadKind::GaeHybrid => Box::new(GaeHybrid::new()),
        }
    }
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_instantiate() {
        for kind in WorkloadKind::ALL {
            let app = kind.app();
            assert_eq!(app.kind(), kind);
            assert!(app.mean_request_cycles() > 1e5, "{kind} cycles too small");
            assert!(app.peak_utilization() > 0.3 && app.peak_utilization() <= 1.0);
            assert!(!kind.name().is_empty());
        }
    }

    #[test]
    fn labels_come_from_each_apps_mix() {
        let mut rng = SimRng::new(9);
        for kind in WorkloadKind::ALL {
            let app = kind.app();
            for _ in 0..50 {
                let _ = app.pick_label(&mut rng);
            }
        }
    }
}
