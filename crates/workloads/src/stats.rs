//! Run statistics: arrivals, completions, response times.

use analysis::stats::Summary;
use ossim::ContextId;
use simkern::SimTime;
use std::collections::HashMap;

/// A completed request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Completion {
    /// The request's context id.
    pub ctx: ContextId,
    /// Request-type label.
    pub label: u32,
    /// When the dispatcher issued the request.
    pub arrived: SimTime,
    /// When the final stage finished.
    pub finished: SimTime,
}

impl Completion {
    /// End-to-end response time in seconds.
    pub fn response_secs(&self) -> f64 {
        self.finished.duration_since(self.arrived).as_secs_f64()
    }
}

/// Shared bookkeeping for one workload run (driver writes arrivals, pool
/// workers write completions).
#[derive(Debug, Default)]
pub struct RunStats {
    arrivals: HashMap<ContextId, (u32, SimTime)>,
    completions: Vec<Completion>,
    issued: u64,
}

impl RunStats {
    /// Creates empty statistics.
    pub fn new() -> RunStats {
        RunStats::default()
    }

    /// Records a dispatched request.
    pub fn record_arrival(&mut self, ctx: ContextId, label: u32, at: SimTime) {
        self.arrivals.insert(ctx, (label, at));
        self.issued += 1;
    }

    /// Records a finished request; unknown contexts (e.g. background
    /// work) are ignored.
    pub fn record_completion(&mut self, ctx: ContextId, at: SimTime) {
        if let Some((label, arrived)) = self.arrivals.get(&ctx).copied() {
            self.completions.push(Completion { ctx, label, arrived, finished: at });
        }
    }

    /// Requests dispatched so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// All completions, in finish order.
    pub fn completions(&self) -> &[Completion] {
        &self.completions
    }

    /// Completions finished inside `[from, to)`.
    pub fn completions_between(&self, from: SimTime, to: SimTime) -> Vec<Completion> {
        self.completions
            .iter()
            .copied()
            .filter(|c| c.finished >= from && c.finished < to)
            .collect()
    }

    /// Response-time summary, optionally restricted to one label.
    pub fn response_summary(&self, label: Option<u32>) -> Summary {
        self.completions
            .iter()
            .filter(|c| label.is_none_or(|l| c.label == l))
            .map(Completion::response_secs)
            .collect()
    }

    /// The label a context was dispatched with, if known.
    pub fn label_of(&self, ctx: ContextId) -> Option<u32> {
        self.arrivals.get(&ctx).map(|(l, _)| *l)
    }

    /// Throughput over `[from, to)` in completions per second.
    pub fn throughput(&self, from: SimTime, to: SimTime) -> f64 {
        let n = self.completions_between(from, to).len();
        let secs = to.duration_since(from).as_secs_f64();
        if secs > 0.0 {
            n as f64 / secs
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_completion_round_trip() {
        let mut s = RunStats::new();
        let ctx = ContextId(1);
        s.record_arrival(ctx, 7, SimTime::from_millis(10));
        s.record_completion(ctx, SimTime::from_millis(35));
        assert_eq!(s.issued(), 1);
        assert_eq!(s.completions().len(), 1);
        let c = s.completions()[0];
        assert_eq!(c.label, 7);
        assert!((c.response_secs() - 0.025).abs() < 1e-12);
    }

    #[test]
    fn unknown_completion_is_ignored() {
        let mut s = RunStats::new();
        s.record_completion(ContextId(9), SimTime::ZERO);
        assert!(s.completions().is_empty());
    }

    #[test]
    fn summaries_filter_by_label() {
        let mut s = RunStats::new();
        for (i, label) in [(1u64, 0u32), (2, 0), (3, 1)] {
            let ctx = ContextId(i);
            s.record_arrival(ctx, label, SimTime::ZERO);
            s.record_completion(ctx, SimTime::from_millis(i * 10));
        }
        assert_eq!(s.response_summary(None).count(), 3);
        assert_eq!(s.response_summary(Some(0)).count(), 2);
        assert_eq!(s.response_summary(Some(1)).count(), 1);
    }

    #[test]
    fn throughput_counts_window() {
        let mut s = RunStats::new();
        for i in 0..10u64 {
            let ctx = ContextId(i);
            s.record_arrival(ctx, 0, SimTime::ZERO);
            s.record_completion(ctx, SimTime::from_millis(i * 100));
        }
        // Window [0, 500ms) holds completions at 0..400ms → 5 of them.
        let tp = s.throughput(SimTime::ZERO, SimTime::from_millis(500));
        assert!((tp - 10.0).abs() < 1e-9);
    }
}
