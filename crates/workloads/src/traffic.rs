//! Deterministic non-stationary traffic: diurnal sinusoid × flash-crowd
//! spikes × heavy-tailed sessions.
//!
//! [`OpenLoopGen`](crate::OpenLoopGen) drives every stationary
//! experiment; this module is the realism layer on top of it. A
//! [`TrafficGen`] produces one *session* process per application: session
//! starts follow a non-homogeneous Poisson process whose rate envelope is
//! the product of a diurnal sinusoid ([`Diurnal`]) and any active
//! flash-crowd spikes ([`FlashCrowds`]), sampled exactly by
//! Lewis–Shedler thinning against the envelope's precomputed maximum.
//! Each session then issues a bounded-Pareto number of requests
//! ([`Sessions`]) separated by exponential think gaps, and a seeded
//! fraction of sessions is marked *optional* — work a browned-out
//! cluster may shed first.
//!
//! Determinism contract: two generators built from equal seeds and
//! configs yield byte-identical arrival sequences (time, app, label,
//! optional flag), regardless of caller interleaving — the same contract
//! [`OpenLoopGen`](crate::OpenLoopGen) honors, so the cluster engine can
//! swap either in without touching its replay guarantees.

use crate::apps::ServerApp;
use crate::loadgen::Arrival;
use simkern::{SimDuration, SimRng, SimTime};
use std::collections::BinaryHeap;

/// Diurnal rate modulation: a mean-one sinusoid over one compressed day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Diurnal {
    /// Length of one simulated "day".
    pub period: SimDuration,
    /// Peak-to-mean swing in `[0, 1)`: the envelope runs between
    /// `1 - amplitude` and `1 + amplitude`.
    pub amplitude: f64,
    /// Phase offset in radians (0 starts at the mean, rising).
    pub phase: f64,
}

impl Diurnal {
    fn factor(&self, t: SimTime) -> f64 {
        let frac = t.as_secs_f64() / self.period.as_secs_f64();
        1.0 + self.amplitude * (std::f64::consts::TAU * frac + self.phase).sin()
    }
}

/// Flash-crowd spike schedule: seeded Poisson spike starts, each a
/// ramp/hold/decay excess on top of the diurnal envelope.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowds {
    /// Expected spikes per simulated second (typically ≪ 1).
    pub spikes_per_sec: f64,
    /// Linear ramp-up duration of each spike.
    pub ramp: SimDuration,
    /// Full-excess hold duration.
    pub hold: SimDuration,
    /// Linear decay duration back to baseline.
    pub decay: SimDuration,
    /// Peak multiplicative excess: at full strength a spike multiplies
    /// the rate by `1 + peak_excess`.
    pub peak_excess: f64,
}

/// One materialized spike window.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Spike {
    start: SimTime,
    ramp: f64,
    hold: f64,
    decay: f64,
    peak_excess: f64,
}

impl Spike {
    /// The spike's excess contribution at `t` (0 outside the window).
    fn excess(&self, t: SimTime) -> f64 {
        let dt = t.as_secs_f64() - self.start.as_secs_f64();
        if dt < 0.0 {
            0.0
        } else if dt < self.ramp {
            self.peak_excess * dt / self.ramp
        } else if dt < self.ramp + self.hold {
            self.peak_excess
        } else if dt < self.ramp + self.hold + self.decay {
            self.peak_excess * (1.0 - (dt - self.ramp - self.hold) / self.decay)
        } else {
            0.0
        }
    }

    fn end_s(&self) -> f64 {
        self.start.as_secs_f64() + self.ramp + self.hold + self.decay
    }
}

/// Heavy-tailed session shape: requests per session follow a bounded
/// Pareto, separated by exponential think gaps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sessions {
    /// Pareto tail index (smaller ⇒ heavier tail). Must be positive.
    pub alpha: f64,
    /// Minimum requests per session (≥ 1).
    pub min_len: u32,
    /// Maximum requests per session (tail truncation).
    pub max_len: u32,
    /// Mean think gap between a session's consecutive requests.
    pub think: SimDuration,
}

impl Sessions {
    /// Mean session length of the bounded Pareto (used to convert a
    /// target request rate into a session-start rate).
    pub fn mean_len(&self) -> f64 {
        // E[X] for the bounded (truncated, discretized-by-ceiling)
        // Pareto is awkward in closed form; integrate the continuous
        // bounded Pareto instead — accurate enough for rate sizing.
        let (a, l, h) = (self.alpha, f64::from(self.min_len), f64::from(self.max_len));
        if (a - 1.0).abs() < 1e-9 {
            (l * h / (h - l)) * (h / l).ln().max(f64::MIN_POSITIVE)
        } else {
            (l.powf(a) / (1.0 - (l / h).powf(a))) * (a / (a - 1.0))
                * (l.powf(1.0 - a) - h.powf(1.0 - a))
        }
    }

    /// Draws one session length by inverting the bounded-Pareto CDF.
    fn draw_len(&self, rng: &mut SimRng) -> u32 {
        let (a, l, h) = (self.alpha, f64::from(self.min_len), f64::from(self.max_len));
        let u = rng.next_f64();
        let x = (l.powf(-a) - u * (l.powf(-a) - h.powf(-a))).powf(-1.0 / a);
        (x.floor() as u32).clamp(self.min_len, self.max_len)
    }
}

/// Full shape of one non-stationary traffic mix, applied uniformly to
/// every app stream (each stream still draws from independent RNGs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrafficShape {
    /// Diurnal modulation, or `None` for a flat envelope.
    pub diurnal: Option<Diurnal>,
    /// Flash-crowd spikes, or `None` for none.
    pub flash: Option<FlashCrowds>,
    /// Session structure.
    pub sessions: Sessions,
    /// Fraction of sessions whose requests are [`Arrival::optional`].
    pub optional_fraction: f64,
}

impl TrafficShape {
    /// A steady (no diurnal, no flash) session-structured shape —
    /// useful as a control arm.
    pub fn steady() -> TrafficShape {
        TrafficShape {
            diurnal: None,
            flash: None,
            sessions: Sessions {
                alpha: 1.5,
                min_len: 1,
                max_len: 64,
                think: SimDuration::from_millis(40),
            },
            optional_fraction: 0.15,
        }
    }
}

/// A request scheduled inside a session, pending in a stream's heap.
/// Ordered by (time, push sequence) so ties pop deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Pending {
    at: SimTime,
    seq: u64,
    optional: bool,
}

impl Ord for Pending {
    fn cmp(&self, other: &Pending) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Pending) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// One app's session stream.
#[derive(Debug)]
struct SessionStream {
    /// Session-start rate at envelope 1.0 (requests rate / mean length).
    base_session_rate: f64,
    /// Next candidate session start (pre-thinning position).
    next_session_at: Option<SimTime>,
    pending: BinaryHeap<Pending>,
    seq: u64,
    session_rng: SimRng,
    label_rng: SimRng,
}

/// Deterministic merged non-stationary arrival generator. Same `next`
/// interface as [`OpenLoopGen`](crate::OpenLoopGen).
#[derive(Debug)]
pub struct TrafficGen {
    streams: Vec<SessionStream>,
    spikes: Vec<Spike>,
    shape: TrafficShape,
    /// Envelope upper bound used by the thinning sampler.
    env_max: f64,
    end: SimTime,
    issued: u64,
}

impl TrafficGen {
    /// Creates a generator offering a mean of `rates[i]` requests per
    /// second for app `i` (diurnal mean is one; flash crowds add
    /// excess on top), stopping at `end`. Spike times are drawn once at
    /// construction from `seed` so the envelope is a pure function of
    /// time thereafter.
    ///
    /// # Panics
    ///
    /// Panics if `rates` is empty, any rate is not positive, or the
    /// shape is degenerate (zero period, `amplitude ≥ 1`, `min_len >
    /// max_len`, ...).
    pub fn new(seed: u64, rates: &[f64], end: SimTime, shape: &TrafficShape) -> TrafficGen {
        assert!(!rates.is_empty(), "traffic generator needs at least one stream");
        if let Some(d) = &shape.diurnal {
            assert!(!d.period.is_zero(), "diurnal period must be positive");
            assert!((0.0..1.0).contains(&d.amplitude), "amplitude must be in [0, 1)");
        }
        let s = &shape.sessions;
        assert!(s.alpha > 0.0 && s.min_len >= 1 && s.min_len <= s.max_len, "bad session shape");
        assert!((0.0..=1.0).contains(&shape.optional_fraction), "bad optional fraction");

        let spikes = match &shape.flash {
            None => Vec::new(),
            Some(f) => {
                assert!(f.spikes_per_sec > 0.0 && f.peak_excess > 0.0, "bad flash config");
                let mut rng = SimRng::new(seed).split(0xF1A5);
                let mut out = Vec::new();
                let mut t = 0.0;
                loop {
                    t += rng.exponential(1.0 / f.spikes_per_sec);
                    if t >= end.as_secs_f64() {
                        break;
                    }
                    out.push(Spike {
                        start: SimTime::ZERO + SimDuration::from_secs_f64(t),
                        ramp: f.ramp.as_secs_f64().max(1e-6),
                        hold: f.hold.as_secs_f64(),
                        decay: f.decay.as_secs_f64().max(1e-6),
                        peak_excess: f.peak_excess,
                    });
                }
                out
            }
        };
        // Tight thinning bound: max diurnal factor × (1 + the largest
        // simultaneous spike excess), found by sweeping window edges.
        let diurnal_max = shape.diurnal.map_or(1.0, |d| 1.0 + d.amplitude);
        let mut edges: Vec<(f64, f64)> = Vec::new();
        for sp in &spikes {
            edges.push((sp.start.as_secs_f64(), sp.peak_excess));
            edges.push((sp.end_s(), -sp.peak_excess));
        }
        edges.sort_by(|a, b| a.partial_cmp(b).expect("finite spike edges"));
        let (mut live, mut max_excess) = (0.0, 0.0f64);
        for (_, delta) in edges {
            live += delta;
            max_excess = max_excess.max(live);
        }
        let env_max = diurnal_max * (1.0 + max_excess);

        let mean_len = s.mean_len();
        let streams = rates
            .iter()
            .enumerate()
            .map(|(i, &rate)| {
                assert!(rate > 0.0, "stream {i} rate must be positive");
                let mut st = SessionStream {
                    base_session_rate: rate / mean_len,
                    next_session_at: Some(SimTime::ZERO),
                    pending: BinaryHeap::new(),
                    seq: 0,
                    session_rng: SimRng::new(seed).split(0x5E55 ^ i as u64),
                    label_rng: SimRng::new(seed).split(0x1ABE1 ^ i as u64),
                };
                st.advance_session_clock(end, env_max, &spikes, &shape.diurnal);
                st
            })
            .collect();
        TrafficGen { streams, spikes, shape: *shape, env_max, end, issued: 0 }
    }

    /// The envelope (diurnal × flash factor) at `t` — exposed so tests
    /// and experiments can plot the offered-rate shape they asked for.
    pub fn envelope(&self, t: SimTime) -> f64 {
        envelope_at(t, &self.spikes, &self.shape.diurnal)
    }

    /// The number of flash-crowd spikes materialized for this run.
    pub fn spike_count(&self) -> usize {
        self.spikes.len()
    }

    /// The next arrival in merged time order, or `None` once every
    /// stream is exhausted. Requests of sessions that started before
    /// `end` may themselves land past `end`; those are clipped so the
    /// offered count is exactly what the engine admits.
    pub fn next(&mut self, apps: &[Box<dyn ServerApp>]) -> Option<Arrival> {
        assert_eq!(apps.len(), self.streams.len(), "one app per stream");
        loop {
            // Materialize sessions due before each stream's earliest
            // pending request so the merge below sees true minima.
            for st in &mut self.streams {
                while let Some(at) = st.next_session_at {
                    if st.pending.peek().is_some_and(|p| p.at <= at) {
                        break;
                    }
                    st.start_session(at, &self.shape);
                    st.advance_session_clock(self.end, self.env_max, &self.spikes, &self.shape.diurnal);
                }
            }
            let (i, _) = self
                .streams
                .iter()
                .enumerate()
                .filter_map(|(i, st)| st.pending.peek().map(|p| (i, p.at)))
                .min_by_key(|&(i, at)| (at, i))?;
            let st = &mut self.streams[i];
            let p = st.pending.pop().expect("peeked nonempty");
            if p.at >= self.end {
                // Clip the tail of the last sessions; drain the heap so
                // the stream reads exhausted.
                st.pending.clear();
                continue;
            }
            let label = apps[i].pick_label(&mut st.label_rng);
            self.issued += 1;
            return Some(Arrival { at: p.at, app: i, label, optional: p.optional });
        }
    }

    /// Arrivals produced so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

fn envelope_at(t: SimTime, spikes: &[Spike], diurnal: &Option<Diurnal>) -> f64 {
    let d = diurnal.as_ref().map_or(1.0, |d| d.factor(t));
    let flash = 1.0 + spikes.iter().map(|s| s.excess(t)).sum::<f64>();
    d * flash
}

impl SessionStream {
    /// Advances `next_session_at` to the next accepted (thinned)
    /// session start, or `None` past `end`.
    fn advance_session_clock(
        &mut self,
        end: SimTime,
        env_max: f64,
        spikes: &[Spike],
        diurnal: &Option<Diurnal>,
    ) {
        let Some(mut t) = self.next_session_at else { return };
        let bound = self.base_session_rate * env_max;
        loop {
            t += SimDuration::from_secs_f64(self.session_rng.exponential(1.0 / bound));
            if t >= end {
                self.next_session_at = None;
                return;
            }
            if self.session_rng.next_f64() < envelope_at(t, spikes, diurnal) / env_max {
                self.next_session_at = Some(t);
                return;
            }
        }
    }

    /// Materializes one session starting at `at`: draws its length,
    /// optional flag, and think gaps, and schedules every request.
    fn start_session(&mut self, at: SimTime, shape: &TrafficShape) {
        let len = shape.sessions.draw_len(&mut self.session_rng);
        let optional = self.session_rng.chance(shape.optional_fraction);
        let mut t = at;
        for k in 0..len {
            if k > 0 {
                let gap = self.session_rng.exponential(shape.sessions.think.as_secs_f64());
                t += SimDuration::from_secs_f64(gap);
            }
            self.pending.push(Pending { at: t, seq: self.seq, optional });
            self.seq += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadKind;

    fn apps() -> Vec<Box<dyn ServerApp>> {
        vec![WorkloadKind::RsaCrypto.app(), WorkloadKind::GaeVosao.app()]
    }

    fn shape() -> TrafficShape {
        TrafficShape {
            diurnal: Some(Diurnal {
                period: SimDuration::from_secs(20),
                amplitude: 0.6,
                phase: 0.0,
            }),
            flash: Some(FlashCrowds {
                spikes_per_sec: 0.08,
                ramp: SimDuration::from_millis(400),
                hold: SimDuration::from_millis(800),
                decay: SimDuration::from_millis(900),
                peak_excess: 3.0,
            }),
            sessions: Sessions {
                alpha: 1.5,
                min_len: 1,
                max_len: 48,
                think: SimDuration::from_millis(30),
            },
            optional_fraction: 0.2,
        }
    }

    fn drain(gen: &mut TrafficGen, apps: &[Box<dyn ServerApp>]) -> Vec<Arrival> {
        std::iter::from_fn(|| gen.next(apps)).collect()
    }

    #[test]
    fn equal_seeds_produce_identical_sequences() {
        let apps = apps();
        let end = SimTime::from_secs(20);
        let sh = shape();
        let a = drain(&mut TrafficGen::new(7, &[120.0, 60.0], end, &sh), &apps);
        let b = drain(&mut TrafficGen::new(7, &[120.0, 60.0], end, &sh), &apps);
        assert!(a.len() > 1000, "expected substantial traffic, got {}", a.len());
        assert_eq!(a, b);
        let c = drain(&mut TrafficGen::new(8, &[120.0, 60.0], end, &sh), &apps);
        assert_ne!(a, c, "different seeds must decorrelate");
    }

    #[test]
    fn arrivals_are_time_ordered_clipped_and_flagged() {
        let apps = apps();
        let end = SimTime::from_secs(12);
        let mut gen = TrafficGen::new(3, &[200.0, 50.0], end, &shape());
        let arrivals = drain(&mut gen, &apps);
        for w in arrivals.windows(2) {
            assert!(w[0].at <= w[1].at, "merged stream out of order");
        }
        assert!(arrivals.iter().all(|a| a.at < end));
        let optional = arrivals.iter().filter(|a| a.optional).count() as f64;
        let frac = optional / arrivals.len() as f64;
        assert!(frac > 0.03 && frac < 0.6, "optional fraction {frac:.3} implausible");
        assert_eq!(gen.issued(), arrivals.len() as u64);
    }

    #[test]
    fn diurnal_envelope_shapes_offered_rate() {
        let apps = apps();
        let end = SimTime::from_secs(40);
        let sh = TrafficShape {
            diurnal: Some(Diurnal {
                period: SimDuration::from_secs(40),
                amplitude: 0.8,
                phase: 0.0,
            }),
            flash: None,
            ..TrafficShape::steady()
        };
        let arrivals = drain(&mut TrafficGen::new(42, &[300.0, 300.0], end, &sh), &apps);
        // First half-period sits above the mean, second below.
        let mid = SimTime::from_secs(20);
        let first = arrivals.iter().filter(|a| a.at < mid).count() as f64;
        let second = arrivals.len() as f64 - first;
        assert!(
            first > 1.8 * second,
            "diurnal peak half ({first}) should dominate trough half ({second})"
        );
    }

    #[test]
    fn flash_crowds_concentrate_arrivals() {
        let end = SimTime::from_secs(30);
        let sh = TrafficShape {
            diurnal: None,
            flash: Some(FlashCrowds {
                spikes_per_sec: 0.05,
                ramp: SimDuration::from_millis(300),
                hold: SimDuration::from_secs(1),
                decay: SimDuration::from_millis(700),
                peak_excess: 5.0,
            }),
            ..TrafficShape::steady()
        };
        let mut gen = TrafficGen::new(9, &[200.0], end, &sh);
        assert!(gen.spike_count() >= 1, "expected at least one spike in 30 s");
        let one_app: Vec<Box<dyn ServerApp>> = vec![WorkloadKind::RsaCrypto.app()];
        let arrivals = drain(&mut gen, &one_app);
        // The per-second arrival histogram must show a spike second well
        // above the baseline mean.
        let mut per_sec = vec![0u64; 30];
        for a in &arrivals {
            per_sec[(a.at.as_secs_f64() as usize).min(29)] += 1;
        }
        let max = *per_sec.iter().max().unwrap() as f64;
        let mean = arrivals.len() as f64 / 30.0;
        assert!(max > 2.0 * mean, "peak second {max} vs mean {mean:.0} — no flash visible");
    }

    #[test]
    fn session_lengths_are_heavy_tailed_and_bounded() {
        let s = Sessions {
            alpha: 1.1,
            min_len: 1,
            max_len: 100,
            think: SimDuration::from_millis(10),
        };
        let mut rng = SimRng::new(11);
        let lens: Vec<u32> = (0..20_000).map(|_| s.draw_len(&mut rng)).collect();
        assert!(lens.iter().all(|&l| (1..=100).contains(&l)));
        let ones = lens.iter().filter(|&&l| l == 1).count();
        let tail = lens.iter().filter(|&&l| l >= 50).count();
        assert!(ones > 10_000, "mode should be the minimum ({ones})");
        assert!(tail > 50, "tail too light ({tail} ≥50-length sessions)");
        let mean = lens.iter().map(|&l| f64::from(l)).sum::<f64>() / lens.len() as f64;
        let predicted = s.mean_len();
        assert!(
            (mean - predicted).abs() / predicted < 0.25,
            "empirical mean {mean:.2} vs predicted {predicted:.2}"
        );
    }
}
