//! The workload harness: one call runs an application on a machine with
//! the facility installed and returns everything the experiments need.

use crate::apps::{AppEnv, ServerApp, WorkloadKind};
use crate::calibration::MachineCalibration;
use crate::driver::{spawn_driver, ClosedLoopDriver, CtxAlloc, DriverEnv};
use crate::stats::RunStats;
use hwsim::{Machine, MachineSpec};
use ossim::{Kernel, KernelConfig};
use power_containers::{
    Approach, ConditioningPolicy, FacilityConfig, FacilityState, PowerContainerFacility,
};
use simkern::{SimDuration, SimRng, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Server load level, as a fraction of saturation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoadLevel {
    /// The server is (nearly) fully utilized.
    Peak,
    /// Roughly 50% utilization.
    Half,
    /// An explicit utilization fraction of the app's peak.
    Fraction(f64),
}

impl LoadLevel {
    /// The fraction of the app's peak utilization this level targets.
    pub fn fraction(self) -> f64 {
        match self {
            LoadLevel::Peak => 1.0,
            LoadLevel::Half => 0.5,
            LoadLevel::Fraction(f) => f,
        }
    }

    /// The paper's display name.
    pub fn name(self) -> &'static str {
        match self {
            LoadLevel::Peak => "peak load",
            LoadLevel::Half => "half load",
            LoadLevel::Fraction(_) => "custom load",
        }
    }
}

/// Configuration for one workload run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The machine to run on.
    pub spec: MachineSpec,
    /// Root seed; every random stream derives from it.
    pub seed: u64,
    /// The accounting approach.
    pub approach: Approach,
    /// Fair power conditioning, if enabled.
    pub conditioning: Option<ConditioningPolicy>,
    /// Simulated run length.
    pub duration: SimDuration,
    /// Load level.
    pub load: LoadLevel,
    /// Pool workers per core.
    pub workers_per_core: usize,
    /// Track per-task energy (Fig. 4).
    pub track_per_task: bool,
    /// Meter for alignment/recalibration; `None` picks the best
    /// available (on-chip if present, else wattsup) when the approach is
    /// `Recalibrated`.
    pub meter: Option<&'static str>,
    /// First context id the driver allocates.
    pub ctx_base: u64,
    /// Override for the alignment scan step.
    pub align_step: Option<SimDuration>,
    /// Override for the largest scanned measurement delay.
    pub max_meter_delay: Option<SimDuration>,
    /// Ablation: disable the Eq. 3 idle-sibling staleness correction.
    pub sibling_idle_check: bool,
    /// Ablation: disable §3.5 observer-effect compensation.
    pub compensate_observer: bool,
    /// Override the periodic sampling interval (default 1 ms).
    pub sample_period: Option<SimDuration>,
    /// Ablation: naive whole-socket context tagging instead of
    /// per-segment tags.
    pub naive_socket_tagging: bool,
    /// Drive the server with a closed-loop client holding this many
    /// requests in flight, instead of the open-loop Poisson driver — the
    /// paper's concurrency-limited test client.
    pub closed_loop: Option<usize>,
    /// Hardware fault injection for robustness sweeps;
    /// [`hwsim::FaultConfig::none`] leaves the machine pristine.
    pub faults: hwsim::FaultConfig,
    /// Trace sink shared by the kernel and the facility; disabled by
    /// default. Clone one [`telemetry::Telemetry::recording`] handle
    /// into several configs to merge their runs into a single trace.
    pub telemetry: telemetry::Telemetry,
    /// Self-calibrating model bank configuration; `Some` replaces the
    /// single rolling recalibrator with one model per operating regime
    /// (requires [`Approach::Recalibrated`]).
    pub model_bank: Option<power_containers::BankConfig>,
    /// Kernel scheduling policy for this run (round-robin by default;
    /// the attribution sweeps rerun workloads under every policy).
    pub sched: ossim::SchedulerKind,
}

impl RunConfig {
    /// A sensible default configuration for `spec`.
    pub fn new(spec: MachineSpec) -> RunConfig {
        RunConfig {
            spec,
            seed: 42,
            approach: Approach::ChipShare,
            conditioning: None,
            duration: SimDuration::from_secs(10),
            load: LoadLevel::Peak,
            workers_per_core: 4,
            track_per_task: false,
            meter: None,
            ctx_base: 1,
            align_step: None,
            max_meter_delay: None,
            sibling_idle_check: true,
            compensate_observer: true,
            sample_period: None,
            naive_socket_tagging: false,
            closed_loop: None,
            faults: hwsim::FaultConfig::none(),
            telemetry: telemetry::Telemetry::disabled(),
            model_bank: None,
            sched: ossim::SchedulerKind::RoundRobin,
        }
    }
}

/// Everything a finished run exposes.
pub struct RunOutcome {
    /// The kernel (machine energy, meters, stats).
    pub kernel: Kernel,
    /// The facility state handle.
    pub facility: Rc<RefCell<FacilityState>>,
    /// Request arrival/completion statistics.
    pub stats: Rc<RefCell<RunStats>>,
    /// The run's end time.
    pub end: SimTime,
    /// The request rate the driver targeted, per second.
    pub offered_rate: f64,
}

impl RunOutcome {
    /// True machine active energy over the whole run, Joules — the
    /// "measured" reference for validation.
    pub fn measured_active_energy_j(&self) -> f64 {
        self.kernel.machine().true_active_energy_j()
    }

    /// Measured average active power over the run, Watts.
    pub fn measured_active_power_w(&self) -> f64 {
        self.measured_active_energy_j() / self.end.as_secs_f64()
    }

    /// Aggregate energy the facility attributed (requests + background,
    /// CPU + I/O), Joules — the paper's validation numerator.
    pub fn attributed_energy_j(&self) -> f64 {
        let f = self.facility.borrow();
        let c = f.containers();
        c.total_energy_with_background_j()
            + c.total_request_io_energy_j()
            + c.background().io_energy_j()
    }

    /// The Fig. 8 validation error: aggregate profiled request power vs
    /// measured system active power.
    pub fn validation_error(&self) -> f64 {
        analysis::stats::relative_error(
            self.attributed_energy_j(),
            self.measured_active_energy_j(),
        )
    }

    /// Degradation decisions the facility took during the run (all zero
    /// on a clean run).
    pub fn degrade_stats(&self) -> power_containers::DegradeStats {
        self.facility.borrow().degrade_stats()
    }

    /// Faults the machine actually injected during the run, by kind.
    pub fn fault_counts(&self) -> [u64; hwsim::FaultKind::ALL.len()] {
        self.kernel.machine().fault_log().counts()
    }

    /// Mean machine utilization over the run (busy cycles over elapsed
    /// cycles, averaged over cores).
    pub fn mean_utilization(&self) -> f64 {
        let m = self.kernel.machine();
        let n = m.spec().total_cores();
        (0..n)
            .map(|c| m.counters(hwsim::CoreId(c)).core_utilization())
            .sum::<f64>()
            / n as f64
    }
}

/// The offered request rate for an app at a load level on a machine.
pub fn offered_rate(app: &dyn ServerApp, spec: &MachineSpec, load: LoadLevel) -> f64 {
    let scale = spec.work_scale(&app.representative_profile());
    let cycles = app.mean_request_cycles() * scale;
    let capacity = spec.total_cores() as f64 * spec.freq_ghz * 1e9 / cycles;
    capacity * app.peak_utilization() * load.fraction()
}

/// A run that has been assembled but not yet executed: the experiment may
/// add extra drivers or instrumentation before calling
/// [`PreparedRun::run`] (or stepping [`PreparedRun::kernel`] manually).
pub struct PreparedRun {
    /// The assembled kernel (facility installed, app + driver spawned).
    pub kernel: Kernel,
    /// Facility state handle.
    pub facility: Rc<RefCell<FacilityState>>,
    /// Shared run statistics.
    pub stats: Rc<RefCell<RunStats>>,
    /// Worker inboxes of the primary app (for additional drivers).
    pub inboxes: Vec<ossim::SocketId>,
    /// The primary driver's offered rate, requests/second.
    pub offered_rate: f64,
    /// The context allocator shared with the primary driver.
    pub ctxs: CtxAlloc,
    /// Configured run length.
    pub duration: SimDuration,
}

impl PreparedRun {
    /// Runs to the configured duration and returns the outcome.
    pub fn run(mut self) -> RunOutcome {
        let end = SimTime::ZERO + self.duration;
        self.kernel.run_until(end);
        let outcome = RunOutcome {
            kernel: self.kernel,
            facility: self.facility,
            stats: self.stats,
            end,
            offered_rate: self.offered_rate,
        };
        crate::degrade::note_degrade(outcome.degrade_stats());
        crate::degrade::note_requests(outcome.stats.borrow().issued());
        outcome
    }

    /// Converts an already-stepped run into an outcome at its current
    /// time.
    pub fn finish(self) -> RunOutcome {
        let end = self.kernel.now();
        let outcome = RunOutcome {
            kernel: self.kernel,
            facility: self.facility,
            stats: self.stats,
            end,
            offered_rate: self.offered_rate,
        };
        crate::degrade::note_degrade(outcome.degrade_stats());
        crate::degrade::note_requests(outcome.stats.borrow().issued());
        outcome
    }
}

/// Runs `kind` under `cfg`, using `cal` for the power model.
pub fn run_app(kind: WorkloadKind, cfg: &RunConfig, cal: &MachineCalibration) -> RunOutcome {
    run_server_app(Rc::from(kind.app()), cfg, cal)
}

/// Runs an already-instantiated app (for custom request mixes).
pub fn run_server_app(
    app: Rc<dyn ServerApp>,
    cfg: &RunConfig,
    cal: &MachineCalibration,
) -> RunOutcome {
    prepare_app(app, cfg, cal).run()
}

/// Assembles machine, kernel, facility, app and driver without running.
pub fn prepare_app(
    app: Rc<dyn ServerApp>,
    cfg: &RunConfig,
    cal: &MachineCalibration,
) -> PreparedRun {
    let meter = cfg.meter.or_else(|| {
        if cfg.approach == Approach::Recalibrated {
            if cfg.spec.meters.iter().any(|m| m.name == "on-chip") {
                Some("on-chip")
            } else {
                Some("wattsup")
            }
        } else {
            None
        }
    });
    let mut facility_config = FacilityConfig {
        approach: cfg.approach,
        conditioning: cfg.conditioning,
        meter,
        meter_idle_w: meter.map(|m| cal.meter_idle(m)).unwrap_or(0.0),
        align_every: if meter == Some("wattsup") { 4 } else { 16 },
        recalibrate_every: if meter == Some("wattsup") { 2 } else { 16 },
        track_per_task: cfg.track_per_task,
        sibling_idle_check: cfg.sibling_idle_check,
        compensate_observer: cfg.compensate_observer,
        telemetry: cfg.telemetry.clone(),
        model_bank: cfg.model_bank.clone(),
        ..FacilityConfig::default()
    };
    // The per-meter refit cadence above is the harness-level knob; keep
    // the bank's per-slot cadence in lockstep with it.
    let cadence = facility_config.recalibrate_every;
    if let Some(bank) = &mut facility_config.model_bank {
        bank.recalibrate_every = cadence;
    }
    if let Some(period) = cfg.sample_period {
        facility_config.sample_period = period;
    }
    if let Some(step) = cfg.align_step {
        facility_config.align_step = step;
    }
    if let Some(max) = cfg.max_meter_delay {
        facility_config.max_meter_delay = max;
    }
    let model = cal.model_for(cfg.approach);
    let calset = (cfg.approach == Approach::Recalibrated).then_some(&cal.set);
    let facility = PowerContainerFacility::new(model, calset, &cfg.spec, facility_config);
    let state = facility.state();

    let mut machine = Machine::new(cfg.spec.clone(), cfg.seed);
    if cfg.faults.is_active() {
        machine.set_fault_config(cfg.faults.clone());
    }
    let kernel_config = KernelConfig {
        naive_socket_tagging: cfg.naive_socket_tagging,
        telemetry: cfg.telemetry.clone(),
        sched: cfg.sched.clone(),
        ..KernelConfig::default()
    };
    let mut kernel = Kernel::new(machine, kernel_config);
    kernel.install_hooks(Box::new(facility));

    let stats = Rc::new(RefCell::new(RunStats::new()));
    // Closed-loop clients need the completion channel wired into the
    // worker pool before app setup; create it up front.
    let closed_channel = cfg.closed_loop.map(|_| kernel.new_socket_pair());
    let env = AppEnv {
        stats: Rc::clone(&stats),
        workers: cfg.workers_per_core * cfg.spec.total_cores(),
        spec: cfg.spec.clone(),
        seed: cfg.seed,
        notify: closed_channel.map(|(tx, _rx)| tx),
    };
    let inboxes = app.setup(&mut kernel, &env);
    let rate = offered_rate(app.as_ref(), &cfg.spec, cfg.load);
    let mut label_rng = SimRng::new(cfg.seed).split(0x1ABE1);
    let picker = {
        let app = Rc::clone(&app);
        move |rng: &mut SimRng| {
            let _ = rng;
            app.pick_label(&mut label_rng)
        }
    };
    let ctxs = CtxAlloc::new(cfg.ctx_base);
    match (cfg.closed_loop, closed_channel) {
        (Some(concurrency), Some((_tx, completions_rx))) => {
            kernel.spawn(
                Box::new(ClosedLoopDriver {
                    inboxes: inboxes.clone(),
                    completions_rx,
                    concurrency,
                    pick_label: Box::new(picker),
                    stats: Rc::clone(&stats),
                    facility: Some(Rc::clone(&state)),
                    ctxs: ctxs.clone(),
                    primed: 0,
                    rr: 0,
                }),
                None,
            );
        }
        _ => {
            spawn_driver(
                &mut kernel,
                DriverEnv {
                    inboxes: inboxes.clone(),
                    mean_gap: SimDuration::from_secs_f64(1.0 / rate),
                    pick_label: Box::new(picker),
                    stats: Rc::clone(&stats),
                    facility: Some(Rc::clone(&state)),
                    ctxs: ctxs.clone(),
                    max_requests: None,
                    start_after: SimDuration::ZERO,
                },
            );
        }
    }
    PreparedRun {
        kernel,
        facility: state,
        stats,
        inboxes,
        offered_rate: rate,
        ctxs,
        duration: cfg.duration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_levels_scale_rates() {
        let app = WorkloadKind::RsaCrypto.app();
        let spec = MachineSpec::sandybridge();
        let peak = offered_rate(app.as_ref(), &spec, LoadLevel::Peak);
        let half = offered_rate(app.as_ref(), &spec, LoadLevel::Half);
        assert!((half / peak - 0.5).abs() < 1e-9);
        assert!(peak > 100.0, "RSA peak rate {peak}/s");
    }

    #[test]
    fn older_machines_get_lower_rates_for_compute_work() {
        let app = WorkloadKind::RsaCrypto.app();
        let sb = offered_rate(app.as_ref(), &MachineSpec::sandybridge(), LoadLevel::Peak);
        let wc = offered_rate(app.as_ref(), &MachineSpec::woodcrest(), LoadLevel::Peak);
        // Same core count, similar frequency, but 2.3× work scale.
        assert!(wc < sb * 0.6, "woodcrest {wc} vs sandybridge {sb}");
    }
}
