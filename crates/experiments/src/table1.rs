//! Table 1 — average request response times under the three request
//! distribution policies.
//!
//! Both heterogeneity-aware policies keep the machines at healthy
//! utilization and deliver short response times; the simple balancer
//! overloads the Woodcrest machine and suffers badly (the paper reports
//! 537/1728 ms vs well under 200 ms for the aware policies).

use crate::fig14::cluster_outcomes;
use crate::output::{banner, write_record, Table};
use crate::Scale;
use serde::Serialize;

/// One policy's response times.
#[derive(Debug, Clone, Serialize)]
pub struct ResponseRow {
    /// Policy name.
    pub policy: String,
    /// `(app, mean response ms)` pairs.
    pub by_app: Vec<(String, f64)>,
}

/// The Table 1 record.
#[derive(Debug, Clone, Serialize)]
pub struct Table1 {
    /// All rows.
    pub rows: Vec<ResponseRow>,
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Table1 {
    banner("table1", "average request response time per distribution policy");
    let outcomes = cluster_outcomes(scale);
    let mut rows = Vec::new();
    let app_names: Vec<String> = outcomes[0]
        .response_by_app
        .iter()
        .map(|(k, _)| k.name().to_string())
        .collect();
    let mut header = vec!["policy".to_string()];
    header.extend(app_names.iter().map(|a| format!("{a} (ms)")));
    let mut table = Table::new(header);
    for o in &outcomes {
        let by_app: Vec<(String, f64)> = o
            .response_by_app
            .iter()
            .map(|(k, s)| (k.name().to_string(), s.mean() * 1e3))
            .collect();
        let mut cells = vec![o.policy.to_string()];
        cells.extend(by_app.iter().map(|(_, ms)| format!("{ms:.0}")));
        table.row(cells);
        rows.push(ResponseRow { policy: o.policy.to_string(), by_app });
    }
    println!("{table}");
    let record = Table1 { rows };
    write_record("table1", &record);
    record
}
