//! Fig. 5 — measured active power of every workload on every machine at
//! peak and half load.

use crate::output::{banner, write_record, Table};
use crate::{Lab, Scale};
use serde::Serialize;
use simkern::SimDuration;
use workloads::{run_app, LoadLevel, RunConfig, WorkloadKind};

/// One bar of Fig. 5.
#[derive(Debug, Clone, Serialize)]
pub struct PowerCell {
    /// Machine name.
    pub machine: String,
    /// Workload name.
    pub workload: String,
    /// Load level name.
    pub load: String,
    /// Measured active power, Watts.
    pub active_w: f64,
    /// Mean core utilization.
    pub utilization: f64,
}

/// The Fig. 5 record.
#[derive(Debug, Clone, Serialize)]
pub struct Fig5 {
    /// All cells.
    pub cells: Vec<PowerCell>,
}

/// Runs the experiment. Cells (machine × workload × load) are
/// independent seeded simulations, so they fan out across
/// [`crate::runner::jobs`] workers; assembly and printing follow the
/// canonical sweep order regardless of completion order.
pub fn run(scale: Scale) -> Fig5 {
    banner("fig5", "measured active power per workload, machine, load");
    let mut lab = Lab::new();
    let machines = ["woodcrest", "westmere", "sandybridge"];
    let mut tasks = Vec::new();
    for machine in machines {
        let spec = lab.spec(machine);
        let cal = lab.calibration(machine);
        for kind in WorkloadKind::ALL {
            for load in [LoadLevel::Peak, LoadLevel::Half] {
                let spec = spec.clone();
                let cal = cal.clone();
                tasks.push(move || {
                    let mut cfg = RunConfig::new(spec);
                    cfg.sched = crate::runner::sched_kind();
                    cfg.load = load;
                    cfg.duration = SimDuration::from_secs(scale.run_secs() / 2 + 2);
                    cfg.telemetry = crate::runner::trace_handle();
                    let outcome = run_app(kind, &cfg, &cal);
                    let stem = format!(
                        "{machine}-{}-{}",
                        crate::runner::slug(kind.name()),
                        crate::runner::slug(load.name())
                    );
                    crate::runner::write_trace("fig05", &stem, &cfg.telemetry);
                    PowerCell {
                        machine: machine.to_string(),
                        workload: kind.name().to_string(),
                        load: load.name().to_string(),
                        active_w: outcome.measured_active_power_w(),
                        utilization: outcome.mean_utilization(),
                    }
                });
            }
        }
    }
    let cells: Vec<PowerCell> = crate::runner::run_parallel(crate::runner::jobs(), tasks)
        .into_iter()
        .collect::<Result<_, _>>()
        .unwrap_or_else(|e| panic!("fig5 cell failed: {e}"));
    for machine in machines {
        let mut table = Table::new(["workload", "load", "active power (W)", "utilization"]);
        for cell in cells.iter().filter(|c| c.machine == machine) {
            table.row([
                cell.workload.clone(),
                cell.load.clone(),
                format!("{:.1}", cell.active_w),
                format!("{:.2}", cell.utilization),
            ]);
        }
        println!("machine: {machine}");
        println!("{table}");
    }
    let record = Fig5 { cells };
    write_record("fig5", &record);
    record
}
