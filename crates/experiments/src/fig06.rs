//! Fig. 6 — mean request power distributions (Solr and GAE-Hybrid, half
//! load, SandyBridge).
//!
//! The GAE-Hybrid histogram should show two masses: Vosao requests at
//! moderate power and power viruses at substantially higher power.

use crate::output::{banner, write_record};
use crate::{Lab, Scale};
use analysis::hist::Histogram;
use serde::Serialize;
use simkern::SimDuration;
use workloads::{run_app, LoadLevel, RunConfig, WorkloadKind, POWER_VIRUS_LABEL};

/// One workload's request-power distribution.
#[derive(Debug, Clone, Serialize)]
pub struct PowerDistribution {
    /// Workload name.
    pub workload: String,
    /// Histogram bin counts over `[0, 25)` W.
    pub bins: Vec<u64>,
    /// Mean request power of non-virus requests, Watts.
    pub normal_mean_w: f64,
    /// Mean request power of power viruses (0 when none), Watts.
    pub virus_mean_w: f64,
    /// Number of requests profiled.
    pub requests: usize,
}

/// The Fig. 6 record.
#[derive(Debug, Clone, Serialize)]
pub struct Fig6 {
    /// Solr and GAE-Hybrid distributions.
    pub distributions: Vec<PowerDistribution>,
}

pub(crate) fn request_records(
    lab: &mut Lab,
    kind: WorkloadKind,
    scale: Scale,
) -> Vec<power_containers::ContainerRecord> {
    let spec = lab.spec("sandybridge");
    let cal = lab.calibration("sandybridge");
    let mut cfg = RunConfig::new(spec);
    cfg.sched = crate::runner::sched_kind();
    cfg.load = LoadLevel::Half;
    cfg.duration = SimDuration::from_secs(scale.run_secs());
    let outcome = run_app(kind, &cfg, &cal);
    let f = outcome.facility.borrow();
    f.containers()
        .records()
        .iter()
        .filter(|r| r.busy_seconds > 0.0 && r.label.is_some())
        .cloned()
        .collect()
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig6 {
    banner("fig6", "mean request power distributions (half load, SandyBridge)");
    let mut lab = Lab::new();
    let mut distributions = Vec::new();
    for kind in [WorkloadKind::Solr, WorkloadKind::GaeHybrid] {
        let records = request_records(&mut lab, kind, scale);
        let mut hist = Histogram::new(0.0, 25.0, 25);
        let mut normal = analysis::stats::Summary::new();
        let mut virus = analysis::stats::Summary::new();
        for r in &records {
            hist.record(r.mean_power_w);
            if r.label == Some(POWER_VIRUS_LABEL) {
                virus.record(r.mean_power_w);
            } else {
                normal.record(r.mean_power_w);
            }
        }
        println!("workload: {kind} ({} requests)", records.len());
        println!("{}", hist.ascii_plot(50));
        println!(
            "normal requests: mean {:.1} W; power viruses: mean {:.1} W (n={})",
            normal.mean(),
            virus.mean(),
            virus.count()
        );
        distributions.push(PowerDistribution {
            workload: kind.name().to_string(),
            bins: hist.bin_counts().to_vec(),
            normal_mean_w: normal.mean(),
            virus_mean_w: virus.mean(),
            requests: records.len(),
        });
    }
    let record = Fig6 { distributions };
    write_record("fig6", &record);
    record
}
