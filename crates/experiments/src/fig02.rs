//! Fig. 2 — measurement/model alignment cross-correlation.
//!
//! Runs a power-fluctuating workload (GAE-Hybrid: Vosao requests mixed
//! with long power viruses) on the SandyBridge machine, lets the facility
//! collect delayed meter readings, and scans hypothetical measurement
//! delays. The paper finds a ~1 ms delay for the on-chip meter and
//! ~1.2 s for the Wattsup meter — here the simulated delivery delays are
//! exactly 1 ms and 1.2 s, so the correlation peak should land there.

use crate::output::{banner, write_record, Table};
use crate::{Lab, Scale};
use serde::Serialize;
use simkern::SimDuration;
use workloads::{run_app, LoadLevel, RunConfig, WorkloadKind};

/// One meter's delay scan.
#[derive(Debug, Clone, Serialize)]
pub struct MeterScan {
    /// Meter name.
    pub meter: String,
    /// The true (configured) delivery delay, ms.
    pub true_delay_ms: f64,
    /// The estimated delay at the correlation peak, ms.
    pub estimated_delay_ms: f64,
    /// Correlation score at the peak.
    pub peak_score: f64,
    /// The `(delay_ms, correlation)` curve.
    pub curve: Vec<(f64, f64)>,
}

/// The Fig. 2 record.
#[derive(Debug, Clone, Serialize)]
pub struct Fig2 {
    /// On-chip and Wattsup scans.
    pub scans: Vec<MeterScan>,
}

fn scan_meter(
    lab: &mut Lab,
    meter: &'static str,
    step: SimDuration,
    max_delay: SimDuration,
    secs: u64,
) -> MeterScan {
    let spec = lab.spec("sandybridge");
    let cal = lab.calibration("sandybridge");
    let mut cfg = RunConfig::new(spec.clone());
    cfg.sched = crate::runner::sched_kind();
    cfg.meter = Some(meter);
    cfg.align_step = Some(step);
    cfg.max_meter_delay = Some(max_delay);
    cfg.duration = SimDuration::from_secs(secs);
    cfg.load = LoadLevel::Half;
    let outcome = run_app(WorkloadKind::GaeHybrid, &cfg, &cal);
    let f = outcome.facility.borrow();
    let alignment = f
        .last_alignment()
        .unwrap_or_else(|| panic!("no alignment produced for meter {meter}"));
    let true_delay = spec
        .meters
        .iter()
        .find(|m| m.name == meter)
        .expect("meter exists")
        .delay;
    MeterScan {
        meter: meter.to_string(),
        true_delay_ms: true_delay.as_millis_f64(),
        estimated_delay_ms: alignment.delay.as_millis_f64(),
        peak_score: alignment.score,
        curve: alignment
            .curve
            .iter()
            .map(|(d, s)| (d.as_millis_f64(), *s))
            .collect(),
    }
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig2 {
    banner("fig2", "measurement/model alignment cross-correlation");
    let mut lab = Lab::new();
    let scans = vec![
        scan_meter(
            &mut lab,
            "on-chip",
            SimDuration::from_millis(1),
            SimDuration::from_millis(20),
            scale.run_secs().max(4),
        ),
        scan_meter(
            &mut lab,
            "wattsup",
            SimDuration::from_millis(50),
            SimDuration::from_millis(2000),
            (scale.run_secs() * 2).max(16),
        ),
    ];
    let mut table = Table::new(["meter", "true delay", "estimated delay", "peak corr."]);
    for s in &scans {
        table.row([
            s.meter.clone(),
            format!("{:.0} ms", s.true_delay_ms),
            format!("{:.0} ms", s.estimated_delay_ms),
            format!("{:.3}", s.peak_score),
        ]);
    }
    println!("{table}");
    let record = Fig2 { scans };
    write_record("fig2", &record);
    record
}
