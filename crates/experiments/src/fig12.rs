//! Fig. 12 — original request power vs applied duty-cycle level.
//!
//! From the conditioned Fig. 11 run: each completed request contributes a
//! point (its unthrottled power estimate, the time-averaged duty level
//! applied to it). Normal Vosao requests should run at nearly full
//! speed; power viruses should be substantially throttled — unless they
//! arrived while cores were idle and inherited a larger budget.

use crate::fig11::conditioning_data;
use crate::output::{banner, pct, write_record, Table};
use crate::Scale;
use analysis::stats::Summary;
use serde::Serialize;
use workloads::POWER_VIRUS_LABEL;

/// One scatter point (a completed request).
#[derive(Debug, Clone, Serialize)]
pub struct DutyPoint {
    /// `true` for a power virus.
    pub virus: bool,
    /// Unthrottled power estimate, Watts.
    pub original_power_w: f64,
    /// Time-averaged duty fraction applied.
    pub duty: f64,
}

/// The Fig. 12 record.
#[derive(Debug, Clone, Serialize)]
pub struct Fig12 {
    /// All scatter points.
    pub points: Vec<DutyPoint>,
    /// Mean slowdown of normal requests (1 − duty).
    pub normal_slowdown: f64,
    /// Mean slowdown of power viruses.
    pub virus_slowdown: f64,
    /// Slowdown a full-machine 7/8 throttle would impose on everyone.
    pub full_machine_slowdown: f64,
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig12 {
    banner("fig12", "original request power vs applied duty-cycle");
    let data = conditioning_data(scale);
    let outcome = &data.conditioned.1;
    let f = outcome.facility.borrow();
    let mut points = Vec::new();
    let mut normal = Summary::new();
    let mut virus = Summary::new();
    for r in f.containers().records() {
        if r.busy_seconds <= 0.0 || r.label.is_none() {
            continue;
        }
        let is_virus = r.label == Some(POWER_VIRUS_LABEL);
        points.push(DutyPoint {
            virus: is_virus,
            original_power_w: r.unthrottled_power_w,
            duty: r.mean_duty,
        });
        if is_virus {
            virus.record(1.0 - r.mean_duty);
        } else {
            normal.record(1.0 - r.mean_duty);
        }
    }
    let record = Fig12 {
        normal_slowdown: normal.mean(),
        virus_slowdown: virus.mean(),
        full_machine_slowdown: 1.0 - 7.0 / 8.0,
        points,
    };
    let mut table = Table::new(["request class", "count", "mean original power (W)", "mean duty", "mean slowdown"]);
    let class = |is_virus: bool| {
        let pts: Vec<&DutyPoint> = record.points.iter().filter(|p| p.virus == is_virus).collect();
        let n = pts.len().max(1) as f64;
        let p: f64 = pts.iter().map(|p| p.original_power_w).sum::<f64>() / n;
        let d: f64 = pts.iter().map(|p| p.duty).sum::<f64>() / n;
        (pts.len(), p, d)
    };
    for (name, is_virus, slow) in [
        ("normal (Vosao)", false, record.normal_slowdown),
        ("power virus", true, record.virus_slowdown),
    ] {
        let (n, p, d) = class(is_virus);
        table.row([
            name.to_string(),
            n.to_string(),
            format!("{p:.1}"),
            format!("{d:.2}"),
            pct(slow),
        ]);
    }
    println!("{table}");
    println!(
        "full-machine alternative: 7/8 duty on all requests = {} slowdown for everyone",
        pct(record.full_machine_slowdown)
    );
    write_record("fig12", &record);
    record
}
