//! Fig. 13 — cross-machine active energy usage ratios.
//!
//! Per-workload mean request energy on SandyBridge over Woodcrest,
//! profiled through power containers at peak load. The paper spans 0.22
//! (RSA-crypto — strong affinity for the new machine) to 0.91 (Stress —
//! nearly indifferent).

use crate::output::{banner, write_record, Table};
use crate::{Lab, Scale};
use cluster::energy_affinity;
use serde::Serialize;
use simkern::SimDuration;
use workloads::WorkloadKind;

/// One workload's ratio.
#[derive(Debug, Clone, Serialize)]
pub struct RatioRow {
    /// Workload name.
    pub workload: String,
    /// Mean request energy on SandyBridge, Joules.
    pub sandybridge_j: f64,
    /// Mean request energy on Woodcrest, Joules.
    pub woodcrest_j: f64,
    /// The cross-machine energy ratio.
    pub ratio: f64,
}

/// The Fig. 13 record.
#[derive(Debug, Clone, Serialize)]
pub struct Fig13 {
    /// All rows, in the paper's workload order.
    pub rows: Vec<RatioRow>,
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig13 {
    banner("fig13", "cross-machine energy usage ratio (SandyBridge / Woodcrest)");
    let mut lab = Lab::new();
    let sb = lab.spec("sandybridge");
    let wc = lab.spec("woodcrest");
    let sb_cal = lab.calibration("sandybridge");
    let wc_cal = lab.calibration("woodcrest");
    let kinds = [
        WorkloadKind::RsaCrypto,
        WorkloadKind::Solr,
        WorkloadKind::WeBWorK,
        WorkloadKind::Stress,
        WorkloadKind::GaeVosao,
    ];
    let rows_raw = energy_affinity(
        &kinds,
        (&sb, &sb_cal),
        (&wc, &wc_cal),
        crate::SEED,
        SimDuration::from_secs(scale.run_secs()),
    );
    let mut table = Table::new(["workload", "SandyBridge (J)", "Woodcrest (J)", "ratio"]);
    let rows: Vec<RatioRow> = rows_raw
        .iter()
        .map(|r| {
            table.row([
                r.kind.name().to_string(),
                format!("{:.3}", r.new_machine_j),
                format!("{:.3}", r.old_machine_j),
                format!("{:.2}", r.ratio()),
            ]);
            RatioRow {
                workload: r.kind.name().to_string(),
                sandybridge_j: r.new_machine_j,
                woodcrest_j: r.old_machine_j,
                ratio: r.ratio(),
            }
        })
        .collect();
    println!("{table}");
    let record = Fig13 { rows };
    write_record("fig13", &record);
    record
}
