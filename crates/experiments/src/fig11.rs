//! Fig. 11 — fair power conditioning of power viruses.
//!
//! GAE-Vosao runs at peak load on the SandyBridge machine; sporadic
//! power viruses (~1/s, ~100 ms each) arrive partway into the run and
//! cause visible power spikes. With container-based conditioning, each
//! request's power is compared against its fair share of the system
//! target and only the offenders are duty-cycle throttled, keeping the
//! system at or below the target.

use crate::output::{banner, write_record, Table};
use crate::{Lab, Scale};
use power_containers::ConditioningPolicy;
use serde::Serialize;
use simkern::{SimDuration, SimTime};
use workloads::{
    prepare_app, spawn_driver, CtxAlloc, DriverEnv, LoadLevel, RunConfig, RunOutcome,
    WorkloadKind, POWER_VIRUS_LABEL,
};

/// One conditioning run's data.
#[derive(Debug, Clone, Serialize)]
pub struct ConditioningRun {
    /// Whether the facility's conditioning was enabled.
    pub conditioned: bool,
    /// Active-power trace in 100 ms buckets, Watts.
    pub trace_w: Vec<f64>,
    /// Peak active power after virus injection, Watts.
    pub peak_after_w: f64,
    /// Fraction of post-injection buckets above the target.
    pub frac_above_target: f64,
}

/// The shared data of Fig. 11 and Fig. 12.
pub struct ConditioningData {
    /// The active-power target, Watts.
    pub target_w: f64,
    /// When viruses start arriving.
    pub virus_start: SimTime,
    /// The unconditioned run.
    pub baseline: (ConditioningRun, RunOutcome),
    /// The conditioned run.
    pub conditioned: (ConditioningRun, RunOutcome),
}

/// The Fig. 11 JSON record.
#[derive(Debug, Clone, Serialize)]
pub struct Fig11 {
    /// The active-power target, Watts.
    pub target_w: f64,
    /// Virus arrival start, seconds.
    pub virus_start_s: f64,
    /// Both runs' traces.
    pub runs: Vec<ConditioningRun>,
}

/// The GAE-Vosao load for the conditioning experiments: high enough that
/// all four cores are regularly busy (the paper's "fully utilizes"
/// setting), but just below open-loop saturation — throttled viruses
/// must consume headroom rather than inflate every queue, or the
/// per-request-vs-full-machine comparison degenerates into pure queueing
/// amplification.
pub const SATURATING_LOAD: LoadLevel = LoadLevel::Fraction(1.3);

fn run_once(
    lab: &mut Lab,
    policy_target: Option<f64>,
    measure_target: f64,
    duration: SimDuration,
    virus_start: SimTime,
) -> (ConditioningRun, RunOutcome) {
    let spec = lab.spec("sandybridge");
    let cal = lab.calibration("sandybridge");
    let mut cfg = RunConfig::new(spec);
    cfg.sched = crate::runner::sched_kind();
    cfg.load = SATURATING_LOAD;
    cfg.closed_loop = Some(2 * cfg.spec.total_cores());
    cfg.duration = duration;
    cfg.conditioning = policy_target.map(ConditioningPolicy::new);
    let mut prepared = prepare_app(std::rc::Rc::from(WorkloadKind::GaeVosao.app()), &cfg, &cal);
    // Sporadic power viruses arriving from `virus_start` on.
    spawn_driver(
        &mut prepared.kernel,
        DriverEnv {
            inboxes: prepared.inboxes.clone(),
            mean_gap: SimDuration::from_millis(350),
            pick_label: Box::new(|_| POWER_VIRUS_LABEL),
            stats: std::rc::Rc::clone(&prepared.stats),
            facility: Some(std::rc::Rc::clone(&prepared.facility)),
            ctxs: CtxAlloc::new(1_000_000_000),
            max_requests: None,
            start_after: virus_start.duration_since(SimTime::ZERO),
        },
    );
    // Step in 100 ms buckets recording the active-power trace.
    let mut trace = Vec::new();
    let mut last_energy = 0.0;
    let mut t = SimTime::ZERO;
    while t < SimTime::ZERO + duration {
        t += SimDuration::from_millis(100);
        prepared.kernel.run_until(t);
        let e = prepared.kernel.machine().true_active_energy_j();
        trace.push((e - last_energy) / 0.1);
        last_energy = e;
    }
    let outcome = prepared.finish();
    let start_idx = (virus_start.as_secs_f64() * 10.0) as usize;
    let after = &trace[start_idx.min(trace.len())..];
    let peak_after = after.iter().copied().fold(0.0, f64::max);
    let above = after.iter().filter(|&&w| w > measure_target * 1.02).count() as f64
        / after.len().max(1) as f64;
    (
        ConditioningRun {
            conditioned: policy_target.is_some(),
            trace_w: trace,
            peak_after_w: peak_after,
            frac_above_target: above,
        },
        outcome,
    )
}

/// Runs both the baseline and conditioned experiments (shared with
/// Fig. 12).
pub fn conditioning_data(scale: Scale) -> ConditioningData {
    let mut lab = Lab::new();
    let duration = SimDuration::from_secs(scale.run_secs().max(8));
    let virus_start = SimTime::from_secs(duration.as_secs_f64() as u64 * 2 / 5);

    // Establish the normal-operation power level at saturation, then set
    // the target a hair above it (the paper's 40 W plays the same role).
    let spec = lab.spec("sandybridge");
    let cal = lab.calibration("sandybridge");
    let mut probe_cfg = RunConfig::new(spec.clone());
    probe_cfg.sched = crate::runner::sched_kind();
    probe_cfg.load = SATURATING_LOAD;
    probe_cfg.closed_loop = Some(2 * probe_cfg.spec.total_cores());
    probe_cfg.duration = SimDuration::from_secs(3);
    let probe = workloads::run_app(WorkloadKind::GaeVosao, &probe_cfg, &cal);
    // The paper's 40 W target sits just above the power of a machine whose
    // cores are all busy with *normal* requests: per-request budgets then
    // clear every Vosao request and catch only the viruses.
    let mean_normal_w = {
        let f = probe.facility.borrow();
        let s: analysis::stats::Summary = f
            .containers()
            .records()
            .iter()
            .filter(|r| r.busy_seconds > 0.0)
            .map(|r| r.mean_power_w)
            .collect();
        s.mean()
    };
    let target = spec.total_cores() as f64 * mean_normal_w * 1.06;

    let baseline = run_once(&mut lab, None, target, duration, virus_start);
    let conditioned = run_once(&mut lab, Some(target), target, duration, virus_start);
    ConditioningData { target_w: target, virus_start, baseline, conditioned }
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig11 {
    banner("fig11", "power conditioning of power viruses (GAE, SandyBridge)");
    let data = conditioning_data(scale);
    let mut table = Table::new(["run", "peak after viruses (W)", "buckets above target"]);
    for (run, _) in [&data.baseline, &data.conditioned] {
        table.row([
            if run.conditioned { "conditioned" } else { "original" }.to_string(),
            format!("{:.1}", run.peak_after_w),
            format!("{:.0}%", run.frac_above_target * 100.0),
        ]);
    }
    println!("active power target: {:.1} W", data.target_w);
    println!("viruses arrive at t = {}", data.virus_start);
    println!("{table}");
    // A compact trace excerpt around the virus start.
    let start = (data.virus_start.as_secs_f64() * 10.0) as usize;
    println!("trace excerpt (W per 100 ms bucket, from virus arrival):");
    for (name, run) in [("original", &data.baseline.0), ("conditioned", &data.conditioned.0)] {
        let excerpt: Vec<String> = run.trace_w[start..run.trace_w.len().min(start + 20)]
            .iter()
            .map(|w| format!("{w:.0}"))
            .collect();
        println!("  {name:>11}: {}", excerpt.join(" "));
    }
    let record = Fig11 {
        target_w: data.target_w,
        virus_start_s: data.virus_start.as_secs_f64(),
        runs: vec![data.baseline.0.clone(), data.conditioned.0.clone()],
    };
    write_record("fig11", &record);
    record
}
