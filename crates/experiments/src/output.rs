//! Output helpers: paper-style text tables plus JSON result records.
//!
//! Every experiment prints its rows to stdout and appends a JSON record
//! under `results/` so EXPERIMENTS.md can be regenerated from the data.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Table {
        Table { header: header.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Table {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                let _ = write!(line, "{:width$}", c, width = widths[i]);
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Prints an experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("== {id}: {title} ==");
}

/// The directory experiment JSON records are written to: the
/// `PC_RESULTS_DIR` environment variable when set (used by tests to
/// sandbox runs), otherwise `results/` at the repository root.
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("PC_RESULTS_DIR") {
        if !dir.is_empty() {
            return PathBuf::from(dir);
        }
    }
    let root = std::env::var("CARGO_MANIFEST_DIR")
        .map(|d| PathBuf::from(d).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    root.join("results")
}

/// Writes an experiment's JSON record to `results/<id>.json`.
/// Failures are reported but non-fatal (experiments still print).
pub fn write_record<T: Serialize>(id: &str, record: &T) {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{id}.json"));
    match serde_json::to_string_pretty(record) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {}: {e}", path.display());
            } else {
                println!("[record: {}]", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize record: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(["workload", "error"]);
        t.row(["RSA-crypto", "8.1%"]);
        t.row(["Stress", "35.0%"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("workload"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("RSA-crypto"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.084), "8.4%");
    }
}
