//! Work-stealing parallel execution for independent experiment tasks.
//!
//! Every experiment (and every cell of the workload × machine sweeps) is
//! an independent simulation that owns its seed, so tasks can run on any
//! worker in any order without changing a single output byte: results are
//! returned in input order and each task's RNG state is self-contained.
//! The scheduler is the simplest correct one — a shared atomic index that
//! idle workers bump to claim the next unstarted task — which is exactly
//! work stealing for identical queues.
//!
//! Determinism argument: parallelism affects only *when* a task runs and
//! on which thread, never what it computes (no shared mutable state, no
//! time- or thread-dependent inputs), and assembly order is the input
//! order, so `run_all --jobs N` must produce byte-identical
//! `results/*.json` for every N. An integration test enforces this.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide worker count used by sweep experiments (fig. 5, fig. 8,
/// the fault sweep) when fanning out their cells.
static JOBS: AtomicUsize = AtomicUsize::new(1);

/// Process-wide intra-cell shard count: how many worker threads a
/// single cluster cell partitions its node set across
/// ([`cluster::ClusterConfig::shards`]). Orthogonal to [`jobs`], which
/// fans out whole cells; results are byte-identical at every value of
/// either.
static SHARDS: AtomicUsize = AtomicUsize::new(1);

/// Process-wide trace output directory (`--trace <dir>`); `None`
/// disables tracing everywhere.
static TRACE_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);

/// Process-wide observability-plane switch (`--obs`): when set, every
/// cluster experiment runs with the always-on [`cluster::ObsConfig`],
/// feeding the run_all p99-energy and alert columns.
static OBS: AtomicBool = AtomicBool::new(false);

/// Process-wide kernel scheduling policy (`--sched rr|priority|cfs`):
/// every workload- and cluster-level experiment boots its kernels with
/// this policy. Calibration runs always stay round-robin so the shared
/// calibration cache is scheduler-independent. Default: round-robin
/// (byte-identical to the pre-trait kernels).
static SCHED: Mutex<Option<ossim::SchedulerKind>> = Mutex::new(None);

/// Sets the process-wide scheduling policy (`None` → round-robin).
pub fn set_sched(kind: Option<ossim::SchedulerKind>) {
    *SCHED.lock().unwrap_or_else(|e| e.into_inner()) = kind;
}

/// The process-wide scheduling policy experiments boot kernels with.
pub fn sched_kind() -> ossim::SchedulerKind {
    SCHED
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
        .unwrap_or(ossim::SchedulerKind::RoundRobin)
}

/// Parses `--sched NAME` / `--sched=NAME` from process args. Returns
/// `None` (round-robin) when absent; exits with an error on an unknown
/// policy name so a typo cannot silently run the default.
pub fn sched_from_args() -> Option<ossim::SchedulerKind> {
    let args: Vec<String> = std::env::args().collect();
    let mut kind = None;
    let mut parse = |v: &str| match ossim::SchedulerKind::parse(v) {
        Some(k) => kind = Some(k),
        None => {
            eprintln!(
                "error: unknown --sched policy `{v}` (expected one of: {})",
                ossim::SchedulerKind::ALL_NAMES.join(", ")
            );
            std::process::exit(2);
        }
    };
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--sched=") {
            parse(v);
        } else if a == "--sched" {
            if let Some(v) = args.get(i + 1) {
                parse(v);
            }
        }
    }
    kind
}

/// Turns the process-wide observability plane on or off.
pub fn set_obs(on: bool) {
    OBS.store(on, Ordering::SeqCst);
}

/// Whether `--obs` is active for this process.
pub fn obs() -> bool {
    OBS.load(Ordering::SeqCst)
}

/// Parses `--obs` from process args.
pub fn obs_from_args() -> bool {
    std::env::args().any(|a| a == "--obs")
}

/// The observability config cluster experiments should install:
/// standard always-on settings when `--obs` is active, else `None`.
/// Experiments that *are about* the obs plane (obs_sweep) build their
/// own per-rung configs instead.
pub fn obs_config() -> Option<cluster::ObsConfig> {
    obs().then(cluster::ObsConfig::standard)
}

/// Sets the process-wide trace output directory.
pub fn set_trace_dir(dir: Option<PathBuf>) {
    *TRACE_DIR.lock().unwrap_or_else(|e| e.into_inner()) = dir;
}

/// The trace output directory, if tracing is enabled.
pub fn trace_dir() -> Option<PathBuf> {
    TRACE_DIR.lock().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Parses `--trace DIR` / `--trace=DIR` from process args.
pub fn trace_dir_from_args() -> Option<PathBuf> {
    let args: Vec<String> = std::env::args().collect();
    let mut dir = None;
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--trace=") {
            dir = Some(PathBuf::from(v));
        } else if a == "--trace" {
            if let Some(v) = args.get(i + 1) {
                dir = Some(PathBuf::from(v));
            }
        }
    }
    dir
}

/// A recording telemetry handle when `--trace` is active, else a
/// disabled one — experiments clone this into their [`workloads::RunConfig`]
/// (or [`cluster::ClusterConfig`]) without caring whether tracing is on.
pub fn trace_handle() -> telemetry::Telemetry {
    if trace_dir().is_some() {
        telemetry::Telemetry::recording()
    } else {
        telemetry::Telemetry::disabled()
    }
}

/// Lowercases `s` and maps every non-alphanumeric run to a single `-`
/// (file-name-safe slugs for trace cell names).
pub fn slug(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('-') {
            out.push('-');
        }
    }
    out.trim_matches('-').to_string()
}

/// Writes one traced cell under `<trace dir>/<experiment>/<stem>.jsonl`
/// plus the Perfetto-loadable `<stem>.trace.json`; a no-op when tracing
/// is disabled or the handle recorded nothing. Failures warn but never
/// sink the experiment.
pub fn write_trace(experiment: &str, stem: &str, tele: &telemetry::Telemetry) {
    if !tele.enabled() {
        return;
    }
    // Span-hygiene hard check: a recorded cell with dangling span ends
    // means some code path closed a span it never opened (or the track
    // bookkeeping broke). That must fail the experiment loudly, naming
    // the offender, not ship a silently malformed trace.
    let unmatched = tele.unmatched_ends_by_track();
    if !unmatched.is_empty() {
        let detail: Vec<String> =
            unmatched.iter().map(|(track, n)| format!("track {track}: {n}")).collect();
        panic!(
            "experiment `{experiment}` cell `{stem}`: unmatched span end(s) — {}",
            detail.join(", ")
        );
    }
    let Some(root) = trace_dir() else { return };
    let dir = root.join(experiment);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let write = |path: &Path, res: std::io::Result<()>| {
        if let Err(e) = res {
            eprintln!("warning: cannot write {}: {e}", path.display());
        }
    };
    let jsonl = dir.join(format!("{stem}.jsonl"));
    write(&jsonl, tele.write_jsonl(&jsonl));
    let chrome = dir.join(format!("{stem}.trace.json"));
    write(&chrome, tele.write_chrome_trace(&chrome));
}

/// Sets the process-wide worker count (clamped to at least 1).
pub fn set_jobs(n: usize) {
    JOBS.store(n.max(1), Ordering::SeqCst);
}

/// The process-wide worker count (default 1: serial).
pub fn jobs() -> usize {
    JOBS.load(Ordering::SeqCst)
}

/// Parses `--jobs N` / `--jobs=N` from process args (default 1).
pub fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let mut jobs = 1usize;
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--jobs=") {
            jobs = v.parse().unwrap_or(1);
        } else if a == "--jobs" {
            if let Some(v) = args.get(i + 1) {
                jobs = v.parse().unwrap_or(1);
            }
        }
    }
    jobs.max(1)
}

/// Sets the process-wide intra-cell shard count (clamped to at least 1).
pub fn set_shards(n: usize) {
    SHARDS.store(n.max(1), Ordering::SeqCst);
}

/// The process-wide intra-cell shard count (default 1: each cell
/// advances its nodes inline).
pub fn shards() -> usize {
    SHARDS.load(Ordering::SeqCst)
}

/// Parses `--shards N` / `--shards=N` from process args (default 1).
pub fn shards_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let mut shards = 1usize;
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--shards=") {
            shards = v.parse().unwrap_or(1);
        } else if a == "--shards" {
            if let Some(v) = args.get(i + 1) {
                shards = v.parse().unwrap_or(1);
            }
        }
    }
    shards.max(1)
}

/// Runs `tasks` on up to `jobs` scoped worker threads and returns each
/// task's output **in input order**. A panicking task yields
/// `Err(panic message)` in its slot; the other tasks keep running. With
/// `jobs <= 1` the tasks run inline on the caller's thread, in order.
pub fn run_parallel<T, F>(jobs: usize, tasks: Vec<F>) -> Vec<Result<T, String>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    let slots: Vec<Mutex<Option<F>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<Result<T, String>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    // Worker threads inherit the caller's degrade-ledger scope, so a
    // sweep experiment's cells report under the experiment's name no
    // matter which thread runs them.
    let scope = workloads::current_degrade_scope();
    let work = || {
        let _guard = scope.as_deref().map(workloads::DegradeScope::enter);
        loop {
            let i = next.fetch_add(1, Ordering::SeqCst);
            if i >= n {
                break;
            }
            let task = slots[i]
                .lock()
                .expect("task slot unpoisoned")
                .take()
                .expect("each index is claimed exactly once");
            // `&*e`, not `&e`: coercing `&Box<dyn Any>` would wrap the
            // box itself as the `dyn Any` and every payload downcast
            // would miss.
            let out = catch_unwind(AssertUnwindSafe(task)).map_err(|e| panic_message(&*e));
            *results[i].lock().expect("result slot unpoisoned") = Some(out);
        }
    };
    let workers = jobs.min(n).max(1);
    if workers <= 1 {
        work();
    } else {
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(work);
            }
        });
    }
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot unpoisoned")
                .expect("every task ran to completion")
        })
        .collect()
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let tasks: Vec<_> = (0..32).map(|i| move || i * 10).collect();
        for jobs in [1, 2, 7] {
            let out = run_parallel(jobs, tasks.clone());
            let values: Vec<i32> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(values, (0..32).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn a_panicking_task_does_not_sink_the_rest() {
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("task two exploded")),
            Box::new(|| 3),
        ];
        let out = run_parallel(2, tasks);
        assert_eq!(out[0], Ok(1));
        assert!(out[1].as_ref().unwrap_err().contains("exploded"));
        assert_eq!(out[2], Ok(3));
    }

    #[test]
    fn zero_jobs_behaves_like_one() {
        let out = run_parallel(0, vec![|| 7]);
        assert_eq!(out, vec![Ok(7)]);
    }

    #[test]
    fn slugs_are_file_name_safe() {
        assert_eq!(slug("GAE-Vosao"), "gae-vosao");
        assert_eq!(slug("peak load"), "peak-load");
        assert_eq!(slug("dropout + glitches + tag faults"), "dropout-glitches-tag-faults");
        assert_eq!(slug("5%"), "5");
    }

    #[test]
    fn empty_task_list_is_fine() {
        let out: Vec<Result<(), String>> = run_parallel(4, Vec::<fn()>::new());
        assert!(out.is_empty());
    }
}
