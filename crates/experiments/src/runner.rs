//! Work-stealing parallel execution for independent experiment tasks.
//!
//! Every experiment (and every cell of the workload × machine sweeps) is
//! an independent simulation that owns its seed, so tasks can run on any
//! worker in any order without changing a single output byte: results are
//! returned in input order and each task's RNG state is self-contained.
//! The scheduler is the simplest correct one — a shared atomic index that
//! idle workers bump to claim the next unstarted task — which is exactly
//! work stealing for identical queues.
//!
//! Determinism argument: parallelism affects only *when* a task runs and
//! on which thread, never what it computes (no shared mutable state, no
//! time- or thread-dependent inputs), and assembly order is the input
//! order, so `run_all --jobs N` must produce byte-identical
//! `results/*.json` for every N. An integration test enforces this.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide worker count used by sweep experiments (fig. 5, fig. 8,
/// the fault sweep) when fanning out their cells.
static JOBS: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-wide worker count (clamped to at least 1).
pub fn set_jobs(n: usize) {
    JOBS.store(n.max(1), Ordering::SeqCst);
}

/// The process-wide worker count (default 1: serial).
pub fn jobs() -> usize {
    JOBS.load(Ordering::SeqCst)
}

/// Parses `--jobs N` / `--jobs=N` from process args (default 1).
pub fn jobs_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let mut jobs = 1usize;
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix("--jobs=") {
            jobs = v.parse().unwrap_or(1);
        } else if a == "--jobs" {
            if let Some(v) = args.get(i + 1) {
                jobs = v.parse().unwrap_or(1);
            }
        }
    }
    jobs.max(1)
}

/// Runs `tasks` on up to `jobs` scoped worker threads and returns each
/// task's output **in input order**. A panicking task yields
/// `Err(panic message)` in its slot; the other tasks keep running. With
/// `jobs <= 1` the tasks run inline on the caller's thread, in order.
pub fn run_parallel<T, F>(jobs: usize, tasks: Vec<F>) -> Vec<Result<T, String>>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    let slots: Vec<Mutex<Option<F>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let results: Vec<Mutex<Option<Result<T, String>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let work = || loop {
        let i = next.fetch_add(1, Ordering::SeqCst);
        if i >= n {
            break;
        }
        let task = slots[i]
            .lock()
            .expect("task slot unpoisoned")
            .take()
            .expect("each index is claimed exactly once");
        // `&*e`, not `&e`: coercing `&Box<dyn Any>` would wrap the box
        // itself as the `dyn Any` and every payload downcast would miss.
        let out = catch_unwind(AssertUnwindSafe(task)).map_err(|e| panic_message(&*e));
        *results[i].lock().expect("result slot unpoisoned") = Some(out);
    };
    let workers = jobs.min(n).max(1);
    if workers <= 1 {
        work();
    } else {
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(work);
            }
        });
    }
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot unpoisoned")
                .expect("every task ran to completion")
        })
        .collect()
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(e: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let tasks: Vec<_> = (0..32).map(|i| move || i * 10).collect();
        for jobs in [1, 2, 7] {
            let out = run_parallel(jobs, tasks.clone());
            let values: Vec<i32> = out.into_iter().map(|r| r.unwrap()).collect();
            assert_eq!(values, (0..32).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn a_panicking_task_does_not_sink_the_rest() {
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("task two exploded")),
            Box::new(|| 3),
        ];
        let out = run_parallel(2, tasks);
        assert_eq!(out[0], Ok(1));
        assert!(out[1].as_ref().unwrap_err().contains("exploded"));
        assert_eq!(out[2], Ok(3));
    }

    #[test]
    fn zero_jobs_behaves_like_one() {
        let out = run_parallel(0, vec![|| 7]);
        assert_eq!(out, vec![Ok(7)]);
    }

    #[test]
    fn empty_task_list_is_fine() {
        let out: Vec<Result<(), String>> = run_parallel(4, Vec::<fn()>::new());
        assert!(out.is_empty());
    }
}
