//! §3.5 — facility overhead assessment.
//!
//! Host-time microbenchmarks of the facility's hot paths, mirroring the
//! paper's measurements: ~0.95 µs per container-maintenance operation
//! (counter read + model evaluation + statistics update), ~16 µs per
//! least-squares recalibration, sub-µs duty-cycle register writes, and a
//! 784-byte per-container state.

use crate::output::{banner, write_record, Table};
use crate::Scale;
use hwsim::{ActivityProfile, CoreId, DutyCycle, Machine, MachineSpec};
use ossim::{ContextId, KernelApi, KernelHooks, TaskId};
use power_containers::{
    Approach, CalibrationSample, CalibrationSet, ContainerManager, FacilityConfig,
    MetricVector, ModelKind, PowerContainerFacility, Recalibrator,
};
use serde::Serialize;
use simkern::{SimDuration, SimTime};
use std::time::Instant;

/// The overhead record.
#[derive(Debug, Clone, Serialize)]
pub struct Overhead {
    /// Host nanoseconds per container-maintenance operation.
    pub maintenance_ns: f64,
    /// Host nanoseconds per model recalibration (least-squares refit).
    pub recalibration_ns: f64,
    /// Host nanoseconds per duty-cycle adjustment.
    pub duty_set_ns: f64,
    /// Bytes of live state per container.
    pub container_bytes: usize,
    /// Relative overhead at 1 kHz sampling (maintenance time per period).
    pub overhead_at_1khz: f64,
}

fn synthetic_calibration() -> CalibrationSet {
    let mut set = CalibrationSet::new(26.1);
    for i in 1..=32 {
        let u = i as f64 / 32.0;
        let m = MetricVector {
            core: u,
            ins: u * 2.0,
            float: u * 0.3,
            cache: u * 0.05,
            mem: u * 0.02,
            chipshare: 1.0,
            disk: 0.0,
            net: 0.0,
        };
        set.push(CalibrationSample { metrics: m, active_watts: 10.0 * u + 5.6 });
    }
    set
}

fn bench_maintenance(iters: u32) -> f64 {
    let spec = MachineSpec::sandybridge();
    let model = synthetic_calibration().fit(ModelKind::WithChipShare).expect("fit");
    let mut facility = PowerContainerFacility::new(
        model,
        None,
        &spec,
        FacilityConfig {
            approach: Approach::ChipShare,
            retain_records: false,
            ..FacilityConfig::default()
        },
    );
    let mut machine = Machine::new(spec, 1);
    machine.set_running(CoreId(0), Some(ActivityProfile::stress()));
    let running = vec![Some(TaskId(0)), None, None, None];
    let contexts = vec![Some(ContextId(1))];
    {
        let mut api = KernelApi::new(SimTime::ZERO, &mut machine, &running, &contexts);
        facility.on_boot(&mut api);
    }
    let mut t = SimTime::ZERO;
    let start = Instant::now();
    for _ in 0..iters {
        t += SimDuration::from_millis(1);
        machine.advance_to(t);
        let mut api = KernelApi::new(t, &mut machine, &running, &contexts);
        facility.on_pmu_interrupt(&mut api, CoreId(0), TaskId(0));
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn bench_recalibration(iters: u32) -> f64 {
    let set = synthetic_calibration();
    let mut r = Recalibrator::new(&set, ModelKind::WithChipShare);
    let m = MetricVector { core: 1.0, ins: 2.0, chipshare: 1.0, ..MetricVector::default() };
    for _ in 0..64 {
        r.add_online_sample(m, 18.0);
    }
    let start = Instant::now();
    for _ in 0..iters {
        let model = r.refit().expect("refit");
        std::hint::black_box(&model);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn bench_duty_set(iters: u32) -> f64 {
    let mut machine = Machine::new(MachineSpec::sandybridge(), 1);
    let levels = [DutyCycle::FULL, DutyCycle::new(4).expect("valid")];
    let start = Instant::now();
    for i in 0..iters {
        machine.set_duty_cycle(CoreId(0), levels[(i & 1) as usize]);
        std::hint::black_box(&machine);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Overhead {
    banner("overhead", "facility overhead (host-time microbenchmarks, §3.5)");
    let iters: u32 = match scale {
        Scale::Full => 200_000,
        Scale::Quick => 20_000,
    };
    let maintenance_ns = bench_maintenance(iters);
    let recalibration_ns = bench_recalibration(iters / 50);
    let duty_set_ns = bench_duty_set(iters);
    let container_bytes = ContainerManager::container_state_bytes();
    // Paper arithmetic: one maintenance op every 1 ms of execution.
    let overhead_at_1khz = maintenance_ns / 1e6;
    let mut table = Table::new(["operation", "this repo", "paper (Intel SandyBridge)"]);
    table.row([
        "container maintenance op".to_string(),
        format!("{:.2} µs", maintenance_ns / 1e3),
        "0.95 µs".to_string(),
    ]);
    table.row([
        "model recalibration".to_string(),
        format!("{:.1} µs", recalibration_ns / 1e3),
        "16 µs".to_string(),
    ]);
    table.row([
        "duty-cycle adjustment".to_string(),
        format!("{:.3} µs", duty_set_ns / 1e3),
        "< 0.2 µs".to_string(),
    ]);
    table.row([
        "container state size".to_string(),
        format!("{container_bytes} B"),
        "784 B".to_string(),
    ]);
    table.row([
        "overhead at 1 kHz sampling".to_string(),
        format!("{:.3}%", overhead_at_1khz * 100.0),
        "~0.1%".to_string(),
    ]);
    println!("{table}");
    let record = Overhead {
        maintenance_ns,
        recalibration_ns,
        duty_set_ns,
        container_bytes,
        overhead_at_1khz,
    };
    write_record("overhead", &record);
    record
}
