//! Scheduler sweep: cross-scheduler attribution conformance.
//!
//! The paper's accounting (§3) samples per-core activity and splits
//! measured energy by observed busy cycles — it never consults the
//! scheduler's policy. This sweep makes that claim testable: rerun the
//! Fig. 8 validation workloads, a conditioning cell, and the Fig. 14
//! policy-ordering fleet under each of ossim's pluggable schedulers
//! (round-robin, strict priority with aging, CFS-style fair share) and
//! assert
//!
//! 1. **Bounded attribution error** — each non-RR cell's validation
//!    error stays within `max(2 × rr_error, 2%)` of the round-robin
//!    baseline for the same (machine, workload) cell;
//! 2. **Conservation per scheduler** — attributed energy matches
//!    measured active energy within the clean-run tolerance everywhere,
//!    and within the capped tolerance in the conditioning cell;
//! 3. **Conditioning holds** — the per-request power cap is enforced
//!    regardless of who picks the next task;
//! 4. **Ordering invariance** — the Fig. 14 / scale_sweep policy
//!    ordering (workload < machine < simple on total fleet power)
//!    survives swapping every node's scheduler.
//!
//! Cells are independent seeded simulations fanned out across
//! [`crate::runner::jobs`] workers; no wall-clock value enters the
//! record, so `results/sched_sweep.json` is byte-identical at any
//! `--jobs`/`--shards` count. The sweep deliberately ignores the global
//! `--sched` flag: it sweeps all schedulers itself.

use crate::output::{banner, pct, write_record, Table};
use crate::{Lab, Scale};
use cluster::run_pipeline;
use ossim::SchedulerKind;
use power_containers::{Approach, ConditioningPolicy};
use serde::Serialize;
use simkern::SimDuration;
use workloads::{run_app, LoadLevel, RunConfig, WorkloadKind};

/// Clean-run conservation tolerance (matches the tier-1
/// energy-conservation suite).
pub const CLEAN_TOL: f64 = 0.20;
/// Conservation tolerance under active conditioning (throttling distorts
/// the busy-cycle/energy mapping the model was calibrated on).
pub const CAP_TOL: f64 = 0.35;
/// Absolute error floor for the cross-scheduler bound: a non-RR cell
/// whose error is below 2% passes regardless of how small the RR
/// baseline happens to be.
pub const ERROR_FLOOR: f64 = 0.02;

/// The swept schedulers, in canonical order (RR first — it is the
/// baseline the bound is computed against).
pub fn swept_kinds() -> Vec<SchedulerKind> {
    vec![
        SchedulerKind::RoundRobin,
        SchedulerKind::Priority(ossim::PriorityConfig::default()),
        SchedulerKind::Cfs(ossim::CfsConfig::default()),
    ]
}

/// One attribution cell: (scheduler, machine, workload) at peak load
/// under Approach #3.
#[derive(Debug, Clone, Serialize)]
pub struct AttributionRow {
    /// Scheduler name (`rr`, `priority`, `cfs`).
    pub sched: String,
    /// Machine name.
    pub machine: String,
    /// Workload name.
    pub workload: String,
    /// Fig. 8 validation error (attributed vs measured energy).
    pub error: f64,
    /// Energy the facility attributed, Joules.
    pub attributed_j: f64,
    /// Measured machine active energy, Joules.
    pub measured_j: f64,
    /// Scheduler decision counters for the cell: picks, preemptions,
    /// starvation boosts.
    pub picks: u64,
    /// Quantum preemptions the scheduler decided.
    pub preemptions: u64,
    /// Starvation boosts (priority scheduler only; 0 elsewhere).
    pub boosts: u64,
    /// The cell's error bound: `max(2 × rr_error, 2%)` (equals the
    /// bound of its own RR baseline for RR cells, which trivially pass).
    pub bound: f64,
    /// `error <= bound`.
    pub within_bound: bool,
}

/// The conditioning cell per scheduler: per-request power capping must
/// hold under any pick-next policy.
#[derive(Debug, Clone, Serialize)]
pub struct ConditioningRow {
    /// Scheduler name.
    pub sched: String,
    /// Conditioning target, Watts.
    pub target_w: f64,
    /// Measured average active power, Watts.
    pub measured_w: f64,
    /// Cap held (measured within +10% of target)?
    pub cap_ok: bool,
    /// Conservation error under the cap.
    pub error: f64,
    /// Conservation held within [`CAP_TOL`]?
    pub conserved: bool,
}

/// One (scheduler, policy) fleet cell of the ordering check.
#[derive(Debug, Clone, Serialize)]
pub struct OrderingRow {
    /// Scheduler name (every node of the fleet runs it).
    pub sched: String,
    /// Tier-0 distribution policy name.
    pub policy: String,
    /// Combined active energy rate across the fleet, Watts.
    pub total_w: f64,
    /// Requests that completed the full pipeline.
    pub completed: usize,
}

/// The sweep record.
#[derive(Debug, Clone, Serialize)]
pub struct SchedSweep {
    /// Attribution cells, canonical (sched, machine, workload) order.
    pub attribution: Vec<AttributionRow>,
    /// Conditioning cell per scheduler.
    pub conditioning: Vec<ConditioningRow>,
    /// Ordering cells, canonical (sched, policy) order.
    pub ordering: Vec<OrderingRow>,
    /// Every attribution cell within its bound.
    pub attribution_bounded: bool,
    /// Every attribution cell conserved energy within [`CLEAN_TOL`].
    pub conserved: bool,
    /// Every conditioning cell held its cap and conserved energy.
    pub caps_held: bool,
    /// Fig. 14 ordering (workload < machine < simple) held under every
    /// scheduler.
    pub ordering_invariant: bool,
}

/// Machines for the attribution cells.
fn machines(scale: Scale) -> &'static [&'static str] {
    match scale {
        Scale::Full => &["woodcrest", "sandybridge"],
        Scale::Quick => &["sandybridge"],
    }
}

/// Runs one attribution cell (shared with the test suites, so the CI
/// smoke cell is exactly a sweep cell). `bound`/`within_bound` are left
/// zeroed — grading needs the RR baseline and happens at assembly.
pub fn attribution_cell(
    kind: SchedulerKind,
    machine: &str,
    spec: hwsim::MachineSpec,
    cal: workloads::MachineCalibration,
    workload: WorkloadKind,
    secs: u64,
) -> AttributionRow {
    let mut cfg = RunConfig::new(spec);
    cfg.sched = kind.clone();
    cfg.approach = Approach::Recalibrated;
    cfg.load = LoadLevel::Peak;
    cfg.duration = SimDuration::from_secs(secs);
    cfg.telemetry = crate::runner::trace_handle();
    let outcome = run_app(workload, &cfg, &cal);
    let stem = format!(
        "{}-{}-{}",
        kind.name(),
        crate::runner::slug(machine),
        crate::runner::slug(workload.name())
    );
    crate::runner::write_trace("sched_sweep", &stem, &cfg.telemetry);
    let sched = outcome.kernel.sched_stats();
    AttributionRow {
        sched: kind.name().to_string(),
        machine: machine.to_string(),
        workload: workload.name().to_string(),
        error: outcome.validation_error(),
        attributed_j: outcome.attributed_energy_j(),
        measured_j: outcome.measured_active_energy_j(),
        picks: sched.picks,
        preemptions: sched.preemptions,
        boosts: sched.boosts,
        // Filled during assembly once the RR baseline is known.
        bound: 0.0,
        within_bound: false,
    }
}

fn conditioning_cell(
    kind: SchedulerKind,
    spec: hwsim::MachineSpec,
    cal: workloads::MachineCalibration,
    target_w: f64,
    secs: u64,
) -> ConditioningRow {
    let mut cfg = RunConfig::new(spec);
    cfg.sched = kind.clone();
    cfg.approach = Approach::Recalibrated;
    cfg.load = LoadLevel::Peak;
    cfg.duration = SimDuration::from_secs(secs);
    cfg.conditioning = Some(ConditioningPolicy::new(target_w));
    let outcome = run_app(WorkloadKind::RsaCrypto, &cfg, &cal);
    let measured_w = outcome.measured_active_power_w();
    let error = outcome.validation_error();
    ConditioningRow {
        sched: kind.name().to_string(),
        target_w,
        measured_w,
        cap_ok: measured_w <= target_w * 1.10,
        error,
        conserved: error <= CAP_TOL,
    }
}

fn ordering_cell(
    scale: Scale,
    kind: SchedulerKind,
    policy: &str,
    ratios: &[(WorkloadKind, f64)],
    cals: &[workloads::MachineCalibration],
) -> OrderingRow {
    let mut cfg = crate::scale_sweep::cell_config(scale, 4, None);
    // The sweep picks each node's scheduler itself, overriding the
    // global `--sched` choice `cell_config` threaded in.
    cfg.sched = vec![kind.clone()];
    let mut policies = crate::scale_sweep::make_policies(policy, cfg.tiers.len(), ratios);
    let outcome = run_pipeline(&mut policies, &cfg, cals);
    OrderingRow {
        sched: kind.name().to_string(),
        policy: policy.to_string(),
        total_w: outcome.total_energy_rate_w(),
        completed: outcome.completed,
    }
}

/// Runs the sweep and prints the three grids.
pub fn run(scale: Scale) -> SchedSweep {
    banner("sched-sweep", "attribution conformance across pluggable schedulers");
    let mut lab = Lab::new();
    let kinds = swept_kinds();
    let secs = scale.run_secs();

    // Conditioning target: 80% of an uncapped RR probe's draw, so the
    // throttle has real work to do under every scheduler.
    let probe = {
        let mut cfg = RunConfig::new(lab.spec("sandybridge"));
        cfg.approach = Approach::Recalibrated;
        cfg.load = LoadLevel::Peak;
        cfg.duration = SimDuration::from_secs(secs);
        run_app(WorkloadKind::RsaCrypto, &cfg, &lab.calibration("sandybridge"))
    };
    let target_w = probe.measured_active_power_w() * 0.8;
    let ratios = crate::scale_sweep::profiled_ratios(&mut lab, scale);
    let fleet_cals =
        crate::scale_sweep::cell_calibrations(&mut lab, &crate::scale_sweep::cell_config(scale, 4, None));

    // Fan out: attribution cells, then conditioning, then ordering —
    // one flat task list, reassembled positionally below.
    let mut attr_tasks = Vec::new();
    for kind in &kinds {
        for &machine in machines(scale) {
            let spec = lab.spec(machine);
            let cal = lab.calibration(machine);
            let cell_secs = if spec.meters.iter().any(|m| m.name == "on-chip") {
                secs
            } else {
                secs * 5 / 2
            };
            for workload in WorkloadKind::ALL {
                let (kind, spec, cal) = (kind.clone(), spec.clone(), cal.clone());
                attr_tasks.push(move || {
                    attribution_cell(kind, machine, spec, cal, workload, cell_secs)
                });
            }
        }
    }
    let mut attribution: Vec<AttributionRow> =
        crate::runner::run_parallel(crate::runner::jobs(), attr_tasks)
            .into_iter()
            .collect::<Result<_, _>>()
            .unwrap_or_else(|e| panic!("sched-sweep attribution cell failed: {e}"));

    let cond_tasks: Vec<_> = kinds
        .iter()
        .map(|kind| {
            let (kind, spec, cal) =
                (kind.clone(), lab.spec("sandybridge"), lab.calibration("sandybridge"));
            move || conditioning_cell(kind, spec, cal, target_w, secs)
        })
        .collect();
    let conditioning: Vec<ConditioningRow> =
        crate::runner::run_parallel(crate::runner::jobs(), cond_tasks)
            .into_iter()
            .collect::<Result<_, _>>()
            .unwrap_or_else(|e| panic!("sched-sweep conditioning cell failed: {e}"));

    let mut ord_tasks = Vec::new();
    for kind in &kinds {
        for &policy in crate::scale_sweep::POLICY_KINDS {
            let (kind, ratios, cals) = (kind.clone(), ratios.clone(), fleet_cals.clone());
            ord_tasks.push(move || ordering_cell(scale, kind, policy, &ratios, &cals));
        }
    }
    let ordering: Vec<OrderingRow> = crate::runner::run_parallel(crate::runner::jobs(), ord_tasks)
        .into_iter()
        .collect::<Result<_, _>>()
        .unwrap_or_else(|e| panic!("sched-sweep ordering cell failed: {e}"));

    // Grade attribution cells against the RR baseline of the same
    // (machine, workload) cell.
    let rr_errors: std::collections::BTreeMap<(String, String), f64> = attribution
        .iter()
        .filter(|r| r.sched == "rr")
        .map(|r| ((r.machine.clone(), r.workload.clone()), r.error))
        .collect();
    for r in &mut attribution {
        let rr = rr_errors
            .get(&(r.machine.clone(), r.workload.clone()))
            .expect("rr baseline cell present");
        r.bound = (2.0 * rr).max(ERROR_FLOOR);
        r.within_bound = r.error <= r.bound;
    }

    let mut table = Table::new([
        "sched", "machine", "workload", "error", "bound", "picks", "preempts", "boosts",
    ]);
    for r in &attribution {
        table.row([
            r.sched.clone(),
            r.machine.clone(),
            r.workload.clone(),
            pct(r.error),
            pct(r.bound),
            r.picks.to_string(),
            r.preemptions.to_string(),
            r.boosts.to_string(),
        ]);
    }
    println!("{table}");

    let mut table = Table::new(["sched", "target (W)", "measured (W)", "cap", "conservation"]);
    for r in &conditioning {
        table.row([
            r.sched.clone(),
            format!("{:.1}", r.target_w),
            format!("{:.1}", r.measured_w),
            if r.cap_ok { "held".to_string() } else { "EXCEEDED".to_string() },
            pct(r.error),
        ]);
    }
    println!("{table}");

    let mut table = Table::new(["sched", "policy", "total (W)", "completed"]);
    for r in &ordering {
        table.row([
            r.sched.clone(),
            r.policy.clone(),
            format!("{:.1}", r.total_w),
            r.completed.to_string(),
        ]);
    }
    println!("{table}");

    let attribution_bounded = attribution.iter().all(|r| r.within_bound);
    let conserved = attribution.iter().all(|r| r.error <= CLEAN_TOL);
    let caps_held = conditioning.iter().all(|r| r.cap_ok && r.conserved);
    let ordering_invariant = kinds.iter().all(|kind| {
        let total_of = |policy: &str| {
            ordering
                .iter()
                .find(|r| r.sched == kind.name() && r.policy == policy)
                .map(|r| r.total_w)
                .expect("ordering cell present")
        };
        total_of("workload") < total_of("machine") && total_of("machine") < total_of("simple")
    });
    println!(
        "attribution bound: {} -- conservation: {} -- caps: {} -- fig14 ordering invariant: {}",
        if attribution_bounded { "HELD" } else { "VIOLATED" },
        if conserved { "HELD" } else { "VIOLATED" },
        if caps_held { "HELD" } else { "EXCEEDED" },
        if ordering_invariant { "HELD" } else { "VIOLATED" },
    );

    let record = SchedSweep {
        attribution,
        conditioning,
        ordering,
        attribution_bounded,
        conserved,
        caps_held,
        ordering_invariant,
    };
    // Written before the acceptance asserts: a failed run still dumps
    // its record for inspection.
    write_record("sched_sweep", &record);
    assert!(
        record.attribution_bounded,
        "a scheduler pushed attribution error past 2x the round-robin baseline"
    );
    assert!(record.conserved, "energy conservation violated under a scheduler");
    assert!(record.caps_held, "conditioning cap violated under a scheduler");
    assert!(record.ordering_invariant, "fig14 policy ordering is not scheduler-invariant");
    record
}
