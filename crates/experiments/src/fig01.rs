//! Fig. 1 — incremental (per-core) power consumption.
//!
//! The paper spins `k` CPU-bound tasks on the SandyBridge and Woodcrest
//! machines and plots the power *increment* of each additional busy
//! core. The first busy core on a chip pays the shared maintenance power
//! (on Woodcrest, the first *two* tasks each wake a socket because the
//! Linux scheduler spreads for performance), so early increments are
//! visibly larger — the motivation for Eq. 2's `M_chipshare` term.

use crate::output::{banner, write_record, Table};
use crate::Scale;
use hwsim::{ActivityProfile, Machine, MachineSpec};
use ossim::{Kernel, KernelConfig, Op, ScriptProgram};
use serde::Serialize;
use simkern::SimTime;

/// One machine's incremental-power series.
#[derive(Debug, Clone, Serialize)]
pub struct MachineSteps {
    /// Machine name.
    pub machine: String,
    /// Power increment of busy core k over k−1, Watts (index 0 = idle→1).
    pub increments_w: Vec<f64>,
}

/// The Fig. 1 record.
#[derive(Debug, Clone, Serialize)]
pub struct Fig1 {
    /// Per-machine series (SandyBridge, Woodcrest).
    pub machines: Vec<MachineSteps>,
}

fn power_with_k_spinners(spec: &MachineSpec, k: usize, seed: u64) -> f64 {
    let mut kernel = Kernel::new(Machine::new(spec.clone(), seed), KernelConfig::default());
    for _ in 0..k {
        kernel.spawn(
            Box::new(ScriptProgram::new(vec![Op::Compute {
                cycles: 1e15,
                profile: ActivityProfile::cpu_spin(),
            }])),
            None,
        );
    }
    // Let placement settle, then measure steady power over an interval.
    kernel.run_until(SimTime::from_millis(50));
    let e0 = kernel.machine().true_energy_j();
    kernel.run_until(SimTime::from_millis(250));
    let e1 = kernel.machine().true_energy_j();
    (e1 - e0) / 0.2
}

/// Runs the experiment.
pub fn run(_scale: Scale) -> Fig1 {
    banner("fig1", "incremental per-core power (chip maintenance step)");
    let mut machines = Vec::new();
    for spec in [MachineSpec::sandybridge(), MachineSpec::woodcrest()] {
        let powers: Vec<f64> = (0..=spec.total_cores())
            .map(|k| power_with_k_spinners(&spec, k, crate::SEED))
            .collect();
        let increments: Vec<f64> = powers.windows(2).map(|w| w[1] - w[0]).collect();
        let mut table = Table::new(["transition", "increment (W)"]);
        for (i, inc) in increments.iter().enumerate() {
            let from = if i == 0 { "idle".to_string() } else { format!("{i} core(s)") };
            table.row([format!("{from} -> {} core(s)", i + 1), format!("{inc:.1}")]);
        }
        println!("machine: {}", spec.name);
        println!("{table}");
        machines.push(MachineSteps { machine: spec.name.to_string(), increments_w: increments });
    }
    let record = Fig1 { machines };
    write_record("fig1", &record);
    record
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sandybridge_first_core_costs_extra() {
        let spec = MachineSpec::sandybridge();
        let p0 = power_with_k_spinners(&spec, 0, 1);
        let p1 = power_with_k_spinners(&spec, 1, 1);
        let p2 = power_with_k_spinners(&spec, 2, 1);
        assert!((p1 - p0) > (p2 - p1) + 3.0, "steps {} vs {}", p1 - p0, p2 - p1);
    }

    #[test]
    fn woodcrest_first_two_cores_cost_extra() {
        // Spreading wakes both sockets for the first two tasks.
        let spec = MachineSpec::woodcrest();
        let powers: Vec<f64> =
            (0..=4).map(|k| power_with_k_spinners(&spec, k, 1)).collect();
        let inc: Vec<f64> = powers.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(inc[0] > inc[2] + 3.0, "increments {inc:?}");
        assert!(inc[1] > inc[3] + 3.0, "increments {inc:?}");
    }
}
