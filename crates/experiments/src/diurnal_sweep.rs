//! Diurnal study: flash-crowd survival and the power-aware elastic
//! autoscaler against a fixed fleet, across one compressed day.
//!
//! Sweeps a ladder of non-stationary traffic regimes — steady sessions
//! (control), a diurnal sinusoid, diurnal + flash crowds under a tight
//! cluster cap, flash crowds + crash chaos under the cap, and a rolling
//! generation upgrade — over a single-tier heterogeneous fleet
//! ([`Topology::scaled_fleet`]). Every rung runs **two arms** on the
//! same offered traffic: a *fixed* fleet (the whole topology active all
//! day) and an *autoscaled* fleet (the elasticity controller resizing
//! between the floor and the full topology). The comparison metric is
//! the objective the controller optimizes: **joules per completed
//! request**, counting active energy, the idle burden of every powered
//! stretch, and the warm-up energy charged to provisioning transitions.
//!
//! Every cell asserts the shared invariants:
//!
//! 1. **Request conservation** — exact, typed, cluster-wide and per
//!    node, across every resize transition.
//! 2. **Energy conservation modulo journaled loss windows** — and clean
//!    scale-in drains journal a loss of *exactly zero*.
//! 3. **Cap compliance** — capped rungs hold the cap on mean active
//!    power while the brownout ladder absorbs flash peaks.
//! 4. **Elasticity pays** — on the diurnal rung the autoscaled arm
//!    beats the fixed fleet by at least 20 % J/request.
//!
//! Cells are independent seeded simulations and fan out across
//! [`crate::runner::jobs`] workers; intra-cell shard count comes from
//! [`crate::runner::shards`]. Records and traces carry only simulated
//! timestamps, so results are byte-identical at any `--jobs` and any
//! `--shards` count.

use crate::output::{banner, write_record, Table};
use crate::{Lab, Scale};
use cluster::{
    offered_cluster_rate, run_cluster, AdmissionConfig, AutoscaleConfig, ClusterConfig,
    RecoveryConfig, RollingUpgrade, ScaleKind, ShedReason, SimpleBalance, Topology,
};
use hwsim::FaultConfig;
use serde::Serialize;
use simkern::SimDuration;
use workloads::{Diurnal, FlashCrowds, MachineCalibration, TrafficShape};

/// Relative tolerance for the energy-conservation invariant (same
/// bounds the chaos sweep uses for clean and crash-bearing cells).
const ENERGY_TOL_CLEAN: f64 = 0.25;
const ENERGY_TOL_FAULT: f64 = 0.45;

/// Cap slack on mean active power: conditioning throttles duty cycles
/// per request, so restart/provision transients ride slightly over.
const CAP_SLACK: f64 = 1.10;

/// Required J/request advantage of the autoscaled arm on the diurnal
/// rung (the issue's headline claim).
pub const DIURNAL_WIN_FLOOR: f64 = 0.20;

/// Offered volume as a fraction of the *full* fleet's simple-balance
/// maximum. Sized so the diurnal peak (1.7×) still fits the whole
/// topology while the trough (0.3×) leaves most of it idle — the
/// regime where elasticity pays.
const VOLUME: f64 = 0.55;

/// One rung of the diurnal ladder.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct DiurnalScenario {
    /// Scenario name (also the trace stem).
    pub name: &'static str,
    /// Diurnal sinusoid on the offered rate.
    pub diurnal: bool,
    /// Flash-crowd spikes on top of the envelope.
    pub flash: bool,
    /// Crash chaos (seeded node-crash windows + recovery).
    pub chaos: bool,
    /// Tight cluster power cap (engages the brownout ladder).
    pub capped: bool,
    /// Rolling generation-upgrade schedule on the autoscaled arm.
    pub upgrade: bool,
}

/// The canonical ladder, in escalating order. Both scales run the same
/// rungs; `Quick` only shortens the day.
pub const SCENARIOS: &[DiurnalScenario] = &[
    DiurnalScenario { name: "steady", diurnal: false, flash: false, chaos: false, capped: false, upgrade: false },
    DiurnalScenario { name: "diurnal", diurnal: true, flash: false, chaos: false, capped: false, upgrade: false },
    DiurnalScenario { name: "diurnal-flash", diurnal: true, flash: true, chaos: false, capped: true, upgrade: false },
    DiurnalScenario { name: "flash-chaos", diurnal: false, flash: true, chaos: true, capped: true, upgrade: false },
    DiurnalScenario { name: "rolling-upgrade", diurnal: false, flash: false, chaos: false, capped: false, upgrade: true },
];

/// Fleet size per scale (single-tier heterogeneous mix).
pub fn fleet_nodes(scale: Scale) -> usize {
    match scale {
        Scale::Full => 64,
        Scale::Quick => 12,
    }
}

/// (floor, birth) fleet sizes for the autoscaled arm.
fn autoscale_bounds(scale: Scale) -> (usize, usize) {
    match scale {
        Scale::Full => (8, 32),
        Scale::Quick => (3, 6),
    }
}

/// Target request count per cell (the full ladder offers millions of
/// requests across its ten cells).
fn target_requests(scale: Scale) -> f64 {
    match scale {
        Scale::Full => 400_000.0,
        Scale::Quick => 9_000.0,
    }
}

/// Rolling-upgrade swaps on the upgrade rung.
pub fn upgrade_count(scale: Scale) -> usize {
    match scale {
        Scale::Full => 4,
        Scale::Quick => 2,
    }
}

/// Cap for the capped rungs, Watts: sized to sit between the fleet's
/// mean draw at [`VOLUME`] and its flash-peak draw, so the brownout
/// ladder must engage on spikes and release between them.
fn cap_w(cores: usize) -> f64 {
    5.5 * cores as f64
}

/// The traffic shape one rung offers over a `day` (both arms get the
/// identical shape, so the comparison sees the same arrivals).
pub fn shape_for(scenario: &DiurnalScenario, day: SimDuration) -> TrafficShape {
    let mut shape = TrafficShape::steady();
    if scenario.diurnal {
        shape.diurnal = Some(Diurnal { period: day, amplitude: 0.7, phase: 0.0 });
    }
    if scenario.flash {
        // ~5 expected spikes per day, each occupying ~5 % of it, at a
        // 2.3× peak multiplier — brief overload bursts (the offered
        // peak exceeds what the fleet can serve) separated by normal
        // traffic, not a sustained pile-up. Windows scale with the day
        // so both scales see the same *shape*; the schedule is seeded,
        // so each config's spike train is fixed.
        let day_s = day.as_secs_f64();
        let frac = |f: f64| SimDuration::from_millis((f * day_s * 1e3).ceil() as u64);
        shape.flash = Some(FlashCrowds {
            spikes_per_sec: 5.0 / day_s,
            ramp: frac(0.015),
            hold: frac(0.03),
            decay: frac(0.025),
            peak_excess: 1.3,
        });
    }
    shape
}

/// Builds one cell's cluster config (shared with the test suites and
/// the CI smoke job, so those cells are exactly sweep cells). The day
/// length is sized from the full fleet's offered rate so the ladder
/// issues `target_requests` per cell regardless of fleet size.
pub fn cell_config(scale: Scale, scenario: &DiurnalScenario, autoscaled: bool) -> ClusterConfig {
    let mut cfg = ClusterConfig::sharded(&Topology::scaled_fleet(fleet_nodes(scale)));
    cfg.sched = vec![crate::runner::sched_kind()];
    cfg.seed = crate::SEED;
    cfg.shards = crate::runner::shards();
    cfg.volume = VOLUME;
    let rate = offered_cluster_rate(&cfg);
    let secs = (target_requests(scale) / rate).max(4.0);
    cfg.duration = SimDuration::from_millis((secs * 1e3).ceil() as u64);
    cfg.traffic = Some(shape_for(scenario, cfg.duration));
    cfg.recovery = Some(RecoveryConfig::standard());
    if scenario.capped {
        let cores: usize = cfg.nodes.iter().map(hwsim::MachineSpec::total_cores).sum();
        cfg.power_cap_w = Some(cap_w(cores));
        cfg.admission = Some(AdmissionConfig::standard());
    }
    if scenario.chaos {
        cfg.faults = FaultConfig {
            seed: crate::SEED ^ 0xD1A2,
            node_crash_hz: 0.5,
            node_crash_len: SimDuration::from_millis(120),
            node_warmup_len: SimDuration::from_millis(80),
            ..FaultConfig::none()
        };
    }
    if autoscaled {
        let (floor, birth) = autoscale_bounds(scale);
        let mut ac = AutoscaleConfig::standard(floor, birth);
        if scenario.upgrade {
            ac.upgrade = Some(RollingUpgrade {
                start: SimDuration::from_secs_f64(0.3 * cfg.duration.as_secs_f64()),
                every: SimDuration::from_secs_f64(0.15 * cfg.duration.as_secs_f64()),
                count: upgrade_count(scale),
            });
        }
        cfg.autoscale = Some(ac);
    }
    cfg.obs = crate::runner::obs_config();
    cfg
}

/// Per-node calibrations for `cfg`, one per distinct machine generation.
pub fn cell_calibrations(lab: &mut Lab, cfg: &ClusterConfig) -> Vec<MachineCalibration> {
    cfg.nodes.iter().map(|spec| lab.calibration(spec.name)).collect()
}

/// One arm of one rung.
#[derive(Debug, Clone, Serialize)]
pub struct DiurnalRow {
    /// Scenario name.
    pub scenario: String,
    /// `"autoscaled"` or `"fixed"`.
    pub arm: &'static str,
    /// Topology size (the autoscaled arm's ceiling).
    pub nodes: usize,
    /// Cluster-wide power cap, Watts (`None` = uncapped).
    pub cap_w: Option<f64>,
    /// Simulated seconds (one compressed day).
    pub sim_secs: f64,
    /// Requests the traffic layer offered.
    pub dispatched: u64,
    /// Requests that completed.
    pub completed: usize,
    /// Typed shed counts, in [`ShedReason::ALL`] order.
    pub shed: [u64; ShedReason::ALL.len()],
    /// Requests killed by crashes or forced drains after their budget.
    pub lost_in_crash: u64,
    /// Requests still in flight at the end.
    pub in_flight: u64,
    /// Completed scale-outs / scale-ins / upgrade pairs.
    pub scale_outs: u64,
    /// Completed scale-ins.
    pub scale_ins: u64,
    /// Rolling-upgrade pairs started.
    pub upgrades: u64,
    /// Brownout-ladder climbs.
    pub brownout_engagements: u64,
    /// Node crash/restart cycles.
    pub crashes: u64,
    /// Fleet active (dynamic) energy, Joules.
    pub active_energy_j: f64,
    /// Fleet attributed energy, Joules.
    pub attributed_energy_j: f64,
    /// Energy journaled as lost in crash windows, Joules.
    pub lost_energy_j: f64,
    /// Idle burden over every powered stretch, Joules.
    pub idle_energy_j: f64,
    /// Warm-up energy charged to provisioning transitions, Joules.
    pub provisioning_energy_j: f64,
    /// Node-seconds of powered fleet (uptime summed over nodes).
    pub node_secs: f64,
    /// The objective: (active + idle + provisioning) J per completed
    /// request.
    pub j_per_req: f64,
    /// Mean fleet active power, Watts.
    pub total_w: f64,
    /// Invariant 1 held (exact typed request conservation).
    pub requests_conserved: bool,
    /// Invariant 2 held (energy modulo journaled loss windows; clean
    /// drains exactly zero).
    pub energy_conserved: bool,
    /// Invariant 3 held (vacuously true when uncapped).
    pub cap_ok: bool,
}

/// One rung's fixed-vs-autoscaled comparison.
#[derive(Debug, Clone, Serialize)]
pub struct DiurnalPair {
    /// Scenario name.
    pub scenario: String,
    /// Fixed-arm J/request.
    pub fixed_j_per_req: f64,
    /// Autoscaled-arm J/request.
    pub autoscaled_j_per_req: f64,
    /// Fractional win of the autoscaled arm (1 − auto/fixed).
    pub win: f64,
}

/// The sweep record.
#[derive(Debug, Clone, Serialize)]
pub struct DiurnalSweep {
    /// All arms, fixed then autoscaled per rung, in ladder order.
    pub rows: Vec<DiurnalRow>,
    /// Per-rung comparisons.
    pub pairs: Vec<DiurnalPair>,
    /// The autoscaled arm's J/request win on the diurnal rung.
    pub diurnal_win: f64,
    /// Every cell satisfied exact request conservation.
    pub requests_conserved: bool,
    /// Every cell satisfied energy conservation modulo loss windows.
    pub energy_conserved: bool,
    /// Every capped cell held its cap.
    pub caps_held: bool,
    /// Every capped autoscaled cell engaged the brownout ladder.
    pub brownouts_fired: bool,
    /// The upgrade rung completed every scheduled swap.
    pub upgrades_completed: bool,
}

/// Runs one arm of one rung and checks its invariants. Shared with the
/// CI smoke test.
pub fn run_cell(
    scale: Scale,
    scenario: &DiurnalScenario,
    autoscaled: bool,
    cals: &[MachineCalibration],
) -> DiurnalRow {
    let mut cfg = cell_config(scale, scenario, autoscaled);
    // Tracing is restricted to the quick ladder: a recording sink holds
    // every event in memory, and a full-scale cell offers ~4×10⁵
    // requests.
    if scale == Scale::Quick {
        cfg.telemetry = crate::runner::trace_handle();
    }
    let arm = if autoscaled { "autoscaled" } else { "fixed" };
    let t0 = std::time::Instant::now();
    let o = run_cluster(&mut SimpleBalance::new(), &cfg, cals);
    let wall = t0.elapsed();
    if scale == Scale::Quick {
        crate::runner::write_trace(
            "diurnal_sweep",
            &crate::runner::slug(&format!("{}-{arm}", scenario.name)),
            &cfg.telemetry,
        );
    }
    let label = format!("diurnal cell `{}/{arm}`", scenario.name);
    eprintln!(
        "[{label}: {wall:.1?} wall, {} offered, {} resizes]",
        o.dispatched,
        o.scale_outs + o.scale_ins
    );

    // Invariant 1 — exact typed request conservation, cluster and node,
    // across every resize.
    let cluster_ok = o.dispatched == o.completed as u64 + o.dropped + o.in_flight
        && o.dropped == o.total_shed() + o.lost_in_crash;
    let nodes_ok = o
        .per_node
        .iter()
        .all(|n| n.dispatched == n.completions as u64 + n.in_flight + n.lost_requests);
    let log_ok = o.scale_log.len() as u64 == o.scale_outs + o.scale_ins;
    let requests_conserved = cluster_ok && nodes_ok && log_ok;
    assert!(
        requests_conserved,
        "{label}: request conservation violated (dispatched {} vs completed {} + \
         shed {} + lost {} + in flight {})",
        o.dispatched,
        o.completed,
        o.total_shed(),
        o.lost_in_crash,
        o.in_flight
    );

    // Invariant 2 — energy conservation modulo journaled loss windows,
    // and *exactly* zero loss on every drain (clean or forced: killed
    // stragglers lose requests, never attributed energy).
    for e in &o.scale_log {
        if matches!(e.kind, ScaleKind::In | ScaleKind::UpgradeIn) {
            assert_eq!(
                e.lost_energy_j, 0.0,
                "{label}: drain of node {} journaled a loss window",
                e.node
            );
            assert!(e.forced || e.lost_requests == 0, "{label}: clean drain killed requests");
        }
    }
    let active: f64 = o.per_node.iter().map(|n| n.active_energy_j).sum();
    let attributed: f64 = o.per_node.iter().map(|n| n.attributed_energy_j).sum();
    let lost: f64 = o.per_node.iter().map(|n| n.lost_energy_j).sum();
    let tol = if scenario.chaos { ENERGY_TOL_FAULT } else { ENERGY_TOL_CLEAN };
    let energy_conserved = (active - (attributed + lost)).abs() / active.max(1e-9) < tol;
    assert!(
        energy_conserved,
        "{label}: energy conservation violated (active {active:.1} J vs attributed \
         {attributed:.1} + lost {lost:.1} J, tol {tol})"
    );

    // Invariant 3 — cap compliance on mean active power (conditioning
    // throttles duty cycles; instantaneous tick samples may spike).
    let total_w = o.total_energy_rate_w();
    let cap_ok = cfg.power_cap_w.map(|cap| total_w <= cap * CAP_SLACK).unwrap_or(true);
    assert!(
        cap_ok,
        "{label}: cap violated ({total_w:.1} W over {:?} W)",
        cfg.power_cap_w
    );

    // Fixed arms must be byte-compatible with the pre-elasticity
    // engine: zero resize counters, full uptime on every node.
    if !autoscaled {
        assert_eq!(o.scale_outs + o.scale_ins + o.upgrades + o.autoscale_evals, 0);
        for n in &o.per_node {
            assert_eq!(n.uptime_s.to_bits(), cfg.duration.as_secs_f64().to_bits());
        }
    }

    let idle: f64 = o.per_node.iter().map(|n| n.idle_energy_j).sum();
    let node_secs: f64 = o.per_node.iter().map(|n| n.uptime_s).sum();
    DiurnalRow {
        scenario: scenario.name.to_string(),
        arm,
        nodes: cfg.nodes.len(),
        cap_w: cfg.power_cap_w,
        sim_secs: cfg.duration.as_secs_f64(),
        dispatched: o.dispatched,
        completed: o.completed,
        shed: o.shed,
        lost_in_crash: o.lost_in_crash,
        in_flight: o.in_flight,
        scale_outs: o.scale_outs,
        scale_ins: o.scale_ins,
        upgrades: o.upgrades,
        brownout_engagements: o.brownout_engagements,
        crashes: o.crashes,
        active_energy_j: active,
        attributed_energy_j: attributed,
        lost_energy_j: lost,
        idle_energy_j: idle,
        provisioning_energy_j: o.provisioning_energy_j,
        node_secs,
        j_per_req: (active + idle + o.provisioning_energy_j) / o.completed.max(1) as f64,
        total_w,
        requests_conserved,
        energy_conserved,
        cap_ok,
    }
}

/// Runs the ladder (both arms per rung) and prints the comparison.
pub fn run(scale: Scale) -> DiurnalSweep {
    banner(
        "diurnal-sweep",
        "diurnal traffic, flash-crowd survival, elastic autoscaler vs fixed fleet",
    );
    let mut lab = Lab::new();
    let tasks: Vec<_> = SCENARIOS
        .iter()
        .flat_map(|sc| {
            let cals = cell_calibrations(&mut lab, &cell_config(scale, sc, false));
            [false, true].map(|autoscaled| {
                let cals = cals.clone();
                move || run_cell(scale, sc, autoscaled, &cals)
            })
        })
        .collect();
    let rows: Vec<DiurnalRow> = crate::runner::run_parallel(crate::runner::jobs(), tasks)
        .into_iter()
        .collect::<Result<_, _>>()
        .unwrap_or_else(|e| panic!("diurnal-sweep cell failed: {e}"));

    let mut table = Table::new([
        "scenario",
        "arm",
        "completed",
        "shed",
        "out/in",
        "upgrades",
        "brownouts",
        "node-s",
        "J/req",
        "mean W",
    ]);
    for r in &rows {
        table.row([
            r.scenario.clone(),
            r.arm.to_string(),
            r.completed.to_string(),
            r.shed.iter().sum::<u64>().to_string(),
            format!("{}/{}", r.scale_outs, r.scale_ins),
            r.upgrades.to_string(),
            r.brownout_engagements.to_string(),
            format!("{:.0}", r.node_secs),
            format!("{:.2}", r.j_per_req),
            format!("{:.0}", r.total_w),
        ]);
    }
    println!("{table}");

    let pairs: Vec<DiurnalPair> = SCENARIOS
        .iter()
        .enumerate()
        .map(|(i, sc)| {
            let (fixed, auto) = (&rows[2 * i], &rows[2 * i + 1]);
            assert_eq!((fixed.arm, auto.arm), ("fixed", "autoscaled"));
            DiurnalPair {
                scenario: sc.name.to_string(),
                fixed_j_per_req: fixed.j_per_req,
                autoscaled_j_per_req: auto.j_per_req,
                win: 1.0 - auto.j_per_req / fixed.j_per_req,
            }
        })
        .collect();
    let diurnal_win = pairs
        .iter()
        .find(|p| p.scenario == "diurnal")
        .expect("diurnal rung")
        .win;
    assert!(
        diurnal_win >= DIURNAL_WIN_FLOOR,
        "diurnal rung: autoscaled J/request win {:.1}% below the {:.0}% floor",
        diurnal_win * 100.0,
        DIURNAL_WIN_FLOOR * 100.0
    );

    // Ladder-shape checks: capped autoscaled arms must brown out, the
    // chaos rung must crash, the upgrade rung must finish its swaps.
    let brownouts_fired = SCENARIOS.iter().enumerate().all(|(i, sc)| {
        !sc.capped || rows[2 * i + 1].brownout_engagements > 0
    });
    assert!(brownouts_fired, "a capped rung never engaged the brownout ladder");
    for (i, sc) in SCENARIOS.iter().enumerate() {
        if sc.chaos {
            assert!(rows[2 * i + 1].crashes > 0, "chaos rung never crashed");
        }
    }
    let upgrades_completed = SCENARIOS.iter().enumerate().all(|(i, sc)| {
        !sc.upgrade || rows[2 * i + 1].upgrades == upgrade_count(scale) as u64
    });
    assert!(upgrades_completed, "the upgrade rung dropped scheduled swaps");

    for p in &pairs {
        println!(
            "{:>16}: fixed {:.2} J/req vs autoscaled {:.2} J/req ({:+.1}%)",
            p.scenario,
            p.fixed_j_per_req,
            p.autoscaled_j_per_req,
            p.win * 100.0
        );
    }
    println!(
        "diurnal rung win: {:.1}% (floor {:.0}%) | conservation: EXACT | drains: lossless",
        diurnal_win * 100.0,
        DIURNAL_WIN_FLOOR * 100.0
    );

    let record = DiurnalSweep {
        requests_conserved: rows.iter().all(|r| r.requests_conserved),
        energy_conserved: rows.iter().all(|r| r.energy_conserved),
        caps_held: rows.iter().all(|r| r.cap_ok),
        brownouts_fired,
        upgrades_completed,
        diurnal_win,
        pairs,
        rows,
    };
    write_record("diurnal_sweep", &record);
    record
}
