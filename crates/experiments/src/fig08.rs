//! Fig. 8 — accuracy of the three accounting approaches.
//!
//! For every workload, machine, and load level, sum the energy profiles
//! of all requests (plus the background container) and compare against
//! the measured system active energy. The paper's worst-case validation
//! errors per machine: Approach #1 (core events only) 29/41/20%,
//! Approach #2 (+ chip-share) 18/35/13%, Approach #3 (+ recalibration)
//! 8/9/6%.

use crate::output::{banner, pct, write_record, Table};
use crate::{Lab, Scale};
use power_containers::Approach;
use serde::Serialize;
use simkern::SimDuration;
use workloads::{run_app, LoadLevel, RunConfig, WorkloadKind};

/// One validation cell.
#[derive(Debug, Clone, Serialize)]
pub struct ValidationCell {
    /// Machine name.
    pub machine: String,
    /// Workload name.
    pub workload: String,
    /// Load level name.
    pub load: String,
    /// Validation error per approach (#1, #2, #3).
    pub errors: [f64; 3],
}

/// The Fig. 8 record.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8 {
    /// All cells.
    pub cells: Vec<ValidationCell>,
    /// Worst-case error per machine per approach.
    pub worst_case: Vec<(String, [f64; 3])>,
}

fn approach_name(a: Approach) -> &'static str {
    match a {
        Approach::CoreEventsOnly => "#1 core-events",
        Approach::ChipShare => "#2 chip-share",
        Approach::Recalibrated => "#3 recalibrated",
    }
}

/// Runs the experiment. Cells (machine × workload × load, with the
/// three approaches evaluated inside a cell) are independent seeded
/// simulations, so they fan out across [`crate::runner::jobs`] workers;
/// assembly, worst-case reduction, and printing follow the canonical
/// sweep order regardless of completion order.
pub fn run(scale: Scale) -> Fig8 {
    banner("fig8", "validation error of approaches #1/#2/#3");
    let mut lab = Lab::new();
    let machines: &[&str] = match scale {
        Scale::Full => &["woodcrest", "westmere", "sandybridge"],
        Scale::Quick => &["sandybridge"],
    };
    let mut tasks = Vec::new();
    for &machine in machines {
        let spec = lab.spec(machine);
        let cal = lab.calibration(machine);
        // Machines whose only meter is the 1 Hz Wattsup need longer runs
        // for the recalibrator to accumulate aligned online samples (the
        // on-chip meter yields ~1000 windows per second instead).
        let secs = if spec.meters.iter().any(|m| m.name == "on-chip") {
            scale.run_secs()
        } else {
            scale.run_secs() * 5 / 2
        };
        for kind in WorkloadKind::ALL {
            for load in [LoadLevel::Peak, LoadLevel::Half] {
                let spec = spec.clone();
                let cal = cal.clone();
                tasks.push(move || {
                    let mut errors = [0.0f64; 3];
                    for (i, approach) in Approach::ALL.into_iter().enumerate() {
                        let mut cfg = RunConfig::new(spec.clone());
                        cfg.sched = crate::runner::sched_kind();
                        cfg.approach = approach;
                        cfg.load = load;
                        cfg.duration = SimDuration::from_secs(secs);
                        let outcome = run_app(kind, &cfg, &cal);
                        errors[i] = outcome.validation_error();
                    }
                    ValidationCell {
                        machine: machine.to_string(),
                        workload: kind.name().to_string(),
                        load: load.name().to_string(),
                        errors,
                    }
                });
            }
        }
    }
    let cells: Vec<ValidationCell> = crate::runner::run_parallel(crate::runner::jobs(), tasks)
        .into_iter()
        .collect::<Result<_, _>>()
        .unwrap_or_else(|e| panic!("fig8 cell failed: {e}"));
    let mut worst_case = Vec::new();
    for &machine in machines {
        let mut table = Table::new(["workload", "load", "#1", "#2", "#3"]);
        let mut worst = [0.0f64; 3];
        for cell in cells.iter().filter(|c| c.machine == machine) {
            for (w, e) in worst.iter_mut().zip(cell.errors) {
                *w = w.max(e);
            }
            table.row([
                cell.workload.clone(),
                cell.load.clone(),
                pct(cell.errors[0]),
                pct(cell.errors[1]),
                pct(cell.errors[2]),
            ]);
        }
        println!("machine: {machine}");
        println!("{table}");
        println!(
            "worst-case: {} {}, {} {}, {} {}",
            approach_name(Approach::CoreEventsOnly),
            pct(worst[0]),
            approach_name(Approach::ChipShare),
            pct(worst[1]),
            approach_name(Approach::Recalibrated),
            pct(worst[2]),
        );
        println!();
        worst_case.push((machine.to_string(), worst));
    }
    let record = Fig8 { cells, worst_case };
    write_record("fig8", &record);
    record
}
