//! Fig. 8 — accuracy of the three accounting approaches.
//!
//! For every workload, machine, and load level, sum the energy profiles
//! of all requests (plus the background container) and compare against
//! the measured system active energy. The paper's worst-case validation
//! errors per machine: Approach #1 (core events only) 29/41/20%,
//! Approach #2 (+ chip-share) 18/35/13%, Approach #3 (+ recalibration)
//! 8/9/6%.

use crate::output::{banner, pct, write_record, Table};
use crate::{Lab, Scale};
use power_containers::Approach;
use serde::Serialize;
use simkern::SimDuration;
use workloads::{run_app, LoadLevel, RunConfig, WorkloadKind};

/// One validation cell.
#[derive(Debug, Clone, Serialize)]
pub struct ValidationCell {
    /// Machine name.
    pub machine: String,
    /// Workload name.
    pub workload: String,
    /// Load level name.
    pub load: String,
    /// Validation error per approach (#1, #2, #3).
    pub errors: [f64; 3],
}

/// The Fig. 8 record.
#[derive(Debug, Clone, Serialize)]
pub struct Fig8 {
    /// All cells.
    pub cells: Vec<ValidationCell>,
    /// Worst-case error per machine per approach.
    pub worst_case: Vec<(String, [f64; 3])>,
}

fn approach_name(a: Approach) -> &'static str {
    match a {
        Approach::CoreEventsOnly => "#1 core-events",
        Approach::ChipShare => "#2 chip-share",
        Approach::Recalibrated => "#3 recalibrated",
    }
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig8 {
    banner("fig8", "validation error of approaches #1/#2/#3");
    let mut lab = Lab::new();
    let mut cells = Vec::new();
    let mut worst_case = Vec::new();
    let machines: &[&str] = match scale {
        Scale::Full => &["woodcrest", "westmere", "sandybridge"],
        Scale::Quick => &["sandybridge"],
    };
    for &machine in machines {
        let spec = lab.spec(machine);
        let cal = lab.calibration(machine);
        // Machines whose only meter is the 1 Hz Wattsup need longer runs
        // for the recalibrator to accumulate aligned online samples (the
        // on-chip meter yields ~1000 windows per second instead).
        let secs = if spec.meters.iter().any(|m| m.name == "on-chip") {
            scale.run_secs()
        } else {
            scale.run_secs() * 5 / 2
        };
        let mut table = Table::new(["workload", "load", "#1", "#2", "#3"]);
        let mut worst = [0.0f64; 3];
        for kind in WorkloadKind::ALL {
            for load in [LoadLevel::Peak, LoadLevel::Half] {
                let mut errors = [0.0f64; 3];
                for (i, approach) in Approach::ALL.into_iter().enumerate() {
                    let mut cfg = RunConfig::new(spec.clone());
                    cfg.approach = approach;
                    cfg.load = load;
                    cfg.duration = SimDuration::from_secs(secs);
                    let outcome = run_app(kind, &cfg, &cal);
                    errors[i] = outcome.validation_error();
                    worst[i] = worst[i].max(errors[i]);
                }
                table.row([
                    kind.name().to_string(),
                    load.name().to_string(),
                    pct(errors[0]),
                    pct(errors[1]),
                    pct(errors[2]),
                ]);
                cells.push(ValidationCell {
                    machine: machine.to_string(),
                    workload: kind.name().to_string(),
                    load: load.name().to_string(),
                    errors,
                });
            }
        }
        println!("machine: {machine}");
        println!("{table}");
        println!(
            "worst-case: {} {}, {} {}, {} {}",
            approach_name(Approach::CoreEventsOnly),
            pct(worst[0]),
            approach_name(Approach::ChipShare),
            pct(worst[1]),
            approach_name(Approach::Recalibrated),
            pct(worst[2]),
        );
        println!();
        worst_case.push((machine.to_string(), worst));
    }
    let record = Fig8 { cells, worst_case };
    write_record("fig8", &record);
    record
}
