//! Megafleet: intra-cell sharded simulation capacity study.
//!
//! Sweeps a (nodes × requests) grid of single-tier heterogeneous fleets
//! ([`Topology::scaled_fleet`]) up to 1000 nodes and 10⁶ requests per
//! cell, driving each cell through the tick-batched dispatcher with
//! `--shards N` worker threads advancing disjoint node chunks between
//! tick barriers. The point is capacity, not policy: every cell must
//! conserve requests exactly (dispatched = completed + dropped +
//! in-flight, per cluster and per node) and attribute (nearly) all
//! measured active energy, no matter how large the fleet or how many
//! shards advance it.
//!
//! Cells are independent seeded simulations and fan out across
//! [`crate::runner::jobs`] workers; intra-cell shard count comes from
//! [`crate::runner::shards`]. The record carries no wall-clock values —
//! per-cell wall time and throughput go to stderr — so `results/*.json`
//! stay byte-identical at any `--jobs` *and* any `--shards` count.

use crate::output::{banner, write_record, Table};
use crate::{Lab, Scale};
use cluster::{offered_cluster_rate, run_cluster, ClusterConfig, SimpleBalance, Topology};
use serde::Serialize;
use simkern::SimDuration;
use workloads::MachineCalibration;

/// One cell of the (nodes × requests) grid.
#[derive(Debug, Clone, Serialize)]
pub struct MegafleetRow {
    /// Fleet size (single-tier heterogeneous mix).
    pub nodes: usize,
    /// Total cores across the fleet.
    pub cores: usize,
    /// Requests the cell was sized to offer.
    pub target_requests: u64,
    /// Simulated seconds.
    pub sim_secs: f64,
    /// Requests the load generator offered.
    pub dispatched: u64,
    /// Requests that completed.
    pub completed: usize,
    /// Requests dropped (all target nodes penalized).
    pub dropped: u64,
    /// Requests still in flight at the end.
    pub in_flight: u64,
    /// Routing decisions the dispatcher made.
    pub decisions: u64,
    /// Combined active energy rate across the fleet, Watts.
    pub total_w: f64,
    /// Mean attributed energy per completed request, Joules.
    pub energy_per_req_j: f64,
    /// Mean end-to-end response time across apps, seconds.
    pub mean_resp_s: f64,
}

/// The sweep record.
#[derive(Debug, Clone, Serialize)]
pub struct Megafleet {
    /// All cells, in canonical (nodes, requests) order.
    pub rows: Vec<MegafleetRow>,
    /// The largest fleet swept.
    pub largest_nodes: usize,
    /// Requests the largest cell offered.
    pub largest_dispatched: u64,
    /// Every cell conserved requests exactly and energy within
    /// tolerance (the run would have panicked otherwise, so a recorded
    /// `true` is the assertion trail, not a soft flag).
    pub conserved: bool,
}

/// The (nodes, requests) grid for each scale. The full-scale headline
/// cell is the issue's target: 1000 nodes serving 10⁶ requests; the
/// quick grid ends at the CI smoke point (100 nodes, 10⁵ requests).
pub fn fleet_cells(scale: Scale) -> &'static [(usize, u64)] {
    match scale {
        Scale::Full => &[(100, 100_000), (320, 320_000), (1000, 1_000_000)],
        Scale::Quick => &[(32, 5_000), (100, 100_000)],
    }
}

/// Fleet-level energy attribution tolerance. Cells are clean (no
/// faults, no cap), but the linear power model still carries per-node
/// fitting error; summed over a whole fleet it stays well inside this.
const ENERGY_TOL: f64 = 0.20;

/// Builds one cell's cluster config (shared with the test suites and
/// the CI smoke job, so those cells are exactly sweep cells). Duration
/// is sized from the fleet's offered rate so the open-loop generator
/// issues `requests` regardless of fleet size.
pub fn cell_config(nodes: usize, requests: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::sharded(&Topology::scaled_fleet(nodes));
    cfg.sched = vec![crate::runner::sched_kind()];
    cfg.seed = crate::SEED;
    cfg.shards = crate::runner::shards();
    let rate = offered_cluster_rate(&cfg);
    let secs = (requests as f64 / rate).max(0.25);
    cfg.duration = SimDuration::from_millis((secs * 1e3).ceil() as u64);
    cfg.obs = crate::runner::obs_config();
    cfg
}

/// Per-node calibrations for `cfg`, one per distinct machine generation.
pub fn cell_calibrations(lab: &mut Lab, cfg: &ClusterConfig) -> Vec<MachineCalibration> {
    cfg.nodes.iter().map(|spec| lab.calibration(spec.name)).collect()
}

/// Panics unless `outcome` conserves requests exactly (cluster-wide and
/// per node) and attributes measured active energy within
/// [`ENERGY_TOL`] fleet-wide. Shared with the test suites.
pub fn assert_cell_conserved(label: &str, outcome: &cluster::ClusterOutcome) {
    assert_eq!(
        outcome.dispatched,
        outcome.completed as u64 + outcome.dropped + outcome.in_flight + outcome.lost_in_crash,
        "{label}: cluster request conservation"
    );
    let mut active = 0.0;
    let mut attributed = 0.0;
    for (i, node) in outcome.per_node.iter().enumerate() {
        assert_eq!(
            node.dispatched,
            node.completions as u64 + node.in_flight + node.lost_requests,
            "{label}: node {i} ({}) request conservation",
            node.machine
        );
        active += node.active_energy_j;
        attributed += node.attributed_energy_j;
    }
    assert!(
        active > 0.0 && (attributed - active).abs() / active <= ENERGY_TOL,
        "{label}: fleet energy attribution {attributed:.1} J vs measured {active:.1} J \
         exceeds {:.0}% tolerance",
        ENERGY_TOL * 100.0
    );
}

fn run_cell(nodes: usize, requests: u64, traced: bool, cals: &[MachineCalibration]) -> MegafleetRow {
    let mut cfg = cell_config(nodes, requests);
    // Tracing is restricted to the grid's smallest cell: a recording
    // sink holds every event in memory and a 10⁶-request cell emits
    // gigabytes, while the smallest cell already pins the schema.
    if traced {
        cfg.telemetry = crate::runner::trace_handle();
    }
    let t0 = std::time::Instant::now();
    let outcome = run_cluster(&mut SimpleBalance::new(), &cfg, cals);
    let wall = t0.elapsed();
    if traced {
        crate::runner::write_trace(
            "megafleet",
            &format!("{nodes:04}nodes-{requests}req"),
            &cfg.telemetry,
        );
    }
    assert_cell_conserved(&format!("megafleet {nodes}x{requests}"), &outcome);
    eprintln!(
        "[megafleet {nodes} nodes x {requests} req: {wall:.1?} wall, {:.0} req/s, shards {}]",
        outcome.dispatched as f64 / wall.as_secs_f64().max(1e-9),
        cfg.shards,
    );
    let attributed: f64 = outcome.per_node.iter().map(|n| n.attributed_energy_j).sum();
    let resp: Vec<f64> = outcome
        .response_by_app
        .iter()
        .filter(|(_, s)| s.count() > 0)
        .map(|(_, s)| s.mean())
        .collect();
    MegafleetRow {
        nodes,
        cores: cfg.nodes.iter().map(hwsim::MachineSpec::total_cores).sum(),
        target_requests: requests,
        sim_secs: cfg.duration.as_secs_f64(),
        dispatched: outcome.dispatched,
        completed: outcome.completed,
        dropped: outcome.dropped,
        in_flight: outcome.in_flight,
        decisions: outcome.decisions,
        total_w: outcome.total_energy_rate_w(),
        energy_per_req_j: attributed / (outcome.completed.max(1) as f64),
        mean_resp_s: resp.iter().sum::<f64>() / resp.len().max(1) as f64,
    }
}

/// Runs the sweep and prints the grid.
pub fn run(scale: Scale) -> Megafleet {
    banner("megafleet", "sharded single-cell capacity sweep (nodes x requests)");
    let mut lab = Lab::new();
    let cells = fleet_cells(scale);
    let tasks: Vec<_> = cells
        .iter()
        .enumerate()
        .map(|(i, &(nodes, requests))| {
            let cals = cell_calibrations(&mut lab, &cell_config(nodes, requests));
            move || run_cell(nodes, requests, i == 0, &cals)
        })
        .collect();
    let rows: Vec<MegafleetRow> = crate::runner::run_parallel(crate::runner::jobs(), tasks)
        .into_iter()
        .collect::<Result<_, _>>()
        .unwrap_or_else(|e| panic!("megafleet cell failed: {e}"));

    let mut table = Table::new([
        "nodes",
        "cores",
        "requests",
        "sim (s)",
        "completed",
        "in flight",
        "total (W)",
        "J/req",
        "resp (ms)",
    ]);
    for r in &rows {
        table.row([
            r.nodes.to_string(),
            r.cores.to_string(),
            r.dispatched.to_string(),
            format!("{:.1}", r.sim_secs),
            r.completed.to_string(),
            r.in_flight.to_string(),
            format!("{:.0}", r.total_w),
            format!("{:.2}", r.energy_per_req_j),
            format!("{:.1}", r.mean_resp_s * 1e3),
        ]);
    }
    println!("{table}");

    let last = rows.last().expect("nonempty grid");
    println!(
        "largest cell: {} nodes served {} requests, conservation exact on every node",
        last.nodes, last.dispatched
    );
    let record = Megafleet {
        largest_nodes: last.nodes,
        largest_dispatched: last.dispatched,
        conserved: true,
        rows,
    };
    write_record("megafleet", &record);
    record
}
