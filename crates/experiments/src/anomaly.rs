//! Extension experiment: online power-anomaly detection.
//!
//! The paper's introduction motivates containers with the operator's
//! need to "pinpoint the sources of power spikes and anomalies". This
//! experiment runs the GAE-Hybrid workload and, every 100 ms, asks the
//! facility's live [`PowerReport`](power_containers::PowerReport) which
//! requests look anomalous (recent power well above the population
//! median). Flags are then scored against ground truth — which requests
//! really were power viruses.

use crate::output::{banner, pct, write_record, Table};
use crate::{Lab, Scale};
use ossim::ContextId;
use serde::Serialize;
use simkern::{SimDuration, SimTime};
use std::collections::HashSet;
use workloads::{prepare_app, LoadLevel, RunConfig, WorkloadKind, POWER_VIRUS_LABEL};

/// The anomaly-detection record.
#[derive(Debug, Clone, Serialize)]
pub struct Anomaly {
    /// Viruses that ran (ground truth positives).
    pub viruses: usize,
    /// Viruses flagged by the online report at least once.
    pub detected: usize,
    /// Normal requests incorrectly flagged.
    pub false_positives: usize,
    /// Normal requests completed.
    pub normals: usize,
    /// Recall: detected / viruses.
    pub recall: f64,
    /// Precision: detected / all flagged.
    pub precision: f64,
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Anomaly {
    banner("anomaly", "online power-anomaly detection from live container reports");
    let mut lab = Lab::new();
    let spec = lab.spec("sandybridge");
    let cal = lab.calibration("sandybridge");
    let mut cfg = RunConfig::new(spec);
    cfg.sched = crate::runner::sched_kind();
    cfg.load = LoadLevel::Peak;
    cfg.duration = SimDuration::from_secs(scale.run_secs());
    let mut prepared = prepare_app(std::rc::Rc::from(WorkloadKind::GaeHybrid.app()), &cfg, &cal);

    // Poll the live report every 40 ms, like an operator dashboard.
    let mut flagged: HashSet<ContextId> = HashSet::new();
    let mut t = SimTime::ZERO;
    let end = SimTime::ZERO + cfg.duration;
    while t < end {
        t += SimDuration::from_millis(40);
        prepared.kernel.run_until(t);
        let f = prepared.facility.borrow();
        for line in f.power_report().anomalies(1.18) {
            flagged.insert(line.ctx);
        }
    }
    let outcome = prepared.finish();
    let stats = outcome.stats.borrow();
    let mut viruses = 0usize;
    let mut normals = 0usize;
    let mut detected = 0usize;
    let mut false_positives = 0usize;
    for c in stats.completions() {
        let is_virus = c.label == POWER_VIRUS_LABEL;
        let was_flagged = flagged.contains(&c.ctx);
        if is_virus {
            viruses += 1;
            if was_flagged {
                detected += 1;
            }
        } else {
            normals += 1;
            if was_flagged {
                false_positives += 1;
            }
        }
    }
    let recall = detected as f64 / viruses.max(1) as f64;
    let precision = detected as f64 / (detected + false_positives).max(1) as f64;
    let mut table = Table::new(["metric", "value"]);
    table.row(["power viruses run".to_string(), viruses.to_string()]);
    table.row(["viruses detected online".to_string(), detected.to_string()]);
    table.row(["normal requests".to_string(), normals.to_string()]);
    table.row(["false positives".to_string(), false_positives.to_string()]);
    table.row(["recall".to_string(), pct(recall)]);
    table.row(["precision".to_string(), pct(precision)]);
    println!("{table}");
    let record = Anomaly { viruses, detected, false_positives, normals, recall, precision };
    write_record("anomaly", &record);
    record
}
