//! Drift study: the self-calibrating model bank under a ladder of
//! regime shifts.
//!
//! The paper's online recalibration (§3.2) keeps one rolling model per
//! node. That model is only as good as its recent window: the moment the
//! operating regime shifts — a DVFS step the counters cannot see, a
//! rolling hardware upgrade that changes the silicon's power law, a
//! workload phase flip into power-virus territory — the window mixes two
//! regimes and every refit splits the difference. The
//! [`power_containers::ModelBank`] answers with one model per regime
//! (machine generation × DVFS level × workload-mix bucket), CUSUM drift
//! detection, error-driven retraining and hysteresis slot switching.
//!
//! This experiment proves the bank out on a seeded ladder of regime
//! shifts. Every rung runs twice from the same seed — single rolling
//! model vs model bank — while the harness steps the run in 100 ms
//! buckets and records the attribution error (attributed vs true active
//! energy) per bucket. The acceptance bar: after **every** shift the
//! bank's error returns to within 1.2× its steady-state level inside a
//! bounded window, while the single-model baseline's post-shift error
//! stays diverged (above that bound on average). Rungs are independent
//! seeded simulations fanned out across [`crate::runner::jobs`] workers;
//! records and traces carry only simulated timestamps, so results are
//! byte-identical at any `--jobs` count.

use crate::output::{banner, pct, write_record, Table};
use crate::{Lab, Scale};
use hwsim::{ChipId, FaultConfig, FreqScale, GroundTruthPower};
use power_containers::{Approach, BankConfig};
use serde::Serialize;
use simkern::{SimDuration, SimTime};
use std::cell::Cell;
use std::rc::Rc;
use workloads::{
    prepare_app, spawn_driver, CtxAlloc, DriverEnv, LoadLevel, PreparedRun, RunConfig,
    WorkloadKind, POWER_VIRUS_LABEL,
};

/// Accuracy-curve bucket width, milliseconds.
pub const BUCKET_MS: u64 = 100;

/// Buckets allowed from a shift edge until the error must be back under
/// the recovery bound (next-edge-limited for fast square waves).
pub const RECOVERY_BUCKETS: usize = 8;

/// Recovered means: error ≤ `RECOVERY_FACTOR` × steady-state error.
pub const RECOVERY_FACTOR: f64 = 1.2;

/// Absolute floor under the recovery bound: per-bucket attribution noise
/// (request granularity, 1 ms sampling skew) makes tighter bounds
/// meaningless.
pub const ERR_FLOOR: f64 = 0.05;

/// Per-bucket errors are normalized by the cell's *mean* per-bucket true
/// active energy, not each bucket's own. Local normalization makes
/// quiet buckets spiky and — worse — deflates the error of a diverged
/// model during high-power phases (a power-virus bucket has a huge
/// denominator), hiding exactly the divergence this sweep measures.
///
/// The baseline counts as diverged when its post-shift mean error is at
/// least this factor above the bank's on the same rung. Head-to-head
/// beats an absolute bound here: the two cells share a seed and an
/// arrival stream, so every noise source cancels and the ratio isolates
/// what the metering engine itself contributes.
pub const DIVERGE_FACTOR: f64 = 1.5;

/// The generation rank the synthetic next-gen silicon reports (base
/// SandyBridge is rank 0; 1 and 2 belong to the real older presets).
const NEXTGEN_RANK: u32 = 3;

/// One rung of the drift ladder: which regime shifts it exercises.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct DriftScenario {
    /// Rung name (also the trace stem).
    pub name: &'static str,
    /// Recurring DVFS square wave (nominal ↔ 0.6) the counters cannot
    /// see — the superlinear `FreqScale::power_factor` breaks the
    /// counter-linear model.
    pub dvfs: bool,
    /// Rolling generation upgrade: the hidden ground-truth power law is
    /// swapped for next-gen silicon mid-run, rolled back, and swapped
    /// again.
    pub generation: bool,
    /// Workload phase flips: a second driver toggles between normal
    /// reads and power viruses, moving the memory-mix bucket — with the
    /// governor's thermal-throttle response riding along (virus phases
    /// run power-capped at 0.6× frequency, which the counters cannot
    /// see).
    pub phase: bool,
    /// PR-1 meter faults riding along (5% wall-meter dropout).
    pub meter_faults: bool,
}

impl DriftScenario {
    /// `true` when the rung shifts regime at all (the control rung
    /// does not).
    pub fn shifting(&self) -> bool {
        self.dvfs || self.generation || self.phase
    }
}

/// The canonical drift ladder, in escalating order. Both scales run the
/// same rungs; `Quick` only shortens them.
pub const SCENARIOS: &[DriftScenario] = &[
    DriftScenario { name: "steady", dvfs: false, generation: false, phase: false, meter_faults: false },
    DriftScenario { name: "dvfs-square", dvfs: true, generation: false, phase: false, meter_faults: false },
    DriftScenario { name: "gen-rolling", dvfs: false, generation: true, phase: false, meter_faults: false },
    DriftScenario { name: "phase-flip", dvfs: false, generation: false, phase: true, meter_faults: false },
    DriftScenario { name: "chaos-combined", dvfs: true, generation: true, phase: false, meter_faults: true },
];

/// One mid-run regime shift.
#[derive(Debug, Clone, Copy)]
enum Shift {
    /// Step every chip to this frequency fraction.
    Freq(f64),
    /// Swap the hidden ground-truth power law (`true` = next-gen).
    Truth(bool),
    /// Toggle the second driver's virus phase.
    Phase(bool),
}

/// Synthetic next-generation SandyBridge: a die shrink with much
/// cheaper cores and a stronger co-activity (turbo) term. Counters are
/// unchanged, so a model trained on the old silicon misattributes until
/// it retrains.
fn nextgen_truth() -> GroundTruthPower {
    let mut t = GroundTruthPower::sandybridge();
    t.pkg_idle_w *= 0.7;
    t.core_w *= 0.50;
    t.ins_w *= 0.60;
    t.cache_w *= 0.60;
    t.mem_w *= 0.70;
    t.coact_w *= 1.8;
    t
}

/// The rung's shift schedule as `(bucket, shift)` pairs, sorted by
/// bucket. Shifts start at the quarter mark so every cell has a clean
/// steady-state reference window first, then **recur** as square waves:
/// a one-off shift lets the single model quietly re-adapt between
/// edges, while recurring shifts — the realistic shape of governor
/// activity, rolling upgrades and phase-alternating workloads — keep
/// its rolling window permanently contaminated. The bank, holding one
/// slot per regime, is indifferent to the recurrence rate.
fn schedule(sc: &DriftScenario, buckets: usize) -> Vec<(usize, Shift)> {
    let first = buckets / 4;
    // Fixed 0.5 s edge period at every scale: the single model's
    // re-adaptation time is a wall-clock property (rolling window ÷
    // sampling rate), so scaling the period with the run length would
    // quietly hand it recovery room at full scale.
    let step = (500 / BUCKET_MS).max(2) as usize;
    let mut ev: Vec<(usize, Shift)> = Vec::new();
    if sc.dvfs {
        // Deep square wave (nominal ↔ 0.6): the superlinear
        // `FreqScale::power_factor` is far off counter-linear there.
        let mut slow = true;
        let mut b = first;
        while b + 2 < buckets {
            ev.push((b, Shift::Freq(if slow { 0.6 } else { 1.0 })));
            slow = !slow;
            b += step;
        }
    }
    if sc.generation {
        // Rolling upgrade and rollback at twice the DVFS period.
        let mut next = true;
        let mut b = first;
        while b + 2 < buckets {
            ev.push((b, Shift::Truth(next)));
            next = !next;
            b += 2 * step;
        }
    }
    if sc.phase {
        // The governor's thermal-throttle response arrives with the
        // phase: virus phases run power-capped.
        let mut on = true;
        let mut b = first;
        while b + 2 < buckets {
            ev.push((b, Shift::Phase(on)));
            ev.push((b, Shift::Freq(if on { 0.6 } else { 1.0 })));
            on = !on;
            b += step;
        }
    }
    ev.sort_by_key(|e| e.0);
    ev
}

/// Applies one shift to the prepared run.
fn apply(prepared: &mut PreparedRun, shift: Shift, phase: &Rc<Cell<bool>>) {
    match shift {
        Shift::Freq(fr) => {
            let point = FreqScale::new(fr).expect("ladder frequencies are in [0.5, 1.0]");
            let chips = prepared.kernel.machine().spec().chips;
            for chip in 0..chips {
                prepared.kernel.machine_mut().set_chip_freq(ChipId(chip), point);
            }
        }
        Shift::Truth(next) => {
            let (truth, rank) = if next {
                (nextgen_truth(), NEXTGEN_RANK)
            } else {
                (GroundTruthPower::sandybridge(), 0)
            };
            prepared.kernel.machine_mut().swap_truth(truth, rank);
        }
        Shift::Phase(on) => phase.set(on),
    }
}

/// Aggregate energy the facility has attributed so far (requests +
/// background, CPU + I/O) — the cumulative series the per-bucket
/// accuracy curve differentiates.
fn attributed_j(facility: &Rc<std::cell::RefCell<power_containers::FacilityState>>) -> f64 {
    let f = facility.borrow();
    let c = f.containers();
    c.total_energy_with_background_j()
        + c.total_request_io_energy_j()
        + c.background().io_energy_j()
}

/// One (rung × metering engine) cell.
#[derive(Debug, Clone, Serialize)]
pub struct DriftCell {
    /// Rung name.
    pub scenario: String,
    /// `true` = model bank, `false` = single rolling model.
    pub banked: bool,
    /// Mean per-bucket attribution error over the pre-shift steady
    /// window.
    pub steady_err: f64,
    /// Mean per-bucket attribution error over everything after the
    /// first shift (equals the steady tail on the control rung).
    pub post_err: f64,
    /// The recovery bound this cell was held to (shared across the
    /// rung's two cells; filled in by [`apply_bound`]).
    pub bound: f64,
    /// Shift-edge times, simulated seconds.
    pub edges: Vec<f64>,
    /// Shift-edge bucket indices into `err_curve`.
    pub edge_buckets: Vec<usize>,
    /// Per edge: buckets until the error was back under the bound,
    /// `None` if it never was before the next edge (or window end).
    /// Filled in by [`apply_bound`].
    pub recovery_buckets: Vec<Option<usize>>,
    /// Every edge recovered within [`RECOVERY_BUCKETS`].
    pub recovered_all: bool,
    /// The full accuracy-over-time curve (per-bucket relative error).
    pub err_curve: Vec<f64>,
    /// Drift detections (CUSUM trips) the facility logged.
    pub drift_events: u64,
    /// Bank slot switches.
    pub model_switches: u64,
    /// Slots quarantined.
    pub quarantines: u64,
    /// Refits the acceptance screen rejected.
    pub refits_rejected: u64,
    /// Staleness resets (rolling window discarded).
    pub stale_resets: u64,
    /// Hardware faults the machine injected.
    pub faults_injected: u64,
    /// Requests completed.
    pub completions: usize,
}

/// One rung: the single-model and banked cells side by side.
#[derive(Debug, Clone, Serialize)]
pub struct DriftRungRow {
    /// Rung name.
    pub scenario: String,
    /// Number of shift edges in the rung.
    pub shifts: usize,
    /// Single rolling-model baseline.
    pub single: DriftCell,
    /// Model-bank cell.
    pub bank: DriftCell,
    /// The bank recovered within bound after every shift.
    pub bank_recovered: bool,
    /// The baseline stayed diverged: its post-shift mean error is at
    /// least [`DIVERGE_FACTOR`] × the bank's.
    pub single_diverged: bool,
}

/// The sweep record.
#[derive(Debug, Clone, Serialize)]
pub struct DriftSweep {
    /// All rungs, in canonical ladder order.
    pub rows: Vec<DriftRungRow>,
    /// Every shifting rung's bank recovered after every edge.
    pub bank_recovered_all: bool,
    /// Every shifting rung's baseline stayed diverged post-shift.
    pub single_stayed_diverged: bool,
    /// On the control rung the bank's steady error stays comparable to
    /// the single model's (the bank costs nothing when nothing drifts).
    pub bank_steady_ok: bool,
}

/// Simulated seconds per cell. `Quick` is longer than the usual 4 s
/// smoke scale: the steady-state reference window needs ~10 buckets for
/// a stable recovery bound.
fn cell_secs(scale: Scale) -> u64 {
    match scale {
        Scale::Full => 12,
        Scale::Quick => 6,
    }
}

/// Deterministic rung-name hash (FNV-1a) for per-rung seeding.
fn fxhash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Builds one cell's run config (shared with the test suites, so the CI
/// smoke cell is exactly a sweep cell). The single and banked variants
/// of a rung share a seed: identical arrival streams, only the metering
/// engine differs.
pub fn cell_config(scale: Scale, scenario: &DriftScenario, banked: bool) -> RunConfig {
    let mut cfg = RunConfig::new(hwsim::MachineSpec::sandybridge());
    cfg.sched = crate::runner::sched_kind();
    cfg.approach = Approach::Recalibrated;
    cfg.load = LoadLevel::Half;
    cfg.duration = SimDuration::from_secs(cell_secs(scale));
    cfg.seed = crate::SEED ^ fxhash(scenario.name);
    if banked {
        cfg.model_bank = Some(BankConfig::default());
    }
    if scenario.meter_faults {
        cfg.faults = FaultConfig { seed: 0xD21F7, meter_dropout: 0.05, ..FaultConfig::none() };
    }
    cfg
}

/// Runs one (rung × engine) cell: steps the kernel in [`BUCKET_MS`]
/// buckets, applies the rung's shifts at bucket boundaries, and records
/// the per-bucket attribution error. Shared with the CI smoke test.
pub fn run_cell(
    scale: Scale,
    scenario: &DriftScenario,
    banked: bool,
    cal: &workloads::MachineCalibration,
) -> DriftCell {
    let mut cfg = cell_config(scale, scenario, banked);
    cfg.telemetry = crate::runner::trace_handle();
    let buckets = (cell_secs(scale) * 1000 / BUCKET_MS) as usize;
    let mut prepared = prepare_app(Rc::from(WorkloadKind::GaeVosao.app()), &cfg, cal);

    // The phase driver runs for the whole cell at a constant rate; only
    // its request *type* flips (normal reads ↔ power viruses), so the
    // arrival stream — and with it the byte-identical determinism — is
    // independent of the phase schedule. The gap keeps viruses mostly
    // non-overlapping: stacked viruses saturate the co-activity term
    // into territory *no* linear model spans, which would measure
    // model-class mismatch instead of drift.
    let phase = Rc::new(Cell::new(false));
    if scenario.phase {
        let p = Rc::clone(&phase);
        spawn_driver(
            &mut prepared.kernel,
            DriverEnv {
                inboxes: prepared.inboxes.clone(),
                mean_gap: SimDuration::from_millis(400),
                pick_label: Box::new(move |_| if p.get() { POWER_VIRUS_LABEL } else { 0 }),
                stats: Rc::clone(&prepared.stats),
                facility: Some(Rc::clone(&prepared.facility)),
                ctxs: CtxAlloc::new(1_000_000_000),
                max_requests: None,
                start_after: SimDuration::ZERO,
            },
        );
    }

    let sched = schedule(scenario, buckets);
    let mut edge_buckets: Vec<usize> = sched.iter().map(|e| e.0).collect();
    edge_buckets.dedup();

    let mut deltas: Vec<(f64, f64)> = Vec::with_capacity(buckets);
    let (mut last_true, mut last_attr) = (0.0_f64, 0.0_f64);
    let mut si = 0;
    for b in 0..buckets {
        while si < sched.len() && sched[si].0 == b {
            apply(&mut prepared, sched[si].1, &phase);
            si += 1;
        }
        let t = SimTime::ZERO + SimDuration::from_millis(BUCKET_MS * (b as u64 + 1));
        prepared.kernel.run_until(t);
        let te = prepared.kernel.machine().true_active_energy_j();
        let ae = attributed_j(&prepared.facility);
        deltas.push((ae - last_attr, te - last_true));
        (last_true, last_attr) = (te, ae);
    }
    let outcome = prepared.finish();
    crate::runner::write_trace(
        "drift_sweep",
        &format!(
            "{}-{}",
            crate::runner::slug(scenario.name),
            if banked { "bank" } else { "single" }
        ),
        &cfg.telemetry,
    );

    // Per-bucket error, normalized by the cell's mean true delta (see
    // the note next to [`ERR_FLOOR`] for why not each bucket's own).
    let mean_dt = deltas.iter().map(|d| d.1).sum::<f64>() / buckets.max(1) as f64;
    let errs: Vec<f64> = deltas
        .iter()
        .map(|&(da, dt)| if mean_dt > 1e-9 { (da - dt).abs() / mean_dt } else { 0.0 })
        .collect();

    // Steady window: after model warm-up, before the first shift.
    let first = edge_buckets.first().copied().unwrap_or(buckets);
    let warm = (first / 3).max(2).min(first);
    let mean = |r: &[f64]| {
        if r.is_empty() { 0.0 } else { r.iter().sum::<f64>() / r.len() as f64 }
    };
    let steady_err =
        if warm < first { mean(&errs[warm..first]) } else { mean(&errs[..first.max(1)]) };
    let post_err = if first < buckets { mean(&errs[first..]) } else { steady_err };

    let degrade = outcome.degrade_stats();
    let completions = outcome.stats.borrow().completions().len();
    DriftCell {
        scenario: scenario.name.to_string(),
        banked,
        steady_err,
        post_err,
        bound: 0.0,
        edges: edge_buckets.iter().map(|&b| b as f64 * BUCKET_MS as f64 / 1e3).collect(),
        edge_buckets,
        recovery_buckets: Vec::new(),
        recovered_all: false,
        err_curve: errs,
        drift_events: degrade.drift_events,
        model_switches: degrade.model_switches,
        quarantines: degrade.models_quarantined,
        refits_rejected: degrade.refits_rejected,
        stale_resets: degrade.stale_model_resets,
        faults_injected: outcome.fault_counts().iter().sum(),
        completions,
    }
}

/// Grades a cell against the rung's shared recovery bound: per edge,
/// the first bucket at or after the edge back under the bound, searched
/// up to the next edge (fast square waves) or the recovery budget,
/// whichever is shorter. Both cells of a rung are graded against the
/// same bound so "the bank recovers, the baseline does not" is a
/// statement about the models, not about two different yardsticks.
pub fn apply_bound(cell: &mut DriftCell, bound: f64) {
    let buckets = cell.err_curve.len();
    cell.bound = bound;
    cell.recovery_buckets = cell
        .edge_buckets
        .iter()
        .enumerate()
        .map(|(i, &e)| {
            let window_end = cell
                .edge_buckets
                .get(i + 1)
                .copied()
                .unwrap_or(buckets)
                .min(e + RECOVERY_BUCKETS + 1)
                .min(buckets);
            (e..window_end).position(|b| cell.err_curve[b] <= bound)
        })
        .collect();
    cell.recovered_all = cell.recovery_buckets.iter().all(Option::is_some);
}

/// Runs the ladder and prints the grid.
pub fn run(scale: Scale) -> DriftSweep {
    banner("drift-sweep", "model bank vs single model across a regime-shift ladder");
    let mut lab = Lab::new();
    let cal = lab.calibration("sandybridge");

    // Every (rung × engine) pair is an independent seeded simulation.
    let tasks: Vec<_> = SCENARIOS
        .iter()
        .flat_map(|sc| [(sc, false), (sc, true)])
        .map(|(sc, banked)| {
            let cal = cal.clone();
            move || run_cell(scale, sc, banked, &cal)
        })
        .collect();
    let cells: Vec<DriftCell> = crate::runner::run_parallel(crate::runner::jobs(), tasks)
        .into_iter()
        .collect::<Result<_, _>>()
        .unwrap_or_else(|e| panic!("drift-sweep cell failed: {e}"));

    let rows: Vec<DriftRungRow> = SCENARIOS
        .iter()
        .zip(cells.chunks_exact(2))
        .map(|(sc, pair)| {
            let (mut single, mut bank) = (pair[0].clone(), pair[1].clone());
            // Shared bound from the pooled pre-shift steady error: both
            // engines see identical arrivals until the first shift, so
            // pooling halves the estimator noise without favoring either.
            let steady = 0.5 * (single.steady_err + bank.steady_err);
            let bound = (RECOVERY_FACTOR * steady).max(ERR_FLOOR);
            apply_bound(&mut single, bound);
            apply_bound(&mut bank, bound);
            let bank_recovered = bank.recovered_all;
            let single_diverged =
                !sc.shifting() || single.post_err >= DIVERGE_FACTOR * bank.post_err;
            DriftRungRow {
                scenario: sc.name.to_string(),
                shifts: single.edges.len(),
                single,
                bank,
                bank_recovered,
                single_diverged,
            }
        })
        .collect();

    let mut table = Table::new([
        "scenario", "shifts", "steady 1m/bank", "post 1m/bank", "bank recovery", "1m diverged",
        "bank det/sw/q",
    ]);
    for r in &rows {
        let worst = r
            .bank
            .recovery_buckets
            .iter()
            .map(|o| o.map_or("x".to_string(), |n| n.to_string()))
            .collect::<Vec<_>>()
            .join(",");
        table.row([
            r.scenario.clone(),
            r.shifts.to_string(),
            format!("{} / {}", pct(r.single.steady_err), pct(r.bank.steady_err)),
            format!("{} / {}", pct(r.single.post_err), pct(r.bank.post_err)),
            if r.shifts == 0 { "-".to_string() } else { format!("[{worst}] buckets") },
            if r.shifts == 0 {
                "-".to_string()
            } else if r.single_diverged {
                "yes".to_string()
            } else {
                "NO".to_string()
            },
            format!(
                "{}/{}/{}",
                r.bank.drift_events, r.bank.model_switches, r.bank.quarantines
            ),
        ]);
    }
    println!("{table}");

    let bank_recovered_all = rows.iter().all(|r| r.bank_recovered);
    let single_stayed_diverged = rows.iter().all(|r| r.single_diverged);
    let bank_steady_ok = rows
        .iter()
        .find(|r| r.shifts == 0)
        .is_none_or(|r| r.bank.steady_err <= (r.single.steady_err * 1.5).max(ERR_FLOOR));
    println!(
        "bank recovery (≤{RECOVERY_BUCKETS} buckets, {RECOVERY_FACTOR}x steady): {} | \
         single-model divergence: {} | steady overhead: {}",
        if bank_recovered_all { "HELD" } else { "MISSED" },
        if single_stayed_diverged { "DIVERGED (as expected)" } else { "RECOVERED (unexpected)" },
        if bank_steady_ok { "NONE" } else { "REGRESSED" },
    );
    // Written before the acceptance asserts: a failed run still dumps
    // its full error curves for post-mortem inspection.
    let record = DriftSweep { rows, bank_recovered_all, single_stayed_diverged, bank_steady_ok };
    write_record("drift_sweep", &record);
    assert!(bank_recovered_all, "model bank failed to recover after a regime shift");
    assert!(
        single_stayed_diverged,
        "single-model baseline unexpectedly matched the bank — the ladder is not shifting regimes"
    );
    assert!(bank_steady_ok, "model bank regressed steady-state accuracy");
    record
}
