//! Fig. 3 — aligned measurement/model power traces.
//!
//! After the Fig. 2 alignment, shifting each on-chip meter reading back
//! by the estimated delay should lay it on top of the model-estimate
//! series. This experiment prints both series over a ~600 ms window.

use crate::output::{banner, write_record, Table};
use crate::{Lab, Scale};
use serde::Serialize;
use simkern::SimDuration;
use workloads::{run_app, LoadLevel, RunConfig, WorkloadKind};

/// One aligned sample pair.
#[derive(Debug, Clone, Serialize)]
pub struct TracePoint {
    /// Position within the trace, ms.
    pub t_ms: f64,
    /// Meter reading re-aligned to this instant (package power, W).
    pub measured_w: f64,
    /// Model estimate for the same window (package power, W).
    pub modeled_w: f64,
}

/// The Fig. 3 record.
#[derive(Debug, Clone, Serialize)]
pub struct Fig3 {
    /// Estimated meter delay used for the shift, ms.
    pub delay_ms: f64,
    /// The aligned series.
    pub points: Vec<TracePoint>,
    /// Mean absolute difference between the two series, W.
    pub mean_abs_diff_w: f64,
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig3 {
    banner("fig3", "aligned measurement/model power traces (on-chip meter)");
    let mut lab = Lab::new();
    let spec = lab.spec("sandybridge");
    let cal = lab.calibration("sandybridge");
    let mut cfg = RunConfig::new(spec);
    cfg.sched = crate::runner::sched_kind();
    cfg.meter = Some("on-chip");
    cfg.align_step = Some(SimDuration::from_millis(1));
    cfg.max_meter_delay = Some(SimDuration::from_millis(20));
    cfg.duration = SimDuration::from_secs(scale.run_secs().max(4));
    cfg.load = LoadLevel::Half;
    let outcome = run_app(WorkloadKind::GaeHybrid, &cfg, &cal);
    let f = outcome.facility.borrow();
    let delay = f.aligned_delay().expect("alignment available");
    let period = f.meter_period();
    let pkg_idle = cal.meter_idle("on-chip");

    let mut points = Vec::new();
    let mut diff_sum = 0.0;
    for r in f.recent_readings().iter().rev().take(60).rev() {
        // Shift the reading back by the estimated delay to find the
        // window it (supposedly) describes.
        let end = r.arrived_at - delay;
        let start = end - period;
        if let Some(model_active) = f.modeled_power_between(start, end) {
            let modeled = model_active + pkg_idle;
            diff_sum += (r.watts - modeled).abs();
            points.push(TracePoint {
                t_ms: end.as_millis_f64(),
                measured_w: r.watts,
                modeled_w: modeled,
            });
        }
    }
    assert!(!points.is_empty(), "no aligned points collected");
    let mean_abs_diff_w = diff_sum / points.len() as f64;
    let base = points[0].t_ms;
    let mut table = Table::new(["t (ms)", "measured (W)", "modeled (W)"]);
    for p in points.iter().step_by(points.len().div_ceil(25).max(1)) {
        table.row([
            format!("{:.0}", p.t_ms - base),
            format!("{:.1}", p.measured_w),
            format!("{:.1}", p.modeled_w),
        ]);
    }
    println!("{table}");
    println!("mean |measured - modeled| = {mean_abs_diff_w:.2} W over {} samples", points.len());
    let record = Fig3 {
        delay_ms: delay.as_millis_f64(),
        points,
        mean_abs_diff_w,
    };
    write_record("fig3", &record);
    record
}
