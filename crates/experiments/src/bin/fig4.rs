//! Regenerates the paper's fig4 artifact. Pass `--quick` for a fast run.
fn main() {
    let _ = experiments::fig04::run(experiments::Scale::from_args());
}
