//! Regenerates the fault-injection robustness sweep. Pass `--quick` for
//! a fast run.
fn main() {
    let _ = experiments::fault_sweep::run(experiments::Scale::from_args());
}
