//! Interactive exploration tool: run any workload/machine/approach
//! combination and print the full accounting summary.
//!
//! ```sh
//! cargo run --release -p experiments --bin explore -- \
//!     --machine sandybridge --workload solr --load half \
//!     --approach recalibrated --secs 10 --seed 7
//! ```

use experiments::{cache, Lab};
use power_containers::Approach;
use simkern::SimDuration;
use workloads::{run_app, LoadLevel, RunConfig, WorkloadKind};

struct Args {
    machine: String,
    workload: WorkloadKind,
    load: LoadLevel,
    approach: Approach,
    secs: u64,
    seed: u64,
    conditioning: Option<f64>,
    sched: ossim::SchedulerKind,
}

fn usage() -> ! {
    eprintln!(
        "usage: explore [--machine woodcrest|westmere|sandybridge] \
         [--workload rsa|solr|webwork|stress|gae|hybrid] \
         [--load peak|half|<fraction>] \
         [--approach core|chipshare|recalibrated] \
         [--secs N] [--seed N] [--cap WATTS] [--sched rr|priority|cfs]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        machine: "sandybridge".to_string(),
        workload: WorkloadKind::Solr,
        load: LoadLevel::Peak,
        approach: Approach::ChipShare,
        secs: 10,
        seed: 42,
        conditioning: None,
        sched: ossim::SchedulerKind::RoundRobin,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else { usage() };
        match flag.as_str() {
            "--machine" => args.machine = value,
            "--workload" => {
                args.workload = match value.as_str() {
                    "rsa" => WorkloadKind::RsaCrypto,
                    "solr" => WorkloadKind::Solr,
                    "webwork" => WorkloadKind::WeBWorK,
                    "stress" => WorkloadKind::Stress,
                    "gae" => WorkloadKind::GaeVosao,
                    "hybrid" => WorkloadKind::GaeHybrid,
                    _ => usage(),
                }
            }
            "--load" => {
                args.load = match value.as_str() {
                    "peak" => LoadLevel::Peak,
                    "half" => LoadLevel::Half,
                    other => LoadLevel::Fraction(other.parse().unwrap_or_else(|_| usage())),
                }
            }
            "--approach" => {
                args.approach = match value.as_str() {
                    "core" => Approach::CoreEventsOnly,
                    "chipshare" => Approach::ChipShare,
                    "recalibrated" => Approach::Recalibrated,
                    _ => usage(),
                }
            }
            "--secs" => args.secs = value.parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value.parse().unwrap_or_else(|_| usage()),
            "--cap" => args.conditioning = Some(value.parse().unwrap_or_else(|_| usage())),
            "--sched" => {
                args.sched = ossim::SchedulerKind::parse(&value).unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let lab = Lab::new();
    let spec = lab.spec(&args.machine);
    eprintln!("[calibrating {} ...]", spec.name);
    let cal = cache::calibration_for(&spec, experiments::SEED);

    let mut cfg = RunConfig::new(spec);
    cfg.seed = args.seed;
    cfg.approach = args.approach;
    cfg.load = args.load;
    cfg.duration = SimDuration::from_secs(args.secs);
    cfg.conditioning = args.conditioning.map(power_containers::ConditioningPolicy::new);
    cfg.sched = args.sched;
    let outcome = run_app(args.workload, &cfg, &cal);

    let secs = outcome.end.as_secs_f64();
    let stats = outcome.stats.borrow();
    let f = outcome.facility.borrow();
    let c = f.containers();
    println!("workload          : {} on {} ({:?})", args.workload, args.machine, args.approach);
    println!("offered / done    : {:.0}/s offered, {:.0}/s completed",
        outcome.offered_rate,
        stats.completions().len() as f64 / secs);
    println!("utilization       : {:.1}%", outcome.mean_utilization() * 100.0);
    println!("measured active   : {:.1} W", outcome.measured_active_power_w());
    println!("attributed        : {:.1} W (validation error {:.1}%)",
        outcome.attributed_energy_j() / secs,
        outcome.validation_error() * 100.0);
    println!("background share  : {:.1}%",
        100.0 * c.background().energy_j()
            / (c.background().energy_j() + c.total_request_energy_j()).max(1e-9));
    let resp = stats.response_summary(None);
    println!("response time     : mean {:.1} ms, max {:.1} ms over {} requests",
        resp.mean() * 1e3, resp.max() * 1e3, resp.count());
    let energies: Vec<f64> = c.records().iter().map(|r| r.energy_j + r.io_energy_j).collect();
    if !energies.is_empty() {
        let mean = energies.iter().sum::<f64>() / energies.len() as f64;
        let p95 = analysis::stats::quantile(&energies, 0.95).unwrap_or(0.0);
        println!("request energy    : mean {:.1} mJ, p95 {:.1} mJ", mean * 1e3, p95 * 1e3);
    }
    println!("maintenance ops   : {} ({} refits)", f.maintenance_ops(), f.refits());
    if let Some(d) = f.aligned_delay() {
        println!("meter alignment   : {d} estimated delay");
    }
}
