//! Regenerates the paper's fig7 artifact. Pass `--quick` for a fast run.
fn main() {
    let _ = experiments::fig07::run(experiments::Scale::from_args());
}
