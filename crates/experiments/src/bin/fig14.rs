//! Regenerates the paper's fig14 artifact. Pass `--quick` for a fast run.
fn main() {
    let _ = experiments::fig14::run(experiments::Scale::from_args());
}
