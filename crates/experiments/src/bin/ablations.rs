//! Regenerates the design-choice ablation study. Pass `--quick` for a fast run.
fn main() {
    let _ = experiments::ablations::run(experiments::Scale::from_args());
}
