//! Runs the drift study: the self-calibrating model bank vs the single
//! rolling model across a seeded ladder of regime shifts.

use experiments::{drift_sweep, runner, Scale};

fn main() {
    runner::set_jobs(runner::jobs_from_args());
    runner::set_trace_dir(runner::trace_dir_from_args());
    drift_sweep::run(Scale::from_args());
}
