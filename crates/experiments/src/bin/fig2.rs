//! Regenerates the paper's fig2 artifact. Pass `--quick` for a fast run.
fn main() {
    let _ = experiments::fig02::run(experiments::Scale::from_args());
}
