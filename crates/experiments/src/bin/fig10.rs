//! Regenerates the paper's fig10 artifact. Pass `--quick` for a fast run.
fn main() {
    let _ = experiments::fig10::run(experiments::Scale::from_args());
}
