//! Regenerates the megafleet capacity sweep (nodes × requests). Pass
//! `--quick` for the CI smoke grid, `--shards N` for intra-cell worker
//! threads, `--jobs N` for concurrent cells, `--trace DIR` for
//! telemetry export. Results are byte-identical at any shard and job
//! count.
use experiments::runner;

fn main() {
    runner::set_jobs(runner::jobs_from_args());
    runner::set_shards(runner::shards_from_args());
    runner::set_trace_dir(runner::trace_dir_from_args());
    let _ = experiments::megafleet::run(experiments::Scale::from_args());
}
