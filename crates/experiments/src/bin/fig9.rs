//! Regenerates the paper's fig9 artifact. Pass `--quick` for a fast run.
fn main() {
    let _ = experiments::fig09::run(experiments::Scale::from_args());
}
