//! Regenerates the paper's coefficients artifact. Pass `--quick` for a fast run.
fn main() {
    let _ = experiments::coefficients::run(experiments::Scale::from_args());
}
