//! Regenerates the paper's fig11 artifact. Pass `--quick` for a fast run.
fn main() {
    let _ = experiments::fig11::run(experiments::Scale::from_args());
}
