//! Validates the regenerated results against the paper's qualitative
//! claims. Reads the JSON records under `results/` (produce them with
//! `run_all` first) and prints PASS/FAIL per claim; exits non-zero if any
//! claim fails.
//!
//! ```sh
//! cargo run --release -p experiments --bin run_all
//! cargo run --release -p experiments --bin check_claims
//! ```

use serde_json::Value;

struct Checker {
    failures: u32,
    checks: u32,
}

impl Checker {
    fn claim(&mut self, name: &str, ok: bool, detail: String) {
        self.checks += 1;
        if ok {
            println!("PASS  {name} ({detail})");
        } else {
            self.failures += 1;
            println!("FAIL  {name} ({detail})");
        }
    }
}

fn load(id: &str) -> Option<Value> {
    let path = experiments::output::results_dir().join(format!("{id}.json"));
    let text = std::fs::read_to_string(&path).ok()?;
    serde_json::from_str(&text).ok()
}

fn main() {
    let mut c = Checker { failures: 0, checks: 0 };

    if let Some(fig1) = load("fig1") {
        let sb = &fig1["machines"][0]["increments_w"];
        let first = sb[0].as_f64().unwrap_or(0.0);
        let second = sb[1].as_f64().unwrap_or(0.0);
        c.claim(
            "fig1: SandyBridge first-core step exceeds later steps",
            first > second + 3.0,
            format!("{first:.1} W vs {second:.1} W"),
        );
        let wc = &fig1["machines"][1]["increments_w"];
        c.claim(
            "fig1: Woodcrest pays maintenance on the first two tasks",
            wc[1].as_f64().unwrap_or(0.0) > wc[2].as_f64().unwrap_or(99.0) + 3.0,
            format!("{} vs {}", wc[1], wc[2]),
        );
    } else {
        c.claim("fig1: record present", false, "missing".into());
    }

    if let Some(fig2) = load("fig2") {
        for scan in fig2["scans"].as_array().unwrap_or(&vec![]) {
            let name = scan["meter"].as_str().unwrap_or("?").to_string();
            let true_d = scan["true_delay_ms"].as_f64().unwrap_or(0.0);
            let est = scan["estimated_delay_ms"].as_f64().unwrap_or(-1.0);
            c.claim(
                &format!("fig2: {name} delay recovered"),
                (est - true_d).abs() <= true_d.max(1.0) * 0.2 + 1.0,
                format!("true {true_d} ms, estimated {est} ms"),
            );
        }
    }

    if let Some(fig4) = load("fig4") {
        let stages = fig4["stages"].as_array().cloned().unwrap_or_default();
        c.claim(
            "fig4: all five request stages attributed",
            stages.len() == 5
                && stages.iter().all(|s| s["energy_j"].as_f64().unwrap_or(0.0) > 0.0),
            format!("{} stages", stages.len()),
        );
    }

    if let Some(fig8) = load("fig8") {
        for wc in fig8["worst_case"].as_array().unwrap_or(&vec![]) {
            let machine = wc[0].as_str().unwrap_or("?").to_string();
            let e = &wc[1];
            let (e1, e2, e3) = (
                e[0].as_f64().unwrap_or(0.0),
                e[1].as_f64().unwrap_or(0.0),
                e[2].as_f64().unwrap_or(0.0),
            );
            c.claim(
                &format!("fig8: {machine} worst-case error improves #1→#2→#3"),
                e1 >= e2 - 0.01 && e2 >= e3 - 0.01,
                format!("{:.1}% / {:.1}% / {:.1}%", e1 * 100.0, e2 * 100.0, e3 * 100.0),
            );
            c.claim(
                &format!("fig8: {machine} recalibrated error ≤ 12% (paper ≤ 9%)"),
                e3 <= 0.12,
                format!("{:.1}%", e3 * 100.0),
            );
        }
    }

    if let Some(fig9) = load("fig9") {
        let peak = fig9["cells"][0]["background_share"].as_f64().unwrap_or(0.0);
        c.claim(
            "fig9: GAE background is a substantial share (paper ~1/3)",
            (0.15..0.5).contains(&peak),
            format!("{:.0}% at peak", peak * 100.0),
        );
    }

    if let Some(fig10) = load("fig10") {
        for s in fig10["scenarios"].as_array().unwrap_or(&vec![]) {
            let name = s["scenario"].as_str().unwrap_or("?").to_string();
            let w = &s["worst_errors"];
            let containers = w[0].as_f64().unwrap_or(1.0);
            let cpu = w[1].as_f64().unwrap_or(0.0);
            let rate = w[2].as_f64().unwrap_or(0.0);
            c.claim(
                &format!("fig10: containers predict best ({name})"),
                containers <= cpu + 0.01 && containers <= rate + 0.01 && containers <= 0.11,
                format!(
                    "containers {:.1}%, cpu {:.1}%, rate {:.1}%",
                    containers * 100.0,
                    cpu * 100.0,
                    rate * 100.0
                ),
            );
        }
    }

    if let Some(fig11) = load("fig11") {
        let runs = fig11["runs"].as_array().cloned().unwrap_or_default();
        let orig = runs.first().map(|r| r["frac_above_target"].as_f64().unwrap_or(0.0));
        let cond = runs.get(1).map(|r| r["frac_above_target"].as_f64().unwrap_or(1.0));
        c.claim(
            "fig11: conditioning caps the virus spikes",
            matches!((orig, cond), (Some(o), Some(cd)) if o > 0.05 && cd < 0.02),
            format!("above-target buckets {orig:?} → {cond:?}"),
        );
    }

    if let Some(fig12) = load("fig12") {
        let normal = fig12["normal_slowdown"].as_f64().unwrap_or(1.0);
        let virus = fig12["virus_slowdown"].as_f64().unwrap_or(0.0);
        let full = fig12["full_machine_slowdown"].as_f64().unwrap_or(0.0);
        c.claim(
            "fig12: only viruses pay (normal < full-machine < virus)",
            normal < full && virus > full,
            format!(
                "normal {:.1}%, full-machine {:.1}%, virus {:.1}%",
                normal * 100.0,
                full * 100.0,
                virus * 100.0
            ),
        );
    }

    if let Some(fig13) = load("fig13") {
        let rows = fig13["rows"].as_array().cloned().unwrap_or_default();
        let ratio_of = |name: &str| {
            rows.iter()
                .find(|r| r["workload"].as_str() == Some(name))
                .and_then(|r| r["ratio"].as_f64())
                .unwrap_or(f64::NAN)
        };
        let rsa = ratio_of("RSA-crypto");
        let stress = ratio_of("Stress");
        c.claim(
            "fig13: RSA has the strongest new-machine affinity (paper 0.22)",
            rows.iter().all(|r| r["ratio"].as_f64().unwrap_or(0.0) >= rsa) && rsa < 0.3,
            format!("RSA {rsa:.2}"),
        );
        c.claim(
            "fig13: Stress is the most machine-indifferent workload",
            rows.iter().all(|r| r["ratio"].as_f64().unwrap_or(1.0) <= stress),
            format!("Stress {stress:.2}"),
        );
    }

    if let Some(fig14) = load("fig14") {
        let p = fig14["policies"].as_array().cloned().unwrap_or_default();
        let total = |i: usize| p[i]["total_w"].as_f64().unwrap_or(0.0);
        c.claim(
            "fig14: workload-aware < machine-aware < simple balance",
            total(2) < total(1) && total(1) < total(0),
            format!("{:.1} / {:.1} / {:.1} W", total(0), total(1), total(2)),
        );
        let saving = fig14["saving_vs_simple"].as_f64().unwrap_or(0.0);
        c.claim(
            "fig14: double-digit energy saving vs simple balance",
            saving >= 0.10,
            format!("{:.1}%", saving * 100.0),
        );
    }

    if let Some(t1) = load("table1") {
        let rows = t1["rows"].as_array().cloned().unwrap_or_default();
        let mean_of = |i: usize| -> f64 {
            rows[i]["by_app"]
                .as_array()
                .map(|apps| {
                    apps.iter().map(|a| a[1].as_f64().unwrap_or(0.0)).sum::<f64>()
                        / apps.len().max(1) as f64
                })
                .unwrap_or(0.0)
        };
        c.claim(
            "table1: simple balance has the worst response times",
            mean_of(0) > mean_of(1) && mean_of(0) > mean_of(2),
            format!("{:.0} vs {:.0} / {:.0} ms", mean_of(0), mean_of(1), mean_of(2)),
        );
    }

    if let Some(a) = load("ablations") {
        for row in a["rows"].as_array().unwrap_or(&vec![]) {
            let name = row["mechanism"].as_str().unwrap_or("?").to_string();
            let with = row["with_mechanism"].as_f64().unwrap_or(1.0);
            let without = row["without_mechanism"].as_f64().unwrap_or(0.0);
            c.claim(
                &format!("ablation: removing '{name}' hurts"),
                without > with,
                format!("{:.1}% → {:.1}%", with * 100.0, without * 100.0),
            );
        }
    }

    if let Some(d) = load("dvfs") {
        let runs = d["runs"].as_array().cloned().unwrap_or_default();
        let normal = |i: usize| runs[i]["normal_response_ms"].as_f64().unwrap_or(0.0);
        c.claim(
            "dvfs: per-request conditioning hurts normal requests less than machine DVFS",
            normal(1) < normal(2),
            format!("{:.1} vs {:.1} ms", normal(1), normal(2)),
        );
    }

    if let Some(a) = load("anomaly") {
        let recall = a["recall"].as_f64().unwrap_or(0.0);
        let precision = a["precision"].as_f64().unwrap_or(0.0);
        c.claim(
            "anomaly: live reports pinpoint the power viruses",
            recall > 0.7 && precision > 0.6,
            format!("recall {:.0}%, precision {:.0}%", recall * 100.0, precision * 100.0),
        );
    }

    println!("\n{} claims checked, {} failed", c.checks, c.failures);
    if c.failures > 0 {
        std::process::exit(1);
    }
}
