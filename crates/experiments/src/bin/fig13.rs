//! Regenerates the paper's fig13 artifact. Pass `--quick` for a fast run.
fn main() {
    let _ = experiments::fig13::run(experiments::Scale::from_args());
}
