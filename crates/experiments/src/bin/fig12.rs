//! Regenerates the paper's fig12 artifact. Pass `--quick` for a fast run.
fn main() {
    let _ = experiments::fig12::run(experiments::Scale::from_args());
}
