//! Diurnal traffic / flash-crowd / elastic-autoscaler sweep binary.

use experiments::runner;

fn main() {
    runner::set_jobs(runner::jobs_from_args());
    runner::set_shards(runner::shards_from_args());
    runner::set_trace_dir(runner::trace_dir_from_args());
    let _ = experiments::diurnal_sweep::run(experiments::Scale::from_args());
}
