//! Regenerates the cross-scheduler attribution conformance sweep. Pass
//! `--quick` for a fast run, `--trace DIR` for decision traces.
fn main() {
    experiments::runner::set_jobs(experiments::runner::jobs_from_args());
    experiments::runner::set_trace_dir(experiments::runner::trace_dir_from_args());
    let _ = experiments::sched_sweep::run(experiments::Scale::from_args());
}
