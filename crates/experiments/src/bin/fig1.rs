//! Regenerates the paper's fig1 artifact. Pass `--quick` for a fast run.
fn main() {
    let _ = experiments::fig01::run(experiments::Scale::from_args());
}
