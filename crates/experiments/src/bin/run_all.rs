//! Runs every experiment in sequence, regenerating all paper artifacts.
//! Pass `--quick` for a fast smoke-test sweep.
fn main() {
    let scale = experiments::Scale::from_args();
    let t0 = std::time::Instant::now();
    let _ = experiments::coefficients::run(scale);
    let _ = experiments::overhead::run(scale);
    let _ = experiments::fig01::run(scale);
    let _ = experiments::fig02::run(scale);
    let _ = experiments::fig03::run(scale);
    let _ = experiments::fig04::run(scale);
    let _ = experiments::fig05::run(scale);
    let _ = experiments::fig06::run(scale);
    let _ = experiments::fig07::run(scale);
    let _ = experiments::fig08::run(scale);
    let _ = experiments::fig09::run(scale);
    let _ = experiments::fig10::run(scale);
    let _ = experiments::fig11::run(scale);
    let _ = experiments::fig12::run(scale);
    let _ = experiments::fig13::run(scale);
    let _ = experiments::fig14::run(scale);
    let _ = experiments::table1::run(scale);
    let _ = experiments::ablations::run(scale);
    let _ = experiments::dvfs::run(scale);
    let _ = experiments::anomaly::run(scale);
    eprintln!("[all experiments done in {:.1?}]", t0.elapsed());
}
