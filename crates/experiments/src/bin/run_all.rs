//! Runs every experiment, regenerating all paper artifacts.
//!
//! Flags:
//! * `--quick` — fast smoke-test scale (used by tests and CI).
//! * `--jobs N` — run up to N experiments (and their sweep cells)
//!   concurrently. Every experiment owns its seed, so `results/*.json`
//!   are byte-identical at any job count.
//! * `--shards N` — partition each cluster cell's node set across N
//!   worker threads between dispatcher ticks (intra-cell parallelism,
//!   orthogonal to `--jobs`). Results are byte-identical at any shard
//!   count.
//! * `--only a,b,c` — run only the named experiments.
//! * `--trace DIR` — export deterministic telemetry traces from the
//!   instrumented experiments (fig05, fault_sweep) under `DIR`, one
//!   `.jsonl` + Perfetto-loadable `.trace.json` pair per sweep cell.
//!   Traces carry only simulated timestamps, so they too are
//!   byte-identical at any job count.
//! * `--obs` — run every cluster experiment with the always-on
//!   observability plane (streaming sketches + energy-SLO burn-rate
//!   monitors); the summary table gains p99 energy-per-request and
//!   alert columns fed from the obs ledger.
//! * `--sched rr|priority|cfs` — boot every experiment kernel with the
//!   named scheduling policy (default `rr`, the paper's round-robin).
//!   Calibration always runs round-robin so the shared calibration
//!   cache stays scheduler-independent; `sched_sweep` ignores this flag
//!   and sweeps all policies itself.
//!
//! Per-experiment status, wall time and graceful-degradation decisions
//! are collected into a summary table; the process exits non-zero if any
//! experiment failed.

use experiments::output::Table;
use experiments::{runner, Scale};
use std::time::{Duration, Instant};

/// One registered experiment: display name plus its entry point.
type Experiment = (&'static str, fn(Scale));

/// Every experiment the harness knows, in canonical order.
const EXPERIMENTS: &[Experiment] = &[
    ("coefficients", |s| {
        experiments::coefficients::run(s);
    }),
    ("overhead", |s| {
        experiments::overhead::run(s);
    }),
    ("fig01", |s| {
        experiments::fig01::run(s);
    }),
    ("fig02", |s| {
        experiments::fig02::run(s);
    }),
    ("fig03", |s| {
        experiments::fig03::run(s);
    }),
    ("fig04", |s| {
        experiments::fig04::run(s);
    }),
    ("fig05", |s| {
        experiments::fig05::run(s);
    }),
    ("fig06", |s| {
        experiments::fig06::run(s);
    }),
    ("fig07", |s| {
        experiments::fig07::run(s);
    }),
    ("fig08", |s| {
        experiments::fig08::run(s);
    }),
    ("fig09", |s| {
        experiments::fig09::run(s);
    }),
    ("fig10", |s| {
        experiments::fig10::run(s);
    }),
    ("fig11", |s| {
        experiments::fig11::run(s);
    }),
    ("fig12", |s| {
        experiments::fig12::run(s);
    }),
    ("fig13", |s| {
        experiments::fig13::run(s);
    }),
    ("fig14", |s| {
        experiments::fig14::run(s);
    }),
    ("table1", |s| {
        experiments::table1::run(s);
    }),
    ("ablations", |s| {
        experiments::ablations::run(s);
    }),
    ("dvfs", |s| {
        experiments::dvfs::run(s);
    }),
    ("anomaly", |s| {
        experiments::anomaly::run(s);
    }),
    ("fault_sweep", |s| {
        experiments::fault_sweep::run(s);
    }),
    ("scale_sweep", |s| {
        experiments::scale_sweep::run(s);
    }),
    ("chaos_sweep", |s| {
        experiments::chaos_sweep::run(s);
    }),
    ("drift_sweep", |s| {
        experiments::drift_sweep::run(s);
    }),
    ("megafleet", |s| {
        experiments::megafleet::run(s);
    }),
    ("obs_sweep", |s| {
        experiments::obs_sweep::run(s);
    }),
    ("sched_sweep", |s| {
        experiments::sched_sweep::run(s);
    }),
    ("diurnal_sweep", |s| {
        experiments::diurnal_sweep::run(s);
    }),
];

/// Parses `--only a,b,c` (repeatable, comma-separated) from process args.
fn only_from_args() -> Option<Vec<String>> {
    let args: Vec<String> = std::env::args().collect();
    let mut names = Vec::new();
    let mut seen = false;
    for (i, a) in args.iter().enumerate() {
        let list = if let Some(v) = a.strip_prefix("--only=") {
            Some(v)
        } else if a == "--only" {
            args.get(i + 1).map(|s| s.as_str())
        } else {
            None
        };
        if let Some(list) = list {
            seen = true;
            names.extend(list.split(',').filter(|s| !s.is_empty()).map(str::to_string));
        }
    }
    seen.then_some(names)
}

fn main() {
    let scale = Scale::from_args();
    let jobs = runner::jobs_from_args();
    runner::set_jobs(jobs);
    runner::set_shards(runner::shards_from_args());
    runner::set_trace_dir(runner::trace_dir_from_args());
    runner::set_obs(runner::obs_from_args());
    runner::set_sched(runner::sched_from_args());
    workloads::reset_degrade_ledger();
    let only = only_from_args();
    if let Some(names) = &only {
        for name in names {
            if !EXPERIMENTS.iter().any(|(n, _)| n == name) {
                eprintln!("error: unknown experiment `{name}` in --only");
                eprintln!(
                    "known: {}",
                    EXPERIMENTS.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(", ")
                );
                std::process::exit(2);
            }
        }
    }
    let selected: Vec<&Experiment> = EXPERIMENTS
        .iter()
        .filter(|(name, _)| only.as_ref().is_none_or(|o| o.iter().any(|x| x == name)))
        .collect();
    // Warm the calibration caches serially before fanning out, so
    // concurrent experiments load instead of redundantly recalibrating.
    experiments::prewarm_calibrations();
    let t0 = Instant::now();
    let tasks: Vec<_> = selected
        .iter()
        .map(|(name, f)| {
            let f = *f;
            move || -> Duration {
                // Harness runs on this worker thread (and any sweep cells
                // it fans out further report through their own scopes
                // only if they re-enter; serial cells inherit this one)
                // fold their DegradeStats under the experiment's name.
                let _scope = workloads::DegradeScope::enter(name);
                let t = Instant::now();
                f(scale);
                t.elapsed()
            }
        })
        .collect();
    let outcomes = runner::run_parallel(jobs, tasks);
    let total = t0.elapsed();
    // Graceful-degradation decisions per experiment, harvested from the
    // ledger every harness run reports into (satellite of the telemetry
    // work: DegradeStats surface in the status table, not only in
    // individual experiment records).
    let degraded: std::collections::BTreeMap<String, power_containers::DegradeStats> =
        workloads::degrade_ledger().into_iter().collect();
    let requests: std::collections::BTreeMap<String, u64> =
        workloads::request_ledger().into_iter().collect();
    let obs: std::collections::BTreeMap<String, workloads::ObsDigest> =
        workloads::obs_ledger().into_iter().collect();
    let autoscale: std::collections::BTreeMap<String, workloads::AutoscaleDigest> =
        workloads::autoscale_ledger().into_iter().collect();
    let mut table = Table::new([
        "experiment",
        "status",
        "wall time",
        "req/s",
        "degraded",
        "retried",
        "shed",
        "drift",
        "p99 J/req",
        "alerts",
        "resizes",
        "brownout",
    ]);
    let mut failed = 0usize;
    for ((name, _), outcome) in selected.iter().zip(&outcomes) {
        let (deg, retried, shed, drift) = match degraded.get(*name) {
            None => ("-".to_string(), "-".to_string(), "-".to_string(), "-".to_string()),
            Some(d) => (
                if d.is_clean() { "clean".to_string() } else { format!("{} decisions", d.total()) },
                d.requests_retried.to_string(),
                d.requests_shed.to_string(),
                d.drift_column(),
            ),
        };
        let (p99_j, alerts) = match obs.get(*name) {
            None => ("-".to_string(), "-".to_string()),
            Some(o) => (format!("{:.4}", o.p99_j_per_req), o.alerts.to_string()),
        };
        // Elasticity columns: completed resizes (outs/ins, with upgrade
        // pairs noted) and brownout-ladder climbs + optional sheds.
        let (resizes, brownout) = match autoscale.get(*name) {
            None => ("-".to_string(), "-".to_string()),
            Some(a) => (
                if a.upgrades > 0 {
                    format!("{}/{} ({} upg)", a.scale_outs, a.scale_ins, a.upgrades)
                } else {
                    format!("{}/{}", a.scale_outs, a.scale_ins)
                },
                format!("{} ({} shed)", a.brownout_engagements, a.shed_optional),
            ),
        };
        match outcome {
            Ok(wall) => {
                // Simulated requests pushed through per wall-clock
                // second — the experiment's end-to-end throughput (a
                // report column only; no wall-clock value enters any
                // result record).
                let rps = match requests.get(*name) {
                    Some(&r) if wall.as_secs_f64() > 0.0 => {
                        format!("{:.0}", r as f64 / wall.as_secs_f64())
                    }
                    _ => "-".to_string(),
                };
                table.row([
                    name.to_string(),
                    "ok".to_string(),
                    format!("{wall:.2?}"),
                    rps,
                    deg,
                    retried,
                    shed,
                    drift,
                    p99_j,
                    alerts,
                    resizes,
                    brownout,
                ]);
            }
            Err(msg) => {
                failed += 1;
                let mut msg = msg.replace('\n', " ");
                msg.truncate(60);
                table.row([
                    name.to_string(),
                    "FAILED".to_string(),
                    msg,
                    "-".to_string(),
                    deg,
                    retried,
                    shed,
                    drift,
                    p99_j,
                    alerts,
                    resizes,
                    brownout,
                ]);
            }
        }
    }
    println!();
    println!(
        "== run_all summary: {} experiments, --jobs {jobs}, total {total:.1?} ==",
        selected.len()
    );
    println!("{table}");
    eprintln!("[all experiments done in {total:.1?}]");
    if failed > 0 {
        eprintln!("error: {failed} experiment(s) failed");
        std::process::exit(1);
    }
}
