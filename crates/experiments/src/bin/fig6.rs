//! Regenerates the paper's fig6 artifact. Pass `--quick` for a fast run.
fn main() {
    let _ = experiments::fig06::run(experiments::Scale::from_args());
}
