//! Regenerates the DVFS-vs-conditioning capping study. Pass `--quick` for a fast run.
fn main() {
    let _ = experiments::dvfs::run(experiments::Scale::from_args());
}
