//! Regenerates the paper's table1 artifact. Pass `--quick` for a fast run.
fn main() {
    let _ = experiments::table1::run(experiments::Scale::from_args());
}
