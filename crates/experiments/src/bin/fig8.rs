//! Regenerates the paper's fig8 artifact. Pass `--quick` for a fast run.
fn main() {
    let _ = experiments::fig08::run(experiments::Scale::from_args());
}
