//! Regenerates the anomaly-detection study. Pass `--quick` for a fast run.
fn main() {
    let _ = experiments::anomaly::run(experiments::Scale::from_args());
}
