//! Regenerates the fleet scale sweep (nodes × policy × cap). Pass
//! `--quick` for a fast run.
fn main() {
    let _ = experiments::scale_sweep::run(experiments::Scale::from_args());
}
