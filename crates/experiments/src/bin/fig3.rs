//! Regenerates the paper's fig3 artifact. Pass `--quick` for a fast run.
fn main() {
    let _ = experiments::fig03::run(experiments::Scale::from_args());
}
