//! Regenerates the paper's fig5 artifact. Pass `--quick` for a fast run.
fn main() {
    let _ = experiments::fig05::run(experiments::Scale::from_args());
}
