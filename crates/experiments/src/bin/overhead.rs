//! Regenerates the paper's overhead artifact. Pass `--quick` for a fast run.
fn main() {
    let _ = experiments::overhead::run(experiments::Scale::from_args());
}
