//! Regenerates the chaos ladder (fault mixes × recovery invariants).
//! Pass `--quick` for a fast run.
fn main() {
    let _ = experiments::chaos_sweep::run(experiments::Scale::from_args());
}
