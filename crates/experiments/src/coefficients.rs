//! §4.1 — the calibrated model coefficients.
//!
//! Prints the SandyBridge machine's calibrated offline model the way the
//! paper lists it: the constant idle power plus each coefficient's
//! maximum active-power impact `C·M_max` over the calibration set.

use crate::output::{banner, write_record, Table};
use crate::{Lab, Scale};
use power_containers::{MetricVector, FEATURES};
use serde::Serialize;

/// The coefficients record.
#[derive(Debug, Clone, Serialize)]
pub struct Coefficients {
    /// Machine name.
    pub machine: String,
    /// Measured idle power, Watts.
    pub idle_w: f64,
    /// Per-feature `(name, coefficient, M_max, C·M_max)` rows.
    pub rows: Vec<(String, f64, f64, f64)>,
}

/// Paper-reported `C·M_max` values for SandyBridge, aligned with the
/// feature order (no floating-point value was listed in §4.1).
const PAPER_CMMAX: [Option<f64>; FEATURES] = [
    Some(33.1), // core
    Some(12.4), // ins
    None,       // float (not reported)
    Some(13.9), // cache
    Some(8.2),  // mem
    Some(5.6),  // chipshare
    Some(1.7),  // disk
    Some(5.8),  // net
];

/// Runs the experiment.
pub fn run(_scale: Scale) -> Coefficients {
    banner("coefficients", "calibrated SandyBridge model (C·M_max form, §4.1)");
    let mut lab = Lab::new();
    let cal = lab.calibration("sandybridge");
    let model = cal.model_chipshare.clone();
    // M_max per feature over the calibration samples.
    let mut m_max = [0.0f64; FEATURES];
    for s in cal.set.samples() {
        for (i, v) in s.metrics.as_array().iter().enumerate() {
            m_max[i] = m_max[i].max(*v);
        }
    }
    let mut table = Table::new(["term", "C·M_max (W)", "paper (W)"]);
    table.row(["C_idle".to_string(), format!("{:.1}", model.idle_w()), "26.1".to_string()]);
    let mut rows = Vec::new();
    for i in 0..FEATURES {
        let name = MetricVector::NAMES[i];
        let c = model.coefficients()[i];
        let impact = c * m_max[i];
        table.row([
            format!("C_{name}·M_max"),
            format!("{impact:.1}"),
            PAPER_CMMAX[i].map_or("—".to_string(), |v| format!("{v:.1}")),
        ]);
        rows.push((name.to_string(), c, m_max[i], impact));
    }
    println!("{table}");
    let record = Coefficients {
        machine: "sandybridge".to_string(),
        idle_w: model.idle_w(),
        rows,
    };
    write_record("coefficients", &record);
    record
}
