//! Request-mix overrides for the Fig. 10 "new composition" experiments.

use hwsim::ActivityProfile;
use ossim::{Kernel, SocketId};
use simkern::SimRng;
use workloads::{AppEnv, ServerApp, WorkloadKind};

/// Wraps an application but restricts its request mix to an explicit set
/// of labels (e.g. RSA-crypto with only the largest key, or WeBWorK with
/// only the 10 most popular problem sets).
pub struct MixOverride {
    inner: Box<dyn ServerApp>,
    labels: Vec<u32>,
    mean_cycles: f64,
}

impl MixOverride {
    /// Restricts `inner` to the given labels; `mean_cycles` must describe
    /// the new mix (used for load sizing).
    ///
    /// # Panics
    ///
    /// Panics if `labels` is empty.
    pub fn new(inner: Box<dyn ServerApp>, labels: Vec<u32>, mean_cycles: f64) -> MixOverride {
        assert!(!labels.is_empty(), "need at least one label");
        MixOverride { inner, labels, mean_cycles }
    }
}

impl ServerApp for MixOverride {
    fn kind(&self) -> WorkloadKind {
        self.inner.kind()
    }

    fn setup(&self, kernel: &mut Kernel, env: &AppEnv) -> Vec<SocketId> {
        self.inner.setup(kernel, env)
    }

    fn mean_request_cycles(&self) -> f64 {
        self.mean_cycles
    }

    fn representative_profile(&self) -> ActivityProfile {
        self.inner.representative_profile()
    }

    fn pick_label(&self, rng: &mut SimRng) -> u32 {
        *rng.pick(&self.labels)
    }

    fn peak_utilization(&self) -> f64 {
        self.inner.peak_utilization()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restricted_mix_only_yields_listed_labels() {
        let app = MixOverride::new(WorkloadKind::RsaCrypto.app(), vec![2], 27.0e6);
        let mut rng = SimRng::new(1);
        for _ in 0..20 {
            assert_eq!(app.pick_label(&mut rng), 2);
        }
        assert_eq!(app.mean_request_cycles(), 27.0e6);
        assert_eq!(app.kind(), WorkloadKind::RsaCrypto);
    }
}
