//! Fig. 9 — Google App Engine background processing.
//!
//! GAE performs substantial work with no traceable request context; the
//! facility accounts it in the special background container. The paper
//! finds almost a third of total active power attributable to background
//! processing.

use crate::output::{banner, pct, write_record, Table};
use crate::{Lab, Scale};
use serde::Serialize;
use simkern::SimDuration;
use workloads::{run_app, LoadLevel, RunConfig, WorkloadKind};

/// One load level's breakdown.
#[derive(Debug, Clone, Serialize)]
pub struct BackgroundCell {
    /// Load level name.
    pub load: String,
    /// Sum of request-attributed modeled power, Watts.
    pub requests_w: f64,
    /// Background-container modeled power, Watts.
    pub background_w: f64,
    /// Measured active power, Watts.
    pub measured_w: f64,
    /// Background share of modeled active power.
    pub background_share: f64,
}

/// The Fig. 9 record.
#[derive(Debug, Clone, Serialize)]
pub struct Fig9 {
    /// Peak and half-load breakdowns.
    pub cells: Vec<BackgroundCell>,
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig9 {
    banner("fig9", "GAE background processing share of active power");
    let mut lab = Lab::new();
    let spec = lab.spec("sandybridge");
    let cal = lab.calibration("sandybridge");
    let mut cells = Vec::new();
    let mut table = Table::new([
        "load",
        "requests (W)",
        "background (W)",
        "modeled total (W)",
        "measured (W)",
        "bg share",
    ]);
    for load in [LoadLevel::Peak, LoadLevel::Half] {
        let mut cfg = RunConfig::new(spec.clone());
        cfg.sched = crate::runner::sched_kind();
        cfg.load = load;
        cfg.duration = SimDuration::from_secs(scale.run_secs());
        let outcome = run_app(WorkloadKind::GaeVosao, &cfg, &cal);
        let secs = outcome.end.as_secs_f64();
        let f = outcome.facility.borrow();
        let c = f.containers();
        let requests_w =
            (c.total_request_energy_j() + c.total_request_io_energy_j()) / secs;
        let background_w =
            (c.background().energy_j() + c.background().io_energy_j()) / secs;
        let measured_w = outcome.measured_active_power_w();
        let share = background_w / (requests_w + background_w);
        table.row([
            load.name().to_string(),
            format!("{requests_w:.1}"),
            format!("{background_w:.1}"),
            format!("{:.1}", requests_w + background_w),
            format!("{measured_w:.1}"),
            pct(share),
        ]);
        cells.push(BackgroundCell {
            load: load.name().to_string(),
            requests_w,
            background_w,
            measured_w,
            background_share: share,
        });
    }
    println!("{table}");
    let record = Fig9 { cells };
    write_record("fig9", &record);
    record
}
