//! Calibration caching.
//!
//! Offline calibration (§4.1) is deterministic per `(machine, seed)` but
//! takes a couple of simulated minutes; experiment binaries cache the
//! sample set as JSON under `results/` so repeated figures reuse it.

use hwsim::MachineSpec;
use power_containers::{CalibrationSample, CalibrationSet, MetricVector};
use serde::{Deserialize, Serialize};
use std::path::PathBuf;
use workloads::{calibrate_machine, MachineCalibration};

#[derive(Serialize, Deserialize)]
struct CachedCalibration {
    machine: String,
    seed: u64,
    idle_w: f64,
    idle_by_meter: Vec<(String, f64)>,
    samples: Vec<(Vec<f64>, f64)>,
}

fn cache_path(spec: &MachineSpec, seed: u64) -> PathBuf {
    crate::output::results_dir().join(format!("calibration-{}-{}.json", spec.name, seed))
}

fn rebuild(spec: &MachineSpec, cached: CachedCalibration) -> Option<MachineCalibration> {
    let mut set = CalibrationSet::new(cached.idle_w);
    for (features, watts) in cached.samples {
        if features.len() != power_containers::FEATURES {
            return None;
        }
        set.push(CalibrationSample {
            metrics: MetricVector::from_slice(&features),
            active_watts: watts,
        });
    }
    let model_core_only = set.fit(power_containers::ModelKind::CoreEventsOnly).ok()?;
    let model_chipshare = set.fit(power_containers::ModelKind::WithChipShare).ok()?;
    let mut idle_by_meter = std::collections::HashMap::new();
    for (name, w) in cached.idle_by_meter {
        // Meter names are static in hwsim; match them back.
        let static_name = spec.meters.iter().map(|m| m.name).find(|n| *n == name)?;
        idle_by_meter.insert(static_name, w);
    }
    Some(MachineCalibration { set, idle_by_meter, model_core_only, model_chipshare })
}

/// Loads the calibration for `(spec, seed)` from the cache, or runs the
/// full §4.1 procedure and caches it.
pub fn calibration_for(spec: &MachineSpec, seed: u64) -> MachineCalibration {
    let path = cache_path(spec, seed);
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(cached) = serde_json::from_str::<CachedCalibration>(&text) {
            if cached.machine == spec.name && cached.seed == seed {
                if let Some(cal) = rebuild(spec, cached) {
                    return cal;
                }
            }
        }
    }
    let cal = calibrate_machine(spec, seed);
    let cached = CachedCalibration {
        machine: spec.name.to_string(),
        seed,
        idle_w: cal.set.idle_w(),
        idle_by_meter: cal
            .idle_by_meter
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect(),
        samples: cal
            .set
            .samples()
            .iter()
            .map(|s| (s.metrics.as_array().to_vec(), s.active_watts))
            .collect(),
    };
    if std::fs::create_dir_all(crate::output::results_dir()).is_ok() {
        if let Ok(json) = serde_json::to_string(&cached) {
            // Atomic publish (write temp, rename): concurrent
            // experiment processes or workers must never observe a
            // half-written cache file.
            let tmp = path.with_extension(format!("json.tmp-{}", std::process::id()));
            if std::fs::write(&tmp, json).is_ok() && std::fs::rename(&tmp, &path).is_err() {
                let _ = std::fs::remove_file(&tmp);
            }
        }
    }
    cal
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_round_trips_calibration() {
        let spec = MachineSpec::sandybridge();
        // Unusual seed to avoid clobbering real caches.
        let seed = 0xDEAD_0001;
        let path = cache_path(&spec, seed);
        let _ = std::fs::remove_file(&path);
        let fresh = calibration_for(&spec, seed);
        assert!(path.exists(), "cache file written");
        let cached = calibration_for(&spec, seed);
        for (a, b) in fresh
            .model_chipshare
            .coefficients()
            .iter()
            .zip(cached.model_chipshare.coefficients())
        {
            assert!((a - b).abs() < 1e-9, "cache changed the fit: {a} vs {b}");
        }
        assert_eq!(
            fresh.meter_idle("wattsup"),
            cached.meter_idle("wattsup")
        );
        let _ = std::fs::remove_file(&path);
    }
}
