//! Ablation studies of the facility's design choices.
//!
//! The paper argues for three mechanisms whose absence is hard to see in
//! end-to-end numbers alone; these experiments remove each one and
//! measure the damage:
//!
//! 1. **Per-segment socket tagging** (§3.3) vs the naive design where a
//!    socket inherits its most recent message's tag — on a multi-stage
//!    server with persistent connections, naive tagging misattributes
//!    the database stage across requests.
//! 2. **The Eq. 3 idle-sibling staleness check** — without it, an idle
//!    sibling's stale utilization record dilutes every busy core's chip
//!    maintenance share.
//! 3. **Observer-effect compensation** (§3.5) — without subtracting the
//!    maintenance operation's own events, high-frequency sampling
//!    inflates the attributed activity.

use crate::output::{banner, pct, write_record, Table};
use crate::{Lab, Scale};
use ossim::ContextId;
use serde::Serialize;
use simkern::SimDuration;
use std::collections::BTreeMap;
use workloads::{run_app, LoadLevel, RunConfig, WorkloadKind};

/// One ablation's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Which mechanism was ablated.
    pub mechanism: String,
    /// The quality metric with the mechanism enabled.
    pub with_mechanism: f64,
    /// The same metric with the mechanism removed.
    pub without_mechanism: f64,
    /// What the metric measures.
    pub metric: String,
}

/// The ablations record.
#[derive(Debug, Clone, Serialize)]
pub struct Ablations {
    /// All rows.
    pub rows: Vec<AblationRow>,
}

/// Per-request energies keyed by context, for attribution comparisons.
/// Ordered map: the distortion sum below accumulates floats in iteration
/// order, which must not vary between processes for records to reproduce
/// byte-for-byte.
fn request_energies(outcome: &workloads::RunOutcome) -> BTreeMap<ContextId, f64> {
    let f = outcome.facility.borrow();
    f.containers()
        .records()
        .iter()
        .filter(|r| r.busy_seconds > 0.0)
        .map(|r| (r.ctx, r.energy_j + r.io_energy_j))
        .collect()
}

/// Ablation 1: per-request attribution distortion under naive socket
/// tagging, as mean relative per-request energy difference vs the
/// per-segment reference (same seed, same request stream).
fn socket_tagging(lab: &mut Lab, scale: Scale) -> AblationRow {
    let spec = lab.spec("sandybridge");
    let cal = lab.calibration("sandybridge");
    let run = |naive: bool| {
        let mut cfg = RunConfig::new(spec.clone());
        cfg.sched = crate::runner::sched_kind();
        cfg.load = LoadLevel::Peak;
        cfg.duration = SimDuration::from_secs(scale.run_secs());
        cfg.naive_socket_tagging = naive;
        run_app(WorkloadKind::WeBWorK, &cfg, &cal)
    };
    let reference = request_energies(&run(false));
    let naive = request_energies(&run(true));
    let mut diff = 0.0;
    let mut base = 0.0;
    let mut n = 0;
    for (ctx, e_ref) in &reference {
        if let Some(e_naive) = naive.get(ctx) {
            diff += (e_naive - e_ref).abs();
            base += e_ref;
            n += 1;
        }
    }
    assert!(n > 100, "too few matched requests ({n})");
    AblationRow {
        mechanism: "per-segment socket tagging (§3.3)".to_string(),
        with_mechanism: 0.0,
        without_mechanism: diff / base,
        metric: "mean per-request energy distortion".to_string(),
    }
}

/// Ablations 2 and 3: validation error with a facility knob flipped.
fn validation_ablation(
    lab: &mut Lab,
    scale: Scale,
    kind: WorkloadKind,
    load: LoadLevel,
    mechanism: &str,
    tweak: impl Fn(&mut RunConfig, bool),
) -> AblationRow {
    let spec = lab.spec("sandybridge");
    let cal = lab.calibration("sandybridge");
    let mut errors = [0.0f64; 2];
    for (i, enabled) in [true, false].into_iter().enumerate() {
        let mut cfg = RunConfig::new(spec.clone());
        cfg.sched = crate::runner::sched_kind();
        cfg.load = load;
        cfg.duration = SimDuration::from_secs(scale.run_secs());
        tweak(&mut cfg, enabled);
        let outcome = run_app(kind, &cfg, &cal);
        errors[i] = outcome.validation_error();
    }
    AblationRow {
        mechanism: mechanism.to_string(),
        with_mechanism: errors[0],
        without_mechanism: errors[1],
        metric: format!("validation error ({} {})", kind.name(), load.name()),
    }
}

/// Ablation 3: how much phantom energy uncompensated maintenance events
/// add to the books. Both runs model the observer effect (events are
/// injected); only the subtraction differs, so the interesting quantity
/// is the attributed-energy inflation, not the signed validation error.
fn observer_effect(lab: &mut Lab, scale: Scale) -> AblationRow {
    let spec = lab.spec("sandybridge");
    let cal = lab.calibration("sandybridge");
    let run = |compensate: bool| {
        let mut cfg = RunConfig::new(spec.clone());
        cfg.sched = crate::runner::sched_kind();
        cfg.load = LoadLevel::Peak;
        cfg.duration = SimDuration::from_secs(scale.run_secs());
        cfg.compensate_observer = compensate;
        cfg.sample_period = Some(SimDuration::from_micros(100));
        run_app(WorkloadKind::RsaCrypto, &cfg, &cal)
    };
    let with = run(true).attributed_energy_j();
    let without = run(false).attributed_energy_j();
    AblationRow {
        mechanism: "observer-effect compensation (§3.5, 0.1 ms sampling)".to_string(),
        with_mechanism: 0.0,
        without_mechanism: without / with - 1.0,
        metric: "attributed-energy inflation (RSA-crypto peak load)".to_string(),
    }
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Ablations {
    banner("ablations", "design-choice ablations (tagging, Eq.3 idle check, observer effect)");
    let mut lab = Lab::new();
    let rows = vec![
        socket_tagging(&mut lab, scale),
        validation_ablation(
            &mut lab,
            scale,
            WorkloadKind::GaeVosao,
            LoadLevel::Half,
            "Eq. 3 idle-sibling staleness check",
            |cfg, enabled| cfg.sibling_idle_check = enabled,
        ),
        observer_effect(&mut lab, scale),
    ];
    let mut table = Table::new(["mechanism", "with", "without", "metric"]);
    for r in &rows {
        table.row([
            r.mechanism.clone(),
            pct(r.with_mechanism),
            pct(r.without_mechanism),
            r.metric.clone(),
        ]);
    }
    println!("{table}");
    let record = Ablations { rows };
    write_record("ablations", &record);
    record
}
