//! Scale study: the sharded serving pipeline across fleet sizes,
//! policies, and cluster power caps.
//!
//! Sweeps a (nodes × policy × cap) grid of three-tier serving fleets
//! ([`Topology::serving_pipeline`]) under the deterministic open-loop
//! load generator, then re-validates the Fig. 14 / Table 1 result at
//! scale: the policy ordering (workload-aware < machine-aware < simple
//! balance on total power) must survive the jump from the paper's
//! two-machine cluster to a 16-node pipeline. Capped cells additionally
//! check that the cluster-wide power cap — enforced purely through
//! per-node request conditioning, with no cross-node coordination —
//! actually holds.
//!
//! Cells are independent seeded simulations and fan out across
//! [`crate::runner::jobs`] workers; the record is free of wall-clock
//! values, so results are byte-identical at any `--jobs` count.

use crate::output::{banner, write_record, Table};
use crate::{Lab, Scale};
use cluster::{
    energy_affinity, offered_cluster_rate, run_pipeline, ClusterConfig, DistributionPolicy,
    MachineHeterogeneityAware, SimpleBalance, Topology, WorkloadHeterogeneityAware,
};
use serde::Serialize;
use simkern::SimDuration;
use workloads::{MachineCalibration, WorkloadKind};

/// One cell of the (nodes × policy × cap) grid.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleSweepRow {
    /// Fleet size (nodes across all three tiers).
    pub nodes: usize,
    /// Total cores across the fleet.
    pub cores: usize,
    /// Tier-0 policy name.
    pub policy: String,
    /// Cluster-wide power cap, Watts (`None` = uncapped).
    pub cap_w: Option<f64>,
    /// Simulated seconds.
    pub sim_secs: f64,
    /// Requests the load generator offered.
    pub dispatched: u64,
    /// Requests that completed the full pipeline.
    pub completed: usize,
    /// Requests dropped (all target nodes penalized).
    pub dropped: u64,
    /// Requests still in the pipeline at the end.
    pub in_flight: u64,
    /// Routing decisions the dispatcher made (dispatches + hops).
    pub decisions: u64,
    /// Combined active energy rate across the fleet, Watts.
    pub total_w: f64,
    /// Mean end-to-end response time across apps, seconds.
    pub mean_resp_s: f64,
    /// For capped cells: did the fleet stay within the cap (+5%
    /// conditioning slack)? Always `true` for uncapped cells.
    pub cap_ok: bool,
}

/// The sweep record.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleSweep {
    /// All cells, in canonical (nodes, policy, cap) order.
    pub rows: Vec<ScaleSweepRow>,
    /// The largest fleet size swept.
    pub largest_nodes: usize,
    /// Fig. 14 re-validation at the largest uncapped fleet:
    /// workload-aware < machine-aware < simple balance on total power.
    pub ordering_at_scale: bool,
    /// Every capped cell stayed within its cap (+5% slack).
    pub caps_held: bool,
}

/// Fleet sizes for each scale (each is a three-tier pipeline).
pub fn fleet_sizes(scale: Scale) -> &'static [usize] {
    match scale {
        Scale::Full => &[4, 8, 16],
        Scale::Quick => &[4, 16],
    }
}

/// Target request count per cell.
fn target_requests(scale: Scale) -> f64 {
    match scale {
        Scale::Full => 10_500.0,
        Scale::Quick => 2_200.0,
    }
}

/// A tight cluster cap for a fleet with `cores` total cores: well below
/// the fleets' observed ~10-15 W/core uncapped draw, so conditioning
/// must actually throttle.
fn tight_cap_w(cores: usize) -> f64 {
    8.0 * cores as f64
}

/// The three policy kinds, in the canonical (Fig. 14) order.
pub(crate) const POLICY_KINDS: &[&str] = &["simple", "machine", "workload"];

pub(crate) fn make_policies(
    kind: &str,
    tiers: usize,
    ratios: &[(WorkloadKind, f64)],
) -> Vec<Box<dyn DistributionPolicy>> {
    (0..tiers)
        .map(|_| match kind {
            "simple" => Box::new(SimpleBalance::new()) as Box<dyn DistributionPolicy>,
            "machine" => Box::new(MachineHeterogeneityAware::new()),
            "workload" => Box::new(WorkloadHeterogeneityAware::new(ratios.to_vec())),
            other => panic!("unknown policy kind {other}"),
        })
        .collect()
}

/// Builds one cell's cluster config (shared with the test suites, so the
/// CI smoke cell is exactly a sweep cell).
pub fn cell_config(scale: Scale, nodes: usize, cap_w: Option<f64>) -> ClusterConfig {
    let mut cfg = ClusterConfig::sharded(&Topology::serving_pipeline(nodes));
    cfg.sched = vec![crate::runner::sched_kind()];
    cfg.seed = crate::SEED;
    cfg.power_cap_w = cap_w;
    // Size the run so the open-loop generator offers the target request
    // count regardless of fleet size (bigger fleets absorb higher rates,
    // so they need less simulated time).
    let rate = offered_cluster_rate(&cfg);
    let secs = (target_requests(scale) / rate).max(0.25);
    cfg.duration = SimDuration::from_millis((secs * 1e3).ceil() as u64);
    cfg.obs = crate::runner::obs_config();
    cfg
}

/// Per-node calibrations for `cfg`, reusing one calibration per distinct
/// machine generation.
pub fn cell_calibrations(lab: &mut Lab, cfg: &ClusterConfig) -> Vec<MachineCalibration> {
    cfg.nodes.iter().map(|spec| lab.calibration(spec.name)).collect()
}

fn run_cell(
    scale: Scale,
    nodes: usize,
    kind: &str,
    cap_w: Option<f64>,
    ratios: &[(WorkloadKind, f64)],
    cals: &[MachineCalibration],
) -> ScaleSweepRow {
    let mut cfg = cell_config(scale, nodes, cap_w);
    cfg.telemetry = crate::runner::trace_handle();
    let mut policies = make_policies(kind, cfg.tiers.len(), ratios);
    let outcome = run_pipeline(&mut policies, &cfg, cals);
    let stem = format!(
        "{nodes:02}nodes-{}-{}",
        crate::runner::slug(kind),
        match cap_w {
            Some(w) => format!("cap{w:.0}w"),
            None => "uncapped".to_string(),
        }
    );
    crate::runner::write_trace("scale_sweep", &stem, &cfg.telemetry);
    let total_w = outcome.total_energy_rate_w();
    let resp: Vec<f64> = outcome
        .response_by_app
        .iter()
        .filter(|(_, s)| s.count() > 0)
        .map(|(_, s)| s.mean())
        .collect();
    ScaleSweepRow {
        nodes,
        cores: cfg.nodes.iter().map(hwsim::MachineSpec::total_cores).sum(),
        policy: outcome.policy.to_string(),
        cap_w,
        sim_secs: cfg.duration.as_secs_f64(),
        dispatched: outcome.dispatched,
        completed: outcome.completed,
        dropped: outcome.dropped,
        in_flight: outcome.in_flight,
        decisions: outcome.decisions,
        total_w,
        mean_resp_s: resp.iter().sum::<f64>() / resp.len().max(1) as f64,
        cap_ok: cap_w.map(|cap| total_w <= cap * 1.05).unwrap_or(true),
    }
}

/// Profiles the two apps' cross-machine energy affinity for the
/// workload-aware policy (Fig. 13's procedure, short runs — shared by
/// every cell).
pub(crate) fn profiled_ratios(lab: &mut Lab, scale: Scale) -> Vec<(WorkloadKind, f64)> {
    let sb = lab.spec("sandybridge");
    let wc = lab.spec("woodcrest");
    let sb_cal = lab.calibration("sandybridge");
    let wc_cal = lab.calibration("woodcrest");
    let apps = [WorkloadKind::GaeVosao, WorkloadKind::RsaCrypto];
    energy_affinity(
        &apps,
        (&sb, &sb_cal),
        (&wc, &wc_cal),
        crate::SEED + 5,
        SimDuration::from_secs(scale.run_secs() / 2 + 2),
    )
    .iter()
    .map(|r| (r.kind, r.ratio()))
    .collect()
}

/// Runs the sweep and prints the grid.
pub fn run(scale: Scale) -> ScaleSweep {
    banner("scale-sweep", "sharded serving pipeline across fleet sizes and caps");
    let mut lab = Lab::new();
    let ratios = profiled_ratios(&mut lab, scale);
    let sizes = fleet_sizes(scale);
    let largest = *sizes.last().expect("nonempty size list");

    // Canonical cell order: nodes, then policy, then cap. Capped cells
    // run only at the largest fleet, where the cap question is
    // interesting.
    let mut cells: Vec<(usize, &'static str, Option<f64>)> = Vec::new();
    for &n in sizes {
        for &kind in POLICY_KINDS {
            cells.push((n, kind, None));
        }
    }
    let largest_cores = Topology::serving_pipeline(largest).total_cores();
    for &kind in POLICY_KINDS {
        cells.push((largest, kind, Some(tight_cap_w(largest_cores))));
    }

    let tasks: Vec<_> = cells
        .into_iter()
        .map(|(n, kind, cap)| {
            let ratios = ratios.clone();
            let cals = cell_calibrations(&mut lab, &cell_config(scale, n, cap));
            move || run_cell(scale, n, kind, cap, &ratios, &cals)
        })
        .collect();
    let rows: Vec<ScaleSweepRow> = crate::runner::run_parallel(crate::runner::jobs(), tasks)
        .into_iter()
        .collect::<Result<_, _>>()
        .unwrap_or_else(|e| panic!("scale-sweep cell failed: {e}"));

    let mut table = Table::new([
        "nodes", "policy", "cap (W)", "total (W)", "completed", "dropped", "resp (ms)",
    ]);
    for r in &rows {
        table.row([
            r.nodes.to_string(),
            r.policy.clone(),
            r.cap_w.map(|w| format!("{w:.0}")).unwrap_or_else(|| "-".to_string()),
            format!("{:.1}", r.total_w),
            r.completed.to_string(),
            r.dropped.to_string(),
            format!("{:.1}", r.mean_resp_s * 1e3),
        ]);
    }
    println!("{table}");

    let total_of = |kind: &str| {
        rows.iter()
            .find(|r| r.nodes == largest && r.cap_w.is_none() && r.policy.contains(kind))
            .map(|r| r.total_w)
            .expect("largest uncapped cell present")
    };
    let (simple, machine, workload) =
        (total_of("simple"), total_of("machine"), total_of("workload"));
    let ordering_at_scale = workload < machine && machine < simple;
    let caps_held = rows.iter().all(|r| r.cap_ok);
    println!(
        "fig14 ordering at {largest} nodes: workload {workload:.1} W < machine {machine:.1} W < simple {simple:.1} W -- {}",
        if ordering_at_scale { "HELD" } else { "VIOLATED" }
    );
    println!("power caps: {}", if caps_held { "HELD" } else { "EXCEEDED" });

    let record = ScaleSweep { rows, largest_nodes: largest, ordering_at_scale, caps_held };
    write_record("scale_sweep", &record);
    record
}
