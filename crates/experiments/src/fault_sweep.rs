//! Robustness ablation: attribution accuracy under injected hardware
//! faults.
//!
//! Sweeps the meter-dropout rate (with counter glitches and tag faults
//! riding along at fixed rates in the `stress` row) and compares the
//! Fig. 8 validation error against the clean run. The acceptance bar
//! for the graceful-degradation machinery: at a ≤5% dropout rate the
//! attribution error stays within 2× of the clean-run error, with zero
//! panics anywhere in the sweep.

use crate::output::{banner, pct, write_record, Table};
use crate::{Lab, Scale};
use hwsim::FaultConfig;
use serde::Serialize;
use simkern::SimDuration;
use workloads::{run_app, LoadLevel, RunConfig, WorkloadKind};

/// One sweep point.
#[derive(Debug, Clone, Serialize)]
pub struct FaultSweepRow {
    /// Display name of the fault mix.
    pub scenario: String,
    /// Meter windows dropped per window offered.
    pub meter_dropout: f64,
    /// Fig. 8 validation error at this point.
    pub validation_error: f64,
    /// Faults the machine injected.
    pub faults_injected: u64,
    /// Degradation decisions the facility took.
    pub degradations: u64,
    /// Requests completed.
    pub completions: usize,
}

/// The sweep record.
#[derive(Debug, Clone, Serialize)]
pub struct FaultSweep {
    /// Clean-run validation error (the baseline).
    pub clean_error: f64,
    /// All sweep points, clean first.
    pub rows: Vec<FaultSweepRow>,
    /// Whether the ≤5%-dropout rows stayed within 2× the clean error.
    pub within_bound: bool,
}

fn sweep_point(
    spec: &hwsim::MachineSpec,
    cal: &workloads::MachineCalibration,
    scale: Scale,
    scenario: &str,
    faults: FaultConfig,
) -> FaultSweepRow {
    let mut cfg = RunConfig::new(spec.clone());
    cfg.sched = crate::runner::sched_kind();
    cfg.approach = power_containers::Approach::Recalibrated;
    cfg.load = LoadLevel::Half;
    cfg.duration = SimDuration::from_secs(scale.run_secs());
    let dropout = faults.meter_dropout;
    cfg.faults = faults;
    cfg.telemetry = crate::runner::trace_handle();
    let outcome = run_app(WorkloadKind::RsaCrypto, &cfg, cal);
    // Dropout rate keeps same-named scenarios (the meter-dropout rows)
    // from clobbering each other's trace files.
    let stem = format!(
        "{}-{}",
        crate::runner::slug(scenario),
        crate::runner::slug(&format!("{:04.1}pct", dropout * 100.0))
    );
    crate::runner::write_trace("fault_sweep", &stem, &cfg.telemetry);
    let completions = outcome.stats.borrow().completions().len();
    FaultSweepRow {
        scenario: scenario.to_string(),
        meter_dropout: dropout,
        validation_error: outcome.validation_error(),
        faults_injected: outcome.fault_counts().iter().sum(),
        degradations: outcome.degrade_stats().total(),
        completions,
    }
}

/// Runs the sweep and prints the table. Sweep points are independent
/// seeded simulations, so they fan out across [`crate::runner::jobs`]
/// workers; rows keep the canonical order (clean first).
pub fn run(scale: Scale) -> FaultSweep {
    banner("fault-sweep", "attribution accuracy under injected hardware faults");
    let mut lab = Lab::new();
    let spec = lab.spec("sandybridge");
    let cal = lab.calibration("sandybridge");
    let dropout = |rate: f64| FaultConfig {
        seed: 0xFA17,
        meter_dropout: rate,
        ..FaultConfig::none()
    };
    let mut points: Vec<(&str, FaultConfig)> = vec![("clean", FaultConfig::none())];
    for rate in [0.01, 0.02, 0.05] {
        points.push(("meter dropout", dropout(rate)));
    }
    points.push((
        "dropout + glitches + tag faults",
        FaultConfig {
            seed: 0xFA17,
            meter_dropout: 0.05,
            meter_extra_lag: 0.05,
            counter_glitch_hz: 1.0,
            counter_wrap_hz: 0.5,
            tag_loss: 0.01,
            tag_corrupt: 0.01,
            ..FaultConfig::none()
        },
    ));
    let tasks: Vec<_> = points
        .into_iter()
        .map(|(scenario, faults)| {
            let spec = spec.clone();
            let cal = cal.clone();
            move || sweep_point(&spec, &cal, scale, scenario, faults)
        })
        .collect();
    let rows: Vec<FaultSweepRow> = crate::runner::run_parallel(crate::runner::jobs(), tasks)
        .into_iter()
        .collect::<Result<_, _>>()
        .unwrap_or_else(|e| panic!("fault-sweep point failed: {e}"));
    let clean_error = rows[0].validation_error;
    let bound = (clean_error * 2.0).max(0.05);
    let within_bound = rows
        .iter()
        .filter(|r| r.meter_dropout <= 0.05)
        .all(|r| r.validation_error <= bound);
    let mut table =
        Table::new(["scenario", "dropout", "error", "faults", "degradations", "completed"]);
    for r in &rows {
        table.row([
            r.scenario.clone(),
            pct(r.meter_dropout),
            pct(r.validation_error),
            r.faults_injected.to_string(),
            r.degradations.to_string(),
            r.completions.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "degradation bound (2x clean error, 5% floor): {} -- {}",
        pct(bound),
        if within_bound { "HELD" } else { "EXCEEDED" }
    );
    let record = FaultSweep { clean_error, rows, within_bound };
    write_record("fault_sweep", &record);
    record
}
