//! Fig. 4 — a captured multi-stage WeBWorK request execution.
//!
//! One request flows through Apache/PHP processing, the MySQL thread,
//! and the forked shell → latex → dvipng pipeline; the facility tracks
//! the context across sockets and forks and attributes power and energy
//! to every stage, as in the paper's annotated timeline.

use crate::output::{banner, write_record, Table};
use crate::Scale;
use hwsim::Machine;
use ossim::{Kernel, KernelConfig, TaskId};
use power_containers::{Approach, FacilityConfig, PowerContainerFacility};
use serde::Serialize;
use simkern::{SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;
use workloads::{
    apps::WeBWorK, spawn_driver, AppEnv, CtxAlloc, DriverEnv, RunStats, ServerApp,
};

/// One stage of the captured request.
#[derive(Debug, Clone, Serialize)]
pub struct Stage {
    /// Stage name (process identity in the paper's figure).
    pub stage: String,
    /// Mean power while executing, Watts.
    pub power_w: f64,
    /// Energy attributed to the stage, Joules.
    pub energy_j: f64,
    /// CPU time of the stage, milliseconds.
    pub busy_ms: f64,
}

/// The Fig. 4 record.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4 {
    /// Per-stage attribution.
    pub stages: Vec<Stage>,
    /// Total request energy from the container, Joules.
    pub total_energy_j: f64,
    /// End-to-end response time, milliseconds.
    pub response_ms: f64,
}

/// Runs the experiment.
pub fn run(_scale: Scale) -> Fig4 {
    banner("fig4", "captured multi-stage WeBWorK request (per-stage power/energy)");
    let mut lab = crate::Lab::new();
    let spec = lab.spec("sandybridge");
    let cal = lab.calibration("sandybridge");

    let facility = PowerContainerFacility::new(
        cal.model_for(Approach::ChipShare),
        None,
        &spec,
        FacilityConfig { track_per_task: true, ..FacilityConfig::default() },
    );
    let state = facility.state();
    let mut kernel = Kernel::new(Machine::new(spec.clone(), crate::SEED), KernelConfig::default());
    kernel.install_hooks(Box::new(facility));

    let stats = Rc::new(RefCell::new(RunStats::new()));
    let app = WeBWorK::new();
    let env = AppEnv {
        stats: Rc::clone(&stats),
        workers: 1,
        spec: spec.clone(),
        seed: 7,
        notify: None,
    };
    let inboxes = app.setup(&mut kernel, &env);
    spawn_driver(
        &mut kernel,
        DriverEnv {
            inboxes,
            mean_gap: SimDuration::from_millis(1),
            pick_label: Box::new(|_| 5), // a fixed, mid-difficulty problem set
            stats: Rc::clone(&stats),
            facility: Some(Rc::clone(&state)),
            ctxs: CtxAlloc::new(1),
            max_requests: Some(1),
            start_after: SimDuration::ZERO,
        },
    );
    kernel.run_until(SimTime::from_millis(200));
    assert!(kernel.is_quiescent(), "single request should complete well within 200 ms");

    // Task identities are deterministic: setup spawns the MySQL thread
    // (task 0) and the single httpd worker (task 1), the driver is task
    // 2, and the forked pipeline creates shell (3), latex (4), dvipng (5).
    let named = [
        (TaskId(1), "Apache httpd (PHP)"),
        (TaskId(0), "MySQL thread"),
        (TaskId(3), "shell"),
        (TaskId(4), "latex process"),
        (TaskId(5), "dvipng process"),
    ];
    let f = state.borrow();
    let mut stages = Vec::new();
    let mut table = Table::new(["stage", "power (W)", "energy (J)", "cpu time (ms)"]);
    for (tid, name) in named {
        let (energy, busy) = f
            .task_energy(tid)
            .unwrap_or_else(|| panic!("no energy tracked for {name} ({tid})"));
        let power = if busy > 0.0 { energy / busy } else { 0.0 };
        table.row([
            name.to_string(),
            format!("{power:.1}"),
            format!("{energy:.4}"),
            format!("{:.2}", busy * 1e3),
        ]);
        stages.push(Stage {
            stage: name.to_string(),
            power_w: power,
            energy_j: energy,
            busy_ms: busy * 1e3,
        });
    }
    let record_stats = stats.borrow();
    let completion = record_stats.completions().first().expect("request completed");
    let container = f
        .containers()
        .records()
        .first()
        .expect("container record retained");
    println!("{table}");
    println!(
        "request total: {:.3} J over {:.1} ms response time",
        container.energy_j + container.io_energy_j,
        completion.response_secs() * 1e3
    );
    let record = Fig4 {
        stages,
        total_energy_j: container.energy_j + container.io_energy_j,
        response_ms: completion.response_secs() * 1e3,
    };
    write_record("fig4", &record);
    record
}
