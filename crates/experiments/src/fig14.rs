//! Fig. 14 — cluster energy under the three distribution policies.
//!
//! A SandyBridge + Woodcrest cluster serving a 50/50 GAE-Vosao +
//! RSA-crypto mix at the volume the simple balancer can just sustain.
//! The paper: workload-heterogeneity-aware distribution saves ~30% vs
//! simple balance and ~25% vs machine-heterogeneity-aware.

use crate::output::{banner, pct, write_record, Table};
use crate::{Lab, Scale};
use cluster::{
    energy_affinity, run_cluster, ClusterConfig, ClusterOutcome, DistributionPolicy,
    MachineHeterogeneityAware, SimpleBalance, WorkloadHeterogeneityAware,
};
use serde::Serialize;
use simkern::SimDuration;
use workloads::WorkloadKind;

/// One policy's cluster outcome.
#[derive(Debug, Clone, Serialize)]
pub struct PolicyEnergy {
    /// Policy name.
    pub policy: String,
    /// Per-node `(machine, energy rate W, completions, utilization)`.
    pub nodes: Vec<(String, f64, usize, f64)>,
    /// Combined active energy rate, Watts.
    pub total_w: f64,
    /// Requests completed.
    pub completed: usize,
}

/// The Fig. 14 record.
#[derive(Debug, Clone, Serialize)]
pub struct Fig14 {
    /// All three policies.
    pub policies: Vec<PolicyEnergy>,
    /// Savings of workload-aware vs simple balance.
    pub saving_vs_simple: f64,
    /// Savings of workload-aware vs machine-aware.
    pub saving_vs_machine: f64,
}

/// Runs the cluster under all three policies (shared with Table 1).
pub fn cluster_outcomes(scale: Scale) -> Vec<ClusterOutcome> {
    let mut lab = Lab::new();
    let sb = lab.spec("sandybridge");
    let wc = lab.spec("woodcrest");
    let sb_cal = lab.calibration("sandybridge");
    let wc_cal = lab.calibration("woodcrest");

    // Profile the two apps' cross-machine affinity for the workload-aware
    // policy (Fig. 13's procedure, shorter runs).
    let apps = [WorkloadKind::GaeVosao, WorkloadKind::RsaCrypto];
    let profile = energy_affinity(
        &apps,
        (&sb, &sb_cal),
        (&wc, &wc_cal),
        crate::SEED + 5,
        SimDuration::from_secs(scale.run_secs() / 2 + 2),
    );
    let ratios: Vec<(WorkloadKind, f64)> =
        profile.iter().map(|r| (r.kind, r.ratio())).collect();

    let mut cfg = ClusterConfig::paper_setup();
    cfg.sched = vec![crate::runner::sched_kind()];
    cfg.duration = SimDuration::from_secs(scale.run_secs());
    cfg.seed = crate::SEED;
    cfg.obs = crate::runner::obs_config();
    let cals = vec![sb_cal, wc_cal];

    let mut policies: Vec<Box<dyn DistributionPolicy>> = vec![
        Box::new(SimpleBalance::new()),
        Box::new(MachineHeterogeneityAware::new()),
        Box::new(WorkloadHeterogeneityAware::new(ratios)),
    ];
    policies
        .iter_mut()
        .map(|p| run_cluster(p.as_mut(), &cfg, &cals))
        .collect()
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig14 {
    banner("fig14", "cluster energy rate under three distribution policies");
    let outcomes = cluster_outcomes(scale);
    let mut policies = Vec::new();
    let mut table = Table::new([
        "policy",
        "SandyBridge (W)",
        "Woodcrest (W)",
        "total (W)",
        "completed",
    ]);
    for o in &outcomes {
        let nodes: Vec<(String, f64, usize, f64)> = o
            .per_node
            .iter()
            .map(|n| {
                (
                    n.machine.to_string(),
                    n.energy_rate_w,
                    n.completions,
                    n.utilization,
                )
            })
            .collect();
        table.row([
            o.policy.to_string(),
            format!("{:.1}", nodes[0].1),
            format!("{:.1}", nodes[1].1),
            format!("{:.1}", o.total_energy_rate_w()),
            o.completed.to_string(),
        ]);
        policies.push(PolicyEnergy {
            policy: o.policy.to_string(),
            nodes,
            total_w: o.total_energy_rate_w(),
            completed: o.completed,
        });
    }
    println!("{table}");
    let simple = policies[0].total_w;
    let machine = policies[1].total_w;
    let workload = policies[2].total_w;
    let saving_vs_simple = 1.0 - workload / simple;
    let saving_vs_machine = 1.0 - workload / machine;
    println!(
        "workload-aware saves {} vs simple balance, {} vs machine-aware",
        pct(saving_vs_simple),
        pct(saving_vs_machine)
    );
    let record = Fig14 { policies, saving_vs_simple, saving_vs_machine };
    write_record("fig14", &record);
    record
}
