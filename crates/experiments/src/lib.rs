//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§4) from the simulated substrate.
//!
//! Each `figNN` module exposes a `run(scale)` function that executes the
//! experiment, prints a paper-style text table, writes a JSON record
//! under `results/`, and returns the data for programmatic checks. The
//! corresponding `cargo run -p experiments --bin figNN` binaries are thin
//! wrappers.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig01`] | Fig. 1 — incremental per-core power steps |
//! | [`fig02`] | Fig. 2 — measurement/model alignment cross-correlation |
//! | [`fig03`] | Fig. 3 — aligned measured vs modeled power trace |
//! | [`fig04`] | Fig. 4 — multi-stage WeBWorK request breakdown |
//! | [`fig05`] | Fig. 5 — measured active power per workload/machine/load |
//! | [`fig06`] | Fig. 6 — mean request power distributions |
//! | [`fig07`] | Fig. 7 — request energy distributions |
//! | [`fig08`] | Fig. 8 — validation error of the three approaches |
//! | [`fig09`] | Fig. 9 — GAE background processing share |
//! | [`fig10`] | Fig. 10 — power prediction at new request compositions |
//! | [`fig11`] | Fig. 11 — power-virus conditioning trace |
//! | [`fig12`] | Fig. 12 — per-request duty-cycle vs original power |
//! | [`fig13`] | Fig. 13 — cross-machine energy affinity ratios |
//! | [`fig14`] | Fig. 14 — cluster energy under three policies |
//! | [`table1`] | Table 1 — response times under three policies |
//! | [`overhead`] | §3.5 — facility overhead microbenchmarks |
//! | [`coefficients`] | §4.1 — calibrated model coefficients |
//! | [`ablations`] | design-choice ablations (tagging, Eq. 3, observer effect) |
//! | [`dvfs`] | extension: per-request conditioning vs whole-machine DVFS |
//! | [`anomaly`] | extension: online power-anomaly detection from reports |
//! | [`fault_sweep`] | extension: attribution accuracy under injected faults |
//! | [`scale_sweep`] | extension: the serving pipeline across fleet sizes and caps |
//! | [`chaos_sweep`] | extension: recovery invariants under randomized fault schedules |
//! | [`drift_sweep`] | extension: the self-calibrating model bank across a regime-shift ladder |
//! | [`megafleet`] | extension: intra-cell sharded capacity sweep (1000 nodes, 10⁶ requests) |
//! | [`obs_sweep`] | extension: energy-SLO burn-rate alerts over injected violations |
//! | [`sched_sweep`] | extension: attribution conformance across pluggable schedulers |
//! | [`diurnal_sweep`] | extension: diurnal/flash-crowd traffic, elastic autoscaler vs fixed fleet |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod anomaly;
pub mod cache;
pub mod chaos_sweep;
pub mod coefficients;
pub mod diurnal_sweep;
pub mod drift_sweep;
pub mod dvfs;
pub mod fault_sweep;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod megafleet;
pub mod mix;
pub mod obs_sweep;
pub mod output;
pub mod overhead;
pub mod runner;
pub mod scale_sweep;
pub mod sched_sweep;
pub mod table1;

use hwsim::MachineSpec;
use workloads::MachineCalibration;

/// Experiment fidelity: `Full` reproduces the paper's durations; `Quick`
/// is a fast smoke-test variant used by the integration tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-scale run lengths.
    Full,
    /// Short runs for tests.
    Quick,
}

impl Scale {
    /// Simulated seconds for a standard measurement run.
    pub fn run_secs(self) -> u64 {
        match self {
            Scale::Full => 12,
            Scale::Quick => 4,
        }
    }

    /// Parses `--quick` from process args.
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Full
        }
    }
}

/// The root seed every experiment derives from (reproducibility).
pub const SEED: u64 = 42;

/// Lazily calibrated machines shared by one experiment run.
pub struct Lab {
    machines: Vec<(MachineSpec, Option<MachineCalibration>)>,
}

impl Lab {
    /// Creates a lab with the paper's three machines, none calibrated yet.
    pub fn new() -> Lab {
        Lab {
            machines: MachineSpec::all_machines()
                .into_iter()
                .map(|m| (m, None))
                .collect(),
        }
    }

    /// The machine spec by name.
    ///
    /// # Panics
    ///
    /// Panics on an unknown machine name.
    pub fn spec(&self, name: &str) -> MachineSpec {
        self.machines
            .iter()
            .find(|(m, _)| m.name == name)
            .map(|(m, _)| m.clone())
            .unwrap_or_else(|| panic!("unknown machine {name}"))
    }

    /// The (cached) calibration for a machine, running §4.1 on first use.
    pub fn calibration(&mut self, name: &str) -> MachineCalibration {
        let entry = self
            .machines
            .iter_mut()
            .find(|(m, _)| m.name == name)
            .unwrap_or_else(|| panic!("unknown machine {name}"));
        if entry.1.is_none() {
            eprintln!("[calibrating {name} ...]");
            entry.1 = Some(cache::calibration_for(&entry.0, SEED));
        }
        entry.1.clone().expect("just calibrated")
    }
}

impl Default for Lab {
    fn default() -> Lab {
        Lab::new()
    }
}

/// Ensures every machine's calibration cache file exists, calibrating
/// serially on a miss. Run this before fanning experiments out across
/// workers: each experiment builds its own [`Lab`], so without a warm
/// cache several workers would redundantly re-run the expensive §4.1
/// procedure for the same machine at once.
pub fn prewarm_calibrations() {
    for spec in MachineSpec::all_machines() {
        let _ = cache::calibration_for(&spec, SEED);
    }
}
