//! Extension experiment: per-request duty-cycle conditioning vs
//! whole-machine DVFS capping.
//!
//! §3.4 argues that indiscriminate full-machine throttling penalizes
//! every request, while container-based conditioning throttles only the
//! power viruses. This experiment quantifies that claim with a proper
//! DVFS feedback governor as the full-machine alternative: both
//! mechanisms hold the same power target; only the per-request one
//! leaves normal requests (nearly) unharmed.

use crate::fig11::SATURATING_LOAD;
use crate::output::{banner, pct, write_record, Table};
use crate::{Lab, Scale};
use analysis::stats::Summary;
use hwsim::{ChipId, FreqScale};
use power_containers::ConditioningPolicy;
use serde::Serialize;
use simkern::{SimDuration, SimTime};
use workloads::{
    prepare_app, spawn_driver, CtxAlloc, DriverEnv, RunConfig, WorkloadKind, POWER_VIRUS_LABEL,
};

/// Which capping mechanism a run used.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CapMechanism {
    /// No capping (baseline).
    None,
    /// Per-request duty-cycle conditioning (the paper's facility).
    PerRequestConditioning,
    /// Whole-machine chip DVFS feedback governor.
    MachineDvfs,
}

/// One run's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct CapRun {
    /// The mechanism used.
    pub mechanism: CapMechanism,
    /// Fraction of post-virus 100 ms buckets above the target.
    pub frac_above_target: f64,
    /// Peak active power after viruses arrive, Watts.
    pub peak_after_w: f64,
    /// Mean response time of normal (Vosao) requests, ms.
    pub normal_response_ms: f64,
    /// Mean response time of power viruses, ms.
    pub virus_response_ms: f64,
    /// Requests completed.
    pub completed: usize,
}

/// The experiment record.
#[derive(Debug, Clone, Serialize)]
pub struct DvfsCapping {
    /// The shared power target, Watts.
    pub target_w: f64,
    /// Baseline, conditioning, and DVFS runs.
    pub runs: Vec<CapRun>,
}

/// The highest DVFS operating point whose power factor keeps `peak_w`
/// under `target_w` — the static full-machine throttle the paper sizes
/// ("a full-machine duty-cycle level of 7/8 would be required").
fn static_point_for(peak_w: f64, target_w: f64) -> FreqScale {
    let mut f = FreqScale::NOMINAL;
    while peak_w * f.power_factor() > target_w && f.fraction() > 0.5 {
        f = f.slower();
    }
    f
}

fn run_once(
    lab: &mut Lab,
    mechanism: CapMechanism,
    target: f64,
    secs: u64,
    baseline_peak_w: f64,
) -> CapRun {
    let spec = lab.spec("sandybridge");
    let cal = lab.calibration("sandybridge");
    let duration = SimDuration::from_secs(secs);
    let virus_start = SimTime::from_secs(secs / 4);
    let mut cfg = RunConfig::new(spec);
    cfg.sched = crate::runner::sched_kind();
    cfg.load = SATURATING_LOAD;
    cfg.closed_loop = Some(2 * cfg.spec.total_cores());
    cfg.duration = duration;
    if mechanism == CapMechanism::PerRequestConditioning {
        cfg.conditioning = Some(ConditioningPolicy::new(target));
    }
    let mut prepared = prepare_app(std::rc::Rc::from(WorkloadKind::GaeVosao.app()), &cfg, &cal);
    spawn_driver(
        &mut prepared.kernel,
        DriverEnv {
            inboxes: prepared.inboxes.clone(),
            mean_gap: SimDuration::from_millis(350),
            pick_label: Box::new(|_| POWER_VIRUS_LABEL),
            stats: std::rc::Rc::clone(&prepared.stats),
            facility: Some(std::rc::Rc::clone(&prepared.facility)),
            ctxs: CtxAlloc::new(1_000_000_000),
            max_requests: None,
            start_after: virus_start.duration_since(SimTime::ZERO),
        },
    );
    if mechanism == CapMechanism::MachineDvfs {
        let point = static_point_for(baseline_peak_w, target);
        let chips = prepared.kernel.machine().spec().chips;
        for chip in 0..chips {
            prepared.kernel.machine_mut().set_chip_freq(ChipId(chip), point);
        }
    }
    let mut above = 0usize;
    let mut buckets = 0usize;
    let mut peak_w: f64 = 0.0;
    let mut last_energy = 0.0;
    let mut t = SimTime::ZERO;
    while t < SimTime::ZERO + duration {
        t += SimDuration::from_millis(100);
        prepared.kernel.run_until(t);
        let e = prepared.kernel.machine().true_active_energy_j();
        let watts = (e - last_energy) / 0.1;
        last_energy = e;
        if t > virus_start {
            buckets += 1;
            peak_w = peak_w.max(watts);
            if watts > target * 1.02 {
                above += 1;
            }
        }
    }
    let outcome = prepared.finish();
    let stats = outcome.stats.borrow();
    let mut normal = Summary::new();
    let mut virus = Summary::new();
    for c in stats.completions() {
        if c.finished < virus_start {
            continue; // compare behaviour under capping pressure only
        }
        if c.label == POWER_VIRUS_LABEL {
            virus.record(c.response_secs());
        } else {
            normal.record(c.response_secs());
        }
    }
    CapRun {
        mechanism,
        frac_above_target: above as f64 / buckets.max(1) as f64,
        peak_after_w: peak_w,
        normal_response_ms: normal.mean() * 1e3,
        virus_response_ms: virus.mean() * 1e3,
        completed: stats.completions().len(),
    }
}

/// Runs the experiment.
pub fn run(scale: Scale) -> DvfsCapping {
    banner(
        "dvfs",
        "power capping: per-request conditioning vs whole-machine DVFS",
    );
    let mut lab = Lab::new();
    let secs = scale.run_secs().max(8);
    // Same target-setting procedure as Fig. 11.
    let spec = lab.spec("sandybridge");
    let cal = lab.calibration("sandybridge");
    let mut probe_cfg = RunConfig::new(spec.clone());
    probe_cfg.sched = crate::runner::sched_kind();
    probe_cfg.load = SATURATING_LOAD;
    probe_cfg.closed_loop = Some(2 * probe_cfg.spec.total_cores());
    probe_cfg.duration = SimDuration::from_secs(3);
    let probe = workloads::run_app(WorkloadKind::GaeVosao, &probe_cfg, &cal);
    // The paper's 40 W target sits just above the power of a machine whose
    // cores are all busy with *normal* requests: per-request budgets then
    // clear every Vosao request and catch only the viruses.
    let mean_normal_w = {
        let f = probe.facility.borrow();
        let s: analysis::stats::Summary = f
            .containers()
            .records()
            .iter()
            .filter(|r| r.busy_seconds > 0.0)
            .map(|r| r.mean_power_w)
            .collect();
        s.mean()
    };
    let target = spec.total_cores() as f64 * mean_normal_w * 1.06;

    let baseline = run_once(&mut lab, CapMechanism::None, target, secs, 0.0);
    let peak = baseline.peak_after_w;
    let runs = vec![
        baseline,
        run_once(&mut lab, CapMechanism::PerRequestConditioning, target, secs, peak),
        run_once(&mut lab, CapMechanism::MachineDvfs, target, secs, peak),
    ];
    let baseline_normal = runs[0].normal_response_ms;
    let mut table = Table::new([
        "mechanism",
        "buckets over target",
        "normal resp (ms)",
        "normal slowdown",
        "virus resp (ms)",
    ]);
    for r in &runs {
        table.row([
            format!("{:?}", r.mechanism),
            pct(r.frac_above_target),
            format!("{:.1}", r.normal_response_ms),
            pct(r.normal_response_ms / baseline_normal - 1.0),
            format!("{:.1}", r.virus_response_ms),
        ]);
    }
    println!("target: {target:.1} W");
    println!("{table}");
    let record = DvfsCapping { target_w: target, runs };
    write_record("dvfs", &record);
    record
}
