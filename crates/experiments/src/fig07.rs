//! Fig. 7 — request energy usage distributions (Solr and GAE-Hybrid,
//! half load, SandyBridge).
//!
//! Solr's spread comes mostly from execution-time variance (long-tailed
//! query cost); GAE-Hybrid's comes from the power gap between Vosao
//! requests and power viruses.

use crate::fig06::request_records;
use crate::output::{banner, write_record};
use crate::{Lab, Scale};
use analysis::hist::Histogram;
use serde::Serialize;
use workloads::{WorkloadKind, POWER_VIRUS_LABEL};

/// One workload's request-energy distribution.
#[derive(Debug, Clone, Serialize)]
pub struct EnergyDistribution {
    /// Workload name.
    pub workload: String,
    /// Histogram bin counts over `[0, 2)` J.
    pub bins: Vec<u64>,
    /// Mean energy of normal requests, Joules.
    pub normal_mean_j: f64,
    /// Mean energy of power viruses (0 when none), Joules.
    pub virus_mean_j: f64,
    /// 95th-percentile over 5th-percentile energy (tail spread).
    pub tail_spread: f64,
    /// Number of requests profiled.
    pub requests: usize,
}

/// The Fig. 7 record.
#[derive(Debug, Clone, Serialize)]
pub struct Fig7 {
    /// Solr and GAE-Hybrid distributions.
    pub distributions: Vec<EnergyDistribution>,
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig7 {
    banner("fig7", "request energy usage distributions (half load, SandyBridge)");
    let mut lab = Lab::new();
    let mut distributions = Vec::new();
    for kind in [WorkloadKind::Solr, WorkloadKind::GaeHybrid] {
        let records = request_records(&mut lab, kind, scale);
        let energies: Vec<f64> =
            records.iter().map(|r| r.energy_j + r.io_energy_j).collect();
        let mut hist = Histogram::new(0.0, 2.0, 40);
        let mut normal = analysis::stats::Summary::new();
        let mut virus = analysis::stats::Summary::new();
        for (r, &e) in records.iter().zip(&energies) {
            hist.record(e);
            if r.label == Some(POWER_VIRUS_LABEL) {
                virus.record(e);
            } else {
                normal.record(e);
            }
        }
        let p95 = analysis::stats::quantile(&energies, 0.95).unwrap_or(0.0);
        let p05 = analysis::stats::quantile(&energies, 0.05).unwrap_or(0.0);
        let tail_spread = if p05 > 0.0 { p95 / p05 } else { f64::INFINITY };
        println!("workload: {kind} ({} requests)", records.len());
        println!("{}", hist.ascii_plot(50));
        println!(
            "normal mean {:.3} J; virus mean {:.3} J; p95/p05 spread {:.1}x",
            normal.mean(),
            virus.mean(),
            tail_spread
        );
        distributions.push(EnergyDistribution {
            workload: kind.name().to_string(),
            bins: hist.bin_counts().to_vec(),
            normal_mean_j: normal.mean(),
            virus_mean_j: virus.mean(),
            tail_spread,
            requests: records.len(),
        });
    }
    let record = Fig7 { distributions };
    write_record("fig7", &record);
    record
}
