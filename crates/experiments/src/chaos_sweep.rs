//! Chaos study: the sharded serving pipeline under randomized fault
//! schedules with the full recovery machinery engaged.
//!
//! Sweeps a canonical ladder of seeded fault mixes — crashes at
//! escalating rates, then crashes + slowdowns, then the full chaos mix
//! (simultaneous crashes, slowdowns and tag loss/corruption), with and
//! without a cluster power cap — over a three-tier serving fleet
//! ([`Topology::serving_pipeline`]) with crash recovery, retries,
//! hedging and admission control enabled. Every cell asserts the three
//! shared invariants:
//!
//! 1. **Request conservation** — exact, typed:
//!    `dispatched == completed + Σ shed + lost_in_crash + in_flight`,
//!    and per node `dispatched == completions + in_flight + lost`.
//! 2. **Energy conservation modulo journaled loss windows** — active
//!    energy ≈ attributed + crash-journal losses, within model
//!    tolerance.
//! 3. **Cap compliance** — capped cells stay within the cluster cap
//!    (+ conditioning slack) even while nodes crash and restart.
//!
//! Cells are independent seeded simulations and fan out across
//! [`crate::runner::jobs`] workers; records and traces carry only
//! simulated timestamps, so results are byte-identical at any `--jobs`
//! count.

use crate::output::{banner, write_record, Table};
use crate::{Lab, Scale};
use cluster::{
    offered_cluster_rate, run_pipeline, ClusterConfig, DistributionPolicy, RecoveryConfig,
    AdmissionConfig, ShedReason, SimpleBalance, Topology,
};
use hwsim::FaultConfig;
use serde::Serialize;
use simkern::SimDuration;
use workloads::MachineCalibration;

/// Fleet size: a three-tier pipeline large enough that single-node
/// crashes leave healthy siblings in every tier.
pub const FLEET_NODES: usize = 6;

/// Relative tolerance for the energy-conservation invariant. Crash loss
/// windows are journaled at checkpoint granularity and the model itself
/// carries calibration error, so fault cells get the fault-tier bound
/// used across the workspace's conservation tests.
const ENERGY_TOL_CLEAN: f64 = 0.25;
const ENERGY_TOL_FAULT: f64 = 0.45;

/// Conditioning slack on capped cells (crash/restart transients make
/// the controller's job slightly harder than in the clean scale sweep).
const CAP_SLACK: f64 = 1.10;

/// One rung of the chaos ladder: a named, seeded fault mix.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ChaosScenario {
    /// Scenario name (also the trace stem).
    pub name: &'static str,
    /// Node crash windows per node-second.
    pub crash_hz: f64,
    /// Node slowdown windows per node-second.
    pub slowdown_hz: f64,
    /// Per-segment wire-tag loss and corruption probability.
    pub tag_fault: f64,
    /// Whether the cell runs under a tight cluster power cap.
    pub capped: bool,
}

impl ChaosScenario {
    /// `true` when the scenario injects any fault at all.
    pub fn faulty(&self) -> bool {
        self.crash_hz > 0.0 || self.slowdown_hz > 0.0 || self.tag_fault > 0.0
    }

    /// `true` for the full-chaos mix: simultaneous crash, slowdown and
    /// tag faults in one cell.
    pub fn simultaneous(&self) -> bool {
        self.crash_hz > 0.0 && self.slowdown_hz > 0.0 && self.tag_fault > 0.0
    }
}

/// The canonical chaos ladder, in escalating order. Both scales run the
/// same scenarios (the ladder *is* the experiment); `Quick` only
/// shortens the runs.
pub const SCENARIOS: &[ChaosScenario] = &[
    ChaosScenario { name: "baseline", crash_hz: 0.0, slowdown_hz: 0.0, tag_fault: 0.0, capped: false },
    ChaosScenario { name: "crash-low", crash_hz: 0.6, slowdown_hz: 0.0, tag_fault: 0.0, capped: false },
    ChaosScenario { name: "crash-high", crash_hz: 2.5, slowdown_hz: 0.0, tag_fault: 0.0, capped: false },
    ChaosScenario { name: "crash-slowdown", crash_hz: 1.5, slowdown_hz: 2.0, tag_fault: 0.0, capped: false },
    ChaosScenario { name: "chaos-full", crash_hz: 2.0, slowdown_hz: 2.0, tag_fault: 0.03, capped: false },
    ChaosScenario { name: "chaos-capped", crash_hz: 2.0, slowdown_hz: 2.0, tag_fault: 0.03, capped: true },
];

/// One cell of the chaos ladder.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosSweepRow {
    /// Scenario name.
    pub scenario: String,
    /// Cluster-wide power cap, Watts (`None` = uncapped).
    pub cap_w: Option<f64>,
    /// Simulated seconds.
    pub sim_secs: f64,
    /// Requests the load generator offered.
    pub dispatched: u64,
    /// Requests that completed the full pipeline.
    pub completed: usize,
    /// Typed shed counts, in [`ShedReason::ALL`] order.
    pub shed: [u64; ShedReason::ALL.len()],
    /// Requests killed by crashes after their retry budget.
    pub lost_in_crash: u64,
    /// Requests still inside the pipeline at the end.
    pub in_flight: u64,
    /// Re-dispatch attempts after timeouts or crashes.
    pub retried: u64,
    /// Hedged duplicate sends.
    pub hedged: u64,
    /// Stale replies recognized and dropped (dedup hits).
    pub stale_replies: u64,
    /// Node crash/restart cycles.
    pub crashes: u64,
    /// Container-state checkpoints journaled.
    pub checkpoints: u64,
    /// Wire tags lost or corrupted in transit.
    pub tag_faults: u64,
    /// Fleet active energy, Joules.
    pub active_energy_j: f64,
    /// Fleet attributed energy, Joules.
    pub attributed_energy_j: f64,
    /// Energy journaled as lost in crash windows, Joules.
    pub lost_energy_j: f64,
    /// Combined active energy rate, Watts.
    pub total_w: f64,
    /// Invariant 1: exact typed request conservation held.
    pub requests_conserved: bool,
    /// Invariant 2: energy conserved modulo journaled loss windows.
    pub energy_conserved: bool,
    /// Invariant 3: the cap held (vacuously true when uncapped).
    pub cap_ok: bool,
}

/// The sweep record.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosSweep {
    /// All cells, in canonical ladder order.
    pub rows: Vec<ChaosSweepRow>,
    /// Every cell satisfied exact request conservation.
    pub requests_conserved: bool,
    /// Every cell satisfied energy conservation modulo loss windows.
    pub energy_conserved: bool,
    /// Every capped cell held its cap.
    pub caps_held: bool,
    /// Every crash-bearing scenario actually crashed (and journaled
    /// checkpoints), so the ladder exercised what it claims.
    pub faults_fired: bool,
}

/// Target request count per cell.
fn target_requests(scale: Scale) -> f64 {
    match scale {
        Scale::Full => 9_000.0,
        Scale::Quick => 1_800.0,
    }
}

/// A cap low enough that conditioning must throttle, with headroom for
/// warm-up transients after restarts.
fn chaos_cap_w(cores: usize) -> f64 {
    9.0 * cores as f64
}

/// Builds one cell's cluster config (shared with the test suites, so
/// the CI smoke cell is exactly a sweep cell). Fault clocks are seeded
/// per scenario from the workspace seed, so every rung sees a distinct
/// but reproducible schedule.
pub fn cell_config(scale: Scale, scenario: &ChaosScenario) -> ClusterConfig {
    let mut cfg = ClusterConfig::sharded(&Topology::serving_pipeline(FLEET_NODES));
    cfg.sched = vec![crate::runner::sched_kind()];
    cfg.seed = crate::SEED;
    let rate = offered_cluster_rate(&cfg);
    // Long enough that ~1 Hz per-node fault clocks reliably fire even
    // at Quick scale.
    let secs = (target_requests(scale) / rate).max(1.2);
    cfg.duration = SimDuration::from_millis((secs * 1e3).ceil() as u64);
    if scenario.capped {
        cfg.power_cap_w = Some(chaos_cap_w(cfg.nodes.iter().map(hwsim::MachineSpec::total_cores).sum()));
    }
    cfg.faults = FaultConfig {
        seed: crate::SEED ^ fxhash(scenario.name),
        node_crash_hz: scenario.crash_hz,
        node_crash_len: SimDuration::from_millis(120),
        node_warmup_len: SimDuration::from_millis(80),
        node_slowdown_hz: scenario.slowdown_hz,
        node_slowdown_factor: 0.35,
        node_slowdown_len: SimDuration::from_millis(150),
        tag_loss: scenario.tag_fault,
        tag_corrupt: scenario.tag_fault,
        ..FaultConfig::none()
    };
    cfg.recovery = Some(RecoveryConfig {
        hedge_after: Some(SimDuration::from_millis(40)),
        ..RecoveryConfig::standard()
    });
    cfg.admission = Some(AdmissionConfig::standard());
    cfg.obs = crate::runner::obs_config();
    cfg
}

/// Deterministic scenario-name hash (FNV-1a) for fault-clock seeding.
fn fxhash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Per-node calibrations for `cfg`, reusing one calibration per
/// distinct machine generation.
pub fn cell_calibrations(lab: &mut Lab, cfg: &ClusterConfig) -> Vec<MachineCalibration> {
    cfg.nodes.iter().map(|spec| lab.calibration(spec.name)).collect()
}

/// Runs one rung of the ladder and checks its invariants. Shared with
/// the CI smoke test.
pub fn run_cell(scale: Scale, scenario: &ChaosScenario, cals: &[MachineCalibration]) -> ChaosSweepRow {
    let mut cfg = cell_config(scale, scenario);
    cfg.telemetry = crate::runner::trace_handle();
    let mut policies: Vec<Box<dyn DistributionPolicy>> = (0..cfg.tiers.len())
        .map(|_| Box::new(SimpleBalance::new()) as Box<dyn DistributionPolicy>)
        .collect();
    let o = run_pipeline(&mut policies, &cfg, cals);
    crate::runner::write_trace("chaos_sweep", &crate::runner::slug(scenario.name), &cfg.telemetry);

    // Invariant 1 — exact typed request conservation, cluster and node.
    let cluster_ok = o.dispatched == o.completed as u64 + o.dropped + o.in_flight
        && o.dropped == o.total_shed() + o.lost_in_crash;
    let nodes_ok = o
        .per_node
        .iter()
        .all(|n| n.dispatched == n.completions as u64 + n.in_flight + n.lost_requests);
    let log_ok = o.crash_log.len() as u64 == o.crashes
        && o.crash_log.iter().map(|c| c.lost_requests).sum::<u64>()
            == o.per_node.iter().map(|n| n.lost_requests).sum::<u64>();
    let requests_conserved = cluster_ok && nodes_ok && log_ok;

    // Invariant 2 — energy conservation modulo journaled loss windows.
    let active: f64 = o.per_node.iter().map(|n| n.active_energy_j).sum();
    let attributed: f64 = o.per_node.iter().map(|n| n.attributed_energy_j).sum();
    let lost: f64 = o.per_node.iter().map(|n| n.lost_energy_j).sum();
    let tol = if scenario.faulty() { ENERGY_TOL_FAULT } else { ENERGY_TOL_CLEAN };
    let energy_conserved = (active - (attributed + lost)).abs() / active.max(1e-9) < tol;

    // Invariant 3 — cap compliance (vacuous when uncapped).
    let total_w = o.total_energy_rate_w();
    let cap_ok = cfg.power_cap_w.map(|cap| total_w <= cap * CAP_SLACK).unwrap_or(true);

    assert!(
        requests_conserved,
        "chaos cell `{}`: request conservation violated \
         (dispatched {} vs completed {} + shed {} + lost {} + in flight {})",
        scenario.name,
        o.dispatched,
        o.completed,
        o.total_shed(),
        o.lost_in_crash,
        o.in_flight
    );
    assert!(
        energy_conserved,
        "chaos cell `{}`: energy conservation violated \
         (active {active:.1} J vs attributed {attributed:.1} + lost {lost:.1} J, tol {tol})",
        scenario.name
    );
    assert!(
        cap_ok,
        "chaos cell `{}`: cap violated ({total_w:.1} W over {:?} W)",
        scenario.name, cfg.power_cap_w
    );

    ChaosSweepRow {
        scenario: scenario.name.to_string(),
        cap_w: cfg.power_cap_w,
        sim_secs: cfg.duration.as_secs_f64(),
        dispatched: o.dispatched,
        completed: o.completed,
        shed: o.shed,
        lost_in_crash: o.lost_in_crash,
        in_flight: o.in_flight,
        retried: o.retried,
        hedged: o.hedged,
        stale_replies: o.stale_replies,
        crashes: o.crashes,
        checkpoints: o.checkpoints,
        tag_faults: o.tags_lost + o.tags_corrupted,
        active_energy_j: active,
        attributed_energy_j: attributed,
        lost_energy_j: lost,
        total_w,
        requests_conserved,
        energy_conserved,
        cap_ok,
    }
}

/// Runs the ladder and prints the grid.
pub fn run(scale: Scale) -> ChaosSweep {
    banner("chaos-sweep", "crash/recovery invariants under randomized fault schedules");
    let mut lab = Lab::new();

    let tasks: Vec<_> = SCENARIOS
        .iter()
        .map(|sc| {
            let cals = cell_calibrations(&mut lab, &cell_config(scale, sc));
            move || run_cell(scale, sc, &cals)
        })
        .collect();
    let rows: Vec<ChaosSweepRow> = crate::runner::run_parallel(crate::runner::jobs(), tasks)
        .into_iter()
        .collect::<Result<_, _>>()
        .unwrap_or_else(|e| panic!("chaos-sweep cell failed: {e}"));

    let mut table = Table::new([
        "scenario", "completed", "shed", "lost", "retried", "hedged", "crashes", "lost (J)",
        "total (W)",
    ]);
    for r in &rows {
        table.row([
            r.scenario.clone(),
            r.completed.to_string(),
            r.shed.iter().sum::<u64>().to_string(),
            r.lost_in_crash.to_string(),
            r.retried.to_string(),
            r.hedged.to_string(),
            r.crashes.to_string(),
            format!("{:.1}", r.lost_energy_j),
            format!("{:.1}", r.total_w),
        ]);
    }
    println!("{table}");

    let requests_conserved = rows.iter().all(|r| r.requests_conserved);
    let energy_conserved = rows.iter().all(|r| r.energy_conserved);
    let caps_held = rows.iter().all(|r| r.cap_ok);
    let faults_fired = SCENARIOS.iter().zip(&rows).all(|(sc, r)| {
        (sc.crash_hz == 0.0 || (r.crashes > 0 && r.checkpoints > 0))
            && (sc.tag_fault == 0.0 || r.tag_faults > 0)
    });
    println!(
        "request conservation: {} | energy conservation: {} | caps: {} | fault clocks: {}",
        if requests_conserved { "EXACT" } else { "VIOLATED" },
        if energy_conserved { "HELD" } else { "VIOLATED" },
        if caps_held { "HELD" } else { "EXCEEDED" },
        if faults_fired { "FIRED" } else { "SILENT" },
    );

    let record = ChaosSweep { rows, requests_conserved, energy_conserved, caps_held, faults_fired };
    write_record("chaos_sweep", &record);
    record
}
