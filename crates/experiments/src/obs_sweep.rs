//! Observability study: the always-on `pc-obs` plane over injected
//! energy-SLO violations.
//!
//! Runs a ladder of seeded serving-fleet cells with the observability
//! plane enabled and asserts the burn-rate monitor behaves like an SLO
//! monitor should: **alert rungs fire their expected typed alerts**
//! (cap-headroom exhaustion under a tight cluster cap, joules/request
//! regression under a late-onset slowdown storm, attribution-residual
//! anomaly under late-onset crash loss windows) and **control rungs
//! stay silent** (clean fleet, generously capped fleet, and a
//! megafleet-scale always-on cell). Alert streams, sketches and rollups
//! carry only simulated timestamps and merge in node order, so every
//! cell's report — and this experiment's record — is byte-identical at
//! any `--jobs`/`--shards` count.
//!
//! Small rungs additionally collect per-request energy provenance
//! (node → incarnation → container → cpu/throttled/io segment) and,
//! when `--trace` is active, export each rung's `.obs.json` report and
//! `.folded` flamegraph next to its trace.

use crate::output::{banner, write_record, Table};
use crate::{Lab, Scale};
use cluster::{
    offered_cluster_rate, run_pipeline, AdmissionConfig, ClusterConfig, DistributionPolicy,
    ObsConfig, ObsOutcome, RecoveryConfig, SimpleBalance, Topology,
};
use hwsim::FaultConfig;
use serde::Serialize;
use simkern::SimDuration;
use telemetry::obs::{provenance_folded, AlertKind, SloRules};
use workloads::MachineCalibration;

/// Fleet size of the small rungs: a three-tier pipeline, matching the
/// chaos sweep.
pub const FLEET_NODES: usize = 6;

/// Megafleet always-on cell: (nodes, requests) per scale — the proof
/// that the plane stays cheap and silent at fleet scale.
pub fn megafleet_cell(scale: Scale) -> (usize, u64) {
    match scale {
        Scale::Full => (100, 100_000),
        Scale::Quick => (32, 5_000),
    }
}

/// How a rung is capped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum CapTier {
    /// No cluster cap: the cap-burn rule is vacuous.
    Uncapped,
    /// A cap far above natural draw: headroom stays wide open.
    Generous,
    /// A cap tight enough that conditioning pins power against it:
    /// headroom collapses below the burn threshold.
    Tight,
}

/// One rung of the observability ladder.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ObsScenario {
    /// Rung name (also the trace/artifact stem).
    pub name: &'static str,
    /// Cluster cap tier.
    pub cap: CapTier,
    /// Node slowdown windows per node-second (the regression injector).
    pub slowdown_hz: f64,
    /// Node crash windows per node-second (the residual injector).
    pub crash_hz: f64,
    /// Fault-plan quiet period as a fraction of the run: faults start
    /// only after the monitor's baseline windows are clean.
    pub onset_frac: f64,
    /// The cap-burn rule must fire on this rung.
    pub expect_cap_burn: bool,
    /// The energy-regression rule must fire on this rung.
    pub expect_regression: bool,
    /// The residual-anomaly rule must fire on this rung.
    pub expect_residual: bool,
}

impl ObsScenario {
    /// `true` when the rung must emit zero alerts.
    pub fn control(&self) -> bool {
        !(self.expect_cap_burn || self.expect_regression || self.expect_residual)
    }

    /// The alert kinds this rung expects, in [`AlertKind::ALL`] order.
    pub fn expected_kinds(&self) -> Vec<AlertKind> {
        let mut out = Vec::new();
        if self.expect_cap_burn {
            out.push(AlertKind::CapBurn);
        }
        if self.expect_regression {
            out.push(AlertKind::EnergyRegression);
        }
        if self.expect_residual {
            out.push(AlertKind::ResidualAnomaly);
        }
        out
    }
}

/// The canonical ladder: two controls, then one rung per burn-rate
/// rule. Both scales run the same rungs (`Quick` only shortens them).
pub const SCENARIOS: &[ObsScenario] = &[
    ObsScenario {
        name: "control",
        cap: CapTier::Uncapped,
        slowdown_hz: 0.0,
        crash_hz: 0.0,
        onset_frac: 0.0,
        expect_cap_burn: false,
        expect_regression: false,
        expect_residual: false,
    },
    ObsScenario {
        name: "control-capped",
        cap: CapTier::Generous,
        slowdown_hz: 0.0,
        crash_hz: 0.0,
        onset_frac: 0.0,
        expect_cap_burn: false,
        expect_regression: false,
        expect_residual: false,
    },
    ObsScenario {
        name: "cap-burn",
        cap: CapTier::Tight,
        slowdown_hz: 0.0,
        crash_hz: 0.0,
        onset_frac: 0.0,
        expect_cap_burn: true,
        expect_regression: false,
        expect_residual: false,
    },
    ObsScenario {
        name: "energy-regression",
        cap: CapTier::Uncapped,
        slowdown_hz: 6.0,
        crash_hz: 0.0,
        onset_frac: 0.45,
        expect_cap_burn: false,
        expect_regression: true,
        expect_residual: false,
    },
    ObsScenario {
        name: "residual-anomaly",
        cap: CapTier::Uncapped,
        slowdown_hz: 0.0,
        crash_hz: 2.5,
        onset_frac: 0.45,
        expect_cap_burn: false,
        expect_regression: false,
        expect_residual: true,
    },
];

/// Target request count per small rung.
fn target_requests(scale: Scale) -> f64 {
    match scale {
        Scale::Full => 9_000.0,
        Scale::Quick => 1_800.0,
    }
}

/// Minimum simulated seconds per rung, so the 250 ms monitor window
/// always sees a meaningful ladder of full windows past the baseline.
fn min_secs(scale: Scale) -> f64 {
    match scale {
        Scale::Full => 6.0,
        Scale::Quick => 3.0,
    }
}

/// Deterministic scenario-name hash (FNV-1a) for fault-clock seeding.
fn fxhash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Burn-rate rules for a rung: the standard thresholds, with the
/// residual rung dropping to single-window firing (crash loss windows
/// are transient — the residual spikes for exactly the window the
/// restore rolled back, so two-consecutive hysteresis would mask it).
fn cell_rules(scenario: &ObsScenario) -> SloRules {
    let mut rules = SloRules::standard();
    if scenario.expect_residual {
        rules.fire_after = 1;
    }
    rules
}

/// Builds one rung's cluster config (shared with the test suites, so
/// the CI smoke cell is exactly a sweep cell).
pub fn cell_config(scale: Scale, scenario: &ObsScenario) -> ClusterConfig {
    let mut cfg = ClusterConfig::sharded(&Topology::serving_pipeline(FLEET_NODES));
    cfg.sched = vec![crate::runner::sched_kind()];
    cfg.seed = crate::SEED;
    cfg.shards = crate::runner::shards();
    let rate = offered_cluster_rate(&cfg);
    let secs = (target_requests(scale) / rate).max(min_secs(scale));
    cfg.duration = SimDuration::from_millis((secs * 1e3).ceil() as u64);

    // Tier calibration (empirical, both scales): uncapped draw is
    // ~295 W and the conditioning controller's throttle floor is
    // ~185 W, so 4.5 W/core (180 W) pins headroom at or below zero —
    // sustained cap-budget burn — while 40 W/core leaves >80% headroom.
    let cores: usize = cfg.nodes.iter().map(hwsim::MachineSpec::total_cores).sum();
    cfg.power_cap_w = match scenario.cap {
        CapTier::Uncapped => None,
        CapTier::Generous => Some(40.0 * cores as f64),
        CapTier::Tight => Some(4.5 * cores as f64),
    };

    if scenario.slowdown_hz > 0.0 || scenario.crash_hz > 0.0 {
        cfg.faults = FaultConfig {
            seed: crate::SEED ^ fxhash(scenario.name),
            node_slowdown_hz: scenario.slowdown_hz,
            node_slowdown_factor: 0.5,
            node_slowdown_len: SimDuration::from_millis(400),
            node_crash_hz: scenario.crash_hz,
            node_crash_len: SimDuration::from_millis(120),
            node_warmup_len: SimDuration::from_millis(80),
            node_fault_start: SimDuration::from_millis(
                (cfg.duration.as_secs_f64() * scenario.onset_frac * 1e3) as u64,
            ),
            ..FaultConfig::none()
        };
    }
    if scenario.slowdown_hz > 0.0 {
        // Aggressive hedging turns the slowdown storm into a genuine
        // J/req regression: completions stall on slowed nodes while
        // hedged duplicates burn joules on two nodes per request, so
        // attributed energy per completion climbs past the baseline.
        // (A bare DVFS slowdown *saves* energy per request.)
        cfg.recovery = Some(RecoveryConfig {
            hedge_after: Some(SimDuration::from_millis(12)),
            ..RecoveryConfig::standard()
        });
        cfg.admission = Some(AdmissionConfig::standard());
    }
    if scenario.crash_hz > 0.0 {
        // A long checkpoint cadence widens the loss window a crash rolls
        // attribution back by — exactly the residual the anomaly rule
        // watches for.
        cfg.recovery = Some(RecoveryConfig {
            checkpoint_every: SimDuration::from_millis(400),
            ..RecoveryConfig::standard()
        });
        cfg.admission = Some(AdmissionConfig::standard());
    }

    cfg.obs = Some(ObsConfig {
        rules: cell_rules(scenario),
        provenance: true,
        tenants: 2,
        ..ObsConfig::standard()
    });
    cfg
}

/// Per-node calibrations for `cfg`, reusing one calibration per
/// distinct machine generation.
pub fn cell_calibrations(lab: &mut Lab, cfg: &ClusterConfig) -> Vec<MachineCalibration> {
    cfg.nodes.iter().map(|spec| lab.calibration(spec.name)).collect()
}

/// One rung's results.
#[derive(Debug, Clone, Serialize)]
pub struct ObsSweepRow {
    /// Rung name.
    pub scenario: String,
    /// Simulated seconds.
    pub sim_secs: f64,
    /// Full monitor windows closed.
    pub windows: u64,
    /// Requests offered / completed.
    pub dispatched: u64,
    /// Requests that completed the full pipeline.
    pub completed: usize,
    /// Node crash/restart cycles.
    pub crashes: u64,
    /// Alerts fired, indexed like [`AlertKind::ALL`].
    pub alerts: [u64; AlertKind::ALL.len()],
    /// Fleet p99 end-to-end latency, seconds.
    pub p99_latency_s: f64,
    /// Fleet p99 attributed energy per request, Joules.
    pub p99_j_per_req: f64,
    /// Provenance leaves collected (0 when provenance is off).
    pub provenance_entries: usize,
    /// Every expected alert kind fired.
    pub expected_fired: bool,
    /// A control rung stayed silent (vacuously true on alert rungs).
    pub silent_ok: bool,
}

/// The sweep record.
#[derive(Debug, Clone, Serialize)]
pub struct ObsSweep {
    /// Small rungs, in canonical ladder order.
    pub rows: Vec<ObsSweepRow>,
    /// The megafleet always-on cell.
    pub megafleet: ObsSweepRow,
    /// Every alert rung fired its expected kinds.
    pub alerts_fired: bool,
    /// Every control rung (megafleet included) emitted zero alerts.
    pub controls_silent: bool,
}

/// Runs one rung and checks its alert contract. Shared with the CI
/// smoke test; returns the outcome so tests can pin the report bytes.
pub fn run_cell(
    scale: Scale,
    scenario: &ObsScenario,
    cals: &[MachineCalibration],
) -> (ObsSweepRow, ObsOutcome) {
    let mut cfg = cell_config(scale, scenario);
    cfg.telemetry = crate::runner::trace_handle();
    let mut policies: Vec<Box<dyn DistributionPolicy>> = (0..cfg.tiers.len())
        .map(|_| Box::new(SimpleBalance::new()) as Box<dyn DistributionPolicy>)
        .collect();
    let o = run_pipeline(&mut policies, &cfg, cals);
    let stem = crate::runner::slug(scenario.name);
    crate::runner::write_trace("obs_sweep", &stem, &cfg.telemetry);
    let obs = *o.obs.clone().expect("obs plane was enabled");
    write_obs_artifacts(&stem, &obs);

    let row = summarize_cell(scenario.name, cfg.duration.as_secs_f64(), &o, &obs, scenario);
    assert!(
        row.expected_fired,
        "obs rung `{}`: expected alert kinds {:?} did not all fire (alerts: {:?})",
        scenario.name,
        scenario.expected_kinds(),
        obs.report.alerts
    );
    assert!(
        row.silent_ok,
        "obs rung `{}`: control rung fired {} alert(s): {:?}",
        scenario.name,
        obs.report.alerts.len(),
        obs.report.alerts
    );
    (row, obs)
}

/// Folds one cell's outcome into a row.
fn summarize_cell(
    name: &str,
    sim_secs: f64,
    o: &cluster::ClusterOutcome,
    obs: &ObsOutcome,
    scenario: &ObsScenario,
) -> ObsSweepRow {
    let mut alerts = [0u64; AlertKind::ALL.len()];
    for a in &obs.report.alerts {
        alerts[a.kind.index()] += 1;
    }
    let expected_fired =
        scenario.expected_kinds().iter().all(|k| alerts[k.index()] > 0);
    let silent_ok = !scenario.control() || obs.report.alerts.is_empty();
    ObsSweepRow {
        scenario: name.to_string(),
        sim_secs,
        windows: obs
            .report
            .series
            .get("power_w/fleet")
            .map(|r| r.total_count())
            .unwrap_or(0),
        dispatched: o.dispatched,
        completed: o.completed,
        crashes: o.crashes,
        alerts,
        p99_latency_s: obs
            .report
            .sketches
            .get("latency_s/fleet")
            .map(|s| s.quantile(0.99))
            .unwrap_or(0.0),
        p99_j_per_req: obs
            .report
            .sketches
            .get("energy_j_per_req/fleet")
            .map(|s| s.quantile(0.99))
            .unwrap_or(0.0),
        provenance_entries: obs.provenance.len(),
        expected_fired,
        silent_ok,
    }
}

/// Exports a rung's `.obs.json` report and `.folded` provenance next to
/// its trace; a no-op unless `--trace` is active.
fn write_obs_artifacts(stem: &str, obs: &ObsOutcome) {
    let Some(root) = crate::runner::trace_dir() else { return };
    let dir = root.join("obs_sweep");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let write = |path: std::path::PathBuf, bytes: String| {
        if let Err(e) = std::fs::write(&path, bytes) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        }
    };
    write(dir.join(format!("{stem}.obs.json")), obs.report.to_json());
    if !obs.provenance.is_empty() {
        write(dir.join(format!("{stem}.folded")), provenance_folded(&obs.provenance));
    }
}

/// Runs the megafleet always-on cell: a clean scaled fleet with the
/// standard plane enabled (no provenance), which must conserve requests
/// and stay alert-silent.
pub fn run_megafleet_cell(scale: Scale, lab: &mut Lab) -> ObsSweepRow {
    let (nodes, requests) = megafleet_cell(scale);
    let mut cfg = crate::megafleet::cell_config(nodes, requests);
    cfg.obs = Some(ObsConfig::standard());
    let cals = crate::megafleet::cell_calibrations(lab, &cfg);
    let mut policy = SimpleBalance::new();
    let o = cluster::run_cluster(&mut policy, &cfg, &cals);
    crate::megafleet::assert_cell_conserved("obs-megafleet", &o);
    let obs = *o.obs.clone().expect("obs plane was enabled");
    let scenario = ObsScenario {
        name: "megafleet-always-on",
        cap: CapTier::Uncapped,
        slowdown_hz: 0.0,
        crash_hz: 0.0,
        onset_frac: 0.0,
        expect_cap_burn: false,
        expect_regression: false,
        expect_residual: false,
    };
    let row =
        summarize_cell(scenario.name, cfg.duration.as_secs_f64(), &o, &obs, &scenario);
    assert!(
        row.silent_ok,
        "obs megafleet cell fired {} alert(s) on a clean run: {:?}",
        obs.report.alerts.len(),
        obs.report.alerts
    );
    row
}

/// Runs the ladder and prints the grid.
pub fn run(scale: Scale) -> ObsSweep {
    banner("obs-sweep", "energy-SLO burn-rate alerts over injected violations");
    let mut lab = Lab::new();

    let tasks: Vec<_> = SCENARIOS
        .iter()
        .map(|sc| {
            let cals = cell_calibrations(&mut lab, &cell_config(scale, sc));
            move || run_cell(scale, sc, &cals).0
        })
        .collect();
    let rows: Vec<ObsSweepRow> = crate::runner::run_parallel(crate::runner::jobs(), tasks)
        .into_iter()
        .collect::<Result<_, _>>()
        .unwrap_or_else(|e| panic!("obs-sweep cell failed: {e}"));
    let megafleet = run_megafleet_cell(scale, &mut lab);

    let mut table = Table::new([
        "scenario", "windows", "completed", "crashes", "cap-burn", "regress", "residual",
        "p99 lat (s)", "p99 J/req",
    ]);
    for r in rows.iter().chain(std::iter::once(&megafleet)) {
        table.row([
            r.scenario.clone(),
            r.windows.to_string(),
            r.completed.to_string(),
            r.crashes.to_string(),
            r.alerts[AlertKind::CapBurn.index()].to_string(),
            r.alerts[AlertKind::EnergyRegression.index()].to_string(),
            r.alerts[AlertKind::ResidualAnomaly.index()].to_string(),
            format!("{:.4}", r.p99_latency_s),
            format!("{:.4}", r.p99_j_per_req),
        ]);
    }
    println!("{table}");

    let alerts_fired = rows.iter().all(|r| r.expected_fired);
    let controls_silent =
        rows.iter().all(|r| r.silent_ok) && megafleet.silent_ok;
    println!(
        "alert rungs: {} | control rungs: {}",
        if alerts_fired { "FIRED" } else { "SILENT" },
        if controls_silent { "SILENT" } else { "NOISY" },
    );

    let record = ObsSweep { rows, megafleet, alerts_fired, controls_silent };
    write_record("obs_sweep", &record);
    record
}
