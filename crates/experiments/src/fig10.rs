//! Fig. 10 — power prediction at new request compositions.
//!
//! Per-request energy profiles learned on a running system are assembled
//! to predict power under *new* workload conditions: RSA-crypto serving
//! only its largest key, and WeBWorK serving only the 10 most popular
//! problem sets. Comparators: a request-rate-proportional predictor and
//! a CPU-utilization-proportional predictor. The paper reports ≤11%
//! error for containers vs ≤19% (CPU-proportional) and ≤56%
//! (rate-proportional).

use crate::mix::MixOverride;
use crate::output::{banner, pct, write_record, Table};
use crate::{Lab, Scale};
use serde::Serialize;
use simkern::SimDuration;
use std::collections::HashMap;
use workloads::{
    apps::{RsaCrypto, WeBWorK},
    run_app, run_server_app, LoadLevel, RunConfig, WorkloadKind,
};

/// One load level's predictions vs measurement.
#[derive(Debug, Clone, Serialize)]
pub struct PredictionPoint {
    /// Fraction of the new mix's peak load.
    pub load_fraction: f64,
    /// Measured active power, Watts.
    pub measured_w: f64,
    /// Power-containers prediction, Watts.
    pub containers_w: f64,
    /// CPU-utilization-proportional prediction, Watts.
    pub cpu_proportional_w: f64,
    /// Request-rate-proportional prediction, Watts.
    pub rate_proportional_w: f64,
}

/// One scenario (app + new mix).
#[derive(Debug, Clone, Serialize)]
pub struct PredictionScenario {
    /// Scenario name.
    pub scenario: String,
    /// Prediction points at increasing load.
    pub points: Vec<PredictionPoint>,
    /// Worst-case error per predictor (containers, cpu, rate).
    pub worst_errors: [f64; 3],
}

/// The Fig. 10 record.
#[derive(Debug, Clone, Serialize)]
pub struct Fig10 {
    /// RSA-crypto and WeBWorK scenarios.
    pub scenarios: Vec<PredictionScenario>,
}

struct LabelProfile {
    mean_energy_j: f64,
    mean_cpu_secs: f64,
}

fn scenario(
    lab: &mut Lab,
    name: &str,
    kind: WorkloadKind,
    new_labels: Vec<u32>,
    new_mean_cycles: f64,
    scale: Scale,
) -> PredictionScenario {
    let spec = lab.spec("sandybridge");
    let cal = lab.calibration("sandybridge");
    let secs = scale.run_secs();

    // 1. Profile the original composition at peak load.
    let mut cfg = RunConfig::new(spec.clone());
    cfg.sched = crate::runner::sched_kind();
    cfg.load = LoadLevel::Peak;
    cfg.duration = SimDuration::from_secs(secs);
    let orig = run_app(kind, &cfg, &cal);
    let orig_secs = orig.end.as_secs_f64();
    let p_orig = orig.measured_active_power_w();
    let r_orig = orig.stats.borrow().completions().len() as f64 / orig_secs;
    let u_orig_cores = orig.mean_utilization() * spec.total_cores() as f64;
    let mut by_label: HashMap<u32, (f64, f64, usize)> = HashMap::new();
    let mut global = (0.0, 0.0, 0usize);
    {
        let f = orig.facility.borrow();
        for r in f.containers().records() {
            let Some(label) = r.label else { continue };
            let e = by_label.entry(label).or_default();
            e.0 += r.energy_j + r.io_energy_j;
            e.1 += r.busy_seconds;
            e.2 += 1;
            global.0 += r.energy_j + r.io_energy_j;
            global.1 += r.busy_seconds;
            global.2 += 1;
        }
    }
    let profile_of = |label: u32| -> LabelProfile {
        let (e, s, n) = by_label.get(&label).copied().unwrap_or(global);
        LabelProfile {
            mean_energy_j: e / n.max(1) as f64,
            mean_cpu_secs: s / n.max(1) as f64,
        }
    };
    let new_profile: Vec<LabelProfile> = new_labels.iter().map(|&l| profile_of(l)).collect();
    let e_new = new_profile.iter().map(|p| p.mean_energy_j).sum::<f64>()
        / new_profile.len() as f64;
    let s_new = new_profile.iter().map(|p| p.mean_cpu_secs).sum::<f64>()
        / new_profile.len() as f64;

    // 2. Measure the new composition at several load levels and compare
    //    against the three predictors.
    let mut points = Vec::new();
    let mut worst = [0.0f64; 3];
    for fraction in [0.5, 0.65, 0.8] {
        let app = std::rc::Rc::new(MixOverride::new(
            kind.app(),
            new_labels.clone(),
            new_mean_cycles,
        ));
        let mut cfg = RunConfig::new(spec.clone());
        cfg.sched = crate::runner::sched_kind();
        cfg.load = LoadLevel::Fraction(fraction);
        cfg.duration = SimDuration::from_secs(secs);
        cfg.seed = crate::SEED + 17;
        let new_run = run_server_app(app, &cfg, &cal);
        let new_secs = new_run.end.as_secs_f64();
        let measured = new_run.measured_active_power_w();
        let r_new = new_run.stats.borrow().completions().len() as f64 / new_secs;
        let containers_w = r_new * e_new;
        let rate_proportional_w = p_orig * r_new / r_orig;
        let u_new_pred = r_new * s_new;
        let cpu_proportional_w = p_orig * u_new_pred / u_orig_cores;
        let errs = [
            analysis::stats::relative_error(containers_w, measured),
            analysis::stats::relative_error(cpu_proportional_w, measured),
            analysis::stats::relative_error(rate_proportional_w, measured),
        ];
        for (w, e) in worst.iter_mut().zip(errs) {
            *w = w.max(e);
        }
        points.push(PredictionPoint {
            load_fraction: fraction,
            measured_w: measured,
            containers_w,
            cpu_proportional_w,
            rate_proportional_w,
        });
    }
    PredictionScenario { scenario: name.to_string(), points, worst_errors: worst }
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig10 {
    banner("fig10", "power prediction at new request compositions");
    let mut lab = Lab::new();
    let scenarios = vec![
        scenario(
            &mut lab,
            "RSA-crypto, largest key only",
            WorkloadKind::RsaCrypto,
            vec![2],
            RsaCrypto::cycles_for(2),
            scale,
        ),
        scenario(
            &mut lab,
            "WeBWorK, 10 most popular problem sets",
            WorkloadKind::WeBWorK,
            (0..10).collect(),
            {
                let mean_d: f64 =
                    (0..10).map(WeBWorK::difficulty).sum::<f64>() / 10.0;
                // Stage mix mirrors the app's difficulty scaling.
                mean_d * (7.0e6 + 5.0e6 + 4.0e6 + 5.0e6 + 3.0e6) + 3.3e6
            },
            scale,
        ),
    ];
    for s in &scenarios {
        println!("scenario: {}", s.scenario);
        let mut table = Table::new([
            "load",
            "measured (W)",
            "containers (W)",
            "cpu-prop (W)",
            "rate-prop (W)",
        ]);
        for p in &s.points {
            table.row([
                format!("{:.0}%", p.load_fraction * 100.0),
                format!("{:.1}", p.measured_w),
                format!("{:.1}", p.containers_w),
                format!("{:.1}", p.cpu_proportional_w),
                format!("{:.1}", p.rate_proportional_w),
            ]);
        }
        println!("{table}");
        println!(
            "worst error: containers {}, cpu-proportional {}, rate-proportional {}",
            pct(s.worst_errors[0]),
            pct(s.worst_errors[1]),
            pct(s.worst_errors[2])
        );
        println!();
    }
    let record = Fig10 { scenarios };
    write_record("fig10", &record);
    record
}
